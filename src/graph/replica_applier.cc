#include "graph/replica_applier.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/coding.h"
#include "storage/wal.h"

namespace neosi {

namespace {

/// Writer id the applier stamps replayed versions and index entries with.
/// It must be a real (never-allocated) transaction id:
///  - kNoTxn would make index CommitRemove match ALREADY-REMOVED committed
///    intervals (their removed_by is kNoTxn) and corrupt their removal
///    timestamps;
///  - a live reader's id would make VisibleAt treat the applier's pending
///    entries as that reader's own writes.
/// Reader txn ids count up from 1, so the top of the id space is free.
constexpr TxnId kApplierTxn = std::numeric_limits<TxnId>::max() - 1;

constexpr uint32_t kCursorMagic = 0x43525053;  // "SPRC"
constexpr size_t kCursorPayload = 4 + 8 + 4;   // magic + cursor + crc

bool Contains(const std::vector<LabelId>& labels, LabelId label) {
  return std::find(labels.begin(), labels.end(), label) != labels.end();
}

}  // namespace

ReplicaApplier::ReplicaApplier(Engine* engine,
                               std::unique_ptr<ReplicationSource> source,
                               uint64_t poll_interval_ms,
                               uint64_t conflict_grace_ms)
    : engine_(engine),
      source_(std::move(source)),
      poll_interval_ms_(poll_interval_ms),
      conflict_grace_ms_(conflict_grace_ms) {}

ReplicaApplier::~ReplicaApplier() { Stop(); }

Status ReplicaApplier::Bootstrap(Timestamp recovered_ts) {
  cover_.store(recovered_ts, std::memory_order_release);

  Lsn cursor = 0;
  bool found = false;
  NEOSI_RETURN_IF_ERROR(ReadCursorFile(&cursor, &found));
  if (!found) {
    // No cursor yet: the local wal is either empty (fresh replica) or a
    // byte-for-byte seed of the primary's, so the local append cursor IS the
    // primary LSN to resume from (recovery already truncated any torn seed
    // tail, and the truncated suffix re-ships from here). Persist it before
    // any LOCAL append (checkpoint markers) can move the local LSN space
    // away from the primary's.
    cursor = engine_->store.wal().NextLsn();
    NEOSI_RETURN_IF_ERROR(WriteCursorFile(cursor));
  }
  cursor_.store(cursor, std::memory_order_release);
  persisted_cursor_ = cursor;
  ingested_lsn_ = cursor;
  return Status::OK();
}

void ReplicaApplier::Start() {
  std::lock_guard<std::mutex> guard(mu_);
  if (running_) return;
  running_ = true;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void ReplicaApplier::Stop() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    stop_.store(true, std::memory_order_release);
    cv_.notify_all();
    caught_up_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> guard(mu_);
  running_ = false;
}

void ReplicaApplier::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_.load(std::memory_order_acquire)) {
    const uint64_t seq = ++pass_seq_;
    lock.unlock();

    bool progressed = false;
    Status s = RunOnePass(&progressed);

    lock.lock();
    if (!s.ok()) {
      {
        std::lock_guard<std::mutex> err_guard(err_mu_);
        last_error_ = s;
      }
      // A cursor gap or shipped corruption never heals on its own: park and
      // keep serving the last published watermark instead of spinning.
      fatal_ = true;
      caught_up_cv_.notify_all();
      cv_.wait(lock, [this] { return stop_.load(std::memory_order_acquire); });
      break;
    }
    if (!progressed && pending_.empty()) {
      last_caught_up_seq_ = seq;
      caught_up_cv_.notify_all();
    }
    if (progressed) continue;  // Hot tail: poll again immediately.
    cv_.wait_for(lock, std::chrono::milliseconds(poll_interval_ms_),
                 [this] { return stop_.load(std::memory_order_acquire); });
  }
}

Status ReplicaApplier::RunOnce() {
  bool progressed = false;
  Status s = RunOnePass(&progressed);
  if (!s.ok()) {
    std::lock_guard<std::mutex> err_guard(err_mu_);
    last_error_ = s;
  }
  return s;
}

Status ReplicaApplier::RunOnePass(bool* progressed) {
  polls_.fetch_add(1, std::memory_order_relaxed);

  std::vector<ShippedRecord> batch;
  Lsn next = cursor_.load(std::memory_order_acquire);
  NEOSI_RETURN_IF_ERROR(
      source_->Poll(cursor_.load(std::memory_order_acquire), &batch, &next));
  *progressed = !batch.empty();

  for (ShippedRecord& shipped : batch) {
    NEOSI_RETURN_IF_ERROR(Ingest(std::move(shipped)));
  }
  cursor_.store(next, std::memory_order_release);

  NEOSI_RETURN_IF_ERROR(DrainPending());

  // The durable cursor must never skip an unapplied record: records still
  // buffered in pending_ have not been re-logged locally, so on restart
  // they must ship again (applied ones deduplicate by timestamp).
  Lsn persist = next;
  for (const auto& [ts, rec] : pending_) {
    persist = std::min(persist, rec.lsn);
  }
  if (persist != persisted_cursor_) {
    // The cursor file promises every record below it is durable locally:
    // sync the re-logged tail before moving the promise forward.
    NEOSI_RETURN_IF_ERROR(engine_->store.wal().Sync());
    NEOSI_RETURN_IF_ERROR(WriteCursorFile(persist));
    persisted_cursor_ = persist;
  }
  return Status::OK();
}

bool ReplicaApplier::WaitCaughtUp(uint64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  // Any pass numbered > the current one STARTS after this point, so its
  // poll observes everything the caller appended to the source before
  // calling.
  const uint64_t want = pass_seq_ + 1;
  const bool done = caught_up_cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms), [this, want] {
        return fatal_ || last_caught_up_seq_ >= want ||
               stop_.load(std::memory_order_acquire);
      });
  return done && !fatal_ && last_caught_up_seq_ >= want;
}

Status ReplicaApplier::last_error() const {
  std::lock_guard<std::mutex> guard(err_mu_);
  return last_error_;
}

ReplicaApplier::RecordKind ReplicaApplier::Classify(const WalRecord& record) {
  bool purge = false;
  bool token = false;
  for (const WalOp& op : record.ops) {
    switch (op.type) {
      case WalOpType::kCheckpoint:
        return RecordKind::kCheckpointMarker;
      case WalOpType::kPurgeNode:
      case WalOpType::kPurgeRel:
        purge = true;
        break;
      case WalOpType::kCreateToken:
        token = true;
        break;
      default:
        // Any versioned mutation makes this a dense commit record, whatever
        // else rides along with it.
        return RecordKind::kCommit;
    }
  }
  if (purge) return RecordKind::kPurge;
  if (token) return RecordKind::kTokenOnly;
  return RecordKind::kCommit;
}

Status ReplicaApplier::Ingest(ShippedRecord shipped) {
  if (shipped.lsn < ingested_lsn_) return Status::OK();  // Re-ship overlap.
  ingested_lsn_ = shipped.lsn + 1;

  if (shipped.record.publish_ts >
      publish_ts_.load(std::memory_order_relaxed)) {
    publish_ts_.store(shipped.record.publish_ts, std::memory_order_release);
  }

  const Timestamp ts = shipped.record.commit_ts;
  const Timestamp cover = cover_.load(std::memory_order_acquire);
  switch (Classify(shipped.record)) {
    case RecordKind::kCheckpointMarker:
      // Primary checkpoint markers carry primary-relative stable LSNs;
      // re-logging one would point local recovery at garbage. The local
      // checkpoint daemon writes the replica's own markers.
      records_skipped_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    case RecordKind::kTokenOnly:
      // Tokens are unversioned and idempotent; apply immediately so the
      // catalog never lags the commits that reference it.
      return ApplyRecord(shipped.record);
    case RecordKind::kPurge:
      // A purge borrows the GC watermark as its timestamp. At or below the
      // cover every snapshot it could conflict with is bounded by cover;
      // above it, the commit that produced that timestamp has not been
      // replayed yet — buffer behind it (multimap keeps LSN order on ties).
      if (ts <= cover) {
        CancelConflictsBelow(ts);
        return ApplyRecord(shipped.record);
      }
      pending_.emplace(ts, std::move(shipped));
      return Status::OK();
    case RecordKind::kCommit:
      if (ts <= cover) {
        // Restart overlap: already applied AND re-logged before the crash.
        records_skipped_.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      }
      pending_.emplace(ts, std::move(shipped));
      return Status::OK();
  }
  return Status::Internal("unreachable record kind");
}

Status ReplicaApplier::DrainPending() {
  const Timestamp hint = publish_ts_.load(std::memory_order_acquire);
  Timestamp cover = cover_.load(std::memory_order_acquire);

  while (!pending_.empty()) {
    auto it = pending_.begin();
    const Timestamp ts = it->first;
    // Apply when the timestamp extends the dense prefix, or when the
    // publication hint proves every commit below it already shipped (all of
    // them sit at lower LSNs than the hint's record, and lower pending
    // timestamps drain first) — that is how cover jumps over timestamps
    // abandoned by failed primary commits.
    const bool applies = ts <= cover || ts == cover + 1 || ts <= hint;
    if (!applies) break;
    ShippedRecord shipped = std::move(it->second);
    pending_.erase(it);

    if (Classify(shipped.record) == RecordKind::kPurge) {
      CancelConflictsBelow(ts);
    }
    NEOSI_RETURN_IF_ERROR(ApplyRecord(shipped.record));
    if (ts > cover) {
      cover = ts;
      cover_.store(cover, std::memory_order_release);
      engine_->oracle.AdvanceReadTs(cover);
    }
  }

  if (hint > cover) {
    // Nothing pending at or below the hint remains: every timestamp in
    // (cover, hint] either applied above or never produced a record.
    cover = hint;
    cover_.store(cover, std::memory_order_release);
    engine_->oracle.AdvanceReadTs(cover);
  }
  return Status::OK();
}

Status ReplicaApplier::ApplyRecord(const WalRecord& record) {
  // Re-log FIRST, pinned against local checkpoint truncation until the
  // effects below are applied — exactly the primary's commit discipline, so
  // replica crash recovery is the ordinary wal replay.
  NEOSI_ASSIGN_OR_RETURN(const Lsn local_lsn,
                         engine_->store.wal().Append(record, /*pin=*/true));
  Status apply;
  for (const WalOp& op : record.ops) {
    switch (op.type) {
      case WalOpType::kCreateNode:
      case WalOpType::kDeleteNode:
      case WalOpType::kSetNodeProperty:
      case WalOpType::kRemoveNodeProperty:
      case WalOpType::kAddLabel:
      case WalOpType::kRemoveLabel:
      case WalOpType::kNodeState:
        apply = ApplyNodeOp(op, kApplierTxn, record.commit_ts);
        break;
      case WalOpType::kCreateRel:
      case WalOpType::kDeleteRel:
      case WalOpType::kSetRelProperty:
      case WalOpType::kRemoveRelProperty:
      case WalOpType::kRelState:
        apply = ApplyRelOp(op, kApplierTxn, record.commit_ts);
        break;
      case WalOpType::kPurgeNode:
      case WalOpType::kPurgeRel:
        apply = ApplyPurgeOp(op, record.commit_ts);
        break;
      case WalOpType::kCreateToken:
        apply = engine_->store.ApplyWalOp(op, record.commit_ts);
        break;
      case WalOpType::kCheckpoint:
        break;  // Stripped in Ingest; defensively inert here.
    }
    if (!apply.ok()) break;
  }
  engine_->store.wal().Unpin(local_lsn);
  if (apply.ok()) records_applied_.fetch_add(1, std::memory_order_relaxed);
  return apply;
}

Status ReplicaApplier::ApplyNodeOp(const WalOp& op, TxnId txn, Timestamp ts) {
  // Materialize the PRE-state into the cache before the store changes:
  // pinned snapshots below `ts` must keep finding the version this op
  // supersedes (the cache never evicts multi-version chains, and a
  // single-version chain it does evict re-materializes losslessly).
  std::shared_ptr<CachedNode> node;
  {
    auto cached = engine_->cache->GetNode(op.id);
    if (cached.ok()) {
      node = *cached;
    } else if (!cached.status().IsNotFound()) {
      return cached.status();
    }
  }
  // Skip only strictly-older replays (defensive; Ingest dedupes records).
  // Equality must fall through: one commit record can carry several ops for
  // the same entity, all sharing its commit_ts — the second and later ops
  // stack same-ts versions, and readers take the newest on a ts tie.
  if (node != nullptr && node->chain.NewestCommitTs() > ts) {
    return Status::OK();
  }

  VersionData pre;
  bool pre_live = false;
  if (node != nullptr) {
    auto latest = node->chain.LatestCommitted();
    if (latest != nullptr && !latest->data.deleted) {
      pre_live = true;
      pre = latest->data;
    }
  }

  NEOSI_RETURN_IF_ERROR(engine_->store.ApplyWalOp(op, ts));

  NodeState post;
  Status rs = engine_->store.ReadNodeState(op.id, &post);
  if (!rs.ok() && !rs.IsOutOfRange() && !rs.IsNotFound()) return rs;
  const bool post_in_use = rs.ok() && post.in_use;
  const bool post_live = post_in_use && !post.deleted;

  if (node != nullptr && post_in_use) {
    VersionData data;
    data.deleted = post.deleted;
    data.labels = post.labels;
    data.props = post.props;
    NEOSI_ASSIGN_OR_RETURN(auto installed,
                           node->chain.InstallUncommitted(txn, std::move(data)));
    (void)installed;
    NEOSI_ASSIGN_OR_RETURN(auto superseded, node->chain.CommitHead(txn, ts));
    if (superseded != nullptr) {
      engine_->gc_list.Append({EntityKey::Node(op.id), superseded, ts});
    }
  }
  // No cache entry and the record was free before: a create replays with no
  // resident chain — a later reader materializes it lazily, and its
  // commit_ts keeps it invisible to snapshots below `ts`.

  const std::vector<LabelId> kNoLabels;
  const PropertyMap kNoProps;
  const std::vector<LabelId>& pre_labels = pre_live ? pre.labels : kNoLabels;
  const PropertyMap& pre_props = pre_live ? pre.props : kNoProps;
  const std::vector<LabelId>& post_labels =
      post_live ? post.labels : kNoLabels;
  const PropertyMap& post_props = post_live ? post.props : kNoProps;

  for (LabelId label : pre_labels) {
    if (!Contains(post_labels, label)) {
      engine_->label_index.RemovePending(label, op.id, txn);
      engine_->label_index.CommitRemove(label, op.id, txn, ts);
    }
  }
  for (LabelId label : post_labels) {
    if (!Contains(pre_labels, label)) {
      engine_->label_index.AddPending(label, op.id, txn);
      engine_->label_index.CommitAdd(label, op.id, txn, ts);
    }
  }
  for (const auto& [key, value] : pre_props) {
    auto found = post_props.find(key);
    if (found == post_props.end() || !(found->second == value)) {
      engine_->node_prop_index.RemovePending(key, value, op.id, txn);
      engine_->node_prop_index.CommitRemove(key, value, op.id, txn, ts);
    }
  }
  for (const auto& [key, value] : post_props) {
    auto found = pre_props.find(key);
    if (found == pre_props.end() || !(found->second == value)) {
      engine_->node_prop_index.AddPending(key, value, op.id, txn);
      engine_->node_prop_index.CommitAdd(key, value, op.id, txn, ts);
    }
  }
  return Status::OK();
}

Status ReplicaApplier::ApplyRelOp(const WalOp& op, TxnId txn, Timestamp ts) {
  std::shared_ptr<CachedRel> rel;
  {
    auto cached = engine_->cache->GetRel(op.id);
    if (cached.ok()) {
      rel = *cached;
    } else if (!cached.status().IsNotFound()) {
      return cached.status();
    }
  }
  // Same-ts ops from one record must all apply; see ApplyNodeOp.
  if (rel != nullptr && rel->chain.NewestCommitTs() > ts) {
    return Status::OK();
  }

  VersionData pre;
  bool pre_live = false;
  if (rel != nullptr) {
    auto latest = rel->chain.LatestCommitted();
    if (latest != nullptr && !latest->data.deleted) {
      pre_live = true;
      pre = latest->data;
    }
  }

  NEOSI_RETURN_IF_ERROR(engine_->store.ApplyWalOp(op, ts));

  RelState post;
  Status rs = engine_->store.ReadRelState(op.id, &post);
  if (!rs.ok() && !rs.IsOutOfRange() && !rs.IsNotFound()) return rs;
  const bool post_in_use = rs.ok() && post.in_use;
  const bool post_live = post_in_use && !post.deleted;

  if (rel != nullptr && post_in_use) {
    VersionData data;
    data.deleted = post.deleted;
    data.props = post.props;
    NEOSI_ASSIGN_OR_RETURN(auto installed,
                           rel->chain.InstallUncommitted(txn, std::move(data)));
    (void)installed;
    NEOSI_ASSIGN_OR_RETURN(auto superseded, rel->chain.CommitHead(txn, ts));
    if (superseded != nullptr) {
      engine_->gc_list.Append({EntityKey::Rel(op.id), superseded, ts});
    }
  }

  const PropertyMap kNoProps;
  const PropertyMap& pre_props = pre_live ? pre.props : kNoProps;
  const PropertyMap& post_props = post_live ? post.props : kNoProps;
  for (const auto& [key, value] : pre_props) {
    auto found = post_props.find(key);
    if (found == post_props.end() || !(found->second == value)) {
      engine_->rel_prop_index.RemovePending(key, value, op.id, txn);
      engine_->rel_prop_index.CommitRemove(key, value, op.id, txn, ts);
    }
  }
  for (const auto& [key, value] : post_props) {
    auto found = pre_props.find(key);
    if (found == pre_props.end() || !(found->second == value)) {
      engine_->rel_prop_index.AddPending(key, value, op.id, txn);
      engine_->rel_prop_index.CommitAdd(key, value, op.id, txn, ts);
    }
  }
  return Status::OK();
}

Status ReplicaApplier::ApplyPurgeOp(const WalOp& op, Timestamp ts) {
  // Mirrors the primary's GC: drop the cached chain, then reclaim the
  // store record. Every snapshot below the purge timestamp is gone (waited
  // out or expired in CancelConflictsBelow).
  if (op.type == WalOpType::kPurgeNode) {
    engine_->cache->EraseNode(op.id);
  } else {
    engine_->cache->EraseRel(op.id);
  }
  NEOSI_RETURN_IF_ERROR(engine_->store.ApplyWalOp(op, ts));
  purges_applied_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void ReplicaApplier::CancelConflictsBelow(Timestamp purge_ts) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(conflict_grace_ms_);
  for (;;) {
    // kMaxTimestamp fallback: with no pinning snapshots the purge proceeds.
    if (engine_->active_txns.Watermark(kMaxTimestamp) >= purge_ts) return;
    if (stop_.load(std::memory_order_acquire) ||
        std::chrono::steady_clock::now() >= deadline) {
      conflicts_cancelled_.fetch_add(
          engine_->active_txns.ExpireSnapshotsBelow(purge_ts),
          std::memory_order_relaxed);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

Status ReplicaApplier::ReadCursorFile(Lsn* cursor, bool* found) {
  *found = false;
  std::unique_ptr<PagedFile> file;
  Status s =
      engine_->store.wal().dir()->OpenExisting(kCursorFileName, &file);
  if (s.IsNotFound()) return Status::OK();
  NEOSI_RETURN_IF_ERROR(s);
  char buf[kCursorPayload];
  if (file->Size() < kCursorPayload) {
    return Status::Corruption("replica cursor file is short");
  }
  NEOSI_RETURN_IF_ERROR(file->ReadAt(0, kCursorPayload, buf));
  if (DecodeFixed32(buf) != kCursorMagic ||
      DecodeFixed32(buf + 12) != Crc32c(buf, 12)) {
    return Status::Corruption("replica cursor file failed validation");
  }
  *cursor = DecodeFixed64(buf + 4);
  *found = true;
  return Status::OK();
}

Status ReplicaApplier::WriteCursorFile(Lsn cursor) {
  const std::shared_ptr<WalDir>& dir = engine_->store.wal().dir();
  const std::string tmp = std::string(kCursorFileName) + ".tmp";
  std::unique_ptr<PagedFile> file;
  NEOSI_RETURN_IF_ERROR(dir->Open(tmp, &file));
  NEOSI_RETURN_IF_ERROR(file->Truncate(0));
  char buf[kCursorPayload];
  EncodeFixed32(buf, kCursorMagic);
  EncodeFixed64(buf + 4, cursor);
  EncodeFixed32(buf + 12, Crc32c(buf, 12));
  NEOSI_RETURN_IF_ERROR(file->WriteAt(0, buf, kCursorPayload));
  // Named EIO point: a cursor-file fsync failure must fail the persist (the
  // in-memory cursor stays ahead, replay just redoes work) — never get
  // swallowed and let the durable cursor claim records the crashed kernel
  // dropped.
  NEOSI_RETURN_IF_ERROR(
      engine_->store.fault_hooks.Check("replica.cursor.sync"));
  NEOSI_RETURN_IF_ERROR(file->Sync());
  file.reset();
  NEOSI_RETURN_IF_ERROR(dir->Rename(tmp, kCursorFileName));
  return dir->SyncDir();
}

}  // namespace neosi
