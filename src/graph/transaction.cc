#include "graph/transaction.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include "graph/checkpoint_daemon.h"
#include "graph/gc_daemon.h"
#include "graph/graph_database.h"

namespace neosi {

Transaction::Transaction(Engine* engine, IsolationLevel isolation, TxnId id,
                         Timestamp start_ts,
                         std::shared_ptr<const std::atomic<bool>> expired,
                         std::shared_ptr<SsiTxnInfo> ssi, bool read_only)
    : engine_(engine),
      isolation_(isolation),
      id_(id),
      start_ts_(start_ts),
      expired_(std::move(expired)),
      ssi_(std::move(ssi)),
      read_only_(read_only) {}

Transaction::~Transaction() {
  if (state_ == TxnState::kActive) {
    Abort();
  }
}

Status Transaction::CheckActive() const {
  if (state_ == TxnState::kActive) {
    // Serializable isolation needs SSI tracking across the whole commit
    // graph, and a replica only ever sees the primary's committed history —
    // it cannot validate rw-antidependencies. Fail with the retryable
    // routing status instead of silently weakening the guarantee.
    if (isolation_ == IsolationLevel::kSerializable &&
        engine_->options.IsReplica()) {
      return Status::ReplicaReadOnly(
          "serializable transactions are not available on a read replica; "
          "use snapshot isolation here or route to the primary");
    }
    return Status::OK();
  }
  return Status::FailedPrecondition(
      state_ == TxnState::kCommitted ? "transaction already committed"
                                     : "transaction already aborted");
}

Status Transaction::FailIfSnapshotExpired() {
  if (!UsesSnapshotReads()) return Status::OK();
  if (!expired_ || !expired_->load(std::memory_order_acquire)) {
    return Status::OK();
  }
  engine_->active_txns.NoteSnapshotTooOldAbort();
  RollbackLocked();
  return Status::SnapshotTooOld(
      "snapshot expired by the lifecycle policy (snapshot_max_age_ms or GC "
      "backlog pressure); restart the transaction for a fresh snapshot");
}

// ---------------------------------------------------------------------------
// SSI hooks (no-ops unless this is a tracked kSerializable transaction)
// ---------------------------------------------------------------------------

Status Transaction::FailIfReadOnly() const {
  if (engine_->options.IsReplica()) {
    return Status::ReplicaReadOnly(
        "this database is a read replica (DatabaseOptions::replica_of); "
        "route writes to the primary");
  }
  if (!read_only_) return Status::OK();
  return Status::FailedPrecondition(
      "transaction was opened read-only (TransactionOptions::read_only)");
}

Status Transaction::FailIfDoomed() {
  if (!ssi_) return Status::OK();
  Status s = engine_->ssi.FailIfDoomed(ssi_);
  if (!s.ok()) RollbackLocked();
  return s;
}

Status Transaction::SsiOnWrite(SsiWriteFootprint fp) {
  if (!ssi_) return Status::OK();
  Status s = engine_->ssi.OnWrite(ssi_, fp);
  if (!s.ok()) {
    RollbackLocked();
    return s;
  }
  ssi_footprints_.push_back(std::move(fp));
  return Status::OK();
}

Status Transaction::SsiObserveNewer(
    const std::vector<std::pair<TxnId, Timestamp>>& newer) {
  if (!ssi_) return Status::OK();
  for (const auto& [writer, ts] : newer) {
    Status s = engine_->ssi.OnReadObservedCommit(ssi_, writer, ts);
    if (!s.ok()) {
      RollbackLocked();
      return s;
    }
  }
  return Status::OK();
}

Status Transaction::SsiObserveAnonymous(const std::vector<Timestamp>& commits) {
  if (!ssi_) return Status::OK();
  for (Timestamp ts : commits) {
    Status s = engine_->ssi.OnReadObservedCommit(ssi_, kNoTxn, ts);
    if (!s.ok()) {
      RollbackLocked();
      return s;
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Locking & conflict detection
// ---------------------------------------------------------------------------

Status Transaction::AcquireWriteLock(const EntityKey& key) {
  bool wait = true;
  if (UsesSnapshotReads() &&
      engine_->options.conflict_policy ==
          ConflictPolicy::kFirstUpdaterWinsNoWait) {
    wait = false;
  }
  Status s = engine_->lock_manager.AcquireExclusive(id_, key, wait);
  if (!s.ok()) {
    RollbackLocked();
  }
  return s;
}

Status Transaction::CheckWriteConflict(const VersionChain& chain) {
  if (!UsesSnapshotReads()) return Status::OK();
  if (engine_->options.conflict_policy == ConflictPolicy::kFirstCommitterWins) {
    return Status::OK();  // Validated at commit instead.
  }
  // First-updater-wins (paper §4): the long write lock is held, so the only
  // way the entity can be newer than our snapshot is a conflicting
  // transaction that already committed -> we lose.
  if (chain.NewestCommitTs() > start_ts_) {
    RollbackLocked();
    return Status::Aborted(
        "write-write conflict: concurrent transaction committed a newer "
        "version (first-updater-wins)");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

Result<LabelId> Transaction::LabelToken(const std::string& name, bool create) {
  if (!create) {
    return engine_->store.labels().Lookup(name, SnapshotTs());
  }
  auto existing = engine_->store.labels().Lookup(name);
  if (existing.ok()) return existing;
  auto created = engine_->store.labels().GetOrCreate(name, start_ts_);
  if (created.ok()) {
    wal_ops_.push_back(WalOp::CreateToken(TokenKind::kLabel, *created, name));
  }
  return created;
}

Result<PropertyKeyId> Transaction::PropKeyToken(const std::string& name,
                                                bool create) {
  if (!create) {
    return engine_->store.prop_keys().Lookup(name, SnapshotTs());
  }
  auto existing = engine_->store.prop_keys().Lookup(name);
  if (existing.ok()) return existing;
  auto created = engine_->store.prop_keys().GetOrCreate(name, start_ts_);
  if (created.ok()) {
    wal_ops_.push_back(
        WalOp::CreateToken(TokenKind::kPropertyKey, *created, name));
  }
  return created;
}

Result<RelTypeId> Transaction::RelTypeToken(const std::string& name,
                                            bool create) {
  if (!create) {
    return engine_->store.rel_types().Lookup(name, SnapshotTs());
  }
  auto existing = engine_->store.rel_types().Lookup(name);
  if (existing.ok()) return existing;
  auto created = engine_->store.rel_types().GetOrCreate(name, start_ts_);
  if (created.ok()) {
    wal_ops_.push_back(
        WalOp::CreateToken(TokenKind::kRelType, *created, name));
  }
  return created;
}

Result<NamedProperties> Transaction::NameProps(const PropertyMap& props) const {
  NamedProperties out;
  for (const auto& [key, value] : props) {
    auto name = engine_->store.prop_keys().NameOf(key);
    if (!name.ok()) return name.status();
    out[*name] = value;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pending-version plumbing
// ---------------------------------------------------------------------------

Result<std::shared_ptr<Version>> Transaction::PendingNodeVersion(
    NodeId id, std::shared_ptr<CachedNode>* node_out) {
  NEOSI_RETURN_IF_ERROR(CheckActive());
  NEOSI_RETURN_IF_ERROR(FailIfReadOnly());
  NEOSI_RETURN_IF_ERROR(FailIfSnapshotExpired());
  NEOSI_RETURN_IF_ERROR(FailIfDoomed());
  const EntityKey key = EntityKey::Node(id);
  auto it = writes_.find(key);
  if (it != writes_.end()) {
    if (node_out) *node_out = it->second.node;
    return it->second.pending;
  }

  auto node = engine_->cache->GetNode(id);
  if (!node.ok()) return node.status();

  NEOSI_RETURN_IF_ERROR(AcquireWriteLock(key));
  NEOSI_RETURN_IF_ERROR(CheckWriteConflict((*node)->chain));

  auto visible = (*node)->chain.Visible(SnapshotTs(), id_);
  if (!visible || visible->data.deleted) {
    return Status::NotFound("node " + std::to_string(id) +
                            " is not visible to this transaction");
  }

  VersionData base = visible->data;  // Copy: the pending version starts here.
  auto pending = (*node)->chain.InstallUncommitted(id_, std::move(base));
  if (!pending.ok()) return pending.status();

  WriteRecord record;
  record.node = *node;
  record.pending = *pending;
  record.created = false;
  writes_[key] = std::move(record);
  if (node_out) *node_out = *node;
  // Post-walk expiry check: the pending version was based on the snapshot-
  // visible version, which expiry-driven reclamation may have pruned
  // mid-walk. Rolls the whole transaction back (including the record just
  // installed) if so.
  NEOSI_RETURN_IF_ERROR(FailIfSnapshotExpired());
  return *pending;
}

Result<std::shared_ptr<Version>> Transaction::PendingRelVersion(
    RelId id, std::shared_ptr<CachedRel>* rel_out) {
  NEOSI_RETURN_IF_ERROR(CheckActive());
  NEOSI_RETURN_IF_ERROR(FailIfReadOnly());
  NEOSI_RETURN_IF_ERROR(FailIfSnapshotExpired());
  NEOSI_RETURN_IF_ERROR(FailIfDoomed());
  const EntityKey key = EntityKey::Rel(id);
  auto it = writes_.find(key);
  if (it != writes_.end()) {
    if (rel_out) *rel_out = it->second.rel;
    return it->second.pending;
  }

  auto rel = engine_->cache->GetRel(id);
  if (!rel.ok()) return rel.status();

  NEOSI_RETURN_IF_ERROR(AcquireWriteLock(key));
  NEOSI_RETURN_IF_ERROR(CheckWriteConflict((*rel)->chain));

  auto visible = (*rel)->chain.Visible(SnapshotTs(), id_);
  if (!visible || visible->data.deleted) {
    return Status::NotFound("relationship " + std::to_string(id) +
                            " is not visible to this transaction");
  }

  VersionData base = visible->data;
  auto pending = (*rel)->chain.InstallUncommitted(id_, std::move(base));
  if (!pending.ok()) return pending.status();

  WriteRecord record;
  record.rel = *rel;
  record.pending = *pending;
  record.created = false;
  writes_[key] = std::move(record);
  if (rel_out) *rel_out = *rel;
  // Post-walk expiry check (see PendingNodeVersion).
  NEOSI_RETURN_IF_ERROR(FailIfSnapshotExpired());
  return *pending;
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

Result<NodeId> Transaction::CreateNode(const std::vector<std::string>& labels,
                                       const NamedProperties& props) {
  NEOSI_RETURN_IF_ERROR(CheckActive());
  NEOSI_RETURN_IF_ERROR(FailIfReadOnly());
  NEOSI_RETURN_IF_ERROR(FailIfSnapshotExpired());
  NEOSI_RETURN_IF_ERROR(FailIfDoomed());

  std::vector<LabelId> label_ids;
  label_ids.reserve(labels.size());
  for (const std::string& name : labels) {
    auto token = LabelToken(name, /*create=*/true);
    if (!token.ok()) return token.status();
    if (std::find(label_ids.begin(), label_ids.end(), *token) ==
        label_ids.end()) {
      label_ids.push_back(*token);
    }
  }
  PropertyMap prop_map;
  for (const auto& [name, value] : props) {
    auto token = PropKeyToken(name, /*create=*/true);
    if (!token.ok()) return token.status();
    prop_map[*token] = value;
  }

  auto id = engine_->store.AllocateNodeId();
  if (!id.ok()) return id.status();

  auto node = engine_->cache->InsertNewNode(*id);
  if (!node.ok()) return node.status();

  NEOSI_RETURN_IF_ERROR(AcquireWriteLock(EntityKey::Node(*id)));

  VersionData data;
  data.labels = label_ids;
  data.props = prop_map;
  auto pending = (*node)->chain.InstallUncommitted(id_, std::move(data));
  if (!pending.ok()) return pending.status();

  WriteRecord record;
  record.node = *node;
  record.pending = *pending;
  record.created = true;
  writes_[EntityKey::Node(*id)] = std::move(record);
  created_nodes_.push_back(*id);

  for (LabelId label : label_ids) {
    engine_->label_index.AddPending(label, *id, id_);
    index_ops_.push_back(
        {IndexOp::Kind::kLabelAdd, *id, label, kInvalidToken, {}});
  }
  for (const auto& [key, value] : prop_map) {
    engine_->node_prop_index.AddPending(key, value, *id, id_);
    index_ops_.push_back(
        {IndexOp::Kind::kNodePropAdd, *id, kInvalidToken, key, value});
  }

  wal_ops_.push_back(WalOp::CreateNode(*id, label_ids, prop_map));

  // SSI phantom protection: a fresh node invalidates full scans, label
  // scans and property scans that predate it (no Entity footprint — the id
  // was never visible, so no marker can exist on it).
  NEOSI_RETURN_IF_ERROR(SsiOnWrite(SsiWriteFootprint::AllNodes()));
  for (LabelId label : label_ids) {
    NEOSI_RETURN_IF_ERROR(SsiOnWrite(SsiWriteFootprint::Label(label)));
  }
  for (const auto& [key, value] : prop_map) {
    NEOSI_RETURN_IF_ERROR(
        SsiOnWrite(SsiWriteFootprint::NodeProperty(key, value)));
  }
  return *id;
}

Status Transaction::SetNodeProperty(NodeId id, const std::string& key,
                                    PropertyValue value) {
  auto token = PropKeyToken(key, /*create=*/true);
  if (!token.ok()) return token.status();

  auto pending = PendingNodeVersion(id, nullptr);
  if (!pending.ok()) return pending.status();

  auto& props = (*pending)->data.props;
  auto it = props.find(*token);
  if (it != props.end() && it->second == value) {
    // No-op write: leaves no WAL, index, or SSI footprint — a write that
    // changes nothing must not be able to fail a serializable transaction
    // or doom concurrent readers.
    return Status::OK();
  }
  NEOSI_RETURN_IF_ERROR(
      SsiOnWrite(SsiWriteFootprint::Entity(EntityKey::Node(id))));
  if (it != props.end()) {
    NEOSI_RETURN_IF_ERROR(
        SsiOnWrite(SsiWriteFootprint::NodeProperty(*token, it->second)));
    engine_->node_prop_index.RemovePending(*token, it->second, id, id_);
    index_ops_.push_back({IndexOp::Kind::kNodePropRemove, id, kInvalidToken,
                          *token, it->second});
  }
  NEOSI_RETURN_IF_ERROR(
      SsiOnWrite(SsiWriteFootprint::NodeProperty(*token, value)));
  engine_->node_prop_index.AddPending(*token, value, id, id_);
  index_ops_.push_back(
      {IndexOp::Kind::kNodePropAdd, id, kInvalidToken, *token, value});
  props[*token] = std::move(value);
  // Full post-state, not a delta: replay must never need the (possibly
  // torn) on-disk pre-state. See WalOpType::kNodeState.
  wal_ops_.push_back(WalOp::NodeState(id, (*pending)->data.labels, props));
  return Status::OK();
}

Status Transaction::RemoveNodeProperty(NodeId id, const std::string& key) {
  auto token = PropKeyToken(key, /*create=*/false);
  if (!token.ok()) {
    return token.status().IsNotFound() ? Status::OK() : token.status();
  }
  auto pending = PendingNodeVersion(id, nullptr);
  if (!pending.ok()) return pending.status();

  auto& props = (*pending)->data.props;
  auto it = props.find(*token);
  if (it == props.end()) return Status::OK();
  NEOSI_RETURN_IF_ERROR(
      SsiOnWrite(SsiWriteFootprint::Entity(EntityKey::Node(id))));
  NEOSI_RETURN_IF_ERROR(
      SsiOnWrite(SsiWriteFootprint::NodeProperty(*token, it->second)));
  engine_->node_prop_index.RemovePending(*token, it->second, id, id_);
  index_ops_.push_back({IndexOp::Kind::kNodePropRemove, id, kInvalidToken,
                        *token, it->second});
  props.erase(it);
  wal_ops_.push_back(WalOp::NodeState(id, (*pending)->data.labels, props));
  return Status::OK();
}

Status Transaction::AddLabel(NodeId id, const std::string& label) {
  auto token = LabelToken(label, /*create=*/true);
  if (!token.ok()) return token.status();

  auto pending = PendingNodeVersion(id, nullptr);
  if (!pending.ok()) return pending.status();

  auto& labels = (*pending)->data.labels;
  if (std::find(labels.begin(), labels.end(), *token) != labels.end()) {
    return Status::OK();
  }
  NEOSI_RETURN_IF_ERROR(
      SsiOnWrite(SsiWriteFootprint::Entity(EntityKey::Node(id))));
  NEOSI_RETURN_IF_ERROR(SsiOnWrite(SsiWriteFootprint::Label(*token)));
  labels.push_back(*token);
  engine_->label_index.AddPending(*token, id, id_);
  index_ops_.push_back(
      {IndexOp::Kind::kLabelAdd, id, *token, kInvalidToken, {}});
  wal_ops_.push_back(
      WalOp::NodeState(id, labels, (*pending)->data.props));
  return Status::OK();
}

Status Transaction::RemoveLabel(NodeId id, const std::string& label) {
  auto token = LabelToken(label, /*create=*/false);
  if (!token.ok()) {
    return token.status().IsNotFound() ? Status::OK() : token.status();
  }
  auto pending = PendingNodeVersion(id, nullptr);
  if (!pending.ok()) return pending.status();

  auto& labels = (*pending)->data.labels;
  auto it = std::find(labels.begin(), labels.end(), *token);
  if (it == labels.end()) return Status::OK();
  NEOSI_RETURN_IF_ERROR(
      SsiOnWrite(SsiWriteFootprint::Entity(EntityKey::Node(id))));
  NEOSI_RETURN_IF_ERROR(SsiOnWrite(SsiWriteFootprint::Label(*token)));
  labels.erase(it);
  engine_->label_index.RemovePending(*token, id, id_);
  index_ops_.push_back(
      {IndexOp::Kind::kLabelRemove, id, *token, kInvalidToken, {}});
  wal_ops_.push_back(
      WalOp::NodeState(id, labels, (*pending)->data.props));
  return Status::OK();
}

Result<RelId> Transaction::CreateRelationship(NodeId src, NodeId dst,
                                              const std::string& type,
                                              const NamedProperties& props) {
  NEOSI_RETURN_IF_ERROR(CheckActive());
  NEOSI_RETURN_IF_ERROR(FailIfReadOnly());
  NEOSI_RETURN_IF_ERROR(FailIfDoomed());

  auto type_token = RelTypeToken(type, /*create=*/true);
  if (!type_token.ok()) return type_token.status();
  PropertyMap prop_map;
  for (const auto& [name, value] : props) {
    auto token = PropKeyToken(name, /*create=*/true);
    if (!token.ok()) return token.status();
    prop_map[*token] = value;
  }

  // Endpoints must be visible in our snapshot.
  auto src_version = VisibleNodeVersion(src);
  if (!src_version.ok()) return src_version.status();
  auto dst_version = VisibleNodeVersion(dst);
  if (!dst_version.ok()) return dst_version.status();

  // Long write locks on both endpoint nodes, smaller id first (as Neo4j
  // does: relationship creation mutates both nodes' chains). These always
  // wait (wait-die breaks cycles); the no-wait conflict policy applies to
  // data writes, not structural endpoint locks.
  const NodeId lo = std::min(src, dst), hi = std::max(src, dst);
  Status s = engine_->lock_manager.AcquireExclusive(id_, EntityKey::Node(lo),
                                                    /*wait=*/true);
  if (!s.ok()) {
    RollbackLocked();
    return s;
  }
  if (hi != lo) {
    s = engine_->lock_manager.AcquireExclusive(id_, EntityKey::Node(hi),
                                               /*wait=*/true);
    if (!s.ok()) {
      RollbackLocked();
      return s;
    }
  }

  // Re-check after acquiring the locks: a concurrent transaction may have
  // deleted an endpoint and committed while we waited. Creating the edge
  // anyway would dangle, so this is treated as a write-write conflict.
  for (NodeId endpoint : {src, dst}) {
    const EntityKey ekey = EntityKey::Node(endpoint);
    auto wit = writes_.find(ekey);
    if (wit != writes_.end()) {
      if (wit->second.pending->data.deleted) {
        RollbackLocked();
        return Status::Aborted("endpoint node deleted by this transaction");
      }
      continue;
    }
    auto cached = engine_->cache->GetNode(endpoint);
    if (!cached.ok()) {
      RollbackLocked();
      return Status::Aborted("endpoint node vanished concurrently");
    }
    auto latest = (*cached)->chain.LatestCommitted();
    if (!latest || latest->data.deleted) {
      RollbackLocked();
      return Status::Aborted(
          "endpoint node deleted by a concurrent transaction");
    }
    if (UsesSnapshotReads() && latest->commit_ts > start_ts_ &&
        latest->data.deleted) {
      RollbackLocked();
      return Status::Aborted("endpoint deleted after snapshot");
    }
  }

  auto rel_id = engine_->store.AllocateRelId();
  if (!rel_id.ok()) return rel_id.status();

  auto rel = engine_->cache->InsertNewRel(*rel_id, src, dst, *type_token);
  if (!rel.ok()) return rel.status();

  NEOSI_RETURN_IF_ERROR(AcquireWriteLock(EntityKey::Rel(*rel_id)));

  VersionData data;
  data.props = prop_map;
  auto pending = (*rel)->chain.InstallUncommitted(id_, std::move(data));
  if (!pending.ok()) return pending.status();

  WriteRecord record;
  record.rel = *rel;
  record.pending = *pending;
  record.created = true;
  writes_[EntityKey::Rel(*rel_id)] = std::move(record);

  created_rels_by_node_[src].push_back(*rel_id);
  if (dst != src) created_rels_by_node_[dst].push_back(*rel_id);

  for (const auto& [key, value] : prop_map) {
    engine_->rel_prop_index.AddPending(key, value, *rel_id, id_);
    index_ops_.push_back(
        {IndexOp::Kind::kRelPropAdd, *rel_id, kInvalidToken, key, value});
  }

  wal_ops_.push_back(
      WalOp::CreateRel(*rel_id, src, dst, *type_token, prop_map));

  // SSI phantom protection: the new edge invalidates adjacency scans of
  // both endpoints and rel-property scans covering its properties.
  NEOSI_RETURN_IF_ERROR(SsiOnWrite(SsiWriteFootprint::Adjacency(src)));
  if (dst != src) {
    NEOSI_RETURN_IF_ERROR(SsiOnWrite(SsiWriteFootprint::Adjacency(dst)));
  }
  for (const auto& [key, value] : prop_map) {
    NEOSI_RETURN_IF_ERROR(
        SsiOnWrite(SsiWriteFootprint::RelProperty(key, value)));
  }
  return *rel_id;
}

Status Transaction::DeleteRelationship(RelId id) {
  std::shared_ptr<CachedRel> rel;
  auto pending = PendingRelVersion(id, &rel);
  if (!pending.ok()) return pending.status();
  if ((*pending)->data.deleted) {
    return Status::NotFound("relationship already deleted");
  }

  // Lock endpoints (Neo4j semantics: structural change on both nodes).
  const NodeId lo = std::min(rel->src, rel->dst);
  const NodeId hi = std::max(rel->src, rel->dst);
  Status s = engine_->lock_manager.AcquireExclusive(id_, EntityKey::Node(lo),
                                                    /*wait=*/true);
  if (!s.ok()) {
    RollbackLocked();
    return s;
  }
  if (hi != lo) {
    s = engine_->lock_manager.AcquireExclusive(id_, EntityKey::Node(hi),
                                               /*wait=*/true);
    if (!s.ok()) {
      RollbackLocked();
      return s;
    }
  }

  NEOSI_RETURN_IF_ERROR(
      SsiOnWrite(SsiWriteFootprint::Entity(EntityKey::Rel(id))));
  NEOSI_RETURN_IF_ERROR(SsiOnWrite(SsiWriteFootprint::Adjacency(rel->src)));
  if (rel->dst != rel->src) {
    NEOSI_RETURN_IF_ERROR(SsiOnWrite(SsiWriteFootprint::Adjacency(rel->dst)));
  }
  for (const auto& [key, value] : (*pending)->data.props) {
    NEOSI_RETURN_IF_ERROR(
        SsiOnWrite(SsiWriteFootprint::RelProperty(key, value)));
    engine_->rel_prop_index.RemovePending(key, value, id, id_);
    index_ops_.push_back(
        {IndexOp::Kind::kRelPropRemove, id, kInvalidToken, key, value});
  }
  (*pending)->data.deleted = true;
  (*pending)->data.props.clear();
  wal_ops_.push_back(WalOp::DeleteRel(id));
  return Status::OK();
}

Status Transaction::SetRelProperty(RelId id, const std::string& key,
                                   PropertyValue value) {
  auto token = PropKeyToken(key, /*create=*/true);
  if (!token.ok()) return token.status();

  auto pending = PendingRelVersion(id, nullptr);
  if (!pending.ok()) return pending.status();

  auto& props = (*pending)->data.props;
  auto it = props.find(*token);
  if (it != props.end() && it->second == value) {
    return Status::OK();  // No-op write: no WAL, index, or SSI footprint.
  }
  NEOSI_RETURN_IF_ERROR(
      SsiOnWrite(SsiWriteFootprint::Entity(EntityKey::Rel(id))));
  if (it != props.end()) {
    NEOSI_RETURN_IF_ERROR(
        SsiOnWrite(SsiWriteFootprint::RelProperty(*token, it->second)));
    engine_->rel_prop_index.RemovePending(*token, it->second, id, id_);
    index_ops_.push_back({IndexOp::Kind::kRelPropRemove, id, kInvalidToken,
                          *token, it->second});
  }
  NEOSI_RETURN_IF_ERROR(
      SsiOnWrite(SsiWriteFootprint::RelProperty(*token, value)));
  engine_->rel_prop_index.AddPending(*token, value, id, id_);
  index_ops_.push_back(
      {IndexOp::Kind::kRelPropAdd, id, kInvalidToken, *token, value});
  props[*token] = std::move(value);
  wal_ops_.push_back(WalOp::RelState(id, props));
  return Status::OK();
}

Status Transaction::RemoveRelProperty(RelId id, const std::string& key) {
  auto token = PropKeyToken(key, /*create=*/false);
  if (!token.ok()) {
    return token.status().IsNotFound() ? Status::OK() : token.status();
  }
  auto pending = PendingRelVersion(id, nullptr);
  if (!pending.ok()) return pending.status();

  auto& props = (*pending)->data.props;
  auto it = props.find(*token);
  if (it == props.end()) return Status::OK();
  NEOSI_RETURN_IF_ERROR(
      SsiOnWrite(SsiWriteFootprint::Entity(EntityKey::Rel(id))));
  NEOSI_RETURN_IF_ERROR(
      SsiOnWrite(SsiWriteFootprint::RelProperty(*token, it->second)));
  engine_->rel_prop_index.RemovePending(*token, it->second, id, id_);
  index_ops_.push_back({IndexOp::Kind::kRelPropRemove, id, kInvalidToken,
                        *token, it->second});
  props.erase(it);
  wal_ops_.push_back(WalOp::RelState(id, props));
  return Status::OK();
}

Status Transaction::DeleteNode(NodeId id) {
  NEOSI_RETURN_IF_ERROR(CheckActive());
  NEOSI_RETURN_IF_ERROR(FailIfReadOnly());
  NEOSI_RETURN_IF_ERROR(FailIfDoomed());

  // Visible relationships must be removed first (Neo4j semantics).
  auto visible_rels = GetRelationships(id, Direction::kBoth);
  if (!visible_rels.ok()) return visible_rels.status();
  if (!visible_rels->empty()) {
    return Status::FailedPrecondition(
        "node " + std::to_string(id) + " still has " +
        std::to_string(visible_rels->size()) + " relationship(s)");
  }

  std::shared_ptr<CachedNode> node;
  auto pending = PendingNodeVersion(id, &node);
  if (!pending.ok()) return pending.status();

  // Adjacency conflict check at latest-committed state: a relationship
  // added by a concurrent committed transaction (invisible to our snapshot)
  // would dangle if we deleted the node -> first-updater-wins abort. We hold
  // the node's write lock, so no new attachment can race this check.
  std::vector<RelId> chain_ids;
  Status chain_status = engine_->store.RelChainOf(id, &chain_ids);
  if (!chain_status.ok()) return chain_status;
  for (RelId rel_id : chain_ids) {
    auto wit = writes_.find(EntityKey::Rel(rel_id));
    if (wit != writes_.end() && wit->second.pending->data.deleted) {
      continue;  // We are deleting it in this transaction.
    }
    auto rel = engine_->cache->GetRel(rel_id);
    if (!rel.ok()) continue;  // Purged: certainly not live.
    auto latest = (*rel)->chain.LatestCommitted();
    if (latest && !latest->data.deleted) {
      RollbackLocked();
      return Status::Aborted(
          "node " + std::to_string(id) +
          " gained a relationship from a concurrent transaction");
    }
  }

  NEOSI_RETURN_IF_ERROR(
      SsiOnWrite(SsiWriteFootprint::Entity(EntityKey::Node(id))));
  NEOSI_RETURN_IF_ERROR(SsiOnWrite(SsiWriteFootprint::AllNodes()));
  NEOSI_RETURN_IF_ERROR(SsiOnWrite(SsiWriteFootprint::Adjacency(id)));
  for (LabelId label : (*pending)->data.labels) {
    NEOSI_RETURN_IF_ERROR(SsiOnWrite(SsiWriteFootprint::Label(label)));
    engine_->label_index.RemovePending(label, id, id_);
    index_ops_.push_back(
        {IndexOp::Kind::kLabelRemove, id, label, kInvalidToken, {}});
  }
  for (const auto& [key, value] : (*pending)->data.props) {
    NEOSI_RETURN_IF_ERROR(
        SsiOnWrite(SsiWriteFootprint::NodeProperty(key, value)));
    engine_->node_prop_index.RemovePending(key, value, id, id_);
    index_ops_.push_back(
        {IndexOp::Kind::kNodePropRemove, id, kInvalidToken, key, value});
  }
  (*pending)->data.deleted = true;
  (*pending)->data.labels.clear();
  (*pending)->data.props.clear();
  wal_ops_.push_back(WalOp::DeleteNode(id));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

Result<std::shared_ptr<const Version>> Transaction::VisibleNodeVersion(
    NodeId id) {
  NEOSI_RETURN_IF_ERROR(CheckActive());
  NEOSI_RETURN_IF_ERROR(FailIfSnapshotExpired());
  NEOSI_RETURN_IF_ERROR(FailIfDoomed());
  const EntityKey key = EntityKey::Node(id);

  // SIREAD marker BEFORE the walk (a serializable writer stamps its commit
  // before its post-stamp marker rescan, so one side always observes the
  // other; see ssi_tracker.h). Inserted even when the read lands NotFound:
  // the predicate "this id is invisible to me" is still a read.
  if (ssi_) engine_->ssi.AddEntityRead(ssi_, key);

  // Stock Neo4j read committed: short shared read lock around the read.
  const bool short_lock = isolation_ == IsolationLevel::kReadCommitted;
  if (short_lock) {
    Status s = engine_->lock_manager.AcquireShared(id_, key);
    if (!s.ok()) {
      RollbackLocked();
      return s;
    }
  }
  auto release = [&] {
    if (short_lock) engine_->lock_manager.Release(id_, key);
  };

  auto node = engine_->cache->GetNode(id);
  if (!node.ok()) {
    release();
    return node.status();
  }
  auto version = (*node)->chain.Visible(SnapshotTs(), id_);
  // Read-time conflict-out: versions committed after our snapshot are
  // rw-antidependencies this --rw--> writer (we read underneath them).
  if (ssi_) {
    std::vector<std::pair<TxnId, Timestamp>> newer;
    (*node)->chain.CommittedNewerThan(start_ts_, &newer);
    release();
    NEOSI_RETURN_IF_ERROR(SsiObserveNewer(newer));
  } else {
    release();
  }
  // Post-walk expiry check: if the sweep marked us DURING the walk, the
  // version we resolved (or the NotFound we are about to report) may
  // reflect reclaimed state — fail the read instead.
  NEOSI_RETURN_IF_ERROR(FailIfSnapshotExpired());
  if (!version || version->data.deleted) {
    return Status::NotFound("node " + std::to_string(id) + " not visible");
  }
  return version;
}

Result<std::shared_ptr<const Version>> Transaction::VisibleRelVersion(
    RelId id) {
  NEOSI_RETURN_IF_ERROR(CheckActive());
  NEOSI_RETURN_IF_ERROR(FailIfSnapshotExpired());
  NEOSI_RETURN_IF_ERROR(FailIfDoomed());
  const EntityKey key = EntityKey::Rel(id);

  // SIREAD marker BEFORE the walk (see VisibleNodeVersion).
  if (ssi_) engine_->ssi.AddEntityRead(ssi_, key);

  const bool short_lock = isolation_ == IsolationLevel::kReadCommitted;
  if (short_lock) {
    Status s = engine_->lock_manager.AcquireShared(id_, key);
    if (!s.ok()) {
      RollbackLocked();
      return s;
    }
  }
  auto release = [&] {
    if (short_lock) engine_->lock_manager.Release(id_, key);
  };

  auto rel = engine_->cache->GetRel(id);
  if (!rel.ok()) {
    release();
    return rel.status();
  }
  auto version = (*rel)->chain.Visible(SnapshotTs(), id_);
  if (ssi_) {
    std::vector<std::pair<TxnId, Timestamp>> newer;
    (*rel)->chain.CommittedNewerThan(start_ts_, &newer);
    release();
    NEOSI_RETURN_IF_ERROR(SsiObserveNewer(newer));
  } else {
    release();
  }
  // Post-walk expiry check (see VisibleNodeVersion).
  NEOSI_RETURN_IF_ERROR(FailIfSnapshotExpired());
  if (!version || version->data.deleted) {
    return Status::NotFound("relationship " + std::to_string(id) +
                            " not visible");
  }
  return version;
}

Result<NodeView> Transaction::GetNode(NodeId id) {
  auto version = VisibleNodeVersion(id);
  if (!version.ok()) return version.status();

  NodeView view;
  view.id = id;
  for (LabelId label : (*version)->data.labels) {
    auto name = engine_->store.labels().NameOf(label);
    if (!name.ok()) return name.status();
    view.labels.push_back(*name);
  }
  auto props = NameProps((*version)->data.props);
  if (!props.ok()) return props.status();
  view.props = std::move(*props);
  return view;
}

Result<RelView> Transaction::GetRelationship(RelId id) {
  auto version = VisibleRelVersion(id);
  if (!version.ok()) return version.status();
  auto rel = engine_->cache->GetRel(id);
  if (!rel.ok()) return rel.status();

  RelView view;
  view.id = id;
  view.src = (*rel)->src;
  view.dst = (*rel)->dst;
  auto type_name = engine_->store.rel_types().NameOf((*rel)->type);
  if (!type_name.ok()) return type_name.status();
  view.type = *type_name;
  auto props = NameProps((*version)->data.props);
  if (!props.ok()) return props.status();
  view.props = std::move(*props);
  return view;
}

Result<PropertyValue> Transaction::GetNodeProperty(NodeId id,
                                                   const std::string& key) {
  auto token = PropKeyToken(key, /*create=*/false);
  if (!token.ok()) return token.status();
  auto version = VisibleNodeVersion(id);
  if (!version.ok()) return version.status();
  auto it = (*version)->data.props.find(*token);
  if (it == (*version)->data.props.end()) {
    return Status::NotFound("node has no property \"" + key + "\"");
  }
  return it->second;
}

Result<PropertyValue> Transaction::GetRelProperty(RelId id,
                                                  const std::string& key) {
  auto token = PropKeyToken(key, /*create=*/false);
  if (!token.ok()) return token.status();
  auto version = VisibleRelVersion(id);
  if (!version.ok()) return version.status();
  auto it = (*version)->data.props.find(*token);
  if (it == (*version)->data.props.end()) {
    return Status::NotFound("relationship has no property \"" + key + "\"");
  }
  return it->second;
}

Result<bool> Transaction::NodeHasLabel(NodeId id, const std::string& label) {
  auto token = LabelToken(label, /*create=*/false);
  if (!token.ok()) {
    if (token.status().IsNotFound()) return false;
    return token.status();
  }
  auto version = VisibleNodeVersion(id);
  if (!version.ok()) return version.status();
  const auto& labels = (*version)->data.labels;
  return std::find(labels.begin(), labels.end(), *token) != labels.end();
}

bool Transaction::NodeExists(NodeId id) {
  return VisibleNodeVersion(id).ok();
}

bool Transaction::RelExists(RelId id) { return VisibleRelVersion(id).ok(); }

Result<std::vector<NodeId>> Transaction::AllNodes() {
  NEOSI_RETURN_IF_ERROR(CheckActive());
  NEOSI_RETURN_IF_ERROR(FailIfSnapshotExpired());
  NEOSI_RETURN_IF_ERROR(FailIfDoomed());
  std::vector<NodeId> out;
  const Snapshot snap = ReadSnapshot();

  // Full-scan predicate read: the all-nodes SIREAD range marker makes any
  // later node creation/deletion a rw-antidependency into this transaction.
  if (ssi_) engine_->ssi.AddAllNodesRead(ssi_);
  std::vector<std::pair<TxnId, Timestamp>> newer;

  // Persistent store scan merged with cached versions: the enriched
  // iterator of §4. Tombstoned records are still in the store; visibility
  // filters them.
  Status s = engine_->store.ForEachNode([&](NodeId id) {
    auto node = engine_->cache->GetNode(id);
    if (!node.ok()) return Status::OK();  // Purged between scan and resolve.
    auto version = (*node)->chain.Visible(snap.start_ts, snap.txn_id);
    if (version && !version->data.deleted) out.push_back(id);
    if (ssi_) (*node)->chain.CommittedNewerThan(start_ts_, &newer);
    return Status::OK();
  });
  NEOSI_RETURN_IF_ERROR(s);
  NEOSI_RETURN_IF_ERROR(SsiObserveNewer(newer));

  // Own created (still uncommitted) nodes are not in the store yet.
  for (NodeId id : created_nodes_) {
    auto it = writes_.find(EntityKey::Node(id));
    if (it != writes_.end() && !it->second.pending->data.deleted) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  // Post-scan expiry check: reclamation racing the scan could have pruned
  // snapshot-visible versions from chains the scan already passed.
  NEOSI_RETURN_IF_ERROR(FailIfSnapshotExpired());
  return out;
}

Result<std::vector<NodeId>> Transaction::GetNodesByLabel(
    const std::string& label) {
  NEOSI_RETURN_IF_ERROR(CheckActive());
  NEOSI_RETURN_IF_ERROR(FailIfDoomed());
  auto token = LabelToken(label, /*create=*/false);
  if (!token.ok()) {
    if (token.status().IsNotFound()) return std::vector<NodeId>{};
    return token.status();
  }
  // Label-range SIREAD marker before the lookup; anonymous conflict-out
  // after it (index entries only carry commit timestamps, not writer ids —
  // see SsiObserveAnonymous).
  if (ssi_) engine_->ssi.AddLabelRead(ssi_, *token);
  std::vector<NodeId> out = engine_->label_index.Lookup(*token,
                                                        ReadSnapshot());
  if (ssi_) {
    std::vector<Timestamp> conflicts;
    engine_->label_index.CollectConflictsOut(*token, start_ts_, &conflicts);
    NEOSI_RETURN_IF_ERROR(SsiObserveAnonymous(conflicts));
  }
  std::sort(out.begin(), out.end());
  NEOSI_RETURN_IF_ERROR(FailIfSnapshotExpired());
  return out;
}

Result<std::vector<NodeId>> Transaction::GetNodesByProperty(
    const std::string& key, const PropertyValue& value) {
  NEOSI_RETURN_IF_ERROR(CheckActive());
  NEOSI_RETURN_IF_ERROR(FailIfDoomed());
  auto token = PropKeyToken(key, /*create=*/false);
  if (!token.ok()) {
    if (token.status().IsNotFound()) return std::vector<NodeId>{};
    return token.status();
  }
  if (ssi_) engine_->ssi.AddPropertyRead(ssi_, /*node=*/true, *token,
                                         value, value);
  std::vector<NodeId> out =
      engine_->node_prop_index.Lookup(*token, value, ReadSnapshot());
  if (ssi_) {
    std::vector<Timestamp> conflicts;
    engine_->node_prop_index.CollectConflictsOut(*token, value, value,
                                                 start_ts_, &conflicts);
    NEOSI_RETURN_IF_ERROR(SsiObserveAnonymous(conflicts));
  }
  std::sort(out.begin(), out.end());
  NEOSI_RETURN_IF_ERROR(FailIfSnapshotExpired());
  return out;
}

Result<std::vector<NodeId>> Transaction::GetNodesByPropertyRange(
    const std::string& key, const std::optional<PropertyValue>& lo,
    const std::optional<PropertyValue>& hi) {
  NEOSI_RETURN_IF_ERROR(CheckActive());
  NEOSI_RETURN_IF_ERROR(FailIfDoomed());
  auto token = PropKeyToken(key, /*create=*/false);
  if (!token.ok()) {
    if (token.status().IsNotFound()) return std::vector<NodeId>{};
    return token.status();
  }
  if (ssi_) engine_->ssi.AddPropertyRead(ssi_, /*node=*/true, *token, lo, hi);
  std::vector<NodeId> out =
      engine_->node_prop_index.Scan(*token, lo, hi, ReadSnapshot());
  if (ssi_) {
    std::vector<Timestamp> conflicts;
    engine_->node_prop_index.CollectConflictsOut(*token, lo, hi, start_ts_,
                                                 &conflicts);
    NEOSI_RETURN_IF_ERROR(SsiObserveAnonymous(conflicts));
  }
  NEOSI_RETURN_IF_ERROR(FailIfSnapshotExpired());
  return out;
}

Result<std::vector<RelId>> Transaction::GetRelsByProperty(
    const std::string& key, const PropertyValue& value) {
  NEOSI_RETURN_IF_ERROR(CheckActive());
  NEOSI_RETURN_IF_ERROR(FailIfDoomed());
  auto token = PropKeyToken(key, /*create=*/false);
  if (!token.ok()) {
    if (token.status().IsNotFound()) return std::vector<RelId>{};
    return token.status();
  }
  if (ssi_) engine_->ssi.AddPropertyRead(ssi_, /*node=*/false, *token,
                                         value, value);
  std::vector<RelId> out =
      engine_->rel_prop_index.Lookup(*token, value, ReadSnapshot());
  if (ssi_) {
    std::vector<Timestamp> conflicts;
    engine_->rel_prop_index.CollectConflictsOut(*token, value, value,
                                                start_ts_, &conflicts);
    NEOSI_RETURN_IF_ERROR(SsiObserveAnonymous(conflicts));
  }
  std::sort(out.begin(), out.end());
  NEOSI_RETURN_IF_ERROR(FailIfSnapshotExpired());
  return out;
}

Result<std::vector<RelId>> Transaction::GetRelationships(
    NodeId node, Direction direction,
    const std::optional<std::string>& type) {
  NEOSI_RETURN_IF_ERROR(CheckActive());

  // The anchor node must itself be visible.
  auto anchor = VisibleNodeVersion(node);
  if (!anchor.ok()) return anchor.status();

  RelTypeId type_token = kInvalidToken;
  if (type.has_value()) {
    auto token = RelTypeToken(*type, /*create=*/false);
    if (!token.ok()) {
      if (token.status().IsNotFound()) return std::vector<RelId>{};
      return token.status();
    }
    type_token = *token;
  }

  // Adjacency-range SIREAD marker: later relationship creation/deletion
  // touching this node is a rw-antidependency into this transaction (the
  // anchor read above already left its own entity marker).
  if (ssi_) engine_->ssi.AddAdjacencyRead(ssi_, node);

  // Enriched iterator (§4): persistent relationship chain merged with the
  // transaction's own in-cache, not-yet-committed relationships.
  std::vector<RelId> candidates;
  Status s = engine_->store.RelChainOf(node, &candidates);
  if (!s.ok() && !s.IsOutOfRange()) return s;
  auto created_it = created_rels_by_node_.find(node);
  if (created_it != created_rels_by_node_.end()) {
    candidates.insert(candidates.end(), created_it->second.begin(),
                      created_it->second.end());
  }

  const Snapshot snap = ReadSnapshot();
  std::vector<RelId> out;
  std::vector<std::pair<TxnId, Timestamp>> newer;
  for (RelId rel_id : candidates) {
    auto rel = engine_->cache->GetRel(rel_id);
    if (!rel.ok()) continue;  // Purged concurrently: invisible regardless.
    auto version = (*rel)->chain.Visible(snap.start_ts, snap.txn_id);
    if (ssi_) (*rel)->chain.CommittedNewerThan(start_ts_, &newer);
    if (!version || version->data.deleted) continue;

    const bool outgoing = (*rel)->src == node;
    const bool incoming = (*rel)->dst == node;
    if (direction == Direction::kOutgoing && !outgoing) continue;
    if (direction == Direction::kIncoming && !incoming) continue;
    if (type_token != kInvalidToken && (*rel)->type != type_token) continue;
    out.push_back(rel_id);
  }
  NEOSI_RETURN_IF_ERROR(SsiObserveNewer(newer));
  // Post-scan expiry check (see AllNodes).
  NEOSI_RETURN_IF_ERROR(FailIfSnapshotExpired());
  return out;
}

Result<std::vector<NodeId>> Transaction::GetNeighbors(
    NodeId node, Direction direction,
    const std::optional<std::string>& type) {
  auto rels = GetRelationships(node, direction, type);
  if (!rels.ok()) return rels.status();
  std::vector<NodeId> out;
  out.reserve(rels->size());
  for (RelId rel_id : *rels) {
    auto rel = engine_->cache->GetRel(rel_id);
    if (!rel.ok()) continue;
    out.push_back((*rel)->src == node ? (*rel)->dst : (*rel)->src);
  }
  return out;
}

Result<size_t> Transaction::Degree(NodeId node, Direction direction) {
  auto rels = GetRelationships(node, direction);
  if (!rels.ok()) return rels.status();
  return rels->size();
}

// ---------------------------------------------------------------------------
// Commit / abort
// ---------------------------------------------------------------------------

Status Transaction::Commit() {
  NEOSI_RETURN_IF_ERROR(CheckActive());
  // Snapshot-too-old: an expired snapshot must not commit — its reads (and
  // the write images based on them) may predate reclamation. Rolls back
  // and releases every lock, so an expired writer cannot park a lock set
  // behind a commit that is doomed anyway.
  NEOSI_RETURN_IF_ERROR(FailIfSnapshotExpired());
  NEOSI_RETURN_IF_ERROR(FailIfDoomed());

  PruneAnnihilated();
  if (writes_.empty()) return CommitTokenOnly();

  // Stage 1 — validate, then sequence. The oracle's timestamp allocation is
  // the ONLY global synchronization point of the whole commit.
  NEOSI_RETURN_IF_ERROR(ValidateCommit());
  // Last expiry gate, immediately before the commit becomes irrevocable
  // (sequencing). Past this point expiry cannot affect correctness: every
  // read is done, validation pinned the write set under long locks, and
  // the commit's own effects carry its fresh commit timestamp.
  NEOSI_RETURN_IF_ERROR(FailIfSnapshotExpired());
  // SSI dangerous-structure gate: serialized with every other serializable
  // commit decision under the tracker's commit mutex, which stays held
  // through the post-stamp rescan below — a concurrent serializable
  // reader's own commit decision therefore cannot interleave into the
  // window where our stamps and edges are only partially published. On
  // success we are in kCommitting — any peer's later check treats us as
  // committed.
  std::unique_lock<std::mutex> ssi_commit_guard;
  if (ssi_) {
    Status ssi_s =
        engine_->ssi.PreCommitCheck(ssi_, ssi_footprints_, &ssi_commit_guard);
    if (!ssi_s.ok()) {
      RollbackLocked();
      return ssi_s;
    }
  }
  const Timestamp ts = engine_->oracle.NextCommitTs();
  // Timestamps are dense: every exit below must hand `ts` back to the
  // oracle via FinishCommit, or the publication watermark stalls.

  // Stage 2 — durability: group-commit WAL append (+ shared fsync). The
  // record's LSN comes back PINNED: a fuzzy checkpoint's stable LSN cannot
  // advance past it (so the prefix truncation cannot drop it) until our
  // effects have reached the store and we unpin below. Checkpoints never
  // block commits anymore — they simply truncate up to the oldest pin.
  auto lsn = WriteCommitRecord(ts);
  if (!lsn.ok()) {
    engine_->oracle.FinishCommit(ts);  // Nothing applied at ts.
    RollbackLocked();
    return lsn.status();
  }

  // Failure injection: crash after WAL append, before store apply. The pin
  // is deliberately NOT released: like a real crash, the record must stay
  // replayable until recovery applies it.
  if (engine_->test_hooks.crash_before_store_apply.load()) {
    // The commit record is durable — recovery will replay it — so the SSI
    // record must read committed: peers' danger checks and marker pruning
    // would otherwise treat a durable commit as aborted and commit over a
    // dangerous structure whose effects exist after recovery.
    if (ssi_) engine_->ssi.FinishCommit(ssi_, ts);
    engine_->oracle.FinishCommit(ts);
    return Status::IOError("simulated crash before store apply");
  }
  if (engine_->test_hooks.stall_before_store_apply.load()) {
    engine_->test_hooks.stalled_commits.fetch_add(1);
    while (engine_->test_hooks.stall_before_store_apply.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // Stage 3 — parallel application, outside any global lock: store apply,
  // version stamping, index stamping. Concurrent committers interleave
  // freely here; the long write locks (held until this commit has fully
  // applied and handed its timestamp back) keep each entity single-writer.
  Status s = ApplyToStore(ts);
  if (!s.ok()) {
    // Pin retained: the WAL record is now the only complete copy of this
    // commit; truncating it before recovery replays it would lose the
    // commit. The SSI record still publishes as committed — the commit is
    // durable and will be replayed, so serializable peers must not treat
    // this writer as aborted (pruning its markers and edges would let them
    // commit over a dangerous structure).
    if (ssi_) engine_->ssi.FinishCommit(ssi_, ts);
    engine_->oracle.FinishCommit(ts);
    return s;  // Store apply failure: recovery will repair from the WAL.
  }
  engine_->store.wal().Unpin(*lsn);

  s = StampVersions(ts);
  if (!s.ok()) {
    // Same as the store-apply failure above: the record is durable, so the
    // SSI side must publish the commit. Stamps may have partially landed —
    // run the post-stamp rescan too, so a reader that walked a stamped
    // chain in the window is still picked up (dooming it is the
    // conservative direction).
    if (ssi_) {
      engine_->ssi.FinishCommit(ssi_, ts);
      engine_->ssi.OnPostStamp(ssi_, ssi_footprints_);
      ssi_commit_guard.unlock();
    }
    engine_->oracle.FinishCommit(ts);
    return s;
  }
  StampIndexes(ts);

  // SSI finish BEFORE the oracle publishes ts — a reader that can observe
  // this commit must find its SIREAD edges fully recorded — then the
  // post-stamp rescan: any marker inserted by a reader that walked our
  // chains before our stamps became visible is picked up here (the reader
  // inserts its marker before walking; we stamp before rescanning; one
  // side always sees the other).
  if (ssi_) {
    engine_->ssi.FinishCommit(ssi_, ts);
    engine_->ssi.OnPostStamp(ssi_, ssi_footprints_);
    ssi_commit_guard.unlock();
  }

  // Failure injection: park between SSI finish and ordered publication —
  // the window a freshly begun transaction's snapshot can still predate
  // this commit (safe-snapshot race tests).
  if (engine_->test_hooks.stall_before_publication.load()) {
    engine_->test_hooks.stalled_publications.fetch_add(1);
    while (engine_->test_hooks.stall_before_publication.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // Stage 4 — ordered publication: the watermark advances past ts once
  // every lower timestamp has also finished, and only then can a new
  // snapshot observe this commit.
  engine_->oracle.FinishCommit(ts);
  // Only now is the published read timestamp a lower bound on future
  // snapshots — tell the tracker, so SIREAD/edge pruning can advance past
  // the commits that are no longer observable.
  engine_->ssi.AdvanceSnapshotFloor(engine_->oracle.ReadTs());

  engine_->lock_manager.ReleaseAll(id_);
  engine_->active_txns.Unregister(id_);
  state_ = TxnState::kCommitted;
  commit_ts_ = ts;

  // Publication is the GC daemon's pacing signal: when the backlog of
  // obsolete versions crosses the configured threshold, wake it now instead
  // of waiting out its interval. One relaxed atomic load in the common
  // case — no GC work happens on this thread.
  if (GcDaemon* daemon =
          engine_->gc_daemon.load(std::memory_order_acquire)) {
    daemon->NudgeIfBacklogged();
  }
  // Same pattern for the checkpoint daemon: a write burst that outgrows
  // the WAL threshold gets checkpointed now, not an interval later.
  if (CheckpointDaemon* daemon =
          engine_->checkpoint_daemon.load(std::memory_order_acquire)) {
    daemon->NudgeIfWalExceedsThreshold();
  }

  // Ack in publication order: once Commit() returns, this session's next
  // snapshot is guaranteed to include this commit (and every snapshot
  // anywhere that observes a later commit also observes this one).
  engine_->oracle.WaitUntilPublished(ts);
  return Status::OK();
}

void Transaction::PruneAnnihilated() {
  std::vector<EntityKey> annihilated;
  for (auto& [key, w] : writes_) {
    if (w.created && w.pending->data.deleted) annihilated.push_back(key);
  }
  for (const EntityKey& key : annihilated) {
    auto& w = writes_[key];
    if (w.node) {
      w.node->chain.AbortHead(id_);
      engine_->cache->EraseNode(key.id);
      engine_->store.ReleaseNodeId(key.id);
    } else {
      w.rel->chain.AbortHead(id_);
      engine_->cache->EraseRel(key.id);
      engine_->store.ReleaseRelId(key.id);
    }
    const bool is_node = w.node != nullptr;
    // Cancel this entity's pending index entries and drop its ops.
    for (auto it = index_ops_.begin(); it != index_ops_.end();) {
      const bool entity_matches =
          it->entity == key.id &&
          (is_node ? (it->kind == IndexOp::Kind::kLabelAdd ||
                      it->kind == IndexOp::Kind::kLabelRemove ||
                      it->kind == IndexOp::Kind::kNodePropAdd ||
                      it->kind == IndexOp::Kind::kNodePropRemove)
                   : (it->kind == IndexOp::Kind::kRelPropAdd ||
                      it->kind == IndexOp::Kind::kRelPropRemove));
      if (entity_matches) {
        switch (it->kind) {
          case IndexOp::Kind::kLabelAdd:
            engine_->label_index.AbortAdd(it->label, it->entity, id_);
            break;
          case IndexOp::Kind::kLabelRemove:
            engine_->label_index.AbortRemove(it->label, it->entity, id_);
            break;
          case IndexOp::Kind::kNodePropAdd:
            engine_->node_prop_index.AbortAdd(it->key, it->value, it->entity,
                                              id_);
            break;
          case IndexOp::Kind::kNodePropRemove:
            engine_->node_prop_index.AbortRemove(it->key, it->value,
                                                 it->entity, id_);
            break;
          case IndexOp::Kind::kRelPropAdd:
            engine_->rel_prop_index.AbortAdd(it->key, it->value, it->entity,
                                             id_);
            break;
          case IndexOp::Kind::kRelPropRemove:
            engine_->rel_prop_index.AbortRemove(it->key, it->value,
                                                it->entity, id_);
            break;
        }
        it = index_ops_.erase(it);
      } else {
        ++it;
      }
    }
    // Drop its WAL ops.
    auto node_op = [](WalOpType t) {
      return t == WalOpType::kCreateNode || t == WalOpType::kDeleteNode ||
             t == WalOpType::kNodeState ||
             t == WalOpType::kSetNodeProperty ||
             t == WalOpType::kRemoveNodeProperty ||
             t == WalOpType::kAddLabel || t == WalOpType::kRemoveLabel;
    };
    auto rel_op = [](WalOpType t) {
      return t == WalOpType::kCreateRel || t == WalOpType::kDeleteRel ||
             t == WalOpType::kRelState || t == WalOpType::kSetRelProperty ||
             t == WalOpType::kRemoveRelProperty;
    };
    wal_ops_.erase(
        std::remove_if(wal_ops_.begin(), wal_ops_.end(),
                       [&](const WalOp& op) {
                         return op.id == key.id &&
                                (is_node ? node_op(op.type) : rel_op(op.type));
                       }),
        wal_ops_.end());
    writes_.erase(key);
  }
}

Status Transaction::CommitTokenOnly() {
  NEOSI_RETURN_IF_ERROR(FailIfDoomed());
  // Even a read-only serializable commit must pass the dangerous-structure
  // gate: a committed reader can be the incoming side of a pivot (that is
  // exactly the read-only-anomaly shape).
  std::unique_lock<std::mutex> ssi_commit_guard;
  if (ssi_) {
    Status ssi_s =
        engine_->ssi.PreCommitCheck(ssi_, ssi_footprints_, &ssi_commit_guard);
    if (!ssi_s.ok()) {
      RollbackLocked();
      return ssi_s;
    }
  }
  // Read-only (or fully annihilated): nothing to apply or log, but token
  // creations (never rolled back) may still need to reach the WAL — and
  // must honour sync_commits like any other commit: the tokens are durable
  // prerequisites of later records.
  if (!wal_ops_.empty()) {
    WalRecord record;
    record.txn_id = id_;
    record.commit_ts = engine_->oracle.ReadTs();
    record.publish_ts = record.commit_ts;
    record.ops = std::move(wal_ops_);
    // No LSN pin needed: the token-store page writes happened at
    // GetOrCreate time (BEFORE this append), so a fuzzy checkpoint that
    // truncates this record has already captured the tokens in its store
    // sync — the record is redundant by the time it becomes truncatable.
    auto lsn = engine_->store.wal().group().Commit(
        record, engine_->options.sync_commits);
    if (!lsn.ok()) {
      RollbackLocked();
      return lsn.status();
    }
  }
  // Commit timestamp for a writeless serializable txn: the newest read
  // timestamp bounds everything it observed, which is what peers' danger
  // checks compare against (critical for the read-only anomaly, where the
  // reader's commit ORDER relative to the pivot's out-neighbour matters).
  if (ssi_) {
    engine_->ssi.FinishCommit(ssi_, engine_->oracle.ReadTs());
    ssi_commit_guard.unlock();
  }
  engine_->lock_manager.ReleaseAll(id_);
  engine_->active_txns.Unregister(id_);
  state_ = TxnState::kCommitted;
  return Status::OK();
}

Status Transaction::ValidateCommit() {
  if (!UsesSnapshotReads() ||
      engine_->options.conflict_policy != ConflictPolicy::kFirstCommitterWins) {
    return Status::OK();
  }
  for (const auto& [key, w] : writes_) {
    if (w.created) continue;
    const Timestamp newest =
        w.node ? w.node->chain.NewestCommitTs() : w.rel->chain.NewestCommitTs();
    if (newest > start_ts_) {
      RollbackLocked();
      return Status::Aborted(
          "write-write conflict detected at commit "
          "(first-committer-wins)");
    }
  }
  return Status::OK();
}

Result<Lsn> Transaction::WriteCommitRecord(Timestamp ts) {
  WalRecord record;
  record.txn_id = id_;
  record.commit_ts = ts;
  // Publication hint for replica appliers: every commit with a timestamp at
  // or below the CURRENT watermark already finished its append (appends
  // happen before publication), so it sits at a lower LSN than this record.
  record.publish_ts = engine_->oracle.ReadTs();
  record.ops = std::move(wal_ops_);
  // pin=true: the returned lsn stays checkpoint-proof until the caller has
  // applied this commit to the stores and unpins it.
  return engine_->store.wal().group().Commit(
      record, engine_->options.sync_commits, /*pin=*/true);
}

Status Transaction::ApplyToStore(Timestamp ts) {
  int ops_budget = engine_->test_hooks.crash_after_n_store_ops.load();
  auto tick_budget = [&]() -> bool {
    if (ops_budget < 0) return false;
    if (ops_budget == 0) return true;
    --ops_budget;
    return false;
  };
  for (const auto& [key, w] : writes_) {
    if (tick_budget()) {
      return Status::IOError("simulated crash during store apply");
    }
    Status s;
    const VersionData& data = w.pending->data;
    if (w.node) {
      if (w.created) {
        s = engine_->store.PersistNewNode(key.id, data.labels, data.props, ts);
      } else if (data.deleted) {
        s = engine_->store.PersistNodeTombstone(key.id, ts);
      } else {
        s = engine_->store.PersistNodeState(key.id, data.labels, data.props,
                                            ts);
      }
    } else {
      if (w.created) {
        s = engine_->store.PersistNewRel(key.id, w.rel->src, w.rel->dst,
                                         w.rel->type, data.props, ts);
      } else if (data.deleted) {
        s = engine_->store.PersistRelTombstone(key.id, ts);
      } else {
        s = engine_->store.PersistRelState(key.id, data.props, ts);
      }
    }
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status Transaction::StampVersions(Timestamp ts) {
  for (const auto& [key, w] : writes_) {
    // CommitHead stamps obsolete_since on the superseded version (and on
    // tombstones) under the chain latch; no global ordering is needed.
    auto superseded = w.node ? w.node->chain.CommitHead(id_, ts)
                             : w.rel->chain.CommitHead(id_, ts);
    if (!superseded.ok()) return superseded.status();
    if (*superseded) {
      engine_->gc_list.Append({key, *superseded, ts});
    }
    if (w.pending->data.deleted) {
      engine_->gc_list.Append({key, w.pending, ts});
    }
  }
  return Status::OK();
}

void Transaction::StampIndexes(Timestamp ts) {
  for (const IndexOp& op : index_ops_) {
    switch (op.kind) {
      case IndexOp::Kind::kLabelAdd:
        engine_->label_index.CommitAdd(op.label, op.entity, id_, ts);
        break;
      case IndexOp::Kind::kLabelRemove:
        engine_->label_index.CommitRemove(op.label, op.entity, id_, ts);
        break;
      case IndexOp::Kind::kNodePropAdd:
        engine_->node_prop_index.CommitAdd(op.key, op.value, op.entity, id_,
                                           ts);
        break;
      case IndexOp::Kind::kNodePropRemove:
        engine_->node_prop_index.CommitRemove(op.key, op.value, op.entity,
                                              id_, ts);
        break;
      case IndexOp::Kind::kRelPropAdd:
        engine_->rel_prop_index.CommitAdd(op.key, op.value, op.entity, id_,
                                          ts);
        break;
      case IndexOp::Kind::kRelPropRemove:
        engine_->rel_prop_index.CommitRemove(op.key, op.value, op.entity,
                                             id_, ts);
        break;
    }
  }
}

void Transaction::RollbackLocked() {
  for (auto& [key, w] : writes_) {
    if (w.node) {
      w.node->chain.AbortHead(id_);
      if (w.created) {
        engine_->cache->EraseNode(key.id);
        engine_->store.ReleaseNodeId(key.id);
      }
    } else if (w.rel) {
      w.rel->chain.AbortHead(id_);
      if (w.created) {
        engine_->cache->EraseRel(key.id);
        engine_->store.ReleaseRelId(key.id);
      }
    }
  }
  writes_.clear();
  created_nodes_.clear();
  created_rels_by_node_.clear();

  for (auto it = index_ops_.rbegin(); it != index_ops_.rend(); ++it) {
    switch (it->kind) {
      case IndexOp::Kind::kLabelAdd:
        engine_->label_index.AbortAdd(it->label, it->entity, id_);
        break;
      case IndexOp::Kind::kLabelRemove:
        engine_->label_index.AbortRemove(it->label, it->entity, id_);
        break;
      case IndexOp::Kind::kNodePropAdd:
        engine_->node_prop_index.AbortAdd(it->key, it->value, it->entity, id_);
        break;
      case IndexOp::Kind::kNodePropRemove:
        engine_->node_prop_index.AbortRemove(it->key, it->value, it->entity,
                                             id_);
        break;
      case IndexOp::Kind::kRelPropAdd:
        engine_->rel_prop_index.AbortAdd(it->key, it->value, it->entity, id_);
        break;
      case IndexOp::Kind::kRelPropRemove:
        engine_->rel_prop_index.AbortRemove(it->key, it->value, it->entity,
                                            id_);
        break;
    }
  }
  index_ops_.clear();
  wal_ops_.clear();

  // SSI: drop out of the tracker (prunes our markers, breaks our edges).
  // Idempotent and a no-op if we already reached kCommitted.
  if (ssi_) engine_->ssi.Abort(ssi_);

  engine_->lock_manager.ReleaseAll(id_);
  engine_->active_txns.Unregister(id_);
  state_ = TxnState::kAborted;
}

Status Transaction::Abort() {
  NEOSI_RETURN_IF_ERROR(CheckActive());
  RollbackLocked();
  return Status::OK();
}

}  // namespace neosi
