#include "graph/vacuum_gc.h"

#include <chrono>
#include <string>
#include <vector>

#include "graph/garbage_collector.h"

namespace neosi {

VacuumStats VacuumGc::Run() {
  const Timestamp watermark =
      engine_->active_txns.Watermark(engine_->oracle.ReadTs());
  return RunUpTo(watermark);
}

VacuumStats VacuumGc::RunUpTo(Timestamp watermark) {
  std::lock_guard<std::mutex> guard(mu_);
  const auto t0 = std::chrono::steady_clock::now();

  VacuumStats stats;
  stats.watermark = watermark;

  // PostgreSQL-style: visit EVERY record in the persistent store, read it,
  // and write it back (the page rewrite the paper calls out), pruning
  // whatever garbage happens to exist. Cost is O(store size) regardless of
  // the amount of garbage — the behaviour experiment E8 contrasts.
  std::vector<RelId> rels_to_purge;
  std::vector<NodeId> nodes_to_purge;

  engine_->store
      .ForEachRel([&](RelId id) {
        ++stats.records_scanned;
        RelationshipRecord rec;
        NEOSI_RETURN_IF_ERROR(engine_->store.ReadRelRecord(id, &rec));
        auto rel = engine_->cache->PeekRel(id);
        if (rel) {
          // Prune superseded versions below the watermark.
          stats.versions_pruned += rel->chain.PruneSupersededUpTo(watermark);
          auto latest = rel->chain.LatestCommitted();
          if (latest && latest->data.deleted &&
              latest->commit_ts <= watermark && !rel->chain.HasUncommitted()) {
            rels_to_purge.push_back(id);
            return Status::OK();
          }
        } else if (rec.deleted && rec.commit_ts <= watermark) {
          rels_to_purge.push_back(id);
          return Status::OK();
        }
        // The "rewrite the page" cost: write the record back unchanged.
        ++stats.records_rewritten;
        return engine_->store.ApplyRewrite(EntityKey::Rel(id));
      })
      .ok();

  engine_->store
      .ForEachNode([&](NodeId id) {
        ++stats.records_scanned;
        NodeRecord rec;
        NEOSI_RETURN_IF_ERROR(engine_->store.ReadNodeRecord(id, &rec));
        auto node = engine_->cache->PeekNode(id);
        if (node) {
          stats.versions_pruned += node->chain.PruneSupersededUpTo(watermark);
          auto latest = node->chain.LatestCommitted();
          if (latest && latest->data.deleted &&
              latest->commit_ts <= watermark &&
              !node->chain.HasUncommitted()) {
            nodes_to_purge.push_back(id);
            return Status::OK();
          }
        } else if (rec.deleted && rec.commit_ts <= watermark) {
          nodes_to_purge.push_back(id);
          return Status::OK();
        }
        ++stats.records_rewritten;
        return engine_->store.ApplyRewrite(EntityKey::Node(id));
      })
      .ok();

  // Physical purges, relationships first, WAL record + surgery inside one
  // checkpoint epoch — shared with GcEngine.
  stats.tombstones_purged +=
      LogAndPurgeTombstones(engine_, rels_to_purge, nodes_to_purge,
                            watermark);

  engine_->label_index.Compact(watermark);
  engine_->node_prop_index.Compact(watermark);
  engine_->rel_prop_index.Compact(watermark);

  stats.nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return stats;
}

}  // namespace neosi
