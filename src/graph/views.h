// Materialized read results returned by the public Transaction API.

#ifndef NEOSI_GRAPH_VIEWS_H_
#define NEOSI_GRAPH_VIEWS_H_

#include <map>
#include <string>
#include <vector>

#include "common/property_value.h"
#include "common/types.h"

namespace neosi {

/// Property map keyed by property-key NAME (the public API speaks names;
/// token ids are internal).
using NamedProperties = std::map<std::string, PropertyValue>;

/// A node as observed by a transaction's snapshot.
struct NodeView {
  NodeId id = kInvalidNodeId;
  std::vector<std::string> labels;
  NamedProperties props;
};

/// A relationship as observed by a transaction's snapshot.
struct RelView {
  RelId id = kInvalidRelId;
  NodeId src = kInvalidNodeId;
  NodeId dst = kInvalidNodeId;
  std::string type;
  NamedProperties props;

  /// The endpoint opposite to `node` (== node for self-loops).
  NodeId OtherEnd(NodeId node) const { return node == src ? dst : src; }
};

}  // namespace neosi

#endif  // NEOSI_GRAPH_VIEWS_H_
