// A small declarative pattern-matching API over the transactional graph —
// the "query language or API that enables traversing graphs, running the
// whole query on the query engine" the paper's introduction motivates
// graph databases with (§1).
//
//   // MATCH (p:Person {age in [30,40]})-[:KNOWS]->(q:Person) RETURN p,q
//   auto rows = Query::Match(NodePattern("Person").Where(
//                                Filter::Between("age", 30, 40)))
//                   .Expand(Expansion("KNOWS", Direction::kOutgoing,
//                                     NodePattern("Person")))
//                   .Execute(txn);
//
// Execution plans pick the cheapest start point (property equality index >
// label index > full scan), then expand step by step, filtering each bound
// node against its pattern. The whole query runs inside one transaction,
// so under snapshot isolation every step observes one consistent graph.

#ifndef NEOSI_GRAPH_QUERY_H_
#define NEOSI_GRAPH_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/property_value.h"
#include "common/status.h"
#include "common/types.h"
#include "graph/transaction.h"

namespace neosi {

/// A predicate on one property of a bound node.
struct Filter {
  enum class Op : uint8_t { kEq, kLt, kLe, kGt, kGe, kBetween, kExists };

  std::string key;
  Op op = Op::kEq;
  PropertyValue a;  ///< Operand (lower bound for kBetween).
  PropertyValue b;  ///< Upper bound for kBetween.

  static Filter Eq(std::string key, PropertyValue value);
  static Filter Lt(std::string key, PropertyValue value);
  static Filter Le(std::string key, PropertyValue value);
  static Filter Gt(std::string key, PropertyValue value);
  static Filter Ge(std::string key, PropertyValue value);
  static Filter Between(std::string key, PropertyValue lo, PropertyValue hi);
  static Filter Exists(std::string key);

  /// Evaluates against a materialized property map.
  bool Matches(const NamedProperties& props) const;
};

/// Constraints on one node position of the pattern.
class NodePattern {
 public:
  NodePattern() = default;
  explicit NodePattern(std::string label) : label_(std::move(label)) {}

  NodePattern& Where(Filter filter) {
    filters_.push_back(std::move(filter));
    return *this;
  }

  const std::optional<std::string>& label() const { return label_; }
  const std::vector<Filter>& filters() const { return filters_; }

 private:
  std::optional<std::string> label_;
  std::vector<Filter> filters_;
};

/// One relationship hop of the pattern.
struct Expansion {
  Expansion(std::optional<std::string> type, Direction direction,
            NodePattern target)
      : type(std::move(type)),
        direction(direction),
        target(std::move(target)) {}

  std::optional<std::string> type;
  Direction direction = Direction::kOutgoing;
  NodePattern target;
};

/// One result row: the node bound at each pattern position, in order.
using QueryRow = std::vector<NodeId>;

/// A linear MATCH ... EXPAND* query.
class Query {
 public:
  /// Starts a query at nodes matching `pattern`.
  static Query Match(NodePattern pattern);

  /// Appends one hop.
  Query& Expand(Expansion expansion);

  /// Caps the number of result rows (0 = unlimited).
  Query& Limit(size_t limit);

  /// If set, bound nodes must be pairwise distinct within a row (no
  /// revisiting; default true, mirroring Cypher's relationship isomorphism
  /// closely enough for a linear pattern).
  Query& AllowRevisit(bool allow);

  /// Runs the query inside `txn`'s snapshot.
  Result<std::vector<QueryRow>> Execute(Transaction& txn) const;

  /// Convenience: the distinct node ids bound at the LAST position.
  Result<std::vector<NodeId>> ExecuteEndpoints(Transaction& txn) const;

 private:
  Query() = default;

  /// Candidate start set via the cheapest access path.
  Result<std::vector<NodeId>> StartCandidates(Transaction& txn) const;

  /// Verifies a node against a pattern (label + all filters).
  static Result<bool> MatchesPattern(Transaction& txn, NodeId node,
                                     const NodePattern& pattern);

  NodePattern start_;
  std::vector<Expansion> expansions_;
  size_t limit_ = 0;
  bool allow_revisit_ = false;
};

}  // namespace neosi

#endif  // NEOSI_GRAPH_QUERY_H_
