// PostgreSQL-VACUUM-style baseline collector (paper §4's foil: "it traverses
// all the pages in the persistent storage and rewrites them after removing
// the obsolete versions", stalling processing). Scans EVERY record and every
// cached chain regardless of how little garbage exists; experiment E8
// contrasts its pause times with GcEngine.

#ifndef NEOSI_GRAPH_VACUUM_GC_H_
#define NEOSI_GRAPH_VACUUM_GC_H_

#include <cstdint>
#include <mutex>

#include "common/status.h"
#include "graph/engine.h"

namespace neosi {

/// Outcome of one vacuum pass.
struct VacuumStats {
  Timestamp watermark = kNoTimestamp;
  uint64_t records_scanned = 0;   ///< Store records visited (the full scan).
  uint64_t records_rewritten = 0; ///< Records read + written back.
  uint64_t versions_pruned = 0;
  uint64_t tombstones_purged = 0;
  uint64_t nanos = 0;
};

/// Full-scan collector; functionally equivalent garbage removal to GcEngine,
/// with the cost model of a vacuum.
class VacuumGc {
 public:
  explicit VacuumGc(Engine* engine) : engine_(engine) {}

  VacuumGc(const VacuumGc&) = delete;
  VacuumGc& operator=(const VacuumGc&) = delete;

  VacuumStats Run();
  VacuumStats RunUpTo(Timestamp watermark);

 private:
  Engine* const engine_;
  std::mutex mu_;
};

}  // namespace neosi

#endif  // NEOSI_GRAPH_VACUUM_GC_H_
