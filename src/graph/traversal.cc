#include "graph/traversal.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace neosi {
namespace traversal {

Result<std::vector<NodeId>> KHopNeighborhood(
    Transaction& txn, NodeId start, int depth, Direction direction,
    const std::optional<std::string>& type) {
  std::vector<NodeId> out;
  std::unordered_set<NodeId> seen{start};
  std::deque<std::pair<NodeId, int>> frontier{{start, 0}};
  while (!frontier.empty()) {
    auto [node, dist] = frontier.front();
    frontier.pop_front();
    if (dist == depth) continue;
    auto neighbors = txn.GetNeighbors(node, direction, type);
    if (!neighbors.ok()) {
      if (neighbors.status().IsNotFound()) continue;  // Vanished under RC.
      return neighbors.status();
    }
    for (NodeId next : *neighbors) {
      if (seen.insert(next).second) {
        out.push_back(next);
        frontier.emplace_back(next, dist + 1);
      }
    }
  }
  return out;
}

Result<std::optional<std::vector<NodeId>>> ShortestPath(
    Transaction& txn, NodeId from, NodeId to, int max_depth,
    Direction direction, const std::optional<std::string>& type) {
  if (from == to) {
    return std::optional<std::vector<NodeId>>(std::vector<NodeId>{from});
  }
  std::unordered_map<NodeId, NodeId> parent;
  std::deque<std::pair<NodeId, int>> frontier{{from, 0}};
  parent[from] = from;
  while (!frontier.empty()) {
    auto [node, dist] = frontier.front();
    frontier.pop_front();
    if (dist >= max_depth) continue;
    auto neighbors = txn.GetNeighbors(node, direction, type);
    if (!neighbors.ok()) {
      if (neighbors.status().IsNotFound()) continue;
      return neighbors.status();
    }
    for (NodeId next : *neighbors) {
      if (parent.count(next)) continue;
      parent[next] = node;
      if (next == to) {
        std::vector<NodeId> path{to};
        NodeId cur = to;
        while (cur != from) {
          cur = parent[cur];
          path.push_back(cur);
        }
        std::reverse(path.begin(), path.end());
        return std::optional<std::vector<NodeId>>(std::move(path));
      }
      frontier.emplace_back(next, dist + 1);
    }
  }
  return std::optional<std::vector<NodeId>>(std::nullopt);
}

Result<bool> PathExists(Transaction& txn, NodeId from, NodeId to,
                        int max_depth, Direction direction) {
  auto path = ShortestPath(txn, from, to, max_depth, direction);
  if (!path.ok()) return path.status();
  return path->has_value();
}

Result<size_t> ComponentSize(Transaction& txn, NodeId seed, size_t max_nodes) {
  std::unordered_set<NodeId> seen{seed};
  std::deque<NodeId> frontier{seed};
  while (!frontier.empty() && seen.size() < max_nodes) {
    NodeId node = frontier.front();
    frontier.pop_front();
    auto neighbors = txn.GetNeighbors(node, Direction::kBoth);
    if (!neighbors.ok()) {
      if (neighbors.status().IsNotFound()) continue;
      return neighbors.status();
    }
    for (NodeId next : *neighbors) {
      if (seen.size() >= max_nodes) break;
      if (seen.insert(next).second) frontier.push_back(next);
    }
  }
  return seen.size();
}

}  // namespace traversal
}  // namespace neosi
