#include "graph/iterators.h"

namespace neosi {

NodeIterator NodeIterator::All(Transaction& txn) {
  return NodeIterator(&txn, txn.AllNodes());
}

NodeIterator NodeIterator::ByLabel(Transaction& txn,
                                   const std::string& label) {
  return NodeIterator(&txn, txn.GetNodesByLabel(label));
}

NodeIterator NodeIterator::ByProperty(Transaction& txn,
                                      const std::string& key,
                                      const PropertyValue& value) {
  return NodeIterator(&txn, txn.GetNodesByProperty(key, value));
}

NodeIterator NodeIterator::ByPropertyRange(
    Transaction& txn, const std::string& key,
    const std::optional<PropertyValue>& lo,
    const std::optional<PropertyValue>& hi) {
  return NodeIterator(&txn, txn.GetNodesByPropertyRange(key, lo, hi));
}

RelationshipIterator RelationshipIterator::Of(
    Transaction& txn, NodeId node, Direction direction,
    const std::optional<std::string>& type) {
  return RelationshipIterator(&txn, txn.GetRelationships(node, direction,
                                                         type));
}

RelationshipIterator RelationshipIterator::ByProperty(
    Transaction& txn, const std::string& key, const PropertyValue& value) {
  return RelationshipIterator(&txn, txn.GetRelsByProperty(key, value));
}

}  // namespace neosi
