#include "graph/garbage_collector.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <unordered_map>
#include <vector>

namespace neosi {

GcStats GcEngine::Collect() {
  const Timestamp watermark =
      engine_->active_txns.Watermark(engine_->oracle.ReadTs());
  return CollectUpTo(watermark);
}

GcStats GcEngine::CollectUpTo(Timestamp watermark) {
  std::lock_guard<std::mutex> guard(mu_);
  const auto t0 = std::chrono::steady_clock::now();

  GcStats stats;
  stats.watermark = watermark;

  // Pop exactly the reclaimable prefix of the timestamp-sorted list: this is
  // the whole point of §4's threading — cost proportional to the garbage.
  std::vector<GcEntry> entries = engine_->gc_list.PopReclaimable(watermark);

  // Partition: superseded versions are pruned from their chains; tombstone
  // versions trigger physical purges (relationships strictly before nodes,
  // so node purges always find an empty chain). Entries for the same entity
  // are batched so a long backlog is pruned with ONE chain walk per entity
  // (cost stays O(#reclaimed), the paper's complexity claim).
  std::vector<GcEntry> purge_rels;
  std::vector<GcEntry> purge_nodes;
  std::unordered_map<EntityKey, std::vector<std::shared_ptr<Version>>>
      superseded_by_entity;
  for (GcEntry& entry : entries) {
    if (entry.version->data.deleted) {
      if (entry.key.type == EntityType::kRelationship) {
        purge_rels.push_back(std::move(entry));
      } else {
        purge_nodes.push_back(std::move(entry));
      }
      continue;
    }
    superseded_by_entity[entry.key].push_back(std::move(entry.version));
  }
  for (auto& [key, versions] : superseded_by_entity) {
    VersionChain* chain = nullptr;
    std::shared_ptr<CachedNode> node;
    std::shared_ptr<CachedRel> rel;
    if (key.type == EntityType::kNode) {
      node = engine_->cache->PeekNode(key.id);
      if (node) chain = &node->chain;
    } else {
      rel = engine_->cache->PeekRel(key.id);
      if (rel) chain = &rel->chain;
    }
    if (chain == nullptr) continue;
    if (versions.size() > 1) {
      // All these versions are superseded at or below the watermark; one
      // prune pass drops every version older than the newest survivor.
      stats.versions_pruned += chain->PruneSupersededUpTo(watermark);
      // Any stragglers (e.g. a version whose superseding commit is above
      // the watermark cannot exist here by construction) fall through to
      // the precise removal below and count zero.
      for (const auto& version : versions) {
        if (chain->Remove(version)) ++stats.versions_pruned;
      }
    } else {
      if (chain->Remove(versions[0])) ++stats.versions_pruned;
    }
  }

  // Physical purges are WAL-logged (with the chain pointers observed at
  // purge time) so a crash mid-surgery is repaired by replay.
  if (!purge_rels.empty() || !purge_nodes.empty()) {
    WalRecord record;
    record.txn_id = kNoTxn;
    record.commit_ts = watermark;
    for (const GcEntry& entry : purge_rels) {
      RelationshipRecord rec;
      if (!engine_->store.ReadRelRecord(entry.key.id, &rec).ok() ||
          !rec.in_use) {
        continue;
      }
      record.ops.push_back(WalOp::PurgeRel(entry.key.id, rec.src, rec.dst,
                                           rec.src_prev, rec.src_next,
                                           rec.dst_prev, rec.dst_next));
    }
    for (const GcEntry& entry : purge_nodes) {
      record.ops.push_back(WalOp::PurgeNode(entry.key.id));
    }
    if (!record.ops.empty()) {
      engine_->store.wal().Append(record);
    }

    for (const GcEntry& entry : purge_rels) {
      // Drop any residual older versions, then the entity itself.
      engine_->cache->EraseRel(entry.key.id);
      if (engine_->store.PurgeRel(entry.key.id).ok()) {
        ++stats.tombstones_purged;
      }
    }
    for (const GcEntry& entry : purge_nodes) {
      engine_->cache->EraseNode(entry.key.id);
      if (engine_->store.PurgeNode(entry.key.id).ok()) {
        ++stats.tombstones_purged;
      }
    }
  }

  // Index compaction: drop entries whose removal interval closed below the
  // watermark.
  stats.index_entries_dropped += engine_->label_index.Compact(watermark);
  stats.index_entries_dropped += engine_->node_prop_index.Compact(watermark);
  stats.index_entries_dropped += engine_->rel_prop_index.Compact(watermark);

  stats.nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return stats;
}

}  // namespace neosi
