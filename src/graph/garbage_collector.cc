#include "graph/garbage_collector.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <unordered_map>
#include <vector>

namespace neosi {

uint64_t LogAndPurgeTombstones(Engine* engine, const std::vector<RelId>& rels,
                               const std::vector<NodeId>& nodes,
                               Timestamp watermark) {
  if (rels.empty() && nodes.empty()) return 0;

  // On a replica, physical reclamation is DRIVEN BY THE PRIMARY: purge
  // records ship through the applier like any other record, so every
  // replica reclaims exactly what the primary reclaimed. Local GC still
  // trims version chains (memory-only), but never purges or logs.
  if (engine->options.IsReplica()) return 0;

  // Physical purges are WAL-logged (with the chain pointers observed at
  // purge time) so a crash mid-surgery is repaired by replay. The record's
  // LSN stays pinned from append until the surgery below has reached the
  // stores: a fuzzy checkpoint racing this pass truncates only below the
  // pin, so the record can never vanish while the surgery is mid-flight.
  WalRecord record;
  record.txn_id = kNoTxn;
  record.commit_ts = watermark;
  // The GC watermark is <= the published watermark by construction, so it
  // doubles as the record's publication hint for replica appliers.
  record.publish_ts = watermark;
  for (RelId id : rels) {
    RelationshipRecord rec;
    if (!engine->store.ReadRelRecord(id, &rec).ok() || !rec.in_use) continue;
    record.ops.push_back(WalOp::PurgeRel(id, rec.src, rec.dst, rec.src_prev,
                                         rec.src_next, rec.dst_prev,
                                         rec.dst_next));
  }
  for (NodeId id : nodes) {
    record.ops.push_back(WalOp::PurgeNode(id));
  }
  Lsn pinned_lsn = 0;
  bool pinned = false;
  if (!record.ops.empty()) {
    auto lsn = engine->store.wal().Append(record, /*pin=*/true);
    if (!lsn.ok()) {
      // No record ⇒ no surgery: an unlogged purge interrupted by a crash
      // would leave dangling chain pointers nothing can repair. The
      // tombstones stay physically present (safe — just unreclaimed); a
      // vacuum pass can pick them up later.
      return 0;
    }
    pinned_lsn = *lsn;
    pinned = true;
  }

  uint64_t purged = 0;
  for (RelId id : rels) {
    // Drop any residual older versions, then the entity itself.
    engine->cache->EraseRel(id);
    if (engine->store.PurgeRel(id).ok()) ++purged;
  }
  for (NodeId id : nodes) {
    engine->cache->EraseNode(id);
    if (engine->store.PurgeNode(id).ok()) ++purged;
  }
  if (pinned) engine->store.wal().Unpin(pinned_lsn);
  return purged;
}

GcEngine::GcEngine(Engine* engine) : engine_(engine) {
  shard_mus_.reserve(engine_->gc_list.shard_count());
  for (size_t i = 0; i < engine_->gc_list.shard_count(); ++i) {
    shard_mus_.push_back(std::make_unique<std::mutex>());
  }
}

void GcEngine::EvictCache() { engine_->cache->EvictIfNeeded(); }

void GcEngine::DrainEpochs() {
  engine_->epochs.BumpEpoch();
  engine_->epochs.Drain();
}

GcStats GcEngine::Collect() {
  const Timestamp watermark =
      engine_->active_txns.Watermark(engine_->oracle.ReadTs());
  return CollectUpTo(watermark);
}

void GcEngine::DrainEntries(std::vector<GcEntry> entries, Timestamp watermark,
                            GcStats* stats) {
  // Partition: superseded versions are pruned from their chains; tombstone
  // versions trigger physical purges (relationships strictly before nodes,
  // so node purges find an empty chain — a node whose chain is still
  // populated, because its rel tombstones hash to a shard that has not
  // drained yet, is deferred below). Entries for the same entity are
  // batched so a long backlog is pruned with ONE chain walk per entity
  // (cost stays O(#reclaimed), the paper's complexity claim); an entity's
  // entries always share a shard, so shard-local batching loses nothing.
  std::vector<GcEntry> purge_rels;
  std::vector<GcEntry> purge_nodes;
  std::unordered_map<EntityKey, std::vector<std::shared_ptr<Version>>>
      superseded_by_entity;
  for (GcEntry& entry : entries) {
    if (entry.version->data.deleted) {
      if (entry.key.type == EntityType::kRelationship) {
        purge_rels.push_back(std::move(entry));
      } else {
        purge_nodes.push_back(std::move(entry));
      }
      continue;
    }
    superseded_by_entity[entry.key].push_back(std::move(entry.version));
  }
  for (auto& [key, versions] : superseded_by_entity) {
    VersionChain* chain = nullptr;
    std::shared_ptr<CachedNode> node;
    std::shared_ptr<CachedRel> rel;
    if (key.type == EntityType::kNode) {
      node = engine_->cache->PeekNode(key.id);
      if (node) chain = &node->chain;
    } else {
      rel = engine_->cache->PeekRel(key.id);
      if (rel) chain = &rel->chain;
    }
    if (chain == nullptr) continue;
    if (versions.size() > 1) {
      // All these versions are superseded at or below the watermark; one
      // prune pass drops every version older than the newest survivor.
      stats->versions_pruned += chain->PruneSupersededUpTo(watermark);
      // Any stragglers (e.g. a version whose superseding commit is above
      // the watermark cannot exist here by construction) fall through to
      // the precise removal below and count zero.
      for (const auto& version : versions) {
        if (chain->Remove(version)) ++stats->versions_pruned;
      }
    } else {
      if (chain->Remove(versions[0])) ++stats->versions_pruned;
    }
  }

  // Relationships purge first, in their own WAL record, so the node
  // admission check below observes their chains already unlinked.
  std::vector<RelId> rel_ids;
  rel_ids.reserve(purge_rels.size());
  for (const GcEntry& entry : purge_rels) rel_ids.push_back(entry.key.id);
  stats->tombstones_purged +=
      LogAndPurgeTombstones(engine_, rel_ids, {}, watermark);

  // Node purge admission: only nodes whose PHYSICAL rel chain is already
  // empty enter the batch. Rel purges only ever shrink a tombstoned
  // node's chain (attaching a rel needs a visible endpoint), so "empty" is
  // stable once observed — but a chain still holding tombstoned rels that
  // another shard's worker has yet to purge must wait. The skipped entry
  // goes straight back onto its shard (same obsolete_since: reclaimable on
  // the very next pass, by which time the rel shard has typically
  // drained). Crucially the admission check runs BEFORE the WAL purge
  // record is written: a logged-but-failed PurgeNode would fail-stop
  // recovery when the replay hits the chained node.
  std::vector<NodeId> node_ids;
  node_ids.reserve(purge_nodes.size());
  for (GcEntry& entry : purge_nodes) {
    auto chained = engine_->store.NodeHasRelChain(entry.key.id);
    // Fail CLOSED: a read error defers exactly like a populated chain — an
    // unverified node admitted here would still get its PurgeNode WAL op
    // logged, and if its chain turns out non-empty that logged-but-failed
    // purge is the recovery fail-stop this check exists to prevent.
    if (!chained.ok() || *chained) {
      ++stats->purges_deferred;
      engine_->gc_list.Append(std::move(entry));
      continue;
    }
    node_ids.push_back(entry.key.id);
  }
  stats->tombstones_purged +=
      LogAndPurgeTombstones(engine_, {}, node_ids, watermark);
}

void GcEngine::CompactIndexes(Timestamp watermark, GcStats* stats) {
  // Index compaction: drop entries whose removal interval closed below the
  // watermark.
  stats->index_entries_dropped += engine_->label_index.Compact(watermark);
  stats->index_entries_dropped += engine_->node_prop_index.Compact(watermark);
  stats->index_entries_dropped += engine_->rel_prop_index.Compact(watermark);
}

GcStats GcEngine::CollectUpTo(Timestamp watermark) {
  // Global pass: exclusive on every shard, in order (the per-shard workers
  // take exactly one, so ordered acquisition cannot deadlock with them).
  std::vector<std::unique_lock<std::mutex>> guards;
  guards.reserve(shard_mus_.size());
  for (auto& mu : shard_mus_) guards.emplace_back(*mu);
  const auto t0 = std::chrono::steady_clock::now();

  GcStats stats;
  stats.watermark = watermark;

  // Pop exactly the reclaimable prefix of every shard FIRST, then reclaim:
  // with all rel tombstones <= watermark popped into this one batch, the
  // rels-before-nodes order inside DrainEntries leaves every node chain
  // empty by the time its purge runs — the pre-sharding behaviour.
  DrainEntries(engine_->gc_list.PopReclaimable(watermark), watermark, &stats);

  {
    std::lock_guard<std::mutex> extras(extras_mu_);
    CompactIndexes(watermark, &stats);
    // Cache eviction rides the GC pass (it used to ride the retired
    // foreground auto-GC): single-version clean objects beyond capacity go.
    EvictCache();
    // Versions the prune/purge above unlinked were retired into the epoch
    // limbo (latch-free read path); bump + drain frees the reachable-free
    // ones now, so a manual RunGc() pass reclaims memory end to end.
    DrainEpochs();
  }

  stats.nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return stats;
}

GcStats GcEngine::CollectShardUpTo(size_t shard, Timestamp watermark,
                                   bool run_global_extras) {
  std::lock_guard<std::mutex> guard(*shard_mus_[shard]);
  const auto t0 = std::chrono::steady_clock::now();

  GcStats stats;
  stats.watermark = watermark;
  DrainEntries(engine_->gc_list.PopReclaimableFromShard(shard, watermark),
               watermark, &stats);

  if (run_global_extras) {
    std::lock_guard<std::mutex> extras(extras_mu_);
    CompactIndexes(watermark, &stats);
    EvictCache();
    DrainEpochs();
  }

  stats.nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return stats;
}

}  // namespace neosi
