// Cursor-style iterators over scans and adjacency (RocksDB idiom: Valid() /
// Next() / value accessors), layered over Transaction's snapshot reads.
//
// These are the public face of §4's "enriched iterators": the id sets are
// materialized under the engine's latches at construction (merging the
// persistent state with cached versions, honouring read-your-own-writes),
// and per-item accessors re-resolve through the transaction so deleted or
// invisible entities are never surfaced.

#ifndef NEOSI_GRAPH_ITERATORS_H_
#define NEOSI_GRAPH_ITERATORS_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/transaction.h"
#include "graph/views.h"

namespace neosi {

/// Iterates node ids. Obtain from NodeIterator::All / ByLabel / ByProperty.
class NodeIterator {
 public:
  /// Every node visible to txn, ascending id.
  static NodeIterator All(Transaction& txn);
  /// Nodes carrying `label`.
  static NodeIterator ByLabel(Transaction& txn, const std::string& label);
  /// Nodes with property `key` == `value`.
  static NodeIterator ByProperty(Transaction& txn, const std::string& key,
                                 const PropertyValue& value);
  /// Nodes with property `key` in [lo, hi].
  static NodeIterator ByPropertyRange(Transaction& txn,
                                      const std::string& key,
                                      const std::optional<PropertyValue>& lo,
                                      const std::optional<PropertyValue>& hi);

  /// False once exhausted or if construction failed (check status()).
  bool Valid() const { return ok_ && pos_ < ids_.size(); }
  void Next() { ++pos_; }
  /// Construction error, if any (OK while iterating).
  const Status& status() const { return status_; }

  /// Current node id; only when Valid().
  NodeId id() const { return ids_[pos_]; }
  /// Materializes the current node (labels + properties).
  Result<NodeView> Get() { return txn_->GetNode(id()); }

  size_t size() const { return ids_.size(); }

 private:
  NodeIterator(Transaction* txn, Result<std::vector<NodeId>> ids)
      : txn_(txn) {
    if (ids.ok()) {
      ids_ = std::move(*ids);
      ok_ = true;
    } else {
      status_ = ids.status();
      ok_ = false;
    }
  }

  Transaction* txn_;
  std::vector<NodeId> ids_;
  size_t pos_ = 0;
  bool ok_ = false;
  Status status_;
};

/// Iterates relationships incident to a node (or matching a property).
class RelationshipIterator {
 public:
  /// Relationships of `node` in `direction`, optionally type-filtered.
  static RelationshipIterator Of(
      Transaction& txn, NodeId node, Direction direction = Direction::kBoth,
      const std::optional<std::string>& type = std::nullopt);
  /// Relationships with property `key` == `value`.
  static RelationshipIterator ByProperty(Transaction& txn,
                                         const std::string& key,
                                         const PropertyValue& value);

  bool Valid() const { return ok_ && pos_ < ids_.size(); }
  void Next() { ++pos_; }
  const Status& status() const { return status_; }

  RelId id() const { return ids_[pos_]; }
  Result<RelView> Get() { return txn_->GetRelationship(id()); }

  size_t size() const { return ids_.size(); }

 private:
  RelationshipIterator(Transaction* txn, Result<std::vector<RelId>> ids)
      : txn_(txn) {
    if (ids.ok()) {
      ids_ = std::move(*ids);
      ok_ = true;
    } else {
      status_ = ids.status();
      ok_ = false;
    }
  }

  Transaction* txn_;
  std::vector<RelId> ids_;
  size_t pos_ = 0;
  bool ok_ = false;
  Status status_;
};

}  // namespace neosi

#endif  // NEOSI_GRAPH_ITERATORS_H_
