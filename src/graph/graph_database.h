// GraphDatabase: the top-level handle of the neosi library.
//
//   DatabaseOptions options;                       // in-memory by default
//   auto db = GraphDatabase::Open(options);
//   auto txn = (*db)->Begin(IsolationLevel::kSnapshotIsolation);
//   auto alice = (*txn)->CreateNode({"Person"}, {{"name", "alice"}});
//   (*txn)->Commit();
//
// Reproduces the architecture of the paper's Figure 1 (store files + object
// cache + label/property indexes + lock manager) with the paper's MVCC
// snapshot-isolation layer on top.

#ifndef NEOSI_GRAPH_GRAPH_DATABASE_H_
#define NEOSI_GRAPH_GRAPH_DATABASE_H_

#include <memory>
#include <vector>

#include "common/options.h"
#include "common/status.h"
#include "graph/checkpoint_daemon.h"
#include "graph/engine.h"
#include "graph/garbage_collector.h"
#include "graph/gc_daemon.h"
#include "graph/replica_applier.h"
#include "graph/transaction.h"
#include "graph/vacuum_gc.h"

namespace neosi {

/// Aggregate observability snapshot.
struct DatabaseStats {
  GraphStoreStats store;
  ObjectCacheStats cache;
  LockManagerStats locks;
  LabelIndexStats label_index;
  PropertyIndexStats node_prop_index;
  PropertyIndexStats rel_prop_index;
  uint64_t gc_queue = 0;
  uint64_t gc_appended = 0;
  uint64_t gc_reclaimed = 0;
  /// Largest aggregate GcList backlog ever observed (reclamation pacing
  /// headroom; the snapshot-too-old policy's backlog trigger reads the
  /// live gauge behind this).
  uint64_t gc_backlog_high_water = 0;
  /// GC list shard count and the per-shard live backlogs (one gauge per
  /// entity-key shard; each shard has its own drain worker).
  uint64_t gc_shards = 0;
  std::vector<uint64_t> gc_shard_backlogs;
  /// Daemon pacing counters (all zero when the daemon is disabled). A
  /// "pass" is one worker draining one shard.
  uint64_t gc_daemon_passes = 0;
  uint64_t gc_daemon_nudge_passes = 0;     ///< Triggered by backlog nudges.
  uint64_t gc_daemon_interval_passes = 0;  ///< Triggered by the interval.
  /// Node purges pushed to a later pass because the node's rel tombstones
  /// were still draining in another shard.
  uint64_t gc_purges_deferred = 0;
  /// Snapshot lifecycle (snapshot-too-old policy) per-cause counters.
  uint64_t snapshots_expired_age = 0;      ///< Victims of snapshot_max_age_ms.
  uint64_t snapshots_expired_backlog = 0;  ///< Victims of backlog pressure.
  uint64_t snapshot_too_old_aborts = 0;    ///< Ops failed with SnapshotTooOld.
  /// Epoch-based reclamation (latch-free read path) gauges. All zero when
  /// latch_free_reads is off (nothing is ever retired into limbo then).
  uint64_t epoch_current = 0;        ///< Global epoch counter.
  uint64_t epoch_limbo = 0;          ///< Versions awaiting an epoch drain.
  uint64_t epoch_retired = 0;        ///< Lifetime retire count.
  uint64_t epoch_freed = 0;          ///< Lifetime limbo frees.
  /// Checkpoint daemon pacing counters (zero when the daemon is disabled).
  /// Checkpoint outcome counters (markers, truncated bytes, dirty-store
  /// syncs) live in `store`.
  uint64_t checkpoint_daemon_passes = 0;
  uint64_t checkpoint_daemon_nudge_passes = 0;  ///< WAL-threshold nudges.
  uint64_t checkpoint_daemon_interval_passes = 0;
  uint64_t checkpoint_daemon_idle_skips = 0;
  /// SSI (kSerializable) per-cause counters. All zero until a serializable
  /// transaction runs; SI/RC transactions never touch the tracker.
  uint64_t ssi_tracked_txns = 0;    ///< Serializable txns fully tracked.
  uint64_t ssi_safe_snapshots = 0;  ///< Read-only txns on safe snapshots.
  uint64_t ssi_aborts_pivot = 0;    ///< Dangerous-structure aborts.
  uint64_t ssi_aborts_doomed = 0;   ///< Victims doomed by a committing peer.
  uint64_t active_txns = 0;
  Timestamp last_committed = kNoTimestamp;
  /// Replication gauges (all zero on a primary). replica_applied_ts is the
  /// replay watermark replica snapshots pin to; replica_publish_ts is the
  /// newest publication hint shipped from the primary — the difference is
  /// the replication lag in commits.
  bool is_replica = false;
  Timestamp replica_applied_ts = kNoTimestamp;
  Timestamp replica_publish_ts = kNoTimestamp;
  Lsn replica_shipped_lsn = 0;
  uint64_t replica_polls = 0;
  uint64_t replica_records_applied = 0;
  uint64_t replica_records_skipped = 0;
  uint64_t replica_purges_applied = 0;
  /// Snapshots expired to let a shipped purge through (standby conflicts).
  uint64_t snapshots_expired_replication = 0;
  /// Network front-end admission control, per cause (all zero without a
  /// server). Sheds apply to NEW wire Begins only — established snapshots
  /// are never aborted by admission, so snapshots_expired_* stay unchanged
  /// by these.
  uint64_t admission_admitted = 0;
  uint64_t admission_delayed = 0;       ///< Begins that waited for pressure.
  uint64_t admission_shed_backlog = 0;  ///< Busy sheds: GC backlog gauge.
  uint64_t admission_shed_sessions = 0; ///< Busy sheds: max_sessions cap.
};

/// Per-transaction knobs for Begin() beyond the isolation level.
struct TransactionOptions {
  /// Declares the transaction read-only: every write operation fails with
  /// FailedPrecondition. Under kSerializable this enables the safe-snapshot
  /// optimization (DatabaseOptions::ssi_safe_snapshots): a read-only
  /// serializable transaction whose snapshot sees no concurrent read-write
  /// serializable transaction skips SSI tracking entirely and can never
  /// abort with SerializationFailure.
  bool read_only = false;
};

/// A single-process graph database instance. Thread-safe: any number of
/// threads may Begin() and drive their own transactions concurrently.
class GraphDatabase {
 public:
  /// Opens (or recovers) a database. For on-disk databases, `options.path`
  /// must name a directory (created if missing); recovery replays the WAL
  /// and rebuilds the in-memory indexes.
  static Result<std::unique_ptr<GraphDatabase>> Open(
      const DatabaseOptions& options);

  ~GraphDatabase();

  GraphDatabase(const GraphDatabase&) = delete;
  GraphDatabase& operator=(const GraphDatabase&) = delete;

  /// Starts a transaction at the configured default isolation level.
  std::unique_ptr<Transaction> Begin();
  std::unique_ptr<Transaction> Begin(IsolationLevel isolation);
  std::unique_ptr<Transaction> Begin(IsolationLevel isolation,
                                     const TransactionOptions& options);

  /// Runs one pass of the paper's threaded garbage collector (§4): pops the
  /// timestamp-sorted list up to the current watermark and reclaims exactly
  /// those versions.
  GcStats RunGc();

  /// Runs the PostgreSQL-VACUUM-style baseline collector (full scan).
  VacuumStats RunVacuum();

  /// Runs one fuzzy incremental checkpoint: fsyncs the stores dirtied
  /// since the last checkpoint and truncates the WAL prefix below the
  /// stable LSN. Never blocks concurrent commits.
  Status Checkpoint();

  /// The minimum start timestamp any active transaction observes.
  Timestamp Watermark() const;

  DatabaseStats Stats() const;

  /// Engine internals: tests and benchmarks probe these deliberately.
  Engine& engine() { return *engine_; }
  const Engine& engine() const { return *engine_; }

  /// Background GC daemon — the automatic reclamation path (null only when
  /// options.background_gc_interval_ms == 0).
  GcDaemon* gc_daemon() { return gc_daemon_.get(); }

  /// Background checkpoint daemon — the automatic WAL-bounding path (null
  /// only when options.checkpoint_interval_ms == 0).
  CheckpointDaemon* checkpoint_daemon() { return checkpoint_daemon_.get(); }

  /// Replica replay daemon (null on a primary). Non-null exactly when
  /// options.IsReplica().
  ReplicaApplier* replica_applier() { return replica_applier_.get(); }

 private:
  explicit GraphDatabase(const DatabaseOptions& options);

  Status OpenImpl();
  Status RebuildIndexes();

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<GcEngine> gc_;
  std::unique_ptr<VacuumGc> vacuum_;
  std::unique_ptr<GcDaemon> gc_daemon_;
  std::unique_ptr<CheckpointDaemon> checkpoint_daemon_;
  std::unique_ptr<ReplicaApplier> replica_applier_;

  friend class Transaction;
};

/// Session-scoped monotonic reads against a replica (or several).
///
/// A replica's watermark trails the primary, and different replicas trail
/// by different amounts — two successive snapshots routed to different
/// replicas could otherwise travel BACKWARDS in time. A session remembers
/// the newest snapshot timestamp it has observed (its floor) and Begin()
/// blocks until the target replica's published watermark reaches it, so
/// reads within one session never regress. Feed timestamps observed out of
/// band (e.g. a write acknowledged by the primary) through AdvanceFloor()
/// to get read-your-writes on top.
///
/// Thread-safe; one instance may be shared by a session's threads.
class ReplicaSession {
 public:
  ReplicaSession() = default;

  /// Begins a read-only snapshot-isolation transaction on `db` whose
  /// snapshot is at or above every snapshot this session has seen.
  std::unique_ptr<Transaction> Begin(GraphDatabase* db) {
    db->engine().oracle.WaitUntilPublished(
        floor_.load(std::memory_order_acquire));
    TransactionOptions opts;
    opts.read_only = true;
    auto txn = db->Begin(IsolationLevel::kSnapshotIsolation, opts);
    AdvanceFloor(txn->start_ts());
    return txn;
  }

  /// Raises the floor to `ts` (no-op if already above).
  void AdvanceFloor(Timestamp ts) {
    Timestamp cur = floor_.load(std::memory_order_relaxed);
    while (cur < ts &&
           !floor_.compare_exchange_weak(cur, ts, std::memory_order_acq_rel)) {
    }
  }

  Timestamp floor() const { return floor_.load(std::memory_order_acquire); }

 private:
  std::atomic<Timestamp> floor_{0};
};

}  // namespace neosi

#endif  // NEOSI_GRAPH_GRAPH_DATABASE_H_
