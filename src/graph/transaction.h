// The public transaction handle: every read and write goes through one of
// these. Obtained from GraphDatabase::Begin().
//
// Under kSnapshotIsolation a transaction observes the newest committed state
// as of its start timestamp plus its own writes (paper §3 read rule), and
// detects write-write conflicts on its long write locks (write rule, §4).
// Under kReadCommitted it reproduces stock Neo4j: short shared read locks,
// long exclusive write locks, reads always see the newest committed state —
// including the unrepeatable-read and phantom anomalies the paper motivates
// with.

#ifndef NEOSI_GRAPH_TRANSACTION_H_
#define NEOSI_GRAPH_TRANSACTION_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/options.h"
#include "common/property_value.h"
#include "common/status.h"
#include "common/types.h"
#include "graph/engine.h"
#include "graph/views.h"
#include "mvcc/snapshot.h"
#include "storage/wal_ops.h"

namespace neosi {

/// Transaction lifecycle state.
enum class TxnState : uint8_t {
  kActive = 0,
  kCommitted = 1,
  kAborted = 2,
};

/// A single-threaded transaction handle (one thread uses a Transaction at a
/// time; different transactions run fully concurrently).
class Transaction {
 public:
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  Timestamp start_ts() const { return start_ts_; }
  /// Commit timestamp of a successfully committed writing transaction
  /// (kNoTimestamp before commit, after abort, and for read-only commits,
  /// which never allocate one). History checkers pair this with start_ts()
  /// to reconstruct the SI interval of a transaction.
  Timestamp commit_ts() const { return commit_ts_; }
  IsolationLevel isolation() const { return isolation_; }
  TxnState state() const { return state_; }
  bool IsActive() const { return state_ == TxnState::kActive; }

  // --- writes --------------------------------------------------------------

  /// Creates a node with the given label names and properties.
  Result<NodeId> CreateNode(const std::vector<std::string>& labels,
                            const NamedProperties& props = {});

  /// Deletes a node. Fails with FailedPrecondition while the node still has
  /// relationships visible to this transaction, and with Aborted if any
  /// relationship was attached by a concurrent transaction (adjacency
  /// write-write conflict).
  Status DeleteNode(NodeId id);

  Status SetNodeProperty(NodeId id, const std::string& key,
                         PropertyValue value);
  Status RemoveNodeProperty(NodeId id, const std::string& key);
  Status AddLabel(NodeId id, const std::string& label);
  Status RemoveLabel(NodeId id, const std::string& label);

  /// Creates a relationship src -[type]-> dst.
  Result<RelId> CreateRelationship(NodeId src, NodeId dst,
                                   const std::string& type,
                                   const NamedProperties& props = {});
  Status DeleteRelationship(RelId id);
  Status SetRelProperty(RelId id, const std::string& key, PropertyValue value);
  Status RemoveRelProperty(RelId id, const std::string& key);

  // --- point reads ---------------------------------------------------------

  Result<NodeView> GetNode(NodeId id);
  Result<RelView> GetRelationship(RelId id);
  Result<PropertyValue> GetNodeProperty(NodeId id, const std::string& key);
  Result<PropertyValue> GetRelProperty(RelId id, const std::string& key);
  Result<bool> NodeHasLabel(NodeId id, const std::string& label);
  /// True if the node exists (is visible) in this transaction's snapshot.
  bool NodeExists(NodeId id);
  bool RelExists(RelId id);

  // --- scans (the "enriched iterators" of §4: persistent state merged with
  //     cached versions, honouring read-your-own-writes) -------------------

  /// All nodes visible to this transaction, ascending id.
  Result<std::vector<NodeId>> AllNodes();

  /// Nodes carrying the label (label index).
  Result<std::vector<NodeId>> GetNodesByLabel(const std::string& label);

  /// Nodes whose property `key` equals `value` (property index).
  Result<std::vector<NodeId>> GetNodesByProperty(const std::string& key,
                                                 const PropertyValue& value);

  /// Nodes whose property `key` falls in [lo, hi] (inclusive; either bound
  /// optional). The predicate-scan path of experiment E2.
  Result<std::vector<NodeId>> GetNodesByPropertyRange(
      const std::string& key, const std::optional<PropertyValue>& lo,
      const std::optional<PropertyValue>& hi);

  /// Relationships whose property `key` equals `value`.
  Result<std::vector<RelId>> GetRelsByProperty(const std::string& key,
                                               const PropertyValue& value);

  /// Relationship ids incident to `node` in the given direction, optionally
  /// filtered by type name.
  Result<std::vector<RelId>> GetRelationships(
      NodeId node, Direction direction = Direction::kBoth,
      const std::optional<std::string>& type = std::nullopt);

  /// Neighbour node ids (may contain duplicates for parallel edges).
  Result<std::vector<NodeId>> GetNeighbors(
      NodeId node, Direction direction = Direction::kBoth,
      const std::optional<std::string>& type = std::nullopt);

  /// Number of visible relationships of a node.
  Result<size_t> Degree(NodeId node, Direction direction = Direction::kBoth);

  // --- lifecycle -----------------------------------------------------------

  /// True for transactions opened with TransactionOptions::read_only; every
  /// write operation fails with FailedPrecondition.
  bool read_only() const { return read_only_; }

  /// Commits; on any failure the transaction is rolled back and the error
  /// returned (Status::IsRetryable() distinguishes conflict aborts).
  Status Commit();

  /// Rolls back all effects.
  Status Abort();

  /// Number of entities written by this transaction so far.
  size_t WriteSetSize() const { return writes_.size(); }

 private:
  friend class GraphDatabase;

  Transaction(Engine* engine, IsolationLevel isolation, TxnId id,
              Timestamp start_ts,
              std::shared_ptr<const std::atomic<bool>> expired,
              std::shared_ptr<SsiTxnInfo> ssi = nullptr,
              bool read_only = false);

  /// One pending index mutation, replayed as commit/abort stamps.
  struct IndexOp {
    enum class Kind : uint8_t {
      kLabelAdd,
      kLabelRemove,
      kNodePropAdd,
      kNodePropRemove,
      kRelPropAdd,
      kRelPropRemove,
    };
    Kind kind;
    uint64_t entity;
    LabelId label = kInvalidToken;
    PropertyKeyId key = kInvalidToken;
    PropertyValue value;
  };

  /// Book-keeping for one written entity.
  struct WriteRecord {
    std::shared_ptr<CachedNode> node;  // exactly one of node/rel set
    std::shared_ptr<CachedRel> rel;
    std::shared_ptr<Version> pending;  // the uncommitted version
    bool created = false;
  };

  /// True for the snapshot-based levels (kSnapshotIsolation and
  /// kSerializable, which layers SSI on the same snapshot machinery);
  /// false only for kReadCommitted.
  bool UsesSnapshotReads() const {
    return isolation_ != IsolationLevel::kReadCommitted;
  }

  /// The timestamp visibility walks read at: the snapshot for the
  /// snapshot-based levels, latest-committed for read committed.
  Timestamp SnapshotTs() const {
    return UsesSnapshotReads() ? start_ts_ : kMaxTimestamp;
  }

  Snapshot ReadSnapshot() const {
    return UsesSnapshotReads() ? Snapshot{start_ts_, id_}
                               : Snapshot::Latest(id_);
  }

  Status CheckActive() const;

  /// Snapshot lifecycle enforcement (snapshot-too-old policy). Once the GC
  /// daemon marks this snapshot expired, the reclamation watermark no
  /// longer waits for it and versions it could read may be reclaimed —
  /// so the transaction must fail before it can observe that. Called at
  /// the START of every read/write/commit (cheap flag load) and AGAIN
  /// after every chain walk / index scan: a read that overlapped its own
  /// expiry is failed instead of returned, because the mark
  /// happens-before any reclamation (shard mutex, then chain unlink), so
  /// a walk that could have seen a pruned chain always re-reads the flag
  /// as set. (Memory safety is separate and unconditional: walks run
  /// inside an epoch guard, so even a version unlinked mid-walk stays
  /// allocated until the reader exits — expiry only governs logical
  /// staleness, never use-after-free; see mvcc/epoch.h.) On expiry: rolls
  /// back (releasing all locks) and returns Status::SnapshotTooOld. No-op
  /// under read committed — RC reads the newest committed state, which
  /// reclamation never removes (and since PR 6 an RC registration never
  /// pins the watermark in the first place; see ActiveTxnTable).
  Status FailIfSnapshotExpired();

  /// Acquires the long write lock on `key` per the isolation level and
  /// conflict policy; on conflict rolls the transaction back and returns
  /// Aborted/Deadlock.
  Status AcquireWriteLock(const EntityKey& key);

  /// SI write rule: aborts if a concurrent transaction committed a newer
  /// version of the entity than this snapshot (first-updater-wins check;
  /// skipped for first-committer-wins, which validates at commit).
  Status CheckWriteConflict(const VersionChain& chain);

  /// Returns (creating if absent) this transaction's pending version for a
  /// node/rel, basing it on the version visible to the snapshot.
  Result<std::shared_ptr<Version>> PendingNodeVersion(
      NodeId id, std::shared_ptr<CachedNode>* node_out);
  Result<std::shared_ptr<Version>> PendingRelVersion(
      RelId id, std::shared_ptr<CachedRel>* rel_out);

  /// Resolves the version of a node visible to this transaction (shared
  /// short read lock under read committed). Null result -> NotFound mapped
  /// by callers.
  Result<std::shared_ptr<const Version>> VisibleNodeVersion(NodeId id);
  Result<std::shared_ptr<const Version>> VisibleRelVersion(RelId id);

  /// Token helpers (log creation to the WAL set; §4 token versioning).
  Result<LabelId> LabelToken(const std::string& name, bool create);
  Result<PropertyKeyId> PropKeyToken(const std::string& name, bool create);
  Result<RelTypeId> RelTypeToken(const std::string& name, bool create);

  /// Maps internal (token) properties to named properties for views.
  Result<NamedProperties> NameProps(const PropertyMap& props) const;

  // --- commit pipeline stages (see ARCHITECTURE.md, "Commit pipeline").
  // Commit() = PruneAnnihilated -> [token-only shortcut] -> Validate ->
  // sequence (oracle.NextCommitTs) -> WriteCommitRecord (group-commit WAL)
  // -> ApplyToStore -> StampVersions -> StampIndexes -> ordered publication
  // (oracle.FinishCommit). No stage after sequencing holds a global lock;
  // per-entity safety comes from the long write locks held until the end.

  /// Entities created AND deleted inside this transaction cancel out: they
  /// were never visible to anyone and leave no trace (no WAL, no store).
  void PruneAnnihilated();

  /// Commit path for transactions with no surviving writes: only token
  /// creations (never rolled back) may need to reach the WAL.
  Status CommitTokenOnly();

  /// First-committer-wins validation (§3's alternative write rule). Needs no
  /// global lock: every checked entity is pinned by this transaction's long
  /// write lock, so its newest commit timestamp cannot move under us. Rolls
  /// back and returns Aborted on conflict.
  Status ValidateCommit();

  /// Appends this transaction's commit record through the group committer
  /// (one shared fsync per batch when sync_commits is set). The returned
  /// LSN is pinned against checkpoint truncation until the commit has been
  /// applied to the stores (Wal::Unpin).
  Result<Lsn> WriteCommitRecord(Timestamp ts);

  /// Persists the newest committed version of every written entity (§4 —
  /// older versions remain in memory only). Runs concurrently with other
  /// committers; the store's per-entity shard latches handle the physical
  /// races, the long write locks the logical ones.
  Status ApplyToStore(Timestamp ts);

  /// Stamps in-memory versions with the commit timestamp and threads
  /// superseded versions (and tombstones) onto the GC list (§4).
  Status StampVersions(Timestamp ts);

  /// Stamps pending index entries with the commit timestamp.
  void StampIndexes(Timestamp ts);

  /// Abort internals shared by Abort() and failed Commit().
  void RollbackLocked();

  // --- SSI hooks (all no-ops unless this is a tracked kSerializable
  //     transaction; see txn/ssi_tracker.h for the protocol) ---------------

  /// Rejects the write if the transaction was opened read-only.
  Status FailIfReadOnly() const;

  /// Doomed-flag poll (set by a committing peer whose dangerous structure
  /// this transaction pivots). Rolls back and returns SerializationFailure
  /// when set.
  Status FailIfDoomed();

  /// Write-time marker scan for one footprint; records the footprint for
  /// the post-stamp rescan. Rolls back and returns SerializationFailure
  /// when the write makes this transaction a dangerous pivot.
  Status SsiOnWrite(SsiWriteFootprint fp);

  /// Read-time conflict-out for tracked writers found on a version chain
  /// (CommittedNewerThan output). Rolls back on SerializationFailure.
  Status SsiObserveNewer(
      const std::vector<std::pair<TxnId, Timestamp>>& newer);

  /// Read-time conflict-out for anonymous index-entry commits
  /// (CollectConflictsOut output). Rolls back on SerializationFailure.
  Status SsiObserveAnonymous(const std::vector<Timestamp>& commits);

  Engine* const engine_;
  const IsolationLevel isolation_;
  const TxnId id_;
  const Timestamp start_ts_;
  /// Expiry flag shared with the ActiveTxnTable registration (set by the
  /// GC daemon's expiry sweep; null only for recovery-internal handles).
  const std::shared_ptr<const std::atomic<bool>> expired_;
  /// SSI record in the engine's tracker; null for SI/RC transactions and
  /// for read-only serializable transactions on a safe snapshot.
  const std::shared_ptr<SsiTxnInfo> ssi_;
  /// TransactionOptions::read_only (writes rejected with
  /// FailedPrecondition).
  const bool read_only_;
  Timestamp commit_ts_ = kNoTimestamp;
  TxnState state_ = TxnState::kActive;

  std::map<EntityKey, WriteRecord> writes_;
  std::vector<IndexOp> index_ops_;
  std::vector<WalOp> wal_ops_;
  /// Rels created by this txn, per endpoint (merged into adjacency scans so
  /// the transaction reads its own structural writes).
  std::unordered_map<NodeId, std::vector<RelId>> created_rels_by_node_;
  /// Nodes created by this txn (merged into AllNodes()).
  std::vector<NodeId> created_nodes_;
  /// Write footprints replayed for the SSI post-stamp marker rescan.
  std::vector<SsiWriteFootprint> ssi_footprints_;
};

}  // namespace neosi

#endif  // NEOSI_GRAPH_TRANSACTION_H_
