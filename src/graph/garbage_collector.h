// The paper's garbage collector (§4): reclamation driven by the global
// timestamp-sorted list of obsolete versions, so each pass touches only the
// versions it reclaims — never the whole store (contrast: VacuumGc).

#ifndef NEOSI_GRAPH_GARBAGE_COLLECTOR_H_
#define NEOSI_GRAPH_GARBAGE_COLLECTOR_H_

#include <cstdint>
#include <mutex>

#include "common/status.h"
#include "graph/engine.h"

namespace neosi {

/// Outcome of one collection pass (experiment E8 reads these).
struct GcStats {
  Timestamp watermark = kNoTimestamp;
  uint64_t versions_pruned = 0;    ///< Superseded versions unlinked.
  uint64_t tombstones_purged = 0;  ///< Entities physically removed.
  uint64_t index_entries_dropped = 0;
  uint64_t nanos = 0;              ///< Wall time of the pass.
};

/// Engine-level GC executor over the mvcc::GcList.
class GcEngine {
 public:
  explicit GcEngine(Engine* engine) : engine_(engine) {}

  GcEngine(const GcEngine&) = delete;
  GcEngine& operator=(const GcEngine&) = delete;

  /// One pass: computes the watermark, pops reclaimable entries, prunes
  /// chains, purges tombstoned entities (relationships before nodes), and
  /// compacts the indexes. Safe to call concurrently with transactions.
  GcStats Collect();

  /// Pass with an explicit watermark (tests).
  GcStats CollectUpTo(Timestamp watermark);

 private:
  Engine* const engine_;
  std::mutex mu_;  // One pass at a time.
};

}  // namespace neosi

#endif  // NEOSI_GRAPH_GARBAGE_COLLECTOR_H_
