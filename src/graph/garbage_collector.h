// The paper's garbage collector (§4): reclamation driven by the global
// timestamp-sorted list of obsolete versions, so each pass touches only the
// versions it reclaims — never the whole store (contrast: VacuumGc).

#ifndef NEOSI_GRAPH_GARBAGE_COLLECTOR_H_
#define NEOSI_GRAPH_GARBAGE_COLLECTOR_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "graph/engine.h"

namespace neosi {

/// Outcome of one collection pass (experiment E8 reads these).
struct GcStats {
  Timestamp watermark = kNoTimestamp;
  uint64_t versions_pruned = 0;    ///< Superseded versions unlinked.
  uint64_t tombstones_purged = 0;  ///< Entities physically removed.
  uint64_t index_entries_dropped = 0;
  uint64_t nanos = 0;              ///< Wall time of the pass.
};

/// Engine-level GC executor over the mvcc::GcList.
class GcEngine {
 public:
  explicit GcEngine(Engine* engine) : engine_(engine) {}

  GcEngine(const GcEngine&) = delete;
  GcEngine& operator=(const GcEngine&) = delete;

  /// One pass: computes the watermark, pops reclaimable entries, prunes
  /// chains, purges tombstoned entities (relationships before nodes), and
  /// compacts the indexes. Safe to call concurrently with transactions.
  GcStats Collect();

  /// Pass with an explicit watermark (tests).
  GcStats CollectUpTo(Timestamp watermark);

  /// Object-cache eviction sweep (EvictIfNeeded). Runs at the end of every
  /// pass; the daemon also calls it on idle-skipped wakeups so eviction
  /// never starves on garbage-free (e.g. insert-only) workloads.
  void EvictCache();

 private:
  Engine* const engine_;
  std::mutex mu_;  // One pass at a time.
};

/// WAL-logs and physically purges tombstoned entities — relationships
/// strictly before nodes, record + surgery inside one checkpoint epoch.
/// Shared by the threaded collector and the vacuum baseline. Returns the
/// number of entities purged.
uint64_t LogAndPurgeTombstones(Engine* engine, const std::vector<RelId>& rels,
                               const std::vector<NodeId>& nodes,
                               Timestamp watermark);

}  // namespace neosi

#endif  // NEOSI_GRAPH_GARBAGE_COLLECTOR_H_
