// The paper's garbage collector (§4): reclamation driven by the
// timestamp-sorted list of obsolete versions, so each pass touches only the
// versions it reclaims — never the whole store (contrast: VacuumGc).
//
// Sharded drains: the list is entity-key-sharded (ShardedGcList) and each
// shard is drained independently by its own GcDaemon worker
// (CollectShardUpTo). Reclaimability is per-version, so shards need no
// cross-coordination — with one exception: physical tombstone purges must
// remove relationships before their endpoint nodes, and a node's rel
// tombstones may hash to other shards. A node purge that still sees a
// physical rel chain is therefore DEFERRED (re-appended to its shard) until
// the rel shards have drained; see CollectShardUpTo.

#ifndef NEOSI_GRAPH_GARBAGE_COLLECTOR_H_
#define NEOSI_GRAPH_GARBAGE_COLLECTOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "graph/engine.h"

namespace neosi {

/// Outcome of one collection pass (experiment E8 reads these).
struct GcStats {
  Timestamp watermark = kNoTimestamp;
  uint64_t versions_pruned = 0;    ///< Superseded versions unlinked.
  uint64_t tombstones_purged = 0;  ///< Entities physically removed.
  uint64_t index_entries_dropped = 0;
  /// Node purges pushed to a later pass because the node's physical rel
  /// chain was non-empty (its rel tombstones live in a shard still
  /// draining). Each deferral re-appends the entry, so nothing is lost.
  uint64_t purges_deferred = 0;
  uint64_t nanos = 0;              ///< Wall time of the pass.
};

/// Engine-level GC executor over the mvcc::ShardedGcList.
class GcEngine {
 public:
  explicit GcEngine(Engine* engine);

  GcEngine(const GcEngine&) = delete;
  GcEngine& operator=(const GcEngine&) = delete;

  /// One GLOBAL pass: computes the watermark, pops every shard's
  /// reclaimable entries, prunes chains, purges tombstones (relationships
  /// before nodes), and compacts the indexes. Safe to call concurrently
  /// with transactions and with the per-shard drain workers.
  GcStats Collect();

  /// Global pass with an explicit watermark (tests).
  GcStats CollectUpTo(Timestamp watermark);

  /// One SHARD drain (the per-worker path): pops only `shard`'s
  /// reclaimable entries and reclaims them. When `run_global_extras` is
  /// set (exactly one worker per daemon cycle — the primary), the pass
  /// also compacts the indexes and runs the cache-eviction sweep, which
  /// are global structures that must not be swept once per shard.
  GcStats CollectShardUpTo(size_t shard, Timestamp watermark,
                           bool run_global_extras);

  /// Object-cache eviction sweep (EvictIfNeeded). Runs with the global
  /// extras of a pass; the daemon also calls it on idle-skipped wakeups so
  /// eviction never starves on garbage-free (e.g. insert-only) workloads.
  void EvictCache();

  /// Epoch tick for the latch-free read path: bumps the global epoch, then
  /// frees every limbo version no entered reader can still reach. Run by
  /// the PRIMARY daemon worker once per cycle (pass or idle skip) and by
  /// the manual/global pass, so retirees from cycle N are freed by cycle
  /// N+1 at the latest. Cheap no-op when nothing was retired.
  void DrainEpochs();

 private:
  /// Shared reclamation body: prunes superseded versions per entity and
  /// purges tombstones (rels strictly before nodes within `entries`;
  /// chained nodes deferred back onto the gc list).
  void DrainEntries(std::vector<GcEntry> entries, Timestamp watermark,
                    GcStats* stats);

  void CompactIndexes(Timestamp watermark, GcStats* stats);

  Engine* const engine_;
  /// One drain at a time PER SHARD (a shard worker and a global pass may
  /// target the same shard); global passes additionally serialize among
  /// themselves and with every shard via ordered acquisition.
  std::vector<std::unique_ptr<std::mutex>> shard_mus_;
  /// Serializes the global extras (index compaction + eviction) between
  /// the primary worker and manual Collect() calls.
  std::mutex extras_mu_;
};

/// WAL-logs and physically purges tombstoned entities — relationships
/// strictly before nodes, record + surgery inside one checkpoint epoch.
/// Shared by the threaded collector and the vacuum baseline. Returns the
/// number of entities purged.
uint64_t LogAndPurgeTombstones(Engine* engine, const std::vector<RelId>& rels,
                               const std::vector<NodeId>& nodes,
                               Timestamp watermark);

}  // namespace neosi

#endif  // NEOSI_GRAPH_GARBAGE_COLLECTOR_H_
