#include "graph/graph_database.h"

namespace neosi {

GraphDatabase::GraphDatabase(const DatabaseOptions& options)
    : engine_(std::make_unique<Engine>(options)) {}

GraphDatabase::~GraphDatabase() {
  // The applier mutates engine state through the same paths a committing
  // transaction uses; stop it before the daemons it feeds (GC, checkpoint).
  if (replica_applier_) replica_applier_->Stop();
  // API contract: transactions must not outlive their database — a commit
  // racing this destructor would use freed engine state regardless of the
  // daemon. Unpublishing the pointer before stopping is teardown hygiene
  // for code running within the destructor itself, not a cure for that
  // contract violation.
  engine_->gc_daemon.store(nullptr, std::memory_order_release);
  if (gc_daemon_) gc_daemon_->Stop();
  engine_->checkpoint_daemon.store(nullptr, std::memory_order_release);
  if (checkpoint_daemon_) checkpoint_daemon_->Stop();
}

Result<std::unique_ptr<GraphDatabase>> GraphDatabase::Open(
    const DatabaseOptions& options) {
  if (!options.in_memory && options.path.empty()) {
    return Status::InvalidArgument(
        "on-disk database requires options.path");
  }
  if (options.replica_of != nullptr && !options.replica_of_path.empty()) {
    return Status::InvalidArgument(
        "set replica_of (in-process) or replica_of_path (directory), not "
        "both");
  }
  if (!options.replica_of_path.empty() &&
      options.replica_of_path == options.path) {
    return Status::InvalidArgument(
        "a replica needs its own directory distinct from the primary's "
        "(replica_of_path == path)");
  }
  std::unique_ptr<GraphDatabase> db(new GraphDatabase(options));
  Status s = db->OpenImpl();
  if (!s.ok()) return s;
  return db;
}

Status GraphDatabase::OpenImpl() {
  NEOSI_RETURN_IF_ERROR(engine_->store.Open());

  // Recovery: replay the WAL tail onto the stores and restart the oracle
  // above the highest commit timestamp ever used.
  auto max_ts = engine_->store.Recover();
  if (!max_ts.ok()) return max_ts.status();
  engine_->oracle.Restart(*max_ts);

  engine_->cache = std::make_unique<ObjectCache>(
      &engine_->store, engine_->options.object_cache_capacity,
      engine_->options.latch_free_reads ? &engine_->epochs : nullptr);

  NEOSI_RETURN_IF_ERROR(RebuildIndexes());

  gc_ = std::make_unique<GcEngine>(engine_.get());
  vacuum_ = std::make_unique<VacuumGc>(engine_.get());
  if (engine_->options.background_gc_interval_ms > 0) {
    gc_daemon_ = std::make_unique<GcDaemon>(
        gc_.get(), &engine_->oracle, &engine_->active_txns, &engine_->gc_list,
        engine_->options.background_gc_interval_ms,
        engine_->options.gc_backlog_threshold,
        engine_->options.snapshot_max_age_ms,
        engine_->options.snapshot_expire_backlog);
    gc_daemon_->Start();
    engine_->gc_daemon.store(gc_daemon_.get(), std::memory_order_release);
  }
  if (engine_->options.checkpoint_interval_ms > 0) {
    checkpoint_daemon_ = std::make_unique<CheckpointDaemon>(
        &engine_->store, engine_->options.checkpoint_interval_ms,
        engine_->options.checkpoint_wal_threshold);
    checkpoint_daemon_->Start();
    engine_->checkpoint_daemon.store(checkpoint_daemon_.get(),
                                     std::memory_order_release);
  }
  if (engine_->options.IsReplica()) {
    std::shared_ptr<WalDir> source_dir = engine_->options.replica_of;
    if (source_dir == nullptr) {
      source_dir =
          std::make_shared<PosixWalDir>(engine_->options.replica_of_path);
    }
    replica_applier_ = std::make_unique<ReplicaApplier>(
        engine_.get(),
        std::make_unique<WalDirReplicationSource>(std::move(source_dir)),
        engine_->options.replica_poll_interval_ms,
        engine_->options.replica_conflict_grace_ms);
    NEOSI_RETURN_IF_ERROR(replica_applier_->Bootstrap(*max_ts));
    // Poll interval 0 = manual mode: tests drive RunOnce() deterministically.
    if (engine_->options.replica_poll_interval_ms > 0) {
      replica_applier_->Start();
    }
  }
  return Status::OK();
}

Status GraphDatabase::RebuildIndexes() {
  // Indexes are in-memory structures rebuilt from the persistent stores at
  // open (the newest committed version of each entity). Association
  // timestamps collapse to the record's commit timestamp, which is exact
  // enough: no snapshot older than the restart can exist.
  NEOSI_RETURN_IF_ERROR(engine_->store.ForEachNode([&](NodeId id) {
    NodeState state;
    NEOSI_RETURN_IF_ERROR(engine_->store.ReadNodeState(id, &state));
    if (!state.in_use || state.deleted) return Status::OK();
    for (LabelId label : state.labels) {
      engine_->label_index.AddPending(label, id, kNoTxn);
      engine_->label_index.CommitAdd(label, id, kNoTxn, state.commit_ts);
    }
    for (const auto& [key, value] : state.props) {
      engine_->node_prop_index.AddPending(key, value, id, kNoTxn);
      engine_->node_prop_index.CommitAdd(key, value, id, kNoTxn,
                                         state.commit_ts);
    }
    return Status::OK();
  }));
  NEOSI_RETURN_IF_ERROR(engine_->store.ForEachRel([&](RelId id) {
    RelState state;
    NEOSI_RETURN_IF_ERROR(engine_->store.ReadRelState(id, &state));
    if (!state.in_use || state.deleted) return Status::OK();
    for (const auto& [key, value] : state.props) {
      engine_->rel_prop_index.AddPending(key, value, id, kNoTxn);
      engine_->rel_prop_index.CommitAdd(key, value, id, kNoTxn,
                                        state.commit_ts);
    }
    return Status::OK();
  }));
  return Status::OK();
}

std::unique_ptr<Transaction> GraphDatabase::Begin() {
  return Begin(engine_->options.default_isolation);
}

std::unique_ptr<Transaction> GraphDatabase::Begin(IsolationLevel isolation) {
  return Begin(isolation, TransactionOptions{});
}

std::unique_ptr<Transaction> GraphDatabase::Begin(
    IsolationLevel isolation, const TransactionOptions& options) {
  const TxnId id = engine_->oracle.NextTxnId();

  // Serializable read-write transactions enter the SSI tracker BEFORE
  // acquiring their snapshot: a read-only transaction's safe-snapshot probe
  // below runs after its own snapshot is taken, so the two orders together
  // guarantee the probe can never miss a read-write peer whose snapshot
  // predates the read-only one.
  std::shared_ptr<SsiTxnInfo> ssi;
  // On a replica, serializable transactions are rejected at first use
  // (Transaction::CheckActive) — never enter them into the SSI tracker.
  const bool serializable = isolation == IsolationLevel::kSerializable &&
                            !engine_->options.IsReplica();
  if (serializable && !options.read_only) {
    ssi = engine_->ssi.Register(id, /*read_only=*/false);
  }

  // Atomic w.r.t. watermark computation: the snapshot timestamp is taken
  // and published to the active table in one step, so GC can never reclaim
  // a version this snapshot still needs. The registration also hands back
  // the expiry flag the GC daemon's snapshot-lifecycle sweep may set; the
  // transaction polls it on every operation.
  //
  // Only snapshot-based transactions pin the watermark: a read-committed
  // transaction reads latest-committed versions only (never reclaimable)
  // with epoch protection covering its walks, so it neither holds
  // reclamation back nor can it be a SnapshotTooOld victim.
  const bool pins_watermark = isolation != IsolationLevel::kReadCommitted;
  SnapshotRegistration reg = engine_->active_txns.RegisterAtomic(
      id, [this] { return engine_->oracle.ReadTs(); }, pins_watermark);

  if (serializable) {
    if (ssi) {
      engine_->ssi.SetStartTs(ssi, reg.start_ts);
    } else if (engine_->options.ssi_safe_snapshots &&
               engine_->ssi.IsSnapshotSafe(reg.start_ts)) {
      // Safe snapshot: no read-write serializable peer was registered when
      // this snapshot was taken AND every finished one committed at or
      // below it (a peer that finished the tracker but whose commit the
      // oracle has not yet published is still concurrent with this
      // snapshot), so nothing this transaction reads can sit on a
      // rw-antidependency path back into its past — skip tracking.
      engine_->ssi.RecordSafeSnapshot();
    } else {
      ssi = engine_->ssi.Register(id, /*read_only=*/true);
      engine_->ssi.SetStartTs(ssi, reg.start_ts);
    }
  }

  std::unique_ptr<Transaction> txn(new Transaction(
      engine_.get(), isolation, id, reg.start_ts, std::move(reg.expired),
      std::move(ssi), options.read_only));
  return txn;
}

GcStats GraphDatabase::RunGc() { return gc_->Collect(); }

VacuumStats GraphDatabase::RunVacuum() { return vacuum_->Run(); }

Status GraphDatabase::Checkpoint() { return engine_->store.Checkpoint(); }

Timestamp GraphDatabase::Watermark() const {
  return engine_->active_txns.Watermark(engine_->oracle.ReadTs());
}

DatabaseStats GraphDatabase::Stats() const {
  DatabaseStats stats;
  stats.store = engine_->store.Stats();
  stats.cache = engine_->cache->Stats();
  stats.locks = engine_->lock_manager.Stats();
  stats.label_index = engine_->label_index.Stats();
  stats.node_prop_index = engine_->node_prop_index.Stats();
  stats.rel_prop_index = engine_->rel_prop_index.Stats();
  stats.gc_queue = engine_->gc_list.backlog();
  stats.gc_appended = engine_->gc_list.total_appended();
  stats.gc_reclaimed = engine_->gc_list.total_reclaimed();
  stats.gc_backlog_high_water = engine_->gc_list.backlog_high_water();
  stats.gc_shards = engine_->gc_list.shard_count();
  stats.gc_shard_backlogs.reserve(engine_->gc_list.shard_count());
  for (size_t i = 0; i < engine_->gc_list.shard_count(); ++i) {
    stats.gc_shard_backlogs.push_back(engine_->gc_list.shard_backlog(i));
  }
  if (gc_daemon_) {
    stats.gc_daemon_passes = gc_daemon_->passes();
    stats.gc_daemon_nudge_passes = gc_daemon_->nudge_passes();
    stats.gc_daemon_interval_passes = gc_daemon_->interval_passes();
    stats.gc_purges_deferred = gc_daemon_->purges_deferred();
  }
  stats.snapshots_expired_age =
      engine_->active_txns.snapshots_expired_age();
  stats.snapshots_expired_backlog =
      engine_->active_txns.snapshots_expired_backlog();
  stats.snapshot_too_old_aborts =
      engine_->active_txns.snapshot_too_old_aborts();
  stats.epoch_current = engine_->epochs.current_epoch();
  stats.epoch_limbo = engine_->epochs.limbo_size();
  stats.epoch_retired = engine_->epochs.total_retired();
  stats.epoch_freed = engine_->epochs.total_freed();
  if (checkpoint_daemon_) {
    stats.checkpoint_daemon_passes = checkpoint_daemon_->passes();
    stats.checkpoint_daemon_nudge_passes = checkpoint_daemon_->nudge_passes();
    stats.checkpoint_daemon_interval_passes =
        checkpoint_daemon_->interval_passes();
    stats.checkpoint_daemon_idle_skips = checkpoint_daemon_->idle_skips();
  }
  const SsiTrackerStats ssi = engine_->ssi.Stats();
  stats.ssi_tracked_txns = ssi.tracked_txns;
  stats.ssi_safe_snapshots = ssi.safe_snapshots;
  stats.ssi_aborts_pivot = ssi.aborts_pivot;
  stats.ssi_aborts_doomed = ssi.aborts_doomed;
  stats.active_txns = engine_->active_txns.ActiveCount();
  stats.last_committed = engine_->oracle.ReadTs();
  if (replica_applier_) {
    stats.is_replica = true;
    stats.replica_applied_ts = replica_applier_->applied_ts();
    stats.replica_publish_ts = replica_applier_->primary_publish_ts();
    stats.replica_shipped_lsn = replica_applier_->shipped_lsn();
    stats.replica_polls = replica_applier_->polls();
    stats.replica_records_applied = replica_applier_->records_applied();
    stats.replica_records_skipped = replica_applier_->records_skipped();
    stats.replica_purges_applied = replica_applier_->purges_applied();
  }
  stats.snapshots_expired_replication =
      engine_->active_txns.snapshots_expired_replication();
  stats.admission_admitted =
      engine_->admission.admitted.load(std::memory_order_relaxed);
  stats.admission_delayed =
      engine_->admission.delayed.load(std::memory_order_relaxed);
  stats.admission_shed_backlog =
      engine_->admission.shed_backlog.load(std::memory_order_relaxed);
  stats.admission_shed_sessions =
      engine_->admission.shed_sessions.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace neosi
