#include "graph/gc_daemon.h"

#include <chrono>

namespace neosi {

GcDaemon::GcDaemon(GcEngine* gc, uint64_t interval_ms)
    : gc_(gc), interval_ms_(interval_ms == 0 ? 10 : interval_ms) {}

GcDaemon::~GcDaemon() { Stop(); }

void GcDaemon::Start() {
  std::lock_guard<std::mutex> guard(mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void GcDaemon::Stop() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_.store(false, std::memory_order_release);
}

void GcDaemon::Nudge() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    nudged_ = true;
  }
  cv_.notify_all();
}

void GcDaemon::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                   [this] { return stop_requested_ || nudged_; });
      if (stop_requested_) return;
      nudged_ = false;
    }
    GcStats stats = gc_->Collect();
    passes_.fetch_add(1, std::memory_order_relaxed);
    versions_pruned_.fetch_add(stats.versions_pruned,
                               std::memory_order_relaxed);
    tombstones_purged_.fetch_add(stats.tombstones_purged,
                                 std::memory_order_relaxed);
  }
}

}  // namespace neosi
