#include "graph/gc_daemon.h"

#include <algorithm>
#include <chrono>

namespace neosi {

GcDaemon::GcDaemon(GcEngine* gc, const TimestampOracle* oracle,
                   const ActiveTxnTable* active_txns, GcList* gc_list,
                   uint64_t interval_ms, uint64_t backlog_threshold)
    : gc_(gc),
      oracle_(oracle),
      active_txns_(active_txns),
      gc_list_(gc_list),
      interval_ms_(interval_ms == 0 ? 10 : interval_ms),
      backlog_threshold_(backlog_threshold) {}

GcDaemon::~GcDaemon() { Stop(); }

void GcDaemon::Start() {
  std::lock_guard<std::mutex> guard(mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  // A stale arm from a pinned-backlog skip before Stop() would suppress
  // every commit nudge for up to one interval of the fresh thread.
  nudge_armed_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void GcDaemon::Stop() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_.store(false, std::memory_order_release);
}

void GcDaemon::Nudge() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    nudged_ = true;
  }
  cv_.notify_all();
}

void GcDaemon::NudgeIfBacklogged() {
  if (backlog_threshold_ == 0) return;
  if (gc_list_->backlog() < backlog_threshold_) return;
  if (nudge_armed_.exchange(true, std::memory_order_acq_rel)) return;
  Nudge();
}

void GcDaemon::Loop() {
  // Retry cadence while a pinned snapshot holds a threshold-crossing
  // backlog above the watermark: nudges are suppressed in that state (see
  // below), so the daemon polls for the pin's release itself — quickly,
  // or reclamation would stall up to interval_ms_ after the pin is gone.
  constexpr uint64_t kPinnedRetryMs = 10;
  uint64_t wait_ms = interval_ms_;
  for (;;) {
    bool nudged = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                   [this] { return stop_requested_ || nudged_; });
      if (stop_requested_) return;
      nudged = nudged_;
      nudged_ = false;
    }
    // Consume the nudge arm BEFORE reading the watermark: a commit that
    // publishes after this point re-nudges (sets nudged_ for the next
    // iteration), so no backlog growth is ever swallowed by a pass or skip
    // computed against a stale watermark.
    nudge_armed_.store(false, std::memory_order_release);

    // Pace off the publication watermark: the fallback (oracle read
    // timestamp) MUST be evaluated before the active-table scan (see
    // ActiveTxnTable::Watermark). Nothing at or below the head entry's
    // timestamp reclaimable -> skip the pass entirely; an idle wakeup
    // costs one watermark computation and a list-head peek — no chain,
    // index or store work.
    const Timestamp fallback = oracle_->ReadTs();
    const Timestamp watermark = active_txns_->Watermark(fallback);
    if (gc_list_->OldestObsoleteSince() > watermark) {
      // Pinned backlog (e.g. a long-lived snapshot): RE-ARM so per-commit
      // nudges don't wake the daemon into this same skip once per commit.
      // While armed, the daemon polls on the short retry cadence instead,
      // so reclamation resumes within ~kPinnedRetryMs of the pin's release
      // even though commit nudges stay suppressed until the next pass.
      const bool pinned_backlog =
          backlog_threshold_ != 0 &&
          gc_list_->backlog() >= backlog_threshold_;
      if (pinned_backlog) {
        nudge_armed_.store(true, std::memory_order_release);
      }
      wait_ms = pinned_backlog ? std::min(interval_ms_, kPinnedRetryMs)
                               : interval_ms_;
      // Cache eviction must not starve while reclamation is idle (this
      // used to ride the retired foreground auto-GC).
      gc_->EvictCache();
      idle_skips_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    wait_ms = interval_ms_;

    GcStats stats = gc_->CollectUpTo(watermark);
    passes_.fetch_add(1, std::memory_order_relaxed);
    if (nudged) {
      nudge_passes_.fetch_add(1, std::memory_order_relaxed);
    } else {
      interval_passes_.fetch_add(1, std::memory_order_relaxed);
    }
    versions_pruned_.fetch_add(stats.versions_pruned,
                               std::memory_order_relaxed);
    tombstones_purged_.fetch_add(stats.tombstones_purged,
                                 std::memory_order_relaxed);
  }
}

}  // namespace neosi
