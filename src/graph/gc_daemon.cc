#include "graph/gc_daemon.h"

#include <algorithm>
#include <chrono>

namespace neosi {

GcDaemon::GcDaemon(GcEngine* gc, const TimestampOracle* oracle,
                   ActiveTxnTable* active_txns, ShardedGcList* gc_list,
                   uint64_t interval_ms, uint64_t backlog_threshold,
                   uint64_t snapshot_max_age_ms,
                   uint64_t snapshot_expire_backlog)
    : gc_(gc),
      oracle_(oracle),
      active_txns_(active_txns),
      gc_list_(gc_list),
      shard_count_(gc_list->shard_count()),
      interval_ms_(interval_ms == 0 ? 10 : interval_ms),
      backlog_threshold_(backlog_threshold),
      snapshot_max_age_ms_(snapshot_max_age_ms),
      snapshot_expire_backlog_(snapshot_expire_backlog) {}

GcDaemon::~GcDaemon() { Stop(); }

void GcDaemon::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  std::lock_guard<std::mutex> guard(mu_);
  if (!threads_.empty()) return;
  stop_requested_ = false;
  // A stale arm from a pinned-backlog skip before Stop() would suppress
  // every commit nudge for up to one interval of the fresh workers.
  nudge_armed_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  threads_.reserve(shard_count_);
  for (size_t shard = 0; shard < shard_count_; ++shard) {
    threads_.emplace_back([this, shard] { Loop(shard); });
  }
}

void GcDaemon::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  std::vector<std::thread> joinable;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (threads_.empty()) return;
    stop_requested_ = true;
    joinable.swap(threads_);
  }
  cv_.notify_all();
  for (std::thread& t : joinable) t.join();
  running_.store(false, std::memory_order_release);
}

void GcDaemon::Nudge() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    ++nudge_seq_;
  }
  cv_.notify_all();
}

void GcDaemon::NudgeIfBacklogged() {
  if (backlog_threshold_ == 0) return;
  if (gc_list_->backlog() < backlog_threshold_) return;
  if (nudge_armed_.exchange(true, std::memory_order_acq_rel)) return;
  Nudge();
}

void GcDaemon::MaybeExpireSnapshots() {
  if (snapshot_max_age_ms_ == 0 && snapshot_expire_backlog_ == 0) return;
  // Backlog pressure requires the backlog to be over threshold AND pinned:
  // a large backlog whose head is already reclaimable just needs draining,
  // not a victim. Watermark evaluation order as everywhere (fallback
  // first).
  bool pressure = false;
  if (snapshot_expire_backlog_ != 0 &&
      gc_list_->backlog() >= snapshot_expire_backlog_) {
    const Timestamp fallback = oracle_->ReadTs();
    const Timestamp watermark = active_txns_->Watermark(fallback);
    pressure = gc_list_->OldestObsoleteSince() > watermark;
  }
  active_txns_->ExpireSnapshots(snapshot_max_age_ms_, pressure);
}

void GcDaemon::Loop(size_t shard) {
  // Retry cadence while a pinned snapshot holds a threshold-crossing
  // backlog above the watermark: nudges are suppressed in that state (see
  // below), so workers poll for the pin's release themselves — quickly, or
  // reclamation would stall up to interval_ms_ after the pin is gone. With
  // the snapshot-too-old policy on, this same cadence bounds how long a
  // marked-expired victim keeps the backlog parked (one retry after the
  // primary's sweep advances the watermark past it).
  constexpr uint64_t kPinnedRetryMs = 10;
  const bool primary = shard == 0;
  uint64_t wait_ms = interval_ms_;
  uint64_t seen_seq = 0;
  for (;;) {
    bool nudged = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(wait_ms), [&] {
        return stop_requested_ || nudge_seq_ != seen_seq;
      });
      if (stop_requested_) return;
      nudged = nudge_seq_ != seen_seq;
      seen_seq = nudge_seq_;
    }
    // Consume the nudge arm BEFORE reading the watermark: a commit that
    // publishes after this point re-nudges (bumps nudge_seq_ for the next
    // iteration), so no backlog growth is ever swallowed by a pass or skip
    // computed against a stale watermark.
    nudge_armed_.store(false, std::memory_order_release);

    // The primary expires over-age / watermark-pinning snapshots BEFORE the
    // watermark is computed, so the very pass below already drains past a
    // freshly expired victim.
    if (primary) MaybeExpireSnapshots();

    // Pace off the publication watermark: the fallback (oracle read
    // timestamp) MUST be evaluated before the active-table scan (see
    // ActiveTxnTable::Watermark). Nothing at or below this shard's head
    // entry's timestamp reclaimable -> skip the pass entirely; an idle
    // wakeup costs one watermark computation and a shard-head peek — no
    // chain, index or store work.
    const Timestamp fallback = oracle_->ReadTs();
    const Timestamp watermark = active_txns_->Watermark(fallback);
    if (gc_list_->ShardOldestObsoleteSince(shard) > watermark) {
      // Pinned AGGREGATE backlog (e.g. a long-lived snapshot): RE-ARM so
      // per-commit nudges don't wake every worker into this same skip once
      // per commit. While armed, workers poll on the short retry cadence
      // instead, so reclamation resumes within ~kPinnedRetryMs of the
      // pin's release even though commit nudges stay suppressed until the
      // next pass.
      const bool pinned_backlog =
          backlog_threshold_ != 0 &&
          gc_list_->backlog() >= backlog_threshold_ &&
          gc_list_->OldestObsoleteSince() > watermark;
      if (pinned_backlog) {
        nudge_armed_.store(true, std::memory_order_release);
      }
      wait_ms = pinned_backlog ? std::min(interval_ms_, kPinnedRetryMs)
                               : interval_ms_;
      // Cache eviction must not starve while reclamation is idle (this
      // used to ride the retired foreground auto-GC). Primary only: the
      // sweep is global, N copies per cycle would be pure overhead. The
      // epoch tick rides along for the same reason: abort-path retirees
      // and other shards' prunes must reach the limbo drain even when
      // shard 0 itself has nothing reclaimable.
      if (primary) {
        gc_->EvictCache();
        gc_->DrainEpochs();
      }
      idle_skips_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    wait_ms = interval_ms_;

    GcStats stats =
        gc_->CollectShardUpTo(shard, watermark, /*run_global_extras=*/primary);
    passes_.fetch_add(1, std::memory_order_relaxed);
    if (nudged) {
      nudge_passes_.fetch_add(1, std::memory_order_relaxed);
    } else {
      interval_passes_.fetch_add(1, std::memory_order_relaxed);
    }
    versions_pruned_.fetch_add(stats.versions_pruned,
                               std::memory_order_relaxed);
    tombstones_purged_.fetch_add(stats.tombstones_purged,
                                 std::memory_order_relaxed);
    purges_deferred_.fetch_add(stats.purges_deferred,
                               std::memory_order_relaxed);
    // A deferred node purge is reclaimable NOW (its obsolete_since is
    // below the watermark already) — retry on the short cadence instead of
    // a full interval so cross-shard purge ordering converges quickly.
    if (stats.purges_deferred > 0) {
      wait_ms = std::min(interval_ms_, kPinnedRetryMs);
    }
  }
}

}  // namespace neosi
