// Replica replay daemon: continuously ships the primary's WAL records
// through a ReplicationSource and replays them into this (read-only)
// engine, publishing a REPLAY WATERMARK that replica snapshots pin to.
//
// Watermark protocol. Commit timestamps are dense integers, but the
// primary's WAL orders records by append, not by timestamp, and a commit
// that failed mid-pipeline can abandon its timestamp without ever writing a
// record. The applier therefore advances its watermark ("cover") two ways:
//  - CONTIGUITY: shipped commit records are buffered by timestamp and
//    applied the moment they extend cover + 1, which tracks the primary
//    exactly while every timestamp materializes;
//  - PUBLICATION HINTS: each primary record carries publish_ts — a
//    timestamp the producer had already observed as published. Every commit
//    with ts <= publish_ts sits at a lower LSN, so once all shipped records
//    below the hint's record are applied, cover may jump over abandoned
//    timestamps straight to the hint.
// Either way the published cover satisfies the oracle's watermark
// invariant: no snapshot at cover can observe a half-applied commit.
//
// Replay routes every mutation through the same version machinery a
// primary commit uses — pre-state is materialized into the object cache
// BEFORE the store is touched, the post-state is committed on the chain at
// the record's timestamp, superseded versions go to the GC list, and index
// membership diffs are stamped at the same timestamp — so pinned replica
// snapshots keep reading their versions while replay advances.
//
// Durability: each shipped record is re-logged into the replica's OWN wal
// before its effects are applied (primary checkpoint markers are stripped —
// their stable LSNs are primary-relative). Replica crash recovery is then
// the ordinary GraphStore::Recover() replay, and shipping resumes from the
// persisted cursor file ("replica.cursor" next to the local segments); the
// re-ship overlap a torn cursor write leaves behind is deduplicated by
// timestamp against the recovered watermark.
//
// Shipped GC purges are the replication conflict point (PostgreSQL's
// standby query conflicts): a purge reclaims state some replica snapshot
// below its timestamp may still need, so the applier waits up to
// replica_conflict_grace_ms for those snapshots to finish and then expires
// them (SnapshotTooOld) before applying the purge.

#ifndef NEOSI_GRAPH_REPLICA_APPLIER_H_
#define NEOSI_GRAPH_REPLICA_APPLIER_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "graph/engine.h"
#include "storage/replication_source.h"

namespace neosi {

class ReplicaApplier {
 public:
  /// File next to the replica's own WAL segments holding the shipping
  /// cursor (a primary LSN). Written via temp + rename, so it is either
  /// absent or complete.
  static constexpr const char* kCursorFileName = "replica.cursor";

  ReplicaApplier(Engine* engine, std::unique_ptr<ReplicationSource> source,
                 uint64_t poll_interval_ms, uint64_t conflict_grace_ms);
  ~ReplicaApplier();

  ReplicaApplier(const ReplicaApplier&) = delete;
  ReplicaApplier& operator=(const ReplicaApplier&) = delete;

  /// Restores the shipping cursor and replay watermark after the local
  /// recovery replay. `recovered_ts` is the recovered max commit timestamp
  /// (the oracle was Restart()ed with it). When no cursor file exists the
  /// cursor seeds from the local wal's append cursor — correct for a fresh
  /// replica of a fresh primary and for a replica seeded from a
  /// byte-identical copy of the primary's directory — and is persisted
  /// immediately, BEFORE any local append can move the local LSN space away
  /// from the primary's. Must be called before Start()/RunOnce().
  Status Bootstrap(Timestamp recovered_ts);

  void Start();
  void Stop();

  /// One synchronous ship-and-apply pass (the daemon loop body; tests call
  /// it directly for deterministic replay). Returns the first error; fatal
  /// gap/corruption errors also stick in last_error().
  Status RunOnce();

  /// Blocks until the applier has caught up to the source's current end (a
  /// single clean poll that shipped nothing new), or `timeout_ms` elapsed.
  /// Returns false on timeout or sticky error.
  bool WaitCaughtUp(uint64_t timeout_ms);

  // --- observability ------------------------------------------------------

  /// The replay watermark replica snapshots pin to.
  Timestamp applied_ts() const {
    return cover_.load(std::memory_order_acquire);
  }
  /// Highest publication hint shipped from the primary; applied_ts trails
  /// it by the records still in flight (the replication lag, in commits).
  Timestamp primary_publish_ts() const {
    return publish_ts_.load(std::memory_order_acquire);
  }
  /// Shipping cursor (primary LSN one past the last shipped record).
  Lsn shipped_lsn() const { return cursor_.load(std::memory_order_acquire); }

  uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }
  uint64_t records_applied() const {
    return records_applied_.load(std::memory_order_relaxed);
  }
  uint64_t records_skipped() const {
    return records_skipped_.load(std::memory_order_relaxed);
  }
  uint64_t purges_applied() const {
    return purges_applied_.load(std::memory_order_relaxed);
  }
  uint64_t conflicts_cancelled() const {
    return conflicts_cancelled_.load(std::memory_order_relaxed);
  }

  /// Sticky fatal error (cursor gap / corruption): the daemon parks on it
  /// and the replica keeps serving its last watermark until re-seeded.
  Status last_error() const;

 private:
  /// Classification of a shipped record (see ARCHITECTURE.md table).
  enum class RecordKind { kCheckpointMarker, kTokenOnly, kPurge, kCommit };
  static RecordKind Classify(const WalRecord& record);

  void Loop();
  /// One full poll -> ingest -> drain -> persist-cursor pass.
  Status RunOnePass(bool* progressed);
  /// Applies / buffers one shipped record; advances pending_ draining.
  Status Ingest(ShippedRecord shipped);
  /// Drains pending_ by contiguity and publication hint, publishing cover.
  Status DrainPending();
  /// Re-logs into the local wal, then applies every op at record.commit_ts.
  Status ApplyRecord(const WalRecord& record);
  Status ApplyNodeOp(const WalOp& op, TxnId txn, Timestamp ts);
  Status ApplyRelOp(const WalOp& op, TxnId txn, Timestamp ts);
  Status ApplyPurgeOp(const WalOp& op, Timestamp ts);
  /// Standby-conflict resolution: waits out the grace period, then expires
  /// every pinning snapshot below `purge_ts`.
  void CancelConflictsBelow(Timestamp purge_ts);
  Status ReadCursorFile(Lsn* cursor, bool* found);
  Status WriteCursorFile(Lsn cursor);

  Engine* engine_;
  std::unique_ptr<ReplicationSource> source_;
  const uint64_t poll_interval_ms_;
  const uint64_t conflict_grace_ms_;

  /// Shipped records waiting for their timestamp to extend the cover;
  /// multimap keeps equal timestamps in arrival (LSN) order, which orders a
  /// purge after the commit whose timestamp it borrowed.
  std::multimap<Timestamp, ShippedRecord> pending_;

  std::atomic<Timestamp> cover_{0};
  std::atomic<Timestamp> publish_ts_{0};
  std::atomic<Lsn> cursor_{0};
  Lsn persisted_cursor_ = 0;
  /// High-water of ingested primary LSNs: a failed pass leaves the cursor
  /// behind, and the re-shipped overlap must not re-buffer records that are
  /// already sitting in pending_.
  Lsn ingested_lsn_ = 0;

  std::atomic<uint64_t> polls_{0};
  std::atomic<uint64_t> records_applied_{0};
  std::atomic<uint64_t> records_skipped_{0};
  std::atomic<uint64_t> purges_applied_{0};
  std::atomic<uint64_t> conflicts_cancelled_{0};

  mutable std::mutex err_mu_;
  Status last_error_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable caught_up_cv_;
  /// Pass sequencing for WaitCaughtUp: a waiter needs a CLEAN-and-empty
  /// pass that STARTED after it sampled pass_seq_, so "caught up" always
  /// reflects the source's state after the caller's own writes.
  uint64_t pass_seq_ = 0;
  uint64_t last_caught_up_seq_ = 0;
  bool fatal_ = false;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  std::thread thread_;
};

}  // namespace neosi

#endif  // NEOSI_GRAPH_REPLICA_APPLIER_H_
