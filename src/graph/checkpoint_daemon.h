// Background checkpoint thread, the durability twin of GcDaemon.
//
// Pacing: the daemon wakes on a fixed interval and runs one FUZZY
// incremental checkpoint (GraphStore::Checkpoint — stable LSN, dirty-store
// sync, marker, segment-granular prefix truncation; commits never block)
// whenever the live WAL has outgrown the configured byte threshold OR the
// segment chain has rolled past a reclaimable segment. Commit publication
// nudges it early when either trips — a lock-free gauge read plus a rare
// notify, mirroring GcDaemon's backlog nudge — so a write burst is
// checkpointed promptly instead of waiting out the interval, and a
// long-running workload's on-disk log footprint stays bounded by the live
// bytes plus ~two segments.

#ifndef NEOSI_GRAPH_CHECKPOINT_DAEMON_H_
#define NEOSI_GRAPH_CHECKPOINT_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/status.h"
#include "storage/graph_store.h"

namespace neosi {

/// WAL-growth-paced asynchronous checkpoint thread over a GraphStore.
class CheckpointDaemon {
 public:
  /// A pass checkpoints when the live WAL is at least `wal_threshold_bytes`
  /// (0 = checkpoint on every interval pass).
  CheckpointDaemon(GraphStore* store, uint64_t interval_ms,
                   uint64_t wal_threshold_bytes);
  ~CheckpointDaemon();

  CheckpointDaemon(const CheckpointDaemon&) = delete;
  CheckpointDaemon& operator=(const CheckpointDaemon&) = delete;

  /// Starts the thread (idempotent).
  void Start();

  /// Stops and joins the thread (idempotent; also done by the destructor).
  /// An in-flight checkpoint completes, then the thread exits.
  void Stop();

  /// Wakes the daemon for an immediate pass, regardless of the threshold.
  void Nudge();

  /// Commit-publication hook: nudges iff the live WAL has reached the
  /// threshold, by bytes OR by segments (a rolled-past segment is whole-
  /// file reclaimable once the stable LSN passes it — worth a pass even
  /// below the byte threshold). The common case is a few relaxed atomic
  /// loads; an already armed nudge is never re-notified.
  void NudgeIfWalExceedsThreshold();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Totals across all passes so far.
  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }
  uint64_t nudge_passes() const {
    return nudge_passes_.load(std::memory_order_relaxed);
  }
  uint64_t interval_passes() const {
    return interval_passes_.load(std::memory_order_relaxed);
  }
  /// Wakeups that found the live WAL below the threshold and skipped.
  uint64_t idle_skips() const {
    return idle_skips_.load(std::memory_order_relaxed);
  }
  /// Passes whose checkpoint returned an error (kept counting; the next
  /// pass retries).
  uint64_t failed_passes() const {
    return failed_passes_.load(std::memory_order_relaxed);
  }

  uint64_t wal_threshold_bytes() const { return wal_threshold_bytes_; }

 private:
  void Loop();

  /// The pass gate shared by the interval loop and the commit nudge: live
  /// WAL bytes past the threshold, or more than one chained segment (so a
  /// checkpoint can turn a cold segment into an unlink).
  bool WalNeedsCheckpoint() const;

  GraphStore* const store_;
  const uint64_t interval_ms_;
  const uint64_t wal_threshold_bytes_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool nudged_ = false;
  std::thread thread_;
  std::atomic<bool> running_{false};
  /// Collapses the per-commit nudge storm above the threshold into one
  /// notify until the daemon has reacted.
  std::atomic<bool> nudge_armed_{false};

  std::atomic<uint64_t> passes_{0};
  std::atomic<uint64_t> nudge_passes_{0};
  std::atomic<uint64_t> interval_passes_{0};
  std::atomic<uint64_t> idle_skips_{0};
  std::atomic<uint64_t> failed_passes_{0};
};

}  // namespace neosi

#endif  // NEOSI_GRAPH_CHECKPOINT_DAEMON_H_
