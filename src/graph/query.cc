#include "graph/query.h"

#include <algorithm>

namespace neosi {

// ----------------------------------- Filter --------------------------------

Filter Filter::Eq(std::string key, PropertyValue value) {
  return Filter{std::move(key), Op::kEq, std::move(value), {}};
}
Filter Filter::Lt(std::string key, PropertyValue value) {
  return Filter{std::move(key), Op::kLt, std::move(value), {}};
}
Filter Filter::Le(std::string key, PropertyValue value) {
  return Filter{std::move(key), Op::kLe, std::move(value), {}};
}
Filter Filter::Gt(std::string key, PropertyValue value) {
  return Filter{std::move(key), Op::kGt, std::move(value), {}};
}
Filter Filter::Ge(std::string key, PropertyValue value) {
  return Filter{std::move(key), Op::kGe, std::move(value), {}};
}
Filter Filter::Between(std::string key, PropertyValue lo, PropertyValue hi) {
  return Filter{std::move(key), Op::kBetween, std::move(lo), std::move(hi)};
}
Filter Filter::Exists(std::string key) {
  return Filter{std::move(key), Op::kExists, {}, {}};
}

bool Filter::Matches(const NamedProperties& props) const {
  auto it = props.find(key);
  if (it == props.end()) return false;
  const PropertyValue& v = it->second;
  switch (op) {
    case Op::kEq:
      return v == a;
    case Op::kLt:
      return v < a;
    case Op::kLe:
      return v <= a;
    case Op::kGt:
      return v > a;
    case Op::kGe:
      return v >= a;
    case Op::kBetween:
      return a <= v && v <= b;
    case Op::kExists:
      return true;
  }
  return false;
}

// ------------------------------------ Query --------------------------------

Query Query::Match(NodePattern pattern) {
  Query q;
  q.start_ = std::move(pattern);
  return q;
}

Query& Query::Expand(Expansion expansion) {
  expansions_.push_back(std::move(expansion));
  return *this;
}

Query& Query::Limit(size_t limit) {
  limit_ = limit;
  return *this;
}

Query& Query::AllowRevisit(bool allow) {
  allow_revisit_ = allow;
  return *this;
}

Result<std::vector<NodeId>> Query::StartCandidates(Transaction& txn) const {
  // Access-path choice: property equality (narrowest) > property range >
  // label scan > full scan. Residual filters are verified per node later.
  for (const Filter& filter : start_.filters()) {
    if (filter.op == Filter::Op::kEq) {
      return txn.GetNodesByProperty(filter.key, filter.a);
    }
  }
  for (const Filter& filter : start_.filters()) {
    switch (filter.op) {
      case Filter::Op::kBetween:
        return txn.GetNodesByPropertyRange(filter.key, filter.a, filter.b);
      case Filter::Op::kLt:
      case Filter::Op::kLe:
        return txn.GetNodesByPropertyRange(filter.key, std::nullopt,
                                           filter.a);
      case Filter::Op::kGt:
      case Filter::Op::kGe:
        return txn.GetNodesByPropertyRange(filter.key, filter.a,
                                           std::nullopt);
      default:
        break;
    }
  }
  if (start_.label().has_value()) {
    return txn.GetNodesByLabel(*start_.label());
  }
  return txn.AllNodes();
}

Result<bool> Query::MatchesPattern(Transaction& txn, NodeId node,
                                   const NodePattern& pattern) {
  auto view = txn.GetNode(node);
  if (!view.ok()) {
    if (view.status().IsNotFound()) return false;
    return view.status();
  }
  if (pattern.label().has_value()) {
    if (std::find(view->labels.begin(), view->labels.end(),
                  *pattern.label()) == view->labels.end()) {
      return false;
    }
  }
  for (const Filter& filter : pattern.filters()) {
    if (!filter.Matches(view->props)) return false;
  }
  return true;
}

Result<std::vector<QueryRow>> Query::Execute(Transaction& txn) const {
  auto candidates = StartCandidates(txn);
  if (!candidates.ok()) return candidates.status();

  std::vector<QueryRow> frontier;
  for (NodeId node : *candidates) {
    auto matches = MatchesPattern(txn, node, start_);
    if (!matches.ok()) return matches.status();
    if (*matches) frontier.push_back({node});
  }

  for (const Expansion& expansion : expansions_) {
    std::vector<QueryRow> next;
    for (const QueryRow& row : frontier) {
      auto neighbors =
          txn.GetRelationships(row.back(), expansion.direction,
                               expansion.type);
      if (!neighbors.ok()) {
        if (neighbors.status().IsNotFound()) continue;
        return neighbors.status();
      }
      for (RelId rel_id : *neighbors) {
        auto rel = txn.GetRelationship(rel_id);
        if (!rel.ok()) continue;
        const NodeId target = rel->OtherEnd(row.back());
        if (!allow_revisit_ &&
            std::find(row.begin(), row.end(), target) != row.end()) {
          continue;
        }
        auto matches = MatchesPattern(txn, target, expansion.target);
        if (!matches.ok()) return matches.status();
        if (!*matches) continue;
        QueryRow extended = row;
        extended.push_back(target);
        next.push_back(std::move(extended));
      }
    }
    frontier = std::move(next);
  }

  if (limit_ != 0 && frontier.size() > limit_) {
    frontier.resize(limit_);
  }
  return frontier;
}

Result<std::vector<NodeId>> Query::ExecuteEndpoints(Transaction& txn) const {
  auto rows = Execute(txn);
  if (!rows.ok()) return rows.status();
  std::vector<NodeId> out;
  out.reserve(rows->size());
  for (const QueryRow& row : *rows) out.push_back(row.back());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace neosi
