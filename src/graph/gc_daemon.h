// Background garbage-collection thread. The paper's GC is cheap enough
// (O(garbage) per pass, E8) to run continuously without stalling
// processing — the property that PostgreSQL's vacuum lacks (§4).
//
// Pacing: the daemon is the ONLY automatic reclamation path (no GC work
// runs on the commit path). It wakes on a fixed interval, and commit
// publication nudges it early whenever the GcList backlog crosses the
// configured threshold — a lock-free gauge read plus a rare notify. Every
// pass drains the list strictly up to the publication/active-transaction
// watermark, so a version some snapshot can still read is never reclaimed.

#ifndef NEOSI_GRAPH_GC_DAEMON_H_
#define NEOSI_GRAPH_GC_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "graph/garbage_collector.h"
#include "mvcc/gc_list.h"
#include "txn/active_txn_table.h"
#include "txn/timestamp_oracle.h"

namespace neosi {

/// Watermark-paced asynchronous reclamation thread over a GcEngine.
class GcDaemon {
 public:
  /// `oracle` + `active_txns` supply the reclamation watermark; `gc_list`
  /// is the backlog the daemon drains. `backlog_threshold` == 0 disables
  /// nudging (interval pacing only).
  GcDaemon(GcEngine* gc, const TimestampOracle* oracle,
           const ActiveTxnTable* active_txns, GcList* gc_list,
           uint64_t interval_ms, uint64_t backlog_threshold);
  ~GcDaemon();

  GcDaemon(const GcDaemon&) = delete;
  GcDaemon& operator=(const GcDaemon&) = delete;

  /// Starts the thread (idempotent).
  void Start();

  /// Stops and joins the thread (idempotent; also done by the destructor).
  /// Safe to call during an in-flight pass: the pass completes, then the
  /// thread exits.
  void Stop();

  /// Wakes the daemon for an immediate pass, without waiting for the
  /// interval.
  void Nudge();

  /// Commit-publication hook: nudges iff the GcList backlog has reached the
  /// threshold. The common case is one relaxed atomic load; an already
  /// armed nudge is never re-notified.
  void NudgeIfBacklogged();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Totals across all passes so far.
  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }
  uint64_t nudge_passes() const {
    return nudge_passes_.load(std::memory_order_relaxed);
  }
  uint64_t interval_passes() const {
    return interval_passes_.load(std::memory_order_relaxed);
  }
  /// Interval wakeups that found nothing reclaimable below the watermark
  /// and skipped the pass entirely.
  uint64_t idle_skips() const {
    return idle_skips_.load(std::memory_order_relaxed);
  }
  uint64_t versions_pruned() const {
    return versions_pruned_.load(std::memory_order_relaxed);
  }
  uint64_t tombstones_purged() const {
    return tombstones_purged_.load(std::memory_order_relaxed);
  }

  uint64_t backlog_threshold() const { return backlog_threshold_; }

 private:
  void Loop();

  GcEngine* const gc_;
  const TimestampOracle* const oracle_;
  const ActiveTxnTable* const active_txns_;
  GcList* const gc_list_;
  const uint64_t interval_ms_;
  const uint64_t backlog_threshold_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool nudged_ = false;
  std::thread thread_;
  std::atomic<bool> running_{false};
  /// Collapses the per-commit nudge storm above the threshold into one
  /// notify until the daemon has reacted.
  std::atomic<bool> nudge_armed_{false};

  std::atomic<uint64_t> passes_{0};
  std::atomic<uint64_t> nudge_passes_{0};
  std::atomic<uint64_t> interval_passes_{0};
  std::atomic<uint64_t> idle_skips_{0};
  std::atomic<uint64_t> versions_pruned_{0};
  std::atomic<uint64_t> tombstones_purged_{0};
};

}  // namespace neosi

#endif  // NEOSI_GRAPH_GC_DAEMON_H_
