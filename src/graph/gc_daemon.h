// Background garbage-collection thread. The paper's GC is cheap enough
// (O(garbage) per pass, E8) to run continuously without stalling
// processing — the property that PostgreSQL's vacuum lacks (§4).

#ifndef NEOSI_GRAPH_GC_DAEMON_H_
#define NEOSI_GRAPH_GC_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "graph/garbage_collector.h"

namespace neosi {

/// Periodically runs GcEngine::Collect on its own thread.
class GcDaemon {
 public:
  GcDaemon(GcEngine* gc, uint64_t interval_ms);
  ~GcDaemon();

  GcDaemon(const GcDaemon&) = delete;
  GcDaemon& operator=(const GcDaemon&) = delete;

  /// Starts the thread (idempotent).
  void Start();

  /// Stops and joins the thread (idempotent; also done by the destructor).
  void Stop();

  /// Wakes the daemon for an immediate pass (e.g. after a burst of
  /// commits), without waiting for the interval.
  void Nudge();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Totals across all passes so far.
  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }
  uint64_t versions_pruned() const {
    return versions_pruned_.load(std::memory_order_relaxed);
  }
  uint64_t tombstones_purged() const {
    return tombstones_purged_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  GcEngine* const gc_;
  const uint64_t interval_ms_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool nudged_ = false;
  std::thread thread_;
  std::atomic<bool> running_{false};

  std::atomic<uint64_t> passes_{0};
  std::atomic<uint64_t> versions_pruned_{0};
  std::atomic<uint64_t> tombstones_purged_{0};
};

}  // namespace neosi

#endif  // NEOSI_GRAPH_GC_DAEMON_H_
