// Background garbage-collection workers. The paper's GC is cheap enough
// (O(garbage) per pass, E8) to run continuously without stalling
// processing — the property that PostgreSQL's vacuum lacks (§4).
//
// Topology: ONE drain worker thread per GC-list shard (shard i is drained
// only by worker i, so shard drains never contend with each other; the
// worker count is options.gc_shards). The daemon is the only automatic
// reclamation path — no GC work runs on the commit path. Workers wake on a
// fixed interval, and commit publication nudges them early whenever the
// aggregate GcList backlog crosses the configured threshold — a lock-free
// gauge read plus a rare notify. Every pass drains its shard strictly up
// to the publication/active-transaction watermark, so a version some live
// snapshot can still read is never reclaimed.
//
// Snapshot lifecycle: worker 0 (the "primary") additionally runs the
// snapshot expiry sweep (ActiveTxnTable::ExpireSnapshots) on every wakeup —
// age-based (snapshot_max_age_ms) plus backlog-pressure eviction of the
// watermark-pinning cohort (snapshot_expire_backlog) — and carries the
// global per-pass extras (index compaction, cache eviction, and the epoch
// bump+drain tick that frees limbo versions retired by the latch-free
// read path) that must not run once per shard. The epoch tick runs on
// idle skips too, so abort-path retirees are freed even when nothing is
// reclaimable.

#ifndef NEOSI_GRAPH_GC_DAEMON_H_
#define NEOSI_GRAPH_GC_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "graph/garbage_collector.h"
#include "mvcc/gc_list.h"
#include "txn/active_txn_table.h"
#include "txn/timestamp_oracle.h"

namespace neosi {

/// Watermark-paced asynchronous reclamation workers over a GcEngine.
class GcDaemon {
 public:
  /// `oracle` + `active_txns` supply the reclamation watermark (the table
  /// is mutable: the primary worker marks snapshots expired on it);
  /// `gc_list` is the sharded backlog — one worker thread is spawned per
  /// shard. `backlog_threshold` == 0 disables nudging (interval pacing
  /// only). `snapshot_max_age_ms` / `snapshot_expire_backlog` == 0 disable
  /// the respective expiry triggers.
  GcDaemon(GcEngine* gc, const TimestampOracle* oracle,
           ActiveTxnTable* active_txns, ShardedGcList* gc_list,
           uint64_t interval_ms, uint64_t backlog_threshold,
           uint64_t snapshot_max_age_ms, uint64_t snapshot_expire_backlog);
  ~GcDaemon();

  GcDaemon(const GcDaemon&) = delete;
  GcDaemon& operator=(const GcDaemon&) = delete;

  /// Starts the worker threads (idempotent).
  void Start();

  /// Stops and joins every worker (idempotent; also done by the
  /// destructor). Safe to call during in-flight passes: each pass
  /// completes, then its thread exits.
  void Stop();

  /// Wakes every worker for an immediate pass, without waiting for the
  /// interval.
  void Nudge();

  /// Commit-publication hook: nudges iff the aggregate GcList backlog has
  /// reached the threshold. The common case is one relaxed atomic load; an
  /// already armed nudge is never re-notified.
  void NudgeIfBacklogged();

  bool running() const { return running_.load(std::memory_order_acquire); }

  size_t worker_count() const { return shard_count_; }

  /// Totals across all workers and passes so far. A "pass" is one worker
  /// draining one shard (so one daemon cycle contributes up to
  /// worker_count() passes).
  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }
  uint64_t nudge_passes() const {
    return nudge_passes_.load(std::memory_order_relaxed);
  }
  uint64_t interval_passes() const {
    return interval_passes_.load(std::memory_order_relaxed);
  }
  /// Wakeups that found nothing reclaimable in their shard below the
  /// watermark and skipped the pass entirely.
  uint64_t idle_skips() const {
    return idle_skips_.load(std::memory_order_relaxed);
  }
  uint64_t versions_pruned() const {
    return versions_pruned_.load(std::memory_order_relaxed);
  }
  uint64_t tombstones_purged() const {
    return tombstones_purged_.load(std::memory_order_relaxed);
  }
  /// Node purges deferred across shard-drain passes (see GcStats).
  uint64_t purges_deferred() const {
    return purges_deferred_.load(std::memory_order_relaxed);
  }

  uint64_t backlog_threshold() const { return backlog_threshold_; }

 private:
  void Loop(size_t shard);

  /// Primary-worker expiry sweep: age expiry plus backlog-pressure
  /// eviction when the backlog is over threshold AND pinned (its head is
  /// not reclaimable below the current watermark).
  void MaybeExpireSnapshots();

  GcEngine* const gc_;
  const TimestampOracle* const oracle_;
  ActiveTxnTable* const active_txns_;
  ShardedGcList* const gc_list_;
  const size_t shard_count_;
  const uint64_t interval_ms_;
  const uint64_t backlog_threshold_;
  const uint64_t snapshot_max_age_ms_;
  const uint64_t snapshot_expire_backlog_;

  /// Serializes Start()/Stop() transitions end to end (held ACROSS the
  /// joins, which mu_ cannot be — workers need mu_ to observe the stop
  /// flag). Without it a Start() racing a mid-join Stop() could clear
  /// stop_requested_ before the outgoing workers saw it, wedging Stop()
  /// on threads that never exit.
  std::mutex lifecycle_mu_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  /// Nudge generation: bumped by Nudge(), observed per worker (a worker
  /// that slept through N nudges reacts once — the pass it runs sees the
  /// freshest watermark anyway).
  uint64_t nudge_seq_ = 0;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  /// Collapses the per-commit nudge storm above the threshold into one
  /// notify until a worker has reacted.
  std::atomic<bool> nudge_armed_{false};

  std::atomic<uint64_t> passes_{0};
  std::atomic<uint64_t> nudge_passes_{0};
  std::atomic<uint64_t> interval_passes_{0};
  std::atomic<uint64_t> idle_skips_{0};
  std::atomic<uint64_t> versions_pruned_{0};
  std::atomic<uint64_t> tombstones_purged_{0};
  std::atomic<uint64_t> purges_deferred_{0};
};

}  // namespace neosi

#endif  // NEOSI_GRAPH_GC_DAEMON_H_
