// Internal component container shared by GraphDatabase, Transaction and the
// garbage collectors. Not part of the stable public API (exposed for tests
// and benches, which probe engine internals deliberately).

#ifndef NEOSI_GRAPH_ENGINE_H_
#define NEOSI_GRAPH_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>

#include "cache/object_cache.h"
#include "common/options.h"
#include "index/label_index.h"
#include "index/property_index.h"
#include "mvcc/epoch.h"
#include "mvcc/gc_list.h"
#include "storage/graph_store.h"
#include "txn/active_txn_table.h"
#include "txn/lock_manager.h"
#include "txn/ssi_tracker.h"
#include "txn/timestamp_oracle.h"

namespace neosi {

class CheckpointDaemon;
class GcDaemon;

/// Failure-injection switches used by the recovery / crash tests. All off by
/// default; production paths never set them.
struct TestHooks {
  /// Commit appends the WAL record, then "crashes" before applying anything
  /// to the stores (returns IOError; the database must be reopened).
  std::atomic<bool> crash_before_store_apply{false};
  /// Commit crashes after this many successful store-apply operations
  /// (-1 = disabled).
  std::atomic<int> crash_after_n_store_ops{-1};
  /// Commit parks between its WAL append and its store apply — with its
  /// record's lsn pinned against checkpoint truncation — until the flag is
  /// cleared (checkpoint-vs-group-commit race tests).
  std::atomic<bool> stall_before_store_apply{false};
  /// Number of commits that have reached the stall point above.
  std::atomic<uint64_t> stalled_commits{0};
  /// Commit parks after its effects are applied and its SSI bookkeeping is
  /// finished, but before the oracle's ordered publication of the commit
  /// timestamp — the window where a freshly begun transaction can still
  /// acquire a snapshot predating the commit (safe-snapshot race tests).
  std::atomic<bool> stall_before_publication{false};
  /// Number of commits that have reached the publication stall point.
  std::atomic<uint64_t> stalled_publications{0};
};

/// Per-cause admission-control counters, incremented by the network session
/// front-end (src/server) and surfaced through DatabaseStats. The engine
/// itself never sheds anything — admission decisions live at the session
/// boundary, where a retryable Busy costs the client one round-trip instead
/// of an aborted established snapshot.
struct AdmissionCounters {
  /// Begin requests admitted (possibly after a bounded delay).
  std::atomic<uint64_t> admitted{0};
  /// Begin requests that waited at least one delay quantum for pressure to
  /// clear before being admitted or shed.
  std::atomic<uint64_t> delayed{0};
  /// LIVE gauge: Begin requests currently parked in the admission delay
  /// window (tests synchronize on this to drain pressure deterministically
  /// while a Begin is provably waiting).
  std::atomic<uint64_t> waiting{0};
  /// Begin requests shed with Busy because the GC backlog gauge sat above
  /// snapshot_expire_backlog for the whole admission window.
  std::atomic<uint64_t> shed_backlog{0};
  /// Begin requests shed with Busy because max_sessions transactions were
  /// already open through the server.
  std::atomic<uint64_t> shed_sessions{0};
};

/// Everything the engine is made of, wired once at Open().
struct Engine {
  explicit Engine(const DatabaseOptions& opts)
      : options(opts),
        store(opts),
        active_txns(opts.ResolvedTxnTableShards()),
        lock_manager(opts.lock_timeout_ms),
        gc_list(opts.ResolvedGcShards()),
        epochs(opts.ResolvedEpochSlots()),
        ssi(opts.ResolvedSsiMarkerShards()) {}

  DatabaseOptions options;

  GraphStore store;
  TimestampOracle oracle;
  ActiveTxnTable active_txns;
  LockManager lock_manager;
  /// Entity-key-sharded reclamation queue (opts.gc_shards shards, auto =
  /// core count); each shard is drained by its own GcDaemon worker.
  ShardedGcList gc_list;
  /// Epoch-based-reclamation domain for the latch-free read path. Always
  /// constructed; wired into the cache's version chains only when
  /// opts.latch_free_reads is set. The GC daemon bumps + drains it once
  /// per cycle.
  EpochManager epochs;
  /// SIREAD markers + rw-antidependency edges for kSerializable
  /// transactions (opts.ssi_marker_shards shards, auto = 64). Touched only
  /// by serializable transactions; SI/RC paths never enter it.
  SsiTracker ssi;

  // Constructed after store.Open() (needs the store pointer).
  std::unique_ptr<ObjectCache> cache;

  LabelIndex label_index;
  PropertyIndex node_prop_index;
  PropertyIndex rel_prop_index;

  // There is deliberately no global commit mutex: commits validate under
  // their long write locks, allocate a timestamp from the oracle (the only
  // sequencing point), apply in parallel, and publish in timestamp order
  // through the oracle's watermark (see ARCHITECTURE.md, "Commit pipeline").

  /// The background reclamation daemon, published by GraphDatabase after
  /// wiring (null when background_gc_interval_ms == 0). Commit publication
  /// reads it to nudge a pass when the GcList backlog crosses the
  /// threshold; no GC work ever runs on the commit path itself.
  std::atomic<GcDaemon*> gc_daemon{nullptr};

  /// The background checkpoint daemon, published the same way (null when
  /// checkpoint_interval_ms == 0). Commit publication nudges it when the
  /// live WAL outgrows checkpoint_wal_threshold; no checkpoint work ever
  /// runs on the commit path itself.
  std::atomic<CheckpointDaemon*> checkpoint_daemon{nullptr};

  /// Admission-control counters written by the network front-end (zero in
  /// purely in-process deployments).
  AdmissionCounters admission;

  TestHooks test_hooks;
};

}  // namespace neosi

#endif  // NEOSI_GRAPH_ENGINE_H_
