#include "graph/checkpoint_daemon.h"

#include <chrono>

namespace neosi {

CheckpointDaemon::CheckpointDaemon(GraphStore* store, uint64_t interval_ms,
                                   uint64_t wal_threshold_bytes)
    : store_(store),
      interval_ms_(interval_ms == 0 ? 100 : interval_ms),
      wal_threshold_bytes_(wal_threshold_bytes) {}

CheckpointDaemon::~CheckpointDaemon() { Stop(); }

void CheckpointDaemon::Start() {
  std::lock_guard<std::mutex> guard(mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  nudge_armed_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void CheckpointDaemon::Stop() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_.store(false, std::memory_order_release);
}

void CheckpointDaemon::Nudge() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    nudged_ = true;
  }
  cv_.notify_all();
}

bool CheckpointDaemon::WalNeedsCheckpoint() const {
  if (wal_threshold_bytes_ == 0) return true;
  // Byte pressure, or segment pressure: once the chain has rolled past a
  // segment, a checkpoint can reclaim it as one whole-file unlink — pace on
  // the physical footprint, not just the live bytes.
  return store_->wal().SizeBytes() >= wal_threshold_bytes_ ||
         store_->wal().SegmentCount() > 1;
}

void CheckpointDaemon::NudgeIfWalExceedsThreshold() {
  if (wal_threshold_bytes_ == 0) return;
  if (!WalNeedsCheckpoint()) return;
  if (nudge_armed_.exchange(true, std::memory_order_acq_rel)) return;
  Nudge();
}

void CheckpointDaemon::Loop() {
  for (;;) {
    bool nudged = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                   [this] { return stop_requested_ || nudged_; });
      if (stop_requested_) return;
      nudged = nudged_;
      nudged_ = false;
    }
    // Re-arm the commit nudge BEFORE reading the gauge: WAL growth that
    // lands after this point re-nudges for the next iteration, so no burst
    // is swallowed by a pass computed against a stale size.
    nudge_armed_.store(false, std::memory_order_release);

    // An explicit Nudge() always checkpoints; an interval wakeup only when
    // the live WAL has outgrown the threshold (bytes or segments). Idle
    // wakeups cost a few atomic loads — no store or log work.
    if (!nudged && !WalNeedsCheckpoint()) {
      idle_skips_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    Status s = store_->Checkpoint();
    passes_.fetch_add(1, std::memory_order_relaxed);
    if (nudged) {
      nudge_passes_.fetch_add(1, std::memory_order_relaxed);
    } else {
      interval_passes_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!s.ok()) failed_passes_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace neosi
