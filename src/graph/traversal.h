// Graph traversal utilities over the transactional API. Every traversal runs
// inside the caller's transaction and therefore observes one snapshot — the
// paper's motivating example (§1) is a two-step algorithm whose first step's
// path must still exist in the second step, which holds under SI and fails
// under read committed (experiment E3).

#ifndef NEOSI_GRAPH_TRAVERSAL_H_
#define NEOSI_GRAPH_TRAVERSAL_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/transaction.h"

namespace neosi {
namespace traversal {

/// Nodes reachable within exactly <= depth hops of start (start excluded),
/// deduplicated, BFS order.
Result<std::vector<NodeId>> KHopNeighborhood(
    Transaction& txn, NodeId start, int depth,
    Direction direction = Direction::kBoth,
    const std::optional<std::string>& type = std::nullopt);

/// Unweighted shortest path (sequence of node ids, inclusive of endpoints).
/// Empty optional when no path exists within max_depth.
Result<std::optional<std::vector<NodeId>>> ShortestPath(
    Transaction& txn, NodeId from, NodeId to, int max_depth = 16,
    Direction direction = Direction::kBoth,
    const std::optional<std::string>& type = std::nullopt);

/// True when `to` is reachable from `from` within max_depth hops.
Result<bool> PathExists(Transaction& txn, NodeId from, NodeId to,
                        int max_depth = 16,
                        Direction direction = Direction::kBoth);

/// Connected-component size from a seed (bounded by max_nodes).
Result<size_t> ComponentSize(Transaction& txn, NodeId seed,
                             size_t max_nodes = SIZE_MAX);

}  // namespace traversal
}  // namespace neosi

#endif  // NEOSI_GRAPH_TRAVERSAL_H_
