#include "txn/ssi_tracker.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace neosi {

namespace {

/// Env-gated event trace (NEOSI_SSI_TRACE=stderr|<path>) for debugging
/// serializability holes: every marker insert, edge link, danger verdict
/// and doom lands in one ordered stream.
FILE* TraceFile() {
  static FILE* f = [] {
    const char* p = std::getenv("NEOSI_SSI_TRACE");
    if (p == nullptr || *p == '\0') return static_cast<FILE*>(nullptr);
    if (std::strcmp(p, "stderr") == 0) return stderr;
    return std::fopen(p, "w");
  }();
  return f;
}

std::mutex& TraceMu() {
  static std::mutex mu;
  return mu;
}

#define NEOSI_SSI_TRACE(...)                          \
  do {                                                \
    if (FILE* trace_f_ = TraceFile()) {               \
      std::lock_guard<std::mutex> trace_g_(TraceMu());\
      std::fprintf(trace_f_, __VA_ARGS__);            \
      std::fputc('\n', trace_f_);                     \
      std::fflush(trace_f_);                          \
    }                                                 \
  } while (0)

/// Out-neighbour view for the danger predicate: committed-or-committing
/// plus the commit timestamp when known (kNoTimestamp = committing, i.e.
/// unknown — treated as "could be first", the conservative direction).
struct OutView {
  bool done = false;
  Timestamp ts = kNoTimestamp;
};

OutView ViewOut(const SsiTxnInfo::OutEdge& e) {
  OutView v;
  if (e.peer == nullptr) {
    v.done = true;
    v.ts = e.anon_commit_ts;
    return v;
  }
  const SsiTxnState s = e.peer->state.load(std::memory_order_acquire);
  if (s == SsiTxnState::kCommitted || s == SsiTxnState::kCommitting) {
    v.done = true;
    v.ts = e.peer->commit_ts.load(std::memory_order_acquire);
  }
  return v;
}

}  // namespace

SsiTracker::SsiTracker(size_t shard_count)
    : shard_count_(std::max<size_t>(1, shard_count)),
      shards_(shard_count_) {}

uint64_t SsiTracker::Mix(uint64_t x) {
  // Splitmix finalizer (matches the EntityKey hash's diffusion).
  x *= 0x9E3779B97F4A7C15ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  return x;
}

SsiTracker::Shard& SsiTracker::ShardForEntity(const EntityKey& key) {
  return shards_[std::hash<EntityKey>{}(key) % shard_count_];
}

SsiTracker::Shard& SsiTracker::ShardForKey(uint64_t key) {
  return shards_[Mix(key) % shard_count_];
}

// ---------------------------------------------------------------------------
// Registration / lifecycle
// ---------------------------------------------------------------------------

std::shared_ptr<SsiTxnInfo> SsiTracker::Register(TxnId id, bool read_only) {
  auto info = std::make_shared<SsiTxnInfo>();
  info->id = id;
  info->read_only = read_only;
  tracked_txns_.fetch_add(1, std::memory_order_relaxed);
  if (!read_only) active_rw_.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> guard(registry_mu_);
  registry_[id] = info;
  // start_ts is still 0 ("older than everything"), which holds the
  // retention horizon down until SetStartTs.
  min_active_start_.store(kNoTimestamp, std::memory_order_release);
  return info;
}

void SsiTracker::SetStartTs(const std::shared_ptr<SsiTxnInfo>& info,
                            Timestamp start_ts) {
  info->start_ts.store(start_ts, std::memory_order_release);
  NEOSI_SSI_TRACE("ST t=%llu ts=%llu", (unsigned long long)info->id,
                  (unsigned long long)start_ts);
  std::lock_guard<std::mutex> guard(registry_mu_);
  RecomputeRegistryLocked();
}

bool SsiTracker::IsSnapshotSafe(Timestamp snapshot_ts) const {
  // Read order matters and mirrors FinishCommit's write order: a finishing
  // read-write peer raises last_rw_commit_ and only then decrements
  // active_rw_, so observing zero active peers here happens-after every
  // finished peer's high-water update. A snapshot below the high-water
  // predates a read-write commit the oracle may not have published yet —
  // that peer is still concurrent with this snapshot and could be the
  // pivot of the read-only anomaly, so the snapshot is not safe.
  if (active_rw_.load(std::memory_order_acquire) != 0) return false;
  return snapshot_ts >= last_rw_commit_.load(std::memory_order_acquire);
}

bool SsiTracker::Prunable(const SsiTxnInfo& info) const {
  const SsiTxnState s = info.state.load(std::memory_order_acquire);
  if (s == SsiTxnState::kAborted) return true;
  if (s != SsiTxnState::kCommitted) return false;
  const Timestamp ts = info.commit_ts.load(std::memory_order_acquire);
  // Retention rule: a finished transaction's markers and edges matter while
  // ANY snapshot older than its commit can still read — either a tracked
  // unfinished transaction (min_active_start_) or a transaction yet to
  // begin (snapshot_floor_: the tracker finishes BEFORE the oracle
  // publishes, so until the floor catches up a newcomer can still acquire
  // a snapshot that predates this commit and needs its rw-edges).
  return ts != kNoTimestamp &&
         ts <= min_active_start_.load(std::memory_order_acquire) &&
         ts <= snapshot_floor_.load(std::memory_order_acquire);
}

void SsiTracker::AdvanceSnapshotFloor(Timestamp ts) {
  Timestamp cur = snapshot_floor_.load(std::memory_order_relaxed);
  while (cur < ts &&
         !snapshot_floor_.compare_exchange_weak(cur, ts,
                                                std::memory_order_release,
                                                std::memory_order_relaxed)) {
  }
}

void SsiTracker::RecomputeRegistryLocked() {
  Timestamp min_start = kMaxTimestamp;
  for (const auto& [id, info] : registry_) {
    const SsiTxnState s = info->state.load(std::memory_order_acquire);
    if (s == SsiTxnState::kActive || s == SsiTxnState::kCommitting) {
      min_start = std::min(min_start,
                           info->start_ts.load(std::memory_order_acquire));
    }
  }
  min_active_start_.store(min_start, std::memory_order_release);
  for (auto it = registry_.begin(); it != registry_.end();) {
    if (Prunable(*it->second)) {
      // Break the shared_ptr cycle (R.out_ holds W while W.in_ holds R) so
      // the records actually free once the lazy marker pruning lets go.
      {
        std::lock_guard<std::mutex> info_guard(it->second->mu);
        it->second->in_.clear();
        it->second->out_.clear();
      }
      NEOSI_SSI_TRACE("PRUNE t=%llu", (unsigned long long)it->second->id);
      it = registry_.erase(it);
    } else {
      ++it;
    }
  }
}

void SsiTracker::NoteFinished(const std::shared_ptr<SsiTxnInfo>& info) {
  if (!info->read_only) active_rw_.fetch_sub(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> guard(registry_mu_);
  RecomputeRegistryLocked();
}

void SsiTracker::FinishCommit(const std::shared_ptr<SsiTxnInfo>& self,
                              Timestamp ts) {
  // Timestamp before state: an observer that sees kCommitted always reads a
  // valid commit_ts; kCommitting observers treat the timestamp as unknown.
  self->commit_ts.store(ts, std::memory_order_release);
  self->state.store(SsiTxnState::kCommitted, std::memory_order_release);
  if (!self->read_only) {
    // Raise the read-write commit high-water BEFORE NoteFinished drops
    // active_rw_: IsSnapshotSafe reads the counter first, so a probe that
    // sees this transaction uncounted is guaranteed to see its commit
    // timestamp and reject snapshots that predate it.
    Timestamp cur = last_rw_commit_.load(std::memory_order_relaxed);
    while (cur < ts &&
           !last_rw_commit_.compare_exchange_weak(cur, ts,
                                                  std::memory_order_release,
                                                  std::memory_order_relaxed)) {
    }
  }
  NEOSI_SSI_TRACE("FC t=%llu ts=%llu", (unsigned long long)self->id,
                  (unsigned long long)ts);
  NoteFinished(self);
}

void SsiTracker::Abort(const std::shared_ptr<SsiTxnInfo>& self) {
  SsiTxnState expected = self->state.load(std::memory_order_acquire);
  do {
    if (expected == SsiTxnState::kAborted ||
        expected == SsiTxnState::kCommitted) {
      return;  // Idempotent; a committed transaction cannot abort.
    }
  } while (!self->state.compare_exchange_weak(expected, SsiTxnState::kAborted,
                                              std::memory_order_acq_rel));
  NEOSI_SSI_TRACE("AB t=%llu", (unsigned long long)self->id);
  NoteFinished(self);
}

Status SsiTracker::FailIfDoomed(const std::shared_ptr<SsiTxnInfo>& self) {
  if (!self->doomed.load(std::memory_order_acquire)) return Status::OK();
  aborts_doomed_.fetch_add(1, std::memory_order_relaxed);
  return Status::SerializationFailure(
      "serializable transaction doomed by a committing peer (pivot of a "
      "dangerous rw-antidependency structure); retry the transaction");
}

// ---------------------------------------------------------------------------
// Markers
// ---------------------------------------------------------------------------

void SsiTracker::InsertMarkerLocked(MarkerList* list,
                                    const std::shared_ptr<SsiTxnInfo>& reader) {
  list->erase(std::remove_if(list->begin(), list->end(),
                             [&](const std::shared_ptr<SsiTxnInfo>& m) {
                               return Prunable(*m);
                             }),
              list->end());
  for (const auto& m : *list) {
    if (m == reader) return;
  }
  list->push_back(reader);
}

void SsiTracker::AddEntityRead(const std::shared_ptr<SsiTxnInfo>& self,
                               const EntityKey& key) {
  Shard& shard = ShardForEntity(key);
  {
    std::lock_guard<std::mutex> guard(shard.mu);
    InsertMarkerLocked(&shard.entities[key], self);
  }
  NEOSI_SSI_TRACE("M t=%llu k=%llu", (unsigned long long)self->id,
                  (unsigned long long)key.id);
}

void SsiTracker::AddLabelRead(const std::shared_ptr<SsiTxnInfo>& self,
                              LabelId label) {
  Shard& shard = ShardForKey(label);
  std::lock_guard<std::mutex> guard(shard.mu);
  InsertMarkerLocked(&shard.labels[label], self);
}

void SsiTracker::AddAdjacencyRead(const std::shared_ptr<SsiTxnInfo>& self,
                                  NodeId node) {
  Shard& shard = ShardForKey(node);
  std::lock_guard<std::mutex> guard(shard.mu);
  InsertMarkerLocked(&shard.adjacency[node], self);
}

void SsiTracker::AddAllNodesRead(const std::shared_ptr<SsiTxnInfo>& self) {
  std::lock_guard<std::mutex> guard(all_nodes_mu_);
  InsertMarkerLocked(&all_nodes_, self);
}

void SsiTracker::AddPropertyRead(const std::shared_ptr<SsiTxnInfo>& self,
                                 bool node_index, PropertyKeyId key,
                                 const std::optional<PropertyValue>& lo,
                                 const std::optional<PropertyValue>& hi) {
  Shard& shard = ShardForKey(key);
  std::lock_guard<std::mutex> guard(shard.mu);
  auto& ranges = node_index ? shard.node_props[key] : shard.rel_props[key];
  ranges.erase(std::remove_if(ranges.begin(), ranges.end(),
                              [&](const RangeMarker& m) {
                                return Prunable(*m.reader);
                              }),
               ranges.end());
  for (const RangeMarker& m : ranges) {
    if (m.reader == self && m.lo == lo && m.hi == hi) return;
  }
  ranges.push_back(RangeMarker{lo, hi, self});
}

std::vector<std::shared_ptr<SsiTxnInfo>> SsiTracker::CollectReaders(
    const SsiWriteFootprint& fp) {
  std::vector<std::shared_ptr<SsiTxnInfo>> out;
  auto harvest = [&](MarkerList* list) {
    list->erase(std::remove_if(list->begin(), list->end(),
                               [&](const std::shared_ptr<SsiTxnInfo>& m) {
                                 return Prunable(*m);
                               }),
                list->end());
    out.insert(out.end(), list->begin(), list->end());
  };
  switch (fp.kind) {
    case SsiWriteFootprint::Kind::kEntity: {
      Shard& shard = ShardForEntity(fp.entity);
      std::lock_guard<std::mutex> guard(shard.mu);
      auto it = shard.entities.find(fp.entity);
      if (it != shard.entities.end()) harvest(&it->second);
      break;
    }
    case SsiWriteFootprint::Kind::kLabel: {
      Shard& shard = ShardForKey(fp.label);
      std::lock_guard<std::mutex> guard(shard.mu);
      auto it = shard.labels.find(fp.label);
      if (it != shard.labels.end()) harvest(&it->second);
      break;
    }
    case SsiWriteFootprint::Kind::kAdjacency: {
      Shard& shard = ShardForKey(fp.node);
      std::lock_guard<std::mutex> guard(shard.mu);
      auto it = shard.adjacency.find(fp.node);
      if (it != shard.adjacency.end()) harvest(&it->second);
      break;
    }
    case SsiWriteFootprint::Kind::kAllNodes: {
      std::lock_guard<std::mutex> guard(all_nodes_mu_);
      harvest(&all_nodes_);
      break;
    }
    case SsiWriteFootprint::Kind::kNodeProperty:
    case SsiWriteFootprint::Kind::kRelProperty: {
      const bool node_index =
          fp.kind == SsiWriteFootprint::Kind::kNodeProperty;
      Shard& shard = ShardForKey(fp.prop_key);
      std::lock_guard<std::mutex> guard(shard.mu);
      auto& map = node_index ? shard.node_props : shard.rel_props;
      auto it = map.find(fp.prop_key);
      if (it == map.end()) break;
      auto& ranges = it->second;
      ranges.erase(std::remove_if(ranges.begin(), ranges.end(),
                                  [&](const RangeMarker& m) {
                                    return Prunable(*m.reader);
                                  }),
                   ranges.end());
      for (const RangeMarker& m : ranges) {
        if (m.lo.has_value() && fp.value < *m.lo) continue;
        if (m.hi.has_value() && *m.hi < fp.value) continue;
        out.push_back(m.reader);
      }
      break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Edges & danger evaluation
// ---------------------------------------------------------------------------

void SsiTracker::LinkEdge(const std::shared_ptr<SsiTxnInfo>& reader,
                          const std::shared_ptr<SsiTxnInfo>& writer) {
  if (reader == writer) return;
  SsiTxnInfo* first = reader.get();
  SsiTxnInfo* second = writer.get();
  if (second->id < first->id) std::swap(first, second);
  std::lock_guard<std::mutex> g1(first->mu);
  std::lock_guard<std::mutex> g2(second->mu);
  for (const SsiTxnInfo::OutEdge& e : reader->out_) {
    if (e.peer == writer) return;  // Already recorded.
  }
  reader->out_.push_back(SsiTxnInfo::OutEdge{writer, kNoTimestamp});
  writer->in_.push_back(reader);
  NEOSI_SSI_TRACE("E r=%llu w=%llu", (unsigned long long)reader->id,
                  (unsigned long long)writer->id);
}

bool SsiTracker::DangerousPivot(const SsiTxnInfo& p) {
  const SsiTxnState p_state = p.state.load(std::memory_order_acquire);
  const Timestamp p_ts = p.commit_ts.load(std::memory_order_acquire);
  for (const SsiTxnInfo::OutEdge& e : p.out_) {
    const OutView o = ViewOut(e);
    if (!o.done) continue;  // O unfinished: it did not commit first.
    if (p_state == SsiTxnState::kCommitted && o.ts != kNoTimestamp &&
        p_ts != kNoTimestamp && o.ts > p_ts) {
      continue;  // p committed before this out-neighbour: not dangerous.
    }
    for (const std::shared_ptr<SsiTxnInfo>& in : p.in_) {
      const SsiTxnState i_state = in->state.load(std::memory_order_acquire);
      if (i_state == SsiTxnState::kAborted) continue;
      if (i_state != SsiTxnState::kCommitted) return true;  // I unfinished.
      const Timestamp i_ts = in->commit_ts.load(std::memory_order_acquire);
      // I committed: dangerous when O's commit is not strictly after I's
      // (O first — or its timestamp is unknown, the conservative case).
      if (o.ts == kNoTimestamp || i_ts >= o.ts) return true;
    }
  }
  return false;
}

size_t SsiTracker::DoomActiveInPeers(const std::shared_ptr<SsiTxnInfo>& p) {
  std::vector<std::shared_ptr<SsiTxnInfo>> victims;
  {
    std::lock_guard<std::mutex> guard(p->mu);
    victims = p->in_;
  }
  size_t doomed = 0;
  for (const auto& v : victims) {
    if (v->state.load(std::memory_order_acquire) == SsiTxnState::kActive) {
      v->doomed.store(true, std::memory_order_release);
      ++doomed;
    }
  }
  return doomed;
}

Status SsiTracker::OnReadObservedCommit(
    const std::shared_ptr<SsiTxnInfo>& self, TxnId writer,
    Timestamp writer_commit_ts) {
  std::shared_ptr<SsiTxnInfo> peer;
  if (writer != kNoTxn && writer != self->id) {
    std::lock_guard<std::mutex> guard(registry_mu_);
    auto it = registry_.find(writer);
    if (it != registry_.end()) peer = it->second;
  }
  if (peer) {
    LinkEdge(self, peer);
  } else {
    std::lock_guard<std::mutex> guard(self->mu);
    bool known = false;
    for (const SsiTxnInfo::OutEdge& e : self->out_) {
      if (e.peer == nullptr && e.anon_commit_ts == writer_commit_ts) {
        known = true;
        break;
      }
    }
    if (!known) {
      self->out_.push_back(SsiTxnInfo::OutEdge{nullptr, writer_commit_ts});
    }
  }
  NEOSI_SSI_TRACE("RO t=%llu w=%llu ts=%llu peer=%d",
                  (unsigned long long)self->id, (unsigned long long)writer,
                  (unsigned long long)writer_commit_ts, peer ? 1 : 0);

  // Self as pivot: the new out-edge is committed, so any unfinished (or
  // late-committed) in-neighbour completes the dangerous structure.
  {
    std::lock_guard<std::mutex> guard(self->mu);
    if (DangerousPivot(*self)) {
      aborts_pivot_.fetch_add(1, std::memory_order_relaxed);
      NEOSI_SSI_TRACE("ROKILL t=%llu self-pivot",
                      (unsigned long long)self->id);
      return Status::SerializationFailure(
          "serializable read observed a conflicting commit that makes this "
          "transaction the pivot of a dangerous structure; retry");
    }
  }
  // Committed-pivot rule: the writer already committed; if IT pivots a
  // dangerous structure (an out-neighbour committed first), the only
  // participant left to abort is self — the reader that just discovered
  // the structure (this is how the read-only anomaly's detector dies).
  if (peer &&
      peer->state.load(std::memory_order_acquire) == SsiTxnState::kCommitted) {
    std::lock_guard<std::mutex> guard(peer->mu);
    if (DangerousPivot(*peer)) {
      aborts_pivot_.fetch_add(1, std::memory_order_relaxed);
      NEOSI_SSI_TRACE("ROKILL t=%llu committed-pivot w=%llu",
                      (unsigned long long)self->id,
                      (unsigned long long)writer);
      return Status::SerializationFailure(
          "serializable read observed the committed pivot of a dangerous "
          "structure; retry");
    }
  }
  return Status::OK();
}

Status SsiTracker::OnWrite(const std::shared_ptr<SsiTxnInfo>& self,
                           const SsiWriteFootprint& fp) {
  for (const auto& reader : CollectReaders(fp)) {
    if (reader == self) continue;
    LinkEdge(reader, self);
  }
  std::lock_guard<std::mutex> guard(self->mu);
  if (DangerousPivot(*self)) {
    aborts_pivot_.fetch_add(1, std::memory_order_relaxed);
    return Status::SerializationFailure(
        "serializable write overlaps a concurrent reader's SIREAD marker "
        "and makes this transaction the pivot of a dangerous structure; "
        "retry");
  }
  return Status::OK();
}

void SsiTracker::OnPostStamp(const std::shared_ptr<SsiTxnInfo>& self,
                             const std::vector<SsiWriteFootprint>& footprints) {
  for (const SsiWriteFootprint& fp : footprints) {
    for (const auto& reader : CollectReaders(fp)) {
      if (reader == self) continue;
      LinkEdge(reader, self);
      const SsiTxnState r_state =
          reader->state.load(std::memory_order_acquire);
      if (r_state == SsiTxnState::kActive ||
          r_state == SsiTxnState::kCommitting) {
        // The new edge may complete a dangerous structure in either
        // direction. Reader as pivot: reader --rw--> self plus any in-edge
        // of the reader. Self as pivot: reader --rw--> self --rw--> O with
        // O committed before self — self is already committed, so the
        // reader (the in-side, still abortable) is the participant that
        // must die; without this rule a reader that walked our chains
        // inside the unstamped window and only later acquires its own
        // out-edges closes an undetectable cycle.
        bool self_pivots;
        {
          std::lock_guard<std::mutex> guard(self->mu);
          self_pivots = DangerousPivot(*self);
        }
        std::lock_guard<std::mutex> guard(reader->mu);
        if (self_pivots || DangerousPivot(*reader)) {
          reader->doomed.store(true, std::memory_order_release);
          NEOSI_SSI_TRACE("PSDOOM t=%llu r=%llu selfpiv=%d",
                          (unsigned long long)self->id,
                          (unsigned long long)reader->id, self_pivots ? 1 : 0);
        }
      } else if (r_state == SsiTxnState::kCommitted) {
        // The reader committed between its chain walk and this rescan and
        // now pivots with self as its (already committed) out-neighbour:
        // the participants left to kill are the reader's own unfinished
        // in-neighbours.
        bool dangerous;
        {
          std::lock_guard<std::mutex> guard(reader->mu);
          dangerous = DangerousPivot(*reader);
        }
        if (dangerous) {
          const size_t n = DoomActiveInPeers(reader);
          NEOSI_SSI_TRACE("PSDOOMIN t=%llu r=%llu n=%zu",
                          (unsigned long long)self->id,
                          (unsigned long long)reader->id, n);
        }
      }
    }
  }
}

Status SsiTracker::PreCommitCheck(
    const std::shared_ptr<SsiTxnInfo>& self,
    const std::vector<SsiWriteFootprint>& footprints,
    std::unique_lock<std::mutex>* commit_guard) {
  *commit_guard = std::unique_lock<std::mutex>(commit_mu_);
  NEOSI_SSI_TRACE("PCC t=%llu enter", (unsigned long long)self->id);
  // Marker rescan: a reader may have inserted its marker (and even
  // committed) since the write-time OnWrite scans; its edge must exist
  // before the pivot evaluation below or self commits over a dangerous
  // structure nobody can abort any more.
  for (const SsiWriteFootprint& fp : footprints) {
    for (const auto& reader : CollectReaders(fp)) {
      if (reader == self) continue;
      LinkEdge(reader, self);
    }
  }
  if (self->doomed.load(std::memory_order_acquire)) {
    NEOSI_SSI_TRACE("PCC t=%llu doomed", (unsigned long long)self->id);
  }
  NEOSI_RETURN_IF_ERROR(FailIfDoomed(self));
  {
    std::lock_guard<std::mutex> guard(self->mu);
    if (DangerousPivot(*self)) {
      aborts_pivot_.fetch_add(1, std::memory_order_relaxed);
      NEOSI_SSI_TRACE("PCC t=%llu pivot-abort", (unsigned long long)self->id);
      return Status::SerializationFailure(
          "serializable commit would complete a dangerous rw-antidependency "
          "structure with this transaction as the pivot; retry");
    }
  }
  // Self is about to become a committed out-neighbour. Any unfinished
  // in-neighbour that already has in-edges of its own turns into a pivot
  // whose out-neighbour (self) commits first — doom it now, while
  // commit_mu_ still serializes us against its own PreCommitCheck.
  std::vector<std::shared_ptr<SsiTxnInfo>> in_peers;
  {
    std::lock_guard<std::mutex> guard(self->mu);
    in_peers = self->in_;
  }
  for (const auto& p : in_peers) {
    if (p->state.load(std::memory_order_acquire) != SsiTxnState::kActive) {
      continue;
    }
    bool has_live_in = false;
    {
      std::lock_guard<std::mutex> guard(p->mu);
      for (const auto& in : p->in_) {
        if (in->state.load(std::memory_order_acquire) !=
            SsiTxnState::kAborted) {
          has_live_in = true;
          break;
        }
      }
    }
    if (has_live_in) {
      p->doomed.store(true, std::memory_order_release);
      NEOSI_SSI_TRACE("PCCDOOM t=%llu victim=%llu",
                      (unsigned long long)self->id, (unsigned long long)p->id);
    }
  }
  self->state.store(SsiTxnState::kCommitting, std::memory_order_release);
  NEOSI_SSI_TRACE("PCC t=%llu ok", (unsigned long long)self->id);
  return Status::OK();
}

SsiTrackerStats SsiTracker::Stats() const {
  SsiTrackerStats stats;
  stats.tracked_txns = tracked_txns_.load(std::memory_order_relaxed);
  stats.safe_snapshots = safe_snapshots_.load(std::memory_order_relaxed);
  stats.aborts_pivot = aborts_pivot_.load(std::memory_order_relaxed);
  stats.aborts_doomed = aborts_doomed_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace neosi
