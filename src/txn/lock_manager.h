// Entity lock manager.
//
// Stock Neo4j (the paper's baseline) implements read committed with SHORT
// shared read locks and LONG exclusive write locks. The paper's SI removes
// the read locks entirely and repurposes the long write locks to detect
// write-write conflicts (§4). This lock manager serves both modes:
//
//   * read committed   : AcquireShared around each read (released right
//                        after), AcquireExclusive held to commit.
//   * snapshot isolation: AcquireExclusive only, with wait or no-wait
//                        behaviour per the configured ConflictPolicy.
//
// Deadlocks among waiters are prevented with wait-die (older transactions
// wait, younger ones abort with Status::Deadlock), plus a timeout backstop.

#ifndef NEOSI_TXN_LOCK_MANAGER_H_
#define NEOSI_TXN_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace neosi {

/// Counters exposed for tests and experiment E4.
struct LockManagerStats {
  uint64_t shared_acquired = 0;
  uint64_t exclusive_acquired = 0;
  uint64_t waits = 0;            ///< Acquisitions that had to block.
  uint64_t nowait_conflicts = 0; ///< Immediate aborts (first-updater no-wait).
  uint64_t wait_die_aborts = 0;  ///< Younger waiter killed by wait-die.
  uint64_t timeouts = 0;         ///< Timeout backstop fired.
};

/// Sharded table of per-entity reader/writer locks.
class LockManager {
 public:
  explicit LockManager(uint64_t timeout_ms = 10000);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Shared (read) lock; blocks while another transaction holds the
  /// exclusive lock. Reentrant. Wait-die applies while blocked.
  Status AcquireShared(TxnId txn, const EntityKey& key);

  /// Exclusive (write) lock. Reentrant; upgrades a sole shared holding.
  /// With wait=false, returns Status::Aborted immediately when any other
  /// transaction holds the lock (first-updater-wins no-wait). With
  /// wait=true, blocks under wait-die until available.
  Status AcquireExclusive(TxnId txn, const EntityKey& key, bool wait);

  /// Releases one lock held by txn on key (short read locks).
  void Release(TxnId txn, const EntityKey& key);

  /// Releases everything txn holds (commit/abort).
  void ReleaseAll(TxnId txn);

  /// The transaction currently holding key exclusively (kNoTxn if none).
  TxnId ExclusiveHolder(const EntityKey& key) const;

  LockManagerStats Stats() const;

 private:
  struct LockState {
    TxnId exclusive = kNoTxn;
    uint32_t exclusive_count = 0;  // Reentrancy depth.
    std::unordered_map<TxnId, uint32_t> shared;  // Holder -> depth.

    bool Free() const { return exclusive == kNoTxn && shared.empty(); }
    bool OnlySharedHolderIs(TxnId txn) const {
      return exclusive == kNoTxn && shared.size() == 1 &&
             shared.begin()->first == txn;
    }
  };

  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<EntityKey, LockState> locks;
    // Keys held per transaction, for ReleaseAll.
    std::unordered_map<TxnId, std::unordered_map<EntityKey, uint32_t>> held;
  };

  static constexpr size_t kShardCount = 64;

  Shard& ShardFor(const EntityKey& key) const {
    return shards_[std::hash<EntityKey>{}(key) % kShardCount];
  }

  /// True when `txn` must die instead of waiting (some conflicting holder is
  /// older, i.e. has a smaller txn id).
  static bool MustDie(TxnId txn, const LockState& state);

  mutable std::vector<Shard> shards_;
  const uint64_t timeout_ms_;

  mutable std::mutex stats_mu_;
  LockManagerStats stats_;
};

}  // namespace neosi

#endif  // NEOSI_TXN_LOCK_MANAGER_H_
