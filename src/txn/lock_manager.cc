#include "txn/lock_manager.h"

#include <chrono>

namespace neosi {

LockManager::LockManager(uint64_t timeout_ms)
    : shards_(kShardCount), timeout_ms_(timeout_ms) {}

bool LockManager::MustDie(TxnId txn, const LockState& state) {
  // Wait-die: a requester may only wait for YOUNGER holders (larger ids).
  // If any conflicting holder is older, the requester dies.
  if (state.exclusive != kNoTxn && state.exclusive < txn) return true;
  for (const auto& [holder, depth] : state.shared) {
    if (holder != txn && holder < txn) return true;
  }
  return false;
}

Status LockManager::AcquireShared(TxnId txn, const EntityKey& key) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms_);
  bool waited = false;
  for (;;) {
    LockState& state = shard.locks[key];
    if (state.exclusive == kNoTxn || state.exclusive == txn) {
      ++state.shared[txn];
      ++shard.held[txn][key];
      std::lock_guard<std::mutex> sg(stats_mu_);
      ++stats_.shared_acquired;
      if (waited) ++stats_.waits;
      return Status::OK();
    }
    if (state.exclusive < txn) {
      std::lock_guard<std::mutex> sg(stats_mu_);
      ++stats_.wait_die_aborts;
      return Status::Deadlock("wait-die: shared lock on " + key.ToString() +
                              " held by older txn " +
                              std::to_string(state.exclusive));
    }
    waited = true;
    if (shard.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      std::lock_guard<std::mutex> sg(stats_mu_);
      ++stats_.timeouts;
      return Status::Deadlock("lock timeout (shared) on " + key.ToString());
    }
  }
}

Status LockManager::AcquireExclusive(TxnId txn, const EntityKey& key,
                                     bool wait) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms_);
  bool waited = false;
  for (;;) {
    LockState& state = shard.locks[key];
    const bool reentrant = state.exclusive == txn;
    const bool free_for_txn =
        state.Free() || reentrant || state.OnlySharedHolderIs(txn);
    if (free_for_txn) {
      if (!reentrant && state.OnlySharedHolderIs(txn)) {
        // Upgrade: drop the shared holding, keep bookkeeping depth.
        state.shared.clear();
      }
      state.exclusive = txn;
      ++state.exclusive_count;
      ++shard.held[txn][key];
      std::lock_guard<std::mutex> sg(stats_mu_);
      ++stats_.exclusive_acquired;
      if (waited) ++stats_.waits;
      return Status::OK();
    }

    if (!wait) {
      std::lock_guard<std::mutex> sg(stats_mu_);
      ++stats_.nowait_conflicts;
      return Status::Aborted("write-write conflict on " + key.ToString() +
                             " (first-updater-wins, no-wait)");
    }
    if (MustDie(txn, state)) {
      std::lock_guard<std::mutex> sg(stats_mu_);
      ++stats_.wait_die_aborts;
      return Status::Deadlock("wait-die: exclusive lock on " +
                              key.ToString() + " held by older txn");
    }
    waited = true;
    if (shard.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      std::lock_guard<std::mutex> sg(stats_mu_);
      ++stats_.timeouts;
      return Status::Deadlock("lock timeout (exclusive) on " +
                              key.ToString());
    }
  }
}

void LockManager::Release(TxnId txn, const EntityKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.locks.find(key);
  if (it == shard.locks.end()) return;
  LockState& state = it->second;

  if (state.exclusive == txn) {
    if (--state.exclusive_count == 0) state.exclusive = kNoTxn;
  } else {
    auto sh = state.shared.find(txn);
    if (sh != state.shared.end() && --sh->second == 0) {
      state.shared.erase(sh);
    }
  }

  auto held_it = shard.held.find(txn);
  if (held_it != shard.held.end()) {
    auto key_it = held_it->second.find(key);
    if (key_it != held_it->second.end() && --key_it->second == 0) {
      held_it->second.erase(key_it);
      if (held_it->second.empty()) shard.held.erase(held_it);
    }
  }

  if (state.Free()) shard.locks.erase(it);
  shard.cv.notify_all();
}

void LockManager::ReleaseAll(TxnId txn) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto held_it = shard.held.find(txn);
    if (held_it == shard.held.end()) continue;
    for (const auto& [key, depth] : held_it->second) {
      auto it = shard.locks.find(key);
      if (it == shard.locks.end()) continue;
      LockState& state = it->second;
      if (state.exclusive == txn) {
        state.exclusive = kNoTxn;
        state.exclusive_count = 0;
      }
      state.shared.erase(txn);
      if (state.Free()) shard.locks.erase(it);
    }
    shard.held.erase(held_it);
    shard.cv.notify_all();
  }
}

TxnId LockManager::ExclusiveHolder(const EntityKey& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.locks.find(key);
  return it == shard.locks.end() ? kNoTxn : it->second.exclusive;
}

LockManagerStats LockManager::Stats() const {
  std::lock_guard<std::mutex> guard(stats_mu_);
  return stats_;
}

}  // namespace neosi
