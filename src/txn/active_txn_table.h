// Registry of in-flight transactions; provides the GC watermark (paper §3:
// versions older than what the oldest active transaction can read are
// garbage).

#ifndef NEOSI_TXN_ACTIVE_TXN_TABLE_H_
#define NEOSI_TXN_ACTIVE_TXN_TABLE_H_

#include <cstddef>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace neosi {

/// Thread-safe active-transaction table.
class ActiveTxnTable {
 public:
  void Register(TxnId txn, Timestamp start_ts);

  /// Obtains a start timestamp from `ts_source` and registers the
  /// transaction in one critical section. This closes the begin/GC race: a
  /// watermark computed under the same lock either includes this
  /// transaction or is guaranteed not to exceed its start timestamp.
  Timestamp RegisterAtomic(TxnId txn,
                           const std::function<Timestamp()>& ts_source);

  void Unregister(TxnId txn);

  /// The reclamation watermark: the minimum start timestamp among active
  /// transactions, or `fallback` (the oracle's current read timestamp) when
  /// none are active. Any version superseded at or before this timestamp can
  /// never be read again (paper §3's example: versions 40 and 56 are dead
  /// once the oldest active start timestamp is 100).
  Timestamp Watermark(Timestamp fallback) const;

  size_t ActiveCount() const;
  std::vector<TxnId> ActiveTxnIds() const;
  bool IsActive(TxnId txn) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<TxnId, Timestamp> active_;
};

}  // namespace neosi

#endif  // NEOSI_TXN_ACTIVE_TXN_TABLE_H_
