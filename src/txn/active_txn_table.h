// Registry of in-flight transactions; provides the GC watermark (paper §3:
// versions older than what the oldest active transaction can read are
// garbage).
//
// Sharded by transaction id: with the commit pipeline running commits in
// parallel, Begin()'s registration is the last per-transaction global touch
// point, so it must not funnel every thread through one mutex.

#ifndef NEOSI_TXN_ACTIVE_TXN_TABLE_H_
#define NEOSI_TXN_ACTIVE_TXN_TABLE_H_

#include <array>
#include <cstddef>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace neosi {

/// Thread-safe sharded active-transaction table.
class ActiveTxnTable {
 public:
  void Register(TxnId txn, Timestamp start_ts);

  /// Obtains a start timestamp from `ts_source` and registers the
  /// transaction in one critical section (on the transaction's shard). This
  /// closes the begin/GC race: Watermark() evaluates its fallback BEFORE
  /// scanning the shards, and the oracle's read timestamp is monotone, so a
  /// registration this scan misses must have read a start timestamp >= the
  /// fallback — the watermark never exceeds a missed snapshot's timestamp.
  Timestamp RegisterAtomic(TxnId txn,
                           const std::function<Timestamp()>& ts_source);

  void Unregister(TxnId txn);

  /// The reclamation watermark: the minimum start timestamp among active
  /// transactions, or `fallback` (the oracle's current read timestamp,
  /// which callers MUST evaluate before this call) when none are active.
  /// Any version superseded at or before this timestamp can never be read
  /// again (paper §3's example: versions 40 and 56 are dead once the oldest
  /// active start timestamp is 100).
  Timestamp Watermark(Timestamp fallback) const;

  size_t ActiveCount() const;
  std::vector<TxnId> ActiveTxnIds() const;
  bool IsActive(TxnId txn) const;

 private:
  static constexpr size_t kShards = 16;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<TxnId, Timestamp> active;
  };

  Shard& ShardFor(TxnId txn) { return shards_[txn % kShards]; }
  const Shard& ShardFor(TxnId txn) const { return shards_[txn % kShards]; }

  std::array<Shard, kShards> shards_;
};

}  // namespace neosi

#endif  // NEOSI_TXN_ACTIVE_TXN_TABLE_H_
