// Registry of in-flight transactions; provides the GC watermark (paper §3:
// versions older than what the oldest active transaction can read are
// garbage).
//
// Sharded by transaction id: with the commit pipeline running commits in
// parallel, Begin()'s registration is the last per-transaction global touch
// point, so it must not funnel every thread through one mutex.
//
// Snapshot lifecycle: each registration carries a wall-clock birth time and
// a shared expired flag. The GC daemon's expiry sweep (ExpireSnapshots)
// marks snapshots expired — by age (snapshot_max_age_ms) or under GC
// backlog pressure — and Watermark() then IGNORES expired registrations, so
// the reclamation watermark advances past a marked victim immediately. The
// victim's Transaction holds the same flag and fails its next read or
// commit with Status::SnapshotTooOld (checked before AND after each chain
// walk: a read that overlaps its own expiry can never return state the
// concurrent reclamation made inconsistent).
//
// Watermark pinning is OPT-IN per registration: read-committed
// transactions register with pins_watermark=false — they only ever read
// the LATEST committed version, which is never reclaimable, and their
// mid-walk memory safety comes from the epoch-based read path, not from
// holding reclamation back. Non-pinning registrations are invisible to
// both Watermark() and the expiry sweep (they can never be a
// SnapshotTooOld victim), but still count as active transactions.

#ifndef NEOSI_TXN_ACTIVE_TXN_TABLE_H_
#define NEOSI_TXN_ACTIVE_TXN_TABLE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace neosi {

/// What Begin() gets back from a registration: the snapshot timestamp and
/// the expiry flag shared with the table. The Transaction polls the flag
/// (one relaxed/acquire load) instead of taking a shard mutex per read.
struct SnapshotRegistration {
  Timestamp start_ts = kNoTimestamp;
  std::shared_ptr<const std::atomic<bool>> expired;
};

/// Outcome of one expiry sweep.
struct SnapshotExpiryOutcome {
  uint64_t expired_by_age = 0;
  uint64_t expired_by_backlog = 0;
};

/// Thread-safe sharded active-transaction table.
class ActiveTxnTable {
 public:
  /// `shards` sizes the shard array; 0 = AUTO
  /// (max(16, 2 * hardware_concurrency), capped at 64 — see
  /// DatabaseOptions::txn_table_shards).
  explicit ActiveTxnTable(size_t shards = 0);

  ActiveTxnTable(const ActiveTxnTable&) = delete;
  ActiveTxnTable& operator=(const ActiveTxnTable&) = delete;

  /// Grace period from registration before a snapshot is eligible for
  /// BACKLOG-pressure eviction (age-based expiry uses snapshot_max_age_ms
  /// alone): a fresh snapshot under a write burst is never the victim.
  static constexpr std::chrono::milliseconds kBacklogExpiryGrace{10};

  void Register(TxnId txn, Timestamp start_ts);

  /// Obtains a start timestamp from `ts_source` and registers the
  /// transaction in one critical section (on the transaction's shard). This
  /// closes the begin/GC race: Watermark() evaluates its fallback BEFORE
  /// scanning the shards, and the oracle's read timestamp is monotone, so a
  /// registration this scan misses must have read a start timestamp >= the
  /// fallback — the watermark never exceeds a missed snapshot's timestamp.
  ///
  /// `pins_watermark=false` (read-committed) registers an active
  /// transaction that neither holds Watermark() back nor participates in
  /// the expiry sweep.
  SnapshotRegistration RegisterAtomic(
      TxnId txn, const std::function<Timestamp()>& ts_source,
      bool pins_watermark = true);

  void Unregister(TxnId txn);

  /// The reclamation watermark: the minimum start timestamp among active,
  /// NON-EXPIRED transactions, or `fallback` (the oracle's current read
  /// timestamp, which callers MUST evaluate before this call) when none
  /// are active. Any version superseded at or before this timestamp can
  /// never be read again (paper §3's example: versions 40 and 56 are dead
  /// once the oldest active start timestamp is 100). An expired
  /// registration no longer holds the watermark back — that is the whole
  /// point of expiry: its transaction is doomed to SnapshotTooOld and must
  /// not be allowed to read reclaimed state anyway.
  Timestamp Watermark(Timestamp fallback) const;

  /// One expiry sweep (called by the GC daemon, never by transactions).
  /// Marks expired:
  ///  - every active transaction older than `max_age_ms` (0 = age expiry
  ///    disabled), and
  ///  - when `backlog_pressure` is set, the oldest-start-ts cohort of
  ///    active transactions older than kBacklogExpiryGrace (the snapshots
  ///    actually pinning the watermark).
  /// Idempotent per victim; per-cause totals accumulate in the stats
  /// counters below.
  SnapshotExpiryOutcome ExpireSnapshots(uint64_t max_age_ms,
                                        bool backlog_pressure);

  /// Replication-conflict expiry (the standby-query-conflict path): marks
  /// every watermark-pinning registration with start_ts < `ts` expired, so
  /// a replica applier can replay a shipped purge that would otherwise wait
  /// on those snapshots forever. Victims fail their next read or commit
  /// with SnapshotTooOld. Returns the number newly marked; the total
  /// accumulates in snapshots_expired_replication().
  uint64_t ExpireSnapshotsBelow(Timestamp ts);

  size_t ActiveCount() const;
  size_t shard_count() const { return shards_.size(); }
  std::vector<TxnId> ActiveTxnIds() const;
  bool IsActive(TxnId txn) const;
  /// True if the transaction is registered AND marked expired (test hook).
  bool IsExpired(TxnId txn) const;

  /// Called by a Transaction when it turns an expiry mark into a
  /// SnapshotTooOld abort (per-cause observability in DatabaseStats).
  void NoteSnapshotTooOldAbort() {
    too_old_aborts_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Lifetime totals. Lock-free.
  uint64_t snapshots_expired_age() const {
    return expired_age_.load(std::memory_order_relaxed);
  }
  uint64_t snapshots_expired_backlog() const {
    return expired_backlog_.load(std::memory_order_relaxed);
  }
  uint64_t snapshots_expired_replication() const {
    return expired_replication_.load(std::memory_order_relaxed);
  }
  uint64_t snapshot_too_old_aborts() const {
    return too_old_aborts_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    Timestamp start_ts = kNoTimestamp;
    std::chrono::steady_clock::time_point registered_at;
    std::shared_ptr<std::atomic<bool>> expired;
    /// False for read-committed registrations: ignored by Watermark() and
    /// by the expiry sweep.
    bool pins_watermark = true;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<TxnId, Entry> active;
  };

  Shard& ShardFor(TxnId txn) { return *shards_[txn % shards_.size()]; }
  const Shard& ShardFor(TxnId txn) const {
    return *shards_[txn % shards_.size()];
  }

  /// unique_ptr indirection: Shard owns a mutex and cannot be moved into a
  /// runtime-sized vector directly.
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> expired_age_{0};
  std::atomic<uint64_t> expired_backlog_{0};
  std::atomic<uint64_t> expired_replication_{0};
  std::atomic<uint64_t> too_old_aborts_{0};
};

}  // namespace neosi

#endif  // NEOSI_TXN_ACTIVE_TXN_TABLE_H_
