#include "txn/active_txn_table.h"

#include <algorithm>

namespace neosi {

void ActiveTxnTable::Register(TxnId txn, Timestamp start_ts) {
  Shard& shard = ShardFor(txn);
  std::lock_guard<std::mutex> guard(shard.mu);
  shard.active[txn] = start_ts;
}

Timestamp ActiveTxnTable::RegisterAtomic(
    TxnId txn, const std::function<Timestamp()>& ts_source) {
  Shard& shard = ShardFor(txn);
  std::lock_guard<std::mutex> guard(shard.mu);
  const Timestamp start_ts = ts_source();
  shard.active[txn] = start_ts;
  return start_ts;
}

void ActiveTxnTable::Unregister(TxnId txn) {
  Shard& shard = ShardFor(txn);
  std::lock_guard<std::mutex> guard(shard.mu);
  shard.active.erase(txn);
}

Timestamp ActiveTxnTable::Watermark(Timestamp fallback) const {
  // Safety argument (per shard): a transaction registered when its shard is
  // scanned bounds min_ts directly. One that registers AFTER its shard was
  // scanned read its start timestamp from the (monotone) oracle after the
  // caller evaluated `fallback`, so its start_ts >= fallback — which is why
  // the result is clamped to fallback as well: a mid-scan registration in an
  // already-scanned shard may hold a start timestamp below the minimum of
  // the transactions the scan did see.
  Timestamp min_ts = kMaxTimestamp;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard.mu);
    for (const auto& [txn, start_ts] : shard.active) {
      min_ts = std::min(min_ts, start_ts);
    }
  }
  return std::min(min_ts, fallback);
}

size_t ActiveTxnTable::ActiveCount() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard.mu);
    n += shard.active.size();
  }
  return n;
}

std::vector<TxnId> ActiveTxnTable::ActiveTxnIds() const {
  std::vector<TxnId> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard.mu);
    for (const auto& [txn, start_ts] : shard.active) out.push_back(txn);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool ActiveTxnTable::IsActive(TxnId txn) const {
  const Shard& shard = ShardFor(txn);
  std::lock_guard<std::mutex> guard(shard.mu);
  return shard.active.count(txn) != 0;
}

}  // namespace neosi
