#include "txn/active_txn_table.h"

#include <algorithm>

namespace neosi {

void ActiveTxnTable::Register(TxnId txn, Timestamp start_ts) {
  std::lock_guard<std::mutex> guard(mu_);
  active_[txn] = start_ts;
}

Timestamp ActiveTxnTable::RegisterAtomic(
    TxnId txn, const std::function<Timestamp()>& ts_source) {
  std::lock_guard<std::mutex> guard(mu_);
  const Timestamp start_ts = ts_source();
  active_[txn] = start_ts;
  return start_ts;
}

void ActiveTxnTable::Unregister(TxnId txn) {
  std::lock_guard<std::mutex> guard(mu_);
  active_.erase(txn);
}

Timestamp ActiveTxnTable::Watermark(Timestamp fallback) const {
  std::lock_guard<std::mutex> guard(mu_);
  if (active_.empty()) return fallback;
  Timestamp min_ts = kMaxTimestamp;
  for (const auto& [txn, start_ts] : active_) {
    min_ts = std::min(min_ts, start_ts);
  }
  return min_ts;
}

size_t ActiveTxnTable::ActiveCount() const {
  std::lock_guard<std::mutex> guard(mu_);
  return active_.size();
}

std::vector<TxnId> ActiveTxnTable::ActiveTxnIds() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<TxnId> out;
  out.reserve(active_.size());
  for (const auto& [txn, start_ts] : active_) out.push_back(txn);
  std::sort(out.begin(), out.end());
  return out;
}

bool ActiveTxnTable::IsActive(TxnId txn) const {
  std::lock_guard<std::mutex> guard(mu_);
  return active_.count(txn) != 0;
}

}  // namespace neosi
