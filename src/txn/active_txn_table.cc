#include "txn/active_txn_table.h"

#include <algorithm>
#include <thread>

namespace neosi {

ActiveTxnTable::ActiveTxnTable(size_t shards) {
  if (shards == 0) {
    const size_t hw = std::thread::hardware_concurrency();
    shards = std::clamp<size_t>(2 * hw, 16, 64);
  }
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void ActiveTxnTable::Register(TxnId txn, Timestamp start_ts) {
  Shard& shard = ShardFor(txn);
  std::lock_guard<std::mutex> guard(shard.mu);
  Entry& entry = shard.active[txn];
  entry.start_ts = start_ts;
  entry.registered_at = std::chrono::steady_clock::now();
  entry.expired = std::make_shared<std::atomic<bool>>(false);
  entry.pins_watermark = true;
}

SnapshotRegistration ActiveTxnTable::RegisterAtomic(
    TxnId txn, const std::function<Timestamp()>& ts_source,
    bool pins_watermark) {
  Shard& shard = ShardFor(txn);
  std::lock_guard<std::mutex> guard(shard.mu);
  Entry& entry = shard.active[txn];
  entry.start_ts = ts_source();
  entry.registered_at = std::chrono::steady_clock::now();
  entry.expired = std::make_shared<std::atomic<bool>>(false);
  entry.pins_watermark = pins_watermark;
  return {entry.start_ts, entry.expired};
}

void ActiveTxnTable::Unregister(TxnId txn) {
  Shard& shard = ShardFor(txn);
  std::lock_guard<std::mutex> guard(shard.mu);
  shard.active.erase(txn);
}

Timestamp ActiveTxnTable::Watermark(Timestamp fallback) const {
  // Safety argument (per shard): a transaction registered when its shard is
  // scanned bounds min_ts directly. One that registers AFTER its shard was
  // scanned read its start timestamp from the (monotone) oracle after the
  // caller evaluated `fallback`, so its start_ts >= fallback — which is why
  // the result is clamped to fallback as well: a mid-scan registration in an
  // already-scanned shard may hold a start timestamp below the minimum of
  // the transactions the scan did see.
  //
  // Expired registrations are skipped: the expiry flag is set under the
  // shard mutex this scan also takes, so a scan either sees the mark (and
  // advances past the victim) or ran wholly before it (and the next scan
  // advances). Reclamation that follows an advanced watermark is ordered
  // after the mark — the victim's post-read expiry check therefore cannot
  // miss it (mutex + chain-latch release/acquire chain).
  // Non-pinning (read-committed) registrations are skipped outright: they
  // only read latest-committed versions, which reclamation never touches,
  // and epoch protection covers their mid-walk memory safety.
  Timestamp min_ts = kMaxTimestamp;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard->mu);
    for (const auto& [txn, entry] : shard->active) {
      if (!entry.pins_watermark) continue;
      if (entry.expired->load(std::memory_order_relaxed)) continue;
      min_ts = std::min(min_ts, entry.start_ts);
    }
  }
  return std::min(min_ts, fallback);
}

SnapshotExpiryOutcome ActiveTxnTable::ExpireSnapshots(uint64_t max_age_ms,
                                                      bool backlog_pressure) {
  SnapshotExpiryOutcome outcome;
  const auto now = std::chrono::steady_clock::now();

  // Pass 1 — age: any live PINNING snapshot past max_age_ms expires, full
  // stop. Non-pinning (read-committed) registrations hold nothing back and
  // are never SnapshotTooOld victims.
  if (max_age_ms > 0) {
    const auto max_age = std::chrono::milliseconds(max_age_ms);
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> guard(shard->mu);
      for (auto& [txn, entry] : shard->active) {
        if (!entry.pins_watermark) continue;
        if (entry.expired->load(std::memory_order_relaxed)) continue;
        if (now - entry.registered_at >= max_age) {
          entry.expired->store(true, std::memory_order_release);
          ++outcome.expired_by_age;
        }
      }
    }
  }

  // Pass 2 — backlog pressure: evict the oldest-start-ts cohort of
  // grace-aged snapshots (the ones actually pinning the watermark). Two
  // scans (find the minimum, then mark it); a registration racing in
  // between is younger than the grace period and cannot join the cohort,
  // so the mark scan hits exactly the pinners the find scan chose — and a
  // second sweep repairs any cohort the race split.
  if (backlog_pressure) {
    Timestamp victim_ts = kMaxTimestamp;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> guard(shard->mu);
      for (const auto& [txn, entry] : shard->active) {
        if (!entry.pins_watermark) continue;
        if (entry.expired->load(std::memory_order_relaxed)) continue;
        if (now - entry.registered_at < kBacklogExpiryGrace) continue;
        victim_ts = std::min(victim_ts, entry.start_ts);
      }
    }
    if (victim_ts != kMaxTimestamp) {
      for (auto& shard : shards_) {
        std::lock_guard<std::mutex> guard(shard->mu);
        for (auto& [txn, entry] : shard->active) {
          if (!entry.pins_watermark) continue;
          if (entry.start_ts != victim_ts) continue;
          if (entry.expired->load(std::memory_order_relaxed)) continue;
          if (now - entry.registered_at < kBacklogExpiryGrace) continue;
          entry.expired->store(true, std::memory_order_release);
          ++outcome.expired_by_backlog;
        }
      }
    }
  }

  expired_age_.fetch_add(outcome.expired_by_age, std::memory_order_relaxed);
  expired_backlog_.fetch_add(outcome.expired_by_backlog,
                             std::memory_order_relaxed);
  return outcome;
}

uint64_t ActiveTxnTable::ExpireSnapshotsBelow(Timestamp ts) {
  uint64_t marked = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard->mu);
    for (auto& [txn, entry] : shard->active) {
      if (!entry.pins_watermark) continue;
      if (entry.start_ts >= ts) continue;
      if (entry.expired->load(std::memory_order_relaxed)) continue;
      entry.expired->store(true, std::memory_order_release);
      ++marked;
    }
  }
  expired_replication_.fetch_add(marked, std::memory_order_relaxed);
  return marked;
}

size_t ActiveTxnTable::ActiveCount() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard->mu);
    n += shard->active.size();
  }
  return n;
}

std::vector<TxnId> ActiveTxnTable::ActiveTxnIds() const {
  std::vector<TxnId> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard->mu);
    for (const auto& [txn, entry] : shard->active) out.push_back(txn);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool ActiveTxnTable::IsActive(TxnId txn) const {
  const Shard& shard = ShardFor(txn);
  std::lock_guard<std::mutex> guard(shard.mu);
  return shard.active.count(txn) != 0;
}

bool ActiveTxnTable::IsExpired(TxnId txn) const {
  const Shard& shard = ShardFor(txn);
  std::lock_guard<std::mutex> guard(shard.mu);
  auto it = shard.active.find(txn);
  return it != shard.active.end() &&
         it->second.expired->load(std::memory_order_acquire);
}

}  // namespace neosi
