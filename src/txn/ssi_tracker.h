// Serializable-snapshot-isolation conflict tracker (SSI; Cahill et al.,
// refined by PostgreSQL's predicate.c).
//
// Snapshot isolation admits exactly the histories whose direct
// serialization graph has a cycle through two consecutive rw-antidependency
// edges: I --rw--> P --rw--> O where the three are pairwise concurrent and O
// commits first (the "dangerous structure"; P is the pivot). SSI therefore
// leaves SIREAD markers behind every snapshot read a kSerializable
// transaction performs — on entities for point reads, on label / property
// ranges / adjacency keys for index and traversal scans — and records an
// rw-antidependency edge whenever
//
//   * a writer's footprint overlaps an existing marker (write-time
//     detection: the reader read before this write), or
//   * a reader's chain walk or index scan observes a version committed
//     after its snapshot (read-time detection: the writer committed before
//     this read; the markers could not have caught it).
//
// A transaction found to be the pivot of a dangerous structure aborts with
// Status::SerializationFailure; when the pivot has already committed, the
// still-active participant is aborted instead (doomed flag, or the reader
// that discovered the committed pivot fails immediately).
//
// Markers and transaction records outlive their transaction's commit — the
// read-only-anomaly history is only caught because a committed reader's
// marker dooms a later writer — and become prunable once no concurrent
// serializable transaction remains (commit_ts <= oldest tracked active
// start_ts, the same retention rule PostgreSQL uses for SIREAD locks).
//
// Marker tables are sharded like the 64-way LockManager. Lock hierarchy:
// commit_mu_ > shard/registry mutex > SsiTxnInfo::mu (two infos always in
// ascending txn-id order). State fields read during danger evaluation
// (state, commit_ts, doomed) are atomics, so peers are inspected without
// taking their mutexes.
//
// Cross-isolation caveat (the PostgreSQL stance): serializability is
// guaranteed among kSerializable transactions only. Writes committed by
// kSnapshotIsolation / kReadCommitted transactions still appear to
// serializable readers as anonymous conflicts-out, but such writers scan no
// markers themselves.

#ifndef NEOSI_TXN_SSI_TRACKER_H_
#define NEOSI_TXN_SSI_TRACKER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/property_value.h"
#include "common/status.h"
#include "common/types.h"

namespace neosi {

/// Lifecycle of a tracked serializable transaction. kCommitting (between the
/// pre-commit danger check and the commit-timestamp publication) is treated
/// as committed-with-unknown-timestamp by every danger evaluation — the
/// conservative direction.
enum class SsiTxnState : uint8_t {
  kActive = 0,
  kCommitting = 1,
  kCommitted = 2,
  kAborted = 3,
};

/// Per-transaction SSI record. Outlives the Transaction handle (markers and
/// edges must survive commit); owned by shared_ptr from the registry, the
/// marker tables and peer edge lists.
struct SsiTxnInfo {
  TxnId id = kNoTxn;
  /// Snapshot timestamp; 0 until SetStartTs (the Begin() window between
  /// tracker registration and snapshot acquisition), which pruning treats
  /// as "older than everything" — the conservative direction.
  std::atomic<Timestamp> start_ts{kNoTimestamp};
  std::atomic<Timestamp> commit_ts{kNoTimestamp};
  std::atomic<SsiTxnState> state{SsiTxnState::kActive};
  /// Set by a committing peer whose dangerous structure this transaction
  /// pivots; the victim fails its next operation or commit.
  std::atomic<bool> doomed{false};
  bool read_only = false;

  /// One rw-antidependency out-edge (this transaction read a version the
  /// peer overwrote). `peer` is null for writers outside the tracker
  /// (SI/RC transactions, or serializable writers already pruned); their
  /// commit timestamp is all a danger check needs from an out-neighbour.
  struct OutEdge {
    std::shared_ptr<SsiTxnInfo> peer;
    Timestamp anon_commit_ts = kNoTimestamp;
  };

  /// Guards in_ / out_ only; all other fields are atomics or set-once.
  std::mutex mu;
  std::vector<std::shared_ptr<SsiTxnInfo>> in_;  ///< I with I --rw--> this.
  std::vector<OutEdge> out_;                     ///< O with this --rw--> O.
};

/// What one write operation touched, from the marker tables' point of view.
/// Recorded by Transaction for the write-time marker scan and replayed for
/// the post-stamp rescan (a reader that walked the chain before the commit
/// stamp landed inserts its marker after the write-time scan; exactly one
/// of the two scans is guaranteed to see it).
struct SsiWriteFootprint {
  enum class Kind : uint8_t {
    kEntity,        ///< Point-read marker on a node/rel id.
    kLabel,         ///< Label-scan marker.
    kNodeProperty,  ///< Node property-range marker (key + value bounds).
    kRelProperty,   ///< Rel property-range marker.
    kAdjacency,     ///< GetRelationships marker on an anchor node.
    kAllNodes,      ///< AllNodes() full-scan marker.
  };
  Kind kind = Kind::kEntity;
  EntityKey entity{};
  LabelId label = kInvalidToken;
  PropertyKeyId prop_key = kInvalidToken;
  PropertyValue value;
  NodeId node = kInvalidNodeId;

  static SsiWriteFootprint Entity(const EntityKey& key) {
    SsiWriteFootprint fp;
    fp.kind = Kind::kEntity;
    fp.entity = key;
    return fp;
  }
  static SsiWriteFootprint Label(LabelId label) {
    SsiWriteFootprint fp;
    fp.kind = Kind::kLabel;
    fp.label = label;
    return fp;
  }
  static SsiWriteFootprint NodeProperty(PropertyKeyId key,
                                        PropertyValue value) {
    SsiWriteFootprint fp;
    fp.kind = Kind::kNodeProperty;
    fp.prop_key = key;
    fp.value = std::move(value);
    return fp;
  }
  static SsiWriteFootprint RelProperty(PropertyKeyId key,
                                       PropertyValue value) {
    SsiWriteFootprint fp;
    fp.kind = Kind::kRelProperty;
    fp.prop_key = key;
    fp.value = std::move(value);
    return fp;
  }
  static SsiWriteFootprint Adjacency(NodeId node) {
    SsiWriteFootprint fp;
    fp.kind = Kind::kAdjacency;
    fp.node = node;
    return fp;
  }
  static SsiWriteFootprint AllNodes() {
    SsiWriteFootprint fp;
    fp.kind = Kind::kAllNodes;
    return fp;
  }
};

/// Counters surfaced through DatabaseStats.
struct SsiTrackerStats {
  uint64_t tracked_txns = 0;    ///< Lifetime registrations (safe excluded).
  uint64_t safe_snapshots = 0;  ///< Read-only txns that skipped tracking.
  uint64_t aborts_pivot = 0;    ///< Dangerous-structure aborts (self-found).
  uint64_t aborts_doomed = 0;   ///< Victims doomed by a committing peer.
};

/// Sharded SIREAD-marker tables + rw-antidependency edge registry.
class SsiTracker {
 public:
  explicit SsiTracker(size_t shard_count);

  SsiTracker(const SsiTracker&) = delete;
  SsiTracker& operator=(const SsiTracker&) = delete;

  // --- registration --------------------------------------------------------

  /// Registers a serializable transaction. Read-write transactions MUST
  /// register BEFORE acquiring their snapshot (so the safe-snapshot probe
  /// below cannot miss a concurrent read-write peer); SetStartTs() follows
  /// once the snapshot timestamp is known.
  std::shared_ptr<SsiTxnInfo> Register(TxnId id, bool read_only);
  void SetStartTs(const std::shared_ptr<SsiTxnInfo>& info, Timestamp start_ts);

  /// Raises the future-snapshot lower bound (monotonic). The engine calls
  /// this AFTER the oracle's ordered publication of a commit timestamp:
  /// from then on no new snapshot can predate `ts`, so commits at-or-below
  /// it become eligible for pruning (see Prunable).
  void AdvanceSnapshotFloor(Timestamp ts);

  /// Safe-snapshot probe for a read-only transaction that acquired
  /// `snapshot_ts` BEFORE probing. Safe means no read-write serializable
  /// peer concurrent with the snapshot can still commit: (a) no read-write
  /// transaction is registered and unfinished, and (b) every finished one
  /// committed at or below `snapshot_ts`. Check (b) closes the ordered-
  /// publication window — a peer finishes the tracker BEFORE the oracle
  /// publishes its commit timestamp, so a snapshot acquired in between
  /// predates a commit the active count no longer reflects; that peer can
  /// be the pivot of the read-only anomaly, so the snapshot is NOT safe.
  bool IsSnapshotSafe(Timestamp snapshot_ts) const;

  /// Counts a read-only transaction admitted on a safe snapshot (it never
  /// registers).
  void RecordSafeSnapshot() {
    safe_snapshots_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- reader side ---------------------------------------------------------

  /// SIREAD marker inserts. Must be called BEFORE the corresponding chain
  /// walk / index scan (marker-then-read on this side, stamp-then-rescan on
  /// the writer side: one of the two orders always observes the other).
  void AddEntityRead(const std::shared_ptr<SsiTxnInfo>& self,
                     const EntityKey& key);
  void AddLabelRead(const std::shared_ptr<SsiTxnInfo>& self, LabelId label);
  void AddPropertyRead(const std::shared_ptr<SsiTxnInfo>& self,
                       bool node_index, PropertyKeyId key,
                       const std::optional<PropertyValue>& lo,
                       const std::optional<PropertyValue>& hi);
  void AddAdjacencyRead(const std::shared_ptr<SsiTxnInfo>& self, NodeId node);
  void AddAllNodesRead(const std::shared_ptr<SsiTxnInfo>& self);

  /// Read-time conflict-out: `self`'s walk/scan observed a version (or
  /// index interval) committed after its snapshot by `writer` (kNoTxn when
  /// unknown). Records the edge self --rw--> writer; fails with
  /// SerializationFailure when the edge completes a dangerous structure
  /// whose still-active participant is `self` (as pivot, or as the
  /// in-neighbour of an already-committed pivot). The caller rolls back.
  Status OnReadObservedCommit(const std::shared_ptr<SsiTxnInfo>& self,
                              TxnId writer, Timestamp writer_commit_ts);

  // --- writer side ---------------------------------------------------------

  /// Write-time marker scan for one footprint: records reader --rw--> self
  /// edges for every overlapping marker and fails with SerializationFailure
  /// when self becomes a dangerous pivot. The caller rolls back.
  Status OnWrite(const std::shared_ptr<SsiTxnInfo>& self,
                 const SsiWriteFootprint& fp);

  /// Post-stamp rescan, after the commit timestamps landed on versions and
  /// index entries: records edges to markers inserted since the write-time
  /// scans. Never fails self (it is already committed); dangerous pivots
  /// found among the markers' owners are doomed instead.
  void OnPostStamp(const std::shared_ptr<SsiTxnInfo>& self,
                   const std::vector<SsiWriteFootprint>& footprints);

  // --- lifecycle -----------------------------------------------------------

  /// Doomed-flag poll (the victim side of OnPostStamp / PreCommitCheck
  /// dooming). Fails with SerializationFailure when set; the caller rolls
  /// back.
  Status FailIfDoomed(const std::shared_ptr<SsiTxnInfo>& self);

  /// Serialized (commit_mu_) pre-commit danger check. First re-collects the
  /// SIREAD markers overlapping self's write footprints and links any edges
  /// from readers whose markers landed after the write-time scans — without
  /// this, a reader that slipped its marker in and committed between
  /// OnWrite and this check would leave self an undetected committed pivot.
  /// Then fails self if doomed or a dangerous pivot; otherwise dooms any
  /// still-active in-neighbour that self's commit turns into a
  /// committed-out-first pivot, and moves self to kCommitting.
  ///
  /// commit_mu_ is handed back LOCKED in *commit_guard (on success and on
  /// failure alike). The caller must keep holding it through FinishCommit
  /// and OnPostStamp: a concurrent serializable reader whose marker misses
  /// this rescan can only reach its own PreCommitCheck after self's stamps
  /// and post-stamp edges are published, which is what makes its commit
  /// decision see the rw-edge to self. On failure the caller's guard simply
  /// unwinds on scope exit.
  Status PreCommitCheck(const std::shared_ptr<SsiTxnInfo>& self,
                        const std::vector<SsiWriteFootprint>& footprints,
                        std::unique_lock<std::mutex>* commit_guard);

  /// Publishes the commit timestamp (writers: the oracle timestamp;
  /// read-only commits pass the newest read timestamp, the upper bound of
  /// everything they observed).
  void FinishCommit(const std::shared_ptr<SsiTxnInfo>& self, Timestamp ts);

  /// Abort notification (every rollback path). Idempotent.
  void Abort(const std::shared_ptr<SsiTxnInfo>& self);

  SsiTrackerStats Stats() const;

 private:
  struct RangeMarker {
    std::optional<PropertyValue> lo, hi;
    std::shared_ptr<SsiTxnInfo> reader;
  };

  using MarkerList = std::vector<std::shared_ptr<SsiTxnInfo>>;

  struct Shard {
    std::mutex mu;
    std::unordered_map<EntityKey, MarkerList> entities;
    std::unordered_map<LabelId, MarkerList> labels;
    std::unordered_map<NodeId, MarkerList> adjacency;
    std::unordered_map<PropertyKeyId, std::vector<RangeMarker>> node_props;
    std::unordered_map<PropertyKeyId, std::vector<RangeMarker>> rel_props;
  };

  static uint64_t Mix(uint64_t x);
  Shard& ShardForEntity(const EntityKey& key);
  Shard& ShardForKey(uint64_t key);

  /// True when a marker or registry record can never participate in a new
  /// edge: its owner aborted, or committed at-or-below BOTH retention
  /// horizons (the oldest tracked active snapshot AND the published
  /// snapshot floor).
  bool Prunable(const SsiTxnInfo& info) const;

  /// Appends `reader` to `list` unless already present; drops prunable
  /// markers in passing. Caller holds the shard mutex.
  void InsertMarkerLocked(MarkerList* list,
                          const std::shared_ptr<SsiTxnInfo>& reader);

  /// Readers whose markers overlap `fp` (prunable markers dropped).
  std::vector<std::shared_ptr<SsiTxnInfo>> CollectReaders(
      const SsiWriteFootprint& fp);

  /// Records reader --rw--> writer (both tracked). Dedupes; locks the two
  /// infos in ascending txn-id order.
  static void LinkEdge(const std::shared_ptr<SsiTxnInfo>& reader,
                       const std::shared_ptr<SsiTxnInfo>& writer);

  /// The dangerous-structure predicate for pivot candidate `p` (caller
  /// holds p.mu): some out-neighbour committed (or is committing) — first,
  /// when p itself committed — and some in-neighbour is unfinished or
  /// committed at-or-after that out-neighbour.
  static bool DangerousPivot(const SsiTxnInfo& p);

  /// Dooms every still-active in-neighbour of `p` (used when p is found to
  /// be a dangerous pivot that already committed). Returns the number
  /// doomed.
  size_t DoomActiveInPeers(const std::shared_ptr<SsiTxnInfo>& p);

  void NoteFinished(const std::shared_ptr<SsiTxnInfo>& info);
  /// Recomputes min-active-start and sweeps prunable registry records;
  /// caller holds registry_mu_.
  void RecomputeRegistryLocked();

  const size_t shard_count_;
  std::vector<Shard> shards_;
  std::mutex all_nodes_mu_;
  MarkerList all_nodes_;

  mutable std::mutex registry_mu_;
  std::unordered_map<TxnId, std::shared_ptr<SsiTxnInfo>> registry_;
  /// min start_ts over unfinished tracked txns (kMaxTimestamp when none):
  /// the marker/registry retention horizon for ALREADY-REGISTERED readers.
  std::atomic<Timestamp> min_active_start_{kMaxTimestamp};
  /// Lower bound on every FUTURE snapshot: the read timestamp the engine
  /// last published (AdvanceSnapshotFloor after ordered publication). A
  /// committed transaction is only prunable once its commit_ts is at or
  /// below this floor too — the engine finishes the tracker BEFORE the
  /// oracle publishes, so a transaction beginning in that window can still
  /// acquire a snapshot older than the freshly committed timestamp and
  /// must find its markers, edges and registry record intact.
  std::atomic<Timestamp> snapshot_floor_{kNoTimestamp};
  std::atomic<uint64_t> active_rw_{0};
  /// High-water commit timestamp over finished read-write serializable
  /// transactions. FinishCommit raises it BEFORE NoteFinished drops
  /// active_rw_, and IsSnapshotSafe reads active_rw_ first — so a probe
  /// that observes zero active peers is guaranteed to observe the commit
  /// timestamp of every peer that finished, and can reject snapshots that
  /// predate one (the ordered-publication window).
  std::atomic<Timestamp> last_rw_commit_{kNoTimestamp};

  /// Serializes PreCommitCheck: the danger evaluation and the transition
  /// to kCommitting must be atomic across committers, or two write-skew
  /// halves could both pass and both commit.
  std::mutex commit_mu_;

  std::atomic<uint64_t> tracked_txns_{0};
  std::atomic<uint64_t> safe_snapshots_{0};
  std::atomic<uint64_t> aborts_pivot_{0};
  std::atomic<uint64_t> aborts_doomed_{0};
};

}  // namespace neosi

#endif  // NEOSI_TXN_SSI_TRACKER_H_
