// Monotonic timestamp allocation (paper §3: "the most common way to enforce
// the read rule of snapshot isolation is to associate a commit timestamp to
// versions ... a kind of serialization order") plus the ordered commit
// publisher: commits may APPLY concurrently and finish out of timestamp
// order, but they become VISIBLE in timestamp order through a watermark.

#ifndef NEOSI_TXN_TIMESTAMP_ORACLE_H_
#define NEOSI_TXN_TIMESTAMP_ORACLE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "common/types.h"

namespace neosi {

/// Hands out transaction ids, start timestamps and commit timestamps, and
/// publishes finished commits in timestamp order.
///
/// Watermark invariant: ReadTs() returns the highest timestamp `w` such that
/// EVERY commit with timestamp <= w has either fully applied (store, version
/// stamps, index stamps) or abandoned its slot. A snapshot taken at `w`
/// therefore never observes a half-applied commit, no matter how commits
/// interleave: a commit with timestamp > w may be mid-flight, but all of its
/// effects carry its (invisible) timestamp.
///
/// Contract: every timestamp obtained from NextCommitTs() MUST eventually be
/// passed to exactly one FinishCommit() call — on success after the last
/// stamping step, on failure as soon as the commit gives up. Timestamps are
/// dense, so one unreturned slot stalls the watermark forever.
class TimestampOracle {
 public:
  TimestampOracle() = default;

  /// Snapshot timestamp for a beginning transaction (the watermark).
  Timestamp ReadTs() const {
    return last_committed_.load(std::memory_order_acquire);
  }

  /// Allocates the next commit timestamp (monotonically increasing). This is
  /// the whole sequencing section of the commit pipeline: everything after
  /// it runs outside any global lock.
  Timestamp NextCommitTs() {
    return next_commit_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Marks `ts` as fully applied (or abandoned) and advances the watermark
  /// over every consecutive finished timestamp. Accepts completions in any
  /// order; out-of-order finishers park in a min-heap until the gap below
  /// them closes. A watermark advance wakes ONLY the publication waiters it
  /// satisfies (per-timestamp wait list), not every parked committer.
  void FinishCommit(Timestamp ts) {
    std::vector<std::shared_ptr<WaitSlot>> satisfied;
    {
      std::lock_guard<std::mutex> guard(mu_);
      finished_.push(ts);
      Timestamp watermark = last_committed_.load(std::memory_order_relaxed);
      while (!finished_.empty() && finished_.top() == watermark + 1) {
        watermark = finished_.top();
        finished_.pop();
      }
      last_committed_.store(watermark, std::memory_order_release);
      auto end = wait_slots_.upper_bound(watermark);
      for (auto it = wait_slots_.begin(); it != end; ++it) {
        satisfied.push_back(std::move(it->second));
      }
      wait_slots_.erase(wait_slots_.begin(), end);
    }
    for (const auto& slot : satisfied) slot->cv.notify_all();
  }

  /// Blocks until the watermark has reached `ts`. A successful commit waits
  /// here before acknowledging, so a session's next snapshot always sees its
  /// own previous commit (commit acks are emitted in publication order even
  /// though application runs in parallel). Waiters park on a per-timestamp
  /// slot: high writer counts do not thundering-herd on every advance.
  void WaitUntilPublished(Timestamp ts) {
    if (last_committed_.load(std::memory_order_acquire) >= ts) return;
    std::unique_lock<std::mutex> lock(mu_);
    while (last_committed_.load(std::memory_order_relaxed) < ts) {
      std::shared_ptr<WaitSlot>& ref = wait_slots_[ts];
      if (!ref) ref = std::make_shared<WaitSlot>();
      // Pin the slot: FinishCommit erases the map entry before notifying.
      std::shared_ptr<WaitSlot> slot = ref;
      slot->cv.wait(lock);
    }
  }

  /// Replica-side watermark advance: jumps the published watermark straight
  /// to `ts` (no-op when already there) and wakes every publication waiter
  /// it satisfies. A replica never allocates commit timestamps — its
  /// applier replays the primary's commits and publishes each replayed
  /// prefix with this — so the density contract of NextCommitTs /
  /// FinishCommit is never mixed with jumps on the same oracle.
  void AdvanceReadTs(Timestamp ts) {
    std::vector<std::shared_ptr<WaitSlot>> satisfied;
    {
      std::lock_guard<std::mutex> guard(mu_);
      if (ts <= last_committed_.load(std::memory_order_relaxed)) return;
      last_committed_.store(ts, std::memory_order_release);
      if (next_commit_.load(std::memory_order_relaxed) <= ts) {
        next_commit_.store(ts + 1, std::memory_order_relaxed);
      }
      auto end = wait_slots_.upper_bound(ts);
      for (auto it = wait_slots_.begin(); it != end; ++it) {
        satisfied.push_back(std::move(it->second));
      }
      wait_slots_.erase(wait_slots_.begin(), end);
    }
    for (const auto& slot : satisfied) slot->cv.notify_all();
  }

  /// Distinct timestamps with parked publication waiters (test hook).
  size_t WaitingSlotCount() const {
    std::lock_guard<std::mutex> guard(mu_);
    return wait_slots_.size();
  }

  /// Commits finished but not yet publishable (a lower timestamp is still
  /// mid-flight). Diagnostic / test hook.
  size_t PendingPublishCount() const {
    std::lock_guard<std::mutex> guard(mu_);
    return finished_.size();
  }

  /// Fresh transaction id (distinct space from timestamps; ids order
  /// transactions by age for wait-die).
  TxnId NextTxnId() { return next_txn_.fetch_add(1, std::memory_order_relaxed); }

  /// Restores state after recovery: timestamps resume above max_committed
  /// and no commits are in flight. Every parked waiter is woken to re-check
  /// against the restarted watermark.
  void Restart(Timestamp max_committed) {
    std::vector<std::shared_ptr<WaitSlot>> parked;
    {
      std::lock_guard<std::mutex> guard(mu_);
      last_committed_.store(max_committed, std::memory_order_release);
      next_commit_.store(max_committed + 1, std::memory_order_relaxed);
      finished_ = MinHeap();
      for (auto& [ts, slot] : wait_slots_) parked.push_back(std::move(slot));
      wait_slots_.clear();
    }
    for (const auto& slot : parked) slot->cv.notify_all();
  }

  /// Newest commit timestamp handed out (>= ReadTs()).
  Timestamp LastAllocatedCommitTs() const {
    return next_commit_.load(std::memory_order_relaxed) - 1;
  }

 private:
  using MinHeap = std::priority_queue<Timestamp, std::vector<Timestamp>,
                                      std::greater<Timestamp>>;

  /// One parked publication wait (normally a single committer per
  /// timestamp; shared_ptr keeps the condvar alive across the map erase in
  /// FinishCommit).
  struct WaitSlot {
    std::condition_variable cv;
  };

  std::atomic<Timestamp> last_committed_{0};
  std::atomic<Timestamp> next_commit_{1};
  std::atomic<TxnId> next_txn_{1};

  mutable std::mutex mu_;  // guards finished_, wait_slots_ and the watermark
  MinHeap finished_;
  std::map<Timestamp, std::shared_ptr<WaitSlot>> wait_slots_;
};

}  // namespace neosi

#endif  // NEOSI_TXN_TIMESTAMP_ORACLE_H_
