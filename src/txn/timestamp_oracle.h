// Monotonic timestamp allocation (paper §3: "the most common way to enforce
// the read rule of snapshot isolation is to associate a commit timestamp to
// versions ... a kind of serialization order").

#ifndef NEOSI_TXN_TIMESTAMP_ORACLE_H_
#define NEOSI_TXN_TIMESTAMP_ORACLE_H_

#include <atomic>

#include "common/types.h"

namespace neosi {

/// Hands out transaction ids, start timestamps and commit timestamps.
///
/// Start timestamp = the newest commit timestamp whose transaction has fully
/// applied (so a snapshot never observes a half-applied commit). The engine
/// serializes commit application, advancing last_committed in commit order.
class TimestampOracle {
 public:
  TimestampOracle() = default;

  /// Snapshot timestamp for a beginning transaction.
  Timestamp ReadTs() const {
    return last_committed_.load(std::memory_order_acquire);
  }

  /// Allocates the next commit timestamp (monotonically increasing).
  Timestamp NextCommitTs() {
    return next_commit_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Publishes `ts` as fully applied. Must be called in commit-ts order
  /// (the engine's commit critical section guarantees this).
  void PublishCommit(Timestamp ts) {
    last_committed_.store(ts, std::memory_order_release);
  }

  /// Fresh transaction id (distinct space from timestamps; ids order
  /// transactions by age for wait-die).
  TxnId NextTxnId() { return next_txn_.fetch_add(1, std::memory_order_relaxed); }

  /// Restores state after recovery: timestamps resume above max_committed.
  void Restart(Timestamp max_committed) {
    last_committed_.store(max_committed, std::memory_order_release);
    next_commit_.store(max_committed + 1, std::memory_order_relaxed);
  }

  /// Newest commit timestamp handed out (>= ReadTs()).
  Timestamp LastAllocatedCommitTs() const {
    return next_commit_.load(std::memory_order_relaxed) - 1;
  }

 private:
  std::atomic<Timestamp> last_committed_{0};
  std::atomic<Timestamp> next_commit_{1};
  std::atomic<TxnId> next_txn_{1};
};

}  // namespace neosi

#endif  // NEOSI_TXN_TIMESTAMP_ORACLE_H_
