// Monotonic timestamp allocation (paper §3: "the most common way to enforce
// the read rule of snapshot isolation is to associate a commit timestamp to
// versions ... a kind of serialization order") plus the ordered commit
// publisher: commits may APPLY concurrently and finish out of timestamp
// order, but they become VISIBLE in timestamp order through a watermark.

#ifndef NEOSI_TXN_TIMESTAMP_ORACLE_H_
#define NEOSI_TXN_TIMESTAMP_ORACLE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <vector>

#include "common/types.h"

namespace neosi {

/// Hands out transaction ids, start timestamps and commit timestamps, and
/// publishes finished commits in timestamp order.
///
/// Watermark invariant: ReadTs() returns the highest timestamp `w` such that
/// EVERY commit with timestamp <= w has either fully applied (store, version
/// stamps, index stamps) or abandoned its slot. A snapshot taken at `w`
/// therefore never observes a half-applied commit, no matter how commits
/// interleave: a commit with timestamp > w may be mid-flight, but all of its
/// effects carry its (invisible) timestamp.
///
/// Contract: every timestamp obtained from NextCommitTs() MUST eventually be
/// passed to exactly one FinishCommit() call — on success after the last
/// stamping step, on failure as soon as the commit gives up. Timestamps are
/// dense, so one unreturned slot stalls the watermark forever.
class TimestampOracle {
 public:
  TimestampOracle() = default;

  /// Snapshot timestamp for a beginning transaction (the watermark).
  Timestamp ReadTs() const {
    return last_committed_.load(std::memory_order_acquire);
  }

  /// Allocates the next commit timestamp (monotonically increasing). This is
  /// the whole sequencing section of the commit pipeline: everything after
  /// it runs outside any global lock.
  Timestamp NextCommitTs() {
    return next_commit_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Marks `ts` as fully applied (or abandoned) and advances the watermark
  /// over every consecutive finished timestamp. Accepts completions in any
  /// order; out-of-order finishers park in a min-heap until the gap below
  /// them closes.
  void FinishCommit(Timestamp ts) {
    bool advanced = false;
    {
      std::lock_guard<std::mutex> guard(mu_);
      finished_.push(ts);
      Timestamp watermark = last_committed_.load(std::memory_order_relaxed);
      while (!finished_.empty() && finished_.top() == watermark + 1) {
        watermark = finished_.top();
        finished_.pop();
        advanced = true;
      }
      last_committed_.store(watermark, std::memory_order_release);
    }
    if (advanced) published_cv_.notify_all();
  }

  /// Blocks until the watermark has reached `ts`. A successful commit waits
  /// here before acknowledging, so a session's next snapshot always sees its
  /// own previous commit (commit acks are emitted in publication order even
  /// though application runs in parallel).
  void WaitUntilPublished(Timestamp ts) {
    if (last_committed_.load(std::memory_order_acquire) >= ts) return;
    std::unique_lock<std::mutex> lock(mu_);
    published_cv_.wait(lock, [&] {
      return last_committed_.load(std::memory_order_relaxed) >= ts;
    });
  }

  /// Commits finished but not yet publishable (a lower timestamp is still
  /// mid-flight). Diagnostic / test hook.
  size_t PendingPublishCount() const {
    std::lock_guard<std::mutex> guard(mu_);
    return finished_.size();
  }

  /// Fresh transaction id (distinct space from timestamps; ids order
  /// transactions by age for wait-die).
  TxnId NextTxnId() { return next_txn_.fetch_add(1, std::memory_order_relaxed); }

  /// Restores state after recovery: timestamps resume above max_committed
  /// and no commits are in flight.
  void Restart(Timestamp max_committed) {
    {
      std::lock_guard<std::mutex> guard(mu_);
      last_committed_.store(max_committed, std::memory_order_release);
      next_commit_.store(max_committed + 1, std::memory_order_relaxed);
      finished_ = MinHeap();
    }
    published_cv_.notify_all();
  }

  /// Newest commit timestamp handed out (>= ReadTs()).
  Timestamp LastAllocatedCommitTs() const {
    return next_commit_.load(std::memory_order_relaxed) - 1;
  }

 private:
  using MinHeap = std::priority_queue<Timestamp, std::vector<Timestamp>,
                                      std::greater<Timestamp>>;

  std::atomic<Timestamp> last_committed_{0};
  std::atomic<Timestamp> next_commit_{1};
  std::atomic<TxnId> next_txn_{1};

  mutable std::mutex mu_;  // guards finished_ and watermark advancement
  std::condition_variable published_cv_;
  MinHeap finished_;
};

}  // namespace neosi

#endif  // NEOSI_TXN_TIMESTAMP_ORACLE_H_
