// Epoch-based reclamation for the latch-free read path (FASTER-style).
//
// Committed-read chain walks traverse raw atomic pointers with NO latch; the
// memory they may touch is protected by epochs instead of by mutual
// exclusion:
//
//   - A reader ENTERS an epoch before its first pointer load (one CAS into a
//     cache-line-padded slot array + one fence) and EXITS after its last
//     (one relaxed store). While entered, its slot publishes the global
//     epoch value it observed.
//   - A writer that unlinks a version from a chain (GC prune/remove, abort)
//     RETIRES it into a limbo list stamped with the current global epoch,
//     instead of freeing it. The version's own forward link stays intact, so
//     a reader standing on a retired version keeps walking a valid chain.
//   - The GC daemon periodically BUMPS the global epoch and DRAINS the limbo
//     list: an entry stamped `e` is freed only when every occupied slot
//     publishes an epoch strictly greater than `e` — i.e. every reader that
//     could possibly still hold a pointer into it has exited.
//
// Safety argument (why a reader can never touch freed memory): the reader's
// slot CAS + seq_cst fence and the drainer's seq_cst fence + slot scan are
// totally ordered. If the scan saw the reader's slot occupied at epoch `e`,
// it frees only entries stamped < `e`, and the reader — which loaded `e`
// from the global counter AFTER every bump that produced those stamps — is
// guaranteed (by the fence pairing) to observe the unlink stores that made
// those entries unreachable before its first chain-pointer load. If the
// scan saw the slot idle, the reader's fence follows the drainer's, and the
// same visibility guarantee applies to everything the drain freed.
//
// Slots are CLAIMED, not owned: a reader probes from a thread-local hint and
// CASes any idle slot. This keeps the manager self-contained per database
// instance (no thread registration, no leak when threads or databases come
// and go — the test suite opens thousands of short-lived databases).

#ifndef NEOSI_MVCC_EPOCH_H_
#define NEOSI_MVCC_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "mvcc/version.h"

namespace neosi {

/// Per-database epoch-based reclamation domain.
class EpochManager {
 public:
  /// `slots` bounds the number of concurrently entered readers (extra
  /// readers spin-probe until a slot frees up); 0 = auto-size from
  /// std::thread::hardware_concurrency() (see DatabaseOptions::epoch_slots).
  explicit EpochManager(size_t slots = 0);

  /// Frees everything still in limbo. The caller must guarantee no reader
  /// is entered (database teardown: transactions must not outlive the db).
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// RAII epoch entry. Constructing with a null manager is a no-op (the
  /// latched-baseline configuration uses the same call sites).
  class Guard {
   public:
    explicit Guard(EpochManager* manager)
        : manager_(manager), slot_(manager ? manager->Enter() : 0) {}
    ~Guard() {
      if (manager_) manager_->Exit(slot_);
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochManager* const manager_;
    const size_t slot_;
  };

  /// Moves an unlinked version into the limbo list, stamped with the
  /// current global epoch. The version's own `older` / `older_raw` links
  /// must be left INTACT by the caller — a reader standing on it mid-walk
  /// follows them.
  void Retire(std::shared_ptr<Version> version);

  /// Advances the global epoch (called by the GC daemon once per cycle, so
  /// a drain one cycle later can free this cycle's retirees). Returns the
  /// new epoch.
  uint64_t BumpEpoch() {
    return global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  /// Frees every limbo entry retired strictly before the minimum epoch
  /// published by any occupied slot (all of limbo when no slot is
  /// occupied). Returns the number of entries freed.
  size_t Drain();

  /// Minimum epoch published by any occupied slot; UINT64_MAX when no
  /// reader is entered (test hook; racy by nature).
  uint64_t MinActiveEpoch() const;

  uint64_t current_epoch() const {
    return global_epoch_.load(std::memory_order_relaxed);
  }
  size_t slot_count() const { return slot_count_; }

  /// Observability gauges (DatabaseStats / benches). Lock-free reads.
  size_t limbo_size() const {
    return limbo_size_.load(std::memory_order_relaxed);
  }
  uint64_t total_retired() const {
    return total_retired_.load(std::memory_order_relaxed);
  }
  uint64_t total_freed() const {
    return total_freed_.load(std::memory_order_relaxed);
  }

 private:
  /// Occupied slots publish the epoch the reader observed; kIdle is free.
  /// Padded so concurrent readers on different slots never share a line.
  static constexpr uint64_t kIdle = 0;
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
  };

  struct LimboEntry {
    std::shared_ptr<Version> version;
    uint64_t retired_epoch = 0;
  };

  size_t Enter();
  void Exit(size_t slot) {
    slots_[slot].epoch.store(kIdle, std::memory_order_release);
  }

  /// Drops the limbo's reference, unwinding the `older` chain iteratively
  /// while this reference is the last one (a retired chain suffix would
  /// otherwise destruct recursively and can overflow the stack).
  static void FreeRetired(std::shared_ptr<Version> version);

  const size_t slot_count_;
  const std::unique_ptr<Slot[]> slots_;
  /// Global epoch counter. Starts at 1: kIdle(0) must never be a valid
  /// published epoch.
  std::atomic<uint64_t> global_epoch_{1};

  mutable std::mutex limbo_mu_;
  std::vector<LimboEntry> limbo_;

  std::atomic<size_t> limbo_size_{0};
  std::atomic<uint64_t> total_retired_{0};
  std::atomic<uint64_t> total_freed_{0};
};

}  // namespace neosi

#endif  // NEOSI_MVCC_EPOCH_H_
