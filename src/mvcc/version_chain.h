// Per-entity version list with snapshot visibility (paper §4: "each object
// representing a node or relationship stores a list of versions ... the
// right version for the reading transaction can be obtained by traversing
// the list of versions").
//
// Two read-path modes, chosen at construction:
//
//   - LATCH-FREE (an EpochManager is wired in): committed-visibility walks
//     (Visible / LatestCommitted / NewestCommitTs) traverse the raw atomic
//     mirror links (`head_raw_` / `Version::older_raw`) under an epoch
//     guard and acquire ZERO latches. Writers still take the chain latch,
//     but only to install/commit/abort the head and to unlink for GC — and
//     an unlink RETIRES the version into the epoch limbo (its own forward
//     link intact) instead of freeing it, so a reader standing on it
//     mid-walk keeps walking a valid chain.
//   - LATCHED (null manager): the original SpinLatch-per-read behaviour,
//     with immediate frees. The micro-benches keep this as the comparison
//     baseline, and DatabaseOptions::latch_free_reads=false selects it
//     engine-wide.

#ifndef NEOSI_MVCC_VERSION_CHAIN_H_
#define NEOSI_MVCC_VERSION_CHAIN_H_

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "common/latch.h"
#include "common/status.h"
#include "common/types.h"
#include "mvcc/version.h"

namespace neosi {

class EpochManager;

/// Thread-safe newest-first list of versions for one entity.
class VersionChain {
 public:
  /// `epochs` non-null enables the latch-free read path; null keeps the
  /// fully latched baseline (reads latch, unlinks free immediately).
  explicit VersionChain(EpochManager* epochs = nullptr) : epochs_(epochs) {}
  ~VersionChain();

  VersionChain(const VersionChain&) = delete;
  VersionChain& operator=(const VersionChain&) = delete;

  /// Prepends an uncommitted version owned by `writer`. The engine's write
  /// locks guarantee at most one uncommitted version per entity; a second
  /// concurrent installer is an engine bug and returns Internal.
  Result<std::shared_ptr<Version>> InstallUncommitted(TxnId writer,
                                                      VersionData data);

  /// Stamps the (uncommitted) head with its commit timestamp. Returns the
  /// superseded previous head (now obsolete, to be threaded onto the GC
  /// list) or nullptr if this was the first version. Obsolescence stamps
  /// (`obsolete_since` on the superseded version, and on the head itself
  /// when it is a tombstone) are applied under the chain latch, so commit
  /// stamping is safe with many writers committing concurrently and no
  /// global commit lock. The commit-timestamp store itself is a release:
  /// it is the publication point for the version's data on the latch-free
  /// read path.
  Result<std::shared_ptr<Version>> CommitHead(TxnId writer, Timestamp ts);

  /// Removes the uncommitted head if owned by `writer` (abort path). In
  /// epoch mode the popped head is retired, not freed: a latch-free reader
  /// may be standing on it.
  void AbortHead(TxnId writer);

  /// Snapshot read (paper §3 read rule): the most recent version with
  /// commit_ts <= start_ts, or the uncommitted version when owned by `self`
  /// (read-your-own-writes). Null when nothing is visible. Latch-free in
  /// epoch mode.
  std::shared_ptr<const Version> Visible(Timestamp start_ts,
                                         TxnId self = kNoTxn) const;

  /// Latest committed version regardless of snapshot (read-committed reads).
  /// Latch-free in epoch mode.
  std::shared_ptr<const Version> LatestCommitted() const;

  /// The head version (committed or not); null when empty.
  std::shared_ptr<Version> Head() const;

  /// True if any version is uncommitted (i.e. a writer is in flight).
  bool HasUncommitted() const;

  /// Commit timestamp of the newest committed version (kNoTimestamp if
  /// none). Latch-free in epoch mode (used on the write-conflict path,
  /// which holds the entity's write lock but races GC unlinks).
  Timestamp NewestCommitTs() const;

  /// Appends (writer, commit_ts) of every committed version with
  /// commit_ts > start_ts — the versions a snapshot at start_ts cannot see
  /// because their writers committed after it. The SSI read path turns each
  /// into an rw-antidependency conflict-out edge. Stops at the first
  /// committed version <= start_ts (the chain is newest-first). Latch-free
  /// in epoch mode.
  void CommittedNewerThan(Timestamp start_ts,
                          std::vector<std::pair<TxnId, Timestamp>>* out) const;

  /// Unlinks a specific version (GC). Returns true if found and removed.
  /// Epoch mode retires the version into limbo instead of dropping the
  /// last reference.
  bool Remove(const std::shared_ptr<Version>& target);

  /// Drops every version strictly older than the newest committed version
  /// with commit_ts <= watermark (those can never be read again). Returns
  /// the number of versions dropped. Epoch mode retires the severed suffix
  /// as ONE limbo entry (interior links intact for readers inside it).
  size_t PruneSupersededUpTo(Timestamp watermark);

  /// Number of versions currently in the list.
  size_t Length() const;

  bool Empty() const { return Length() == 0; }

  /// Approximate heap footprint of every resident version (cache
  /// accounting / E9). Walks under the chain latch — the stats path must
  /// not race GC unlinks with an unprotected raw walk.
  size_t ApproximateBytes() const;

 private:
  EpochManager* const epochs_;
  mutable SpinLatch latch_;
  std::shared_ptr<Version> head_;
  /// Raw mirror of `head_` for latch-free traversal; every latched mutation
  /// of `head_` release-stores it here.
  std::atomic<Version*> head_raw_{nullptr};
};

}  // namespace neosi

#endif  // NEOSI_MVCC_VERSION_CHAIN_H_
