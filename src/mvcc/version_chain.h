// Per-entity version list with snapshot visibility (paper §4: "each object
// representing a node or relationship stores a list of versions ... the
// right version for the reading transaction can be obtained by traversing
// the list of versions").

#ifndef NEOSI_MVCC_VERSION_CHAIN_H_
#define NEOSI_MVCC_VERSION_CHAIN_H_

#include <memory>

#include "common/latch.h"
#include "common/status.h"
#include "common/types.h"
#include "mvcc/version.h"

namespace neosi {

/// Thread-safe newest-first list of versions for one entity.
class VersionChain {
 public:
  VersionChain() = default;
  ~VersionChain();

  VersionChain(const VersionChain&) = delete;
  VersionChain& operator=(const VersionChain&) = delete;

  /// Prepends an uncommitted version owned by `writer`. The engine's write
  /// locks guarantee at most one uncommitted version per entity; a second
  /// concurrent installer is an engine bug and returns Internal.
  Result<std::shared_ptr<Version>> InstallUncommitted(TxnId writer,
                                                      VersionData data);

  /// Stamps the (uncommitted) head with its commit timestamp. Returns the
  /// superseded previous head (now obsolete, to be threaded onto the GC
  /// list) or nullptr if this was the first version. Obsolescence stamps
  /// (`obsolete_since` on the superseded version, and on the head itself
  /// when it is a tombstone) are applied under the chain latch, so commit
  /// stamping is safe with many writers committing concurrently and no
  /// global commit lock.
  Result<std::shared_ptr<Version>> CommitHead(TxnId writer, Timestamp ts);

  /// Removes the uncommitted head if owned by `writer` (abort path).
  void AbortHead(TxnId writer);

  /// Snapshot read (paper §3 read rule): the most recent version with
  /// commit_ts <= start_ts, or the uncommitted version when owned by `self`
  /// (read-your-own-writes). Null when nothing is visible.
  std::shared_ptr<const Version> Visible(Timestamp start_ts,
                                         TxnId self = kNoTxn) const;

  /// Latest committed version regardless of snapshot (read-committed reads).
  std::shared_ptr<const Version> LatestCommitted() const;

  /// The head version (committed or not); null when empty.
  std::shared_ptr<Version> Head() const;

  /// True if any version is uncommitted (i.e. a writer is in flight).
  bool HasUncommitted() const;

  /// Commit timestamp of the newest committed version (kNoTimestamp if none).
  Timestamp NewestCommitTs() const;

  /// Unlinks a specific version (GC). Returns true if found and removed.
  bool Remove(const std::shared_ptr<Version>& target);

  /// Drops every version strictly older than the newest committed version
  /// with commit_ts <= watermark (those can never be read again). Returns
  /// the number of versions dropped. Used by the vacuum-style baseline; the
  /// threaded GC removes versions individually via the GC list.
  size_t PruneSupersededUpTo(Timestamp watermark);

  /// Number of versions currently in the list.
  size_t Length() const;

  bool Empty() const { return Length() == 0; }

 private:
  mutable SpinLatch latch_;
  std::shared_ptr<Version> head_;
};

}  // namespace neosi

#endif  // NEOSI_MVCC_VERSION_CHAIN_H_
