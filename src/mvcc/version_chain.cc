#include "mvcc/version_chain.h"

#include "mvcc/epoch.h"

namespace neosi {

VersionChain::~VersionChain() {
  // Unwind the chain iteratively; a long shared_ptr chain would otherwise
  // destruct recursively and can overflow the stack (E6 builds 1k+ chains).
  // No retire needed even in epoch mode: anyone who can still walk this
  // chain holds the owning CachedNode/CachedRel alive, so reaching the
  // destructor means no reader can.
  std::shared_ptr<Version> cur = std::move(head_);
  while (cur) {
    std::shared_ptr<Version> next = std::move(cur->older);
    cur.reset();
    cur = std::move(next);
  }
}

Result<std::shared_ptr<Version>> VersionChain::InstallUncommitted(
    TxnId writer, VersionData data) {
  auto version = std::make_shared<Version>();
  version->writer = writer;
  version->data = std::move(data);
  std::lock_guard<SpinLatch> guard(latch_);
  if (head_ && !head_->committed()) {
    if (head_->writer == writer) {
      // Same transaction writing again: collapse into one pending version
      // (a transaction has exactly one private version per entity). Safe
      // against latch-free readers: they skip uncommitted versions on the
      // commit_ts check alone and never touch this data (the writer itself
      // reads it from its own thread).
      head_->data = std::move(version->data);
      return head_;
    }
    return Status::Internal(
        "version chain: concurrent uncommitted writers (lock bug)");
  }
  version->older = head_;
  version->older_raw.store(head_.get(), std::memory_order_relaxed);
  head_ = version;
  // Publication point for `writer` and the initial `data`.
  head_raw_.store(version.get(), std::memory_order_release);
  return version;
}

Result<std::shared_ptr<Version>> VersionChain::CommitHead(TxnId writer,
                                                          Timestamp ts) {
  std::lock_guard<SpinLatch> guard(latch_);
  if (!head_ || head_->committed() || head_->writer != writer) {
    return Status::Internal("version chain: commit without pending version");
  }
  // Release: publishes the version's data to latch-free readers that
  // acquire-load this timestamp.
  head_->commit_ts.store(ts, std::memory_order_release);
  if (head_->data.deleted) head_->obsolete_since = ts;  // Tombstone.
  if (head_->older) head_->older->obsolete_since = ts;
  return head_->older;  // May be null (first version of the entity).
}

void VersionChain::AbortHead(TxnId writer) {
  std::lock_guard<SpinLatch> guard(latch_);
  if (head_ && !head_->committed() && head_->writer == writer) {
    std::shared_ptr<Version> victim = std::move(head_);
    head_ = victim->older;
    head_raw_.store(head_.get(), std::memory_order_release);
    // victim->older / older_raw stay intact: a latch-free reader standing
    // on the aborted head keeps walking into the surviving chain.
    if (epochs_) epochs_->Retire(std::move(victim));
  }
}

std::shared_ptr<const Version> VersionChain::Visible(Timestamp start_ts,
                                                     TxnId self) const {
  if (epochs_ == nullptr) {
    std::lock_guard<SpinLatch> guard(latch_);
    for (std::shared_ptr<Version> v = head_; v; v = v->older) {
      if (!v->committed()) {
        if (self != kNoTxn && v->writer == self) return v;  // Own write.
        continue;  // Private to another transaction.
      }
      if (v->commit_ts.load(std::memory_order_relaxed) <= start_ts) return v;
    }
    return nullptr;
  }
  // Latch-free walk: raw atomic links under an epoch guard. Every version
  // reachable here is kept alive by its chain predecessor or by the epoch
  // limbo, so promoting the raw pointer back to an owning one is safe.
  EpochManager::Guard guard(epochs_);
  for (const Version* v = head_raw_.load(std::memory_order_acquire); v;
       v = v->older_raw.load(std::memory_order_acquire)) {
    const Timestamp ts = v->commit_ts.load(std::memory_order_acquire);
    if (ts == kNoTimestamp) {
      if (self != kNoTxn && v->writer == self) {
        return v->shared_from_this();  // Own write.
      }
      continue;  // Private to another transaction.
    }
    if (ts <= start_ts) return v->shared_from_this();
  }
  return nullptr;
}

std::shared_ptr<const Version> VersionChain::LatestCommitted() const {
  if (epochs_ == nullptr) {
    std::lock_guard<SpinLatch> guard(latch_);
    for (std::shared_ptr<Version> v = head_; v; v = v->older) {
      if (v->committed()) return v;
    }
    return nullptr;
  }
  EpochManager::Guard guard(epochs_);
  for (const Version* v = head_raw_.load(std::memory_order_acquire); v;
       v = v->older_raw.load(std::memory_order_acquire)) {
    if (v->committed()) return v->shared_from_this();
  }
  return nullptr;
}

std::shared_ptr<Version> VersionChain::Head() const {
  std::lock_guard<SpinLatch> guard(latch_);
  return head_;
}

bool VersionChain::HasUncommitted() const {
  std::lock_guard<SpinLatch> guard(latch_);
  return head_ && !head_->committed();
}

Timestamp VersionChain::NewestCommitTs() const {
  if (epochs_ == nullptr) {
    std::lock_guard<SpinLatch> guard(latch_);
    for (std::shared_ptr<Version> v = head_; v; v = v->older) {
      if (v->committed()) return v->commit_ts.load(std::memory_order_relaxed);
    }
    return kNoTimestamp;
  }
  EpochManager::Guard guard(epochs_);
  for (const Version* v = head_raw_.load(std::memory_order_acquire); v;
       v = v->older_raw.load(std::memory_order_acquire)) {
    const Timestamp ts = v->commit_ts.load(std::memory_order_acquire);
    if (ts != kNoTimestamp) return ts;
  }
  return kNoTimestamp;
}

void VersionChain::CommittedNewerThan(
    Timestamp start_ts, std::vector<std::pair<TxnId, Timestamp>>* out) const {
  if (epochs_ == nullptr) {
    std::lock_guard<SpinLatch> guard(latch_);
    for (std::shared_ptr<Version> v = head_; v; v = v->older) {
      if (!v->committed()) continue;  // Private to an in-flight writer.
      const Timestamp ts = v->commit_ts.load(std::memory_order_relaxed);
      if (ts <= start_ts) break;  // Newest-first: everything older is too.
      out->emplace_back(v->writer, ts);
    }
    return;
  }
  EpochManager::Guard guard(epochs_);
  for (const Version* v = head_raw_.load(std::memory_order_acquire); v;
       v = v->older_raw.load(std::memory_order_acquire)) {
    const Timestamp ts = v->commit_ts.load(std::memory_order_acquire);
    if (ts == kNoTimestamp) continue;
    if (ts <= start_ts) break;
    out->emplace_back(v->writer, ts);
  }
}

bool VersionChain::Remove(const std::shared_ptr<Version>& target) {
  std::lock_guard<SpinLatch> guard(latch_);
  if (!head_) return false;
  if (head_ == target) {
    head_ = head_->older;  // Copy: target's own forward links stay intact.
    head_raw_.store(head_.get(), std::memory_order_release);
    // Retire LAST: the caller's `target` reference keeps the version alive
    // through the splice, and the limbo push (under limbo_mu_) must
    // happen-after every access to target's fields above so the drainer's
    // FreeRetired — which mutates target->older — is ordered after them.
    if (epochs_) epochs_->Retire(target);
    return true;
  }
  for (std::shared_ptr<Version> v = head_; v->older; v = v->older) {
    if (v->older == target) {
      // Splice first (target's own forward links stay intact: a latch-free
      // reader standing on target mid-walk keeps walking), retire LAST —
      // the limbo push under limbo_mu_ orders these field accesses before
      // the drainer's FreeRetired mutation of target->older. The caller's
      // `target` reference keeps the version alive meanwhile.
      v->older = target->older;
      v->older_raw.store(target->older.get(), std::memory_order_release);
      if (epochs_) epochs_->Retire(target);
      return true;
    }
  }
  return false;
}

size_t VersionChain::PruneSupersededUpTo(Timestamp watermark) {
  std::lock_guard<SpinLatch> guard(latch_);
  // Find the newest committed version visible at the watermark; everything
  // older is unreachable by any current or future snapshot. (A registered,
  // non-expired snapshot has start_ts >= watermark, so its walk stops at
  // `keep` or newer — it can never be standing INSIDE the severed suffix
  // unless it is already expired, in which case its post-walk
  // SnapshotTooOld check rejects whatever it read; see ARCHITECTURE.md.)
  std::shared_ptr<Version> keep;
  for (keep = head_; keep; keep = keep->older) {
    if (keep->committed() &&
        keep->commit_ts.load(std::memory_order_relaxed) <= watermark) {
      break;
    }
  }
  if (!keep) return 0;
  size_t dropped = 0;
  for (std::shared_ptr<Version> v = keep->older; v; v = v->older) ++dropped;
  if (dropped == 0) return 0;
  // The whole suffix is retired as ONE limbo entry; its interior links stay
  // intact for any reader still walking inside it. Sever first, retire
  // LAST: the limbo push (under limbo_mu_) must happen-after every chain-
  // side access to the suffix (the counting walk above, the unlink here) so
  // the drainer's FreeRetired — which mutates the suffix's `older` links —
  // is ordered after them.
  std::shared_ptr<Version> suffix = std::move(keep->older);
  keep->older_raw.store(nullptr, std::memory_order_release);
  if (epochs_) epochs_->Retire(std::move(suffix));
  return dropped;
}

size_t VersionChain::Length() const {
  std::lock_guard<SpinLatch> guard(latch_);
  size_t n = 0;
  for (std::shared_ptr<Version> v = head_; v; v = v->older) ++n;
  return n;
}

size_t VersionChain::ApproximateBytes() const {
  std::lock_guard<SpinLatch> guard(latch_);
  size_t n = 0;
  for (Version* v = head_.get(); v; v = v->older.get()) {
    n += sizeof(Version) + v->data.ApproximateSize();
  }
  return n;
}

}  // namespace neosi
