#include "mvcc/version_chain.h"

namespace neosi {

VersionChain::~VersionChain() {
  // Unwind the chain iteratively; a long shared_ptr chain would otherwise
  // destruct recursively and can overflow the stack (E6 builds 1k+ chains).
  std::shared_ptr<Version> cur = std::move(head_);
  while (cur) {
    std::shared_ptr<Version> next = std::move(cur->older);
    cur.reset();
    cur = std::move(next);
  }
}

Result<std::shared_ptr<Version>> VersionChain::InstallUncommitted(
    TxnId writer, VersionData data) {
  auto version = std::make_shared<Version>();
  version->writer = writer;
  version->data = std::move(data);
  std::lock_guard<SpinLatch> guard(latch_);
  if (head_ && !head_->committed()) {
    if (head_->writer == writer) {
      // Same transaction writing again: collapse into one pending version
      // (a transaction has exactly one private version per entity).
      head_->data = std::move(version->data);
      return head_;
    }
    return Status::Internal(
        "version chain: concurrent uncommitted writers (lock bug)");
  }
  version->older = head_;
  head_ = version;
  return version;
}

Result<std::shared_ptr<Version>> VersionChain::CommitHead(TxnId writer,
                                                          Timestamp ts) {
  std::lock_guard<SpinLatch> guard(latch_);
  if (!head_ || head_->committed() || head_->writer != writer) {
    return Status::Internal("version chain: commit without pending version");
  }
  head_->commit_ts = ts;
  if (head_->data.deleted) head_->obsolete_since = ts;  // Tombstone.
  if (head_->older) head_->older->obsolete_since = ts;
  return head_->older;  // May be null (first version of the entity).
}

void VersionChain::AbortHead(TxnId writer) {
  std::lock_guard<SpinLatch> guard(latch_);
  if (head_ && !head_->committed() && head_->writer == writer) {
    head_ = head_->older;
  }
}

std::shared_ptr<const Version> VersionChain::Visible(Timestamp start_ts,
                                                     TxnId self) const {
  std::lock_guard<SpinLatch> guard(latch_);
  for (std::shared_ptr<Version> v = head_; v; v = v->older) {
    if (!v->committed()) {
      if (self != kNoTxn && v->writer == self) return v;  // Own write.
      continue;  // Private to another transaction.
    }
    if (v->commit_ts <= start_ts) return v;
  }
  return nullptr;
}

std::shared_ptr<const Version> VersionChain::LatestCommitted() const {
  std::lock_guard<SpinLatch> guard(latch_);
  for (std::shared_ptr<Version> v = head_; v; v = v->older) {
    if (v->committed()) return v;
  }
  return nullptr;
}

std::shared_ptr<Version> VersionChain::Head() const {
  std::lock_guard<SpinLatch> guard(latch_);
  return head_;
}

bool VersionChain::HasUncommitted() const {
  std::lock_guard<SpinLatch> guard(latch_);
  return head_ && !head_->committed();
}

Timestamp VersionChain::NewestCommitTs() const {
  std::lock_guard<SpinLatch> guard(latch_);
  for (std::shared_ptr<Version> v = head_; v; v = v->older) {
    if (v->committed()) return v->commit_ts;
  }
  return kNoTimestamp;
}

bool VersionChain::Remove(const std::shared_ptr<Version>& target) {
  std::lock_guard<SpinLatch> guard(latch_);
  if (!head_) return false;
  if (head_ == target) {
    head_ = head_->older;
    return true;
  }
  for (std::shared_ptr<Version> v = head_; v->older; v = v->older) {
    if (v->older == target) {
      v->older = target->older;
      return true;
    }
  }
  return false;
}

size_t VersionChain::PruneSupersededUpTo(Timestamp watermark) {
  std::lock_guard<SpinLatch> guard(latch_);
  // Find the newest committed version visible at the watermark; everything
  // older is unreachable by any current or future snapshot.
  std::shared_ptr<Version> keep;
  for (keep = head_; keep; keep = keep->older) {
    if (keep->committed() && keep->commit_ts <= watermark) break;
  }
  if (!keep) return 0;
  size_t dropped = 0;
  for (std::shared_ptr<Version> v = keep->older; v; v = v->older) ++dropped;
  keep->older = nullptr;
  return dropped;
}

size_t VersionChain::Length() const {
  std::lock_guard<SpinLatch> guard(latch_);
  size_t n = 0;
  for (std::shared_ptr<Version> v = head_; v; v = v->older) ++n;
  return n;
}

}  // namespace neosi
