// A transaction's read snapshot.

#ifndef NEOSI_MVCC_SNAPSHOT_H_
#define NEOSI_MVCC_SNAPSHOT_H_

#include "common/types.h"

namespace neosi {

/// Identifies what a transaction is allowed to observe: everything committed
/// at or before start_ts, plus its own uncommitted writes (txn_id).
struct Snapshot {
  Timestamp start_ts = kNoTimestamp;
  TxnId txn_id = kNoTxn;

  /// A read-committed "snapshot": sees every committed version. Used to run
  /// the stock-Neo4j baseline through the same read paths.
  static Snapshot Latest(TxnId txn_id) { return {kMaxTimestamp, txn_id}; }
};

}  // namespace neosi

#endif  // NEOSI_MVCC_SNAPSHOT_H_
