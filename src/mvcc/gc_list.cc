#include "mvcc/gc_list.h"

#include <cassert>

namespace neosi {

void GcList::Append(GcEntry entry) {
  std::lock_guard<std::mutex> guard(mu_);
  // Commits apply concurrently and reach the GC list slightly out of
  // timestamp order (the commit pipeline publishes in order but does not
  // serialize application). Arrivals are still nearly sorted, so walking
  // back from the tail finds the insertion point in O(1) amortized and the
  // list stays timestamp-sorted for PopReclaimable's O(#reclaimed) pop.
  auto it = entries_.end();
  while (it != entries_.begin() &&
         std::prev(it)->obsolete_since > entry.obsolete_since) {
    --it;
  }
  entries_.insert(it, std::move(entry));
  const size_t backlog = entries_.size();
  backlog_.store(backlog, std::memory_order_relaxed);
  if (backlog > backlog_high_water_.load(std::memory_order_relaxed)) {
    backlog_high_water_.store(backlog, std::memory_order_relaxed);
  }
  total_appended_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<GcEntry> GcList::PopReclaimable(Timestamp watermark,
                                            size_t max_batch) {
  std::vector<GcEntry> out;
  std::lock_guard<std::mutex> guard(mu_);
  while (!entries_.empty() &&
         entries_.front().obsolete_since <= watermark &&
         (max_batch == 0 || out.size() < max_batch)) {
    out.push_back(std::move(entries_.front()));
    entries_.pop_front();
  }
  backlog_.store(entries_.size(), std::memory_order_relaxed);
  total_reclaimed_.fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

Timestamp GcList::OldestObsoleteSince() const {
  std::lock_guard<std::mutex> guard(mu_);
  return entries_.empty() ? kMaxTimestamp : entries_.front().obsolete_since;
}

}  // namespace neosi
