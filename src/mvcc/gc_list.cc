#include "mvcc/gc_list.h"

#include <algorithm>
#include <cassert>
#include <iterator>

namespace neosi {

void GcList::Append(GcEntry entry) {
  std::lock_guard<std::mutex> guard(mu_);
  // Commits apply concurrently and reach the GC list slightly out of
  // timestamp order (the commit pipeline publishes in order but does not
  // serialize application). Arrivals are still nearly sorted, so walking
  // back from the tail finds the insertion point in O(1) amortized and the
  // list stays timestamp-sorted for PopReclaimable's O(#reclaimed) pop.
  auto it = entries_.end();
  while (it != entries_.begin() &&
         std::prev(it)->obsolete_since > entry.obsolete_since) {
    --it;
  }
  entries_.insert(it, std::move(entry));
  const size_t backlog = entries_.size();
  backlog_.store(backlog, std::memory_order_relaxed);
  if (backlog > backlog_high_water_.load(std::memory_order_relaxed)) {
    backlog_high_water_.store(backlog, std::memory_order_relaxed);
  }
  total_appended_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<GcEntry> GcList::PopReclaimable(Timestamp watermark,
                                            size_t max_batch) {
  std::vector<GcEntry> out;
  std::lock_guard<std::mutex> guard(mu_);
  while (!entries_.empty() &&
         entries_.front().obsolete_since <= watermark &&
         (max_batch == 0 || out.size() < max_batch)) {
    out.push_back(std::move(entries_.front()));
    entries_.pop_front();
  }
  backlog_.store(entries_.size(), std::memory_order_relaxed);
  total_reclaimed_.fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

Timestamp GcList::OldestObsoleteSince() const {
  std::lock_guard<std::mutex> guard(mu_);
  return entries_.empty() ? kMaxTimestamp : entries_.front().obsolete_since;
}

// ---------------------------------------------------------------------------
// ShardedGcList
// ---------------------------------------------------------------------------

ShardedGcList::ShardedGcList(size_t shards)
    : shards_(std::min(std::max<size_t>(shards, 1), kMaxShards)) {}

void ShardedGcList::Append(GcEntry entry) {
  const size_t shard = ShardOf(entry.key);
  // Aggregate gauge BEFORE the entry becomes poppable: the reverse order
  // would let a racing drain's fetch_sub underflow the gauge, and a
  // transiently huge backlog() reading could spuriously trip the
  // backlog-pressure snapshot eviction. Over-reporting by one in-flight
  // entry is harmless everywhere the gauge is read.
  const size_t backlog = backlog_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Monotone max via CAS: unlike the per-shard gauge (updated under the
  // shard mutex), concurrent appenders race here, and a plain
  // load-compare-store could overwrite a higher peak with a stale low one.
  uint64_t seen = backlog_high_water_.load(std::memory_order_relaxed);
  while (backlog > seen &&
         !backlog_high_water_.compare_exchange_weak(
             seen, backlog, std::memory_order_relaxed)) {
  }
  shards_[shard].Append(std::move(entry));
}

std::vector<GcEntry> ShardedGcList::PopReclaimableFromShard(
    size_t shard, Timestamp watermark, size_t max_batch) {
  std::vector<GcEntry> out =
      shards_[shard].PopReclaimable(watermark, max_batch);
  if (!out.empty()) {
    backlog_.fetch_sub(out.size(), std::memory_order_relaxed);
  }
  return out;
}

std::vector<GcEntry> ShardedGcList::PopReclaimable(Timestamp watermark,
                                                   size_t max_batch) {
  std::vector<GcEntry> out;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    if (max_batch != 0 && out.size() >= max_batch) break;
    const size_t remaining = max_batch == 0 ? 0 : max_batch - out.size();
    std::vector<GcEntry> popped =
        PopReclaimableFromShard(shard, watermark, remaining);
    out.insert(out.end(), std::make_move_iterator(popped.begin()),
               std::make_move_iterator(popped.end()));
  }
  return out;
}

Timestamp ShardedGcList::OldestObsoleteSince() const {
  Timestamp min_ts = kMaxTimestamp;
  for (const GcList& shard : shards_) {
    min_ts = std::min(min_ts, shard.OldestObsoleteSince());
  }
  return min_ts;
}

uint64_t ShardedGcList::total_appended() const {
  uint64_t total = 0;
  for (const GcList& shard : shards_) total += shard.total_appended();
  return total;
}

uint64_t ShardedGcList::total_reclaimed() const {
  uint64_t total = 0;
  for (const GcList& shard : shards_) total += shard.total_reclaimed();
  return total;
}

}  // namespace neosi
