#include "mvcc/epoch.h"

#include <algorithm>
#include <functional>
#include <thread>

namespace neosi {

namespace {

size_t ResolveSlots(size_t slots) {
  if (slots != 0) return slots;
  const size_t hw = std::thread::hardware_concurrency();  // 0 when unknown.
  // Generous headroom over the core count: a reader holds its slot only for
  // one chain walk, but oversubscribed thread pools (benches run 8 threads
  // on any box) must not serialize on slot scarcity.
  return std::max<size_t>(64, 4 * hw);
}

}  // namespace

EpochManager::EpochManager(size_t slots)
    : slot_count_(ResolveSlots(slots)), slots_(new Slot[slot_count_]) {}

EpochManager::~EpochManager() {
  for (LimboEntry& entry : limbo_) FreeRetired(std::move(entry.version));
}

size_t EpochManager::Enter() {
  // Probe from a sticky thread-local hint: the same thread re-claims the
  // same slot while uncontended, so the hot path is one CAS on a line this
  // core already owns.
  thread_local size_t hint =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  for (;;) {
    const uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
    for (size_t probe = 0; probe < slot_count_; ++probe) {
      const size_t slot = (hint + probe) % slot_count_;
      uint64_t expected = kIdle;
      if (slots_[slot].epoch.compare_exchange_strong(
              expected, epoch, std::memory_order_seq_cst,
              std::memory_order_relaxed)) {
        hint = slot;
        // Pairs with the fence in Drain(): either the drainer's scan sees
        // this slot occupied (and spares everything we can reach), or our
        // chain-pointer loads below see every unlink the drain freed.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        return slot;
      }
    }
    // Every slot busy (more concurrent readers than slots — only plausible
    // with a tiny configured slot count). Yield and retry with a fresh
    // epoch so a long wait never publishes a stale one.
    std::this_thread::yield();
  }
}

void EpochManager::Retire(std::shared_ptr<Version> version) {
  if (!version) return;
  // The unlink stores precede this call in the retiring thread; the seq_cst
  // global load below orders them against reader entry (see epoch.h).
  const uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> guard(limbo_mu_);
    limbo_.push_back({std::move(version), epoch});
    limbo_size_.store(limbo_.size(), std::memory_order_relaxed);
  }
  total_retired_.fetch_add(1, std::memory_order_relaxed);
}

size_t EpochManager::Drain() {
  std::vector<LimboEntry> eligible;
  {
    std::lock_guard<std::mutex> guard(limbo_mu_);
    if (limbo_.empty()) return 0;
    // Pairs with the fence in Enter(); must precede the slot scan.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    uint64_t min_active = UINT64_MAX;
    for (size_t i = 0; i < slot_count_; ++i) {
      const uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
      if (e != kIdle) min_active = std::min(min_active, e);
    }
    std::vector<LimboEntry> keep;
    keep.reserve(limbo_.size());
    for (LimboEntry& entry : limbo_) {
      if (entry.retired_epoch < min_active) {
        eligible.push_back(std::move(entry));
      } else {
        keep.push_back(std::move(entry));
      }
    }
    limbo_.swap(keep);
    limbo_size_.store(limbo_.size(), std::memory_order_relaxed);
  }
  // Free outside the mutex: unwinding a retired chain suffix is O(length).
  for (LimboEntry& entry : eligible) FreeRetired(std::move(entry.version));
  total_freed_.fetch_add(eligible.size(), std::memory_order_relaxed);
  return eligible.size();
}

uint64_t EpochManager::MinActiveEpoch() const {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  uint64_t min_active = UINT64_MAX;
  for (size_t i = 0; i < slot_count_; ++i) {
    const uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
    if (e != kIdle) min_active = std::min(min_active, e);
  }
  return min_active;
}

void EpochManager::FreeRetired(std::shared_ptr<Version> version) {
  while (version) {
    if (version.use_count() > 1) break;  // Another owner finishes the job.
    std::shared_ptr<Version> next = std::move(version->older);
    version.reset();
    version = std::move(next);
  }
}

}  // namespace neosi
