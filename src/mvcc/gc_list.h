// The paper's garbage-collection structure (§4): obsolete versions are
// "threaded with a double linked list sorted by timestamp to enable to
// perform the garbage collection just traversing those versions that must be
// garbage collected".
//
// Commit timestamps are handed out monotonically and commits complete almost
// in that order, so inserting from the tail keeps the list sorted in O(1)
// amortized; reclamation pops from the head while the head is reclaimable,
// touching nothing else. This is what makes GC cost proportional to the
// number of versions reclaimed (experiment E8), in contrast with the
// full-scan vacuum baseline.

// Sharding (GC daemon sharding): one global list + one drain thread become
// the reclamation bottleneck at high core counts — every committer's Append
// funnels through one mutex and one thread walks every entry. ShardedGcList
// splits the queue by entity key: each shard keeps the paper's timestamp
// order independently (reclaimability is a per-version property — a version
// is dead once the watermark passes its obsolete_since, regardless of what
// sits in other shards), appenders only contend within a shard, and one
// drain worker per shard reclaims in parallel.

#ifndef NEOSI_MVCC_GC_LIST_H_
#define NEOSI_MVCC_GC_LIST_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "mvcc/version.h"

namespace neosi {

/// One obsolete version awaiting reclamation.
struct GcEntry {
  EntityKey key;
  std::shared_ptr<Version> version;
  /// The sort key: commit timestamp of the superseding version (a
  /// tombstone's own timestamp for tombstones). The version is reclaimable
  /// once every active transaction's start timestamp >= this.
  Timestamp obsolete_since = kNoTimestamp;
};

/// Thread-safe timestamp-sorted reclamation queue.
class GcList {
 public:
  /// Inserts in timestamp order. Entries arrive NEARLY sorted (concurrent
  /// commits finish slightly out of timestamp order), so insertion walks
  /// back from the tail: O(1) amortized.
  void Append(GcEntry entry);

  /// Watermark-bounded drain: pops and returns every head entry with
  /// obsolete_since <= watermark (up to max_batch; 0 = unlimited). Cost is
  /// O(#returned) — entries above the watermark are never touched.
  std::vector<GcEntry> PopReclaimable(Timestamp watermark,
                                      size_t max_batch = 0);

  /// Entries currently queued. Lock-free: commit publication reads this on
  /// every commit to decide whether to nudge the GC daemon, so it must not
  /// contend with concurrent Append/PopReclaimable.
  size_t backlog() const { return backlog_.load(std::memory_order_relaxed); }

  /// Alias of backlog() (kept for older call sites).
  size_t size() const { return backlog(); }

  /// Largest backlog ever observed at an Append (pacing stat). Lock-free.
  uint64_t backlog_high_water() const {
    return backlog_high_water_.load(std::memory_order_relaxed);
  }

  /// obsolete_since of the head entry (kMaxTimestamp when empty).
  Timestamp OldestObsoleteSince() const;

  /// Total entries ever appended / reclaimed (stats for E8). Lock-free.
  uint64_t total_appended() const {
    return total_appended_.load(std::memory_order_relaxed);
  }
  uint64_t total_reclaimed() const {
    return total_reclaimed_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::list<GcEntry> entries_;
  std::atomic<size_t> backlog_{0};
  std::atomic<uint64_t> backlog_high_water_{0};
  std::atomic<uint64_t> total_appended_{0};
  std::atomic<uint64_t> total_reclaimed_{0};
};

/// Entity-key-sharded reclamation queue: N independent timestamp-sorted
/// GcLists. Appends hash the entity key to a shard (a chain's obsolete
/// versions always land in the same shard, so per-entity batching in the
/// collector still works); each shard is drained by its own worker. The
/// aggregate backlog gauge stays a single lock-free load — commit
/// publication reads it on every commit to decide whether to nudge the
/// drain workers, and the snapshot lifecycle policy reads it as its
/// backlog-pressure trigger.
class ShardedGcList {
 public:
  /// `shards` is clamped to [1, kMaxShards]; 1 reproduces the unsharded
  /// behaviour exactly.
  explicit ShardedGcList(size_t shards = 1);

  static constexpr size_t kMaxShards = 64;

  /// Inserts into the entity's shard, keeping that shard timestamp-sorted
  /// (near-sorted tail insert, O(1) amortized — see GcList::Append).
  void Append(GcEntry entry);

  /// Watermark-bounded drain of ONE shard (the per-worker path). Cost is
  /// O(#returned) within the shard.
  std::vector<GcEntry> PopReclaimableFromShard(size_t shard,
                                               Timestamp watermark,
                                               size_t max_batch = 0);

  /// Watermark-bounded drain across ALL shards (the manual RunGc() /
  /// single-threaded path). Entries are in timestamp order within each
  /// shard but only shard-concatenated globally — no consumer requires a
  /// global sort.
  std::vector<GcEntry> PopReclaimable(Timestamp watermark,
                                      size_t max_batch = 0);

  size_t shard_count() const { return shards_.size(); }
  size_t ShardOf(const EntityKey& key) const {
    return std::hash<EntityKey>{}(key) % shards_.size();
  }

  /// Entries currently queued across all shards. One lock-free load.
  size_t backlog() const { return backlog_.load(std::memory_order_relaxed); }

  /// Alias of backlog() (kept for older call sites).
  size_t size() const { return backlog(); }

  /// Entries currently queued in one shard. Lock-free.
  size_t shard_backlog(size_t shard) const {
    return shards_[shard].backlog();
  }

  /// Largest aggregate backlog ever observed at an Append. Lock-free.
  uint64_t backlog_high_water() const {
    return backlog_high_water_.load(std::memory_order_relaxed);
  }

  /// Minimum head obsolete_since across shards (kMaxTimestamp when all are
  /// empty): the aggregate "is anything reclaimable / is the backlog
  /// pinned" probe.
  Timestamp OldestObsoleteSince() const;

  /// Head obsolete_since of one shard (kMaxTimestamp when empty).
  Timestamp ShardOldestObsoleteSince(size_t shard) const {
    return shards_[shard].OldestObsoleteSince();
  }

  /// Totals across all shards (stats; re-appended purge-deferred entries
  /// count again on both sides, so backlog == appended - reclaimed holds).
  uint64_t total_appended() const;
  uint64_t total_reclaimed() const;

 private:
  // Shards hold the sorted lists and their per-shard gauges; the aggregate
  // gauges below are maintained here so the hot commit-path read stays one
  // load instead of a shard sweep.
  std::vector<GcList> shards_;
  std::atomic<size_t> backlog_{0};
  std::atomic<uint64_t> backlog_high_water_{0};
};

}  // namespace neosi

#endif  // NEOSI_MVCC_GC_LIST_H_
