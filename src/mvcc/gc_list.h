// The paper's garbage-collection structure (§4): obsolete versions are
// "threaded with a double linked list sorted by timestamp to enable to
// perform the garbage collection just traversing those versions that must be
// garbage collected".
//
// Commit timestamps are handed out monotonically and commits complete almost
// in that order, so inserting from the tail keeps the list sorted in O(1)
// amortized; reclamation pops from the head while the head is reclaimable,
// touching nothing else. This is what makes GC cost proportional to the
// number of versions reclaimed (experiment E8), in contrast with the
// full-scan vacuum baseline.

#ifndef NEOSI_MVCC_GC_LIST_H_
#define NEOSI_MVCC_GC_LIST_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "mvcc/version.h"

namespace neosi {

/// One obsolete version awaiting reclamation.
struct GcEntry {
  EntityKey key;
  std::shared_ptr<Version> version;
  /// The sort key: commit timestamp of the superseding version (a
  /// tombstone's own timestamp for tombstones). The version is reclaimable
  /// once every active transaction's start timestamp >= this.
  Timestamp obsolete_since = kNoTimestamp;
};

/// Thread-safe timestamp-sorted reclamation queue.
class GcList {
 public:
  /// Inserts in timestamp order. Entries arrive NEARLY sorted (concurrent
  /// commits finish slightly out of timestamp order), so insertion walks
  /// back from the tail: O(1) amortized.
  void Append(GcEntry entry);

  /// Pops and returns every head entry with obsolete_since <= watermark
  /// (up to max_batch; 0 = unlimited). Cost is O(#returned).
  std::vector<GcEntry> PopReclaimable(Timestamp watermark,
                                      size_t max_batch = 0);

  /// Entries currently queued.
  size_t size() const;

  /// obsolete_since of the head entry (kMaxTimestamp when empty).
  Timestamp OldestObsoleteSince() const;

  /// Total entries ever appended / reclaimed (stats for E8).
  uint64_t total_appended() const;
  uint64_t total_reclaimed() const;

 private:
  mutable std::mutex mu_;
  std::list<GcEntry> entries_;
  uint64_t total_appended_ = 0;
  uint64_t total_reclaimed_ = 0;
};

}  // namespace neosi

#endif  // NEOSI_MVCC_GC_LIST_H_
