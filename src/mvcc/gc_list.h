// The paper's garbage-collection structure (§4): obsolete versions are
// "threaded with a double linked list sorted by timestamp to enable to
// perform the garbage collection just traversing those versions that must be
// garbage collected".
//
// Commit timestamps are handed out monotonically and commits complete almost
// in that order, so inserting from the tail keeps the list sorted in O(1)
// amortized; reclamation pops from the head while the head is reclaimable,
// touching nothing else. This is what makes GC cost proportional to the
// number of versions reclaimed (experiment E8), in contrast with the
// full-scan vacuum baseline.

#ifndef NEOSI_MVCC_GC_LIST_H_
#define NEOSI_MVCC_GC_LIST_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "mvcc/version.h"

namespace neosi {

/// One obsolete version awaiting reclamation.
struct GcEntry {
  EntityKey key;
  std::shared_ptr<Version> version;
  /// The sort key: commit timestamp of the superseding version (a
  /// tombstone's own timestamp for tombstones). The version is reclaimable
  /// once every active transaction's start timestamp >= this.
  Timestamp obsolete_since = kNoTimestamp;
};

/// Thread-safe timestamp-sorted reclamation queue.
class GcList {
 public:
  /// Inserts in timestamp order. Entries arrive NEARLY sorted (concurrent
  /// commits finish slightly out of timestamp order), so insertion walks
  /// back from the tail: O(1) amortized.
  void Append(GcEntry entry);

  /// Watermark-bounded drain: pops and returns every head entry with
  /// obsolete_since <= watermark (up to max_batch; 0 = unlimited). Cost is
  /// O(#returned) — entries above the watermark are never touched.
  std::vector<GcEntry> PopReclaimable(Timestamp watermark,
                                      size_t max_batch = 0);

  /// Entries currently queued. Lock-free: commit publication reads this on
  /// every commit to decide whether to nudge the GC daemon, so it must not
  /// contend with concurrent Append/PopReclaimable.
  size_t backlog() const { return backlog_.load(std::memory_order_relaxed); }

  /// Alias of backlog() (kept for older call sites).
  size_t size() const { return backlog(); }

  /// Largest backlog ever observed at an Append (pacing stat). Lock-free.
  uint64_t backlog_high_water() const {
    return backlog_high_water_.load(std::memory_order_relaxed);
  }

  /// obsolete_since of the head entry (kMaxTimestamp when empty).
  Timestamp OldestObsoleteSince() const;

  /// Total entries ever appended / reclaimed (stats for E8). Lock-free.
  uint64_t total_appended() const {
    return total_appended_.load(std::memory_order_relaxed);
  }
  uint64_t total_reclaimed() const {
    return total_reclaimed_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::list<GcEntry> entries_;
  std::atomic<size_t> backlog_{0};
  std::atomic<uint64_t> backlog_high_water_{0};
  std::atomic<uint64_t> total_appended_{0};
  std::atomic<uint64_t> total_reclaimed_{0};
};

}  // namespace neosi

#endif  // NEOSI_MVCC_GC_LIST_H_
