// In-memory version records (paper §3/§4).
//
// Each node / relationship cached in the Object Cache owns a list of
// versions. A version is immutable once committed; uncommitted versions are
// private to their writer transaction (visible to nobody else, but readable
// by the writer itself: read-your-own-writes).

#ifndef NEOSI_MVCC_VERSION_H_
#define NEOSI_MVCC_VERSION_H_

#include <memory>
#include <vector>

#include "common/property_value.h"
#include "common/types.h"

namespace neosi {

/// The logical content of one version of a node or relationship.
///
/// Relationship topology (src/dst/type) is immutable and lives on the cached
/// object, not in versions; versions carry the mutable state: labels,
/// properties and existence.
struct VersionData {
  /// Tombstone flag (paper §4): the entity is deleted as of this version but
  /// the version is retained until no active transaction can read an older
  /// one.
  bool deleted = false;
  /// Node labels (empty for relationships).
  std::vector<LabelId> labels;
  PropertyMap props;

  /// Approximate heap footprint, for cache accounting and experiment E9.
  size_t ApproximateSize() const {
    size_t n = sizeof(VersionData) + labels.capacity() * sizeof(LabelId);
    for (const auto& [k, v] : props) {
      n += sizeof(k) + v.ApproximateSize();
    }
    return n;
  }
};

/// One version in an entity's version list.
struct Version {
  /// Commit timestamp; kNoTimestamp while the writing transaction is active.
  Timestamp commit_ts = kNoTimestamp;
  /// Writer transaction (used for read-your-own-writes while uncommitted).
  TxnId writer = kNoTxn;
  VersionData data;
  /// Next-older version (newest-first chain).
  std::shared_ptr<Version> older;

  /// Commit timestamp of the version that superseded this one; set when the
  /// version is threaded onto the garbage-collection list (paper §4). For a
  /// tombstone this is its own commit timestamp.
  Timestamp obsolete_since = kNoTimestamp;

  bool committed() const { return commit_ts != kNoTimestamp; }
};

}  // namespace neosi

#endif  // NEOSI_MVCC_VERSION_H_
