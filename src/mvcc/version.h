// In-memory version records (paper §3/§4).
//
// Each node / relationship cached in the Object Cache owns a list of
// versions. A version is immutable once committed; uncommitted versions are
// private to their writer transaction (visible to nobody else, but readable
// by the writer itself: read-your-own-writes).

#ifndef NEOSI_MVCC_VERSION_H_
#define NEOSI_MVCC_VERSION_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/property_value.h"
#include "common/types.h"

namespace neosi {

/// The logical content of one version of a node or relationship.
///
/// Relationship topology (src/dst/type) is immutable and lives on the cached
/// object, not in versions; versions carry the mutable state: labels,
/// properties and existence.
struct VersionData {
  /// Tombstone flag (paper §4): the entity is deleted as of this version but
  /// the version is retained until no active transaction can read an older
  /// one.
  bool deleted = false;
  /// Node labels (empty for relationships).
  std::vector<LabelId> labels;
  PropertyMap props;

  /// Approximate heap footprint, for cache accounting and experiment E9.
  size_t ApproximateSize() const {
    size_t n = sizeof(VersionData) + labels.capacity() * sizeof(LabelId);
    for (const auto& [k, v] : props) {
      n += sizeof(k) + v.ApproximateSize();
    }
    return n;
  }
};

/// One version in an entity's version list.
///
/// Concurrency contract (latch-free read path): `commit_ts` is the
/// publication point — CommitHead's release store of the timestamp makes
/// `data` (written strictly before, by the same transaction thread)
/// visible to any reader whose acquire load observes it. `writer` and the
/// initial `data` are published by the chain-head release store at install
/// time. `older` (the OWNING link) is mutated only under the chain latch;
/// latch-free walks follow `older_raw`, a raw mirror maintained by the same
/// latched mutators. `obsolete_since` is written under the chain latch and
/// read only by GC/vacuum code — never on the latch-free path.
///
/// enable_shared_from_this lets a latch-free walk hand back an owning
/// pointer from a raw one: any version reachable inside an epoch guard is
/// owned by its chain predecessor or by the epoch limbo, so its control
/// block is live.
struct Version : std::enable_shared_from_this<Version> {
  /// Commit timestamp; kNoTimestamp while the writing transaction is active.
  std::atomic<Timestamp> commit_ts{kNoTimestamp};
  /// Writer transaction (used for read-your-own-writes while uncommitted).
  TxnId writer = kNoTxn;
  VersionData data;
  /// Next-older version (newest-first chain). Owning link; chain-latched.
  std::shared_ptr<Version> older;
  /// Raw mirror of `older` for latch-free traversal. Stays intact when this
  /// version is retired, so a reader standing here mid-walk keeps going.
  std::atomic<Version*> older_raw{nullptr};

  /// Commit timestamp of the version that superseded this one; set when the
  /// version is threaded onto the garbage-collection list (paper §4). For a
  /// tombstone this is its own commit timestamp.
  Timestamp obsolete_since = kNoTimestamp;

  bool committed() const {
    return commit_ts.load(std::memory_order_acquire) != kNoTimestamp;
  }
};

}  // namespace neosi

#endif  // NEOSI_MVCC_VERSION_H_
