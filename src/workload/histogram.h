// Log-bucketed latency histogram (fixed memory, lock-free merge-friendly).

#ifndef NEOSI_WORKLOAD_HISTOGRAM_H_
#define NEOSI_WORKLOAD_HISTOGRAM_H_

#include <array>
#include <cstdint>

namespace neosi {

/// Records values (nanoseconds, counts, bytes...) into 2^k log buckets with
/// 16 linear sub-buckets each; percentile error < ~6%.
class Histogram {
 public:
  void Record(uint64_t value);

  /// Merges another histogram into this one (thread-local then merge).
  void Merge(const Histogram& other);

  uint64_t Count() const { return count_; }
  uint64_t Min() const { return count_ ? min_ : 0; }
  uint64_t Max() const { return max_; }
  double Mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Approximate value at percentile p in [0, 100].
  uint64_t Percentile(double p) const;

  void Reset();

 private:
  static constexpr int kLogBuckets = 40;
  static constexpr int kSubBuckets = 16;

  static int BucketFor(uint64_t value);
  static uint64_t BucketMidpoint(int bucket);

  std::array<uint64_t, kLogBuckets * kSubBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace neosi

#endif  // NEOSI_WORKLOAD_HISTOGRAM_H_
