// Zipfian key sampler for skewed-contention workloads (experiment E4).

#ifndef NEOSI_WORKLOAD_ZIPF_H_
#define NEOSI_WORKLOAD_ZIPF_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace neosi {

/// Samples from {0..n-1} with P(k) proportional to 1/(k+1)^theta.
/// theta = 0 is uniform; 0.99 is the YCSB default "heavy skew".
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta, uint64_t seed = 42)
      : rng_(seed), cdf_(n) {
    double sum = 0;
    for (uint64_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
      cdf_[k] = sum;
    }
    for (uint64_t k = 0; k < n; ++k) cdf_[k] /= sum;
  }

  uint64_t Next() {
    const double u = rng_.NextDouble();
    // Binary search the CDF.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  Random rng_;
  std::vector<double> cdf_;
};

}  // namespace neosi

#endif  // NEOSI_WORKLOAD_ZIPF_H_
