// Multithreaded transaction driver for experiments: runs a per-thread body
// for a fixed wall-clock duration or operation count, tallying commits,
// retryable aborts and latency percentiles.

#ifndef NEOSI_WORKLOAD_DRIVER_H_
#define NEOSI_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "workload/histogram.h"

namespace neosi {

/// Aggregate outcome of a driver run.
struct DriverResult {
  uint64_t committed = 0;
  uint64_t aborted = 0;     ///< Retryable aborts (conflict / deadlock).
  uint64_t errors = 0;      ///< Non-retryable failures (bugs in the workload).
  double seconds = 0;
  Histogram latency_ns;     ///< Latency of committed operations.

  double Throughput() const {
    return seconds > 0 ? static_cast<double>(committed) / seconds : 0;
  }
  double AbortRate() const {
    const uint64_t attempts = committed + aborted;
    return attempts ? static_cast<double>(aborted) /
                          static_cast<double>(attempts)
                    : 0;
  }
};

/// The per-attempt body: executes one transaction attempt and returns its
/// status. `thread` is the worker index, `op` the per-thread attempt count.
using TxnBody = std::function<Status(int thread, uint64_t op)>;

/// Runs `body` on `threads` workers for `duration_ms` wall-clock
/// milliseconds. Retryable aborts are counted and the op retried (as a new
/// attempt).
DriverResult RunForDuration(int threads, uint64_t duration_ms,
                            const TxnBody& body);

/// Runs `body` until each worker completes `ops_per_thread` committed
/// operations (aborts retry and are tallied).
DriverResult RunForOps(int threads, uint64_t ops_per_thread,
                       const TxnBody& body);

}  // namespace neosi

#endif  // NEOSI_WORKLOAD_DRIVER_H_
