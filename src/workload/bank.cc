#include "workload/bank.h"

namespace neosi {

Result<Bank> BuildBank(GraphDatabase& db, uint64_t n, int64_t balance) {
  Bank bank;
  bank.initial_balance_each = balance;
  auto txn = db.Begin(IsolationLevel::kSnapshotIsolation);
  for (uint64_t i = 0; i < n; ++i) {
    auto node = txn->CreateNode(
        {"Account"}, {{"balance", PropertyValue(balance)},
                      {"number", PropertyValue(static_cast<int64_t>(i))}});
    if (!node.ok()) return node.status();
    bank.accounts.push_back(*node);
    if ((i + 1) % 512 == 0) {
      NEOSI_RETURN_IF_ERROR(txn->Commit());
      txn = db.Begin(IsolationLevel::kSnapshotIsolation);
    }
  }
  NEOSI_RETURN_IF_ERROR(txn->Commit());
  return bank;
}

Status Transfer(GraphDatabase& db, const Bank& bank, uint64_t a, uint64_t b,
                int64_t amount, IsolationLevel isolation) {
  if (a == b) return Status::OK();
  auto txn = db.Begin(isolation);
  const NodeId from = bank.accounts[a % bank.accounts.size()];
  const NodeId to = bank.accounts[b % bank.accounts.size()];

  auto from_balance = txn->GetNodeProperty(from, "balance");
  NEOSI_RETURN_IF_ERROR(from_balance.status());
  auto to_balance = txn->GetNodeProperty(to, "balance");
  NEOSI_RETURN_IF_ERROR(to_balance.status());

  NEOSI_RETURN_IF_ERROR(txn->SetNodeProperty(
      from, "balance", PropertyValue(from_balance->AsInt() - amount)));
  NEOSI_RETURN_IF_ERROR(txn->SetNodeProperty(
      to, "balance", PropertyValue(to_balance->AsInt() + amount)));
  return txn->Commit();
}

Result<int64_t> Audit(GraphDatabase& db, const Bank& bank,
                      IsolationLevel isolation) {
  auto txn = db.Begin(isolation);
  int64_t total = 0;
  for (NodeId account : bank.accounts) {
    auto balance = txn->GetNodeProperty(account, "balance");
    if (!balance.ok()) return balance.status();
    total += balance->AsInt();
  }
  NEOSI_RETURN_IF_ERROR(txn->Commit());
  return total;
}

Result<OnCallWard> BuildWard(GraphDatabase& db) {
  auto txn = db.Begin(IsolationLevel::kSnapshotIsolation);
  OnCallWard ward;
  auto a = txn->CreateNode({"Doctor"}, {{"name", PropertyValue("alice")},
                                        {"on_call", PropertyValue(true)}});
  if (!a.ok()) return a.status();
  auto b = txn->CreateNode({"Doctor"}, {{"name", PropertyValue("bob")},
                                        {"on_call", PropertyValue(true)}});
  if (!b.ok()) return b.status();
  ward.doctor_a = *a;
  ward.doctor_b = *b;
  NEOSI_RETURN_IF_ERROR(txn->Commit());
  return ward;
}

Status TryGoOffCall(GraphDatabase& db, const OnCallWard& ward, bool doctor_a,
                    IsolationLevel isolation) {
  auto txn = db.Begin(isolation);
  const NodeId self = doctor_a ? ward.doctor_a : ward.doctor_b;
  const NodeId other = doctor_a ? ward.doctor_b : ward.doctor_a;

  // Read the OTHER doctor's status (this read is what write skew exploits:
  // it is not protected by any write lock under SI).
  auto other_on_call = txn->GetNodeProperty(other, "on_call");
  NEOSI_RETURN_IF_ERROR(other_on_call.status());
  if (other_on_call->AsBool()) {
    NEOSI_RETURN_IF_ERROR(
        txn->SetNodeProperty(self, "on_call", PropertyValue(false)));
  }
  return txn->Commit();
}

Result<bool> WardConstraintHolds(GraphDatabase& db, const OnCallWard& ward) {
  auto txn = db.Begin(IsolationLevel::kSnapshotIsolation);
  auto a = txn->GetNodeProperty(ward.doctor_a, "on_call");
  if (!a.ok()) return a.status();
  auto b = txn->GetNodeProperty(ward.doctor_b, "on_call");
  if (!b.ok()) return b.status();
  NEOSI_RETURN_IF_ERROR(txn->Commit());
  return a->AsBool() || b->AsBool();
}

}  // namespace neosi
