// Bank workload: Account nodes with balances, transfer transactions and a
// full-sweep audit. Under snapshot isolation the audit always observes the
// invariant total; under read committed it can observe torn totals
// (unrepeatable reads across the sweep). Also provides the classic
// doctors-on-call WRITE SKEW workload — the one anomaly SI admits (§1) —
// for experiment E10.

#ifndef NEOSI_WORKLOAD_BANK_H_
#define NEOSI_WORKLOAD_BANK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph_database.h"

namespace neosi {

/// A set of accounts with a conserved total balance.
struct Bank {
  std::vector<NodeId> accounts;
  int64_t initial_balance_each = 0;

  int64_t ExpectedTotal() const {
    return static_cast<int64_t>(accounts.size()) * initial_balance_each;
  }
};

/// Creates `n` Account nodes, each holding `balance` units.
Result<Bank> BuildBank(GraphDatabase& db, uint64_t n, int64_t balance);

/// Transfers `amount` from one random-ish account pair (a -> b) in its own
/// transaction at `isolation`. Conserves the total on commit.
Status Transfer(GraphDatabase& db, const Bank& bank, uint64_t a, uint64_t b,
                int64_t amount, IsolationLevel isolation);

/// Sweeps all accounts in one transaction and returns the observed total.
Result<int64_t> Audit(GraphDatabase& db, const Bank& bank,
                      IsolationLevel isolation);

/// Doctors-on-call write-skew workload (E10): two doctors per ward, the
/// constraint "at least one on call" enforced by read-then-write inside each
/// transaction. SI permits both doctors to go off call concurrently (write
/// skew); serializable would not.
struct OnCallWard {
  NodeId doctor_a = kInvalidNodeId;
  NodeId doctor_b = kInvalidNodeId;
};

Result<OnCallWard> BuildWard(GraphDatabase& db);

/// One "go off call if the other doctor is still on call" transaction for
/// the given doctor. Returns OK on commit (whether or not it went off call);
/// retryable status on conflict.
Status TryGoOffCall(GraphDatabase& db, const OnCallWard& ward, bool doctor_a,
                    IsolationLevel isolation);

/// True if the ward constraint (>= 1 doctor on call) holds.
Result<bool> WardConstraintHolds(GraphDatabase& db, const OnCallWard& ward);

}  // namespace neosi

#endif  // NEOSI_WORKLOAD_BANK_H_
