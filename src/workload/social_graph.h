// Social-network workload generator: Person nodes on a ring with random
// chords (connected, bounded degree) — the graph substrate for experiments
// E3 / E5 / E11 and the social_network example.

#ifndef NEOSI_WORKLOAD_SOCIAL_GRAPH_H_
#define NEOSI_WORKLOAD_SOCIAL_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph_database.h"

namespace neosi {

/// Shape parameters for the generated graph.
struct SocialGraphSpec {
  uint64_t people = 1000;
  /// Random chord edges per person in addition to the ring edge.
  uint64_t extra_edges_per_person = 2;
  uint64_t seed = 42;
  /// Commit every this many created entities (bounds txn sizes).
  uint64_t batch_size = 512;
};

/// The generated handles.
struct SocialGraph {
  std::vector<NodeId> people;
  std::vector<RelId> friendships;
};

/// Builds the graph inside `db` (labels: Person; relationship type: KNOWS;
/// properties: name, age on nodes, since on edges).
Result<SocialGraph> BuildSocialGraph(GraphDatabase& db,
                                     const SocialGraphSpec& spec);

}  // namespace neosi

#endif  // NEOSI_WORKLOAD_SOCIAL_GRAPH_H_
