#include "workload/social_graph.h"

#include "common/random.h"

namespace neosi {

Result<SocialGraph> BuildSocialGraph(GraphDatabase& db,
                                     const SocialGraphSpec& spec) {
  SocialGraph graph;
  graph.people.reserve(spec.people);
  Random rng(spec.seed);

  // People.
  {
    auto txn = db.Begin(IsolationLevel::kSnapshotIsolation);
    uint64_t in_batch = 0;
    for (uint64_t i = 0; i < spec.people; ++i) {
      auto node = txn->CreateNode(
          {"Person"},
          {{"name", PropertyValue("person-" + std::to_string(i))},
           {"age", PropertyValue(static_cast<int64_t>(18 + rng.Uniform(60)))}});
      if (!node.ok()) return node.status();
      graph.people.push_back(*node);
      if (++in_batch >= spec.batch_size) {
        NEOSI_RETURN_IF_ERROR(txn->Commit());
        txn = db.Begin(IsolationLevel::kSnapshotIsolation);
        in_batch = 0;
      }
    }
    NEOSI_RETURN_IF_ERROR(txn->Commit());
  }

  // Ring edges (guarantee connectivity) + random chords.
  {
    auto txn = db.Begin(IsolationLevel::kSnapshotIsolation);
    uint64_t in_batch = 0;
    auto add_edge = [&](NodeId a, NodeId b) -> Status {
      auto rel = txn->CreateRelationship(
          a, b, "KNOWS",
          {{"since", PropertyValue(static_cast<int64_t>(
                         2000 + rng.Uniform(26)))}});
      if (!rel.ok()) return rel.status();
      graph.friendships.push_back(*rel);
      if (++in_batch >= spec.batch_size) {
        NEOSI_RETURN_IF_ERROR(txn->Commit());
        txn = db.Begin(IsolationLevel::kSnapshotIsolation);
        in_batch = 0;
      }
      return Status::OK();
    };

    for (uint64_t i = 0; i < spec.people; ++i) {
      NEOSI_RETURN_IF_ERROR(
          add_edge(graph.people[i], graph.people[(i + 1) % spec.people]));
    }
    for (uint64_t i = 0; i < spec.people; ++i) {
      for (uint64_t e = 0; e < spec.extra_edges_per_person; ++e) {
        uint64_t j = rng.Uniform(spec.people);
        if (j == i) j = (j + 1) % spec.people;
        NEOSI_RETURN_IF_ERROR(add_edge(graph.people[i], graph.people[j]));
      }
    }
    NEOSI_RETURN_IF_ERROR(txn->Commit());
  }
  return graph;
}

}  // namespace neosi
