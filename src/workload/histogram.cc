#include "workload/histogram.h"

#include <bit>
#include <cstddef>

namespace neosi {

int Histogram::BucketFor(uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  const int log = 63 - std::countl_zero(value);
  const int base = (log - 3) * kSubBuckets;  // log >= 4 here.
  const int sub =
      static_cast<int>((value >> (log - 4)) & (kSubBuckets - 1));
  const int idx = base + sub;
  return idx < kLogBuckets * kSubBuckets ? idx : kLogBuckets * kSubBuckets - 1;
}

uint64_t Histogram::BucketMidpoint(int bucket) {
  if (bucket < kSubBuckets) return static_cast<uint64_t>(bucket);
  const int log = bucket / kSubBuckets + 3;
  const int sub = bucket % kSubBuckets;
  const uint64_t base = 1ULL << log;
  const uint64_t width = base / kSubBuckets;
  return base + width * sub + width / 2;
}

void Histogram::Record(uint64_t value) {
  ++buckets_[BucketFor(value)];
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  const uint64_t target =
      static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return BucketMidpoint(static_cast<int>(i));
  }
  return max_;
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

}  // namespace neosi
