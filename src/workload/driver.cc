#include "workload/driver.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace neosi {

namespace {

struct ThreadTally {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t errors = 0;
  Histogram latency;
};

DriverResult Run(int threads, const std::function<bool(uint64_t)>& keep_going,
                 const TxnBody& body, bool per_thread_quota,
                 uint64_t quota) {
  std::vector<ThreadTally> tallies(threads);
  std::atomic<bool> stop{false};
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadTally& tally = tallies[t];
      uint64_t op = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (per_thread_quota) {
          if (tally.committed >= quota) break;
        } else if (!keep_going(op)) {
          break;
        }
        const auto op_start = std::chrono::steady_clock::now();
        Status s = body(t, op);
        const auto op_end = std::chrono::steady_clock::now();
        if (s.ok()) {
          ++tally.committed;
          tally.latency.Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(op_end -
                                                                   op_start)
                  .count()));
        } else if (s.IsRetryable()) {
          ++tally.aborted;
        } else {
          ++tally.errors;
        }
        ++op;
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const auto t1 = std::chrono::steady_clock::now();

  DriverResult result;
  for (const ThreadTally& tally : tallies) {
    result.committed += tally.committed;
    result.aborted += tally.aborted;
    result.errors += tally.errors;
    result.latency_ns.Merge(tally.latency);
  }
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  return result;
}

}  // namespace

DriverResult RunForDuration(int threads, uint64_t duration_ms,
                            const TxnBody& body) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(duration_ms);
  return Run(
      threads,
      [deadline](uint64_t) {
        return std::chrono::steady_clock::now() < deadline;
      },
      body, /*per_thread_quota=*/false, 0);
}

DriverResult RunForOps(int threads, uint64_t ops_per_thread,
                       const TxnBody& body) {
  return Run(
      threads, [](uint64_t) { return true; }, body,
      /*per_thread_quota=*/true, ops_per_thread);
}

}  // namespace neosi
