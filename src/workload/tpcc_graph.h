// A TPC-C-flavoured order-processing workload on the graph model, for
// experiment E10: the paper notes (§1) that "TPC-C never observes an
// anomaly when running on an SI database" — its transactions' read and
// write sets overlap in ways first-updater-wins already serializes, so SI
// produces serializable executions for it.
//
// Model: Warehouse -[STOCKS]-> Item nodes with quantity; Customer nodes;
// NewOrder creates an Order node linked to the customer and decrements the
// stock of its items; Payment updates a customer's balance and the
// warehouse YTD.

#ifndef NEOSI_WORKLOAD_TPCC_GRAPH_H_
#define NEOSI_WORKLOAD_TPCC_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph_database.h"

namespace neosi {

struct TpccSpec {
  uint64_t warehouses = 2;
  uint64_t items_per_warehouse = 100;
  uint64_t customers_per_warehouse = 20;
  int64_t initial_stock = 1000;
  uint64_t seed = 7;
};

struct TpccGraph {
  std::vector<NodeId> warehouses;
  // items[w] and customers[w] belong to warehouse w.
  std::vector<std::vector<NodeId>> items;
  std::vector<std::vector<NodeId>> customers;
  TpccSpec spec;

  /// Conserved invariant: for each warehouse, sum(stock) + sum(ordered
  /// quantities over committed orders) == items * initial_stock.
  int64_t ExpectedStockPlusOrdered(uint64_t /*warehouse*/) const {
    return static_cast<int64_t>(spec.items_per_warehouse) *
           spec.initial_stock;
  }
};

Result<TpccGraph> BuildTpccGraph(GraphDatabase& db, const TpccSpec& spec);

/// NewOrder: picks `lines` random items of warehouse `w`, decrements each
/// stock, creates an Order node linked to the customer and the items.
Status NewOrder(GraphDatabase& db, const TpccGraph& graph, uint64_t w,
                uint64_t customer, const std::vector<uint64_t>& item_indices,
                int64_t quantity, IsolationLevel isolation);

/// Payment: adds `amount` to a customer's balance and the warehouse YTD.
Status Payment(GraphDatabase& db, const TpccGraph& graph, uint64_t w,
               uint64_t customer, int64_t amount, IsolationLevel isolation);

/// Audits the stock + ordered invariant for warehouse `w`; returns the
/// observed total (== ExpectedStockPlusOrdered(w) in a serializable
/// execution).
Result<int64_t> AuditWarehouse(GraphDatabase& db, const TpccGraph& graph,
                               uint64_t w);

}  // namespace neosi

#endif  // NEOSI_WORKLOAD_TPCC_GRAPH_H_
