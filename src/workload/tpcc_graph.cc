#include "workload/tpcc_graph.h"

#include <string>

namespace neosi {

Result<TpccGraph> BuildTpccGraph(GraphDatabase& db, const TpccSpec& spec) {
  TpccGraph graph;
  graph.spec = spec;
  graph.items.resize(spec.warehouses);
  graph.customers.resize(spec.warehouses);

  auto txn = db.Begin(IsolationLevel::kSnapshotIsolation);
  uint64_t in_batch = 0;
  auto maybe_commit = [&]() -> Status {
    if (++in_batch >= 256) {
      NEOSI_RETURN_IF_ERROR(txn->Commit());
      txn = db.Begin(IsolationLevel::kSnapshotIsolation);
      in_batch = 0;
    }
    return Status::OK();
  };

  for (uint64_t w = 0; w < spec.warehouses; ++w) {
    auto warehouse = txn->CreateNode(
        {"Warehouse"}, {{"wid", PropertyValue(static_cast<int64_t>(w))},
                        {"ytd", PropertyValue(static_cast<int64_t>(0))}});
    if (!warehouse.ok()) return warehouse.status();
    graph.warehouses.push_back(*warehouse);
    NEOSI_RETURN_IF_ERROR(maybe_commit());

    for (uint64_t i = 0; i < spec.items_per_warehouse; ++i) {
      auto item = txn->CreateNode(
          {"Item"}, {{"iid", PropertyValue(static_cast<int64_t>(i))},
                     {"stock", PropertyValue(spec.initial_stock)}});
      if (!item.ok()) return item.status();
      auto stocks = txn->CreateRelationship(*warehouse, *item, "STOCKS");
      if (!stocks.ok()) return stocks.status();
      graph.items[w].push_back(*item);
      NEOSI_RETURN_IF_ERROR(maybe_commit());
    }
    for (uint64_t c = 0; c < spec.customers_per_warehouse; ++c) {
      auto customer = txn->CreateNode(
          {"Customer"},
          {{"cid", PropertyValue(static_cast<int64_t>(c))},
           {"balance", PropertyValue(static_cast<int64_t>(0))}});
      if (!customer.ok()) return customer.status();
      auto in_wh = txn->CreateRelationship(*customer, *warehouse, "SHOPS_AT");
      if (!in_wh.ok()) return in_wh.status();
      graph.customers[w].push_back(*customer);
      NEOSI_RETURN_IF_ERROR(maybe_commit());
    }
  }
  NEOSI_RETURN_IF_ERROR(txn->Commit());
  return graph;
}

Status NewOrder(GraphDatabase& db, const TpccGraph& graph, uint64_t w,
                uint64_t customer, const std::vector<uint64_t>& item_indices,
                int64_t quantity, IsolationLevel isolation) {
  auto txn = db.Begin(isolation);
  const NodeId customer_node =
      graph.customers[w][customer % graph.customers[w].size()];

  auto order = txn->CreateNode(
      {"Order"}, {{"qty_total",
                   PropertyValue(static_cast<int64_t>(item_indices.size()) *
                                 quantity)}});
  if (!order.ok()) return order.status();
  auto placed = txn->CreateRelationship(customer_node, *order, "PLACED");
  if (!placed.ok()) return placed.status();

  for (uint64_t idx : item_indices) {
    const NodeId item = graph.items[w][idx % graph.items[w].size()];
    auto stock = txn->GetNodeProperty(item, "stock");
    NEOSI_RETURN_IF_ERROR(stock.status());
    NEOSI_RETURN_IF_ERROR(txn->SetNodeProperty(
        item, "stock", PropertyValue(stock->AsInt() - quantity)));
    auto line = txn->CreateRelationship(
        *order, item, "CONTAINS", {{"qty", PropertyValue(quantity)}});
    if (!line.ok()) return line.status();
  }
  return txn->Commit();
}

Status Payment(GraphDatabase& db, const TpccGraph& graph, uint64_t w,
               uint64_t customer, int64_t amount, IsolationLevel isolation) {
  auto txn = db.Begin(isolation);
  const NodeId warehouse = graph.warehouses[w];
  const NodeId customer_node =
      graph.customers[w][customer % graph.customers[w].size()];

  auto ytd = txn->GetNodeProperty(warehouse, "ytd");
  NEOSI_RETURN_IF_ERROR(ytd.status());
  NEOSI_RETURN_IF_ERROR(txn->SetNodeProperty(
      warehouse, "ytd", PropertyValue(ytd->AsInt() + amount)));

  auto balance = txn->GetNodeProperty(customer_node, "balance");
  NEOSI_RETURN_IF_ERROR(balance.status());
  NEOSI_RETURN_IF_ERROR(txn->SetNodeProperty(
      customer_node, "balance", PropertyValue(balance->AsInt() - amount)));
  return txn->Commit();
}

Result<int64_t> AuditWarehouse(GraphDatabase& db, const TpccGraph& graph,
                               uint64_t w) {
  auto txn = db.Begin(IsolationLevel::kSnapshotIsolation);
  int64_t total = 0;
  // Sum remaining stock.
  for (NodeId item : graph.items[w]) {
    auto stock = txn->GetNodeProperty(item, "stock");
    if (!stock.ok()) return stock.status();
    total += stock->AsInt();
  }
  // Sum committed order lines against this warehouse's items.
  for (NodeId item : graph.items[w]) {
    auto lines = txn->GetRelationships(item, Direction::kIncoming,
                                       std::string("CONTAINS"));
    if (!lines.ok()) return lines.status();
    for (RelId line : *lines) {
      auto qty = txn->GetRelProperty(line, "qty");
      if (!qty.ok()) return qty.status();
      total += qty->AsInt();
    }
  }
  NEOSI_RETURN_IF_ERROR(txn->Commit());
  return total;
}

}  // namespace neosi
