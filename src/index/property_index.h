// Versioned (property key, value) -> entities index with range scans.
//
// Backs both the node property index and the relationship property index of
// Figure 1. Keys are ordered (PropertyValue has a total order), so predicate
// scans — the operation vulnerable to phantoms under read committed — run as
// range scans over this index (experiments E2/E7).

#ifndef NEOSI_INDEX_PROPERTY_INDEX_H_
#define NEOSI_INDEX_PROPERTY_INDEX_H_

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/latch.h"
#include "common/property_value.h"
#include "common/types.h"
#include "index/versioned_entry_set.h"
#include "mvcc/snapshot.h"

namespace neosi {

/// Composite index key.
struct PropIndexKey {
  PropertyKeyId key = kInvalidToken;
  PropertyValue value;

  bool operator<(const PropIndexKey& other) const {
    if (key != other.key) return key < other.key;
    return value < other.value;
  }
};

struct PropertyIndexStats {
  uint64_t keys = 0;
  uint64_t entries_total = 0;
  uint64_t compacted = 0;
};

/// Thread-safe versioned property index (used for nodes and, in a second
/// instance, for relationships).
class PropertyIndex {
 public:
  void AddPending(PropertyKeyId key, const PropertyValue& value,
                  uint64_t entity, TxnId txn);
  void RemovePending(PropertyKeyId key, const PropertyValue& value,
                     uint64_t entity, TxnId txn);

  void CommitAdd(PropertyKeyId key, const PropertyValue& value,
                 uint64_t entity, TxnId txn, Timestamp ts);
  void AbortAdd(PropertyKeyId key, const PropertyValue& value,
                uint64_t entity, TxnId txn);
  void CommitRemove(PropertyKeyId key, const PropertyValue& value,
                    uint64_t entity, TxnId txn, Timestamp ts);
  void AbortRemove(PropertyKeyId key, const PropertyValue& value,
                   uint64_t entity, TxnId txn);

  /// Exact-match lookup.
  std::vector<uint64_t> Lookup(PropertyKeyId key, const PropertyValue& value,
                               const Snapshot& snap) const;

  /// Range scan over values of `key` in [lo, hi] (either bound optional;
  /// inclusive). Results are in value order.
  std::vector<uint64_t> Scan(PropertyKeyId key,
                             const std::optional<PropertyValue>& lo,
                             const std::optional<PropertyValue>& hi,
                             const Snapshot& snap) const;

  /// Commit timestamps of membership changes committed after `start_ts`
  /// within the value range [lo, hi] of `key` (either bound optional,
  /// inclusive) — anonymous SSI conflict-out edges for a scan of that range
  /// at that snapshot; see VersionedEntrySet::CollectConflictsOut.
  void CollectConflictsOut(PropertyKeyId key,
                           const std::optional<PropertyValue>& lo,
                           const std::optional<PropertyValue>& hi,
                           Timestamp start_ts,
                           std::vector<Timestamp>* out) const;

  size_t Compact(Timestamp watermark);

  PropertyIndexStats Stats() const;

 private:
  VersionedEntrySet* SetFor(const PropIndexKey& key);
  const VersionedEntrySet* FindSet(const PropIndexKey& key) const;

  mutable SharedLatch latch_;
  std::map<PropIndexKey, std::unique_ptr<VersionedEntrySet>> sets_;
  uint64_t compacted_total_ = 0;
};

}  // namespace neosi

#endif  // NEOSI_INDEX_PROPERTY_INDEX_H_
