// Versioned index entries (paper §4).
//
// "The nodes/relationships are tagged with the commit timestamp of the
// transaction that associated the label/property to the node/relationship.
// In this way, it is possible to discard those nodes/relationships that do
// not correspond to the snapshot to be observed by the transaction."
//
// Each (index key -> entity) association is an entry carrying the commit
// timestamp of the transaction that ADDED it and, once dissociated, the
// commit timestamp of the transaction that REMOVED it. Uncommitted entries
// are private to their writer (read-your-own-writes applies to index scans
// too). Entries whose removal timestamp falls below the GC watermark are
// compacted away.

#ifndef NEOSI_INDEX_VERSIONED_ENTRY_SET_H_
#define NEOSI_INDEX_VERSIONED_ENTRY_SET_H_

#include <cstdint>
#include <vector>

#include "common/latch.h"
#include "common/status.h"
#include "common/types.h"
#include "mvcc/snapshot.h"

namespace neosi {

/// One entity's membership interval for one index key.
struct IndexEntry {
  uint64_t entity = kInvalidId;

  /// Commit ts of the adding transaction; kNoTimestamp while uncommitted.
  Timestamp added_ts = kNoTimestamp;
  /// Writer while the add is uncommitted.
  TxnId added_by = kNoTxn;

  /// Commit ts of the removing transaction; kMaxTimestamp while present.
  Timestamp removed_ts = kMaxTimestamp;
  /// Writer while the removal is uncommitted.
  TxnId removed_by = kNoTxn;

  /// Snapshot visibility (§4): the association is visible iff it was added
  /// at or before the snapshot (or by the reader itself) and not removed at
  /// or before the snapshot (nor pending-removed by the reader).
  bool VisibleAt(const Snapshot& snap) const {
    const bool added_visible =
        (added_ts != kNoTimestamp && added_ts <= snap.start_ts) ||
        (added_by != kNoTxn && added_by == snap.txn_id);
    if (!added_visible) return false;
    if (removed_by != kNoTxn && removed_by == snap.txn_id) return false;
    // Live entries (removed_ts == kMaxTimestamp) are visible to every
    // snapshot, including the read-committed "latest" snapshot whose
    // start_ts is itself kMaxTimestamp.
    return removed_ts == kMaxTimestamp || removed_ts > snap.start_ts;
  }
};

/// Thread-safe list of membership intervals for one index key.
class VersionedEntrySet {
 public:
  /// Records an uncommitted association by `txn`.
  void AddPending(uint64_t entity, TxnId txn);

  /// Marks the current visible association of `entity` as pending removal
  /// by `txn`. No-op if none (engine guards).
  void RemovePending(uint64_t entity, TxnId txn);

  /// Commit / abort of the pending ops performed by `txn` on `entity`.
  void CommitAdd(uint64_t entity, TxnId txn, Timestamp ts);
  void AbortAdd(uint64_t entity, TxnId txn);
  void CommitRemove(uint64_t entity, TxnId txn, Timestamp ts);
  void AbortRemove(uint64_t entity, TxnId txn);

  /// Appends every entity visible at `snap` to *out.
  void CollectVisible(const Snapshot& snap, std::vector<uint64_t>* out) const;

  /// True if `entity` is visible at `snap`.
  bool Contains(uint64_t entity, const Snapshot& snap) const;

  /// Appends the commit timestamp of every membership change (add or
  /// remove) committed after `start_ts` — the index mutations a scan at
  /// `start_ts` could not observe. The SSI read path turns each into an
  /// ANONYMOUS rw-antidependency conflict-out edge: CommitAdd/CommitRemove
  /// clear the writer TxnId on commit, so the timestamp is all that
  /// survives (granularity trade-off documented in ARCHITECTURE.md).
  void CollectConflictsOut(Timestamp start_ts,
                           std::vector<Timestamp>* out) const;

  /// Drops entries whose removal committed at or before the watermark, and
  /// fully-superseded duplicates. Returns the number of entries dropped.
  size_t Compact(Timestamp watermark);

  /// Total entries including dead ones (experiment E7's dead fraction).
  size_t SizeIncludingDead() const;

  bool Empty() const;

 private:
  mutable SpinLatch latch_;
  std::vector<IndexEntry> entries_;
};

}  // namespace neosi

#endif  // NEOSI_INDEX_VERSIONED_ENTRY_SET_H_
