#include "index/property_index.h"

namespace neosi {

VersionedEntrySet* PropertyIndex::SetFor(const PropIndexKey& key) {
  {
    ReadGuard guard(latch_);
    auto it = sets_.find(key);
    if (it != sets_.end()) return it->second.get();
  }
  WriteGuard guard(latch_);
  auto& slot = sets_[key];
  if (!slot) slot = std::make_unique<VersionedEntrySet>();
  return slot.get();
}

const VersionedEntrySet* PropertyIndex::FindSet(const PropIndexKey& key) const {
  ReadGuard guard(latch_);
  auto it = sets_.find(key);
  return it == sets_.end() ? nullptr : it->second.get();
}

void PropertyIndex::AddPending(PropertyKeyId key, const PropertyValue& value,
                               uint64_t entity, TxnId txn) {
  SetFor({key, value})->AddPending(entity, txn);
}

void PropertyIndex::RemovePending(PropertyKeyId key,
                                  const PropertyValue& value, uint64_t entity,
                                  TxnId txn) {
  SetFor({key, value})->RemovePending(entity, txn);
}

void PropertyIndex::CommitAdd(PropertyKeyId key, const PropertyValue& value,
                              uint64_t entity, TxnId txn, Timestamp ts) {
  SetFor({key, value})->CommitAdd(entity, txn, ts);
}

void PropertyIndex::AbortAdd(PropertyKeyId key, const PropertyValue& value,
                             uint64_t entity, TxnId txn) {
  SetFor({key, value})->AbortAdd(entity, txn);
}

void PropertyIndex::CommitRemove(PropertyKeyId key, const PropertyValue& value,
                                 uint64_t entity, TxnId txn, Timestamp ts) {
  SetFor({key, value})->CommitRemove(entity, txn, ts);
}

void PropertyIndex::AbortRemove(PropertyKeyId key, const PropertyValue& value,
                                uint64_t entity, TxnId txn) {
  SetFor({key, value})->AbortRemove(entity, txn);
}

std::vector<uint64_t> PropertyIndex::Lookup(PropertyKeyId key,
                                            const PropertyValue& value,
                                            const Snapshot& snap) const {
  std::vector<uint64_t> out;
  const VersionedEntrySet* set = FindSet({key, value});
  if (set != nullptr) set->CollectVisible(snap, &out);
  return out;
}

std::vector<uint64_t> PropertyIndex::Scan(
    PropertyKeyId key, const std::optional<PropertyValue>& lo,
    const std::optional<PropertyValue>& hi, const Snapshot& snap) const {
  std::vector<uint64_t> out;
  ReadGuard guard(latch_);
  auto it = lo.has_value() ? sets_.lower_bound({key, *lo})
                           : sets_.lower_bound({key, PropertyValue()});
  for (; it != sets_.end(); ++it) {
    if (it->first.key != key) break;
    if (hi.has_value() && *hi < it->first.value) break;
    it->second->CollectVisible(snap, &out);
  }
  return out;
}

void PropertyIndex::CollectConflictsOut(PropertyKeyId key,
                                        const std::optional<PropertyValue>& lo,
                                        const std::optional<PropertyValue>& hi,
                                        Timestamp start_ts,
                                        std::vector<Timestamp>* out) const {
  ReadGuard guard(latch_);
  auto it = lo.has_value() ? sets_.lower_bound({key, *lo})
                           : sets_.lower_bound({key, PropertyValue()});
  for (; it != sets_.end(); ++it) {
    if (it->first.key != key) break;
    if (hi.has_value() && *hi < it->first.value) break;
    it->second->CollectConflictsOut(start_ts, out);
  }
}

size_t PropertyIndex::Compact(Timestamp watermark) {
  std::vector<VersionedEntrySet*> sets;
  {
    ReadGuard guard(latch_);
    sets.reserve(sets_.size());
    for (auto& [key, set] : sets_) sets.push_back(set.get());
  }
  size_t dropped = 0;
  for (VersionedEntrySet* set : sets) dropped += set->Compact(watermark);
  WriteGuard guard(latch_);
  compacted_total_ += dropped;
  return dropped;
}

PropertyIndexStats PropertyIndex::Stats() const {
  ReadGuard guard(latch_);
  PropertyIndexStats stats;
  stats.keys = sets_.size();
  for (const auto& [key, set] : sets_) {
    stats.entries_total += set->SizeIncludingDead();
  }
  stats.compacted = compacted_total_;
  return stats;
}

}  // namespace neosi
