#include "index/versioned_entry_set.h"

#include <algorithm>

namespace neosi {

void VersionedEntrySet::AddPending(uint64_t entity, TxnId txn) {
  std::lock_guard<SpinLatch> guard(latch_);
  IndexEntry entry;
  entry.entity = entity;
  entry.added_by = txn;
  entries_.push_back(entry);
}

void VersionedEntrySet::RemovePending(uint64_t entity, TxnId txn) {
  std::lock_guard<SpinLatch> guard(latch_);
  // Mark the newest committed, not-yet-removed interval (or this txn's own
  // pending add, which is simply cancelled at commit-time by the engine
  // issuing AbortAdd — but handle it here defensively too).
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->entity != entity) continue;
    if (it->removed_ts != kMaxTimestamp || it->removed_by != kNoTxn) continue;
    it->removed_by = txn;
    return;
  }
}

void VersionedEntrySet::CommitAdd(uint64_t entity, TxnId txn, Timestamp ts) {
  std::lock_guard<SpinLatch> guard(latch_);
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->entity == entity && it->added_by == txn &&
        it->added_ts == kNoTimestamp) {
      it->added_ts = ts;
      it->added_by = kNoTxn;
      return;
    }
  }
}

void VersionedEntrySet::AbortAdd(uint64_t entity, TxnId txn) {
  std::lock_guard<SpinLatch> guard(latch_);
  entries_.erase(
      std::remove_if(entries_.begin(), entries_.end(),
                     [&](const IndexEntry& e) {
                       return e.entity == entity && e.added_by == txn &&
                              e.added_ts == kNoTimestamp;
                     }),
      entries_.end());
}

void VersionedEntrySet::CommitRemove(uint64_t entity, TxnId txn,
                                     Timestamp ts) {
  std::lock_guard<SpinLatch> guard(latch_);
  for (auto& entry : entries_) {
    if (entry.entity == entity && entry.removed_by == txn) {
      entry.removed_ts = ts;
      entry.removed_by = kNoTxn;
      return;
    }
  }
}

void VersionedEntrySet::AbortRemove(uint64_t entity, TxnId txn) {
  std::lock_guard<SpinLatch> guard(latch_);
  for (auto& entry : entries_) {
    if (entry.entity == entity && entry.removed_by == txn) {
      entry.removed_by = kNoTxn;
      return;
    }
  }
}

void VersionedEntrySet::CollectVisible(const Snapshot& snap,
                                       std::vector<uint64_t>* out) const {
  std::lock_guard<SpinLatch> guard(latch_);
  for (const IndexEntry& entry : entries_) {
    if (entry.VisibleAt(snap)) out->push_back(entry.entity);
  }
}

bool VersionedEntrySet::Contains(uint64_t entity, const Snapshot& snap) const {
  std::lock_guard<SpinLatch> guard(latch_);
  for (const IndexEntry& entry : entries_) {
    if (entry.entity == entity && entry.VisibleAt(snap)) return true;
  }
  return false;
}

void VersionedEntrySet::CollectConflictsOut(Timestamp start_ts,
                                            std::vector<Timestamp>* out) const {
  std::lock_guard<SpinLatch> guard(latch_);
  for (const IndexEntry& entry : entries_) {
    if (entry.added_ts != kNoTimestamp && entry.added_ts > start_ts) {
      out->push_back(entry.added_ts);
    }
    if (entry.removed_ts != kMaxTimestamp && entry.removed_by == kNoTxn &&
        entry.removed_ts > start_ts) {
      out->push_back(entry.removed_ts);
    }
  }
}

size_t VersionedEntrySet::Compact(Timestamp watermark) {
  std::lock_guard<SpinLatch> guard(latch_);
  const size_t before = entries_.size();
  entries_.erase(
      std::remove_if(entries_.begin(), entries_.end(),
                     [&](const IndexEntry& e) {
                       // Removal committed and no active snapshot can still
                       // fall inside the [added, removed) interval.
                       return e.removed_by == kNoTxn &&
                              e.removed_ts != kMaxTimestamp &&
                              e.removed_ts <= watermark;
                     }),
      entries_.end());
  return before - entries_.size();
}

size_t VersionedEntrySet::SizeIncludingDead() const {
  std::lock_guard<SpinLatch> guard(latch_);
  return entries_.size();
}

bool VersionedEntrySet::Empty() const {
  std::lock_guard<SpinLatch> guard(latch_);
  return entries_.empty();
}

}  // namespace neosi
