// Versioned label -> nodes index (paper §2/§4: "two indexes for nodes, one
// for labels and another one for properties ... multi-versioning has also
// been applied to indexes").

#ifndef NEOSI_INDEX_LABEL_INDEX_H_
#define NEOSI_INDEX_LABEL_INDEX_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/latch.h"
#include "common/types.h"
#include "index/versioned_entry_set.h"
#include "mvcc/snapshot.h"

namespace neosi {

/// Index size/health counters (experiment E7).
struct LabelIndexStats {
  uint64_t keys = 0;
  uint64_t entries_total = 0;  ///< Including dead intervals awaiting GC.
  uint64_t compacted = 0;      ///< Entries dropped by Compact() so far.
};

/// Thread-safe versioned label index.
class LabelIndex {
 public:
  /// Transaction `txn` (uncommitted) associates `label` with `node`.
  void AddPending(LabelId label, NodeId node, TxnId txn);
  /// Transaction `txn` (uncommitted) dissociates `label` from `node`.
  void RemovePending(LabelId label, NodeId node, TxnId txn);

  void CommitAdd(LabelId label, NodeId node, TxnId txn, Timestamp ts);
  void AbortAdd(LabelId label, NodeId node, TxnId txn);
  void CommitRemove(LabelId label, NodeId node, TxnId txn, Timestamp ts);
  void AbortRemove(LabelId label, NodeId node, TxnId txn);

  /// All nodes carrying `label` in the snapshot, unordered.
  std::vector<NodeId> Lookup(LabelId label, const Snapshot& snap) const;

  /// True if `node` carries `label` in the snapshot.
  bool Has(LabelId label, NodeId node, const Snapshot& snap) const;

  /// Commit timestamps of membership changes under `label` committed after
  /// `start_ts` (anonymous SSI conflict-out edges for a label scan at that
  /// snapshot; see VersionedEntrySet::CollectConflictsOut).
  void CollectConflictsOut(LabelId label, Timestamp start_ts,
                           std::vector<Timestamp>* out) const;

  /// GC hook: drops dead entries across all labels; returns entries dropped.
  size_t Compact(Timestamp watermark);

  LabelIndexStats Stats() const;

 private:
  VersionedEntrySet* SetFor(LabelId label);
  const VersionedEntrySet* FindSet(LabelId label) const;

  mutable SharedLatch latch_;  // Guards the map structure, not the sets.
  std::unordered_map<LabelId, std::unique_ptr<VersionedEntrySet>> sets_;
  uint64_t compacted_total_ = 0;
};

}  // namespace neosi

#endif  // NEOSI_INDEX_LABEL_INDEX_H_
