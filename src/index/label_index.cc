#include "index/label_index.h"

namespace neosi {

VersionedEntrySet* LabelIndex::SetFor(LabelId label) {
  {
    ReadGuard guard(latch_);
    auto it = sets_.find(label);
    if (it != sets_.end()) return it->second.get();
  }
  WriteGuard guard(latch_);
  auto& slot = sets_[label];
  if (!slot) slot = std::make_unique<VersionedEntrySet>();
  return slot.get();
}

const VersionedEntrySet* LabelIndex::FindSet(LabelId label) const {
  ReadGuard guard(latch_);
  auto it = sets_.find(label);
  return it == sets_.end() ? nullptr : it->second.get();
}

void LabelIndex::AddPending(LabelId label, NodeId node, TxnId txn) {
  SetFor(label)->AddPending(node, txn);
}

void LabelIndex::RemovePending(LabelId label, NodeId node, TxnId txn) {
  SetFor(label)->RemovePending(node, txn);
}

void LabelIndex::CommitAdd(LabelId label, NodeId node, TxnId txn,
                           Timestamp ts) {
  SetFor(label)->CommitAdd(node, txn, ts);
}

void LabelIndex::AbortAdd(LabelId label, NodeId node, TxnId txn) {
  SetFor(label)->AbortAdd(node, txn);
}

void LabelIndex::CommitRemove(LabelId label, NodeId node, TxnId txn,
                              Timestamp ts) {
  SetFor(label)->CommitRemove(node, txn, ts);
}

void LabelIndex::AbortRemove(LabelId label, NodeId node, TxnId txn) {
  SetFor(label)->AbortRemove(node, txn);
}

std::vector<NodeId> LabelIndex::Lookup(LabelId label,
                                       const Snapshot& snap) const {
  std::vector<NodeId> out;
  const VersionedEntrySet* set = FindSet(label);
  if (set != nullptr) set->CollectVisible(snap, &out);
  return out;
}

bool LabelIndex::Has(LabelId label, NodeId node, const Snapshot& snap) const {
  const VersionedEntrySet* set = FindSet(label);
  return set != nullptr && set->Contains(node, snap);
}

void LabelIndex::CollectConflictsOut(LabelId label, Timestamp start_ts,
                                     std::vector<Timestamp>* out) const {
  const VersionedEntrySet* set = FindSet(label);
  if (set != nullptr) set->CollectConflictsOut(start_ts, out);
}

size_t LabelIndex::Compact(Timestamp watermark) {
  std::vector<VersionedEntrySet*> sets;
  {
    ReadGuard guard(latch_);
    sets.reserve(sets_.size());
    for (auto& [label, set] : sets_) sets.push_back(set.get());
  }
  size_t dropped = 0;
  for (VersionedEntrySet* set : sets) dropped += set->Compact(watermark);
  WriteGuard guard(latch_);
  compacted_total_ += dropped;
  return dropped;
}

LabelIndexStats LabelIndex::Stats() const {
  ReadGuard guard(latch_);
  LabelIndexStats stats;
  stats.keys = sets_.size();
  for (const auto& [label, set] : sets_) {
    stats.entries_total += set->SizeIncludingDead();
  }
  stats.compacted = compacted_total_;
  return stats;
}

}  // namespace neosi
