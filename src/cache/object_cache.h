// The Object Cache of Figure 1, extended per §4 to own the version chains.
//
// Entities are loaded from the GraphStore on miss (materializing the newest
// committed version as a one-element chain) and stay resident while they
// carry more than one version — old versions exist ONLY here, never on disk,
// so a multi-version entity is pinned until GC trims its chain back to one.
// Clean single-version entities are evictable once the cache exceeds its
// soft capacity.

#ifndef NEOSI_CACHE_OBJECT_CACHE_H_
#define NEOSI_CACHE_OBJECT_CACHE_H_

#include <array>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/latch.h"
#include "common/options.h"
#include "common/status.h"
#include "common/types.h"
#include "cache/cached_entity.h"
#include "storage/graph_store.h"

namespace neosi {

/// Cache observability (tests + E9 memory accounting).
struct ObjectCacheStats {
  uint64_t node_hits = 0;
  uint64_t node_misses = 0;
  uint64_t rel_hits = 0;
  uint64_t rel_misses = 0;
  uint64_t loads = 0;
  uint64_t evictions = 0;
  uint64_t resident_nodes = 0;
  uint64_t resident_rels = 0;
  uint64_t resident_versions = 0;   ///< Sum of chain lengths.
  uint64_t approx_bytes = 0;        ///< Approximate heap footprint.
};

/// Sharded id -> cached-object maps for nodes and relationships.
class ObjectCache {
 public:
  /// `epochs` non-null wires every cached entity's version chain into the
  /// latch-free read mode (DatabaseOptions::latch_free_reads); null keeps
  /// the latched baseline.
  ObjectCache(GraphStore* store, size_t capacity,
              EpochManager* epochs = nullptr);

  ObjectCache(const ObjectCache&) = delete;
  ObjectCache& operator=(const ObjectCache&) = delete;

  /// Returns the cached node, loading the newest committed version from the
  /// store on miss. NotFound if the record is free (never existed/purged).
  Result<std::shared_ptr<CachedNode>> GetNode(NodeId id);
  Result<std::shared_ptr<CachedRel>> GetRel(RelId id);

  /// Inserts a fresh (empty-chain) object for a brand-new entity; the store
  /// record is not consulted. Internal error if already cached.
  Result<std::shared_ptr<CachedNode>> InsertNewNode(NodeId id);
  Result<std::shared_ptr<CachedRel>> InsertNewRel(RelId id, NodeId src,
                                                  NodeId dst, RelTypeId type);

  /// Lookup without loading (GC paths). Null on miss.
  std::shared_ptr<CachedNode> PeekNode(NodeId id) const;
  std::shared_ptr<CachedRel> PeekRel(RelId id) const;

  /// Drops an entry (entity purge or aborted creation).
  void EraseNode(NodeId id);
  void EraseRel(RelId id);

  /// Evicts clean single-version entries while above capacity. Returns the
  /// number evicted.
  size_t EvictIfNeeded();

  /// Iterates every resident node / rel (vacuum-GC baseline, tests).
  void ForEachNode(
      const std::function<void(const std::shared_ptr<CachedNode>&)>& fn) const;
  void ForEachRel(
      const std::function<void(const std::shared_ptr<CachedRel>&)>& fn) const;

  ObjectCacheStats Stats() const;
  size_t ResidentCount() const;

 private:
  static constexpr size_t kShards = 64;

  struct NodeShard {
    mutable SharedLatch latch;
    std::unordered_map<NodeId, std::shared_ptr<CachedNode>> map;
  };
  struct RelShard {
    mutable SharedLatch latch;
    std::unordered_map<RelId, std::shared_ptr<CachedRel>> map;
  };

  NodeShard& NodeShardFor(NodeId id) const { return node_shards_[id % kShards]; }
  RelShard& RelShardFor(RelId id) const { return rel_shards_[id % kShards]; }

  GraphStore* const store_;
  const size_t capacity_;
  EpochManager* const epochs_;

  mutable std::array<NodeShard, kShards> node_shards_;
  mutable std::array<RelShard, kShards> rel_shards_;

  mutable SpinLatch stats_latch_;
  mutable ObjectCacheStats stats_;
};

}  // namespace neosi

#endif  // NEOSI_CACHE_OBJECT_CACHE_H_
