#include "cache/object_cache.h"

#include <array>

namespace neosi {

ObjectCache::ObjectCache(GraphStore* store, size_t capacity,
                         EpochManager* epochs)
    : store_(store),
      capacity_(capacity == 0 ? SIZE_MAX : capacity),
      epochs_(epochs) {}

Result<std::shared_ptr<CachedNode>> ObjectCache::GetNode(NodeId id) {
  NodeShard& shard = NodeShardFor(id);
  {
    ReadGuard guard(shard.latch);
    auto it = shard.map.find(id);
    if (it != shard.map.end()) {
      std::lock_guard<SpinLatch> sg(stats_latch_);
      ++stats_.node_hits;
      return it->second;
    }
  }
  // Miss: load the newest committed version from the store.
  WriteGuard guard(shard.latch);
  auto it = shard.map.find(id);
  if (it != shard.map.end()) return it->second;  // Raced another loader.

  NodeState state;
  Status s = store_->ReadNodeState(id, &state);
  if (s.IsOutOfRange() || (s.ok() && !state.in_use)) {
    std::lock_guard<SpinLatch> sg(stats_latch_);
    ++stats_.node_misses;
    return Status::NotFound("node " + std::to_string(id) + " does not exist");
  }
  NEOSI_RETURN_IF_ERROR(s);

  auto node = std::make_shared<CachedNode>(id, epochs_);
  VersionData data;
  data.deleted = state.deleted;
  data.labels = std::move(state.labels);
  data.props = std::move(state.props);
  auto installed = node->chain.InstallUncommitted(kNoTxn, std::move(data));
  if (!installed.ok()) return installed.status();
  // Stamp directly with the persisted commit timestamp.
  auto superseded = node->chain.CommitHead(kNoTxn, state.commit_ts);
  if (!superseded.ok()) return superseded.status();

  shard.map[id] = node;
  {
    std::lock_guard<SpinLatch> sg(stats_latch_);
    ++stats_.node_misses;
    ++stats_.loads;
  }
  return node;
}

Result<std::shared_ptr<CachedRel>> ObjectCache::GetRel(RelId id) {
  RelShard& shard = RelShardFor(id);
  {
    ReadGuard guard(shard.latch);
    auto it = shard.map.find(id);
    if (it != shard.map.end()) {
      std::lock_guard<SpinLatch> sg(stats_latch_);
      ++stats_.rel_hits;
      return it->second;
    }
  }
  WriteGuard guard(shard.latch);
  auto it = shard.map.find(id);
  if (it != shard.map.end()) return it->second;

  RelState state;
  Status s = store_->ReadRelState(id, &state);
  if (s.IsOutOfRange() || (s.ok() && !state.in_use)) {
    std::lock_guard<SpinLatch> sg(stats_latch_);
    ++stats_.rel_misses;
    return Status::NotFound("relationship " + std::to_string(id) +
                            " does not exist");
  }
  NEOSI_RETURN_IF_ERROR(s);

  auto rel = std::make_shared<CachedRel>(id, state.src, state.dst, state.type,
                                         epochs_);
  VersionData data;
  data.deleted = state.deleted;
  data.props = std::move(state.props);
  auto installed = rel->chain.InstallUncommitted(kNoTxn, std::move(data));
  if (!installed.ok()) return installed.status();
  auto superseded = rel->chain.CommitHead(kNoTxn, state.commit_ts);
  if (!superseded.ok()) return superseded.status();

  shard.map[id] = rel;
  {
    std::lock_guard<SpinLatch> sg(stats_latch_);
    ++stats_.rel_misses;
    ++stats_.loads;
  }
  return rel;
}

namespace {

/// True when a cache entry left behind for a purged-and-recycled id can be
/// replaced: its chain is empty or its latest committed version is a
/// tombstone with no writer in flight. (A reader racing the purge may have
/// reloaded the tombstone record into the cache between the cache erase and
/// the record free; such entries are invisible to every snapshot.)
bool IsDefunct(const VersionChain& chain) {
  if (chain.HasUncommitted()) return false;
  auto latest = chain.LatestCommitted();
  return latest == nullptr || latest->data.deleted;
}

}  // namespace

Result<std::shared_ptr<CachedNode>> ObjectCache::InsertNewNode(NodeId id) {
  NodeShard& shard = NodeShardFor(id);
  WriteGuard guard(shard.latch);
  auto [it, inserted] = shard.map.emplace(id, nullptr);
  if (!inserted) {
    if (!IsDefunct(it->second->chain)) {
      return Status::Internal("InsertNewNode: live node already cached: " +
                              std::to_string(id));
    }
    // Stale entry for the previous (purged) occupant of this record id.
  }
  it->second = std::make_shared<CachedNode>(id, epochs_);
  return it->second;
}

Result<std::shared_ptr<CachedRel>> ObjectCache::InsertNewRel(RelId id,
                                                             NodeId src,
                                                             NodeId dst,
                                                             RelTypeId type) {
  RelShard& shard = RelShardFor(id);
  WriteGuard guard(shard.latch);
  auto [it, inserted] = shard.map.emplace(id, nullptr);
  if (!inserted) {
    if (!IsDefunct(it->second->chain)) {
      return Status::Internal(
          "InsertNewRel: live relationship already cached: " +
          std::to_string(id));
    }
  }
  it->second = std::make_shared<CachedRel>(id, src, dst, type, epochs_);
  return it->second;
}

std::shared_ptr<CachedNode> ObjectCache::PeekNode(NodeId id) const {
  NodeShard& shard = NodeShardFor(id);
  ReadGuard guard(shard.latch);
  auto it = shard.map.find(id);
  return it == shard.map.end() ? nullptr : it->second;
}

std::shared_ptr<CachedRel> ObjectCache::PeekRel(RelId id) const {
  RelShard& shard = RelShardFor(id);
  ReadGuard guard(shard.latch);
  auto it = shard.map.find(id);
  return it == shard.map.end() ? nullptr : it->second;
}

void ObjectCache::EraseNode(NodeId id) {
  NodeShard& shard = NodeShardFor(id);
  WriteGuard guard(shard.latch);
  shard.map.erase(id);
}

void ObjectCache::EraseRel(RelId id) {
  RelShard& shard = RelShardFor(id);
  WriteGuard guard(shard.latch);
  shard.map.erase(id);
}

size_t ObjectCache::EvictIfNeeded() {
  if (ResidentCount() <= capacity_) return 0;
  size_t evicted = 0;
  auto evictable_chain = [](const VersionChain& chain) {
    // Single committed version: the store already holds exactly this state.
    // Multi-version or uncommitted entities are pinned (old versions exist
    // only in memory; uncommitted state belongs to a live transaction).
    if (chain.Length() != 1) return false;
    return !chain.HasUncommitted();
  };
  for (auto& shard : node_shards_) {
    WriteGuard guard(shard.latch);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (evictable_chain(it->second->chain)) {
        it = shard.map.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  for (auto& shard : rel_shards_) {
    WriteGuard guard(shard.latch);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (evictable_chain(it->second->chain)) {
        it = shard.map.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  std::lock_guard<SpinLatch> sg(stats_latch_);
  stats_.evictions += evicted;
  return evicted;
}

void ObjectCache::ForEachNode(
    const std::function<void(const std::shared_ptr<CachedNode>&)>& fn) const {
  for (const auto& shard : node_shards_) {
    std::vector<std::shared_ptr<CachedNode>> snapshot;
    {
      ReadGuard guard(shard.latch);
      snapshot.reserve(shard.map.size());
      for (const auto& [id, node] : shard.map) snapshot.push_back(node);
    }
    for (const auto& node : snapshot) fn(node);
  }
}

void ObjectCache::ForEachRel(
    const std::function<void(const std::shared_ptr<CachedRel>&)>& fn) const {
  for (const auto& shard : rel_shards_) {
    std::vector<std::shared_ptr<CachedRel>> snapshot;
    {
      ReadGuard guard(shard.latch);
      snapshot.reserve(shard.map.size());
      for (const auto& [id, rel] : shard.map) snapshot.push_back(rel);
    }
    for (const auto& rel : snapshot) fn(rel);
  }
}

size_t ObjectCache::ResidentCount() const {
  size_t n = 0;
  for (const auto& shard : node_shards_) {
    ReadGuard guard(shard.latch);
    n += shard.map.size();
  }
  for (const auto& shard : rel_shards_) {
    ReadGuard guard(shard.latch);
    n += shard.map.size();
  }
  return n;
}

ObjectCacheStats ObjectCache::Stats() const {
  ObjectCacheStats out;
  {
    std::lock_guard<SpinLatch> sg(stats_latch_);
    out = stats_;
  }
  out.resident_nodes = 0;
  out.resident_rels = 0;
  out.resident_versions = 0;
  out.approx_bytes = 0;
  // Footprint walks go through the chain (its own latch): a raw
  // head/older walk here would race GC unlinks.
  ForEachNode([&](const std::shared_ptr<CachedNode>& node) {
    ++out.resident_nodes;
    out.resident_versions += node->chain.Length();
    out.approx_bytes += node->chain.ApproximateBytes();
  });
  ForEachRel([&](const std::shared_ptr<CachedRel>& rel) {
    ++out.resident_rels;
    out.resident_versions += rel->chain.Length();
    out.approx_bytes += rel->chain.ApproximateBytes();
  });
  return out;
}

}  // namespace neosi
