// Cached node / relationship objects.
//
// Paper §4: "Versions are kept in the Object Cache of Neo4j. In particular,
// each object representing a node or relationship stores a list of
// versions." These are those objects. Relationship topology (src/dst/type)
// is immutable for the life of the relationship and lives directly on the
// cached object; the mutable state (labels, properties, existence) lives in
// the version chain.

#ifndef NEOSI_CACHE_CACHED_ENTITY_H_
#define NEOSI_CACHE_CACHED_ENTITY_H_

#include <memory>

#include "common/types.h"
#include "mvcc/version_chain.h"

namespace neosi {

/// A node resident in the object cache. `epochs` non-null puts the chain
/// in latch-free read mode (see VersionChain); the ObjectCache passes the
/// engine's manager through.
struct CachedNode {
  explicit CachedNode(NodeId id, EpochManager* epochs = nullptr)
      : id(id), chain(epochs) {}

  const NodeId id;
  VersionChain chain;
};

/// A relationship resident in the object cache.
struct CachedRel {
  CachedRel(RelId id, NodeId src, NodeId dst, RelTypeId type,
            EpochManager* epochs = nullptr)
      : id(id), src(src), dst(dst), type(type), chain(epochs) {}

  const RelId id;
  const NodeId src;
  const NodeId dst;
  const RelTypeId type;
  VersionChain chain;
};

}  // namespace neosi

#endif  // NEOSI_CACHE_CACHED_ENTITY_H_
