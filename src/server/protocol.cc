#include "server/protocol.h"

namespace neosi {

namespace {

void PutMsgType(std::string* dst, MsgType type) {
  dst->push_back(static_cast<char>(type));
}

void PutProps(std::string* dst, const NamedProperties& props) {
  PutVarint32(dst, static_cast<uint32_t>(props.size()));
  for (const auto& [key, value] : props) {
    PutLengthPrefixedSlice(dst, key);
    value.EncodeTo(dst);
  }
}

}  // namespace

std::string EncodeFrame(const Slice& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, Crc32c(payload));
  frame.append(payload.data(), payload.size());
  return frame;
}

FrameParse ParseFrame(const Slice& buf, size_t max_payload, Slice* payload,
                      size_t* consumed) {
  if (buf.size() < kFrameHeaderBytes) return FrameParse::kNeedMore;
  const uint32_t len = DecodeFixed32(buf.data());
  const uint32_t crc = DecodeFixed32(buf.data() + 4);
  // Reject hostile lengths BEFORE waiting for that many bytes: an attacker
  // declaring 4 GiB must not pin a 4 GiB buffer (or stall the session
  // forever at kNeedMore).
  if (len > max_payload) return FrameParse::kMalformed;
  if (buf.size() < kFrameHeaderBytes + len) return FrameParse::kNeedMore;
  Slice body(buf.data() + kFrameHeaderBytes, len);
  if (Crc32c(body) != crc) return FrameParse::kMalformed;
  // An empty payload has no MsgType byte — nothing legal encodes to it.
  if (len == 0) return FrameParse::kMalformed;
  *payload = body;
  *consumed = kFrameHeaderBytes + len;
  return FrameParse::kOk;
}

std::string EncodeBegin(IsolationLevel isolation, bool read_only) {
  std::string p;
  PutMsgType(&p, MsgType::kBegin);
  p.push_back(static_cast<char>(isolation));
  p.push_back(read_only ? 1 : 0);
  return p;
}

std::string EncodeCommit() {
  std::string p;
  PutMsgType(&p, MsgType::kCommit);
  return p;
}

std::string EncodeRollback() {
  std::string p;
  PutMsgType(&p, MsgType::kRollback);
  return p;
}

std::string EncodePing() {
  std::string p;
  PutMsgType(&p, MsgType::kPing);
  return p;
}

std::string EncodeCreateNode(const std::vector<std::string>& labels,
                             const NamedProperties& props) {
  std::string p;
  PutMsgType(&p, MsgType::kCreateNode);
  PutVarint32(&p, static_cast<uint32_t>(labels.size()));
  for (const std::string& label : labels) PutLengthPrefixedSlice(&p, label);
  PutProps(&p, props);
  return p;
}

std::string EncodeSetNodeProperty(NodeId id, const std::string& key,
                                  const PropertyValue& value) {
  std::string p;
  PutMsgType(&p, MsgType::kSetNodeProperty);
  PutVarint64(&p, id);
  PutLengthPrefixedSlice(&p, key);
  value.EncodeTo(&p);
  return p;
}

std::string EncodeGetNodeProperty(NodeId id, const std::string& key) {
  std::string p;
  PutMsgType(&p, MsgType::kGetNodeProperty);
  PutVarint64(&p, id);
  PutLengthPrefixedSlice(&p, key);
  return p;
}

std::string EncodeGetNodesByLabel(const std::string& label) {
  std::string p;
  PutMsgType(&p, MsgType::kGetNodesByLabel);
  PutLengthPrefixedSlice(&p, label);
  return p;
}

std::string EncodeGetNodesByProperty(const std::string& key,
                                     const PropertyValue& value) {
  std::string p;
  PutMsgType(&p, MsgType::kGetNodesByProperty);
  PutLengthPrefixedSlice(&p, key);
  value.EncodeTo(&p);
  return p;
}

std::string EncodeCreateRelationship(NodeId src, NodeId dst,
                                     const std::string& type,
                                     const NamedProperties& props) {
  std::string p;
  PutMsgType(&p, MsgType::kCreateRelationship);
  PutVarint64(&p, src);
  PutVarint64(&p, dst);
  PutLengthPrefixedSlice(&p, type);
  PutProps(&p, props);
  return p;
}

std::string EncodeReply(const Status& status, const Slice& body) {
  std::string p;
  PutMsgType(&p, MsgType::kReply);
  p.push_back(static_cast<char>(static_cast<int>(status.code())));
  PutLengthPrefixedSlice(&p, status.message());
  p.append(body.data(), body.size());
  return p;
}

Status DecodeReply(const Slice& payload, Status* status, Slice* body) {
  Slice in = payload;
  if (in.size() < 2 ||
      static_cast<MsgType>(in[0]) != MsgType::kReply) {
    return Status::Corruption("reply frame: bad header");
  }
  const uint8_t code = static_cast<uint8_t>(in[1]);
  in.remove_prefix(2);
  Slice message;
  if (!GetLengthPrefixedSlice(&in, &message)) {
    return Status::Corruption("reply frame: truncated message");
  }
  *status = StatusFromWire(code, message.ToString());
  *body = in;
  return Status::OK();
}

Status StatusFromWire(uint8_t code, std::string message) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kAborted:
      return Status::Aborted(std::move(message));
    case StatusCode::kDeadlock:
      return Status::Deadlock(std::move(message));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(message));
    case StatusCode::kIOError:
      return Status::IOError(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kNotSupported:
      return Status::NotSupported(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kSnapshotTooOld:
      return Status::SnapshotTooOld(std::move(message));
    case StatusCode::kSerializationFailure:
      return Status::SerializationFailure(std::move(message));
    case StatusCode::kReplicaReadOnly:
      return Status::ReplicaReadOnly(std::move(message));
    case StatusCode::kBusy:
      return Status::Busy(std::move(message));
  }
  return Status::Corruption("unknown wire status code " +
                            std::to_string(static_cast<int>(code)));
}

}  // namespace neosi
