// Wire protocol for the neosi network session front-end.
//
// Every message travels in a frame:
//
//   [u32 payload_len][u32 crc32c(payload)][payload]
//
// (both fixed fields little-endian, matching the WAL's record framing).
// The payload is `[u8 MsgType][body]`; request bodies use the same varint /
// length-prefixed / PropertyValue encodings as the store files, so the
// protocol layer is purely compositional over common/coding.h.
//
// Replies are `[u8 kReply][u8 status_code][lp message][body]` where `body`
// is present only on OK and is operation-specific (Begin returns the txn id
// and start timestamp, Commit the commit timestamp — the wire-level SI
// checker needs both to order histories). Error codes pass through the
// engine's StatusCode values verbatim, so retryable outcomes
// (SnapshotTooOld, SerializationFailure, ReplicaReadOnly, Busy) keep their
// retryability on the client side.
//
// A frame that fails validation (oversized length, CRC mismatch, truncated
// or malformed body) is never answered: the server drops the session,
// aborting any open transaction. Clients observe EOF and must reconnect.

#ifndef NEOSI_SERVER_PROTOCOL_H_
#define NEOSI_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/property_value.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "graph/views.h"

namespace neosi {

/// Frame header: u32 payload length + u32 crc32c of the payload.
constexpr size_t kFrameHeaderBytes = 8;

/// First payload byte.
enum class MsgType : uint8_t {
  kReply = 0,
  kBegin = 1,             ///< body: u8 isolation, u8 read_only
  kCommit = 2,            ///< body: empty
  kRollback = 3,          ///< body: empty
  kCreateNode = 4,        ///< body: vu32 nlabels, lp*, vu32 nprops, (lp,pv)*
  kSetNodeProperty = 5,   ///< body: vu64 node, lp key, pv value
  kGetNodeProperty = 6,   ///< body: vu64 node, lp key
  kGetNodesByLabel = 7,   ///< body: lp label
  kGetNodesByProperty = 8,///< body: lp key, pv value
  kCreateRelationship = 9,///< body: vu64 src, vu64 dst, lp type, vu32, (lp,pv)*
  kPing = 10,             ///< body: empty
};

/// Wraps a payload in a checksummed frame.
std::string EncodeFrame(const Slice& payload);

/// Outcome of scanning a byte buffer for one frame.
enum class FrameParse {
  kNeedMore,   ///< Fewer bytes than one complete frame; read again.
  kOk,         ///< *payload points into `buf`; *consumed bytes were used.
  kMalformed,  ///< Oversized declared length or CRC mismatch; drop session.
};

/// Tries to carve one frame off the front of `buf`. On kOk, `*payload` is
/// the validated payload (a view into `buf`) and `*consumed` the total
/// frame size to discard. `max_payload` bounds the declared length (defense
/// against hostile 4 GiB allocations).
FrameParse ParseFrame(const Slice& buf, size_t max_payload, Slice* payload,
                      size_t* consumed);

// --- Request encoders (client side) -------------------------------------

std::string EncodeBegin(IsolationLevel isolation, bool read_only);
std::string EncodeCommit();
std::string EncodeRollback();
std::string EncodePing();
std::string EncodeCreateNode(const std::vector<std::string>& labels,
                             const NamedProperties& props);
std::string EncodeSetNodeProperty(NodeId id, const std::string& key,
                                  const PropertyValue& value);
std::string EncodeGetNodeProperty(NodeId id, const std::string& key);
std::string EncodeGetNodesByLabel(const std::string& label);
std::string EncodeGetNodesByProperty(const std::string& key,
                                     const PropertyValue& value);
std::string EncodeCreateRelationship(NodeId src, NodeId dst,
                                     const std::string& type,
                                     const NamedProperties& props);

// --- Reply encoding/decoding ---------------------------------------------

/// `[u8 kReply][u8 code][lp message]` + `body` (body only meaningful on OK).
std::string EncodeReply(const Status& status, const Slice& body);

/// Splits a reply payload into its Status and body. Fails with Corruption
/// on a payload that is not a well-formed reply.
Status DecodeReply(const Slice& payload, Status* status, Slice* body);

/// Rebuilds a Status from its wire code (unknown codes map to Corruption —
/// a mismatched peer version should read as a protocol error, not OK).
Status StatusFromWire(uint8_t code, std::string message);

}  // namespace neosi

#endif  // NEOSI_SERVER_PROTOCOL_H_
