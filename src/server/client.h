// Blocking client for the neosi wire protocol.
//
// One Client == one session == at most one open transaction. Not
// thread-safe: a session is a serial command stream, so give each thread
// its own Client (the server multiplexes them over its worker pool).
//
// Every call returns the server-side Status verbatim, so the embedded
// retry contract carries over the wire: Status::IsRetryable() covers
// write-conflict aborts, deadlock victims, SnapshotTooOld,
// SerializationFailure, ReplicaReadOnly, and admission-control Busy sheds.
// A dropped connection (server restart, protocol violation, idle timeout)
// surfaces as IOError; reconnect with Connect() and retry the transaction.

#ifndef NEOSI_SERVER_CLIENT_H_
#define NEOSI_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/views.h"
#include "server/protocol.h"

namespace neosi {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (closing any previous connection first).
  Status Connect(const std::string& host, uint16_t port);

  /// Closes the socket; the server aborts any transaction left open.
  void Close();

  bool connected() const { return fd_ >= 0; }

  /// What the server reported when the transaction began / committed —
  /// the ordering facts a wire-level history checker needs.
  struct BeginInfo {
    uint64_t txn_id = 0;
    Timestamp start_ts = 0;
  };

  Result<BeginInfo> Begin(
      IsolationLevel isolation = IsolationLevel::kSnapshotIsolation,
      bool read_only = false);
  Result<Timestamp> Commit();
  Status Rollback();
  Status Ping();

  Result<NodeId> CreateNode(const std::vector<std::string>& labels,
                            const NamedProperties& props = {});
  Status SetNodeProperty(NodeId id, const std::string& key,
                         const PropertyValue& value);
  Result<PropertyValue> GetNodeProperty(NodeId id, const std::string& key);
  Result<std::vector<NodeId>> GetNodesByLabel(const std::string& label);
  Result<std::vector<NodeId>> GetNodesByProperty(const std::string& key,
                                                 const PropertyValue& value);
  Result<RelId> CreateRelationship(NodeId src, NodeId dst,
                                   const std::string& type,
                                   const NamedProperties& props = {});

 private:
  /// Frames `payload`, sends it, and reads back one reply frame. On OK the
  /// reply body is left in `*body` (backed by reply_storage_).
  Status RoundTrip(const std::string& payload, Slice* body);
  Status SendAll(const char* data, size_t n);
  Status RecvAll(char* data, size_t n);

  int fd_ = -1;
  std::string reply_storage_;
};

}  // namespace neosi

#endif  // NEOSI_SERVER_CLIENT_H_
