// Network session front-end: a socket server multiplexing client sessions
// over an embedded GraphDatabase.
//
// Shape (PostgreSQL postmaster/backend split, scaled down): ONE epoll
// thread owns every socket — it accepts, reads frames, writes replies, and
// sweeps idle sessions — while a fixed pool of `workers` threads executes
// requests against the engine. There is no thread-per-connection anywhere:
// a thousand mostly-idle sessions cost a thousand fds, not a thousand
// stacks. Sessions are handed between the epoll thread and a worker through
// mutex-protected queues (an eventfd wakes the epoll thread for rearms), so
// each Session object always has exactly one owner:
//
//   kReading    epoll thread owns it; fd armed EPOLLIN | EPOLLONESHOT
//   kExecuting  a worker owns it; fd armed for NOTHING (oneshot fired)
//   kWriting    epoll thread owns it; fd armed EPOLLOUT | EPOLLONESHOT
//
// Admission control gates NEW wire Begins only — established snapshots are
// never aborted by admission (that stays the snapshot-lifecycle policy's
// job). Two signals, each with its own DatabaseStats counter:
//
//   * GC backlog: while engine().gc_list.backlog() sits above the
//     database's snapshot_expire_backlog threshold, a Begin first waits up
//     to admission_delay_ms for the drain (admission_delayed); if the gauge
//     is still over, the Begin is shed with retryable Status::Busy
//     (admission_shed_backlog).
//   * Session cap: with max_sessions wire transactions already open, a
//     Begin is shed immediately (admission_shed_sessions) — open snapshots
//     do not drain on a deadline the way a GC backlog does, so delaying
//     would just burn a worker.
//
// Protocol violations (oversized frame, CRC mismatch, truncated or
// malformed body) and idle timeouts drop the session: the open transaction
// is aborted (locks released, snapshot unregistered) and the fd closed. The
// server never replies to a frame it cannot trust.

#ifndef NEOSI_SERVER_SERVER_H_
#define NEOSI_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/graph_database.h"
#include "server/protocol.h"

namespace neosi {

struct ServerOptions {
  /// Listen address. The default binds loopback only.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Worker threads executing requests; 0 = min(4, hardware_concurrency).
  int workers = 0;
  /// Cap on concurrently OPEN wire transactions (one per session); Begins
  /// beyond it are shed with Status::Busy. 0 = unlimited.
  uint32_t max_sessions = 0;
  /// Sessions idle (no in-flight request) longer than this are dropped and
  /// their transaction aborted. 0 = never.
  uint64_t idle_timeout_ms = 0;
  /// How long a Begin may wait for a GC-backlog drain before being shed.
  uint64_t admission_delay_ms = 5;
  /// Largest accepted frame payload; bigger declared lengths are a
  /// protocol violation (session dropped before buffering anything).
  uint32_t max_frame_bytes = 1 << 20;
};

/// One connected client. Internal, but visible for the session gauge.
class Server {
 public:
  /// Binds, listens, and spins up the epoll + worker threads. The database
  /// must outlive the Server; destroy (or Stop) the Server first.
  static Result<std::unique_ptr<Server>> Start(GraphDatabase* db,
                                               const ServerOptions& options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Idempotent; joins all threads and aborts every session's transaction.
  void Stop();

  /// The bound port (resolves port 0).
  uint16_t port() const { return port_; }

  /// Live connected-session gauge.
  uint64_t sessions() const {
    return session_gauge_.load(std::memory_order_relaxed);
  }

  /// Sessions dropped for protocol violations (lifetime counter).
  uint64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }

  /// Sessions dropped by the idle sweep (lifetime counter).
  uint64_t idle_drops() const {
    return idle_drops_.load(std::memory_order_relaxed);
  }

 private:
  struct Session {
    int fd = -1;
    enum class State { kReading, kExecuting, kWriting };
    State state = State::kReading;
    std::string inbuf;          ///< Raw bytes read; frames carved off front.
    std::string request;        ///< Payload of the frame being executed.
    std::string outbuf;         ///< Encoded reply frame being written.
    size_t out_off = 0;
    std::unique_ptr<Transaction> txn;
    std::chrono::steady_clock::time_point last_active;
  };

  Server(GraphDatabase* db, const ServerOptions& options);

  Status Listen();
  void EpollLoop();
  void WorkerLoop();

  // Epoll-thread-only helpers.
  void AcceptAll();
  void OnReadable(Session* s);
  void OnWritable(Session* s);
  void DrainRearmQueue();
  void SweepIdle();
  /// Parses inbuf; dispatches to a worker, tears down on violation.
  void PumpInput(Session* s);
  void ArmRead(Session* s);
  void ArmWrite(Session* s);
  void Teardown(Session* s);
  /// Stop()-only (all threads joined): best-effort bounded-blocking flush
  /// of every session's pending reply, so a commit the engine already
  /// acked never loses its reply to shutdown (the client would record an
  /// abort for a transaction whose write is durable).
  void FlushPendingRepliesOnStop();

  // Worker-side execution.
  void Execute(Session* s);
  std::string ExecutePayload(Session* s, const Slice& payload);
  std::string HandleBegin(Session* s, Slice body);

  GraphDatabase* const db_;
  const ServerOptions options_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;

  std::atomic<bool> stop_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> session_gauge_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> idle_drops_{0};
  /// Open wire transactions (the max_sessions admission gauge).
  std::atomic<uint64_t> open_txns_{0};

  /// All sessions, keyed by fd. Epoll thread only.
  std::unordered_map<int, std::unique_ptr<Session>> sessions_;

  /// Sessions with a validated request, waiting for a worker.
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<Session*> work_queue_;  // nullptr = worker shutdown sentinel

  /// Sessions a worker finished with, waiting for the epoll thread to
  /// start writing the reply.
  std::mutex rearm_mu_;
  std::deque<Session*> rearm_queue_;

  std::thread epoll_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace neosi

#endif  // NEOSI_SERVER_SERVER_H_
