#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace neosi {

Status Client::Connect(const std::string& host, uint16_t port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IOError("socket: " +
                                     std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + strerror(err));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::SendAll(const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    Close();
    return Status::IOError("send failed; session dropped");
  }
  return Status::OK();
}

Status Client::RecvAll(char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t r = ::recv(fd_, data + off, n - off, 0);
    if (r > 0) {
      off += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    Close();
    return Status::IOError(
        r == 0 ? "connection closed by server (session dropped)"
               : "recv failed");
  }
  return Status::OK();
}

Status Client::RoundTrip(const std::string& payload, Slice* body) {
  if (fd_ < 0) return Status::IOError("client is not connected");
  const std::string frame = EncodeFrame(payload);
  NEOSI_RETURN_IF_ERROR(SendAll(frame.data(), frame.size()));

  char header[kFrameHeaderBytes];
  NEOSI_RETURN_IF_ERROR(RecvAll(header, sizeof(header)));
  const uint32_t len = DecodeFixed32(header);
  const uint32_t crc = DecodeFixed32(header + 4);
  if (len > (64u << 20)) {
    Close();
    return Status::Corruption("oversized reply frame");
  }
  reply_storage_.resize(len);
  NEOSI_RETURN_IF_ERROR(RecvAll(reply_storage_.data(), len));
  if (Crc32c(reply_storage_.data(), len) != crc) {
    Close();
    return Status::Corruption("reply CRC mismatch");
  }
  Status wire_status;
  NEOSI_RETURN_IF_ERROR(DecodeReply(reply_storage_, &wire_status, body));
  return wire_status;
}

Result<Client::BeginInfo> Client::Begin(IsolationLevel isolation,
                                        bool read_only) {
  Slice body;
  NEOSI_RETURN_IF_ERROR(RoundTrip(EncodeBegin(isolation, read_only), &body));
  BeginInfo info;
  if (!GetVarint64(&body, &info.txn_id) ||
      !GetVarint64(&body, &info.start_ts)) {
    return Status::Corruption("begin reply: bad body");
  }
  return info;
}

Result<Timestamp> Client::Commit() {
  Slice body;
  NEOSI_RETURN_IF_ERROR(RoundTrip(EncodeCommit(), &body));
  uint64_t commit_ts = 0;
  if (!GetVarint64(&body, &commit_ts)) {
    return Status::Corruption("commit reply: bad body");
  }
  return static_cast<Timestamp>(commit_ts);
}

Status Client::Rollback() {
  Slice body;
  return RoundTrip(EncodeRollback(), &body);
}

Status Client::Ping() {
  Slice body;
  return RoundTrip(EncodePing(), &body);
}

Result<NodeId> Client::CreateNode(const std::vector<std::string>& labels,
                                  const NamedProperties& props) {
  Slice body;
  NEOSI_RETURN_IF_ERROR(RoundTrip(EncodeCreateNode(labels, props), &body));
  uint64_t id = 0;
  if (!GetVarint64(&body, &id)) {
    return Status::Corruption("create-node reply: bad body");
  }
  return static_cast<NodeId>(id);
}

Status Client::SetNodeProperty(NodeId id, const std::string& key,
                               const PropertyValue& value) {
  Slice body;
  return RoundTrip(EncodeSetNodeProperty(id, key, value), &body);
}

Result<PropertyValue> Client::GetNodeProperty(NodeId id,
                                              const std::string& key) {
  Slice body;
  NEOSI_RETURN_IF_ERROR(RoundTrip(EncodeGetNodeProperty(id, key), &body));
  PropertyValue value;
  NEOSI_RETURN_IF_ERROR(PropertyValue::DecodeFrom(&body, &value));
  return value;
}

namespace {
Result<std::vector<NodeId>> DecodeIdList(Slice body) {
  uint32_t count = 0;
  if (!GetVarint32(&body, &count)) {
    return Status::Corruption("id-list reply: bad count");
  }
  std::vector<NodeId> ids;
  ids.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    if (!GetVarint64(&body, &id)) {
      return Status::Corruption("id-list reply: truncated");
    }
    ids.push_back(static_cast<NodeId>(id));
  }
  return ids;
}
}  // namespace

Result<std::vector<NodeId>> Client::GetNodesByLabel(
    const std::string& label) {
  Slice body;
  NEOSI_RETURN_IF_ERROR(RoundTrip(EncodeGetNodesByLabel(label), &body));
  return DecodeIdList(body);
}

Result<std::vector<NodeId>> Client::GetNodesByProperty(
    const std::string& key, const PropertyValue& value) {
  Slice body;
  NEOSI_RETURN_IF_ERROR(
      RoundTrip(EncodeGetNodesByProperty(key, value), &body));
  return DecodeIdList(body);
}

Result<RelId> Client::CreateRelationship(NodeId src, NodeId dst,
                                         const std::string& type,
                                         const NamedProperties& props) {
  Slice body;
  NEOSI_RETURN_IF_ERROR(
      RoundTrip(EncodeCreateRelationship(src, dst, type, props), &body));
  uint64_t id = 0;
  if (!GetVarint64(&body, &id)) {
    return Status::Corruption("create-rel reply: bad body");
  }
  return static_cast<RelId>(id);
}

}  // namespace neosi
