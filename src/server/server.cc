#include "server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <cstring>

namespace neosi {

namespace {

/// epoll_data.ptr sentinels for the two non-session fds.
void* const kListenTag = nullptr;
void* const kEventTag = reinterpret_cast<void*>(1);

bool GetProps(Slice* in, NamedProperties* props) {
  uint32_t n = 0;
  if (!GetVarint32(in, &n)) return false;
  if (n > (1u << 16)) return false;  // Hostile count guard.
  for (uint32_t i = 0; i < n; ++i) {
    Slice key;
    PropertyValue value;
    if (!GetLengthPrefixedSlice(in, &key)) return false;
    if (!PropertyValue::DecodeFrom(in, &value).ok()) return false;
    (*props)[key.ToString()] = std::move(value);
  }
  return true;
}

std::string OkReply() { return EncodeReply(Status::OK(), Slice()); }

std::string OkReplyWithBody(const std::string& body) {
  return EncodeReply(Status::OK(), body);
}

std::string ErrorReply(const Status& status) {
  return EncodeReply(status, Slice());
}

std::string IdListReply(const std::vector<uint64_t>& ids) {
  std::string body;
  PutVarint32(&body, static_cast<uint32_t>(ids.size()));
  for (uint64_t id : ids) PutVarint64(&body, id);
  return OkReplyWithBody(body);
}

}  // namespace

Server::Server(GraphDatabase* db, const ServerOptions& options)
    : db_(db), options_(options) {}

Result<std::unique_ptr<Server>> Server::Start(GraphDatabase* db,
                                              const ServerOptions& options) {
  if (db == nullptr) {
    return Status::InvalidArgument("Server::Start: null database");
  }
  std::unique_ptr<Server> server(new Server(db, options));
  NEOSI_RETURN_IF_ERROR(server->Listen());
  int workers = options.workers;
  if (workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = static_cast<int>(hw == 0 ? 2 : (hw < 4 ? hw : 4));
  }
  server->epoll_thread_ = std::thread(&Server::EpollLoop, server.get());
  server->workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    server->workers_.emplace_back(&Server::WorkerLoop, server.get());
  }
  return server;
}

Server::~Server() { Stop(); }

Status Server::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Status::IOError("socket: " +
                                             std::string(strerror(errno)));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen host " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError("bind " + options_.host + ":" +
                           std::to_string(options_.port) + ": " +
                           strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::IOError("listen: " + std::string(strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || event_fd_ < 0) {
    return Status::IOError("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = kListenTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.ptr = kEventTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);
  return Status::OK();
}

void Server::Stop() {
  if (stopped_.exchange(true)) return;
  stop_.store(true, std::memory_order_release);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
  if (epoll_thread_.joinable()) epoll_thread_.join();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    for (size_t i = 0; i < workers_.size(); ++i) {
      work_queue_.push_back(nullptr);
    }
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // All threads are gone; sessions are exclusively ours now. Every request
  // that was ever queued has been executed (sentinels sit BEHIND real work
  // in the FIFO), so first deliver the replies those executions produced:
  // a Commit the engine applied whose reply evaporated here would leave
  // the client believing in an abort while the write is durable.
  FlushPendingRepliesOnStop();
  // Then abort every still-open transaction so locks release and
  // snapshots unregister.
  for (auto& [fd, session] : sessions_) {
    if (session->txn) {
      if (session->txn->IsActive()) session->txn->Abort();
      session->txn.reset();
      open_txns_.fetch_sub(1, std::memory_order_relaxed);
    }
    ::close(session->fd);
  }
  sessions_.clear();
  session_gauge_.store(0, std::memory_order_relaxed);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
  listen_fd_ = epoll_fd_ = event_fd_ = -1;
}

void Server::FlushPendingRepliesOnStop() {
  // Collect the sessions workers finished with after the epoll thread
  // left; their framed replies are sitting in outbuf like any kWriting
  // session's.
  {
    std::lock_guard<std::mutex> lock(rearm_mu_);
    rearm_queue_.clear();  // The walk below covers every session.
  }
  for (auto& [fd, session] : sessions_) {
    Session* s = session.get();
    if (s->out_off >= s->outbuf.size()) continue;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
    while (s->out_off < s->outbuf.size()) {
      const ssize_t n = ::send(s->fd, s->outbuf.data() + s->out_off,
                               s->outbuf.size() - s->out_off, MSG_NOSIGNAL);
      if (n > 0) {
        s->out_off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
          std::chrono::steady_clock::now() < deadline) {
        pollfd pfd{s->fd, POLLOUT, 0};
        ::poll(&pfd, 1, 10);
        continue;
      }
      break;  // Peer gone or deadline passed: nothing left to deliver.
    }
  }
}

void Server::EpollLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    int timeout_ms = -1;
    if (options_.idle_timeout_ms > 0) {
      timeout_ms = static_cast<int>(
          options_.idle_timeout_ms < 100 ? options_.idle_timeout_ms : 100);
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (stop_.load(std::memory_order_acquire)) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      void* tag = events[i].data.ptr;
      if (tag == kListenTag) {
        AcceptAll();
      } else if (tag == kEventTag) {
        uint64_t drain;
        while (::read(event_fd_, &drain, sizeof(drain)) > 0) {
        }
      } else {
        Session* s = static_cast<Session*>(tag);
        const uint32_t ev = events[i].events;
        if (s->state == Session::State::kWriting) {
          if (ev & (EPOLLERR | EPOLLHUP)) {
            Teardown(s);
          } else {
            OnWritable(s);
          }
        } else {
          // kReading: EPOLLRDHUP/EPOLLHUP surface through read() returning
          // 0, so just attempt the read.
          OnReadable(s);
        }
      }
    }
    DrainRearmQueue();
    SweepIdle();
  }
}

void Server::AcceptAll() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (or transient error): back to epoll.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto session = std::make_unique<Session>();
    session->fd = fd;
    session->last_active = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
    ev.data.ptr = session.get();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    sessions_[fd] = std::move(session);
    session_gauge_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::ArmRead(Session* s) {
  s->state = Session::State::kReading;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
  ev.data.ptr = s;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, s->fd, &ev);
}

void Server::ArmWrite(Session* s) {
  s->state = Session::State::kWriting;
  epoll_event ev{};
  ev.events = EPOLLOUT | EPOLLONESHOT;
  ev.data.ptr = s;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, s->fd, &ev);
}

void Server::Teardown(Session* s) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, s->fd, nullptr);
  ::close(s->fd);
  if (s->txn) {
    if (s->txn->IsActive()) s->txn->Abort();
    s->txn.reset();
    open_txns_.fetch_sub(1, std::memory_order_relaxed);
  }
  sessions_.erase(s->fd);
  session_gauge_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::OnReadable(Session* s) {
  char buf[16 * 1024];
  while (true) {
    const ssize_t n = ::read(s->fd, buf, sizeof(buf));
    if (n > 0) {
      s->inbuf.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {  // Peer closed.
      Teardown(s);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    Teardown(s);
    return;
  }
  s->last_active = std::chrono::steady_clock::now();
  PumpInput(s);
}

void Server::PumpInput(Session* s) {
  Slice payload;
  size_t consumed = 0;
  switch (ParseFrame(s->inbuf, options_.max_frame_bytes, &payload,
                     &consumed)) {
    case FrameParse::kNeedMore:
      ArmRead(s);
      return;
    case FrameParse::kMalformed:
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      Teardown(s);
      return;
    case FrameParse::kOk:
      break;
  }
  s->request.assign(payload.data(), payload.size());
  s->inbuf.erase(0, consumed);
  s->state = Session::State::kExecuting;
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_queue_.push_back(s);
  }
  work_cv_.notify_one();
}

void Server::OnWritable(Session* s) {
  while (s->out_off < s->outbuf.size()) {
    const ssize_t n = ::send(s->fd, s->outbuf.data() + s->out_off,
                             s->outbuf.size() - s->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      s->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      ArmWrite(s);
      return;
    }
    Teardown(s);
    return;
  }
  s->outbuf.clear();
  s->out_off = 0;
  s->last_active = std::chrono::steady_clock::now();
  // Pipelined requests may already be buffered; otherwise rearm for reads.
  PumpInput(s);
}

void Server::DrainRearmQueue() {
  std::deque<Session*> done;
  {
    std::lock_guard<std::mutex> lock(rearm_mu_);
    done.swap(rearm_queue_);
  }
  for (Session* s : done) {
    if (s->outbuf.empty()) {
      // The worker flagged a protocol violation (malformed body inside a
      // CRC-valid frame): no reply, drop the session.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      Teardown(s);
      continue;
    }
    OnWritable(s);
  }
}

void Server::SweepIdle() {
  if (options_.idle_timeout_ms == 0) return;
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<Session*> victims;
  for (auto& [fd, session] : sessions_) {
    if (session->state == Session::State::kReading &&
        now - session->last_active > limit) {
      victims.push_back(session.get());
    }
  }
  for (Session* s : victims) {
    idle_drops_.fetch_add(1, std::memory_order_relaxed);
    Teardown(s);
  }
}

void Server::WorkerLoop() {
  while (true) {
    Session* s;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [this] { return !work_queue_.empty(); });
      s = work_queue_.front();
      work_queue_.pop_front();
    }
    if (s == nullptr) return;  // Shutdown sentinel.
    Execute(s);
    {
      std::lock_guard<std::mutex> lock(rearm_mu_);
      rearm_queue_.push_back(s);
    }
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
  }
}

void Server::Execute(Session* s) {
  const std::string reply = ExecutePayload(s, s->request);
  s->request.clear();
  // Empty reply = protocol violation; DrainRearmQueue tears the session
  // down. Otherwise frame it for the epoll thread to write.
  s->outbuf = reply.empty() ? std::string() : EncodeFrame(reply);
  s->out_off = 0;
}

std::string Server::ExecutePayload(Session* s, const Slice& payload) {
  Slice in = payload;
  const auto type = static_cast<MsgType>(in[0]);
  in.remove_prefix(1);
  switch (type) {
    case MsgType::kPing:
      return in.empty() ? OkReply() : std::string();

    case MsgType::kBegin:
      return HandleBegin(s, in);

    case MsgType::kCommit: {
      if (!in.empty()) return std::string();
      if (!s->txn) {
        return ErrorReply(
            Status::FailedPrecondition("commit without open transaction"));
      }
      const Status st = s->txn->Commit();
      std::string reply;
      if (st.ok()) {
        std::string body;
        PutVarint64(&body, s->txn->commit_ts());
        reply = OkReplyWithBody(body);
      } else {
        reply = ErrorReply(st);
      }
      s->txn.reset();
      open_txns_.fetch_sub(1, std::memory_order_relaxed);
      return reply;
    }

    case MsgType::kRollback: {
      if (!in.empty()) return std::string();
      if (!s->txn) {
        return ErrorReply(
            Status::FailedPrecondition("rollback without open transaction"));
      }
      if (s->txn->IsActive()) s->txn->Abort();
      s->txn.reset();
      open_txns_.fetch_sub(1, std::memory_order_relaxed);
      return OkReply();
    }

    case MsgType::kCreateNode: {
      if (!s->txn) {
        return ErrorReply(Status::FailedPrecondition("no open transaction"));
      }
      uint32_t nlabels = 0;
      if (!GetVarint32(&in, &nlabels) || nlabels > (1u << 16)) {
        return std::string();
      }
      std::vector<std::string> labels;
      labels.reserve(nlabels);
      for (uint32_t i = 0; i < nlabels; ++i) {
        Slice label;
        if (!GetLengthPrefixedSlice(&in, &label)) return std::string();
        labels.push_back(label.ToString());
      }
      NamedProperties props;
      if (!GetProps(&in, &props) || !in.empty()) return std::string();
      auto id = s->txn->CreateNode(labels, props);
      if (!id.ok()) return ErrorReply(id.status());
      std::string body;
      PutVarint64(&body, *id);
      return OkReplyWithBody(body);
    }

    case MsgType::kSetNodeProperty: {
      if (!s->txn) {
        return ErrorReply(Status::FailedPrecondition("no open transaction"));
      }
      uint64_t node = 0;
      Slice key;
      PropertyValue value;
      if (!GetVarint64(&in, &node) || !GetLengthPrefixedSlice(&in, &key) ||
          !PropertyValue::DecodeFrom(&in, &value).ok() || !in.empty()) {
        return std::string();
      }
      const Status st =
          s->txn->SetNodeProperty(node, key.ToString(), std::move(value));
      return st.ok() ? OkReply() : ErrorReply(st);
    }

    case MsgType::kGetNodeProperty: {
      if (!s->txn) {
        return ErrorReply(Status::FailedPrecondition("no open transaction"));
      }
      uint64_t node = 0;
      Slice key;
      if (!GetVarint64(&in, &node) || !GetLengthPrefixedSlice(&in, &key) ||
          !in.empty()) {
        return std::string();
      }
      auto value = s->txn->GetNodeProperty(node, key.ToString());
      if (!value.ok()) return ErrorReply(value.status());
      std::string body;
      value->EncodeTo(&body);
      return OkReplyWithBody(body);
    }

    case MsgType::kGetNodesByLabel: {
      if (!s->txn) {
        return ErrorReply(Status::FailedPrecondition("no open transaction"));
      }
      Slice label;
      if (!GetLengthPrefixedSlice(&in, &label) || !in.empty()) {
        return std::string();
      }
      auto ids = s->txn->GetNodesByLabel(label.ToString());
      if (!ids.ok()) return ErrorReply(ids.status());
      return IdListReply(*ids);
    }

    case MsgType::kGetNodesByProperty: {
      if (!s->txn) {
        return ErrorReply(Status::FailedPrecondition("no open transaction"));
      }
      Slice key;
      PropertyValue value;
      if (!GetLengthPrefixedSlice(&in, &key) ||
          !PropertyValue::DecodeFrom(&in, &value).ok() || !in.empty()) {
        return std::string();
      }
      auto ids = s->txn->GetNodesByProperty(key.ToString(), value);
      if (!ids.ok()) return ErrorReply(ids.status());
      return IdListReply(*ids);
    }

    case MsgType::kCreateRelationship: {
      if (!s->txn) {
        return ErrorReply(Status::FailedPrecondition("no open transaction"));
      }
      uint64_t src = 0, dst = 0;
      Slice type_name;
      if (!GetVarint64(&in, &src) || !GetVarint64(&in, &dst) ||
          !GetLengthPrefixedSlice(&in, &type_name)) {
        return std::string();
      }
      NamedProperties props;
      if (!GetProps(&in, &props) || !in.empty()) return std::string();
      auto id =
          s->txn->CreateRelationship(src, dst, type_name.ToString(), props);
      if (!id.ok()) return ErrorReply(id.status());
      std::string body;
      PutVarint64(&body, *id);
      return OkReplyWithBody(body);
    }

    case MsgType::kReply:
      break;  // Clients never send replies.
  }
  return std::string();  // Unknown MsgType: protocol violation.
}

std::string Server::HandleBegin(Session* s, Slice body) {
  if (body.size() != 2) return std::string();
  const uint8_t iso_raw = static_cast<uint8_t>(body[0]);
  const uint8_t ro_raw = static_cast<uint8_t>(body[1]);
  if (iso_raw > static_cast<uint8_t>(IsolationLevel::kSerializable) ||
      ro_raw > 1) {
    return std::string();
  }
  if (s->txn) {
    return ErrorReply(
        Status::FailedPrecondition("transaction already open on session"));
  }

  Engine& engine = db_->engine();
  AdmissionCounters& admission = engine.admission;

  // Gate 1 — GC backlog. The same gauge/threshold pair the snapshot
  // lifecycle policy uses for expiry: while reclamation is drowning, taking
  // MORE snapshots (each one pins the watermark) makes the spiral worse, so
  // hold new Begins at the door. Wait briefly for a drain (the GC daemon
  // may be one nudge away), then shed with retryable Busy. Established
  // snapshots are untouched either way.
  const uint64_t threshold = engine.options.snapshot_expire_backlog;
  if (threshold > 0 && engine.gc_list.backlog() > threshold) {
    bool over = true;
    admission.delayed.fetch_add(1, std::memory_order_relaxed);
    admission.waiting.fetch_add(1, std::memory_order_relaxed);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.admission_delay_ms);
    while (!stop_.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (engine.gc_list.backlog() <= threshold) {
        over = false;
        break;
      }
    }
    admission.waiting.fetch_sub(1, std::memory_order_relaxed);
    if (over) {
      admission.shed_backlog.fetch_add(1, std::memory_order_relaxed);
      return ErrorReply(Status::Busy(
          "admission: GC backlog " +
          std::to_string(engine.gc_list.backlog()) + " over threshold " +
          std::to_string(threshold) + "; retry after drain"));
    }
  }

  // Gate 2 — session cap: reserve an open-transaction slot. Unlike the
  // backlog, an occupied slot has no deadline to drain on, so shed
  // immediately rather than parking a worker.
  if (options_.max_sessions > 0) {
    uint64_t current = open_txns_.load(std::memory_order_relaxed);
    bool reserved = false;
    while (current < options_.max_sessions) {
      if (open_txns_.compare_exchange_weak(current, current + 1,
                                           std::memory_order_relaxed)) {
        reserved = true;
        break;
      }
    }
    if (!reserved) {
      admission.shed_sessions.fetch_add(1, std::memory_order_relaxed);
      return ErrorReply(Status::Busy(
          "admission: " + std::to_string(options_.max_sessions) +
          " sessions already hold transactions; retry later"));
    }
  } else {
    open_txns_.fetch_add(1, std::memory_order_relaxed);
  }

  TransactionOptions txn_options;
  txn_options.read_only = (ro_raw == 1);
  s->txn = db_->Begin(static_cast<IsolationLevel>(iso_raw), txn_options);
  admission.admitted.fetch_add(1, std::memory_order_relaxed);
  std::string reply_body;
  PutVarint64(&reply_body, s->txn->id());
  PutVarint64(&reply_body, s->txn->start_ts());
  return OkReplyWithBody(reply_body);
}

}  // namespace neosi
