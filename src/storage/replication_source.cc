#include "storage/replication_source.h"

#include <algorithm>
#include <string>

#include "common/coding.h"
#include "storage/wal.h"

namespace neosi {

namespace {

constexpr size_t kFrameHeader = 8;  // u32 length + u32 crc

// Mirrors the segment header wal.cc writes: magic(4) version(4) base(8)
// epoch(8) crc(4), zero-padded to Wal::kSegmentHeaderSize ("NWS1").
constexpr uint32_t kSegmentMagic = 0x3153574e;
constexpr uint32_t kSegmentVersion = 1;
constexpr size_t kSegmentCrcOffset = 24;

struct TailSegment {
  uint64_t index = 0;
  Lsn base = 0;
  uint64_t epoch = 0;
  std::unique_ptr<PagedFile> file;
};

/// True iff `name` is "wal." followed by digits only (free-pool files are
/// "wal.free.NNNNNN" and fail the all-digits check).
bool ParseSegmentName(const std::string& name, uint64_t* index) {
  constexpr const char* kPrefix = "wal.";
  constexpr size_t kPrefixLen = 4;
  if (name.size() <= kPrefixLen || name.compare(0, kPrefixLen, kPrefix)) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = kPrefixLen; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *index = value;
  return true;
}

/// Reads and validates `file`'s segment header. Returns false (not an
/// error) when the header is absent, torn, or fails its CRC — for a tailer
/// that simply means the file is mid-recycle or mid-creation and the next
/// poll will see a settled state.
bool ReadHeader(PagedFile* file, Lsn* base, uint64_t* epoch) {
  char buf[Wal::kSegmentHeaderSize];
  if (file->Size() < Wal::kSegmentHeaderSize) return false;
  if (!file->ReadAt(0, Wal::kSegmentHeaderSize, buf).ok()) return false;
  if (DecodeFixed32(buf) != kSegmentMagic) return false;
  if (DecodeFixed32(buf + kSegmentCrcOffset) !=
      Crc32c(buf, kSegmentCrcOffset)) {
    return false;
  }
  if (DecodeFixed32(buf + 4) != kSegmentVersion) return false;
  *base = DecodeFixed64(buf + 8);
  *epoch = DecodeFixed64(buf + 16);
  return true;
}

}  // namespace

Status WalDirReplicationSource::Poll(Lsn cursor,
                                     std::vector<ShippedRecord>* out,
                                     Lsn* next_cursor) {
  *next_cursor = cursor;

  // Snapshot the directory and open every segment whose header validates.
  // Races are benign by construction: a file that vanished or whose header
  // does not (yet) validate is skipped and re-examined next poll.
  std::vector<std::string> names;
  NEOSI_RETURN_IF_ERROR(dir_->List(&names));
  std::vector<TailSegment> segments;
  for (const std::string& name : names) {
    uint64_t index = 0;
    if (!ParseSegmentName(name, &index)) continue;
    TailSegment seg;
    seg.index = index;
    Status s = dir_->OpenExisting(name, &seg.file);
    if (s.IsNotFound()) continue;  // Raced retirement.
    NEOSI_RETURN_IF_ERROR(s);
    if (!ReadHeader(seg.file.get(), &seg.base, &seg.epoch)) continue;
    segments.push_back(std::move(seg));
  }
  if (segments.empty()) return Status::OK();  // Primary not initialized yet.
  std::sort(segments.begin(), segments.end(),
            [](const TailSegment& a, const TailSegment& b) {
              return a.base < b.base;
            });

  if (cursor < segments.front().base) {
    return Status::Corruption(
        "replication cursor " + std::to_string(cursor) +
        " is below the primary's oldest retained segment (base " +
        std::to_string(segments.front().base) +
        "): history was checkpointed away; re-seed this replica from a "
        "fresh copy of the primary (see wal_keep_segments)");
  }

  std::vector<char> buf;
  for (size_t i = 0; i < segments.size(); ++i) {
    TailSegment& seg = segments[i];
    // A segment's frames end where its successor begins; the newest
    // segment's end is wherever its valid frame prefix stops.
    const bool has_successor = i + 1 < segments.size();
    const Lsn seg_end = has_successor ? segments[i + 1].base : kInvalidId;
    if (has_successor && seg_end <= cursor) continue;

    const size_t batch_start = out->size();
    Lsn lsn = std::max(cursor, seg.base);
    bool clean_stop = true;  // len==0 / short tail, vs CRC/decode failure
    for (;;) {
      if (has_successor && lsn >= seg_end) break;
      const uint64_t offset = Wal::kSegmentHeaderSize + (lsn - seg.base);
      const uint64_t size = seg.file->Size();
      if (offset + kFrameHeader > size) break;
      char header[kFrameHeader];
      if (!seg.file->ReadAt(offset, kFrameHeader, header).ok()) break;
      const uint32_t len = DecodeFixed32(header);
      const uint32_t crc = DecodeFixed32(header + 4);
      if (len == 0 || offset + kFrameHeader + len > size) break;
      buf.resize(len);
      if (!seg.file->ReadAt(offset + kFrameHeader, len, buf.data()).ok()) {
        break;
      }
      if (Crc32c(buf.data(), len) != crc) {
        clean_stop = false;  // In-flight append or recycled-under-us bytes.
        break;
      }
      ShippedRecord shipped;
      shipped.lsn = lsn;
      Status decode =
          WalRecord::DecodeFrom(Slice(buf.data(), len), &shipped.record);
      if (!decode.ok()) {
        clean_stop = false;
        break;
      }
      out->push_back(std::move(shipped));
      lsn += kFrameHeader + len;
    }

    // Identity re-check: if the segment was recycled under the reads above,
    // nothing read from it can be trusted — drop this segment's batch and
    // let the next poll re-list. With the identity intact the CRC-verified
    // frames are final bytes of this segment.
    Lsn base_now = 0;
    uint64_t epoch_now = 0;
    if (!ReadHeader(seg.file.get(), &base_now, &epoch_now) ||
        base_now != seg.base || epoch_now != seg.epoch) {
      out->resize(batch_start);
      return Status::OK();
    }

    // Inside the chain every byte up to the successor's base is final: a
    // stop mid-segment there is real corruption, not a torn tail.
    if (has_successor && lsn < seg_end) {
      if (out->size() == batch_start && clean_stop) {
        // No frame at the cursor at all — the cursor points into a segment
        // whose content was checkpointed away and recycled with a reused
        // base. Unreachable in practice (bases are monotonic), but report
        // it as the gap it is rather than spin.
        return Status::Corruption(
            "replication cursor " + std::to_string(cursor) +
            " not found in segment with base " + std::to_string(seg.base));
      }
      return Status::Corruption(
          "short frame walk in non-newest wal segment (base " +
          std::to_string(seg.base) + ", lsn " + std::to_string(lsn) +
          ", expected frames to " + std::to_string(seg_end) + ")");
    }

    *next_cursor = lsn;
    cursor = lsn;
    if (!clean_stop) break;  // Tail in flux; ship what we have.
  }
  return Status::OK();
}

}  // namespace neosi
