// Interned token registries for labels, property keys and relationship
// types.
//
// Neo4j never deletes tokens; the paper (§4) therefore VERSIONS them: each
// token records the commit timestamp of the transaction that created it, and
// a reader whose snapshot predates the token simply discards it. GetOrCreate
// is what writers use; visibility-filtered lookup is what readers use.

#ifndef NEOSI_STORAGE_TOKEN_STORE_H_
#define NEOSI_STORAGE_TOKEN_STORE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/latch.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/record_store.h"

namespace neosi {

/// One token: interned name + creation timestamp (paper §4 token versioning).
struct Token {
  uint32_t id = kInvalidToken;
  std::string name;
  Timestamp created_ts = kNoTimestamp;
};

/// Thread-safe persistent token registry. Token ids are dense (0..n-1) and
/// never reused; tokens are never deleted.
class TokenStore {
 public:
  TokenStore(std::unique_ptr<PagedFile> file, std::string name);

  /// Loads existing tokens into the in-memory maps.
  Status Open();

  /// Returns the id for `name`, creating the token with `created_ts` if it
  /// does not exist yet. Creation is immediately persisted (tokens are not
  /// transactional in Neo4j and are never rolled back).
  Result<uint32_t> GetOrCreate(const std::string& name, Timestamp created_ts);

  /// Id lookup with snapshot visibility: NotFound if the token is absent OR
  /// was created after `snapshot_ts` (the reader must discard it, §4).
  Result<uint32_t> Lookup(const std::string& name,
                          Timestamp snapshot_ts = kMaxTimestamp) const;

  /// Name of an existing token id.
  Result<std::string> NameOf(uint32_t id) const;

  /// Creation timestamp of an existing token id.
  Result<Timestamp> CreatedTs(uint32_t id) const;

  /// True if token `id` exists and was created at or before `snapshot_ts`.
  bool VisibleAt(uint32_t id, Timestamp snapshot_ts) const;

  /// All tokens visible at `snapshot_ts`, in id order.
  std::vector<Token> VisibleTokens(Timestamp snapshot_ts) const;

  size_t size() const;
  Status Sync() { return store_.Sync(); }
  Result<bool> SyncIfDirty() { return store_.SyncIfDirty(); }

 private:
  RecordStore store_;
  mutable SharedLatch latch_;
  std::unordered_map<std::string, uint32_t> by_name_;
  std::vector<Token> by_id_;
};

}  // namespace neosi

#endif  // NEOSI_STORAGE_TOKEN_STORE_H_
