// File-set abstraction backing the segmented WAL.
//
// The rotating WAL is not one file but a small, changing set of files in one
// directory (active segments, a recycle pool of retired segments, and —
// transiently — a pre-segmentation legacy log being migrated). WalDir is the
// minimal directory surface the Wal needs: list, open-or-create, remove,
// atomic rename, and a directory-metadata sync for crash-ordering the
// create/rename/unlink transitions.
//
// Two implementations mirror PagedFile's: a POSIX directory for the
// durability and recovery paths, and an in-memory directory whose files
// SURVIVE the Wal object that opened them — tests hold the directory across
// "kill the process, reopen" cycles to simulate crashes without touching
// disk.

#ifndef NEOSI_STORAGE_WAL_DIR_H_
#define NEOSI_STORAGE_WAL_DIR_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/paged_file.h"

namespace neosi {

/// Flat directory of named byte files. Thread-safety: List/Open/Exists may
/// race each other; Remove/Rename of one name are serialized by the caller
/// (the Wal's truncation mutex).
class WalDir {
 public:
  virtual ~WalDir() = default;

  /// Names of every file in the directory (no ordering guarantee).
  virtual Status List(std::vector<std::string>* names) const = 0;

  /// Opens `name`, creating it empty if absent.
  virtual Status Open(const std::string& name,
                      std::unique_ptr<PagedFile>* out) = 0;

  /// Opens `name` only if it already exists; NotFound otherwise. The
  /// replica tailer reads a primary's directory exclusively through this so
  /// a lost race against segment retirement can never create a stray file
  /// in the primary's WAL directory.
  virtual Status OpenExisting(const std::string& name,
                              std::unique_ptr<PagedFile>* out) = 0;

  virtual bool Exists(const std::string& name) const = 0;

  /// Unlinks `name`. Open handles keep working until closed (POSIX
  /// semantics); the in-memory backend mirrors that via shared buffers.
  virtual Status Remove(const std::string& name) = 0;

  /// Atomically renames `from` to `to`, replacing any existing `to`.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Persists directory metadata (creates/renames/unlinks) to stable
  /// storage. No-op for the in-memory backend.
  virtual Status SyncDir() = 0;
};

/// POSIX directory; files are PosixFiles inside `path` (which must exist).
class PosixWalDir final : public WalDir {
 public:
  explicit PosixWalDir(std::string path) : path_(std::move(path)) {}

  Status List(std::vector<std::string>* names) const override;
  Status Open(const std::string& name,
              std::unique_ptr<PagedFile>* out) override;
  Status OpenExisting(const std::string& name,
                      std::unique_ptr<PagedFile>* out) override;
  bool Exists(const std::string& name) const override;
  Status Remove(const std::string& name) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status SyncDir() override;

 private:
  std::string path_;
};

/// Heap directory. The buffers live as long as the directory object, so a
/// Wal reopened over the same InMemoryWalDir sees everything a previous Wal
/// wrote — the crash-simulation hook the WAL tests are built on.
class InMemoryWalDir final : public WalDir {
 public:
  Status List(std::vector<std::string>* names) const override;
  Status Open(const std::string& name,
              std::unique_ptr<PagedFile>* out) override;
  Status OpenExisting(const std::string& name,
                      std::unique_ptr<PagedFile>* out) override;
  bool Exists(const std::string& name) const override;
  Status Remove(const std::string& name) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status SyncDir() override { return Status::OK(); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<InMemoryFile>> files_;
};

}  // namespace neosi

#endif  // NEOSI_STORAGE_WAL_DIR_H_
