#include "storage/dynamic_store.h"

#include <algorithm>
#include <vector>

#include "storage/records.h"

namespace neosi {

DynamicStore::DynamicStore(std::unique_ptr<PagedFile> file, std::string name)
    : store_(std::move(file), DynRecord::kSize, DynRecord::kMagic,
             std::move(name)) {}

Result<DynId> DynamicStore::WriteBlob(Slice blob) {
  // Allocate all blocks first so the chain can be linked forward.
  const size_t capacity = DynRecord::kDataCapacity;
  const size_t blocks = std::max<size_t>(1, (blob.size() + capacity - 1) /
                                                capacity);
  std::vector<uint64_t> ids(blocks);
  for (size_t i = 0; i < blocks; ++i) {
    auto alloc = store_.Allocate();
    if (!alloc.ok()) return alloc.status();
    ids[i] = *alloc;
  }

  size_t off = 0;
  char buf[DynRecord::kSize];
  for (size_t i = 0; i < blocks; ++i) {
    DynRecord rec;
    rec.in_use = true;
    rec.next = (i + 1 < blocks) ? ids[i + 1] : kInvalidDynId;
    const size_t n = std::min(capacity, blob.size() - off);
    rec.used = static_cast<uint8_t>(n);
    memcpy(rec.data.data(), blob.data() + off, n);
    off += n;
    rec.EncodeTo(buf);
    NEOSI_RETURN_IF_ERROR(store_.Write(ids[i], Slice(buf, DynRecord::kSize)));
  }
  return ids[0];
}

Status DynamicStore::ReadBlob(DynId head, std::string* out) const {
  out->clear();
  std::string buf;
  DynId id = head;
  // Chain length is bounded by the store size; guard against pointer cycles
  // from corruption.
  uint64_t steps = 0;
  const uint64_t max_steps = store_.high_id() + 1;
  while (id != kInvalidDynId) {
    if (++steps > max_steps) {
      return Status::Corruption("dynamic store: chain cycle at block " +
                                std::to_string(id));
    }
    NEOSI_RETURN_IF_ERROR(store_.Read(id, &buf));
    DynRecord rec;
    NEOSI_RETURN_IF_ERROR(DynRecord::DecodeFrom(Slice(buf), &rec));
    if (!rec.in_use) {
      return Status::Corruption("dynamic store: chain through free block " +
                                std::to_string(id));
    }
    out->append(rec.data.data(), rec.used);
    id = rec.next;
  }
  return Status::OK();
}

Status DynamicStore::FreeBlob(DynId head) {
  std::string buf;
  DynId id = head;
  uint64_t steps = 0;
  const uint64_t max_steps = store_.high_id() + 1;
  while (id != kInvalidDynId) {
    if (++steps > max_steps) {
      return Status::Corruption("dynamic store: chain cycle at block " +
                                std::to_string(id));
    }
    NEOSI_RETURN_IF_ERROR(store_.Read(id, &buf));
    DynRecord rec;
    NEOSI_RETURN_IF_ERROR(DynRecord::DecodeFrom(Slice(buf), &rec));
    NEOSI_RETURN_IF_ERROR(store_.Free(id));
    id = rec.next;
  }
  return Status::OK();
}

}  // namespace neosi
