// On-disk record formats for the Neo4j-style store files.
//
// Mirrors the layout sketched in Figure 1 of the paper: nodes live in a file
// addressed by node id; each node record points at its first relationship and
// first property. Relationships live in their own file and carry the source
// and destination node plus per-endpoint doubly-linked chain pointers (as in
// Neo4j's relationship chains). Properties form a singly-linked chain of
// records in the property file, with long strings spilled to a dynamic store.
//
// Two fields are additions from the paper (§4): every node and relationship
// record carries the COMMIT TIMESTAMP of the transaction that produced this
// (newest committed) version, and a DELETED flag implementing tombstones.
// Only the newest committed version is ever persisted; older versions exist
// in the object cache only.

#ifndef NEOSI_STORAGE_RECORDS_H_
#define NEOSI_STORAGE_RECORDS_H_

#include <array>
#include <cstdint>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace neosi {

/// Record flag bits shared by all record kinds.
inline constexpr uint8_t kRecordInUse = 0x01;
/// Tombstone: entity deleted at commit_ts but retained while older versions
/// may still be read by active transactions (paper §4).
inline constexpr uint8_t kRecordDeleted = 0x02;

/// Number of label ids stored inline in a node record before spilling to the
/// dynamic label store.
inline constexpr int kInlineLabels = 3;
/// Sentinel for an empty inline label slot.
inline constexpr uint16_t kEmptyLabelSlot = 0xFFFF;

/// Node store record. Fixed size kNodeRecordSize.
struct NodeRecord {
  static constexpr uint32_t kSize = 48;
  static constexpr uint32_t kMagic = 0x4E4F4445;  // "NODE"

  bool in_use = false;
  bool deleted = false;
  /// Head of this node's relationship chain (kInvalidRelId if none).
  RelId first_rel = kInvalidRelId;
  /// Head of this node's property chain (kInvalidPropId if none).
  PropId first_prop = kInvalidPropId;
  /// Up to kInlineLabels label ids stored inline (kEmptyLabelSlot = empty).
  std::array<uint16_t, kInlineLabels> inline_labels{
      kEmptyLabelSlot, kEmptyLabelSlot, kEmptyLabelSlot};
  /// Overflow blob of label ids in the dynamic label store, or kInvalidDynId.
  DynId label_overflow = kInvalidDynId;
  /// Commit timestamp of the persisted (newest committed) version.
  Timestamp commit_ts = kNoTimestamp;

  /// Serializes into exactly kSize bytes at dst.
  void EncodeTo(char* dst) const;
  /// Parses from exactly kSize bytes.
  static Status DecodeFrom(Slice input, NodeRecord* out);
};

/// Relationship store record. Fixed size kSize.
struct RelationshipRecord {
  static constexpr uint32_t kSize = 88;
  static constexpr uint32_t kMagic = 0x52454C53;  // "RELS"

  bool in_use = false;
  bool deleted = false;
  NodeId src = kInvalidNodeId;
  NodeId dst = kInvalidNodeId;
  RelTypeId type = kInvalidToken;
  /// Chain pointers within the source node's relationship chain.
  RelId src_prev = kInvalidRelId;
  RelId src_next = kInvalidRelId;
  /// Chain pointers within the destination node's relationship chain.
  RelId dst_prev = kInvalidRelId;
  RelId dst_next = kInvalidRelId;
  PropId first_prop = kInvalidPropId;
  Timestamp commit_ts = kNoTimestamp;

  void EncodeTo(char* dst) const;
  static Status DecodeFrom(Slice input, RelationshipRecord* out);

  /// Byte offsets of the chain-pointer fields within the encoded record.
  /// Chain surgery writes these fields individually: a record participates
  /// in TWO chains (source's and destination's) whose updates are guarded
  /// by two different node latches, so whole-record read-modify-writes from
  /// the two sides would clobber each other's pointer fields.
  static constexpr size_t kSrcPrevOffset = 21;
  static constexpr size_t kSrcNextOffset = 29;
  static constexpr size_t kDstPrevOffset = 37;
  static constexpr size_t kDstNextOffset = 45;

  /// Chain navigation relative to an endpoint node (which may be src, dst, or
  /// both for self-loops; self-loops use the src chain pointers).
  RelId NextFor(NodeId node) const { return node == src ? src_next : dst_next; }
  RelId PrevFor(NodeId node) const { return node == src ? src_prev : dst_prev; }
};

/// Property store record: one key/value pair in a singly-linked chain.
struct PropertyRecord {
  static constexpr uint32_t kSize = 40;
  static constexpr uint32_t kMagic = 0x50524F50;  // "PROP"

  /// Inline payload capacity: values whose encoded form exceeds this spill to
  /// the dynamic string store.
  static constexpr size_t kInlinePayload = 16;

  bool in_use = false;
  PropertyKeyId key = kInvalidToken;
  /// Encoded PropertyValue bytes when short enough to inline.
  uint8_t inline_len = 0;
  std::array<char, kInlinePayload> inline_payload{};
  /// Dynamic-store blob holding the encoded value when too long to inline.
  DynId overflow = kInvalidDynId;
  /// Next property record in the chain (kInvalidPropId terminates).
  PropId next = kInvalidPropId;

  void EncodeTo(char* dst) const;
  static Status DecodeFrom(Slice input, PropertyRecord* out);
};

/// Dynamic store block: chained storage for long byte strings (label
/// overflow lists, long property values, token names).
struct DynRecord {
  static constexpr uint32_t kSize = 64;
  static constexpr uint32_t kMagic = 0x44594E53;  // "DYNS"
  static constexpr size_t kDataCapacity = kSize - 1 /*flags*/ - 8 /*next*/ -
                                          1 /*used*/;

  bool in_use = false;
  DynId next = kInvalidDynId;
  uint8_t used = 0;
  std::array<char, kDataCapacity> data{};

  void EncodeTo(char* dst) const;
  static Status DecodeFrom(Slice input, DynRecord* out);
};

/// Token store record: interned label / property-key / relationship-type
/// names. Tokens are never deleted (Neo4j semantics); they are versioned by
/// creation timestamp so snapshots older than the token ignore it (paper §4).
struct TokenRecord {
  static constexpr uint32_t kSize = 64;
  static constexpr uint32_t kMagic = 0x544F4B4E;  // "TOKN"
  static constexpr size_t kMaxNameLen = kSize - 1 /*flags*/ - 8 /*ts*/ -
                                        1 /*len*/;

  bool in_use = false;
  Timestamp created_ts = kNoTimestamp;
  std::string name;

  void EncodeTo(char* dst) const;
  static Status DecodeFrom(Slice input, TokenRecord* out);
};

}  // namespace neosi

#endif  // NEOSI_STORAGE_RECORDS_H_
