#include "storage/graph_store.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/coding.h"

namespace neosi {

namespace {

/// Recovery event trace, enabled by NEOSI_RECOVER_TRACE=stderr|<path>.
/// Recovery is single-threaded, so no lock is needed. Zero cost when the
/// variable is unset (one getenv on first use).
FILE* RecoverTraceFile() {
  static FILE* f = [] {
    const char* p = std::getenv("NEOSI_RECOVER_TRACE");
    if (p == nullptr || *p == '\0') return static_cast<FILE*>(nullptr);
    if (std::strcmp(p, "stderr") == 0) return stderr;
    return std::fopen(p, "w");
  }();
  return f;
}

#define NEOSI_RECOVER_TRACE(...)                      \
  do {                                                \
    if (FILE* trace_f_ = RecoverTraceFile()) {        \
      std::fprintf(trace_f_, __VA_ARGS__);            \
      std::fputc('\n', trace_f_);                     \
      std::fflush(trace_f_);                          \
    }                                                 \
  } while (0)

/// Encodes a label id list as a dynamic-store blob.
std::string EncodeLabelBlob(const std::vector<LabelId>& labels) {
  std::string blob;
  PutVarint64(&blob, labels.size());
  for (LabelId label : labels) PutVarint32(&blob, label);
  return blob;
}

Status DecodeLabelBlob(Slice input, std::vector<LabelId>* out) {
  uint64_t n;
  if (!GetVarint64(&input, &n)) {
    return Status::Corruption("label blob: count");
  }
  out->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!GetVarint32(&input, &(*out)[i])) {
      return Status::Corruption("label blob: id");
    }
  }
  return Status::OK();
}

bool LabelsFitInline(const std::vector<LabelId>& labels) {
  if (labels.size() > static_cast<size_t>(kInlineLabels)) return false;
  for (LabelId label : labels) {
    if (label >= kEmptyLabelSlot) return false;
  }
  return true;
}

}  // namespace

GraphStore::GraphStore(const DatabaseOptions& options) : options_(options) {}

GraphStore::~GraphStore() {
  if (lock_fd_ >= 0) {
    ::flock(lock_fd_, LOCK_UN);
    ::close(lock_fd_);
  }
}

Status GraphStore::Open() {
  const bool mem = options_.in_memory;
  const std::string& dir = options_.path;
  if (!mem) {
    // Best-effort directory creation; Open of the files reports real errors.
    ::mkdir(dir.c_str(), 0755);
    // Exclusive directory ownership, taken BEFORE any file is touched: a
    // second opener must fail before its recovery replay can truncate the
    // holder's live WAL. flock (not a pidfile) so a crash-left LOCK file is
    // inert — the lock lives with the open file description and dies with
    // the process.
    const std::string lock_path = dir + "/LOCK";
    const int fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                          0644);
    if (fd < 0) {
      return Status::IOError("cannot open " + lock_path + ": " +
                             std::strerror(errno));
    }
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
      ::close(fd);
      return Status::Busy("database directory " + dir +
                          " is locked by another live opener (LOCK held)");
    }
    lock_fd_ = fd;
  }
  auto open_file = [&](const std::string& name,
                       std::unique_ptr<PagedFile>* out) {
    return OpenPagedFile(dir + "/" + name, mem, out);
  };

  std::unique_ptr<PagedFile> f;
  NEOSI_RETURN_IF_ERROR(open_file("nodes.store", &f));
  nodes_ = std::make_unique<RecordStore>(std::move(f), NodeRecord::kSize,
                                         NodeRecord::kMagic, "node-store");
  NEOSI_RETURN_IF_ERROR(nodes_->Open());

  NEOSI_RETURN_IF_ERROR(open_file("rels.store", &f));
  rels_ = std::make_unique<RecordStore>(std::move(f), RelationshipRecord::kSize,
                                        RelationshipRecord::kMagic,
                                        "relationship-store");
  NEOSI_RETURN_IF_ERROR(rels_->Open());

  std::unique_ptr<PagedFile> props_file, strings_file;
  NEOSI_RETURN_IF_ERROR(open_file("props.store", &props_file));
  NEOSI_RETURN_IF_ERROR(open_file("strings.store", &strings_file));
  props_ = std::make_unique<PropertyStore>(std::move(props_file),
                                           std::move(strings_file));
  NEOSI_RETURN_IF_ERROR(props_->Open());

  NEOSI_RETURN_IF_ERROR(open_file("labels.store", &f));
  label_dyn_ = std::make_unique<DynamicStore>(std::move(f), "label-store");
  NEOSI_RETURN_IF_ERROR(label_dyn_->Open());

  NEOSI_RETURN_IF_ERROR(open_file("tokens_label.store", &f));
  label_tokens_ = std::make_unique<TokenStore>(std::move(f), "label-tokens");
  NEOSI_RETURN_IF_ERROR(label_tokens_->Open());

  NEOSI_RETURN_IF_ERROR(open_file("tokens_propkey.store", &f));
  prop_key_tokens_ =
      std::make_unique<TokenStore>(std::move(f), "prop-key-tokens");
  NEOSI_RETURN_IF_ERROR(prop_key_tokens_->Open());

  NEOSI_RETURN_IF_ERROR(open_file("tokens_reltype.store", &f));
  rel_type_tokens_ =
      std::make_unique<TokenStore>(std::move(f), "rel-type-tokens");
  NEOSI_RETURN_IF_ERROR(rel_type_tokens_->Open());

  // The WAL is a rotating chain of segment files in the same directory
  // (wal.000001, wal.000002, …), not one file — see Wal's header comment.
  std::shared_ptr<WalDir> wal_dir;
  if (mem) {
    wal_dir = std::make_shared<InMemoryWalDir>();
  } else {
    wal_dir = std::make_shared<PosixWalDir>(dir);
  }
  WalOptions wal_options;
  wal_options.segment_size = options_.wal_segment_size;
  wal_options.recycle_segments = options_.wal_recycle_segments;
  wal_options.keep_segments = options_.wal_keep_segments;
  wal_options.async_flush = options_.wal_async_flush;
  wal_options.preallocate = options_.wal_preallocate;
  wal_options.group_commit_max_batch = options_.ResolvedGroupCommitBatch();
  wal_ = std::make_unique<Wal>(std::move(wal_dir), wal_options);
  return wal_->Open();
}

Status GraphStore::SyncAll() {
  NEOSI_RETURN_IF_ERROR(nodes_->Sync());
  NEOSI_RETURN_IF_ERROR(rels_->Sync());
  NEOSI_RETURN_IF_ERROR(props_->Sync());
  NEOSI_RETURN_IF_ERROR(label_dyn_->Sync());
  NEOSI_RETURN_IF_ERROR(label_tokens_->Sync());
  NEOSI_RETURN_IF_ERROR(prop_key_tokens_->Sync());
  NEOSI_RETURN_IF_ERROR(rel_type_tokens_->Sync());
  return Status::OK();
}

Status GraphStore::SyncDirty(uint64_t* synced, uint64_t* skipped) {
  uint64_t did = 0, skip = 0;
  auto tally = [&](Result<bool> r) -> Status {
    if (!r.ok()) return r.status();
    if (*r) {
      ++did;
    } else {
      ++skip;
    }
    return Status::OK();
  };
  // PropertyStore wraps two files but counts as one unit either way.
  NEOSI_RETURN_IF_ERROR(tally(nodes_->SyncIfDirty()));
  NEOSI_RETURN_IF_ERROR(tally(rels_->SyncIfDirty()));
  NEOSI_RETURN_IF_ERROR(tally(props_->SyncIfDirty()));
  NEOSI_RETURN_IF_ERROR(tally(label_dyn_->SyncIfDirty()));
  NEOSI_RETURN_IF_ERROR(tally(label_tokens_->SyncIfDirty()));
  NEOSI_RETURN_IF_ERROR(tally(prop_key_tokens_->SyncIfDirty()));
  NEOSI_RETURN_IF_ERROR(tally(rel_type_tokens_->SyncIfDirty()));
  if (synced != nullptr) *synced = did;
  if (skipped != nullptr) *skipped = skip;
  return Status::OK();
}

std::vector<WriteGuard> GraphStore::LockNodePair(NodeId a, NodeId b) const {
  const size_t sa = a % kShards, sb = b % kShards;
  std::vector<WriteGuard> guards;
  if (sa == sb) {
    guards.emplace_back(node_shards_[sa]);
  } else if (sa < sb) {
    guards.emplace_back(node_shards_[sa]);
    guards.emplace_back(node_shards_[sb]);
  } else {
    guards.emplace_back(node_shards_[sb]);
    guards.emplace_back(node_shards_[sa]);
  }
  return guards;
}

Status GraphStore::ReadNodeRecord(NodeId id, NodeRecord* out) const {
  std::string buf;
  NEOSI_RETURN_IF_ERROR(nodes_->Read(id, &buf));
  return NodeRecord::DecodeFrom(Slice(buf), out);
}

Status GraphStore::WriteNodeRecord(NodeId id, const NodeRecord& rec) {
  char buf[NodeRecord::kSize];
  rec.EncodeTo(buf);
  return nodes_->Write(id, Slice(buf, NodeRecord::kSize));
}

Status GraphStore::ReadRelRecord(RelId id, RelationshipRecord* out) const {
  std::string buf;
  NEOSI_RETURN_IF_ERROR(rels_->Read(id, &buf));
  return RelationshipRecord::DecodeFrom(Slice(buf), out);
}

Status GraphStore::WriteRelRecord(RelId id, const RelationshipRecord& rec) {
  char buf[RelationshipRecord::kSize];
  rec.EncodeTo(buf);
  return rels_->Write(id, Slice(buf, RelationshipRecord::kSize));
}

Status GraphStore::StoreLabels(NodeRecord* rec,
                               const std::vector<LabelId>& labels,
                               DynId* old_blob) {
  *old_blob = rec->label_overflow;
  rec->label_overflow = kInvalidDynId;
  rec->inline_labels.fill(kEmptyLabelSlot);
  if (LabelsFitInline(labels)) {
    for (size_t i = 0; i < labels.size(); ++i) {
      rec->inline_labels[i] = static_cast<uint16_t>(labels[i]);
    }
    return Status::OK();
  }
  auto blob = label_dyn_->WriteBlob(Slice(EncodeLabelBlob(labels)));
  if (!blob.ok()) return blob.status();
  rec->label_overflow = *blob;
  return Status::OK();
}

Status GraphStore::LoadLabels(const NodeRecord& rec,
                              std::vector<LabelId>* out) const {
  out->clear();
  if (rec.label_overflow != kInvalidDynId) {
    std::string blob;
    NEOSI_RETURN_IF_ERROR(label_dyn_->ReadBlob(rec.label_overflow, &blob));
    return DecodeLabelBlob(Slice(blob), out);
  }
  for (uint16_t slot : rec.inline_labels) {
    if (slot != kEmptyLabelSlot) out->push_back(slot);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Commit-time persistence
//
// Crash-ordering rule for every rewrite below: write the NEW property chain
// / label blob, repoint the record at it, and only then free the OLD one.
// A process death between any two steps then leaves at worst an allocated-
// but-unreferenced chain (a bounded leak that WAL replay may add one more
// of) — never an on-disk record pointing at freed chain records, which
// recovery could only report as corruption. The same rule inverted governs
// the purges: free the record first (replay then skips the op), chains
// second.
// ---------------------------------------------------------------------------

Status GraphStore::PersistNewNode(NodeId id, const std::vector<LabelId>& labels,
                                  const PropertyMap& props, Timestamp ts) {
  WriteGuard guard(NodeShard(id));
  NodeRecord rec;
  rec.in_use = true;
  rec.deleted = false;
  rec.first_rel = kInvalidRelId;
  rec.commit_ts = ts;
  DynId old_blob = kInvalidDynId;  // Fresh record: nothing to free.
  NEOSI_RETURN_IF_ERROR(StoreLabels(&rec, labels, &old_blob));
  auto chain = props_->WriteChain(props);
  if (!chain.ok()) return chain.status();
  rec.first_prop = *chain;
  return WriteNodeRecord(id, rec);
}

Status GraphStore::PersistNodeState(NodeId id,
                                    const std::vector<LabelId>& labels,
                                    const PropertyMap& props, Timestamp ts) {
  WriteGuard guard(NodeShard(id));
  NodeRecord rec;
  NEOSI_RETURN_IF_ERROR(ReadNodeRecord(id, &rec));
  if (!rec.in_use) {
    // Crash-recovery path: the record vanished; recreate it.
    rec = NodeRecord();
    rec.first_rel = kInvalidRelId;
    rec.first_prop = kInvalidPropId;
  }
  rec.in_use = true;
  rec.deleted = false;
  rec.commit_ts = ts;
  const PropId old_chain = rec.first_prop;
  auto chain = props_->WriteChain(props);
  if (!chain.ok()) return chain.status();
  rec.first_prop = *chain;
  DynId old_blob = kInvalidDynId;
  NEOSI_RETURN_IF_ERROR(StoreLabels(&rec, labels, &old_blob));
  NEOSI_RETURN_IF_ERROR(WriteNodeRecord(id, rec));
  if (old_chain != kInvalidPropId && !recovering_) {
    NEOSI_RETURN_IF_ERROR(props_->FreeChain(old_chain));
  }
  if (old_blob != kInvalidDynId && !recovering_) {
    NEOSI_RETURN_IF_ERROR(label_dyn_->FreeBlob(old_blob));
  }
  return Status::OK();
}

Status GraphStore::PersistNodeTombstone(NodeId id, Timestamp ts) {
  WriteGuard guard(NodeShard(id));
  NodeRecord rec;
  NEOSI_RETURN_IF_ERROR(ReadNodeRecord(id, &rec));
  if (!rec.in_use) {
    return Status::Internal("tombstone of free node record " +
                            std::to_string(id));
  }
  // The final committed state of a deleted node has no labels/properties;
  // older versions (with them) live in the object cache until GC.
  const PropId old_chain = rec.first_prop;
  rec.first_prop = kInvalidPropId;
  DynId old_blob = kInvalidDynId;
  NEOSI_RETURN_IF_ERROR(StoreLabels(&rec, {}, &old_blob));
  rec.deleted = true;
  rec.commit_ts = ts;
  NEOSI_RETURN_IF_ERROR(WriteNodeRecord(id, rec));
  if (old_chain != kInvalidPropId && !recovering_) {
    NEOSI_RETURN_IF_ERROR(props_->FreeChain(old_chain));
  }
  if (old_blob != kInvalidDynId && !recovering_) {
    NEOSI_RETURN_IF_ERROR(label_dyn_->FreeBlob(old_blob));
  }
  return Status::OK();
}

Status GraphStore::LinkIntoChain(RelId id, RelationshipRecord* rec,
                                 NodeId node) {
  NodeRecord node_rec;
  NEOSI_RETURN_IF_ERROR(ReadNodeRecord(node, &node_rec));
  const RelId old_head = node_rec.first_rel;

  if (node == rec->src) {
    rec->src_prev = kInvalidRelId;
    rec->src_next = old_head;
  } else {
    rec->dst_prev = kInvalidRelId;
    rec->dst_next = old_head;
  }
  NEOSI_RETURN_IF_ERROR(WriteRelRecord(id, *rec));

  if (old_head != kInvalidRelId) {
    // Field-granular write: the old head's OTHER chain (its other endpoint)
    // may be under surgery concurrently beneath a different node latch.
    RelationshipRecord head;
    NEOSI_RETURN_IF_ERROR(ReadRelRecord(old_head, &head));
    const size_t offset = head.src == node
                              ? RelationshipRecord::kSrcPrevOffset
                              : RelationshipRecord::kDstPrevOffset;
    NEOSI_RETURN_IF_ERROR(rels_->WriteField64(old_head, offset, id));
  }

  node_rec.first_rel = id;
  return WriteNodeRecord(node, node_rec);
}

Status GraphStore::PersistNewRel(RelId id, NodeId src, NodeId dst,
                                 RelTypeId type, const PropertyMap& props,
                                 Timestamp ts) {
  auto guards = LockNodePair(src, dst);
  WriteGuard rel_guard(RelShard(id));

  RelationshipRecord rec;
  rec.in_use = true;
  rec.deleted = false;
  rec.src = src;
  rec.dst = dst;
  rec.type = type;
  rec.commit_ts = ts;
  auto chain = props_->WriteChain(props);
  if (!chain.ok()) return chain.status();
  rec.first_prop = *chain;

  // Link at the head of the source chain, then (unless a self-loop, which
  // participates in the chain once via its src pointers) the destination's.
  NEOSI_RETURN_IF_ERROR(LinkIntoChain(id, &rec, src));
  if (src != dst) {
    NEOSI_RETURN_IF_ERROR(LinkIntoChain(id, &rec, dst));
  }
  return Status::OK();
}

Status GraphStore::PersistRelState(RelId id, const PropertyMap& props,
                                   Timestamp ts) {
  // The full record is rewritten, and its chain pointers are owned by the
  // endpoint node latches (concurrent neighbour link/unlink surgery mutates
  // them) — so take the node pair first, then the rel latch.
  RelationshipRecord peek;
  NEOSI_RETURN_IF_ERROR(ReadRelRecord(id, &peek));
  auto guards = LockNodePair(peek.src, peek.dst);
  WriteGuard guard(RelShard(id));
  RelationshipRecord rec;
  NEOSI_RETURN_IF_ERROR(ReadRelRecord(id, &rec));
  if (!rec.in_use) {
    return Status::Internal("state write to free relationship record " +
                            std::to_string(id));
  }
  const PropId old_chain = rec.first_prop;
  auto chain = props_->WriteChain(props);
  if (!chain.ok()) return chain.status();
  rec.first_prop = *chain;
  rec.deleted = false;
  rec.commit_ts = ts;
  NEOSI_RETURN_IF_ERROR(WriteRelRecord(id, rec));
  if (old_chain != kInvalidPropId && !recovering_) {
    NEOSI_RETURN_IF_ERROR(props_->FreeChain(old_chain));
  }
  return Status::OK();
}

Status GraphStore::PersistRelTombstone(RelId id, Timestamp ts) {
  RelationshipRecord peek;
  NEOSI_RETURN_IF_ERROR(ReadRelRecord(id, &peek));
  auto guards = LockNodePair(peek.src, peek.dst);
  WriteGuard guard(RelShard(id));
  RelationshipRecord rec;
  NEOSI_RETURN_IF_ERROR(ReadRelRecord(id, &rec));
  if (!rec.in_use) {
    return Status::Internal("tombstone of free relationship record " +
                            std::to_string(id));
  }
  const PropId old_chain = rec.first_prop;
  rec.first_prop = kInvalidPropId;
  rec.deleted = true;
  rec.commit_ts = ts;
  NEOSI_RETURN_IF_ERROR(WriteRelRecord(id, rec));
  if (old_chain != kInvalidPropId && !recovering_) {
    NEOSI_RETURN_IF_ERROR(props_->FreeChain(old_chain));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// GC purge
// ---------------------------------------------------------------------------

Result<bool> GraphStore::NodeHasRelChain(NodeId id) const {
  ReadGuard guard(NodeShard(id));
  NodeRecord rec;
  NEOSI_RETURN_IF_ERROR(ReadNodeRecord(id, &rec));
  return rec.in_use && rec.first_rel != kInvalidRelId;
}

Status GraphStore::PurgeNode(NodeId id) {
  WriteGuard guard(NodeShard(id));
  NodeRecord rec;
  NEOSI_RETURN_IF_ERROR(ReadNodeRecord(id, &rec));
  if (!rec.in_use) return Status::OK();  // Already purged (recovery replay).
  if (rec.first_rel != kInvalidRelId) {
    return Status::Internal(
        "purge of node with live relationship chain: node " +
        std::to_string(id));
  }
  // Record first, chains second: a crash in between leaks the chains (the
  // replayed purge skips the already-free record), whereas the reverse
  // order would leave an in-use record pointing at freed chains.
  NEOSI_RETURN_IF_ERROR(nodes_->Free(id));
  if (rec.first_prop != kInvalidPropId && !recovering_) {
    NEOSI_RETURN_IF_ERROR(props_->FreeChain(rec.first_prop));
  }
  if (rec.label_overflow != kInvalidDynId && !recovering_) {
    NEOSI_RETURN_IF_ERROR(label_dyn_->FreeBlob(rec.label_overflow));
  }
  return Status::OK();
}

Status GraphStore::UnlinkFromChain(RelId id, const RelationshipRecord& rec,
                                   NodeId node) {
  const RelId prev = rec.PrevFor(node);
  const RelId next = rec.NextFor(node);

  // Every rewrite below checks that the neighbour still points at `id`
  // before touching it, which makes the surgery idempotent: crash-recovery
  // replays it with the pointers logged in the kPurgeRel WAL op.
  if (prev == kInvalidRelId) {
    NodeRecord node_rec;
    NEOSI_RETURN_IF_ERROR(ReadNodeRecord(node, &node_rec));
    if (node_rec.first_rel == id) {
      node_rec.first_rel = next;
      NEOSI_RETURN_IF_ERROR(WriteNodeRecord(node, node_rec));
    }
  } else if (rels_->InUse(prev)) {
    // Field-granular writes: only this endpoint's pointer pair belongs to
    // the latch we hold; the neighbour's other chain may be mutated
    // concurrently under a different node latch.
    RelationshipRecord prev_rec;
    NEOSI_RETURN_IF_ERROR(ReadRelRecord(prev, &prev_rec));
    if (prev_rec.src == node && prev_rec.src_next == id) {
      NEOSI_RETURN_IF_ERROR(rels_->WriteField64(
          prev, RelationshipRecord::kSrcNextOffset, next));
    } else if (prev_rec.src != node && prev_rec.dst_next == id) {
      NEOSI_RETURN_IF_ERROR(rels_->WriteField64(
          prev, RelationshipRecord::kDstNextOffset, next));
    }
  }

  if (next != kInvalidRelId && rels_->InUse(next)) {
    RelationshipRecord next_rec;
    NEOSI_RETURN_IF_ERROR(ReadRelRecord(next, &next_rec));
    if (next_rec.src == node && next_rec.src_prev == id) {
      NEOSI_RETURN_IF_ERROR(rels_->WriteField64(
          next, RelationshipRecord::kSrcPrevOffset, prev));
    } else if (next_rec.src != node && next_rec.dst_prev == id) {
      NEOSI_RETURN_IF_ERROR(rels_->WriteField64(
          next, RelationshipRecord::kDstPrevOffset, prev));
    }
  }
  return Status::OK();
}

Status GraphStore::PurgeRel(RelId id) {
  RelationshipRecord rec;
  {
    // Peek at the endpoints without holding latches, then lock in order.
    std::string buf;
    NEOSI_RETURN_IF_ERROR(rels_->Read(id, &buf));
    NEOSI_RETURN_IF_ERROR(RelationshipRecord::DecodeFrom(Slice(buf), &rec));
  }
  if (!rec.in_use) return Status::OK();  // Already purged.

  auto guards = LockNodePair(rec.src, rec.dst);
  WriteGuard rel_guard(RelShard(id));
  // Re-read under the latches (the unlatched peek could have raced).
  NEOSI_RETURN_IF_ERROR(ReadRelRecord(id, &rec));
  if (!rec.in_use) return Status::OK();

  NEOSI_RETURN_IF_ERROR(UnlinkFromChain(id, rec, rec.src));
  if (rec.dst != rec.src) {
    NEOSI_RETURN_IF_ERROR(UnlinkFromChain(id, rec, rec.dst));
  }
  // Record first, chain second (see PurgeNode).
  NEOSI_RETURN_IF_ERROR(rels_->Free(id));
  if (rec.first_prop != kInvalidPropId && !recovering_) {
    NEOSI_RETURN_IF_ERROR(props_->FreeChain(rec.first_prop));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

Status GraphStore::ReadNodeState(NodeId id, NodeState* out) const {
  ReadGuard guard(NodeShard(id));
  NodeRecord rec;
  NEOSI_RETURN_IF_ERROR(ReadNodeRecord(id, &rec));
  out->in_use = rec.in_use;
  out->deleted = rec.deleted;
  out->commit_ts = rec.commit_ts;
  out->first_rel = rec.first_rel;
  out->labels.clear();
  out->props.clear();
  if (!rec.in_use) return Status::OK();
  NEOSI_RETURN_IF_ERROR(LoadLabels(rec, &out->labels));
  if (rec.first_prop != kInvalidPropId) {
    NEOSI_RETURN_IF_ERROR(props_->ReadChain(rec.first_prop, &out->props));
  }
  return Status::OK();
}

Status GraphStore::ReadRelState(RelId id, RelState* out) const {
  ReadGuard guard(RelShard(id));
  RelationshipRecord rec;
  NEOSI_RETURN_IF_ERROR(ReadRelRecord(id, &rec));
  out->in_use = rec.in_use;
  out->deleted = rec.deleted;
  out->src = rec.src;
  out->dst = rec.dst;
  out->type = rec.type;
  out->commit_ts = rec.commit_ts;
  out->props.clear();
  if (!rec.in_use) return Status::OK();
  if (rec.first_prop != kInvalidPropId) {
    NEOSI_RETURN_IF_ERROR(props_->ReadChain(rec.first_prop, &out->props));
  }
  return Status::OK();
}

Status GraphStore::RelChainOf(NodeId id, std::vector<RelId>* out) const {
  ReadGuard guard(NodeShard(id));
  out->clear();
  NodeRecord node_rec;
  NEOSI_RETURN_IF_ERROR(ReadNodeRecord(id, &node_rec));
  if (!node_rec.in_use) return Status::OK();

  RelId cur = node_rec.first_rel;
  uint64_t steps = 0;
  const uint64_t max_steps = rels_->high_id() + 1;
  while (cur != kInvalidRelId) {
    if (++steps > max_steps) {
      return Status::Corruption("relationship chain cycle at node " +
                                std::to_string(id));
    }
    out->push_back(cur);
    RelationshipRecord rec;
    NEOSI_RETURN_IF_ERROR(ReadRelRecord(cur, &rec));
    cur = rec.NextFor(id);
  }
  return Status::OK();
}

Status GraphStore::ApplyRewrite(const EntityKey& key) {
  std::string buf;
  if (key.type == EntityType::kNode) {
    WriteGuard guard(NodeShard(key.id));
    NEOSI_RETURN_IF_ERROR(nodes_->Read(key.id, &buf));
    return nodes_->Write(key.id, Slice(buf));
  }
  // Relationship records' chain pointers are owned by the endpoint node
  // latches; a blind read+write-back must exclude concurrent surgery.
  RelationshipRecord peek;
  NEOSI_RETURN_IF_ERROR(ReadRelRecord(key.id, &peek));
  auto guards = LockNodePair(peek.src, peek.dst);
  WriteGuard guard(RelShard(key.id));
  NEOSI_RETURN_IF_ERROR(rels_->Read(key.id, &buf));
  return rels_->Write(key.id, Slice(buf));
}

Status GraphStore::ForEachNode(const std::function<Status(NodeId)>& fn) const {
  return nodes_->ForEach([&](uint64_t id, const std::string&) {
    return fn(static_cast<NodeId>(id));
  });
}

Status GraphStore::ForEachRel(const std::function<Status(RelId)>& fn) const {
  return rels_->ForEach([&](uint64_t id, const std::string&) {
    return fn(static_cast<RelId>(id));
  });
}

// ---------------------------------------------------------------------------
// WAL replay & recovery
// ---------------------------------------------------------------------------

Status GraphStore::EnsureRelLinked(RelId id) {
  RelationshipRecord rec;
  NEOSI_RETURN_IF_ERROR(ReadRelRecord(id, &rec));
  if (!rec.in_use) {
    return Status::Internal("EnsureRelLinked on free record");
  }
  auto guards = LockNodePair(rec.src, rec.dst);
  WriteGuard rel_guard(RelShard(id));
  NEOSI_RETURN_IF_ERROR(ReadRelRecord(id, &rec));

  auto linked_in = [&](NodeId node) -> Result<bool> {
    NodeRecord node_rec;
    NEOSI_RETURN_IF_ERROR(ReadNodeRecord(node, &node_rec));
    RelId cur = node_rec.first_rel;
    uint64_t steps = 0;
    const uint64_t max_steps = rels_->high_id() + 1;
    while (cur != kInvalidRelId) {
      if (cur == id) return true;
      if (++steps > max_steps) {
        return Status::Corruption("chain cycle during link repair");
      }
      RelationshipRecord r;
      NEOSI_RETURN_IF_ERROR(ReadRelRecord(cur, &r));
      cur = r.NextFor(node);
    }
    return false;
  };

  auto check = linked_in(rec.src);
  if (!check.ok()) return check.status();
  if (!*check) {
    NEOSI_RETURN_IF_ERROR(LinkIntoChain(id, &rec, rec.src));
  }
  if (rec.dst != rec.src) {
    check = linked_in(rec.dst);
    if (!check.ok()) return check.status();
    if (!*check) {
      NEOSI_RETURN_IF_ERROR(LinkIntoChain(id, &rec, rec.dst));
    }
  }
  return Status::OK();
}

Status GraphStore::ApplyWalOp(const WalOp& op, Timestamp commit_ts) {
  switch (op.type) {
    case WalOpType::kCreateToken: {
      TokenStore* store = nullptr;
      switch (op.token_kind) {
        case TokenKind::kLabel:
          store = label_tokens_.get();
          break;
        case TokenKind::kPropertyKey:
          store = prop_key_tokens_.get();
          break;
        case TokenKind::kRelType:
          store = rel_type_tokens_.get();
          break;
      }
      auto r = store->GetOrCreate(op.name, commit_ts);
      return r.ok() ? Status::OK() : r.status();
    }

    case WalOpType::kCreateNode: {
      NEOSI_RETURN_IF_ERROR(nodes_->EnsureAllocated(op.id));
      NodeRecord rec;
      NEOSI_RETURN_IF_ERROR(ReadNodeRecord(op.id, &rec));
      if (rec.in_use && rec.commit_ts >= commit_ts) {
        if (rec.commit_ts == commit_ts) {
          // This op's own apply may be only partially on disk (record
          // flushed, property chain not, or vice versa): rewrite the full
          // state rather than trusting the chain the record points at.
          return PersistNodeState(op.id, op.labels, op.props, commit_ts);
        }
        return Status::OK();
      }
      return PersistNewNode(op.id, op.labels, op.props, commit_ts);
    }

    case WalOpType::kNodeState: {
      // Full post-state: record-local replay, no pre-state read. Re-apply
      // at ts equality (== means THIS op's apply may be the torn one). The
      // record must exist: its create op either precedes this op in the
      // replayed suffix or was persisted before the stable LSN. A free
      // record means a later purge was already applied — the op is stale,
      // and recreating the record would desync the recycled-id free list.
      if (op.id >= nodes_->high_id()) return Status::OK();
      NodeRecord rec;
      NEOSI_RETURN_IF_ERROR(ReadNodeRecord(op.id, &rec));
      if (!rec.in_use) return Status::OK();
      if (rec.commit_ts > commit_ts) return Status::OK();
      return PersistNodeState(op.id, op.labels, op.props, commit_ts);
    }

    case WalOpType::kDeleteNode: {
      NodeRecord rec;
      NEOSI_RETURN_IF_ERROR(ReadNodeRecord(op.id, &rec));
      if (!rec.in_use || (rec.deleted && rec.commit_ts >= commit_ts)) {
        return Status::OK();
      }
      return PersistNodeTombstone(op.id, commit_ts);
    }

    case WalOpType::kSetNodeProperty:
    case WalOpType::kRemoveNodeProperty:
    case WalOpType::kAddLabel:
    case WalOpType::kRemoveLabel: {
      NodeState state;
      NEOSI_RETURN_IF_ERROR(ReadNodeState(op.id, &state));
      if (!state.in_use) {
        return Status::Corruption("wal replay: node missing for delta op");
      }
      if (state.commit_ts >= commit_ts) return Status::OK();
      switch (op.type) {
        case WalOpType::kSetNodeProperty:
          state.props[op.token] = op.value;
          break;
        case WalOpType::kRemoveNodeProperty:
          state.props.erase(op.token);
          break;
        case WalOpType::kAddLabel:
          if (std::find(state.labels.begin(), state.labels.end(), op.token) ==
              state.labels.end()) {
            state.labels.push_back(op.token);
          }
          break;
        case WalOpType::kRemoveLabel:
          state.labels.erase(std::remove(state.labels.begin(),
                                         state.labels.end(), op.token),
                             state.labels.end());
          break;
        default:
          break;
      }
      return PersistNodeState(op.id, state.labels, state.props, commit_ts);
    }

    case WalOpType::kCreateRel: {
      NEOSI_RETURN_IF_ERROR(rels_->EnsureAllocated(op.id));
      RelationshipRecord rec;
      NEOSI_RETURN_IF_ERROR(ReadRelRecord(op.id, &rec));
      if (rec.in_use && rec.commit_ts >= commit_ts) {
        if (rec.commit_ts == commit_ts) {
          // The creating apply may be only partially on disk: rewrite the
          // property chain before repairing the links (see kCreateNode).
          NEOSI_RETURN_IF_ERROR(PersistRelState(op.id, op.props, commit_ts));
        }
        // Record present; repair the chain links if the crash interrupted
        // the surgery between record write and chain rewiring.
        return EnsureRelLinked(op.id);
      }
      return PersistNewRel(op.id, op.src, op.dst, op.rel_type, op.props,
                           commit_ts);
    }

    case WalOpType::kRelState: {
      // Full post-state (see kNodeState). The record must exist: its create
      // op either precedes this op in the replayed suffix or was persisted
      // before the stable LSN. A free record here means a later purge was
      // already applied — the op is stale; skip it.
      if (op.id >= rels_->high_id()) return Status::OK();
      RelationshipRecord rec;
      NEOSI_RETURN_IF_ERROR(ReadRelRecord(op.id, &rec));
      if (!rec.in_use) return Status::OK();
      if (rec.commit_ts > commit_ts) return Status::OK();
      return PersistRelState(op.id, op.props, commit_ts);
    }

    case WalOpType::kDeleteRel: {
      RelationshipRecord rec;
      NEOSI_RETURN_IF_ERROR(ReadRelRecord(op.id, &rec));
      if (!rec.in_use || (rec.deleted && rec.commit_ts >= commit_ts)) {
        return Status::OK();
      }
      return PersistRelTombstone(op.id, commit_ts);
    }

    case WalOpType::kSetRelProperty:
    case WalOpType::kRemoveRelProperty: {
      RelState state;
      NEOSI_RETURN_IF_ERROR(ReadRelState(op.id, &state));
      if (!state.in_use) {
        return Status::Corruption("wal replay: rel missing for delta op");
      }
      if (state.commit_ts >= commit_ts) return Status::OK();
      if (op.type == WalOpType::kSetRelProperty) {
        state.props[op.token] = op.value;
      } else {
        state.props.erase(op.token);
      }
      return PersistRelState(op.id, state.props, commit_ts);
    }

    case WalOpType::kPurgeNode: {
      if (op.id >= nodes_->high_id()) return Status::OK();
      NodeRecord rec;
      NEOSI_RETURN_IF_ERROR(ReadNodeRecord(op.id, &rec));
      // Purges only ever target tombstoned records: a live record here
      // means the id was purged and REUSED — the op is stale, and blindly
      // re-purging would destroy the new tenant.
      if (rec.in_use && !rec.deleted) return Status::OK();
      return PurgeNode(op.id);
    }

    case WalOpType::kPurgeRel: {
      if (op.id >= rels_->high_id()) return Status::OK();
      RelationshipRecord rec;
      NEOSI_RETURN_IF_ERROR(ReadRelRecord(op.id, &rec));
      // Stale purge against a reused id (see kPurgeNode above).
      if (rec.in_use && !rec.deleted) return Status::OK();
      if (!rec.in_use) {
        // Record already freed; redo the neighbour surgery idempotently
        // using the pointers logged at purge time.
        auto guards = LockNodePair(op.src, op.dst);
        RelationshipRecord ghost;
        ghost.src = op.src;
        ghost.dst = op.dst;
        ghost.src_prev = op.src_prev;
        ghost.src_next = op.src_next;
        ghost.dst_prev = op.dst_prev;
        ghost.dst_next = op.dst_next;
        NEOSI_RETURN_IF_ERROR(UnlinkFromChain(op.id, ghost, op.src));
        if (op.dst != op.src) {
          NEOSI_RETURN_IF_ERROR(UnlinkFromChain(op.id, ghost, op.dst));
        }
        return Status::OK();
      }
      return PurgeRel(op.id);
    }

    case WalOpType::kCheckpoint:
      // Marker: consumed by Recover()'s skip logic, a no-op to apply.
      return Status::OK();
  }
  return Status::Corruption("wal replay: unknown op");
}

Result<Timestamp> GraphStore::Recover() {
  Timestamp max_ts = kNoTimestamp;

  // Highest timestamp already persisted in the stores.
  Status s = ForEachNode([&](NodeId id) {
    NodeRecord rec;
    NEOSI_RETURN_IF_ERROR(ReadNodeRecord(id, &rec));
    max_ts = std::max(max_ts, rec.commit_ts);
    return Status::OK();
  });
  if (!s.ok()) return s;
  s = ForEachRel([&](RelId id) {
    RelationshipRecord rec;
    NEOSI_RETURN_IF_ERROR(ReadRelRecord(id, &rec));
    max_ts = std::max(max_ts, rec.commit_ts);
    return Status::OK();
  });
  if (!s.ok()) return s;

  // Pass 1: find the last checkpoint marker. Everything below its stable
  // LSN had durably reached the stores when the marker was written (a crash
  // between marker write and prefix truncation leaves such a prefix in the
  // log; it must be skipped, not merely tolerated, to keep replay cost
  // proportional to the un-checkpointed suffix). This pass also truncates
  // any torn tail.
  Lsn replay_from = wal_->HeadLsn();
  s = wal_->ReadFrom(replay_from, [&](Lsn, const WalRecord& record) {
    for (const WalOp& op : record.ops) {
      if (op.type == WalOpType::kCheckpoint) {
        replay_from = std::max<Lsn>(replay_from, op.id);
      }
    }
    return Status::OK();
  });
  if (!s.ok()) return s;

  // Pass 2: replay the suffix at or above the last stable LSN. Replay stays
  // idempotent, so overlap with already-applied state is repaired, not
  // double-applied.
  NEOSI_RECOVER_TRACE("recover: max_persisted_ts=%llu replay_from=%llu",
                      (unsigned long long)max_ts,
                      (unsigned long long)replay_from);
  // Suppress chain/blob frees for the whole replay: after a crash the store
  // files can reflect different flush instants, so a record's old chain
  // pointer may alias records owned by another live chain. Freeing through
  // it would corrupt that chain mid-replay. The reachability sweep below
  // reclaims whatever replay leaked.
  recovering_ = true;
  s = wal_->ReadFrom(replay_from, [&](Lsn lsn, const WalRecord& record) {
    for (const WalOp& op : record.ops) {
      NEOSI_RECOVER_TRACE("replay lsn=%llu ts=%llu op=%d id=%llu tok=%u",
                          (unsigned long long)lsn,
                          (unsigned long long)record.commit_ts,
                          static_cast<int>(op.type), (unsigned long long)op.id,
                          (unsigned)op.token);
      Status apply = ApplyWalOp(op, record.commit_ts);
      if (!apply.ok()) {
        NodeRecord rec;
        if (op.id < nodes_->high_id() && ReadNodeRecord(op.id, &rec).ok()) {
          NEOSI_RECOVER_TRACE(
              "replay FAIL node=%llu in_use=%d deleted=%d rec_ts=%llu "
              "first_prop=%llu: %s",
              (unsigned long long)op.id, rec.in_use ? 1 : 0,
              rec.deleted ? 1 : 0, (unsigned long long)rec.commit_ts,
              (unsigned long long)rec.first_prop,
              apply.ToString().c_str());
        } else {
          NEOSI_RECOVER_TRACE("replay FAIL id=%llu: %s",
                              (unsigned long long)op.id,
                              apply.ToString().c_str());
        }
        return apply;
      }
    }
    max_ts = std::max(max_ts, record.commit_ts);
    return Status::OK();
  });
  recovering_ = false;
  if (!s.ok()) return s;

  // Post-replay sweep: the authoritative reachability set is the first_prop
  // of every live record; everything else in the property store is garbage
  // left behind by the free-suppression above (or by the crash itself).
  std::vector<PropId> roots;
  s = ForEachNode([&](NodeId id) {
    NodeRecord rec;
    NEOSI_RETURN_IF_ERROR(ReadNodeRecord(id, &rec));
    if (rec.first_prop != kInvalidPropId) roots.push_back(rec.first_prop);
    return Status::OK();
  });
  if (!s.ok()) return s;
  s = ForEachRel([&](RelId id) {
    RelationshipRecord rec;
    NEOSI_RETURN_IF_ERROR(ReadRelRecord(id, &rec));
    if (rec.first_prop != kInvalidPropId) roots.push_back(rec.first_prop);
    return Status::OK();
  });
  if (!s.ok()) return s;
  uint64_t swept = 0;
  NEOSI_RETURN_IF_ERROR(props_->SweepUnreachable(roots, &swept));
  NEOSI_RECOVER_TRACE("recover: swept %llu orphan property records",
                      (unsigned long long)swept);

  // Blob reachability audit: the sweep above deliberately leaves overflow
  // blobs of crash-leaked chains in place (a stale record's overflow id can
  // alias a live blob, so freeing through orphans is unsafe). Measure the
  // leak instead: it fails Corruption if any LIVE chain's blob is broken,
  // and the leaked-block gauge lets tests and operators see the bounded
  // per-crash leak and verify it does not grow across clean restarts.
  uint64_t leaked = 0;
  NEOSI_RETURN_IF_ERROR(props_->AuditBlobReachability(roots, &leaked));
  dyn_leaked_blocks_.store(leaked, std::memory_order_relaxed);
  NEOSI_RECOVER_TRACE("recover: %llu dynamic-store blocks leaked",
                      (unsigned long long)leaked);
#ifndef NDEBUG
  // Debug builds additionally re-walk every live chain through the full
  // decode path (records AND overflow blobs), so a blob the audit's mark
  // pass missed or a value torn below the frame CRC trips an assert at
  // reopen instead of at first read.
  for (PropId root : roots) {
    PropertyMap check;
    assert(props_->ReadChain(root, &check).ok());
  }
#endif
  return max_ts;
}

Status GraphStore::Checkpoint() {
  std::lock_guard<std::mutex> guard(checkpoint_mu_);

  // 1. Stable LSN: every record below it has fully reached the stores
  //    (in-flight commits and GC purges pin their record's lsn from append
  //    until store apply). Read BEFORE the store sync so the sync is
  //    guaranteed to cover those applies.
  const Lsn stable = wal_->StableLsn();
  const Lsn head = wal_->HeadLsn();
  if (stable == head) {
    // The cut cannot advance (empty log, or a commit stalled right at the
    // head pins it). Bail before paying fsyncs or appending a marker that
    // would restate the previous checkpoint — a stuck pin must not turn
    // every daemon pass into WAL growth.
    return Status::OK();
  }

  // 2. Incremental store sync: only files dirtied since the last
  //    checkpoint pay an fsync.
  uint64_t synced = 0, skipped = 0;
  NEOSI_RETURN_IF_ERROR(SyncDirty(&synced, &skipped));
  checkpoint_stores_synced_.fetch_add(synced, std::memory_order_relaxed);
  checkpoint_stores_skipped_.fetch_add(skipped, std::memory_order_relaxed);

  if (checkpoint_hooks.stall_before_marker.load(std::memory_order_acquire)) {
    checkpoint_hooks.stalls.fetch_add(1, std::memory_order_relaxed);
    while (
        checkpoint_hooks.stall_before_marker.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  NEOSI_RETURN_IF_ERROR(fault_hooks.Check("checkpoint.pre_marker"));

  // 3. Marker record: declares [.., stable) durably applied. Synced so a
  //    post-crash replay can skip the prefix even if the truncation below
  //    never happened. The marker is MANDATORY on every cut: segment-
  //    granular truncation keeps the pre-stable bytes of the partially-dead
  //    oldest segment on disk, and after a crash recovery rescans the whole
  //    retained chain — without a marker it would replay stale records
  //    below the stable LSN (harmless for the idempotent data ops, but a
  //    stale GC purge replayed against a reused record id is not). When the
  //    log was fully applied at step 1 the cut extends past the marker
  //    itself: the live log reads empty, while the marker frame physically
  //    survives in the active segment to steer any crash-time replay.
  Lsn cut = stable;
  {
    WalRecord marker;
    marker.txn_id = kNoTxn;
    marker.commit_ts = kNoTimestamp;
    marker.ops.push_back(WalOp::Checkpoint(stable));
    Lsn marker_end = 0;
    auto marker_lsn = wal_->Append(marker, /*pin=*/false, &marker_end);
    if (!marker_lsn.ok()) return marker_lsn.status();
    NEOSI_RETURN_IF_ERROR(wal_->Sync());
    checkpoint_markers_.fetch_add(1, std::memory_order_relaxed);
    // Only when the marker landed EXACTLY at the stable LSN is everything
    // below it applied (a commit that slipped in between is unapplied and
    // pinned — the cut must stay below it).
    if (*marker_lsn == stable) cut = marker_end;
  }

  if (checkpoint_hooks.crash_after_marker.load(std::memory_order_acquire)) {
    return Status::IOError("simulated crash between marker and truncation");
  }
  NEOSI_RETURN_IF_ERROR(fault_hooks.Check("checkpoint.post_marker"));

  // 4. Drop the replayed prefix: segments wholly below the cut are
  //    unlinked (or recycled). Crash-safe in either direction: a crash
  //    before the unlink just leaves dead segments recovery skips via the
  //    marker; the unlink itself only removes fully-applied, fully-synced
  //    records (or the marker, which survives in the active segment).
  NEOSI_RETURN_IF_ERROR(wal_->TruncatePrefix(cut));
  checkpoint_bytes_truncated_.fetch_add(cut - head,
                                        std::memory_order_relaxed);
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status GraphStore::CheckpointStopTheWorld() {
  std::lock_guard<std::mutex> guard(checkpoint_mu_);
  // Gate EVERY new append (commits stall at their WAL write), drain every
  // in-flight commit, then fsync all stores and reset the log — the full
  // write-stall the fuzzy path exists to avoid.
  wal_->BlockAppends();
  wal_->WaitPinsDrained();
  Status s = SyncAll();
  if (s.ok()) s = wal_->Reset();
  wal_->UnblockAppends();
  if (s.ok()) checkpoints_.fetch_add(1, std::memory_order_relaxed);
  return s;
}

GraphStoreStats GraphStore::Stats() const {
  GraphStoreStats stats;
  stats.nodes = nodes_->Stats();
  stats.rels = rels_->Stats();
  stats.props = props_->PropStats();
  stats.strings = props_->DynStats();
  stats.label_dyn = label_dyn_->Stats();
  stats.wal_bytes = wal_->SizeBytes();
  stats.wal_head_lsn = wal_->HeadLsn();
  stats.wal_next_lsn = wal_->NextLsn();
  stats.wal_segments = wal_->SegmentCount();
  stats.wal_physical_bytes = wal_->PhysicalBytes();
  stats.wal_segments_created = wal_->segments_created();
  stats.wal_segments_deleted = wal_->segments_deleted();
  stats.wal_segments_recycled = wal_->segments_recycled();
  stats.wal_segments_reused = wal_->segments_reused();
  stats.wal_segments_preallocated = wal_->segments_preallocated();
  stats.wal_flushed_lsn = wal_->FlushedLsn();
  stats.wal_poisoned = wal_->poisoned();
  stats.dyn_leaked_blocks = dyn_leaked_blocks_.load(std::memory_order_relaxed);
  stats.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  stats.checkpoint_markers =
      checkpoint_markers_.load(std::memory_order_relaxed);
  stats.checkpoint_bytes_truncated =
      checkpoint_bytes_truncated_.load(std::memory_order_relaxed);
  stats.checkpoint_stores_synced =
      checkpoint_stores_synced_.load(std::memory_order_relaxed);
  stats.checkpoint_stores_skipped =
      checkpoint_stores_skipped_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace neosi
