// Fixed-size record store file: the building block of the node,
// relationship, property, dynamic and token stores.
//
// Layout: a header region of `header_size` bytes (magic, record size) then
// record i at byte offset header_size + i * record_size, exactly like
// Neo4j's id-addressed store files. Free records are found by scanning
// in-use flags at open time and kept in an in-memory free list.

#ifndef NEOSI_STORAGE_RECORD_STORE_H_
#define NEOSI_STORAGE_RECORD_STORE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/latch.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/paged_file.h"

namespace neosi {

/// Statistics snapshot for a record store.
struct RecordStoreStats {
  uint64_t high_id = 0;        ///< Exclusive upper bound of allocated ids.
  uint64_t free_records = 0;   ///< Records on the free list.
  uint64_t bytes = 0;          ///< File size in bytes.
};

/// Thread-safe fixed-size record file. Record ids are stable for the life of
/// the record; freed ids are recycled.
class RecordStore {
 public:
  /// Takes ownership of `file`. `magic` identifies the store kind in the
  /// header and is validated on open.
  RecordStore(std::unique_ptr<PagedFile> file, uint32_t record_size,
              uint32_t magic, std::string name);

  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;

  /// Initializes a fresh store or validates + scans an existing one
  /// (rebuilding the free list from in-use flags).
  Status Open();

  /// Allocates a record id (recycled or fresh). The record bytes are zeroed.
  Result<uint64_t> Allocate();

  /// Returns a record to the free list and clears its in-use flag.
  Status Free(uint64_t id);

  /// Reads the full record into buf (resized to record_size).
  Status Read(uint64_t id, std::string* buf) const;

  /// Overwrites the full record; data.size() must equal record_size.
  Status Write(uint64_t id, Slice data);

  /// Overwrites a single 8-byte field at `offset` within the record. Used
  /// for relationship chain-pointer surgery, where different fields of one
  /// record are owned by different latches (see records.h).
  Status WriteField64(uint64_t id, size_t offset, uint64_t value);

  /// True if id < high_id and the record's in-use flag is set.
  bool InUse(uint64_t id) const;

  /// Calls fn(id, record_bytes) for every in-use record. Snapshot of
  /// high_id at call time; concurrent writers may race individual records
  /// (callers quiesce writers for consistent scans).
  Status ForEach(
      const std::function<Status(uint64_t, const std::string&)>& fn) const;

  uint64_t high_id() const;
  uint32_t record_size() const { return record_size_; }
  const std::string& name() const { return name_; }
  RecordStoreStats Stats() const;

  Status Sync() { return file_->Sync(); }
  /// Syncs only when the backing file saw writes since the last sync-if-
  /// dirty (fuzzy checkpoints skip clean stores entirely). Returns whether
  /// a sync actually ran.
  Result<bool> SyncIfDirty() { return file_->SyncIfDirty(); }

  /// Ensures `id` is allocated (marks every id in [high_id, id] as used if
  /// needed). Used by WAL replay, where record ids are dictated by the log.
  Status EnsureAllocated(uint64_t id);

 private:
  uint64_t OffsetOf(uint64_t id) const {
    return header_size_ + id * record_size_;
  }
  Status WriteHeader();
  Status ValidateHeader();

  static constexpr uint64_t kHeaderSize = 64;

  std::unique_ptr<PagedFile> file_;
  const uint32_t record_size_;
  const uint32_t magic_;
  const std::string name_;
  const uint64_t header_size_ = kHeaderSize;

  mutable SpinLatch latch_;       // guards high_id_ / free_list_
  uint64_t high_id_ = 0;
  std::vector<uint64_t> free_list_;
};

}  // namespace neosi

#endif  // NEOSI_STORAGE_RECORD_STORE_H_
