// Record shipping for read replicas.
//
// A ReplicationSource hands a replica the primary's WAL records in LSN
// order, from wherever the replica's shipping cursor stands. The first
// implementation tails the primary's WalDir directly (file-copy shipping:
// same machine or a shared / snapshotted filesystem); the interface is a
// single pull call so a socket-streaming source can slot in later without
// touching the applier.
//
// Safety against the live primary:
//  - the source only ever opens EXISTING files (WalDir::OpenExisting), so
//    losing a race against segment retirement can never create a stray file
//    in the primary's directory;
//  - a segment's frames are final once a successor segment exists (the Wal
//    syncs the retiring segment before the new one enters the chain), so
//    only the newest segment may have a growing / torn tail;
//  - segment recycling truncates the file to zero FIRST, so a tailer that
//    raced a recycle sees either a shrunk file, a missing file, or a header
//    whose base changed — the source re-validates the header after reading
//    frames and discards everything from a segment that changed identity
//    mid-read (the next poll re-reads it from the fresh listing);
//  - every frame carries a CRC, so a torn or in-flight write is detected
//    and simply ends the poll (the tail is re-tried on the next pass).
//
// A cursor below the oldest retained segment is unrecoverable (the primary
// checkpointed the history away) and reported as Corruption: the replica
// must be re-seeded from a fresh copy of the primary. wal_keep_segments on
// the primary widens the window.

#ifndef NEOSI_STORAGE_REPLICATION_SOURCE_H_
#define NEOSI_STORAGE_REPLICATION_SOURCE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/wal_dir.h"
#include "storage/wal_ops.h"

namespace neosi {

/// One shipped record plus its primary LSN (the shipping-cursor unit).
struct ShippedRecord {
  Lsn lsn = 0;
  WalRecord record;
};

/// Pull interface the ReplicaApplier drains.
class ReplicationSource {
 public:
  virtual ~ReplicationSource() = default;

  /// Appends every record with LSN >= `cursor` currently readable at the
  /// source to *out, in LSN order, and sets *next_cursor one past the last
  /// record shipped (== `cursor` when nothing new arrived). A clean "no new
  /// records yet" is OK with an empty batch; Corruption means the cursor
  /// fell behind the source's retained history and the replica must be
  /// re-seeded.
  virtual Status Poll(Lsn cursor, std::vector<ShippedRecord>* out,
                      Lsn* next_cursor) = 0;
};

/// Tails a primary's WAL segment directory (file-copy shipping).
class WalDirReplicationSource final : public ReplicationSource {
 public:
  explicit WalDirReplicationSource(std::shared_ptr<WalDir> dir)
      : dir_(std::move(dir)) {}

  Status Poll(Lsn cursor, std::vector<ShippedRecord>* out,
              Lsn* next_cursor) override;

 private:
  std::shared_ptr<WalDir> dir_;
};

}  // namespace neosi

#endif  // NEOSI_STORAGE_REPLICATION_SOURCE_H_
