// Physical graph storage facade: the Neo4j store-file layer of Figure 1.
//
// Owns the node / relationship / property / dynamic / token store files plus
// the WAL, and exposes typed physical operations used by the transaction
// engine at commit time, by the garbage collector at purge time, and by
// recovery. This layer knows nothing about versions or visibility: it always
// holds exactly the NEWEST COMMITTED version of each entity (paper §4 —
// older versions live only in the object cache).
//
// Concurrency: per-entity sharded reader/writer latches. Mutators follow a
// strict acquisition order (node shards ascending, then the relationship
// shard) so they cannot deadlock; readers take a single latch.

#ifndef NEOSI_STORAGE_GRAPH_STORE_H_
#define NEOSI_STORAGE_GRAPH_STORE_H_

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/latch.h"
#include "common/options.h"
#include "common/property_value.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/dynamic_store.h"
#include "storage/property_store.h"
#include "storage/record_store.h"
#include "storage/records.h"
#include "storage/token_store.h"
#include "storage/wal.h"

namespace neosi {

/// Materialized persistent state of a node (newest committed version).
struct NodeState {
  bool in_use = false;
  bool deleted = false;
  std::vector<LabelId> labels;
  PropertyMap props;
  Timestamp commit_ts = kNoTimestamp;
  RelId first_rel = kInvalidRelId;
};

/// Materialized persistent state of a relationship.
struct RelState {
  bool in_use = false;
  bool deleted = false;
  NodeId src = kInvalidNodeId;
  NodeId dst = kInvalidNodeId;
  RelTypeId type = kInvalidToken;
  PropertyMap props;
  Timestamp commit_ts = kNoTimestamp;
};

/// Aggregate store statistics (experiments E8/E9).
struct GraphStoreStats {
  RecordStoreStats nodes;
  RecordStoreStats rels;
  RecordStoreStats props;
  RecordStoreStats strings;
  RecordStoreStats label_dyn;
  /// Live WAL bytes (append cursor minus checkpointed head).
  uint64_t wal_bytes = 0;
  uint64_t wal_head_lsn = 0;
  uint64_t wal_next_lsn = 0;
  /// Rotating WAL segment gauges/counters.
  uint64_t wal_segments = 0;            ///< Segment files currently chained.
  uint64_t wal_physical_bytes = 0;      ///< On-disk bytes of the chain.
  uint64_t wal_segments_created = 0;    ///< Fresh segment files created.
  uint64_t wal_segments_deleted = 0;    ///< Dead segments unlinked outright.
  uint64_t wal_segments_recycled = 0;   ///< Dead segments parked for reuse.
  uint64_t wal_segments_reused = 0;     ///< Pool segments re-entering chain.
  uint64_t wal_segments_preallocated = 0;  ///< Rolls that adopted a prebuilt file.
  /// Commit I/O state: the flushed-LSN watermark acks wait on, and the
  /// sticky-failure flag (true after any WAL fsync/dir-sync error — every
  /// later commit fails until the store is reopened).
  uint64_t wal_flushed_lsn = 0;
  bool wal_poisoned = false;
  /// Dynamic-store blocks in use but unreachable from any live property
  /// chain, measured by the reopen-time blob audit (crash-recovery leak;
  /// see docs/OPERATIONS.md).
  uint64_t dyn_leaked_blocks = 0;
  /// Fuzzy checkpoint counters.
  uint64_t checkpoints = 0;
  uint64_t checkpoint_markers = 0;          ///< Markers written (fuzzy cuts).
  uint64_t checkpoint_bytes_truncated = 0;  ///< WAL prefix bytes dropped.
  uint64_t checkpoint_stores_synced = 0;    ///< Dirty files fsynced.
  uint64_t checkpoint_stores_skipped = 0;   ///< Clean files skipped.
};

/// Failure-injection switches for checkpoint crash tests. All off by
/// default; production paths never set them.
struct CheckpointTestHooks {
  /// Checkpoint() parks after syncing the stores, before writing the
  /// marker, until cleared (commits must keep completing meanwhile).
  std::atomic<bool> stall_before_marker{false};
  /// Number of checkpoints that have reached the stall point above.
  std::atomic<uint64_t> stalls{0};
  /// Checkpoint() "crashes" (returns IOError) after writing + syncing the
  /// marker but BEFORE truncating the WAL prefix — the classic torn
  /// checkpoint window recovery must tolerate.
  std::atomic<bool> crash_after_marker{false};
};

/// The persistent half of the engine. Thread-safe.
class GraphStore {
 public:
  explicit GraphStore(const DatabaseOptions& options);
  ~GraphStore();

  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  /// Opens or creates every store file and the WAL. On-disk databases first
  /// take an exclusive flock on a `LOCK` file in the directory: a second
  /// process (or handle) opening the same directory fails fast with
  /// Status::Busy instead of replaying and truncating the WAL out from
  /// under the holder's live appends. The lock dies with the holder, so a
  /// crash-left LOCK file is reclaimed by the next opener automatically.
  Status Open();

  /// fsyncs every store file unconditionally.
  Status SyncAll();

  /// fsyncs only the store files dirtied since the last checkpoint
  /// (incremental half of the fuzzy checkpoint).
  Status SyncDirty(uint64_t* synced, uint64_t* skipped);

  // --- id allocation (ids are assigned at operation time so uncommitted
  // entities have stable ids; released again if the transaction aborts) ----
  Result<NodeId> AllocateNodeId() { return nodes_->Allocate(); }
  Result<RelId> AllocateRelId() { return rels_->Allocate(); }
  Status ReleaseNodeId(NodeId id) { return nodes_->Free(id); }
  Status ReleaseRelId(RelId id) { return rels_->Free(id); }

  // --- commit-time persistence (newest committed version only) ------------

  /// Writes a brand-new node record (labels + property chain + commit ts).
  Status PersistNewNode(NodeId id, const std::vector<LabelId>& labels,
                        const PropertyMap& props, Timestamp ts);

  /// Rewrites an existing node's labels/properties/commit ts in place
  /// (fresh property chain; the old chain is freed). Keeps first_rel.
  Status PersistNodeState(NodeId id, const std::vector<LabelId>& labels,
                          const PropertyMap& props, Timestamp ts);

  /// Marks a node deleted (tombstone, §4): record retained until purge.
  Status PersistNodeTombstone(NodeId id, Timestamp ts);

  /// Writes a brand-new relationship record and links it at the head of both
  /// endpoints' relationship chains.
  Status PersistNewRel(RelId id, NodeId src, NodeId dst, RelTypeId type,
                       const PropertyMap& props, Timestamp ts);

  /// Rewrites an existing relationship's properties/commit ts.
  Status PersistRelState(RelId id, const PropertyMap& props, Timestamp ts);

  /// Marks a relationship deleted (tombstone). Chain links stay intact so
  /// concurrent chain scans remain well-formed; purge performs the unlink.
  Status PersistRelTombstone(RelId id, Timestamp ts);

  // --- GC purge (physical reclamation of tombstones) ----------------------

  /// Frees a tombstoned node record and its chains. The node's relationship
  /// chain must already be empty (all rels purged first).
  Status PurgeNode(NodeId id);

  /// Unlinks a tombstoned relationship from both endpoint chains and frees
  /// its record + property chain.
  Status PurgeRel(RelId id);

  // --- reads ---------------------------------------------------------------

  /// Materializes the newest committed state of a node.
  Status ReadNodeState(NodeId id, NodeState* out) const;

  /// Materializes the newest committed state of a relationship.
  Status ReadRelState(RelId id, RelState* out) const;

  /// Collects the relationship ids in a node's chain (tombstones included;
  /// callers filter by visibility). Snapshot under the node's shared latch.
  Status RelChainOf(NodeId id, std::vector<RelId>* out) const;

  /// True while the node's physical relationship chain is non-empty
  /// (tombstoned rels awaiting purge included). Sharded GC reads this
  /// before a node purge: the node's rel tombstones may live in other
  /// shards still mid-drain, and PurgeNode on a chained node is an
  /// invariant violation — the collector defers such nodes to a later pass
  /// instead. Cheap: one record read under the shared latch.
  Result<bool> NodeHasRelChain(NodeId id) const;

  /// Raw record reads (tests, vacuum baseline).
  Status ReadNodeRecord(NodeId id, NodeRecord* out) const;
  Status ReadRelRecord(RelId id, RelationshipRecord* out) const;

  /// Reads a record and writes it back unchanged — the per-record "page
  /// rewrite" cost of the vacuum-style baseline collector (E8).
  Status ApplyRewrite(const EntityKey& key);

  /// Iterates all in-use node ids (including tombstones).
  Status ForEachNode(const std::function<Status(NodeId)>& fn) const;
  /// Iterates all in-use relationship ids (including tombstones).
  Status ForEachRel(const std::function<Status(RelId)>& fn) const;

  uint64_t NodeHighId() const { return nodes_->high_id(); }
  uint64_t RelHighId() const { return rels_->high_id(); }
  bool NodeInUse(NodeId id) const { return nodes_->InUse(id); }
  bool RelInUse(RelId id) const { return rels_->InUse(id); }

  /// Recovery helper: verifies a relationship record is reachable from both
  /// endpoint chains, redoing the link surgery if a crash interrupted it.
  Status EnsureRelLinked(RelId id);

  // --- WAL & recovery ------------------------------------------------------

  Wal& wal() { return *wal_; }

  /// Replays one logical op onto the stores, idempotently: an op whose
  /// entity already carries commit_ts >= op's record ts is repaired rather
  /// than blindly re-applied (see DESIGN.md recovery notes).
  Status ApplyWalOp(const WalOp& op, Timestamp commit_ts);

  /// Replays the live WAL suffix through ApplyWalOp: finds the last
  /// checkpoint marker and replays only records at or above its stable LSN
  /// (everything below had durably reached the stores when the marker was
  /// written). Returns the highest commit timestamp seen (stores + WAL),
  /// used to restart the timestamp oracle.
  Result<Timestamp> Recover();

  /// Fuzzy incremental checkpoint (ARIES-style; never blocks commits):
  ///   1. read the stable LSN (every record below it has reached the
  ///      stores — in-flight commits pin their record's lsn until applied),
  ///   2. fsync only the stores dirtied since the last checkpoint,
  ///   3. append + sync a checkpoint marker carrying the stable LSN,
  ///   4. truncate the WAL prefix below the stable LSN (whole dead
  ///      segments are unlinked or recycled; recovery replays from the
  ///      marker, tolerating a crash anywhere in this sequence).
  /// Commit traffic proceeds concurrently through all four steps.
  Status Checkpoint();

  /// The retired stop-the-world checkpoint (gate all appends, drain every
  /// in-flight commit, fsync every store, reset the log). Kept ONLY as the
  /// E12 bench baseline — quantifies the commit-latency spike the fuzzy
  /// path removes.
  Status CheckpointStopTheWorld();

  /// Checkpoint crash/stall injection (tests only).
  CheckpointTestHooks checkpoint_hooks;

  /// Named crash points on the checkpoint path (tests only):
  /// "checkpoint.pre_marker", "checkpoint.post_marker". The WAL's own
  /// points (segment create, truncate, mid-append) live on wal().fault_hooks.
  FaultHooks fault_hooks;

  // --- tokens --------------------------------------------------------------
  TokenStore& labels() { return *label_tokens_; }
  TokenStore& prop_keys() { return *prop_key_tokens_; }
  TokenStore& rel_types() { return *rel_type_tokens_; }
  const TokenStore& labels() const { return *label_tokens_; }
  const TokenStore& prop_keys() const { return *prop_key_tokens_; }
  const TokenStore& rel_types() const { return *rel_type_tokens_; }

  GraphStoreStats Stats() const;

 private:
  static constexpr size_t kShards = 128;

  SharedLatch& NodeShard(NodeId id) const {
    return node_shards_[id % kShards];
  }
  SharedLatch& RelShard(RelId id) const { return rel_shards_[id % kShards]; }

  /// Locks the shards of (a, b) uniquely in ascending order (once if equal).
  /// Returned guards unlock in destruction order.
  std::vector<WriteGuard> LockNodePair(NodeId a, NodeId b) const;

  Status WriteNodeRecord(NodeId id, const NodeRecord& rec);
  Status WriteRelRecord(RelId id, const RelationshipRecord& rec);

  /// Encodes labels into the record (inline or overflow blob). Never frees:
  /// the record's previous overflow blob id is returned through `old_blob`
  /// for the caller to free AFTER the record rewrite lands — freeing first
  /// would leave a crash window where the on-disk record points at a freed
  /// blob.
  Status StoreLabels(NodeRecord* rec, const std::vector<LabelId>& labels,
                     DynId* old_blob);
  Status LoadLabels(const NodeRecord& rec, std::vector<LabelId>* out) const;

  /// Links `rec` (already populated, id `id`) at the head of `node`'s chain.
  /// Caller holds the node-pair latches.
  Status LinkIntoChain(RelId id, RelationshipRecord* rec, NodeId node);

  /// Unlink surgery for one endpoint. Caller holds the node-pair latches.
  Status UnlinkFromChain(RelId id, const RelationshipRecord& rec, NodeId node);

  DatabaseOptions options_;

  /// Lifetime checkpoint counters (see GraphStoreStats).
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> checkpoint_markers_{0};
  std::atomic<uint64_t> checkpoint_bytes_truncated_{0};
  std::atomic<uint64_t> checkpoint_stores_synced_{0};
  std::atomic<uint64_t> checkpoint_stores_skipped_{0};
  /// Serializes checkpoints (fuzzy or legacy) against each other — never
  /// against commits.
  std::mutex checkpoint_mu_;

  /// True while Recover() replays the WAL (single-threaded, before any
  /// daemon or transaction runs). While set, the Persist*/Purge* paths do
  /// NOT free old property chains or label blobs: after a crash the store
  /// files reflect different flush instants, so a record's chain pointer
  /// can alias records owned by another live chain — freeing through it
  /// would destroy that chain. Recover() reclaims the leaked records with
  /// PropertyStore::SweepUnreachable once replay completes.
  bool recovering_ = false;

  /// Result of the last reopen-time blob reachability audit (see
  /// PropertyStore::AuditBlobReachability): dynamic-store blocks leaked by
  /// crash recovery so far. Gauge, refreshed by every Recover().
  std::atomic<uint64_t> dyn_leaked_blocks_{0};

  /// flock'd LOCK-file descriptor guarding exclusive directory ownership
  /// (-1 when in-memory or not yet opened). Held for the store's lifetime;
  /// the kernel drops the lock when the fd closes — including on crash.
  int lock_fd_ = -1;

  std::unique_ptr<RecordStore> nodes_;
  std::unique_ptr<RecordStore> rels_;
  std::unique_ptr<PropertyStore> props_;
  std::unique_ptr<DynamicStore> label_dyn_;
  std::unique_ptr<TokenStore> label_tokens_;
  std::unique_ptr<TokenStore> prop_key_tokens_;
  std::unique_ptr<TokenStore> rel_type_tokens_;
  std::unique_ptr<Wal> wal_;

  mutable std::array<SharedLatch, kShards> node_shards_;
  mutable std::array<SharedLatch, kShards> rel_shards_;
};

}  // namespace neosi

#endif  // NEOSI_STORAGE_GRAPH_STORE_H_
