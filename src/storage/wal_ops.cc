#include "storage/wal_ops.h"

#include "common/coding.h"

namespace neosi {

WalOp WalOp::CreateNode(NodeId id, std::vector<LabelId> labels,
                        PropertyMap props) {
  WalOp op;
  op.type = WalOpType::kCreateNode;
  op.id = id;
  op.labels = std::move(labels);
  op.props = std::move(props);
  return op;
}

WalOp WalOp::DeleteNode(NodeId id) {
  WalOp op;
  op.type = WalOpType::kDeleteNode;
  op.id = id;
  return op;
}

WalOp WalOp::SetNodeProperty(NodeId id, PropertyKeyId key,
                             PropertyValue value) {
  WalOp op;
  op.type = WalOpType::kSetNodeProperty;
  op.id = id;
  op.token = key;
  op.value = std::move(value);
  return op;
}

WalOp WalOp::RemoveNodeProperty(NodeId id, PropertyKeyId key) {
  WalOp op;
  op.type = WalOpType::kRemoveNodeProperty;
  op.id = id;
  op.token = key;
  return op;
}

WalOp WalOp::NodeState(NodeId id, std::vector<LabelId> labels,
                       PropertyMap props) {
  WalOp op;
  op.type = WalOpType::kNodeState;
  op.id = id;
  op.labels = std::move(labels);
  op.props = std::move(props);
  return op;
}

WalOp WalOp::RelState(RelId id, PropertyMap props) {
  WalOp op;
  op.type = WalOpType::kRelState;
  op.id = id;
  op.props = std::move(props);
  return op;
}

WalOp WalOp::AddLabel(NodeId id, LabelId label) {
  WalOp op;
  op.type = WalOpType::kAddLabel;
  op.id = id;
  op.token = label;
  return op;
}

WalOp WalOp::RemoveLabel(NodeId id, LabelId label) {
  WalOp op;
  op.type = WalOpType::kRemoveLabel;
  op.id = id;
  op.token = label;
  return op;
}

WalOp WalOp::CreateRel(RelId id, NodeId src, NodeId dst, RelTypeId type,
                       PropertyMap props) {
  WalOp op;
  op.type = WalOpType::kCreateRel;
  op.id = id;
  op.src = src;
  op.dst = dst;
  op.rel_type = type;
  op.props = std::move(props);
  return op;
}

WalOp WalOp::DeleteRel(RelId id) {
  WalOp op;
  op.type = WalOpType::kDeleteRel;
  op.id = id;
  return op;
}

WalOp WalOp::SetRelProperty(RelId id, PropertyKeyId key, PropertyValue value) {
  WalOp op;
  op.type = WalOpType::kSetRelProperty;
  op.id = id;
  op.token = key;
  op.value = std::move(value);
  return op;
}

WalOp WalOp::RemoveRelProperty(RelId id, PropertyKeyId key) {
  WalOp op;
  op.type = WalOpType::kRemoveRelProperty;
  op.id = id;
  op.token = key;
  return op;
}

WalOp WalOp::CreateToken(TokenKind kind, uint32_t id, std::string name) {
  WalOp op;
  op.type = WalOpType::kCreateToken;
  op.id = id;
  op.token_kind = kind;
  op.name = std::move(name);
  return op;
}

WalOp WalOp::PurgeNode(NodeId id) {
  WalOp op;
  op.type = WalOpType::kPurgeNode;
  op.id = id;
  return op;
}

WalOp WalOp::Checkpoint(Lsn stable_lsn) {
  WalOp op;
  op.type = WalOpType::kCheckpoint;
  op.id = stable_lsn;
  return op;
}

WalOp WalOp::PurgeRel(RelId id, NodeId src, NodeId dst, RelId src_prev,
                      RelId src_next, RelId dst_prev, RelId dst_next) {
  WalOp op;
  op.type = WalOpType::kPurgeRel;
  op.id = id;
  op.src = src;
  op.dst = dst;
  op.src_prev = src_prev;
  op.src_next = src_next;
  op.dst_prev = dst_prev;
  op.dst_next = dst_next;
  return op;
}

namespace {

void PutProps(std::string* dst, const PropertyMap& props) {
  PutVarint64(dst, props.size());
  for (const auto& [key, value] : props) {
    PutVarint32(dst, key);
    value.EncodeTo(dst);
  }
}

Status GetProps(Slice* input, PropertyMap* out) {
  out->clear();
  uint64_t n;
  if (!GetVarint64(input, &n)) return Status::Corruption("wal: props count");
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t key;
    if (!GetVarint32(input, &key)) return Status::Corruption("wal: prop key");
    PropertyValue value;
    NEOSI_RETURN_IF_ERROR(PropertyValue::DecodeFrom(input, &value));
    (*out)[key] = std::move(value);
  }
  return Status::OK();
}

}  // namespace

void WalOp::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(type));
  PutVarint64(dst, id);
  switch (type) {
    case WalOpType::kCreateNode:
    case WalOpType::kNodeState:
      PutVarint64(dst, labels.size());
      for (LabelId label : labels) PutVarint32(dst, label);
      PutProps(dst, props);
      break;
    case WalOpType::kRelState:
      PutProps(dst, props);
      break;
    case WalOpType::kDeleteNode:
    case WalOpType::kDeleteRel:
      break;
    case WalOpType::kSetNodeProperty:
    case WalOpType::kSetRelProperty:
      PutVarint32(dst, token);
      value.EncodeTo(dst);
      break;
    case WalOpType::kRemoveNodeProperty:
    case WalOpType::kRemoveRelProperty:
    case WalOpType::kAddLabel:
    case WalOpType::kRemoveLabel:
      PutVarint32(dst, token);
      break;
    case WalOpType::kCreateRel:
      PutVarint64(dst, src);
      PutVarint64(dst, this->dst);
      PutVarint32(dst, rel_type);
      PutProps(dst, props);
      break;
    case WalOpType::kCreateToken:
      dst->push_back(static_cast<char>(token_kind));
      PutLengthPrefixedSlice(dst, Slice(name));
      break;
    case WalOpType::kPurgeNode:
    case WalOpType::kCheckpoint:
      break;
    case WalOpType::kPurgeRel:
      PutVarint64(dst, src);
      PutVarint64(dst, this->dst);
      PutVarint64(dst, src_prev);
      PutVarint64(dst, src_next);
      PutVarint64(dst, dst_prev);
      PutVarint64(dst, dst_next);
      break;
  }
}

Status WalOp::DecodeFrom(Slice* input, WalOp* out) {
  if (input->empty()) return Status::Corruption("wal op: empty");
  out->type = static_cast<WalOpType>((*input)[0]);
  input->remove_prefix(1);
  if (!GetVarint64(input, &out->id)) return Status::Corruption("wal op: id");
  switch (out->type) {
    case WalOpType::kCreateNode:
    case WalOpType::kNodeState: {
      uint64_t n;
      if (!GetVarint64(input, &n)) return Status::Corruption("wal: labels");
      out->labels.resize(n);
      for (uint64_t i = 0; i < n; ++i) {
        if (!GetVarint32(input, &out->labels[i])) {
          return Status::Corruption("wal: label id");
        }
      }
      return GetProps(input, &out->props);
    }
    case WalOpType::kRelState:
      return GetProps(input, &out->props);
    case WalOpType::kDeleteNode:
    case WalOpType::kDeleteRel:
      return Status::OK();
    case WalOpType::kSetNodeProperty:
    case WalOpType::kSetRelProperty: {
      if (!GetVarint32(input, &out->token)) {
        return Status::Corruption("wal: prop key");
      }
      return PropertyValue::DecodeFrom(input, &out->value);
    }
    case WalOpType::kRemoveNodeProperty:
    case WalOpType::kRemoveRelProperty:
    case WalOpType::kAddLabel:
    case WalOpType::kRemoveLabel: {
      if (!GetVarint32(input, &out->token)) {
        return Status::Corruption("wal: token id");
      }
      return Status::OK();
    }
    case WalOpType::kCreateRel: {
      if (!GetVarint64(input, &out->src)) {
        return Status::Corruption("wal: rel src");
      }
      if (!GetVarint64(input, &out->dst)) {
        return Status::Corruption("wal: rel dst");
      }
      if (!GetVarint32(input, &out->rel_type)) {
        return Status::Corruption("wal: rel type");
      }
      return GetProps(input, &out->props);
    }
    case WalOpType::kCreateToken: {
      if (input->empty()) return Status::Corruption("wal: token kind");
      out->token_kind = static_cast<TokenKind>((*input)[0]);
      input->remove_prefix(1);
      Slice name;
      if (!GetLengthPrefixedSlice(input, &name)) {
        return Status::Corruption("wal: token name");
      }
      out->name = name.ToString();
      return Status::OK();
    }
    case WalOpType::kPurgeNode:
    case WalOpType::kCheckpoint:
      return Status::OK();
    case WalOpType::kPurgeRel: {
      if (!GetVarint64(input, &out->src) || !GetVarint64(input, &out->dst) ||
          !GetVarint64(input, &out->src_prev) ||
          !GetVarint64(input, &out->src_next) ||
          !GetVarint64(input, &out->dst_prev) ||
          !GetVarint64(input, &out->dst_next)) {
        return Status::Corruption("wal: purge rel fields");
      }
      return Status::OK();
    }
  }
  return Status::Corruption("wal op: unknown type byte");
}

void WalRecord::EncodeTo(std::string* dst) const {
  PutVarint64(dst, txn_id);
  PutVarint64(dst, commit_ts);
  PutVarint64(dst, ops.size());
  for (const WalOp& op : ops) op.EncodeTo(dst);
  // Optional trailer: present only when non-zero so records without a
  // publication hint stay byte-identical to the pre-replication format.
  if (publish_ts != kNoTimestamp) PutVarint64(dst, publish_ts);
}

Status WalRecord::DecodeFrom(Slice input, WalRecord* out) {
  if (!GetVarint64(&input, &out->txn_id)) {
    return Status::Corruption("wal record: txn id");
  }
  if (!GetVarint64(&input, &out->commit_ts)) {
    return Status::Corruption("wal record: commit ts");
  }
  uint64_t n;
  if (!GetVarint64(&input, &n)) return Status::Corruption("wal record: count");
  out->ops.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    NEOSI_RETURN_IF_ERROR(WalOp::DecodeFrom(&input, &out->ops[i]));
  }
  out->publish_ts = kNoTimestamp;
  if (!input.empty() && !GetVarint64(&input, &out->publish_ts)) {
    return Status::Corruption("wal record: publish ts");
  }
  if (!input.empty()) {
    return Status::Corruption("wal record: trailing bytes");
  }
  return Status::OK();
}

}  // namespace neosi
