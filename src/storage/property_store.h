// Property chain storage: materializes / persists a PropertyMap as a
// singly-linked chain of fixed PropertyRecords, spilling long values to a
// DynamicStore (the Neo4j property file + dynamic string file pair).

#ifndef NEOSI_STORAGE_PROPERTY_STORE_H_
#define NEOSI_STORAGE_PROPERTY_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/property_value.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/dynamic_store.h"
#include "storage/record_store.h"

namespace neosi {

/// Thread-compatible property-chain manager. Chains are immutable once
/// written: updating an entity's properties writes a fresh chain and frees
/// the old one (the caller swaps the entity's first_prop pointer). This is
/// exactly the "persist only the newest committed version" model of §4.
class PropertyStore {
 public:
  PropertyStore(std::unique_ptr<PagedFile> prop_file,
                std::unique_ptr<PagedFile> dyn_file);

  Status Open();

  /// Writes `props` as a fresh chain; returns its head (kInvalidPropId for
  /// an empty map).
  Result<PropId> WriteChain(const PropertyMap& props);

  /// Reads the chain starting at `head` into *out (cleared first).
  Status ReadChain(PropId head, PropertyMap* out) const;

  /// Frees every record (and overflow blob) in the chain at `head`.
  /// kInvalidPropId is a no-op.
  Status FreeChain(PropId head);

  /// Recovery sweep: frees every in-use record NOT reachable from `roots`
  /// (the first_prop heads of all live node/rel records after replay).
  /// Replay suppresses FreeChain — a stale record's chain pointer can alias
  /// records owned by another live chain, so freeing through it would
  /// corrupt that chain — and this sweep reclaims the leaked records
  /// afterwards from the authoritative reachability set instead. Overflow
  /// blobs are deliberately NOT freed here (a stale record's overflow id can
  /// alias a live blob); crash recovery may leak dynamic-store bytes,
  /// bounded per crash.
  Status SweepUnreachable(const std::vector<PropId>& roots, uint64_t* freed);

  /// Reopen-time audit of the bounded leak documented above: walks every
  /// overflow chain hanging off a reachable property record (Corruption if
  /// any is broken — the reachability assert) and counts dynamic-store
  /// blocks that are in use but reachable from NO live chain, i.e. the
  /// blobs crash recovery has leaked so far. Read-only: the leak is
  /// deliberately not repaired (see SweepUnreachable), only measured, so
  /// growth shows up in stats/tests. Bound: each crash leaks at most the
  /// overflow blocks of the chains whose frees that recovery suppressed.
  Status AuditBlobReachability(const std::vector<PropId>& roots,
                               uint64_t* leaked_blocks);

  RecordStoreStats PropStats() const { return props_.Stats(); }
  RecordStoreStats DynStats() const { return dyn_.Stats(); }
  Status Sync();
  /// Returns whether either backing file needed a sync.
  Result<bool> SyncIfDirty();

 private:
  RecordStore props_;
  DynamicStore dyn_;
};

}  // namespace neosi

#endif  // NEOSI_STORAGE_PROPERTY_STORE_H_
