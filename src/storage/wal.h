// Framed write-ahead log.
//
// Frame format: [payload_len u32][crc32c u32][payload bytes]. The reader
// stops at the first frame whose length or checksum is invalid and reports
// how many bytes were valid, so a torn tail write (crash mid-append) is
// detected and truncated rather than propagated.
//
// Group commit: concurrent committers hand their records to the Wal's
// GroupCommitter, which batches everything queued while the previous batch
// was being written into ONE buffered append and (when any participant asked
// for durability) ONE Sync() — N concurrent sync_commits transactions share
// a single fsync instead of paying one each.

#ifndef NEOSI_STORAGE_WAL_H_
#define NEOSI_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/latch.h"
#include "common/status.h"
#include "storage/paged_file.h"
#include "storage/wal_ops.h"

namespace neosi {

class Wal;

/// Leader/follower commit batcher over a Wal. Thread-safe.
///
/// A caller enqueues its record and either becomes the batch leader (writes
/// every queued record with one append, syncs once if any participant wants
/// durability) or blocks until a leader has written — and, if requested,
/// synced — its record.
class GroupCommitter {
 public:
  explicit GroupCommitter(Wal* wal) : wal_(wal) {}

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Appends `record`, returning its LSN. When `sync` is true the record is
  /// on stable storage before this returns (possibly via a leader's fsync
  /// that covered a whole batch).
  Result<Lsn> Commit(const WalRecord& record, bool sync);

  /// Batches whose fsync covered more than one record (test / stats hook).
  uint64_t batches() const { return batches_; }
  uint64_t records() const { return records_; }

 private:
  struct Request {
    const WalRecord* record;
    bool sync;
    bool done = false;
    Status status;
    Lsn lsn = 0;
  };

  Wal* wal_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request*> queue_;
  bool leader_active_ = false;
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> records_{0};
};

/// Append-only log of WalRecords over a PagedFile.
class Wal {
 public:
  explicit Wal(std::unique_ptr<PagedFile> file);

  /// Positions the append cursor at the end of the valid prefix.
  Status Open();

  /// Appends one record; returns its LSN (byte offset of the frame).
  Result<Lsn> Append(const WalRecord& record);

  /// Appends every record with a single file write. On success `lsns[i]` is
  /// the LSN of `records[i]`.
  Status AppendBatch(const std::vector<const WalRecord*>& records,
                     std::vector<Lsn>* lsns);

  /// Forces the log to stable storage.
  Status Sync();

  /// The commit batcher bound to this log.
  GroupCommitter& group() { return group_; }

  /// Replays every valid record in order. Stops cleanly at a torn tail
  /// (which is then truncated so later appends start from a clean state).
  Status ReadAll(const std::function<Status(const WalRecord&)>& fn);

  /// Truncates the log to empty (after a checkpoint).
  Status Reset();

  /// Bytes in the valid prefix.
  uint64_t SizeBytes() const { return append_offset_; }

 private:
  friend class GroupCommitter;

  std::unique_ptr<PagedFile> file_;
  SpinLatch latch_;          // serializes appends
  uint64_t append_offset_ = 0;
  GroupCommitter group_{this};
};

}  // namespace neosi

#endif  // NEOSI_STORAGE_WAL_H_
