// Framed write-ahead log.
//
// Frame format: [payload_len u32][crc32c u32][payload bytes]. The reader
// stops at the first frame whose length or checksum is invalid and reports
// how many bytes were valid, so a torn tail write (crash mid-append) is
// detected and truncated rather than propagated.
//
// Group commit: concurrent committers hand their records to the Wal's
// GroupCommitter, which batches everything queued while the previous batch
// was being written into ONE buffered append and (when any participant asked
// for durability) ONE Sync() — N concurrent sync_commits transactions share
// a single fsync instead of paying one each.

#ifndef NEOSI_STORAGE_WAL_H_
#define NEOSI_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/latch.h"
#include "common/status.h"
#include "storage/paged_file.h"
#include "storage/wal_ops.h"

namespace neosi {

class Wal;

/// Leader/follower commit batcher over a Wal. Thread-safe.
///
/// A caller enqueues its record and either becomes the batch leader (writes
/// every queued record with one append, syncs once if any participant wants
/// durability) or blocks until a leader has written — and, if requested,
/// synced — its record.
class GroupCommitter {
 public:
  explicit GroupCommitter(Wal* wal) : wal_(wal) {}

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Appends `record`, returning its LSN. When `sync` is true the record is
  /// on stable storage before this returns (possibly via a leader's fsync
  /// that covered a whole batch).
  Result<Lsn> Commit(const WalRecord& record, bool sync);

  /// Batches whose fsync covered more than one record (test / stats hook).
  uint64_t batches() const { return batches_; }
  uint64_t records() const { return records_; }

 private:
  struct Request {
    const WalRecord* record;
    bool sync;
    bool done = false;
    Status status;
    Lsn lsn = 0;
  };

  Wal* wal_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request*> queue_;
  bool leader_active_ = false;
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> records_{0};
};

/// Append-only log of WalRecords over a PagedFile.
class Wal {
 public:
  explicit Wal(std::unique_ptr<PagedFile> file);

  /// Positions the append cursor at the end of the valid prefix.
  Status Open();

  /// Appends one record; returns its LSN (byte offset of the frame).
  Result<Lsn> Append(const WalRecord& record);

  /// Appends every record with a single file write. On success `lsns[i]` is
  /// the LSN of `records[i]`.
  Status AppendBatch(const std::vector<const WalRecord*>& records,
                     std::vector<Lsn>* lsns);

  /// Forces the log to stable storage.
  Status Sync();

  /// The commit batcher bound to this log.
  GroupCommitter& group() { return group_; }

  /// Replays every valid record in order. Stops cleanly at a torn tail
  /// (which is then truncated so later appends start from a clean state).
  Status ReadAll(const std::function<Status(const WalRecord&)>& fn);

  /// Truncates the log to empty (after a checkpoint).
  Status Reset();

  /// Bytes in the valid prefix.
  uint64_t SizeBytes() const { return append_offset_; }

  // --- checkpoint epoch ------------------------------------------------
  // A committer holds the epoch SHARED from before its WAL append until
  // its effects have reached the store; Checkpoint() drains the epoch
  // before truncating, so truncation can never drop a record (or
  // group-commit batch) whose commit has not yet applied — an acked
  // commit would otherwise vanish on crash. Holders never block on other
  // commits while pinned (store apply waits on nothing), so the drain
  // always completes. The gate is explicit (counter + draining flag, NOT a
  // shared_mutex): a requested drain holds out new entrants immediately,
  // so a continuous stream of overlapping commits cannot starve the
  // checkpoint the way a reader-preferring rwlock would.

  /// RAII shared hold on the checkpoint epoch.
  class EpochPin {
   public:
    explicit EpochPin(Wal* wal) : wal_(wal) { wal_->EnterEpoch(); }
    ~EpochPin() { wal_->ExitEpoch(); }
    EpochPin(const EpochPin&) = delete;
    EpochPin& operator=(const EpochPin&) = delete;

   private:
    Wal* const wal_;
  };

  /// RAII exclusive drain of the checkpoint epoch (one drainer at a time).
  class EpochDrain {
   public:
    explicit EpochDrain(Wal* wal) : wal_(wal) { wal_->BeginDrain(); }
    ~EpochDrain() { wal_->EndDrain(); }
    EpochDrain(const EpochDrain&) = delete;
    EpochDrain& operator=(const EpochDrain&) = delete;

   private:
    Wal* const wal_;
  };

  /// Pins the checkpoint epoch (shared). Release before any wait on
  /// publication or locks.
  EpochPin ShareEpoch() { return EpochPin(this); }

  /// Drains the checkpoint epoch: returns once no commit is between WAL
  /// append and store apply, and holds out new ones until destroyed.
  EpochDrain DrainEpoch() { return EpochDrain(this); }

 private:
  friend class GroupCommitter;

  void EnterEpoch();
  void ExitEpoch();
  void BeginDrain();
  void EndDrain();

  std::unique_ptr<PagedFile> file_;
  SpinLatch latch_;          // serializes appends
  uint64_t append_offset_ = 0;
  GroupCommitter group_{this};

  // Checkpoint epoch gate (see above).
  std::mutex epoch_mu_;
  std::condition_variable epoch_cv_;
  uint64_t epoch_holders_ = 0;
  bool epoch_draining_ = false;
};

}  // namespace neosi

#endif  // NEOSI_STORAGE_WAL_H_
