// Framed write-ahead log with a truncatable head.
//
// File layout (v2): a fixed header region followed by frames. The header
// is DUAL-SLOT (ping-pong): two 32-byte slots, each
//
//   [magic u32][version u32][head_lsn u64][base_lsn u64][seq u32][crc32c]
//
// Updates write the slot the current one is NOT in, so a torn header
// write can only destroy the slot being written — Open() picks the valid
// slot with the highest seq, and the surviving (older) slot merely makes
// recovery replay a longer, already-applied prefix (idempotent). A torn
// single-slot header would otherwise brick an intact database.
//
// Frame format: [payload_len u32][crc32c u32][payload bytes]. The reader
// stops at the first frame whose length or checksum is invalid and reports
// how many bytes were valid, so a torn tail write (crash mid-append) is
// detected and truncated rather than propagated.
//
// LSNs are LOGICAL byte offsets: they increase monotonically for the
// lifetime of the log, across prefix truncations and resets. A frame with
// lsn L lives at physical offset kHeaderSize + (L - base_lsn). Fuzzy
// checkpoints advance head_lsn (one small header rewrite, no data copying)
// and punch a filesystem hole over the dead prefix; the byte range
// [head_lsn, next_lsn) is the live log that recovery replays.
//
// Group commit: concurrent committers hand their records to the Wal's
// GroupCommitter, which batches everything queued while the previous batch
// was being written into ONE buffered append and (when any participant asked
// for durability) ONE Sync() — N concurrent sync_commits transactions share
// a single fsync instead of paying one each.
//
// Stable LSN: a committer whose record must not be truncated before its
// effects reach the stores appends with pin=true; the lsn stays pinned until
// Unpin(). StableLsn() — the fuzzy checkpoint's truncation bound — is the
// smallest pinned lsn, or the append cursor when nothing is pinned: every
// record below it has fully reached the stores. Pinning happens inside the
// append (under the same ordering as the cursor advance), so there is no
// window where an appended-but-unapplied record is invisible to StableLsn().

#ifndef NEOSI_STORAGE_WAL_H_
#define NEOSI_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "common/latch.h"
#include "common/status.h"
#include "storage/paged_file.h"
#include "storage/wal_ops.h"

namespace neosi {

class Wal;

/// Leader/follower commit batcher over a Wal. Thread-safe.
///
/// A caller enqueues its record and either becomes the batch leader (writes
/// every queued record with one append, syncs once if any participant wants
/// durability) or blocks until a leader has written — and, if requested,
/// synced — its record.
class GroupCommitter {
 public:
  explicit GroupCommitter(Wal* wal) : wal_(wal) {}

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Appends `record`, returning its LSN. When `sync` is true the record is
  /// on stable storage before this returns (possibly via a leader's fsync
  /// that covered a whole batch). When `pin` is true the LSN is pinned (see
  /// Wal::Unpin) from the moment the record enters the log.
  Result<Lsn> Commit(const WalRecord& record, bool sync, bool pin = false);

  /// Batches whose fsync covered more than one record (test / stats hook).
  uint64_t batches() const { return batches_; }
  uint64_t records() const { return records_; }

 private:
  struct Request {
    const WalRecord* record = nullptr;
    bool sync = false;
    bool pin = false;
    bool done = false;
    Status status;
    Lsn lsn = 0;
  };

  Wal* wal_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request*> queue_;
  bool leader_active_ = false;
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> records_{0};
};

/// Append-only log of WalRecords over a PagedFile, truncatable at the head.
class Wal {
 public:
  /// Size of one header slot / of the whole dual-slot header region
  /// preceding the first frame.
  static constexpr uint64_t kHeaderSlotSize = 32;
  static constexpr uint64_t kHeaderSize = 2 * kHeaderSlotSize;

  explicit Wal(std::unique_ptr<PagedFile> file);

  /// Reads or creates the header and positions the append cursor at the end
  /// of the valid frame prefix. Headerless (v1) files are migrated in place.
  Status Open();

  /// Appends one record; returns its LSN. With pin=true the LSN is pinned
  /// against prefix truncation until Unpin(lsn).
  Result<Lsn> Append(const WalRecord& record, bool pin = false);

  /// Appends every record with a single file write. On success `lsns[i]` is
  /// the LSN of `records[i]`; records whose `pins[i]` is true are pinned.
  /// `pins` may be null (nothing pinned).
  Status AppendBatch(const std::vector<const WalRecord*>& records,
                     std::vector<Lsn>* lsns,
                     const std::vector<bool>* pins = nullptr);

  /// Forces the log to stable storage.
  Status Sync();

  /// The commit batcher bound to this log.
  GroupCommitter& group() { return group_; }

  /// Replays every live record in order (from the head). Stops cleanly at a
  /// torn tail (which is then truncated so later appends start from a clean
  /// state).
  Status ReadAll(const std::function<Status(const WalRecord&)>& fn);

  /// Replays every live record at or above `from`, passing each record's
  /// LSN. Same torn-tail handling as ReadAll.
  Status ReadFrom(Lsn from,
                  const std::function<Status(Lsn, const WalRecord&)>& fn);

  /// Truncates the log to empty. LSNs stay monotonic: the next append
  /// continues above every lsn ever handed out. Physical file shrinks to
  /// just the header.
  Status Reset();

  // --- fuzzy checkpoint support ----------------------------------------

  /// Drops the log prefix below `lsn`: advances the head (one header
  /// rewrite + sync) and punches a filesystem hole over the dead bytes.
  /// Appends proceed concurrently — nothing blocks. `lsn` below the current
  /// head is a no-op; `lsn` above the append cursor is InvalidArgument.
  Status TruncatePrefix(Lsn lsn);

  /// Releases a pin taken by an Append/AppendBatch/group Commit with
  /// pin=true. Call exactly once per pinned lsn, after the record's effects
  /// have durably-orderably reached the stores.
  void Unpin(Lsn lsn);

  /// The fuzzy checkpoint's truncation bound: every record below the
  /// returned lsn has been fully applied to the stores (its appender has
  /// unpinned). Never exceeds the append cursor.
  Lsn StableLsn() const;

  /// Currently pinned lsns (test / stats hook).
  size_t PinnedCount() const;

  // --- legacy stop-the-world gate (bench comparison only) ---------------

  /// Holds out ALL new appends until UnblockAppends(). Used only by the
  /// legacy stop-the-world checkpoint kept for the E12 bench comparison.
  void BlockAppends();
  void UnblockAppends();

  /// Blocks until no lsn is pinned. Only meaningful while appends are
  /// blocked (otherwise new pins keep arriving).
  void WaitPinsDrained();

  // --- introspection ----------------------------------------------------

  /// Bytes in the live log: append cursor minus head.
  uint64_t SizeBytes() const {
    return next_lsn_.load(std::memory_order_acquire) -
           head_lsn_.load(std::memory_order_acquire);
  }

  /// First live lsn (everything below is checkpointed away).
  Lsn HeadLsn() const { return head_lsn_.load(std::memory_order_acquire); }

  /// The lsn the next append will receive.
  Lsn NextLsn() const { return next_lsn_.load(std::memory_order_acquire); }

  /// Physical file offset of `lsn` (test hook: lets tests inject torn
  /// frames at known byte positions).
  uint64_t PhysOf(Lsn lsn) const {
    return kHeaderSize + (lsn - base_lsn_.load(std::memory_order_acquire));
  }

 private:
  friend class GroupCommitter;

  /// Writes the next header slot (magic, version, head, base, seq, crc):
  /// always the slot the currently-valid header is NOT in.
  Status WriteHeader();

  /// Waits while the legacy append gate is closed.
  void AwaitAppendGate();

  /// Acquires latch_ with the gate re-validated under it (an appender must
  /// never slip past a closing gate into a log about to be Reset()).
  void LockAppendLatch();

  std::unique_ptr<PagedFile> file_;
  SpinLatch latch_;  // serializes appends (file write + cursor advance)
  std::atomic<Lsn> head_lsn_{0};
  std::atomic<Lsn> next_lsn_{0};
  std::atomic<Lsn> base_lsn_{0};  // lsn at physical offset kHeaderSize
  /// Sequence of the last header slot written (guarded by trunc_mu_,
  /// except during single-threaded Open). Parity picks the next slot.
  uint32_t header_seq_ = 0;
  GroupCommitter group_{this};

  /// Serializes header rewrites (TruncatePrefix vs Reset).
  std::mutex trunc_mu_;

  /// Pinned lsns: appended records whose effects have not yet reached the
  /// stores. Insertion happens before the cursor advance publishes the
  /// record; see StableLsn() for the resulting ordering argument.
  mutable std::mutex pins_mu_;
  std::condition_variable pins_cv_;
  std::set<Lsn> pins_;

  /// Legacy stop-the-world gate (bench only). Closed ⇒ appends park.
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  std::atomic<bool> gate_closed_{false};
};

}  // namespace neosi

#endif  // NEOSI_STORAGE_WAL_H_
