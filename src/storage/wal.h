// Framed write-ahead log.
//
// Frame format: [payload_len u32][crc32c u32][payload bytes]. The reader
// stops at the first frame whose length or checksum is invalid and reports
// how many bytes were valid, so a torn tail write (crash mid-append) is
// detected and truncated rather than propagated.

#ifndef NEOSI_STORAGE_WAL_H_
#define NEOSI_STORAGE_WAL_H_

#include <functional>
#include <memory>

#include "common/latch.h"
#include "common/status.h"
#include "storage/paged_file.h"
#include "storage/wal_ops.h"

namespace neosi {

/// Append-only log of WalRecords over a PagedFile.
class Wal {
 public:
  explicit Wal(std::unique_ptr<PagedFile> file);

  /// Positions the append cursor at the end of the valid prefix.
  Status Open();

  /// Appends one record; returns its LSN (byte offset of the frame).
  Result<Lsn> Append(const WalRecord& record);

  /// Forces the log to stable storage.
  Status Sync();

  /// Replays every valid record in order. Stops cleanly at a torn tail
  /// (which is then truncated so later appends start from a clean state).
  Status ReadAll(const std::function<Status(const WalRecord&)>& fn);

  /// Truncates the log to empty (after a checkpoint).
  Status Reset();

  /// Bytes in the valid prefix.
  uint64_t SizeBytes() const { return append_offset_; }

 private:
  std::unique_ptr<PagedFile> file_;
  SpinLatch latch_;          // serializes appends
  uint64_t append_offset_ = 0;
};

}  // namespace neosi

#endif  // NEOSI_STORAGE_WAL_H_
