// Framed write-ahead log over ROTATING fixed-size segment files.
//
// Layout: the log is a chain of segment files `wal.000001`, `wal.000002`, …
// in one WalDir. Each segment starts with an immutable 32-byte header
//
//   [magic u32][version u32][base_lsn u64][epoch u64][crc32c u32][pad]
//
// written once (and synced) when the segment enters the chain; frames follow
// from byte 32. The header never changes afterwards, so there is nothing a
// torn header rewrite could destroy — the dual-slot ping-pong header of the
// single-file WAL is gone. A torn header can only exist on the NEWEST
// segment (a crash during its creation) and Open() simply discards that
// empty file.
//
// Frame format (unchanged): [payload_len u32][crc32c u32][payload bytes].
// Frames never span segments: Append rolls to a fresh segment when the next
// frame would push the file past `WalOptions::segment_size` (a frame larger
// than a whole segment still gets one to itself). The retiring segment is
// synced BEFORE the new one enters the chain, so a valid-prefix walk may
// stop early only in the newest segment (torn tail, truncated away); a short
// frame walk in any older segment is real corruption and recovery says so.
//
// LSNs are LOGICAL byte offsets, monotonic for the lifetime of the log:
// segment N+1's base is exactly where segment N's frames end, so the lsn
// space is contiguous across rolls, truncations and resets. A frame with lsn
// L lives in the segment with the largest base <= L, at physical offset
// kSegmentHeaderSize + (L - base).
//
// Reclamation — the point of rotation — is UNCONDITIONAL on every backend:
// TruncatePrefix(lsn) advances the logical head and unlinks (or parks in a
// recycle pool, capped at WalOptions::recycle_segments) every segment wholly
// below `lsn`. No PUNCH_HOLE, no quiescent rebase: the on-disk footprint is
// bounded by the live bytes plus at most two partial segments. The active
// segment is never unlinked, which also anchors lsn monotonicity across a
// reopen. Recycled files re-enter the chain via write-header-then-rename, so
// a crash at any point leaves either a free file (ignored) or a valid empty
// segment.
//
// Crash ordering at the directory level: retire-sync → create/rename new
// segment → dir sync; head advance is logical (in-memory) and recovery
// re-derives it from the oldest retained segment plus checkpoint markers —
// replay is idempotent, so the segment-granular head after a crash only
// costs replay work, never correctness.
//
// Group commit and LSN pins are unchanged from the single-file WAL: see
// GroupCommitter and StableLsn() below.
//
// Commit I/O (async flush, sticky failure, pre-allocation):
//
// With WalOptions::async_flush a dedicated flusher thread owns every fsync
// of the active chain. The group-commit leader appends its batch, hands the
// flusher a target LSN (RequestFlush) and releases the leader seat — the
// next batch forms while the fsync runs. Every committer then blocks in
// WaitFlushed(target) on a flushed-LSN watermark with per-LSN wait slots
// (the TimestampOracle pattern), so an ack is issued only once the fsync
// that covered the record has completed.
//
// Sync failures are STICKY: once any fsync/dir-sync of the active chain
// fails, the log is poisoned — every subsequent append/sync/ack fails with
// a non-retryable IOError until the store is reopened and replayed. A
// later fsync returning OK proves nothing: the kernel drops a file's dirty
// pages after reporting an fsync error, so retrying the fsync and acking
// on success silently loses the dropped writes (the PostgreSQL "fsyncgate"
// hole). Recovery-time syncs (inside Open/migration) keep their fail-stop
// behaviour: the open simply fails, nothing is poisoned.
//
// With WalOptions::preallocate the flusher also keeps the NEXT segment
// file ready off-path (recycled or freshly created, fallocate-reserved,
// dir-synced): a roll adopts it with one rename plus a BUFFERED header
// write, deferring both the header fsync and the rename's dir-sync to the
// flusher's next pass. Deferral is safe because an ack requires a flush,
// and the flusher always syncs the file before the directory — an acked
// frame therefore implies both its segment's header and its dir entry are
// durable. At most one adoption rename may be outstanding: the next roll
// dir-syncs the previous one inline first, so a crash can only ever lose
// the NEWEST segment's dir entry and the chain stays contiguous.

#ifndef NEOSI_STORAGE_WAL_H_
#define NEOSI_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/latch.h"
#include "common/status.h"
#include "storage/paged_file.h"
#include "storage/wal_dir.h"
#include "storage/wal_ops.h"

namespace neosi {

class Wal;

/// Tuning knobs for the segmented log.
struct WalOptions {
  /// Roll to a fresh segment once the current one reaches this many bytes.
  uint64_t segment_size = 16ull << 20;  // 16 MiB
  /// Retired segments kept in the recycle pool for reuse instead of being
  /// unlinked (0 = always unlink).
  uint64_t recycle_segments = 2;
  /// Fully-checkpointed segments RETAINED in the chain beyond the live
  /// prefix so a lagging replica can still read them (0 = retire eagerly).
  /// TruncatePrefix keeps this many extra segments below the cut.
  uint64_t keep_segments = 0;
  /// Dedicated flusher thread owns fsync: Sync() and the group committer
  /// hand off a target LSN and acks wait on the flushed-LSN watermark
  /// instead of the leader blocking in fsync. Default OFF at this layer so
  /// raw-Wal unit tests keep deterministic inline syncs; DatabaseOptions
  /// turns it on for the engine.
  bool async_flush = false;
  /// Flusher keeps the next segment pre-created (recycled or
  /// fallocate-reserved) so a roll is a rename adoption, never a
  /// create+header+sync on the append path. Default OFF at this layer,
  /// like async_flush.
  bool preallocate = false;
  /// Most records a group-commit leader folds into one batch (0 =
  /// unbounded). DatabaseOptions sizes this from hardware_concurrency.
  size_t group_commit_max_batch = 0;
};

/// Named crash-point hook (tests only; never set on production paths). When
/// armed, the owner calls Check(point) at each named point and treats a
/// non-OK status as the process dying right there: the operation fails
/// without performing any further writes, and the test reopens the store to
/// exercise recovery from exactly that state.
/// Thread-safe: tests install hooks right after open, while the WAL's
/// flusher thread may already be evaluating sync-path fault points.
struct FaultHooks {
  using Fn = std::function<Status(const char* point)>;
  void Set(Fn f) {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = std::move(f);
  }
  Status Check(const char* point) const {
    // The hook runs under the lock: installers replace hooks between runs,
    // never from inside one, and serializing Check keeps a hook's own
    // state (hit counters) race-free without burdening every test with it.
    std::lock_guard<std::mutex> lock(mu_);
    return fn_ ? fn_(point) : Status::OK();
  }

 private:
  mutable std::mutex mu_;
  Fn fn_;
};

/// Leader/follower commit batcher over a Wal. Thread-safe.
///
/// A caller enqueues its record and either becomes the batch leader (writes
/// every queued record with one append, syncs once if any participant wants
/// durability) or blocks until a leader has written — and, if requested,
/// synced — its record.
class GroupCommitter {
 public:
  explicit GroupCommitter(Wal* wal) : wal_(wal) {}

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Appends `record`, returning its LSN. When `sync` is true the record is
  /// on stable storage before this returns (possibly via a leader's fsync
  /// that covered a whole batch). When `pin` is true the LSN is pinned (see
  /// Wal::Unpin) from the moment the record enters the log.
  Result<Lsn> Commit(const WalRecord& record, bool sync, bool pin = false);

  /// Batches whose fsync covered more than one record (test / stats hook).
  uint64_t batches() const { return batches_; }
  uint64_t records() const { return records_; }

 private:
  struct Request {
    const WalRecord* record = nullptr;
    bool sync = false;
    bool pin = false;
    bool done = false;
    Status status;
    Lsn lsn = 0;
    /// Async-flush mode: the watermark this request's ack must wait for
    /// (0 = nothing to wait for — unsynced, failed, or inline mode).
    Lsn flush_target = 0;
  };

  /// Post-batch ack: waits out the flushed-LSN watermark when the leader
  /// handed the fsync to the flusher, unpinning on flush failure exactly
  /// like the inline path does.
  Result<Lsn> Finish(const Request& req);

  Wal* wal_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request*> queue_;
  bool leader_active_ = false;
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> records_{0};
};

/// Append-only log of WalRecords over rotating segment files.
class Wal {
 public:
  /// Immutable per-segment header preceding the first frame.
  static constexpr uint64_t kSegmentHeaderSize = 32;

  /// File names inside the WalDir.
  static std::string SegmentName(uint64_t index);  ///< "wal.000001"
  static std::string FreeName(uint64_t index);     ///< "wal.free.000001"
  static std::string PrepName(uint64_t seq);       ///< "wal.prep.000001"
  /// Pre-segmentation single-file log, migrated (then removed) at Open.
  static constexpr const char* kLegacyName = "wal.log";

  explicit Wal(std::shared_ptr<WalDir> dir, WalOptions options = {});
  ~Wal();

  /// Discovers, orders and validates the segment chain (creating the first
  /// segment for an empty directory), migrates any legacy single-file log,
  /// drops a half-created newest segment, and positions the append cursor
  /// after the newest segment's valid frame prefix (truncating a torn
  /// tail). A gap or out-of-order base inside the chain is Corruption.
  Status Open();

  /// Appends one record; returns its LSN. With pin=true the LSN is pinned
  /// against prefix truncation until Unpin(lsn). Rolls to a new segment at
  /// the size threshold. When `end_lsn` is non-null it receives the lsn one
  /// past the appended frame (the checkpoint uses it to cut the log right
  /// after its own marker).
  Result<Lsn> Append(const WalRecord& record, bool pin = false,
                     Lsn* end_lsn = nullptr);

  /// Appends every record, batching contiguous frames into single writes
  /// (split only at segment rolls). On success `lsns[i]` is the LSN of
  /// `records[i]`; records whose `pins[i]` is true are pinned. `pins` may be
  /// null (nothing pinned).
  Status AppendBatch(const std::vector<const WalRecord*>& records,
                     std::vector<Lsn>* lsns,
                     const std::vector<bool>* pins = nullptr);

  /// Forces every frame appended so far to stable storage (every older
  /// segment was already synced when the chain rolled past it). Inline
  /// mode fsyncs on the calling thread; async mode hands the target to the
  /// flusher and waits on the flushed-LSN watermark. Fails sticky: once
  /// any chain sync fails the log is poisoned (see poisoned()).
  Status Sync();

  // --- async flush watermark --------------------------------------------

  /// Asks the flusher to make everything below `target` durable; returns
  /// without waiting. Poison-checked.
  Status RequestFlush(Lsn target);

  /// Blocks until the flushed-LSN watermark covers `target` (then the data
  /// IS durable — even a concurrent poisoning cannot retract that) or the
  /// log is poisoned below it (then the sticky IOError).
  Status WaitFlushed(Lsn target);

  /// Every frame below this LSN is on stable storage.
  Lsn FlushedLsn() const {
    return flushed_lsn_.load(std::memory_order_acquire);
  }

  // --- sticky failure state ---------------------------------------------

  /// True once a sync/dir-sync of the active chain has failed. A poisoned
  /// log rejects every append/sync/truncate until the store is reopened
  /// (which replays only what was durably acked).
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

  /// The sticky non-retryable IOError handed to every operation on a
  /// poisoned log (names the original cause). OK when not poisoned.
  Status PoisonedStatus() const;

  /// The commit batcher bound to this log.
  GroupCommitter& group() { return group_; }

  /// The directory this log lives in. Replication hands this to a
  /// WalDirReplicationSource so an in-process replica can tail the live
  /// primary without going through the filesystem.
  const std::shared_ptr<WalDir>& dir() const { return dir_; }

  /// Replays every live record in order (from the head). Stops cleanly at a
  /// torn tail in the newest segment (which is then truncated so later
  /// appends start from a clean state); a short frame walk in any older
  /// segment is Corruption. Must not race TruncatePrefix/Reset.
  Status ReadAll(const std::function<Status(const WalRecord&)>& fn);

  /// Replays every live record at or above `from`, passing each record's
  /// LSN. Segments wholly below `from` are skipped without any read or CRC
  /// work. Same torn-tail handling as ReadAll.
  Status ReadFrom(Lsn from,
                  const std::function<Status(Lsn, const WalRecord&)>& fn);

  /// Truncates the log to empty: every segment is retired and a fresh one
  /// anchors the chain. LSNs stay monotonic: the next append continues
  /// above every lsn ever handed out.
  Status Reset();

  // --- fuzzy checkpoint support ----------------------------------------

  /// Drops the log prefix below `lsn`: advances the logical head and
  /// unlinks (or recycles) every segment wholly below it — unconditional
  /// physical reclamation on every backend. Appends proceed concurrently.
  /// `lsn` below the current head is a no-op; `lsn` above the append cursor
  /// is InvalidArgument.
  Status TruncatePrefix(Lsn lsn);

  /// Releases a pin taken by an Append/AppendBatch/group Commit with
  /// pin=true. Call exactly once per pinned lsn, after the record's effects
  /// have durably-orderably reached the stores.
  void Unpin(Lsn lsn);

  /// The fuzzy checkpoint's truncation bound: every record below the
  /// returned lsn has been fully applied to the stores (its appender has
  /// unpinned). Never exceeds the append cursor.
  Lsn StableLsn() const;

  /// Currently pinned lsns (test / stats hook).
  size_t PinnedCount() const;

  // --- legacy stop-the-world gate (bench comparison only) ---------------

  /// Holds out ALL new appends until UnblockAppends(). Used only by the
  /// legacy stop-the-world checkpoint kept for the E12 bench comparison.
  void BlockAppends();
  void UnblockAppends();

  /// Blocks until no lsn is pinned. Only meaningful while appends are
  /// blocked (otherwise new pins keep arriving).
  void WaitPinsDrained();

  // --- introspection ----------------------------------------------------

  /// Bytes in the live log: append cursor minus head.
  uint64_t SizeBytes() const {
    return next_lsn_.load(std::memory_order_acquire) -
           head_lsn_.load(std::memory_order_acquire);
  }

  /// First live lsn (everything below is checkpointed away). Segment-
  /// granular after a reopen (the oldest retained segment's base).
  Lsn HeadLsn() const { return head_lsn_.load(std::memory_order_acquire); }

  /// The lsn the next append will receive.
  Lsn NextLsn() const { return next_lsn_.load(std::memory_order_acquire); }

  /// Segments currently in the chain (>= 1; the active one always stays).
  uint64_t SegmentCount() const {
    return segment_count_.load(std::memory_order_acquire);
  }

  /// Bytes of all chain segment files (headers + frames + any dead prefix
  /// not yet rolled past) — the physical footprint rotation bounds.
  uint64_t PhysicalBytes() const;

  /// Segment lifecycle counters.
  uint64_t segments_created() const { return segments_created_.load(); }
  uint64_t segments_deleted() const { return segments_deleted_.load(); }
  uint64_t segments_recycled() const { return segments_recycled_.load(); }
  uint64_t segments_reused() const { return segments_reused_.load(); }
  /// Rolls that adopted a pre-built segment by rename instead of running
  /// create+header+sync inline on the append path.
  uint64_t segments_preallocated() const {
    return segments_preallocated_.load();
  }

  /// Physical offset of `lsn` WITHIN its containing segment (test hook:
  /// lets tests inject torn frames at known byte positions).
  uint64_t PhysOf(Lsn lsn) const;

  /// File name of the segment containing `lsn` (test hook).
  std::string SegmentNameOf(Lsn lsn) const;

  /// Named crash points (tests only): "wal.append.mid_frame",
  /// "wal.segment.post_create", "wal.truncate.pre_unlink",
  /// "wal.append.fail_after_roll"; and EIO sync points (a non-OK status
  /// simulates the fsync/dir-sync itself failing, which POISONS the log):
  /// "wal.sync.fail" (active-segment fsync — group flush and inline),
  /// "wal.sync.retiring" (retiring-segment fsync at a roll),
  /// "wal.dirsync.create" / "wal.dirsync.rename" / "wal.dirsync.unlink"
  /// (segment create / rename-adoption / retirement directory syncs).
  FaultHooks fault_hooks;

 private:
  friend class GroupCommitter;

  struct Segment {
    uint64_t index = 0;
    Lsn base = 0;
    uint64_t epoch = 0;
    /// Shared so Sync() can fsync outside seg_mu_ while Reset() concurrently
    /// destroys the Segment (fsync of an unlinked file is harmless).
    std::shared_ptr<PagedFile> file;
  };

  /// A segment file built off-path by the flusher, waiting to be adopted
  /// into the chain by the next roll.
  struct PreparedSegment {
    std::string name;
    bool from_free_pool = false;
    std::unique_ptr<PagedFile> file;
  };

  static Status WriteSegmentHeader(PagedFile* file, Lsn base, uint64_t epoch);
  static Status ReadSegmentHeader(PagedFile* file, Lsn* base, uint64_t* epoch,
                                  bool* valid);

  /// Opens (recycled or fresh) a segment anchored at `base` and appends it
  /// to the chain — adopting the flusher's prepared segment when one is
  /// ready. Caller holds latch_ (or is single-threaded Open).
  Status AddSegmentLocked(Lsn base);

  /// Rename-adopts a prepared segment as the new active segment at `base`:
  /// one rename + a buffered header write, fsync and dir-sync deferred to
  /// the flusher. Caller holds latch_.
  Status AdoptPreparedLocked(Lsn base, std::unique_ptr<PreparedSegment> prep);

  /// Retiring-segment fsync at a roll (named EIO point; poisons on
  /// failure). Caller holds latch_.
  Status SyncRetiringLocked(Segment* retiring);

  /// Writes `n` frame bytes at `lsn` (which must be the append cursor),
  /// syncing + rolling the active segment first when the frame would not
  /// fit. Advances nothing — the caller publishes next_lsn_ after pins are
  /// registered. Caller holds latch_ (or is single-threaded Open).
  Status WriteFrameAtLocked(Lsn lsn, const char* data, size_t n);

  /// Failure cleanup for the append paths: pops (and deletes) every chain
  /// segment whose base lies above the published cursor. Such segments can
  /// only exist when a batched append rolled mid-batch and then failed —
  /// nothing published lives in them, but leaving them would strand the
  /// cursor BELOW the active segment's base and brick every later append
  /// on an underflowed offset. Caller holds latch_.
  void RollbackUnpublishedSegmentsLocked();

  /// Copies frames of a pre-segmentation `wal.log` into a fresh segment
  /// chain (preserving lsns), then removes the legacy file. Idempotent: a
  /// crash mid-migration leaves wal.log in place and the next Open restarts
  /// from scratch.
  Status MigrateLegacyLog();

  /// Retires the named chain segment file: recycle-pool rename while the
  /// pool has room, unlink otherwise.
  Status RetireSegmentFile(const std::string& name, uint64_t index);

  /// Segment containing `lsn` (largest base <= lsn); caller holds seg_mu_.
  const Segment* SegmentAtLocked(Lsn lsn) const;

  /// Body of Open(): everything up to the watermark/flusher bring-up.
  Status OpenChain();

  // --- poison / flusher internals ---------------------------------------

  /// OK, or the sticky poison IOError. Entry check of every append / sync
  /// / truncate path (acquire side of the poison publication).
  Status CheckPoisoned() const;

  /// Records `cause` (first failure wins) and publishes the poison flag
  /// with release ordering, failing every parked flush waiter. No-op
  /// before Open() completes — recovery-time sync failures stay fail-stop.
  void Poison(const Status& cause);

  Status PoisonedStatusLocked() const;  // flush_mu_ held

  /// One fsync pass over the active segment: cursor first, file snapshot
  /// second, then fsync, any deferred dir-sync, and the watermark advance.
  /// Runs on the flusher thread (async mode) or the caller (inline mode);
  /// serialized by sync_mu_ so a poisoning peer is always observed.
  Status FlushOnce();

  /// Publishes `upto` into flushed_lsn_ and wakes satisfied waiters.
  void AdvanceFlushed(Lsn upto);

  /// Injected-EIO fidelity: models the kernel dropping the file's DIRTY
  /// pages after a failed fsync — everything beyond the flushed watermark
  /// (clean, previously-synced bytes survive) is truncated away before the
  /// log is poisoned.
  void SimulateSyncLoss(const std::shared_ptr<PagedFile>& file, Lsn base);

  /// Builds the next segment file off-path (flusher thread): recycled or
  /// fresh, size-reserved, fsynced and dir-synced, published into
  /// prepared_ for the next roll to adopt.
  void PrepareSegmentOffPath();

  /// Asks the flusher to (re)build a prepared segment.
  void NudgeFlusherPrep();

  bool UseAsyncFlush() const {
    return options_.async_flush &&
           flusher_running_.load(std::memory_order_acquire);
  }

  void StartFlusher();
  void StopFlusher();
  void FlusherMain();

  /// Waits while the legacy append gate is closed.
  void AwaitAppendGate();

  /// Acquires latch_ with the gate re-validated under it (an appender must
  /// never slip past a closing gate into a log about to be Reset()).
  void LockAppendLatch();

  std::shared_ptr<WalDir> dir_;
  WalOptions options_;

  SpinLatch latch_;  // serializes appends (file write + cursor advance)
  std::atomic<Lsn> head_lsn_{0};
  std::atomic<Lsn> next_lsn_{0};

  /// Chain of segments ordered by base. Structure guarded by seg_mu_; the
  /// BACK element only changes under latch_ (appends/rolls), the FRONT only
  /// under trunc_mu_ (truncation), and the active segment is never popped —
  /// so an appender holding latch_ may use active_ without seg_mu_.
  mutable std::mutex seg_mu_;
  std::deque<std::unique_ptr<Segment>> segments_;
  std::atomic<Segment*> active_{nullptr};
  std::atomic<uint64_t> segment_count_{0};

  /// Next segment file number; monotonic, never reused (so truncation keeps
  /// chain indices contiguous and recycled names can't collide).
  uint64_t next_index_ = 1;
  /// This open's generation, stamped into headers of segments it creates.
  uint64_t epoch_ = 1;

  /// Names of retired segment files available for reuse (bounded by
  /// options_.recycle_segments). Guarded by seg_mu_.
  std::deque<std::string> free_pool_;

  std::atomic<uint64_t> segments_created_{0};
  std::atomic<uint64_t> segments_deleted_{0};
  std::atomic<uint64_t> segments_recycled_{0};
  std::atomic<uint64_t> segments_reused_{0};
  std::atomic<uint64_t> segments_preallocated_{0};

  /// Set once Open() succeeds: sync failures before that are fail-stop
  /// (the open errors out), after it they poison.
  std::atomic<bool> open_complete_{false};

  /// Sticky failure flag. Published with RELEASE after poison_cause_ is
  /// recorded under flush_mu_; read with ACQUIRE by CheckPoisoned() and by
  /// FlushOnce()'s pre-fsync check, so a thread that observes the flag also
  /// observes the cause — and, because fsync passes are serialized by
  /// sync_mu_, no sync can report OK after a peer's EIO poisoned the log.
  std::atomic<bool> poisoned_{false};
  Status poison_cause_;  // guarded by flush_mu_

  /// Serializes fsync passes (FlushOnce) so the fault-check → simulate →
  /// poison sequence of one syncer is atomic against a peer's fsync+check.
  std::mutex sync_mu_;

  /// Flusher thread state. flush_target_ / flusher_stop_ / prep_nudge_ /
  /// flush_waiters_ are guarded by flush_mu_.
  std::thread flusher_;
  std::atomic<bool> flusher_running_{false};
  mutable std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  bool flusher_stop_ = false;
  bool prep_nudge_ = false;
  Lsn flush_target_ = 0;
  std::atomic<Lsn> flushed_lsn_{0};

  /// Commit acks park here until the watermark covers their LSN
  /// (TimestampOracle-style per-target slots: the waker erases the slot
  /// under flush_mu_ and notifies outside it; waiters hold a shared_ptr so
  /// the slot outlives the erase).
  struct FlushWaiter {
    std::condition_variable cv;
  };
  std::map<Lsn, std::shared_ptr<FlushWaiter>> flush_waiters_;

  /// Next pre-built segment, ready for rename adoption. Guarded by
  /// seg_mu_. prep_seq_ is touched only by the flusher thread.
  std::unique_ptr<PreparedSegment> prepared_;
  uint64_t prep_seq_ = 1;

  /// True while the newest adoption's rename (and the recycle-pool churn
  /// around it) still needs a directory sync — performed by the flusher's
  /// next pass, or inline by the NEXT roll (at most one outstanding).
  std::atomic<bool> dir_sync_pending_{false};

  GroupCommitter group_{this};

  /// Serializes truncations (TruncatePrefix vs Reset) and head updates.
  std::mutex trunc_mu_;

  /// Pinned lsns: appended records whose effects have not yet reached the
  /// stores. Insertion happens before the cursor advance publishes the
  /// record; see StableLsn() for the resulting ordering argument.
  mutable std::mutex pins_mu_;
  std::condition_variable pins_cv_;
  std::set<Lsn> pins_;

  /// Legacy stop-the-world gate (bench only). Closed ⇒ appends park.
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  std::atomic<bool> gate_closed_{false};
};

}  // namespace neosi

#endif  // NEOSI_STORAGE_WAL_H_
