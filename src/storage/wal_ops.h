// Logical redo operations recorded in the write-ahead log.
//
// The WAL is logical: each committed transaction appends one record holding
// the list of graph mutations it performed, and recovery replays them
// through the physical GraphStore. Replay is idempotent (creates of in-use
// records and deletes of freed records are skipped) so a crash between WAL
// append and store write is always repairable.

#ifndef NEOSI_STORAGE_WAL_OPS_H_
#define NEOSI_STORAGE_WAL_OPS_H_

#include <string>
#include <vector>

#include "common/property_value.h"
#include "common/status.h"
#include "common/types.h"

namespace neosi {

/// Kind of logical mutation.
enum class WalOpType : uint8_t {
  kCreateNode = 1,
  kDeleteNode = 2,
  kSetNodeProperty = 3,
  kRemoveNodeProperty = 4,
  kAddLabel = 5,
  kRemoveLabel = 6,
  kCreateRel = 7,
  kDeleteRel = 8,
  kSetRelProperty = 9,
  kRemoveRelProperty = 10,
  kCreateToken = 11,
  /// GC physical reclamation of a node record (paper §4 tombstone removal).
  kPurgeNode = 12,
  /// GC physical reclamation of a relationship record, including the chain
  /// pointers observed at purge time so crash recovery can redo the unlink
  /// surgery on the neighbour records idempotently.
  kPurgeRel = 13,
  /// Fuzzy checkpoint marker: `id` holds the stable LSN — every record
  /// below it had durably reached the stores when the marker was written,
  /// so recovery replays only from the last marker's stable LSN onward.
  /// No-op on replay apply.
  kCheckpoint = 14,
  /// Full node post-state (labels + props). Written instead of the delta
  /// ops (kSetNodeProperty/kRemoveNodeProperty/kAddLabel/kRemoveLabel):
  /// replay of a delta needs the pre-state from the store, but the fuzzy
  /// checkpoint syncs nodes.store and props.store at different instants,
  /// so after a crash the node record and its property chain can disagree
  /// (unreadable or aliased chains). A full-state op is record-local —
  /// replay never reads a chain it did not itself write. The delta kinds
  /// above remain decodable for logs written before this change.
  kNodeState = 15,
  /// Full relationship post-state (props). Same rationale as kNodeState.
  kRelState = 16,
};

/// Token family for kCreateToken ops.
enum class TokenKind : uint8_t {
  kLabel = 0,
  kPropertyKey = 1,
  kRelType = 2,
};

/// One logical mutation. Fields beyond `type` and `id` are populated per
/// op kind (see the encoders in wal_ops.cc).
struct WalOp {
  WalOpType type = WalOpType::kCreateNode;
  uint64_t id = kInvalidId;  ///< Node / relationship / token id.

  NodeId src = kInvalidNodeId;       ///< kCreateRel / kPurgeRel
  NodeId dst = kInvalidNodeId;       ///< kCreateRel / kPurgeRel
  RelTypeId rel_type = kInvalidToken;  ///< kCreateRel

  /// Chain pointers at purge time (kPurgeRel only).
  RelId src_prev = kInvalidRelId;
  RelId src_next = kInvalidRelId;
  RelId dst_prev = kInvalidRelId;
  RelId dst_next = kInvalidRelId;

  uint32_t token = kInvalidToken;  ///< label id / property key id
  PropertyValue value;             ///< kSet*Property

  std::vector<LabelId> labels;  ///< kCreateNode
  PropertyMap props;            ///< kCreateNode / kCreateRel

  TokenKind token_kind = TokenKind::kLabel;  ///< kCreateToken
  std::string name;                          ///< kCreateToken

  // Convenience constructors -------------------------------------------------
  static WalOp CreateNode(NodeId id, std::vector<LabelId> labels,
                          PropertyMap props);
  static WalOp DeleteNode(NodeId id);
  static WalOp SetNodeProperty(NodeId id, PropertyKeyId key,
                               PropertyValue value);
  static WalOp RemoveNodeProperty(NodeId id, PropertyKeyId key);
  static WalOp NodeState(NodeId id, std::vector<LabelId> labels,
                         PropertyMap props);
  static WalOp RelState(RelId id, PropertyMap props);
  static WalOp AddLabel(NodeId id, LabelId label);
  static WalOp RemoveLabel(NodeId id, LabelId label);
  static WalOp CreateRel(RelId id, NodeId src, NodeId dst, RelTypeId type,
                         PropertyMap props);
  static WalOp DeleteRel(RelId id);
  static WalOp SetRelProperty(RelId id, PropertyKeyId key,
                              PropertyValue value);
  static WalOp RemoveRelProperty(RelId id, PropertyKeyId key);
  static WalOp CreateToken(TokenKind kind, uint32_t id, std::string name);
  static WalOp PurgeNode(NodeId id);
  static WalOp PurgeRel(RelId id, NodeId src, NodeId dst, RelId src_prev,
                        RelId src_next, RelId dst_prev, RelId dst_next);
  static WalOp Checkpoint(Lsn stable_lsn);

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, WalOp* out);
};

/// One WAL entry: everything a transaction committed, or a standalone token
/// creation (txn_id == kNoTxn).
struct WalRecord {
  TxnId txn_id = kNoTxn;
  Timestamp commit_ts = kNoTimestamp;
  std::vector<WalOp> ops;
  /// Publication hint for replicas: a commit timestamp the producer
  /// observed as fully published (oracle ReadTs) at append time. Every
  /// commit with commit_ts <= publish_ts was appended at a strictly lower
  /// LSN, so a replica that has replayed all records below this one may
  /// advance its replay watermark to publish_ts even if intermediate
  /// timestamps were abandoned (commit I/O failure after timestamp
  /// allocation). Zero means "no hint"; zero is also what pre-replication
  /// records decode to, and records with a zero hint encode byte-identically
  /// to the legacy format.
  Timestamp publish_ts = kNoTimestamp;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, WalRecord* out);
};

}  // namespace neosi

#endif  // NEOSI_STORAGE_WAL_OPS_H_
