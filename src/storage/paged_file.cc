#include "storage/paged_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#if defined(__linux__)
#include <linux/falloc.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace neosi {

// ----------------------------- InMemoryFile -------------------------------

Status InMemoryFile::ReadAt(uint64_t offset, size_t n, char* buf) const {
  ReadGuard guard(latch_);
  if (offset + n > buf_.size()) {
    return Status::OutOfRange("read past end of in-memory file");
  }
  memcpy(buf, buf_.data() + offset, n);
  return Status::OK();
}

Status InMemoryFile::WriteAt(uint64_t offset, const char* data, size_t n) {
  {
    WriteGuard guard(latch_);
    if (offset + n > buf_.size()) {
      buf_.resize(offset + n, '\0');
    }
    memcpy(buf_.data() + offset, data, n);
  }
  MarkDirty();
  return Status::OK();
}

Status InMemoryFile::Truncate(uint64_t size) {
  {
    WriteGuard guard(latch_);
    buf_.resize(size, '\0');
  }
  MarkDirty();
  return Status::OK();
}

Status InMemoryFile::PunchHole(uint64_t offset, uint64_t n) {
  WriteGuard guard(latch_);
  if (offset >= buf_.size()) return Status::OK();
  const uint64_t end = std::min<uint64_t>(offset + n, buf_.size());
  memset(buf_.data() + offset, 0, end - offset);
  return Status::OK();
}

uint64_t InMemoryFile::Size() const {
  ReadGuard guard(latch_);
  return buf_.size();
}

// ------------------------------- PosixFile --------------------------------

PosixFile::~PosixFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PosixFile::Open(const std::string& path,
                       std::unique_ptr<PagedFile>* out) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  out->reset(new PosixFile(fd, path));
  return Status::OK();
}

Status PosixFile::OpenExisting(const std::string& path,
                               std::unique_ptr<PagedFile>* out) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("open " + path + ": no such file");
    }
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  out->reset(new PosixFile(fd, path));
  return Status::OK();
}

Status PosixFile::ReadAt(uint64_t offset, size_t n, char* buf) const {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd_, buf + done, n - done,
                        static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread " + path_ + ": " + strerror(errno));
    }
    if (r == 0) {
      return Status::OutOfRange("read past end of file " + path_);
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status PosixFile::WriteAt(uint64_t offset, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::pwrite(fd_, data + done, n - done,
                         static_cast<off_t>(offset + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite " + path_ + ": " + strerror(errno));
    }
    done += static_cast<size_t>(w);
  }
  MarkDirty();
  return Status::OK();
}

Status PosixFile::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IOError("ftruncate " + path_ + ": " + strerror(errno));
  }
  MarkDirty();
  return Status::OK();
}

Status PosixFile::Preallocate(uint64_t size) {
  if (size == 0) return Status::OK();
#if defined(__linux__) && defined(FALLOC_FL_KEEP_SIZE)
  if (::fallocate(fd_, FALLOC_FL_KEEP_SIZE, 0,
                  static_cast<off_t>(size)) != 0) {
    // Advisory on filesystems without allocation support (tmpfs predates
    // it on some kernels); a real out-of-space must surface, though — the
    // caller falls back to an unreserved segment.
    if (errno != EOPNOTSUPP && errno != ENOTSUP && errno != EINVAL) {
      return Status::IOError("fallocate " + path_ + ": " + strerror(errno));
    }
  }
#else
  (void)size;
#endif
  return Status::OK();
}

Status PosixFile::PunchHole(uint64_t offset, uint64_t n) {
  if (n == 0) return Status::OK();
#if defined(__linux__) && defined(FALLOC_FL_PUNCH_HOLE)
  if (::fallocate(fd_, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                  static_cast<off_t>(offset), static_cast<off_t>(n)) != 0) {
    // Advisory: not every filesystem supports holes; the dead bytes simply
    // stay allocated until the next full Reset().
    if (errno != EOPNOTSUPP && errno != ENOTSUP && errno != EINVAL) {
      return Status::IOError("fallocate " + path_ + ": " + strerror(errno));
    }
  }
#else
  (void)offset;
#endif
  return Status::OK();
}

uint64_t PosixFile::Size() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

Status PosixFile::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync " + path_ + ": " + strerror(errno));
  }
  return Status::OK();
}

Status OpenPagedFile(const std::string& path, bool in_memory,
                     std::unique_ptr<PagedFile>* out) {
  if (in_memory) {
    out->reset(new InMemoryFile());
    return Status::OK();
  }
  return PosixFile::Open(path, out);
}

}  // namespace neosi
