#include "storage/property_store.h"

#include <unordered_set>
#include <vector>

#include "storage/records.h"

namespace neosi {

PropertyStore::PropertyStore(std::unique_ptr<PagedFile> prop_file,
                             std::unique_ptr<PagedFile> dyn_file)
    : props_(std::move(prop_file), PropertyRecord::kSize,
             PropertyRecord::kMagic, "property-store"),
      dyn_(std::move(dyn_file), "string-store") {}

Status PropertyStore::Open() {
  NEOSI_RETURN_IF_ERROR(props_.Open());
  return dyn_.Open();
}

Result<PropId> PropertyStore::WriteChain(const PropertyMap& props) {
  if (props.empty()) return kInvalidPropId;

  std::vector<PropId> ids;
  ids.reserve(props.size());
  for (size_t i = 0; i < props.size(); ++i) {
    auto alloc = props_.Allocate();
    if (!alloc.ok()) return alloc.status();
    ids.push_back(*alloc);
  }

  size_t i = 0;
  char buf[PropertyRecord::kSize];
  for (const auto& [key, value] : props) {
    PropertyRecord rec;
    rec.in_use = true;
    rec.key = key;
    rec.next = (i + 1 < ids.size()) ? ids[i + 1] : kInvalidPropId;

    std::string encoded;
    value.EncodeTo(&encoded);
    if (encoded.size() <= PropertyRecord::kInlinePayload) {
      rec.inline_len = static_cast<uint8_t>(encoded.size());
      memcpy(rec.inline_payload.data(), encoded.data(), encoded.size());
      rec.overflow = kInvalidDynId;
    } else {
      rec.inline_len = 0;
      auto blob = dyn_.WriteBlob(Slice(encoded));
      if (!blob.ok()) return blob.status();
      rec.overflow = *blob;
    }
    rec.EncodeTo(buf);
    NEOSI_RETURN_IF_ERROR(
        props_.Write(ids[i], Slice(buf, PropertyRecord::kSize)));
    ++i;
  }
  return ids[0];
}

Status PropertyStore::ReadChain(PropId head, PropertyMap* out) const {
  out->clear();
  std::string buf;
  PropId id = head;
  uint64_t steps = 0;
  const uint64_t max_steps = props_.high_id() + 1;
  while (id != kInvalidPropId) {
    if (++steps > max_steps) {
      return Status::Corruption("property chain cycle at record " +
                                std::to_string(id));
    }
    NEOSI_RETURN_IF_ERROR(props_.Read(id, &buf));
    PropertyRecord rec;
    NEOSI_RETURN_IF_ERROR(PropertyRecord::DecodeFrom(Slice(buf), &rec));
    if (!rec.in_use) {
      return Status::Corruption("property chain through free record " +
                                std::to_string(id));
    }

    PropertyValue value;
    if (rec.overflow != kInvalidDynId) {
      std::string blob;
      NEOSI_RETURN_IF_ERROR(dyn_.ReadBlob(rec.overflow, &blob));
      Slice input(blob);
      NEOSI_RETURN_IF_ERROR(PropertyValue::DecodeFrom(&input, &value));
    } else {
      Slice input(rec.inline_payload.data(), rec.inline_len);
      NEOSI_RETURN_IF_ERROR(PropertyValue::DecodeFrom(&input, &value));
    }
    (*out)[rec.key] = std::move(value);
    id = rec.next;
  }
  return Status::OK();
}

Status PropertyStore::FreeChain(PropId head) {
  std::string buf;
  PropId id = head;
  uint64_t steps = 0;
  const uint64_t max_steps = props_.high_id() + 1;
  while (id != kInvalidPropId) {
    if (++steps > max_steps) {
      return Status::Corruption("property chain cycle at record " +
                                std::to_string(id));
    }
    NEOSI_RETURN_IF_ERROR(props_.Read(id, &buf));
    PropertyRecord rec;
    NEOSI_RETURN_IF_ERROR(PropertyRecord::DecodeFrom(Slice(buf), &rec));
    if (rec.overflow != kInvalidDynId) {
      NEOSI_RETURN_IF_ERROR(dyn_.FreeBlob(rec.overflow));
    }
    NEOSI_RETURN_IF_ERROR(props_.Free(id));
    id = rec.next;
  }
  return Status::OK();
}

Status PropertyStore::SweepUnreachable(const std::vector<PropId>& roots,
                                       uint64_t* freed) {
  *freed = 0;
  std::unordered_set<PropId> reachable;
  std::string buf;
  for (PropId root : roots) {
    PropId id = root;
    uint64_t steps = 0;
    const uint64_t max_steps = props_.high_id() + 1;
    while (id != kInvalidPropId) {
      if (++steps > max_steps) {
        return Status::Corruption("property chain cycle at record " +
                                  std::to_string(id));
      }
      if (!reachable.insert(id).second) break;  // shared tail already walked
      NEOSI_RETURN_IF_ERROR(props_.Read(id, &buf));
      PropertyRecord rec;
      NEOSI_RETURN_IF_ERROR(PropertyRecord::DecodeFrom(Slice(buf), &rec));
      if (!rec.in_use) {
        return Status::Corruption("property chain through free record " +
                                  std::to_string(id));
      }
      id = rec.next;
    }
  }

  std::vector<PropId> orphans;
  Status s = props_.ForEach([&](uint64_t id, const std::string&) {
    if (reachable.count(id) == 0) orphans.push_back(id);
    return Status::OK();
  });
  if (!s.ok()) return s;
  for (PropId id : orphans) {
    NEOSI_RETURN_IF_ERROR(props_.Free(id));
  }
  *freed = orphans.size();
  return Status::OK();
}

Status PropertyStore::AuditBlobReachability(const std::vector<PropId>& roots,
                                            uint64_t* leaked_blocks) {
  *leaked_blocks = 0;

  // Pass 1: collect the overflow heads hanging off every reachable property
  // record. Reuses the SweepUnreachable walk (cycle guard, shared-tail
  // break); a broken reachable chain is corruption, not a leak.
  std::unordered_set<PropId> reachable;
  std::vector<DynId> heads;
  std::string buf;
  for (PropId root : roots) {
    PropId id = root;
    uint64_t steps = 0;
    const uint64_t max_steps = props_.high_id() + 1;
    while (id != kInvalidPropId) {
      if (++steps > max_steps) {
        return Status::Corruption("property chain cycle at record " +
                                  std::to_string(id));
      }
      if (!reachable.insert(id).second) break;  // shared tail already walked
      NEOSI_RETURN_IF_ERROR(props_.Read(id, &buf));
      PropertyRecord rec;
      NEOSI_RETURN_IF_ERROR(PropertyRecord::DecodeFrom(Slice(buf), &rec));
      if (!rec.in_use) {
        return Status::Corruption("property chain through free record " +
                                  std::to_string(id));
      }
      if (rec.overflow != kInvalidDynId) heads.push_back(rec.overflow);
      id = rec.next;
    }
  }

  // Pass 2: mark every block of every live blob. Heads can alias (that is
  // the reason SweepUnreachable refuses to free blobs), so break on the
  // first already-marked block.
  std::unordered_set<DynId> live_blocks;
  RecordStore& blocks = dyn_.record_store();
  for (DynId head : heads) {
    DynId id = head;
    uint64_t steps = 0;
    const uint64_t max_steps = blocks.high_id() + 1;
    while (id != kInvalidDynId) {
      if (++steps > max_steps) {
        return Status::Corruption("dynamic store: blob chain cycle at block " +
                                  std::to_string(id));
      }
      if (!live_blocks.insert(id).second) break;  // aliased tail
      NEOSI_RETURN_IF_ERROR(blocks.Read(id, &buf));
      DynRecord rec;
      NEOSI_RETURN_IF_ERROR(DynRecord::DecodeFrom(Slice(buf), &rec));
      if (!rec.in_use) {
        return Status::Corruption(
            "dynamic store: live blob through free block " +
            std::to_string(id));
      }
      id = rec.next;
    }
  }

  // Pass 3: every in-use block no live blob reaches is leaked.
  uint64_t leaked = 0;
  Status s = blocks.ForEach([&](uint64_t id, const std::string&) {
    if (live_blocks.count(id) == 0) ++leaked;
    return Status::OK();
  });
  if (!s.ok()) return s;
  *leaked_blocks = leaked;
  return Status::OK();
}

Status PropertyStore::Sync() {
  NEOSI_RETURN_IF_ERROR(props_.Sync());
  return dyn_.Sync();
}

Result<bool> PropertyStore::SyncIfDirty() {
  auto a = props_.SyncIfDirty();
  if (!a.ok()) return a;
  auto b = dyn_.SyncIfDirty();
  if (!b.ok()) return b;
  return *a || *b;
}

}  // namespace neosi
