// Chained-block storage for byte strings that do not fit in a fixed record
// (long property values, node label overflow lists, long token names).
// Mirrors Neo4j's dynamic string/array stores.

#ifndef NEOSI_STORAGE_DYNAMIC_STORE_H_
#define NEOSI_STORAGE_DYNAMIC_STORE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "storage/record_store.h"

namespace neosi {

/// Stores arbitrary-length blobs as chains of fixed 64-byte blocks.
class DynamicStore {
 public:
  explicit DynamicStore(std::unique_ptr<PagedFile> file,
                        std::string name = "dynamic-store");

  Status Open() { return store_.Open(); }

  /// Writes `blob` into a fresh chain; returns the head block id.
  Result<DynId> WriteBlob(Slice blob);

  /// Reads the whole chain starting at `head` into *out.
  Status ReadBlob(DynId head, std::string* out) const;

  /// Frees every block in the chain starting at `head`.
  Status FreeBlob(DynId head);

  RecordStoreStats Stats() const { return store_.Stats(); }
  Status Sync() { return store_.Sync(); }
  Result<bool> SyncIfDirty() { return store_.SyncIfDirty(); }

  /// Direct access for recovery scans.
  RecordStore& record_store() { return store_; }

 private:
  RecordStore store_;
};

}  // namespace neosi

#endif  // NEOSI_STORAGE_DYNAMIC_STORE_H_
