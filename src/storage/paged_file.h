// Byte-addressable file abstraction backing the record stores and the WAL.
//
// Two implementations: an anonymous in-memory buffer (default; experiments
// measure concurrency control, not disks) and a POSIX pread/pwrite file used
// by the durability / recovery tests and the persistence benches.

#ifndef NEOSI_STORAGE_PAGED_FILE_H_
#define NEOSI_STORAGE_PAGED_FILE_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/latch.h"
#include "common/status.h"

namespace neosi {

/// Random-access byte file. Implementations must support concurrent reads
/// and serialized writes (callers coordinate writer exclusion per region).
class PagedFile {
 public:
  virtual ~PagedFile() = default;

  /// Reads exactly n bytes at offset into buf; OutOfRange on short read.
  virtual Status ReadAt(uint64_t offset, size_t n, char* buf) const = 0;
  /// Writes n bytes at offset, extending the file as needed.
  virtual Status WriteAt(uint64_t offset, const char* data, size_t n) = 0;
  /// Shrinks or grows the file to exactly `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;
  /// Current size in bytes.
  virtual uint64_t Size() const = 0;
  /// Flushes to stable storage (no-op for the in-memory backend).
  virtual Status Sync() = 0;

  /// Underlying POSIX descriptor for io_uring submission; -1 for backends
  /// without one (the caller then uses Sync()).
  virtual int RawFd() const { return -1; }

  /// Reserves physical storage for the first `size` bytes WITHOUT changing
  /// the file size (fallocate KEEP_SIZE where supported), so later writes
  /// into the range cannot fail with ENOSPC and extend cheaply. Advisory:
  /// backends without allocation support return OK and do nothing. The WAL
  /// flusher uses this to build the next segment off the append path.
  virtual Status Preallocate(uint64_t size) {
    (void)size;
    return Status::OK();
  }

  /// Releases the physical storage backing [offset, offset+n) without
  /// changing the file size; the range reads back as zeros where supported.
  /// Advisory: backends without hole support return OK and do nothing.
  /// No longer used by the WAL (segment rotation reclaims by unlinking
  /// whole files); retained as a general backend capability — sparse store
  /// files are a natural future user.
  virtual Status PunchHole(uint64_t offset, uint64_t n) {
    (void)offset;
    (void)n;
    return Status::OK();
  }

  /// True when writes have landed since the last SyncIfDirty() (or since
  /// open). Fuzzy checkpoints use this to sync only stores that changed.
  bool dirty() const { return dirty_.load(std::memory_order_acquire); }

  /// Sync() iff the file is dirty; returns whether a sync ran. The flag is
  /// cleared BEFORE the sync, so a write racing the fsync re-dirties the
  /// file for the next checkpoint instead of being silently treated as
  /// persisted.
  Result<bool> SyncIfDirty() {
    if (!dirty_.exchange(false, std::memory_order_acq_rel)) {
      return false;
    }
    Status s = Sync();
    if (!s.ok()) {
      dirty_.store(true, std::memory_order_release);
      return s;
    }
    return true;
  }

 protected:
  /// Implementations call this AFTER a mutation completes, so that a
  /// cleared dirty flag implies every completed write is fsync-covered.
  void MarkDirty() { dirty_.store(true, std::memory_order_release); }

 private:
  std::atomic<bool> dirty_{false};
};

/// Heap-backed file; contents are lost when the object dies.
class InMemoryFile final : public PagedFile {
 public:
  Status ReadAt(uint64_t offset, size_t n, char* buf) const override;
  Status WriteAt(uint64_t offset, const char* data, size_t n) override;
  Status Truncate(uint64_t size) override;
  uint64_t Size() const override;
  Status Sync() override { return Status::OK(); }
  /// Zeroes the range (mirrors the hole-read-as-zeros contract; memory is
  /// not actually released).
  Status PunchHole(uint64_t offset, uint64_t n) override;

 private:
  mutable SharedLatch latch_;
  std::string buf_;
};

/// POSIX file using pread/pwrite; created if absent.
class PosixFile final : public PagedFile {
 public:
  ~PosixFile() override;

  /// Opens (creating if needed) the file at path.
  static Status Open(const std::string& path, std::unique_ptr<PagedFile>* out);

  /// Opens the file at path WITHOUT creating it; NotFound if absent.
  /// Replica tailers use this so racing a primary's segment retirement can
  /// never plant an empty file in the primary's directory.
  static Status OpenExisting(const std::string& path,
                             std::unique_ptr<PagedFile>* out);

  Status ReadAt(uint64_t offset, size_t n, char* buf) const override;
  Status WriteAt(uint64_t offset, const char* data, size_t n) override;
  Status Truncate(uint64_t size) override;
  uint64_t Size() const override;
  Status Sync() override;
  /// fallocate(KEEP_SIZE) / posix_fallocate where supported; silently a
  /// no-op on filesystems without allocation support.
  Status Preallocate(uint64_t size) override;
  /// fallocate(PUNCH_HOLE) where the platform/filesystem supports it;
  /// silently a no-op otherwise.
  Status PunchHole(uint64_t offset, uint64_t n) override;

  int RawFd() const override { return fd_; }

 private:
  explicit PosixFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  int fd_;
  std::string path_;
};

/// Opens an in-memory file when in_memory is true, otherwise a POSIX file at
/// `path` (parent directory must exist).
Status OpenPagedFile(const std::string& path, bool in_memory,
                     std::unique_ptr<PagedFile>* out);

}  // namespace neosi

#endif  // NEOSI_STORAGE_PAGED_FILE_H_
