#include "storage/wal_dir.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace neosi {

namespace {

/// Forwards every PagedFile call to a shared buffer, so that "reopening" a
/// file through the in-memory directory observes all prior writes.
class SharedFileRef final : public PagedFile {
 public:
  explicit SharedFileRef(std::shared_ptr<InMemoryFile> target)
      : target_(std::move(target)) {}

  Status ReadAt(uint64_t offset, size_t n, char* buf) const override {
    return target_->ReadAt(offset, n, buf);
  }
  Status WriteAt(uint64_t offset, const char* data, size_t n) override {
    return target_->WriteAt(offset, data, n);
  }
  Status Truncate(uint64_t size) override { return target_->Truncate(size); }
  uint64_t Size() const override { return target_->Size(); }
  Status Sync() override { return target_->Sync(); }
  Status PunchHole(uint64_t offset, uint64_t n) override {
    return target_->PunchHole(offset, n);
  }

 private:
  std::shared_ptr<InMemoryFile> target_;
};

}  // namespace

// ------------------------------ PosixWalDir --------------------------------

Status PosixWalDir::List(std::vector<std::string>* names) const {
  names->clear();
  DIR* dir = ::opendir(path_.c_str());
  if (dir == nullptr) {
    return Status::IOError("opendir " + path_ + ": " + strerror(errno));
  }
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names->push_back(name);
  }
  ::closedir(dir);
  return Status::OK();
}

Status PosixWalDir::Open(const std::string& name,
                         std::unique_ptr<PagedFile>* out) {
  return PosixFile::Open(path_ + "/" + name, out);
}

Status PosixWalDir::OpenExisting(const std::string& name,
                                 std::unique_ptr<PagedFile>* out) {
  return PosixFile::OpenExisting(path_ + "/" + name, out);
}

bool PosixWalDir::Exists(const std::string& name) const {
  return ::access((path_ + "/" + name).c_str(), F_OK) == 0;
}

Status PosixWalDir::Remove(const std::string& name) {
  if (::unlink((path_ + "/" + name).c_str()) != 0) {
    return Status::IOError("unlink " + path_ + "/" + name + ": " +
                           strerror(errno));
  }
  return Status::OK();
}

Status PosixWalDir::Rename(const std::string& from, const std::string& to) {
  if (::rename((path_ + "/" + from).c_str(), (path_ + "/" + to).c_str()) !=
      0) {
    return Status::IOError("rename " + path_ + "/" + from + " -> " + to +
                           ": " + strerror(errno));
  }
  return Status::OK();
}

Status PosixWalDir::SyncDir() {
  const int fd = ::open(path_.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("open dir " + path_ + ": " + strerror(errno));
  }
  Status s;
  if (::fsync(fd) != 0) {
    s = Status::IOError("fsync dir " + path_ + ": " + strerror(errno));
  }
  ::close(fd);
  return s;
}

// ----------------------------- InMemoryWalDir ------------------------------

Status InMemoryWalDir::List(std::vector<std::string>* names) const {
  std::lock_guard<std::mutex> guard(mu_);
  names->clear();
  for (const auto& [name, file] : files_) names->push_back(name);
  return Status::OK();
}

Status InMemoryWalDir::Open(const std::string& name,
                            std::unique_ptr<PagedFile>* out) {
  std::lock_guard<std::mutex> guard(mu_);
  auto& slot = files_[name];
  if (slot == nullptr) slot = std::make_shared<InMemoryFile>();
  out->reset(new SharedFileRef(slot));
  return Status::OK();
}

Status InMemoryWalDir::OpenExisting(const std::string& name,
                                    std::unique_ptr<PagedFile>* out) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("in-memory wal dir: " + name);
  }
  out->reset(new SharedFileRef(it->second));
  return Status::OK();
}

bool InMemoryWalDir::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mu_);
  return files_.count(name) != 0;
}

Status InMemoryWalDir::Remove(const std::string& name) {
  std::lock_guard<std::mutex> guard(mu_);
  if (files_.erase(name) == 0) {
    return Status::NotFound("in-memory wal dir: " + name);
  }
  return Status::OK();
}

Status InMemoryWalDir::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) {
    return Status::NotFound("in-memory wal dir: " + from);
  }
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::OK();
}

}  // namespace neosi
