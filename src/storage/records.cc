#include "storage/records.h"

#include <cstring>

#include "common/coding.h"

namespace neosi {

namespace {

uint8_t MakeFlags(bool in_use, bool deleted) {
  uint8_t f = 0;
  if (in_use) f |= kRecordInUse;
  if (deleted) f |= kRecordDeleted;
  return f;
}

}  // namespace

// --------------------------------------------------------------------------
// NodeRecord layout (48 bytes):
//   [0]     flags
//   [1,9)   first_rel
//   [9,17)  first_prop
//   [17,23) inline_labels (3 x u16)
//   [23,31) label_overflow
//   [31,39) commit_ts
//   [39,48) reserved
// --------------------------------------------------------------------------

void NodeRecord::EncodeTo(char* dst) const {
  memset(dst, 0, kSize);
  dst[0] = static_cast<char>(MakeFlags(in_use, deleted));
  EncodeFixed64(dst + 1, first_rel);
  EncodeFixed64(dst + 9, first_prop);
  for (int i = 0; i < kInlineLabels; ++i) {
    EncodeFixed16(dst + 17 + 2 * i, inline_labels[i]);
  }
  EncodeFixed64(dst + 23, label_overflow);
  EncodeFixed64(dst + 31, commit_ts);
}

Status NodeRecord::DecodeFrom(Slice input, NodeRecord* out) {
  if (input.size() < kSize) {
    return Status::Corruption("node record too short");
  }
  const char* p = input.data();
  const uint8_t flags = static_cast<uint8_t>(p[0]);
  out->in_use = (flags & kRecordInUse) != 0;
  out->deleted = (flags & kRecordDeleted) != 0;
  out->first_rel = DecodeFixed64(p + 1);
  out->first_prop = DecodeFixed64(p + 9);
  for (int i = 0; i < kInlineLabels; ++i) {
    out->inline_labels[i] = DecodeFixed16(p + 17 + 2 * i);
  }
  out->label_overflow = DecodeFixed64(p + 23);
  out->commit_ts = DecodeFixed64(p + 31);
  return Status::OK();
}

// --------------------------------------------------------------------------
// RelationshipRecord layout (88 bytes):
//   [0]     flags
//   [1,9)   src
//   [9,17)  dst
//   [17,21) type
//   [21,29) src_prev
//   [29,37) src_next
//   [37,45) dst_prev
//   [45,53) dst_next
//   [53,61) first_prop
//   [61,69) commit_ts
//   [69,88) reserved
// --------------------------------------------------------------------------

void RelationshipRecord::EncodeTo(char* out) const {
  memset(out, 0, kSize);
  out[0] = static_cast<char>(MakeFlags(in_use, deleted));
  EncodeFixed64(out + 1, src);
  EncodeFixed64(out + 9, dst);
  EncodeFixed32(out + 17, type);
  EncodeFixed64(out + 21, src_prev);
  EncodeFixed64(out + 29, src_next);
  EncodeFixed64(out + 37, dst_prev);
  EncodeFixed64(out + 45, dst_next);
  EncodeFixed64(out + 53, first_prop);
  EncodeFixed64(out + 61, commit_ts);
}

Status RelationshipRecord::DecodeFrom(Slice input, RelationshipRecord* out) {
  if (input.size() < kSize) {
    return Status::Corruption("relationship record too short");
  }
  const char* p = input.data();
  const uint8_t flags = static_cast<uint8_t>(p[0]);
  out->in_use = (flags & kRecordInUse) != 0;
  out->deleted = (flags & kRecordDeleted) != 0;
  out->src = DecodeFixed64(p + 1);
  out->dst = DecodeFixed64(p + 9);
  out->type = DecodeFixed32(p + 17);
  out->src_prev = DecodeFixed64(p + 21);
  out->src_next = DecodeFixed64(p + 29);
  out->dst_prev = DecodeFixed64(p + 37);
  out->dst_next = DecodeFixed64(p + 45);
  out->first_prop = DecodeFixed64(p + 53);
  out->commit_ts = DecodeFixed64(p + 61);
  return Status::OK();
}

// --------------------------------------------------------------------------
// PropertyRecord layout (40 bytes):
//   [0]     flags
//   [1,5)   key
//   [5]     inline_len
//   [6,22)  inline_payload
//   [22,30) overflow
//   [30,38) next
//   [38,40) reserved
// --------------------------------------------------------------------------

void PropertyRecord::EncodeTo(char* dst) const {
  memset(dst, 0, kSize);
  dst[0] = static_cast<char>(MakeFlags(in_use, false));
  EncodeFixed32(dst + 1, key);
  dst[5] = static_cast<char>(inline_len);
  memcpy(dst + 6, inline_payload.data(), kInlinePayload);
  EncodeFixed64(dst + 22, overflow);
  EncodeFixed64(dst + 30, next);
}

Status PropertyRecord::DecodeFrom(Slice input, PropertyRecord* out) {
  if (input.size() < kSize) {
    return Status::Corruption("property record too short");
  }
  const char* p = input.data();
  out->in_use = (static_cast<uint8_t>(p[0]) & kRecordInUse) != 0;
  out->key = DecodeFixed32(p + 1);
  out->inline_len = static_cast<uint8_t>(p[5]);
  if (out->inline_len > kInlinePayload) {
    return Status::Corruption("property record: bad inline length");
  }
  memcpy(out->inline_payload.data(), p + 6, kInlinePayload);
  out->overflow = DecodeFixed64(p + 22);
  out->next = DecodeFixed64(p + 30);
  return Status::OK();
}

// --------------------------------------------------------------------------
// DynRecord layout (64 bytes): flags, next, used, data.
// --------------------------------------------------------------------------

void DynRecord::EncodeTo(char* dst) const {
  memset(dst, 0, kSize);
  dst[0] = static_cast<char>(MakeFlags(in_use, false));
  EncodeFixed64(dst + 1, next);
  dst[9] = static_cast<char>(used);
  memcpy(dst + 10, data.data(), kDataCapacity);
}

Status DynRecord::DecodeFrom(Slice input, DynRecord* out) {
  if (input.size() < kSize) {
    return Status::Corruption("dynamic record too short");
  }
  const char* p = input.data();
  out->in_use = (static_cast<uint8_t>(p[0]) & kRecordInUse) != 0;
  out->next = DecodeFixed64(p + 1);
  out->used = static_cast<uint8_t>(p[9]);
  if (out->used > kDataCapacity) {
    return Status::Corruption("dynamic record: bad used length");
  }
  memcpy(out->data.data(), p + 10, kDataCapacity);
  return Status::OK();
}

// --------------------------------------------------------------------------
// TokenRecord layout (64 bytes): flags, created_ts, name_len, name.
// --------------------------------------------------------------------------

void TokenRecord::EncodeTo(char* dst) const {
  memset(dst, 0, kSize);
  dst[0] = static_cast<char>(MakeFlags(in_use, false));
  EncodeFixed64(dst + 1, created_ts);
  const size_t len = name.size() > kMaxNameLen ? kMaxNameLen : name.size();
  dst[9] = static_cast<char>(len);
  memcpy(dst + 10, name.data(), len);
}

Status TokenRecord::DecodeFrom(Slice input, TokenRecord* out) {
  if (input.size() < kSize) {
    return Status::Corruption("token record too short");
  }
  const char* p = input.data();
  out->in_use = (static_cast<uint8_t>(p[0]) & kRecordInUse) != 0;
  out->created_ts = DecodeFixed64(p + 1);
  const uint8_t len = static_cast<uint8_t>(p[9]);
  if (len > kMaxNameLen) {
    return Status::Corruption("token record: bad name length");
  }
  out->name.assign(p + 10, len);
  return Status::OK();
}

}  // namespace neosi
