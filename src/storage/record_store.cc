#include "storage/record_store.h"

#include <functional>

#include "common/coding.h"
#include "storage/records.h"

namespace neosi {

RecordStore::RecordStore(std::unique_ptr<PagedFile> file, uint32_t record_size,
                         uint32_t magic, std::string name)
    : file_(std::move(file)),
      record_size_(record_size),
      magic_(magic),
      name_(std::move(name)) {}

Status RecordStore::WriteHeader() {
  char header[kHeaderSize] = {0};
  EncodeFixed32(header, magic_);
  EncodeFixed32(header + 4, 1);  // format version
  EncodeFixed32(header + 8, record_size_);
  EncodeFixed32(header + 12, Crc32c(header, 12));
  return file_->WriteAt(0, header, kHeaderSize);
}

Status RecordStore::ValidateHeader() {
  char header[kHeaderSize];
  NEOSI_RETURN_IF_ERROR(file_->ReadAt(0, kHeaderSize, header));
  if (DecodeFixed32(header) != magic_) {
    return Status::Corruption(name_ + ": bad store magic");
  }
  if (DecodeFixed32(header + 8) != record_size_) {
    return Status::Corruption(name_ + ": record size mismatch");
  }
  if (DecodeFixed32(header + 12) != Crc32c(header, 12)) {
    return Status::Corruption(name_ + ": header checksum mismatch");
  }
  return Status::OK();
}

Status RecordStore::Open() {
  const uint64_t size = file_->Size();
  if (size == 0) {
    return WriteHeader();
  }
  if (size < header_size_) {
    return Status::Corruption(name_ + ": truncated header");
  }
  NEOSI_RETURN_IF_ERROR(ValidateHeader());

  // Rebuild high id and free list by scanning in-use flags.
  const uint64_t records = (size - header_size_) / record_size_;
  std::lock_guard<SpinLatch> guard(latch_);
  high_id_ = records;
  free_list_.clear();
  std::string rec;
  for (uint64_t id = 0; id < records; ++id) {
    char flag;
    NEOSI_RETURN_IF_ERROR(file_->ReadAt(OffsetOf(id), 1, &flag));
    if ((static_cast<uint8_t>(flag) & kRecordInUse) == 0) {
      free_list_.push_back(id);
    }
  }
  return Status::OK();
}

Result<uint64_t> RecordStore::Allocate() {
  uint64_t id;
  {
    std::lock_guard<SpinLatch> guard(latch_);
    if (!free_list_.empty()) {
      id = free_list_.back();
      free_list_.pop_back();
    } else {
      id = high_id_++;
    }
  }
  std::string zeros(record_size_, '\0');
  Status s = file_->WriteAt(OffsetOf(id), zeros.data(), zeros.size());
  if (!s.ok()) return s;
  return id;
}

Status RecordStore::Free(uint64_t id) {
  {
    std::lock_guard<SpinLatch> guard(latch_);
    if (id >= high_id_) {
      return Status::OutOfRange(name_ + ": free of unallocated id " +
                                std::to_string(id));
    }
  }
  std::string zeros(record_size_, '\0');
  NEOSI_RETURN_IF_ERROR(file_->WriteAt(OffsetOf(id), zeros.data(),
                                       zeros.size()));
  std::lock_guard<SpinLatch> guard(latch_);
  free_list_.push_back(id);
  return Status::OK();
}

Status RecordStore::Read(uint64_t id, std::string* buf) const {
  {
    std::lock_guard<SpinLatch> guard(latch_);
    if (id >= high_id_) {
      return Status::OutOfRange(name_ + ": read of unallocated id " +
                                std::to_string(id));
    }
  }
  buf->resize(record_size_);
  return file_->ReadAt(OffsetOf(id), record_size_, buf->data());
}

Status RecordStore::Write(uint64_t id, Slice data) {
  if (data.size() != record_size_) {
    return Status::InvalidArgument(name_ + ": record size mismatch on write");
  }
  {
    std::lock_guard<SpinLatch> guard(latch_);
    if (id >= high_id_) {
      return Status::OutOfRange(name_ + ": write of unallocated id " +
                                std::to_string(id));
    }
  }
  return file_->WriteAt(OffsetOf(id), data.data(), data.size());
}

Status RecordStore::WriteField64(uint64_t id, size_t offset, uint64_t value) {
  if (offset + 8 > record_size_) {
    return Status::InvalidArgument(name_ + ": field write out of record");
  }
  {
    std::lock_guard<SpinLatch> guard(latch_);
    if (id >= high_id_) {
      return Status::OutOfRange(name_ + ": field write of unallocated id " +
                                std::to_string(id));
    }
  }
  char buf[8];
  EncodeFixed64(buf, value);
  return file_->WriteAt(OffsetOf(id) + offset, buf, 8);
}

bool RecordStore::InUse(uint64_t id) const {
  {
    std::lock_guard<SpinLatch> guard(latch_);
    if (id >= high_id_) return false;
  }
  char flag;
  if (!file_->ReadAt(OffsetOf(id), 1, &flag).ok()) return false;
  return (static_cast<uint8_t>(flag) & kRecordInUse) != 0;
}

Status RecordStore::ForEach(
    const std::function<Status(uint64_t, const std::string&)>& fn) const {
  const uint64_t limit = high_id();
  std::string rec;
  for (uint64_t id = 0; id < limit; ++id) {
    NEOSI_RETURN_IF_ERROR(Read(id, &rec));
    if ((static_cast<uint8_t>(rec[0]) & kRecordInUse) != 0) {
      NEOSI_RETURN_IF_ERROR(fn(id, rec));
    }
  }
  return Status::OK();
}

uint64_t RecordStore::high_id() const {
  std::lock_guard<SpinLatch> guard(latch_);
  return high_id_;
}

RecordStoreStats RecordStore::Stats() const {
  std::lock_guard<SpinLatch> guard(latch_);
  RecordStoreStats stats;
  stats.high_id = high_id_;
  stats.free_records = free_list_.size();
  stats.bytes = file_->Size();
  return stats;
}

Status RecordStore::EnsureAllocated(uint64_t id) {
  std::vector<uint64_t> to_zero;
  {
    std::lock_guard<SpinLatch> guard(latch_);
    if (id < high_id_) {
      // Recycled id may sit on the free list; pull it off.
      for (size_t i = 0; i < free_list_.size(); ++i) {
        if (free_list_[i] == id) {
          free_list_[i] = free_list_.back();
          free_list_.pop_back();
          break;
        }
      }
      return Status::OK();
    }
    for (uint64_t gap = high_id_; gap < id; ++gap) {
      free_list_.push_back(gap);
      to_zero.push_back(gap);
    }
    to_zero.push_back(id);
    high_id_ = id + 1;
  }
  std::string zeros(record_size_, '\0');
  for (uint64_t gap : to_zero) {
    NEOSI_RETURN_IF_ERROR(
        file_->WriteAt(OffsetOf(gap), zeros.data(), zeros.size()));
  }
  return Status::OK();
}

}  // namespace neosi
