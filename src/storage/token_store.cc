#include "storage/token_store.h"

#include "storage/records.h"

namespace neosi {

TokenStore::TokenStore(std::unique_ptr<PagedFile> file, std::string name)
    : store_(std::move(file), TokenRecord::kSize, TokenRecord::kMagic,
             std::move(name)) {}

Status TokenStore::Open() {
  NEOSI_RETURN_IF_ERROR(store_.Open());
  WriteGuard guard(latch_);
  by_name_.clear();
  by_id_.clear();
  return store_.ForEach([&](uint64_t id, const std::string& raw) {
    TokenRecord rec;
    NEOSI_RETURN_IF_ERROR(TokenRecord::DecodeFrom(Slice(raw), &rec));
    if (by_id_.size() <= id) by_id_.resize(id + 1);
    Token token;
    token.id = static_cast<uint32_t>(id);
    token.name = rec.name;
    token.created_ts = rec.created_ts;
    by_name_[rec.name] = token.id;
    by_id_[id] = std::move(token);
    return Status::OK();
  });
}

Result<uint32_t> TokenStore::GetOrCreate(const std::string& name,
                                         Timestamp created_ts) {
  if (name.empty()) {
    return Status::InvalidArgument("token name must be non-empty");
  }
  if (name.size() > TokenRecord::kMaxNameLen) {
    return Status::InvalidArgument("token name too long (max " +
                                   std::to_string(TokenRecord::kMaxNameLen) +
                                   " bytes): " + name);
  }
  {
    ReadGuard guard(latch_);
    auto it = by_name_.find(name);
    if (it != by_name_.end()) return it->second;
  }
  WriteGuard guard(latch_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;  // Raced creation.

  auto alloc = store_.Allocate();
  if (!alloc.ok()) return alloc.status();
  const uint64_t id = *alloc;

  TokenRecord rec;
  rec.in_use = true;
  rec.created_ts = created_ts;
  rec.name = name;
  char buf[TokenRecord::kSize];
  rec.EncodeTo(buf);
  NEOSI_RETURN_IF_ERROR(store_.Write(id, Slice(buf, TokenRecord::kSize)));

  if (by_id_.size() <= id) by_id_.resize(id + 1);
  Token token;
  token.id = static_cast<uint32_t>(id);
  token.name = name;
  token.created_ts = created_ts;
  by_id_[id] = token;
  by_name_[name] = token.id;
  return token.id;
}

Result<uint32_t> TokenStore::Lookup(const std::string& name,
                                    Timestamp snapshot_ts) const {
  ReadGuard guard(latch_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("token not found: " + name);
  }
  const Token& token = by_id_[it->second];
  if (token.created_ts > snapshot_ts) {
    // Created after the reader's snapshot: the reader discards it (§4).
    return Status::NotFound("token not visible in snapshot: " + name);
  }
  return token.id;
}

Result<std::string> TokenStore::NameOf(uint32_t id) const {
  ReadGuard guard(latch_);
  if (id >= by_id_.size() || by_id_[id].id == kInvalidToken) {
    return Status::NotFound("token id not found: " + std::to_string(id));
  }
  return by_id_[id].name;
}

Result<Timestamp> TokenStore::CreatedTs(uint32_t id) const {
  ReadGuard guard(latch_);
  if (id >= by_id_.size() || by_id_[id].id == kInvalidToken) {
    return Status::NotFound("token id not found: " + std::to_string(id));
  }
  return by_id_[id].created_ts;
}

bool TokenStore::VisibleAt(uint32_t id, Timestamp snapshot_ts) const {
  ReadGuard guard(latch_);
  if (id >= by_id_.size() || by_id_[id].id == kInvalidToken) return false;
  return by_id_[id].created_ts <= snapshot_ts;
}

std::vector<Token> TokenStore::VisibleTokens(Timestamp snapshot_ts) const {
  ReadGuard guard(latch_);
  std::vector<Token> out;
  for (const Token& token : by_id_) {
    if (token.id != kInvalidToken && token.created_ts <= snapshot_ts) {
      out.push_back(token);
    }
  }
  return out;
}

size_t TokenStore::size() const {
  ReadGuard guard(latch_);
  size_t n = 0;
  for (const Token& token : by_id_) {
    if (token.id != kInvalidToken) ++n;
  }
  return n;
}

}  // namespace neosi
