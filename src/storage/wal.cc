#include "storage/wal.h"

#include <algorithm>
#include <vector>

#include "common/coding.h"

namespace neosi {

namespace {
constexpr size_t kFrameHeader = 8;  // u32 length + u32 crc
// "NWL2" — decodes as an implausibly large frame length, so a headerless
// (v1) file is never mistaken for a v2 one.
constexpr uint32_t kWalMagic = 0x324c574e;
constexpr uint32_t kWalVersion = 2;
// Slot byte layout: magic(4) version(4) head(8) base(8) seq(4) crc(4).
constexpr size_t kHeaderCrcOffset = 28;
}  // namespace

Wal::Wal(std::unique_ptr<PagedFile> file) : file_(std::move(file)) {}

Status Wal::WriteHeader() {
  // Ping-pong: the slot holding the currently-valid header is left intact;
  // a crash tearing this write still leaves that older slot readable.
  ++header_seq_;
  char buf[kHeaderSlotSize] = {};
  EncodeFixed32(buf, kWalMagic);
  EncodeFixed32(buf + 4, kWalVersion);
  EncodeFixed64(buf + 8, head_lsn_.load(std::memory_order_relaxed));
  EncodeFixed64(buf + 16, base_lsn_.load(std::memory_order_relaxed));
  EncodeFixed32(buf + 24, header_seq_);
  EncodeFixed32(buf + kHeaderCrcOffset, Crc32c(buf, kHeaderCrcOffset));
  return file_->WriteAt((header_seq_ & 1) * kHeaderSlotSize, buf,
                        kHeaderSlotSize);
}

Status Wal::Open() {
  uint64_t size = file_->Size();
  if (size == 0) {
    head_lsn_.store(0, std::memory_order_relaxed);
    base_lsn_.store(0, std::memory_order_relaxed);
    next_lsn_.store(0, std::memory_order_relaxed);
    NEOSI_RETURN_IF_ERROR(WriteHeader());
  } else {
    // Read both header slots; a slot is usable iff magic, version and CRC
    // all check out. The valid slot with the highest seq wins — at most
    // one slot can be torn (updates ping-pong), so a crashed header
    // rewrite degrades to the older slot, never to fail-stop.
    char slots[kHeaderSize] = {};
    if (size >= kHeaderSize) {
      NEOSI_RETURN_IF_ERROR(file_->ReadAt(0, kHeaderSize, slots));
    } else if (size >= 4) {
      NEOSI_RETURN_IF_ERROR(file_->ReadAt(0, std::min<uint64_t>(size, 4),
                                          slots));
    }
    bool any_magic = false;
    bool found = false;
    uint32_t best_seq = 0;
    Lsn head = 0, base = 0;
    for (int i = 0; i < 2; ++i) {
      const char* slot = slots + i * kHeaderSlotSize;
      if (DecodeFixed32(slot) != kWalMagic) continue;
      any_magic = true;
      if (DecodeFixed32(slot + kHeaderCrcOffset) !=
          Crc32c(slot, kHeaderCrcOffset)) {
        continue;  // Torn slot; the other one carries the state.
      }
      if (DecodeFixed32(slot + 4) != kWalVersion) {
        return Status::Corruption("wal header: unsupported version");
      }
      const uint32_t seq = DecodeFixed32(slot + 24);
      if (!found || seq > best_seq) {
        found = true;
        best_seq = seq;
        head = DecodeFixed64(slot + 8);
        base = DecodeFixed64(slot + 16);
      }
    }
    if (found) {
      if (head < base) return Status::Corruption("wal header: head < base");
      head_lsn_.store(head, std::memory_order_relaxed);
      base_lsn_.store(base, std::memory_order_relaxed);
      header_seq_ = best_seq;
    } else if (any_magic) {
      if (size > kHeaderSize) {
        return Status::Corruption("wal header: both slots unreadable");
      }
      // Crash during the very first header write of a fresh log: no
      // frames exist, so reinitialize.
      head_lsn_.store(0, std::memory_order_relaxed);
      base_lsn_.store(0, std::memory_order_relaxed);
      NEOSI_RETURN_IF_ERROR(WriteHeader());
    } else {
      // Headerless v1 file: migrate WITHOUT touching the original frames.
      // A durably-appended copy of the frames goes beyond the original
      // extent, and the header's base mapping points the head at the copy
      // (head = size - kHeaderSize, base = 0 ⇒ phys(head) = size). A crash
      // before the header lands leaves a magic-less file that simply
      // re-migrates (idempotent replay tolerates the duplicated frames
      // that can produce); the header write itself is one sub-sector
      // write, CRC-guarded against tearing. The dead [kHeaderSize, size)
      // region is reclaimed by later truncations/resets.
      std::vector<char> content(size);
      NEOSI_RETURN_IF_ERROR(file_->ReadAt(0, size, content.data()));
      const uint64_t copy_at = std::max<uint64_t>(size, kHeaderSize);
      NEOSI_RETURN_IF_ERROR(file_->WriteAt(copy_at, content.data(), size));
      NEOSI_RETURN_IF_ERROR(file_->Sync());
      head_lsn_.store(copy_at - kHeaderSize, std::memory_order_relaxed);
      base_lsn_.store(0, std::memory_order_relaxed);
      NEOSI_RETURN_IF_ERROR(WriteHeader());
      NEOSI_RETURN_IF_ERROR(file_->Sync());
      size = file_->Size();
    }
  }

  // Find the end of the valid frame prefix by walking from the head.
  const Lsn base = base_lsn_.load(std::memory_order_relaxed);
  const Lsn head = head_lsn_.load(std::memory_order_relaxed);
  uint64_t offset = kHeaderSize + (head - base);
  std::vector<char> buf;
  while (offset + kFrameHeader <= size) {
    char header[kFrameHeader];
    NEOSI_RETURN_IF_ERROR(file_->ReadAt(offset, kFrameHeader, header));
    const uint32_t len = DecodeFixed32(header);
    const uint32_t crc = DecodeFixed32(header + 4);
    if (len == 0 || offset + kFrameHeader + len > size) break;
    buf.resize(len);
    NEOSI_RETURN_IF_ERROR(file_->ReadAt(offset + kFrameHeader, len,
                                        buf.data()));
    if (Crc32c(buf.data(), len) != crc) break;
    offset += kFrameHeader + len;
  }
  next_lsn_.store(base + (offset - kHeaderSize), std::memory_order_relaxed);
  return Status::OK();
}

void Wal::AwaitAppendGate() {
  if (!gate_closed_.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lock(gate_mu_);
  gate_cv_.wait(lock, [this] {
    return !gate_closed_.load(std::memory_order_acquire);
  });
}

void Wal::LockAppendLatch() {
  // The gate must be re-validated UNDER the latch: an appender that passed
  // the gate check, got descheduled, and acquired the latch only after
  // BlockAppends' barrier had already swept it would otherwise append (and
  // pin) into a log the legacy checkpoint is about to Reset().
  for (;;) {
    AwaitAppendGate();
    latch_.lock();
    if (!gate_closed_.load(std::memory_order_acquire)) return;
    latch_.unlock();
  }
}

void Wal::BlockAppends() {
  {
    std::lock_guard<std::mutex> guard(gate_mu_);
    gate_closed_.store(true, std::memory_order_release);
  }
  // Barrier: any appender that passed the gate before it closed has either
  // finished its latch section (record written, pin registered) or is inside
  // it; taking the latch once waits those out.
  std::lock_guard<SpinLatch> barrier(latch_);
}

void Wal::UnblockAppends() {
  {
    std::lock_guard<std::mutex> guard(gate_mu_);
    gate_closed_.store(false, std::memory_order_release);
  }
  gate_cv_.notify_all();
}

void Wal::WaitPinsDrained() {
  std::unique_lock<std::mutex> lock(pins_mu_);
  pins_cv_.wait(lock, [this] { return pins_.empty(); });
}

Result<Lsn> Wal::Append(const WalRecord& record, bool pin) {
  std::string payload;
  record.EncodeTo(&payload);

  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, Crc32c(payload.data(), payload.size()));
  frame.append(payload);

  LockAppendLatch();
  std::lock_guard<SpinLatch> guard(latch_, std::adopt_lock);
  const Lsn lsn = next_lsn_.load(std::memory_order_relaxed);
  const uint64_t phys =
      kHeaderSize + (lsn - base_lsn_.load(std::memory_order_relaxed));
  Status s = file_->WriteAt(phys, frame.data(), frame.size());
  if (!s.ok()) return s;
  if (pin) {
    std::lock_guard<std::mutex> pin_guard(pins_mu_);
    pins_.insert(lsn);
  }
  // Release-publish AFTER the pin is registered: StableLsn() reads the
  // cursor first, so any record it can observe below the cursor has its pin
  // already visible (or has been deliberately appended unpinned).
  next_lsn_.store(lsn + frame.size(), std::memory_order_release);
  return lsn;
}

Status Wal::AppendBatch(const std::vector<const WalRecord*>& records,
                        std::vector<Lsn>* lsns,
                        const std::vector<bool>* pins) {
  lsns->clear();
  lsns->reserve(records.size());

  // Encode every frame into one contiguous buffer outside the latch.
  std::string buffer;
  std::vector<uint64_t> frame_offsets;
  frame_offsets.reserve(records.size());
  std::string payload;
  for (const WalRecord* record : records) {
    payload.clear();
    record->EncodeTo(&payload);
    frame_offsets.push_back(buffer.size());
    PutFixed32(&buffer, static_cast<uint32_t>(payload.size()));
    PutFixed32(&buffer, Crc32c(payload.data(), payload.size()));
    buffer.append(payload);
  }

  LockAppendLatch();
  std::lock_guard<SpinLatch> guard(latch_, std::adopt_lock);
  const Lsn first = next_lsn_.load(std::memory_order_relaxed);
  const uint64_t phys =
      kHeaderSize + (first - base_lsn_.load(std::memory_order_relaxed));
  NEOSI_RETURN_IF_ERROR(file_->WriteAt(phys, buffer.data(), buffer.size()));
  for (uint64_t frame_offset : frame_offsets) {
    lsns->push_back(first + frame_offset);
  }
  if (pins != nullptr) {
    std::lock_guard<std::mutex> pin_guard(pins_mu_);
    for (size_t i = 0; i < lsns->size(); ++i) {
      if ((*pins)[i]) pins_.insert((*lsns)[i]);
    }
  }
  next_lsn_.store(first + buffer.size(), std::memory_order_release);
  return Status::OK();
}

Status Wal::Sync() { return file_->Sync(); }

void Wal::Unpin(Lsn lsn) {
  std::lock_guard<std::mutex> guard(pins_mu_);
  pins_.erase(lsn);
  if (pins_.empty()) pins_cv_.notify_all();
}

Lsn Wal::StableLsn() const {
  // Cursor FIRST, pins second: a pin is registered before the cursor
  // advances past its record, so any record visible below `cursor` is
  // either pinned here or already safely applied.
  const Lsn cursor = next_lsn_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> guard(pins_mu_);
  if (pins_.empty()) return cursor;
  return std::min(cursor, *pins_.begin());
}

size_t Wal::PinnedCount() const {
  std::lock_guard<std::mutex> guard(pins_mu_);
  return pins_.size();
}

Status Wal::TruncatePrefix(Lsn lsn) {
  std::lock_guard<std::mutex> guard(trunc_mu_);
  const Lsn head = head_lsn_.load(std::memory_order_acquire);
  const Lsn next = next_lsn_.load(std::memory_order_acquire);
  if (lsn <= head) return Status::OK();  // Nothing below to drop.
  if (lsn > next) {
    return Status::InvalidArgument("wal truncate beyond append cursor");
  }

  // Whole-log cut with nothing in flight: physically rebase instead of
  // poking a hole — the file shrinks to just the header, which also bounds
  // backends where holes don't reclaim anything (the in-memory buffer,
  // hole-less filesystems). Checked under the append latch so a record
  // appended after the caller computed `lsn` can never be dropped; pins
  // are re-checked too (a pinned record at exactly `next` is impossible,
  // but a cheap guard beats a subtle dependency). Truncate-then-header
  // order: a crash in between leaves the old header pointing past EOF,
  // which opens as an empty log — correct, since everything below `lsn`
  // was already synced into the stores.
  {
    LockAppendLatch();
    std::lock_guard<SpinLatch> latch_guard(latch_, std::adopt_lock);
    bool whole_log = next_lsn_.load(std::memory_order_relaxed) == lsn;
    if (whole_log) {
      std::lock_guard<std::mutex> pin_guard(pins_mu_);
      whole_log = pins_.empty();
    }
    if (whole_log) {
      head_lsn_.store(lsn, std::memory_order_release);
      base_lsn_.store(lsn, std::memory_order_release);
      NEOSI_RETURN_IF_ERROR(file_->Truncate(kHeaderSize));
      NEOSI_RETURN_IF_ERROR(WriteHeader());
      return file_->Sync();
    }
  }

  head_lsn_.store(lsn, std::memory_order_release);
  // Durability order matters: persist the new head BEFORE punching the dead
  // bytes. The reverse order could zero frames that a crash-time header
  // still points at, making the whole live log look like a torn tail.
  NEOSI_RETURN_IF_ERROR(WriteHeader());
  NEOSI_RETURN_IF_ERROR(file_->Sync());

  // Page-align the punch or the filesystem frees nothing: a sub-page range
  // only zeroes bytes. Everything below `dead_end` is dead, so widen the
  // left edge down to a page boundary (re-punching an already-punched page
  // is a no-op); the right edge shrinks to a boundary because its partial
  // page holds live bytes. The header page itself is never punched. Pages
  // straddling a checkpoint's cut get freed by a later checkpoint once the
  // cut moves past them.
  constexpr uint64_t kPunchAlign = 4096;
  const Lsn base = base_lsn_.load(std::memory_order_acquire);
  const uint64_t dead_begin = kHeaderSize + (head - base);
  const uint64_t dead_end = kHeaderSize + (lsn - base);
  const uint64_t punch_begin =
      std::max<uint64_t>(kPunchAlign, dead_begin & ~(kPunchAlign - 1));
  const uint64_t punch_end = dead_end & ~(kPunchAlign - 1);
  if (punch_begin >= punch_end) return Status::OK();
  return file_->PunchHole(punch_begin, punch_end - punch_begin);
}

Result<Lsn> GroupCommitter::Commit(const WalRecord& record, bool sync,
                                   bool pin) {
  if (!sync) {
    // Nothing to amortize without an fsync; a plain latched append is
    // cheaper than parking behind a leader that may be mid-fsync.
    records_.fetch_add(1, std::memory_order_relaxed);
    return wal_->Append(record, pin);
  }
  Request req;
  req.record = &record;
  req.sync = sync;
  req.pin = pin;
  std::unique_lock<std::mutex> lock(mu_);
  queue_.push_back(&req);
  // Wait until a leader has handled us, or until the leader seat is free and
  // our request is still queued (then we take the seat ourselves).
  while (!req.done && leader_active_) cv_.wait(lock);
  if (req.done) {
    if (!req.status.ok()) return req.status;
    return req.lsn;
  }

  leader_active_ = true;
  std::vector<Request*> batch(queue_.begin(), queue_.end());
  queue_.clear();
  lock.unlock();

  std::vector<const WalRecord*> records;
  std::vector<bool> pins;
  records.reserve(batch.size());
  pins.reserve(batch.size());
  bool want_sync = false;
  for (Request* r : batch) {
    records.push_back(r->record);
    pins.push_back(r->pin);
    want_sync |= r->sync;
  }
  std::vector<Lsn> lsns;
  Status write_status = wal_->AppendBatch(records, &lsns, &pins);
  Status sync_status;
  if (write_status.ok() && want_sync) sync_status = wal_->Sync();

  if (batch.size() > 1) batches_.fetch_add(1, std::memory_order_relaxed);
  records_.fetch_add(batch.size(), std::memory_order_relaxed);

  lock.lock();
  for (size_t i = 0; i < batch.size(); ++i) {
    Request* r = batch[i];
    if (!write_status.ok()) {
      r->status = write_status;
    } else {
      r->lsn = lsns[i];
      if (r->sync && !sync_status.ok()) {
        r->status = sync_status;
        // The caller sees a failed commit and rolls back — release its pin
        // here or StableLsn() would be frozen at this lsn forever (the
        // caller never learns the lsn of a commit that "didn't happen").
        if (r->pin) wal_->Unpin(lsns[i]);
      }
    }
    r->done = true;
  }
  leader_active_ = false;
  lock.unlock();
  cv_.notify_all();

  if (!req.status.ok()) return req.status;
  return req.lsn;
}

Status Wal::ReadFrom(Lsn from,
                     const std::function<Status(Lsn, const WalRecord&)>& fn) {
  const uint64_t size = file_->Size();
  const Lsn base = base_lsn_.load(std::memory_order_acquire);
  const Lsn head = head_lsn_.load(std::memory_order_acquire);
  // `from` must be a frame boundary at or above the head (the head itself,
  // a marker's stable LSN, or the append cursor) — the scan seeks straight
  // to it so a marker-covered prefix costs no read or CRC work at all.
  if (from < head) from = head;
  uint64_t offset = kHeaderSize + (from - base);
  std::vector<char> buf;
  while (offset + kFrameHeader <= size) {
    char header[kFrameHeader];
    NEOSI_RETURN_IF_ERROR(file_->ReadAt(offset, kFrameHeader, header));
    const uint32_t len = DecodeFixed32(header);
    const uint32_t crc = DecodeFixed32(header + 4);
    if (len == 0 || offset + kFrameHeader + len > size) break;  // torn tail
    buf.resize(len);
    NEOSI_RETURN_IF_ERROR(file_->ReadAt(offset + kFrameHeader, len,
                                        buf.data()));
    if (Crc32c(buf.data(), len) != crc) break;  // torn / corrupt tail

    const Lsn lsn = base + (offset - kHeaderSize);
    WalRecord record;
    NEOSI_RETURN_IF_ERROR(
        WalRecord::DecodeFrom(Slice(buf.data(), len), &record));
    NEOSI_RETURN_IF_ERROR(fn(lsn, record));
    offset += kFrameHeader + len;
  }
  // Drop any torn tail so subsequent appends extend a clean log.
  if (offset < size) {
    NEOSI_RETURN_IF_ERROR(file_->Truncate(offset));
  }
  std::lock_guard<SpinLatch> guard(latch_);
  next_lsn_.store(base + (offset - kHeaderSize), std::memory_order_release);
  return Status::OK();
}

Status Wal::ReadAll(const std::function<Status(const WalRecord&)>& fn) {
  return ReadFrom(head_lsn_.load(std::memory_order_acquire),
                  [&fn](Lsn, const WalRecord& record) { return fn(record); });
}

Status Wal::Reset() {
  std::lock_guard<SpinLatch> guard(latch_);
  std::lock_guard<std::mutex> trunc_guard(trunc_mu_);
  // LSNs stay monotonic across the reset: the next append continues above
  // everything ever handed out, it just lands at the front of the file.
  const Lsn next = next_lsn_.load(std::memory_order_relaxed);
  head_lsn_.store(next, std::memory_order_release);
  base_lsn_.store(next, std::memory_order_release);
  NEOSI_RETURN_IF_ERROR(file_->Truncate(kHeaderSize));
  return WriteHeader();
}

}  // namespace neosi
