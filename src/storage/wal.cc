#include "storage/wal.h"

#include <vector>

#include "common/coding.h"

namespace neosi {

namespace {
constexpr size_t kFrameHeader = 8;  // u32 length + u32 crc
}  // namespace

Wal::Wal(std::unique_ptr<PagedFile> file) : file_(std::move(file)) {}

Status Wal::Open() {
  // Find the end of the valid prefix by walking frames.
  const uint64_t size = file_->Size();
  uint64_t offset = 0;
  std::vector<char> buf;
  while (offset + kFrameHeader <= size) {
    char header[kFrameHeader];
    NEOSI_RETURN_IF_ERROR(file_->ReadAt(offset, kFrameHeader, header));
    const uint32_t len = DecodeFixed32(header);
    const uint32_t crc = DecodeFixed32(header + 4);
    if (len == 0 || offset + kFrameHeader + len > size) break;
    buf.resize(len);
    NEOSI_RETURN_IF_ERROR(file_->ReadAt(offset + kFrameHeader, len,
                                        buf.data()));
    if (Crc32c(buf.data(), len) != crc) break;
    offset += kFrameHeader + len;
  }
  append_offset_ = offset;
  return Status::OK();
}

Result<Lsn> Wal::Append(const WalRecord& record) {
  std::string payload;
  record.EncodeTo(&payload);

  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, Crc32c(payload.data(), payload.size()));
  frame.append(payload);

  std::lock_guard<SpinLatch> guard(latch_);
  const Lsn lsn = append_offset_;
  Status s = file_->WriteAt(append_offset_, frame.data(), frame.size());
  if (!s.ok()) return s;
  append_offset_ += frame.size();
  return lsn;
}

Status Wal::AppendBatch(const std::vector<const WalRecord*>& records,
                        std::vector<Lsn>* lsns) {
  lsns->clear();
  lsns->reserve(records.size());

  // Encode every frame into one contiguous buffer outside the latch.
  std::string buffer;
  std::vector<uint64_t> frame_offsets;
  frame_offsets.reserve(records.size());
  std::string payload;
  for (const WalRecord* record : records) {
    payload.clear();
    record->EncodeTo(&payload);
    frame_offsets.push_back(buffer.size());
    PutFixed32(&buffer, static_cast<uint32_t>(payload.size()));
    PutFixed32(&buffer, Crc32c(payload.data(), payload.size()));
    buffer.append(payload);
  }

  std::lock_guard<SpinLatch> guard(latch_);
  const uint64_t base = append_offset_;
  NEOSI_RETURN_IF_ERROR(file_->WriteAt(base, buffer.data(), buffer.size()));
  append_offset_ += buffer.size();
  for (uint64_t frame_offset : frame_offsets) {
    lsns->push_back(base + frame_offset);
  }
  return Status::OK();
}

Status Wal::Sync() { return file_->Sync(); }

void Wal::EnterEpoch() {
  std::unique_lock<std::mutex> lock(epoch_mu_);
  // A requested drain blocks new entrants at once (writer preference):
  // checkpoint progress must not depend on commit traffic ever pausing.
  epoch_cv_.wait(lock, [this] { return !epoch_draining_; });
  ++epoch_holders_;
}

void Wal::ExitEpoch() {
  std::lock_guard<std::mutex> guard(epoch_mu_);
  if (--epoch_holders_ == 0 && epoch_draining_) epoch_cv_.notify_all();
}

void Wal::BeginDrain() {
  std::unique_lock<std::mutex> lock(epoch_mu_);
  epoch_cv_.wait(lock, [this] { return !epoch_draining_; });
  epoch_draining_ = true;
  epoch_cv_.wait(lock, [this] { return epoch_holders_ == 0; });
}

void Wal::EndDrain() {
  {
    std::lock_guard<std::mutex> guard(epoch_mu_);
    epoch_draining_ = false;
  }
  epoch_cv_.notify_all();
}

Result<Lsn> GroupCommitter::Commit(const WalRecord& record, bool sync) {
  if (!sync) {
    // Nothing to amortize without an fsync; a plain latched append is
    // cheaper than parking behind a leader that may be mid-fsync.
    records_.fetch_add(1, std::memory_order_relaxed);
    return wal_->Append(record);
  }
  Request req{&record, sync};
  std::unique_lock<std::mutex> lock(mu_);
  queue_.push_back(&req);
  // Wait until a leader has handled us, or until the leader seat is free and
  // our request is still queued (then we take the seat ourselves).
  while (!req.done && leader_active_) cv_.wait(lock);
  if (req.done) {
    if (!req.status.ok()) return req.status;
    return req.lsn;
  }

  leader_active_ = true;
  std::vector<Request*> batch(queue_.begin(), queue_.end());
  queue_.clear();
  lock.unlock();

  std::vector<const WalRecord*> records;
  records.reserve(batch.size());
  bool want_sync = false;
  for (Request* r : batch) {
    records.push_back(r->record);
    want_sync |= r->sync;
  }
  std::vector<Lsn> lsns;
  Status write_status = wal_->AppendBatch(records, &lsns);
  Status sync_status;
  if (write_status.ok() && want_sync) sync_status = wal_->Sync();

  if (batch.size() > 1) batches_.fetch_add(1, std::memory_order_relaxed);
  records_.fetch_add(batch.size(), std::memory_order_relaxed);

  lock.lock();
  for (size_t i = 0; i < batch.size(); ++i) {
    Request* r = batch[i];
    if (!write_status.ok()) {
      r->status = write_status;
    } else {
      r->lsn = lsns[i];
      if (r->sync && !sync_status.ok()) r->status = sync_status;
    }
    r->done = true;
  }
  leader_active_ = false;
  lock.unlock();
  cv_.notify_all();

  if (!req.status.ok()) return req.status;
  return req.lsn;
}

Status Wal::ReadAll(const std::function<Status(const WalRecord&)>& fn) {
  const uint64_t size = file_->Size();
  uint64_t offset = 0;
  std::vector<char> buf;
  while (offset + kFrameHeader <= size) {
    char header[kFrameHeader];
    NEOSI_RETURN_IF_ERROR(file_->ReadAt(offset, kFrameHeader, header));
    const uint32_t len = DecodeFixed32(header);
    const uint32_t crc = DecodeFixed32(header + 4);
    if (len == 0 || offset + kFrameHeader + len > size) break;  // torn tail
    buf.resize(len);
    NEOSI_RETURN_IF_ERROR(file_->ReadAt(offset + kFrameHeader, len,
                                        buf.data()));
    if (Crc32c(buf.data(), len) != crc) break;  // torn / corrupt tail

    WalRecord record;
    NEOSI_RETURN_IF_ERROR(
        WalRecord::DecodeFrom(Slice(buf.data(), len), &record));
    NEOSI_RETURN_IF_ERROR(fn(record));
    offset += kFrameHeader + len;
  }
  // Drop any torn tail so subsequent appends extend a clean log.
  if (offset < size) {
    NEOSI_RETURN_IF_ERROR(file_->Truncate(offset));
  }
  std::lock_guard<SpinLatch> guard(latch_);
  append_offset_ = offset;
  return Status::OK();
}

Status Wal::Reset() {
  std::lock_guard<SpinLatch> guard(latch_);
  NEOSI_RETURN_IF_ERROR(file_->Truncate(0));
  append_offset_ = 0;
  return Status::OK();
}

}  // namespace neosi
