#include "storage/wal.h"

#include <vector>

#include "common/coding.h"

namespace neosi {

namespace {
constexpr size_t kFrameHeader = 8;  // u32 length + u32 crc
}  // namespace

Wal::Wal(std::unique_ptr<PagedFile> file) : file_(std::move(file)) {}

Status Wal::Open() {
  // Find the end of the valid prefix by walking frames.
  const uint64_t size = file_->Size();
  uint64_t offset = 0;
  std::vector<char> buf;
  while (offset + kFrameHeader <= size) {
    char header[kFrameHeader];
    NEOSI_RETURN_IF_ERROR(file_->ReadAt(offset, kFrameHeader, header));
    const uint32_t len = DecodeFixed32(header);
    const uint32_t crc = DecodeFixed32(header + 4);
    if (len == 0 || offset + kFrameHeader + len > size) break;
    buf.resize(len);
    NEOSI_RETURN_IF_ERROR(file_->ReadAt(offset + kFrameHeader, len,
                                        buf.data()));
    if (Crc32c(buf.data(), len) != crc) break;
    offset += kFrameHeader + len;
  }
  append_offset_ = offset;
  return Status::OK();
}

Result<Lsn> Wal::Append(const WalRecord& record) {
  std::string payload;
  record.EncodeTo(&payload);

  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, Crc32c(payload.data(), payload.size()));
  frame.append(payload);

  std::lock_guard<SpinLatch> guard(latch_);
  const Lsn lsn = append_offset_;
  Status s = file_->WriteAt(append_offset_, frame.data(), frame.size());
  if (!s.ok()) return s;
  append_offset_ += frame.size();
  return lsn;
}

Status Wal::Sync() { return file_->Sync(); }

Status Wal::ReadAll(const std::function<Status(const WalRecord&)>& fn) {
  const uint64_t size = file_->Size();
  uint64_t offset = 0;
  std::vector<char> buf;
  while (offset + kFrameHeader <= size) {
    char header[kFrameHeader];
    NEOSI_RETURN_IF_ERROR(file_->ReadAt(offset, kFrameHeader, header));
    const uint32_t len = DecodeFixed32(header);
    const uint32_t crc = DecodeFixed32(header + 4);
    if (len == 0 || offset + kFrameHeader + len > size) break;  // torn tail
    buf.resize(len);
    NEOSI_RETURN_IF_ERROR(file_->ReadAt(offset + kFrameHeader, len,
                                        buf.data()));
    if (Crc32c(buf.data(), len) != crc) break;  // torn / corrupt tail

    WalRecord record;
    NEOSI_RETURN_IF_ERROR(
        WalRecord::DecodeFrom(Slice(buf.data(), len), &record));
    NEOSI_RETURN_IF_ERROR(fn(record));
    offset += kFrameHeader + len;
  }
  // Drop any torn tail so subsequent appends extend a clean log.
  if (offset < size) {
    NEOSI_RETURN_IF_ERROR(file_->Truncate(offset));
  }
  std::lock_guard<SpinLatch> guard(latch_);
  append_offset_ = offset;
  return Status::OK();
}

Status Wal::Reset() {
  std::lock_guard<SpinLatch> guard(latch_);
  NEOSI_RETURN_IF_ERROR(file_->Truncate(0));
  append_offset_ = 0;
  return Status::OK();
}

}  // namespace neosi
