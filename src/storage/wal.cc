#include "storage/wal.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/coding.h"

// io_uring slot for the flusher's fsync: opt-in at configure time
// (-DNEOSI_IO_URING=ON) and compiled only where liburing is actually
// installed — the worker-thread fsync below is the portable path.
#if defined(NEOSI_HAVE_IO_URING)
#if __has_include(<liburing.h>)
#include <liburing.h>
#else
#undef NEOSI_HAVE_IO_URING
#endif
#endif

namespace neosi {

namespace {

constexpr size_t kFrameHeader = 8;  // u32 length + u32 crc

/// fsyncs `file` on behalf of a flush pass: through a per-thread io_uring
/// when built with support and the backend exposes a descriptor, plain
/// PagedFile::Sync() otherwise.
Status SyncForFlush(PagedFile* file) {
#if defined(NEOSI_HAVE_IO_URING)
  const int fd = file->RawFd();
  if (fd >= 0) {
    thread_local struct io_uring ring;
    thread_local int ring_state = 0;  // 0 = uninit, 1 = ok, -1 = unavailable
    if (ring_state == 0) {
      ring_state = io_uring_queue_init(8, &ring, 0) == 0 ? 1 : -1;
    }
    if (ring_state == 1) {
      struct io_uring_sqe* sqe = io_uring_get_sqe(&ring);
      if (sqe != nullptr) {
        io_uring_prep_fsync(sqe, fd, 0);
        if (io_uring_submit(&ring) == 1) {
          struct io_uring_cqe* cqe = nullptr;
          if (io_uring_wait_cqe(&ring, &cqe) == 0) {
            const int res = cqe->res;
            io_uring_cqe_seen(&ring, cqe);
            if (res < 0) {
              return Status::IOError(std::string("io_uring fsync: ") +
                                     std::strerror(-res));
            }
            return Status::OK();
          }
        }
      }
    }
  }
#endif
  return file->Sync();
}

// Segment header byte layout: magic(4) version(4) base(8) epoch(8) crc(4),
// zero-padded to Wal::kSegmentHeaderSize. "NWS1".
constexpr uint32_t kSegmentMagic = 0x3153574e;
constexpr uint32_t kSegmentVersion = 1;
constexpr size_t kSegmentCrcOffset = 24;

// Pre-segmentation single-file log ("NWL2"): dual 32-byte header slots
// [magic u32][version u32][head u64][base u64][seq u32][crc u32], frames
// from byte 64. Headerless (v1) files have frames from byte 0.
constexpr uint32_t kLegacyMagic = 0x324c574e;
constexpr uint32_t kLegacyVersion = 2;
constexpr uint64_t kLegacySlotSize = 32;
constexpr uint64_t kLegacyHeaderSize = 64;
constexpr size_t kLegacyCrcOffset = 28;

std::string IndexedName(const char* prefix, uint64_t index) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s%06llu", prefix,
                static_cast<unsigned long long>(index));
  return buf;
}

/// Walks the valid frame prefix of `file` from `offset` to `size`: for each
/// frame whose length and checksum hold, invokes `fn(frame_offset,
/// payload)`; stops at the first invalid frame (torn tail). Returns the
/// offset one past the last valid frame. The single definition of what "a
/// valid frame prefix" means — Open's cursor scan, replay, and the legacy
/// migration all walk through here.
Result<uint64_t> WalkFrames(
    PagedFile* file, uint64_t offset, uint64_t size,
    const std::function<Status(uint64_t, const Slice&)>& fn) {
  std::vector<char> buf;
  while (offset + kFrameHeader <= size) {
    char header[kFrameHeader];
    NEOSI_RETURN_IF_ERROR(file->ReadAt(offset, kFrameHeader, header));
    const uint32_t len = DecodeFixed32(header);
    const uint32_t crc = DecodeFixed32(header + 4);
    if (len == 0 || offset + kFrameHeader + len > size) break;
    buf.resize(len);
    NEOSI_RETURN_IF_ERROR(file->ReadAt(offset + kFrameHeader, len,
                                       buf.data()));
    if (Crc32c(buf.data(), len) != crc) break;
    NEOSI_RETURN_IF_ERROR(fn(offset, Slice(buf.data(), len)));
    offset += kFrameHeader + len;
  }
  return offset;
}

/// True iff `name` is `prefix` followed by one or more digits; extracts the
/// numeric suffix.
bool ParseIndexed(const std::string& name, const std::string& prefix,
                  uint64_t* index) {
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix))
    return false;
  uint64_t value = 0;
  for (size_t i = prefix.size(); i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *index = value;
  return true;
}

}  // namespace

std::string Wal::SegmentName(uint64_t index) {
  return IndexedName("wal.", index);
}

std::string Wal::FreeName(uint64_t index) {
  return IndexedName("wal.free.", index);
}

std::string Wal::PrepName(uint64_t seq) {
  return IndexedName("wal.prep.", seq);
}

Wal::Wal(std::shared_ptr<WalDir> dir, WalOptions options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.segment_size < kSegmentHeaderSize + kFrameHeader) {
    options_.segment_size = kSegmentHeaderSize + kFrameHeader;
  }
}

Wal::~Wal() { StopFlusher(); }

// --- sticky poison state --------------------------------------------------

Status Wal::PoisonedStatusLocked() const {
  return Status::IOError("wal poisoned by earlier sync failure (" +
                         poison_cause_.ToString() +
                         "); reopen the store to recover");
}

Status Wal::PoisonedStatus() const {
  if (!poisoned_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> guard(flush_mu_);
  return PoisonedStatusLocked();
}

Status Wal::CheckPoisoned() const {
  if (!poisoned_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> guard(flush_mu_);
  return PoisonedStatusLocked();
}

void Wal::Poison(const Status& cause) {
  // Recovery-time failures stay fail-stop: Open() itself errors out and no
  // state survives to need poisoning.
  if (!open_complete_.load(std::memory_order_acquire)) return;
  std::vector<std::shared_ptr<FlushWaiter>> wake;
  {
    std::lock_guard<std::mutex> guard(flush_mu_);
    if (!poisoned_.load(std::memory_order_relaxed)) {
      poison_cause_ = cause;
      // RELEASE-publish after the cause is recorded: CheckPoisoned()'s
      // acquire load then always finds the cause it is about to report.
      poisoned_.store(true, std::memory_order_release);
    }
    // Fail every parked commit ack whose flush will now never happen.
    for (auto& [lsn, waiter] : flush_waiters_) wake.push_back(waiter);
    flush_waiters_.clear();
  }
  for (auto& waiter : wake) waiter->cv.notify_all();
  flush_cv_.notify_all();
}

Status Wal::WriteSegmentHeader(PagedFile* file, Lsn base, uint64_t epoch) {
  char buf[kSegmentHeaderSize] = {};
  EncodeFixed32(buf, kSegmentMagic);
  EncodeFixed32(buf + 4, kSegmentVersion);
  EncodeFixed64(buf + 8, base);
  EncodeFixed64(buf + 16, epoch);
  EncodeFixed32(buf + kSegmentCrcOffset, Crc32c(buf, kSegmentCrcOffset));
  return file->WriteAt(0, buf, kSegmentHeaderSize);
}

Status Wal::ReadSegmentHeader(PagedFile* file, Lsn* base, uint64_t* epoch,
                              bool* valid) {
  *valid = false;
  if (file->Size() < kSegmentHeaderSize) return Status::OK();
  char buf[kSegmentHeaderSize];
  NEOSI_RETURN_IF_ERROR(file->ReadAt(0, kSegmentHeaderSize, buf));
  if (DecodeFixed32(buf) != kSegmentMagic) return Status::OK();
  if (DecodeFixed32(buf + kSegmentCrcOffset) !=
      Crc32c(buf, kSegmentCrcOffset)) {
    return Status::OK();  // Torn header (crash during segment creation).
  }
  if (DecodeFixed32(buf + 4) != kSegmentVersion) {
    return Status::Corruption("wal segment header: unsupported version");
  }
  *base = DecodeFixed64(buf + 8);
  *epoch = DecodeFixed64(buf + 16);
  *valid = true;
  return Status::OK();
}

Status Wal::AddSegmentLocked(Lsn base) {
  {
    std::unique_ptr<PreparedSegment> prep;
    {
      std::lock_guard<std::mutex> guard(seg_mu_);
      prep = std::move(prepared_);
    }
    if (prep != nullptr) return AdoptPreparedLocked(base, std::move(prep));
  }
  const uint64_t index = next_index_;
  const std::string name = SegmentName(index);
  std::string free_name;
  {
    std::lock_guard<std::mutex> guard(seg_mu_);
    if (!free_pool_.empty()) {
      free_name = free_pool_.front();
      free_pool_.pop_front();
    }
  }
  std::unique_ptr<PagedFile> file;
  Status s;
  if (!free_name.empty()) {
    // Recycle: rewrite the file (truncate + header + sync) while it still
    // carries its free-pool name, then publish it into the chain with one
    // atomic rename. A crash before the rename leaves a free file that Open
    // ignores; after it, a valid empty segment.
    s = dir_->Open(free_name, &file);
    if (s.ok()) s = file->Truncate(0);
    if (s.ok()) s = WriteSegmentHeader(file.get(), base, epoch_);
    if (s.ok()) s = file->Sync();
    if (!s.ok()) {
      Poison(s);  // A failed fsync of the next chain link is sticky too.
      return s;   // Still free-named: ignored at any reopen.
    }
    s = dir_->Rename(free_name, name);
    if (!s.ok()) return s;
    s = fault_hooks.Check("wal.dirsync.rename");
    if (s.ok()) s = dir_->SyncDir();
    if (!s.ok()) {
      Poison(s);
      return s;
    }
    segments_reused_.fetch_add(1, std::memory_order_relaxed);
  } else {
    NEOSI_RETURN_IF_ERROR(dir_->Open(name, &file));
    // Truncate even the "fresh" file: a failed rollback Remove can leave a
    // prior life of this index on disk, and stale valid-CRC frames beyond
    // the new prefix would otherwise be replayable after a crash.
    s = file->Truncate(0);
    if (s.ok()) s = WriteSegmentHeader(file.get(), base, epoch_);
    if (s.ok()) s = file->Sync();
    if (s.ok()) {
      s = fault_hooks.Check("wal.dirsync.create");
      if (s.ok()) s = dir_->SyncDir();
    }
    if (!s.ok()) {
      // Take the half-created file back out of the chain position (see the
      // post_create cleanup below for why leaving it would be fatal).
      file.reset();
      (void)dir_->Remove(name);
      (void)dir_->SyncDir();
      Poison(s);
      return s;
    }
    segments_created_.fetch_add(1, std::memory_order_relaxed);
  }
  // The segment file exists with a synced header but is not yet active: a
  // crash RIGHT HERE leaves a chain Open() accepts (a valid empty newest
  // segment).
  if (s.ok()) s = fault_hooks.Check("wal.segment.post_create");
  if (!s.ok()) {
    // Transient failure with the file already sitting in the chain
    // position ON DISK but not adopted in memory. A process that keeps
    // running would desynchronize the chains — smaller later frames can
    // keep fitting into the previous segment, growing it past this file's
    // recorded base — so take the file back out before surfacing the
    // error. (A real crash performs no cleanup; Open() handles that state
    // instead.)
    file.reset();
    (void)dir_->Remove(name);
    (void)dir_->SyncDir();
    return s;
  }

  auto segment = std::make_unique<Segment>();
  segment->index = index;
  segment->base = base;
  segment->epoch = epoch_;
  segment->file = std::move(file);
  {
    std::lock_guard<std::mutex> guard(seg_mu_);
    segments_.push_back(std::move(segment));
    active_.store(segments_.back().get(), std::memory_order_release);
    segment_count_.store(segments_.size(), std::memory_order_release);
  }
  next_index_ = index + 1;
  return Status::OK();
}

Status Wal::AdoptPreparedLocked(Lsn base,
                                std::unique_ptr<PreparedSegment> prep) {
  const uint64_t index = next_index_;
  const std::string name = SegmentName(index);
  Status s;
  // At most ONE adoption rename may be un-dir-synced at a time: if the
  // previous one is still pending, make it durable before renaming again —
  // otherwise a crash could persist THIS rename but not the previous one
  // and leave an index gap Open() rightly refuses.
  if (dir_sync_pending_.exchange(false, std::memory_order_acq_rel)) {
    s = fault_hooks.Check("wal.dirsync.rename");
    if (s.ok()) s = dir_->SyncDir();
    if (!s.ok()) {
      dir_sync_pending_.store(true, std::memory_order_release);
      Poison(s);
      return s;
    }
  }
  s = dir_->Rename(prep->name, name);
  if (s.ok()) {
    // BUFFERED header write — no fsync on the append path. Safe to defer:
    // an ack requires a flush of this (about to be active) file, and that
    // same fsync covers the header. A crash before any flush leaves an
    // invalid header on the NEWEST segment, which Open() discards — and
    // nothing acked can have lived there.
    s = WriteSegmentHeader(prep->file.get(), base, epoch_);
  }
  if (s.ok()) s = fault_hooks.Check("wal.segment.post_create");
  if (!s.ok()) {
    // Same cleanup contract as the inline path: the file must not squat in
    // the chain position while the process keeps running. If the rename
    // itself failed the prep name survives instead — remove that.
    prep->file.reset();
    (void)dir_->Remove(name);
    (void)dir_->Remove(prep->name);
    (void)dir_->SyncDir();
    NudgeFlusherPrep();
    return s;
  }
  // The rename's dir entry rides the flusher's next pass (or the next
  // roll, whichever comes first).
  dir_sync_pending_.store(true, std::memory_order_release);

  auto segment = std::make_unique<Segment>();
  segment->index = index;
  segment->base = base;
  segment->epoch = epoch_;
  segment->file = std::move(prep->file);
  {
    std::lock_guard<std::mutex> guard(seg_mu_);
    segments_.push_back(std::move(segment));
    active_.store(segments_.back().get(), std::memory_order_release);
    segment_count_.store(segments_.size(), std::memory_order_release);
  }
  next_index_ = index + 1;
  (prep->from_free_pool ? segments_reused_ : segments_created_)
      .fetch_add(1, std::memory_order_relaxed);
  segments_preallocated_.fetch_add(1, std::memory_order_relaxed);
  NudgeFlusherPrep();
  return Status::OK();
}

Status Wal::SyncRetiringLocked(Segment* retiring) {
  Status fault = fault_hooks.Check("wal.sync.retiring");
  if (!fault.ok()) {
    SimulateSyncLoss(retiring->file, retiring->base);
    Poison(fault);
    return fault;
  }
  Status s = retiring->file->Sync();
  if (!s.ok()) Poison(s);
  return s;
}

Status Wal::MigrateLegacyLog() {
  std::unique_ptr<PagedFile> legacy;
  NEOSI_RETURN_IF_ERROR(dir_->Open(kLegacyName, &legacy));
  const uint64_t size = legacy->Size();

  Lsn head = 0, base = 0;
  uint64_t frames_at = 0;
  char slots[kLegacyHeaderSize] = {};
  if (size > 0) {
    NEOSI_RETURN_IF_ERROR(legacy->ReadAt(
        0, std::min<uint64_t>(size, kLegacyHeaderSize), slots));
  }
  bool any_magic = false, found = false;
  uint32_t best_seq = 0;
  for (int i = 0; i < 2; ++i) {
    const char* slot = slots + i * kLegacySlotSize;
    if (DecodeFixed32(slot) != kLegacyMagic) continue;
    any_magic = true;
    if (DecodeFixed32(slot + kLegacyCrcOffset) !=
        Crc32c(slot, kLegacyCrcOffset)) {
      continue;
    }
    if (DecodeFixed32(slot + 4) != kLegacyVersion) {
      return Status::Corruption("legacy wal header: unsupported version");
    }
    const uint32_t seq = DecodeFixed32(slot + 24);
    if (!found || seq > best_seq) {
      found = true;
      best_seq = seq;
      head = DecodeFixed64(slot + 8);
      base = DecodeFixed64(slot + 16);
    }
  }
  if (found) {
    if (head < base) {
      return Status::Corruption("legacy wal header: head < base");
    }
    frames_at = kLegacyHeaderSize + (head - base);
  } else if (any_magic) {
    if (size > kLegacyHeaderSize) {
      return Status::Corruption("legacy wal header: both slots unreadable");
    }
    // Crash during the very first header write of a fresh legacy log: no
    // frames exist.
    head = 0;
    frames_at = size;  // Nothing to walk.
  }
  // else: headerless v1 file, frames from byte 0 with head = 0.

  // Anchor the fresh chain at the legacy head so lsns are preserved —
  // checkpoint markers inside the copied records keep meaning the same
  // byte positions.
  NEOSI_RETURN_IF_ERROR(AddSegmentLocked(head));
  head_lsn_.store(head, std::memory_order_relaxed);
  next_lsn_.store(head, std::memory_order_relaxed);

  // Copy the valid frame prefix, re-framed into segments (rolling at the
  // size threshold). Stops at a torn tail exactly like replay would.
  std::string frame;
  auto copied = WalkFrames(
      legacy.get(), frames_at, size,
      [&](uint64_t, const Slice& payload) {
        frame.clear();
        PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
        PutFixed32(&frame, Crc32c(payload.data(), payload.size()));
        frame.append(payload.data(), payload.size());
        const Lsn lsn = next_lsn_.load(std::memory_order_relaxed);
        NEOSI_RETURN_IF_ERROR(
            WriteFrameAtLocked(lsn, frame.data(), frame.size()));
        next_lsn_.store(lsn + frame.size(), std::memory_order_relaxed);
        return Status::OK();
      });
  if (!copied.ok()) return copied.status();

  // Durability order: the copied chain reaches stable storage before the
  // legacy file disappears. A crash before the Remove leaves wal.log in
  // place and the next Open redoes the whole migration from scratch.
  Segment* active = active_.load(std::memory_order_relaxed);
  NEOSI_RETURN_IF_ERROR(active->file->Sync());
  NEOSI_RETURN_IF_ERROR(dir_->SyncDir());
  legacy.reset();
  NEOSI_RETURN_IF_ERROR(dir_->Remove(kLegacyName));
  return dir_->SyncDir();
}

Status Wal::Open() {
  NEOSI_RETURN_IF_ERROR(OpenChain());
  // Everything recovery kept was read back from the files themselves, so
  // the watermark starts at the cursor.
  flushed_lsn_.store(next_lsn_.load(std::memory_order_relaxed),
                     std::memory_order_release);
  // From here on sync failures poison instead of failing the open.
  open_complete_.store(true, std::memory_order_release);
  StartFlusher();
  return Status::OK();
}

Status Wal::OpenChain() {
  std::vector<std::string> names;
  NEOSI_RETURN_IF_ERROR(dir_->List(&names));

  bool legacy = false;
  std::vector<std::pair<uint64_t, std::string>> chain_names;
  std::vector<std::pair<uint64_t, std::string>> free_names;
  std::vector<std::string> prep_names;
  for (const std::string& name : names) {
    uint64_t index = 0;
    if (name == kLegacyName) {
      legacy = true;
    } else if (ParseIndexed(name, "wal.free.", &index)) {
      free_names.emplace_back(index, name);
    } else if (ParseIndexed(name, "wal.prep.", &index)) {
      prep_names.push_back(name);
    } else if (ParseIndexed(name, "wal.", &index)) {
      chain_names.emplace_back(index, name);
    }
    // Anything else in the directory (store files) is not ours.
  }

  // Stale pre-allocations from the previous life — headerless scratch, or
  // an adoption whose rename never became durable (then the frames in it
  // were never flushed-acked, see the adoption protocol). Either way: not
  // part of the chain, remove.
  for (const std::string& name : prep_names) {
    NEOSI_RETURN_IF_ERROR(dir_->Remove(name));
  }
  if (!prep_names.empty()) {
    NEOSI_RETURN_IF_ERROR(dir_->SyncDir());
  }
  std::sort(chain_names.begin(), chain_names.end());
  std::sort(free_names.begin(), free_names.end());

  next_index_ = 1;
  for (const auto& [index, name] : chain_names) {
    next_index_ = std::max(next_index_, index + 1);
  }
  for (const auto& [index, name] : free_names) {
    next_index_ = std::max(next_index_, index + 1);
  }

  // Adopt free files into the recycle pool up to its cap; drop the rest.
  for (const auto& [index, name] : free_names) {
    if (free_pool_.size() < options_.recycle_segments) {
      free_pool_.push_back(name);
    } else {
      NEOSI_RETURN_IF_ERROR(dir_->Remove(name));
    }
  }

  if (legacy) {
    // Any segments next to a surviving wal.log are partial-migration
    // leftovers (the legacy file is removed only after the copied chain is
    // durable): drop them and restart the migration from scratch.
    for (const auto& [index, name] : chain_names) {
      NEOSI_RETURN_IF_ERROR(dir_->Remove(name));
    }
    return MigrateLegacyLog();
  }

  for (size_t i = 0; i < chain_names.size(); ++i) {
    const auto& [index, name] = chain_names[i];
    std::unique_ptr<PagedFile> file;
    NEOSI_RETURN_IF_ERROR(dir_->Open(name, &file));
    Lsn base = 0;
    uint64_t epoch = 0;
    bool valid = false;
    NEOSI_RETURN_IF_ERROR(
        ReadSegmentHeader(file.get(), &base, &epoch, &valid));
    if (!valid) {
      if (i + 1 == chain_names.size()) {
        // Crash while creating the newest segment: its header never became
        // durable, so no frame can have entered it (appends only target a
        // segment after its header synced). Discard the husk.
        file.reset();
        NEOSI_RETURN_IF_ERROR(dir_->Remove(name));
        NEOSI_RETURN_IF_ERROR(dir_->SyncDir());
        break;
      }
      return Status::Corruption("wal segment " + name +
                                ": bad header inside the chain");
    }
    auto segment = std::make_unique<Segment>();
    segment->index = index;
    segment->base = base;
    segment->epoch = epoch;
    segment->file = std::move(file);
    segments_.push_back(std::move(segment));
  }

  // Chain validation: indices contiguous (a missing middle segment is a
  // hole in the lsn space), bases strictly increasing (an out-of-order or
  // duplicated base means an orphan from some other life of the log).
  for (size_t i = 1; i < segments_.size(); ++i) {
    if (segments_[i]->index != segments_[i - 1]->index + 1) {
      return Status::Corruption(
          "wal segment gap: " + SegmentName(segments_[i - 1]->index) +
          " is followed by " + SegmentName(segments_[i]->index));
    }
    if (segments_[i]->base <= segments_[i - 1]->base) {
      return Status::Corruption(
          "wal segment order: " + SegmentName(segments_[i]->index) +
          " base does not advance past its predecessor");
    }
  }

  uint64_t max_epoch = 0;
  for (const auto& segment : segments_) {
    max_epoch = std::max(max_epoch, segment->epoch);
  }
  epoch_ = max_epoch + 1;

  if (segments_.empty()) {
    return AddSegmentLocked(0);  // head_lsn_ and next_lsn_ stay 0.
  }

  {
    std::lock_guard<std::mutex> guard(seg_mu_);
    active_.store(segments_.back().get(), std::memory_order_release);
    segment_count_.store(segments_.size(), std::memory_order_release);
  }
  head_lsn_.store(segments_.front()->base, std::memory_order_relaxed);

  // Position the cursor after the newest segment's valid frame prefix,
  // truncating a torn tail (crash mid-append). Older segments were synced
  // before the chain rolled past them; their frames are validated when
  // replay actually reads them.
  Segment* active = active_.load(std::memory_order_relaxed);
  const uint64_t size = active->file->Size();
  auto end = WalkFrames(active->file.get(), kSegmentHeaderSize, size,
                        [](uint64_t, const Slice&) { return Status::OK(); });
  if (!end.ok()) return end.status();
  if (*end < size) {
    NEOSI_RETURN_IF_ERROR(active->file->Truncate(*end));
  }
  next_lsn_.store(active->base + (*end - kSegmentHeaderSize),
                  std::memory_order_relaxed);
  return Status::OK();
}

void Wal::AwaitAppendGate() {
  if (!gate_closed_.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lock(gate_mu_);
  gate_cv_.wait(lock, [this] {
    return !gate_closed_.load(std::memory_order_acquire);
  });
}

void Wal::LockAppendLatch() {
  // The gate must be re-validated UNDER the latch: an appender that passed
  // the gate check, got descheduled, and acquired the latch only after
  // BlockAppends' barrier had already swept it would otherwise append (and
  // pin) into a log the legacy checkpoint is about to Reset().
  for (;;) {
    AwaitAppendGate();
    latch_.lock();
    if (!gate_closed_.load(std::memory_order_acquire)) return;
    latch_.unlock();
  }
}

void Wal::BlockAppends() {
  {
    std::lock_guard<std::mutex> guard(gate_mu_);
    gate_closed_.store(true, std::memory_order_release);
  }
  // Barrier: any appender that passed the gate before it closed has either
  // finished its latch section (record written, pin registered) or is inside
  // it; taking the latch once waits those out.
  std::lock_guard<SpinLatch> barrier(latch_);
}

void Wal::UnblockAppends() {
  {
    std::lock_guard<std::mutex> guard(gate_mu_);
    gate_closed_.store(false, std::memory_order_release);
  }
  gate_cv_.notify_all();
}

void Wal::WaitPinsDrained() {
  std::unique_lock<std::mutex> lock(pins_mu_);
  pins_cv_.wait(lock, [this] { return pins_.empty(); });
}

void Wal::RollbackUnpublishedSegmentsLocked() {
  for (;;) {
    std::string victim;
    {
      std::lock_guard<std::mutex> guard(seg_mu_);
      if (segments_.size() <= 1 ||
          segments_.back()->base <=
              next_lsn_.load(std::memory_order_relaxed)) {
        break;
      }
      // The segment holds no published frame (its base is above the
      // cursor): un-roll it so the cursor's segment is active again —
      // otherwise every later append would compute its offset against a
      // base ABOVE the cursor and underflow.
      next_index_ = segments_.back()->index;
      victim = SegmentName(segments_.back()->index);
      segments_.pop_back();
      active_.store(segments_.back().get(), std::memory_order_release);
      segment_count_.store(segments_.size(), std::memory_order_release);
    }
    // Best-effort, but dir-synced: an un-durable unlink could resurrect
    // this file after a crash with a base the surviving active segment has
    // since grown past, and Open() would refuse the chain. A leftover from
    // a FAILED remove is defused at the next roll, which reuses the index
    // and truncates the file before writing its fresh header.
    (void)dir_->Remove(victim);
    (void)dir_->SyncDir();
  }
}

Status Wal::WriteFrameAtLocked(Lsn lsn, const char* data, size_t n) {
  Segment* active = active_.load(std::memory_order_relaxed);
  uint64_t phys = kSegmentHeaderSize + (lsn - active->base);
  if (lsn > active->base && phys + n > options_.segment_size) {
    // Roll: the retiring segment is synced BEFORE the new one enters the
    // chain, so a valid-prefix walk can stop early only in the newest
    // segment. (A frame larger than a whole segment gets one to itself —
    // the roll happens, the oversized write below still succeeds.) This
    // sync stays on the append path even with a flusher: older segments
    // must be fully durable before the chain grows past them.
    NEOSI_RETURN_IF_ERROR(SyncRetiringLocked(active));
    NEOSI_RETURN_IF_ERROR(AddSegmentLocked(lsn));
    active = active_.load(std::memory_order_relaxed);
    phys = kSegmentHeaderSize;
    // Post-roll write-failure crash point — same site the batched path
    // exposes, so single-record appenders (the replica applier's re-log
    // path) exercise the un-roll too.
    NEOSI_RETURN_IF_ERROR(fault_hooks.Check("wal.append.fail_after_roll"));
  }
  return active->file->WriteAt(phys, data, n);
}

Result<Lsn> Wal::Append(const WalRecord& record, bool pin, Lsn* end_lsn) {
  std::string payload;
  record.EncodeTo(&payload);

  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, Crc32c(payload.data(), payload.size()));
  frame.append(payload);

  LockAppendLatch();
  std::lock_guard<SpinLatch> guard(latch_, std::adopt_lock);
  // Sticky-poison check on the single-record path too — an appender must
  // not grow a log whose durability is already unprovable.
  NEOSI_RETURN_IF_ERROR(CheckPoisoned());
  const Lsn lsn = next_lsn_.load(std::memory_order_relaxed);
  {
    Status fault = fault_hooks.Check("wal.append.mid_frame");
    if (!fault.ok()) {
      // Simulated mid-append crash: half the frame lands, the cursor never
      // advances. Recovery must detect and truncate the torn bytes.
      Segment* active = active_.load(std::memory_order_relaxed);
      active->file->WriteAt(kSegmentHeaderSize + (lsn - active->base),
                            frame.data(), frame.size() / 2);
      return fault;
    }
  }
  {
    Status s = WriteFrameAtLocked(lsn, frame.data(), frame.size());
    if (!s.ok()) {
      RollbackUnpublishedSegmentsLocked();
      return s;
    }
  }
  if (pin) {
    std::lock_guard<std::mutex> pin_guard(pins_mu_);
    pins_.insert(lsn);
  }
  // Release-publish AFTER the pin is registered: StableLsn() reads the
  // cursor first, so any record it can observe below the cursor has its pin
  // already visible (or has been deliberately appended unpinned).
  next_lsn_.store(lsn + frame.size(), std::memory_order_release);
  if (end_lsn != nullptr) *end_lsn = lsn + frame.size();
  return lsn;
}

Status Wal::AppendBatch(const std::vector<const WalRecord*>& records,
                        std::vector<Lsn>* lsns,
                        const std::vector<bool>* pins) {
  lsns->clear();
  lsns->reserve(records.size());

  // Encode every frame into one contiguous buffer outside the latch.
  std::string buffer;
  std::vector<uint64_t> frame_offsets;
  frame_offsets.reserve(records.size());
  std::string payload;
  for (const WalRecord* record : records) {
    payload.clear();
    record->EncodeTo(&payload);
    frame_offsets.push_back(buffer.size());
    PutFixed32(&buffer, static_cast<uint32_t>(payload.size()));
    PutFixed32(&buffer, Crc32c(payload.data(), payload.size()));
    buffer.append(payload);
  }
  auto frame_len = [&](size_t i) {
    return (i + 1 < frame_offsets.size() ? frame_offsets[i + 1]
                                         : buffer.size()) -
           frame_offsets[i];
  };

  LockAppendLatch();
  std::lock_guard<SpinLatch> guard(latch_, std::adopt_lock);
  NEOSI_RETURN_IF_ERROR(CheckPoisoned());
  const Lsn first = next_lsn_.load(std::memory_order_relaxed);
  {
    Status fault = fault_hooks.Check("wal.append.mid_frame");
    if (!fault.ok()) {
      // Simulated mid-append crash for the batched path: half the batch's
      // bytes land, the cursor never advances.
      Segment* active = active_.load(std::memory_order_relaxed);
      active->file->WriteAt(kSegmentHeaderSize + (first - active->base),
                            buffer.data(), buffer.size() / 2);
      return fault;
    }
  }
  // The lsn space is contiguous across segment rolls, so every record's lsn
  // is just first + its offset in the batch; only the physical writes split
  // at segment boundaries. Write maximal runs of frames that fit the
  // current segment with single writes.
  size_t idx = 0;
  bool rolled = false;
  Status write_status;
  while (idx < frame_offsets.size()) {
    const Lsn lsn = first + frame_offsets[idx];
    Segment* active = active_.load(std::memory_order_relaxed);
    uint64_t phys = kSegmentHeaderSize + (lsn - active->base);
    if (lsn > active->base &&
        phys + frame_len(idx) > options_.segment_size) {
      write_status = SyncRetiringLocked(active);
      if (write_status.ok()) write_status = AddSegmentLocked(lsn);
      if (!write_status.ok()) break;
      rolled = true;
      active = active_.load(std::memory_order_relaxed);
      phys = kSegmentHeaderSize;
    }
    if (rolled) {
      // Post-roll write-failure crash point: exercises the un-roll below.
      write_status = fault_hooks.Check("wal.append.fail_after_roll");
      if (!write_status.ok()) break;
    }
    size_t end = idx + 1;
    uint64_t run_bytes = frame_len(idx);
    while (end < frame_offsets.size() &&
           phys + run_bytes + frame_len(end) <= options_.segment_size) {
      run_bytes += frame_len(end);
      ++end;
    }
    write_status = active->file->WriteAt(
        phys, buffer.data() + frame_offsets[idx], run_bytes);
    if (!write_status.ok()) break;
    idx = end;
  }
  if (!write_status.ok()) {
    // A mid-batch failure after a roll would otherwise strand the cursor
    // below the fresh segment's base — drop every unpublished segment so
    // the next append lands back at the cursor, overwriting the partial
    // batch exactly like a failed single append always has.
    RollbackUnpublishedSegmentsLocked();
    return write_status;
  }
  for (uint64_t frame_offset : frame_offsets) {
    lsns->push_back(first + frame_offset);
  }
  if (pins != nullptr) {
    std::lock_guard<std::mutex> pin_guard(pins_mu_);
    for (size_t i = 0; i < lsns->size(); ++i) {
      if ((*pins)[i]) pins_.insert((*lsns)[i]);
    }
  }
  next_lsn_.store(first + buffer.size(), std::memory_order_release);
  return Status::OK();
}

Status Wal::Sync() {
  NEOSI_RETURN_IF_ERROR(CheckPoisoned());
  if (UseAsyncFlush()) {
    const Lsn target = next_lsn_.load(std::memory_order_acquire);
    NEOSI_RETURN_IF_ERROR(RequestFlush(target));
    return WaitFlushed(target);
  }
  return FlushOnce();
}

void Wal::SimulateSyncLoss(const std::shared_ptr<PagedFile>& file, Lsn base) {
  // After a failed fsync the kernel keeps the file's CLEAN pages (anything
  // a previous successful fsync covered) but drops the dirty ones — a later
  // fsync returning OK says nothing about them. Model that by truncating
  // everything beyond the flushed watermark; when no flush ever covered
  // this segment, even its header's durability is unknown (adoption writes
  // it buffered), so the whole file goes.
  const Lsn flushed = flushed_lsn_.load(std::memory_order_acquire);
  const uint64_t keep =
      flushed > base ? kSegmentHeaderSize + (flushed - base) : 0;
  if (file->Size() > keep) (void)file->Truncate(keep);
}

Status Wal::FlushOnce() {
  // Serialized: one syncer's fault-check → page-drop → poison-publish
  // sequence is atomic against a peer's fsync, so no fsync can observe a
  // healthy file, miss the poison flag, and report OK after a peer's EIO
  // already dropped pages (the satellite race: two inline Sync()s, one
  // injected).
  std::lock_guard<std::mutex> sync_guard(sync_mu_);
  NEOSI_RETURN_IF_ERROR(CheckPoisoned());
  // Cursor FIRST, file snapshot second: any frame below the cursor read
  // here is either in the file snapshotted next, or in an older segment a
  // roll already retiring-synced — so fsyncing the snapshot really does
  // make everything below `durable_upto` durable. (The reverse order could
  // advance the watermark past frames that went into a segment created
  // after the snapshot.)
  const Lsn durable_upto = next_lsn_.load(std::memory_order_acquire);
  // The shared handle keeps the file alive if the legacy stop-the-world
  // checkpoint Reset()s the chain mid-sync (fsync of an unlinked file is
  // harmless).
  std::shared_ptr<PagedFile> file;
  Lsn base = 0;
  {
    std::lock_guard<std::mutex> guard(seg_mu_);
    if (segments_.empty()) {
      AdvanceFlushed(durable_upto);
      return Status::OK();
    }
    file = segments_.back()->file;
    base = segments_.back()->base;
  }
  Status fault = fault_hooks.Check("wal.sync.fail");
  if (!fault.ok()) {
    SimulateSyncLoss(file, base);
    Poison(fault);
    return fault;
  }
  Status s = SyncForFlush(file.get());
  if (!s.ok()) {
    Poison(s);
    return s;
  }
  // File BEFORE directory: once the deferred dir-sync lands, the adopted
  // segment's header is already durable, so a crash can never leave a
  // durable dir entry pointing at a headerless file that is not the newest.
  if (dir_sync_pending_.exchange(false, std::memory_order_acq_rel)) {
    Status d = fault_hooks.Check("wal.dirsync.rename");
    if (d.ok()) d = dir_->SyncDir();
    if (!d.ok()) {
      dir_sync_pending_.store(true, std::memory_order_release);
      Poison(d);
      return d;
    }
  }
  AdvanceFlushed(durable_upto);
  return Status::OK();
}

Status Wal::RequestFlush(Lsn target) {
  NEOSI_RETURN_IF_ERROR(CheckPoisoned());
  {
    std::lock_guard<std::mutex> guard(flush_mu_);
    if (target > flush_target_) flush_target_ = target;
  }
  flush_cv_.notify_all();
  return Status::OK();
}

Status Wal::WaitFlushed(Lsn target) {
  if (flushed_lsn_.load(std::memory_order_acquire) >= target) {
    return Status::OK();
  }
  std::unique_lock<std::mutex> lock(flush_mu_);
  for (;;) {
    // Watermark first: data that made it to disk stays acked even if the
    // log was poisoned a moment later.
    if (flushed_lsn_.load(std::memory_order_acquire) >= target) {
      return Status::OK();
    }
    if (poisoned_.load(std::memory_order_acquire)) {
      return PoisonedStatusLocked();
    }
    auto& ref = flush_waiters_[target];
    if (ref == nullptr) ref = std::make_shared<FlushWaiter>();
    std::shared_ptr<FlushWaiter> slot = ref;  // Pin across the erase.
    slot->cv.wait(lock);
  }
}

void Wal::AdvanceFlushed(Lsn upto) {
  std::vector<std::shared_ptr<FlushWaiter>> wake;
  {
    std::lock_guard<std::mutex> guard(flush_mu_);
    if (upto <= flushed_lsn_.load(std::memory_order_relaxed)) return;
    flushed_lsn_.store(upto, std::memory_order_release);
    const auto end = flush_waiters_.upper_bound(upto);
    for (auto it = flush_waiters_.begin(); it != end; ++it) {
      wake.push_back(it->second);
    }
    flush_waiters_.erase(flush_waiters_.begin(), end);
  }
  for (auto& waiter : wake) waiter->cv.notify_all();
}

void Wal::NudgeFlusherPrep() {
  if (!options_.preallocate ||
      !flusher_running_.load(std::memory_order_acquire)) {
    return;
  }
  {
    std::lock_guard<std::mutex> guard(flush_mu_);
    prep_nudge_ = true;
  }
  flush_cv_.notify_all();
}

void Wal::PrepareSegmentOffPath() {
  if (poisoned_.load(std::memory_order_acquire)) return;
  auto prep = std::make_unique<PreparedSegment>();
  {
    std::lock_guard<std::mutex> guard(seg_mu_);
    if (prepared_ != nullptr) return;
    if (!free_pool_.empty()) {
      prep->name = free_pool_.front();
      free_pool_.pop_front();
      prep->from_free_pool = true;
    }
  }
  if (!prep->from_free_pool) prep->name = PrepName(prep_seq_++);
  std::unique_ptr<PagedFile> file;
  Status s = dir_->Open(prep->name, &file);
  if (s.ok()) s = file->Truncate(0);
  if (s.ok()) s = file->Preallocate(options_.segment_size);
  if (!s.ok()) {
    // Allocation-class failure (ENOSPC and friends): abandon the prep —
    // the next roll falls back to the inline path, which may still succeed
    // with a plain sparse file. Not a durability statement, so no poison.
    file.reset();
    std::lock_guard<std::mutex> guard(seg_mu_);
    if (prep->from_free_pool) free_pool_.push_front(prep->name);
    return;
  }
  s = file->Sync();
  if (s.ok() && !prep->from_free_pool) {
    // Fresh file: make its dir entry durable off-path so adoption's only
    // directory work is the rename.
    s = fault_hooks.Check("wal.dirsync.create");
    if (s.ok()) s = dir_->SyncDir();
  }
  if (!s.ok()) {
    // An fsync/dir-sync failure in the WAL directory IS a durability
    // statement: fail sticky, same as on-path syncs.
    file.reset();
    (void)dir_->Remove(prep->name);
    Poison(s);
    return;
  }
  prep->file = std::move(file);
  std::lock_guard<std::mutex> guard(seg_mu_);
  prepared_ = std::move(prep);
}

void Wal::StartFlusher() {
  if (!(options_.async_flush || options_.preallocate)) return;
  if (flusher_.joinable()) return;
  {
    std::lock_guard<std::mutex> guard(flush_mu_);
    flusher_stop_ = false;
    prep_nudge_ = options_.preallocate;
  }
  flusher_ = std::thread([this] { FlusherMain(); });
  flusher_running_.store(true, std::memory_order_release);
}

void Wal::StopFlusher() {
  if (!flusher_.joinable()) return;
  flusher_running_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> guard(flush_mu_);
    flusher_stop_ = true;
  }
  flush_cv_.notify_all();
  flusher_.join();
}

void Wal::FlusherMain() {
  std::unique_lock<std::mutex> lock(flush_mu_);
  for (;;) {
    flush_cv_.wait(lock, [this] {
      if (flusher_stop_) return true;
      if (poisoned_.load(std::memory_order_relaxed)) return false;
      if (flush_target_ > flushed_lsn_.load(std::memory_order_relaxed)) {
        return true;
      }
      return options_.preallocate && prep_nudge_;
    });
    if (flusher_stop_) return;
    if (flush_target_ > flushed_lsn_.load(std::memory_order_relaxed)) {
      lock.unlock();
      // Failure poisons inside FlushOnce, which also fails every waiter —
      // nothing further to do here; the predicate goes quiet.
      (void)FlushOnce();
      lock.lock();
      continue;
    }
    if (prep_nudge_) {
      prep_nudge_ = false;
      lock.unlock();
      PrepareSegmentOffPath();
      lock.lock();
    }
  }
}

void Wal::Unpin(Lsn lsn) {
  std::lock_guard<std::mutex> guard(pins_mu_);
  pins_.erase(lsn);
  if (pins_.empty()) pins_cv_.notify_all();
}

Lsn Wal::StableLsn() const {
  // Cursor FIRST, pins second: a pin is registered before the cursor
  // advances past its record, so any record visible below `cursor` is
  // either pinned here or already safely applied.
  const Lsn cursor = next_lsn_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> guard(pins_mu_);
  if (pins_.empty()) return cursor;
  return std::min(cursor, *pins_.begin());
}

size_t Wal::PinnedCount() const {
  std::lock_guard<std::mutex> guard(pins_mu_);
  return pins_.size();
}

Status Wal::RetireSegmentFile(const std::string& name, uint64_t index) {
  // Retirements are serialized (trunc_mu_), but appender rolls pop the pool
  // concurrently — the free name must not be published until the rename has
  // actually executed, or a roll could Open (create!) the not-yet-existing
  // free file and then have the rename clobber it, stranding the roll's
  // frames in an orphaned inode. Capacity can only shrink between the check
  // and the push (rolls pop), so checking first never overfills the pool.
  bool recycle = false;
  {
    std::lock_guard<std::mutex> guard(seg_mu_);
    recycle = free_pool_.size() < options_.recycle_segments;
  }
  if (recycle) {
    const std::string free_name = FreeName(index);
    NEOSI_RETURN_IF_ERROR(dir_->Rename(name, free_name));
    {
      std::lock_guard<std::mutex> guard(seg_mu_);
      free_pool_.push_back(free_name);
    }
    segments_recycled_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  NEOSI_RETURN_IF_ERROR(dir_->Remove(name));
  segments_deleted_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Wal::TruncatePrefix(Lsn lsn) {
  std::lock_guard<std::mutex> guard(trunc_mu_);
  NEOSI_RETURN_IF_ERROR(CheckPoisoned());
  const Lsn head = head_lsn_.load(std::memory_order_acquire);
  const Lsn next = next_lsn_.load(std::memory_order_acquire);
  if (lsn <= head) return Status::OK();  // Nothing below to drop.
  if (lsn > next) {
    return Status::InvalidArgument("wal truncate beyond append cursor");
  }

  // Every segment wholly below the new head is retired; the logical head
  // advances only once they are gone, so SizeBytes() (= next - head) never
  // under-reports while multi-segment unlinks (with their directory syncs)
  // are still in flight. The head is in-memory only — recovery re-derives
  // it from the oldest retained segment and the checkpoint markers — so
  // this ordering has no crash-consistency implications. The active segment
  // is never retired: it anchors lsn monotonicity and keeps appends
  // untouched, making reclamation a pure unlink/rename of cold files —
  // unconditional on every backend, no hole punching, no quiescent rebase.
  NEOSI_RETURN_IF_ERROR(fault_hooks.Check("wal.truncate.pre_unlink"));

  for (;;) {
    std::string victim;
    uint64_t index = 0;
    {
      std::lock_guard<std::mutex> seg_guard(seg_mu_);
      // A segment's frames end where its successor begins; it is dead iff
      // that end is at or below the new head. keep_segments retains that
      // many extra dead segments for lagging replicas (wal_keep_segments).
      if (segments_.size() <= 1 + options_.keep_segments ||
          segments_[1]->base > lsn) {
        break;
      }
      index = segments_.front()->index;
      victim = SegmentName(index);
      segments_.pop_front();
      segment_count_.store(segments_.size(), std::memory_order_release);
    }
    NEOSI_RETURN_IF_ERROR(RetireSegmentFile(victim, index));
    // Directory-sync EACH retirement before the next: POSIX gives no
    // ordering between unlinks, and a crash that persisted the second
    // unlink but not the first would leave an index gap Open() rightly
    // refuses to accept. Front-to-back with a sync per step, the survivors
    // are always a contiguous chain suffix.
    Status d = fault_hooks.Check("wal.dirsync.unlink");
    if (d.ok()) d = dir_->SyncDir();
    if (!d.ok()) {
      Poison(d);
      return d;
    }
  }
  head_lsn_.store(lsn, std::memory_order_release);
  return Status::OK();
}

Result<Lsn> GroupCommitter::Finish(const Request& req) {
  if (!req.status.ok()) return req.status;
  if (req.flush_target != 0) {
    // Async hand-off: the leader only REQUESTED the flush — the ack waits
    // out the watermark here, on the requester's own thread, while the
    // next batch is already forming.
    Status flushed = wal_->WaitFlushed(req.flush_target);
    if (!flushed.ok()) {
      // Same contract as the inline failure path below: the caller rolls
      // back a commit that "didn't happen", so its pin must not freeze
      // StableLsn() forever.
      if (req.pin) wal_->Unpin(req.lsn);
      return flushed;
    }
  }
  return req.lsn;
}

Result<Lsn> GroupCommitter::Commit(const WalRecord& record, bool sync,
                                   bool pin) {
  NEOSI_RETURN_IF_ERROR(wal_->CheckPoisoned());
  if (!sync) {
    // Nothing to amortize without an fsync; a plain latched append is
    // cheaper than parking behind a leader that may be mid-fsync.
    records_.fetch_add(1, std::memory_order_relaxed);
    return wal_->Append(record, pin);
  }
  Request req;
  req.record = &record;
  req.sync = sync;
  req.pin = pin;
  std::unique_lock<std::mutex> lock(mu_);
  queue_.push_back(&req);
  // Wait until a leader has handled us, or until the leader seat is free and
  // our request is still queued (then we take the seat ourselves).
  while (!req.done && leader_active_) cv_.wait(lock);
  if (req.done) return Finish(req);

  leader_active_ = true;
  // Fold at most max_batch queued requests into this write; the remainder
  // elects the next leader as soon as the seat frees (which, in async-flush
  // mode, is before this batch's fsync even completes).
  size_t take = queue_.size();
  const size_t cap = wal_->options_.group_commit_max_batch;
  if (cap != 0 && cap < take) take = cap;
  std::vector<Request*> batch(queue_.begin(),
                              queue_.begin() + static_cast<long>(take));
  queue_.erase(queue_.begin(), queue_.begin() + static_cast<long>(take));
  lock.unlock();

  std::vector<const WalRecord*> records;
  std::vector<bool> pins;
  records.reserve(batch.size());
  pins.reserve(batch.size());
  bool want_sync = false;
  for (Request* r : batch) {
    records.push_back(r->record);
    pins.push_back(r->pin);
    want_sync |= r->sync;
  }
  std::vector<Lsn> lsns;
  Status write_status = wal_->AppendBatch(records, &lsns, &pins);
  const bool async = wal_->UseAsyncFlush();
  Status sync_status;
  Lsn flush_target = 0;
  if (write_status.ok() && want_sync) {
    if (async) {
      // Hand the fsync to the flusher and release the leader seat: the
      // batch's acks wait on the watermark in Finish(), off this thread.
      flush_target = wal_->NextLsn();
      sync_status = wal_->RequestFlush(flush_target);
    } else {
      sync_status = wal_->Sync();
    }
  }

  if (batch.size() > 1) batches_.fetch_add(1, std::memory_order_relaxed);
  records_.fetch_add(batch.size(), std::memory_order_relaxed);

  lock.lock();
  for (size_t i = 0; i < batch.size(); ++i) {
    Request* r = batch[i];
    if (!write_status.ok()) {
      r->status = write_status;
    } else {
      r->lsn = lsns[i];
      if (r->sync && !sync_status.ok()) {
        r->status = sync_status;
        // The caller sees a failed commit and rolls back — release its pin
        // here or StableLsn() would be frozen at this lsn forever (the
        // caller never learns the lsn of a commit that "didn't happen").
        if (r->pin) wal_->Unpin(lsns[i]);
      } else if (r->sync && flush_target != 0) {
        r->flush_target = flush_target;
      }
    }
    r->done = true;
  }
  leader_active_ = false;
  lock.unlock();
  cv_.notify_all();

  return Finish(req);
}

Status Wal::ReadFrom(Lsn from,
                     const std::function<Status(Lsn, const WalRecord&)>& fn) {
  const Lsn head = head_lsn_.load(std::memory_order_acquire);
  const Lsn next = next_lsn_.load(std::memory_order_acquire);
  // `from` must be a frame boundary (the head itself, a marker's stable
  // LSN, or the append cursor) — the scan seeks straight to it inside its
  // segment, and segments wholly below it are skipped without any read or
  // CRC work at all.
  if (from < head) from = head;
  if (from > next) from = next;

  // Snapshot the chain. ReadFrom must not race TruncatePrefix/Reset (it
  // runs during single-threaded recovery and in tests).
  std::vector<Segment*> segs;
  {
    std::lock_guard<std::mutex> guard(seg_mu_);
    segs.reserve(segments_.size());
    for (const auto& segment : segments_) segs.push_back(segment.get());
  }

  for (size_t i = 0; i < segs.size(); ++i) {
    Segment* seg = segs[i];
    const bool newest = i + 1 == segs.size();
    if (!newest && segs[i + 1]->base <= from) continue;  // Wholly below.

    const uint64_t size = seg->file->Size();
    const Lsn start = std::max(from, seg->base);
    auto walked = WalkFrames(
        seg->file.get(), kSegmentHeaderSize + (start - seg->base), size,
        [&](uint64_t offset, const Slice& payload) {
          const Lsn lsn = seg->base + (offset - kSegmentHeaderSize);
          WalRecord record;
          NEOSI_RETURN_IF_ERROR(WalRecord::DecodeFrom(payload, &record));
          return fn(lsn, record);
        });
    if (!walked.ok()) return walked.status();
    const uint64_t offset = *walked;

    const Lsn end = seg->base + (offset - kSegmentHeaderSize);
    if (!newest) {
      // Older segments were synced before the chain rolled past them, so
      // their frames must walk exactly up to the successor's base — a short
      // or invalid walk here is real corruption, not a torn tail, and
      // silently truncating it would drop durably-acked commits.
      if (end != segs[i + 1]->base) {
        return Status::Corruption(
            "wal segment " + SegmentName(seg->index) +
            ": frame walk ends before the next segment's base");
      }
    } else {
      // Torn tail in the newest segment: drop it so subsequent appends
      // extend a clean log.
      if (offset < size) {
        NEOSI_RETURN_IF_ERROR(seg->file->Truncate(offset));
      }
      std::lock_guard<SpinLatch> guard(latch_);
      next_lsn_.store(end, std::memory_order_release);
      // The shave may land below where Open() pegged the flushed
      // watermark; a watermark above the cursor would let a later commit
      // ack without any fsync at all.
      if (flushed_lsn_.load(std::memory_order_relaxed) > end) {
        flushed_lsn_.store(end, std::memory_order_release);
      }
    }
  }
  return Status::OK();
}

Status Wal::ReadAll(const std::function<Status(const WalRecord&)>& fn) {
  return ReadFrom(head_lsn_.load(std::memory_order_acquire),
                  [&fn](Lsn, const WalRecord& record) { return fn(record); });
}

Status Wal::Reset() {
  std::lock_guard<SpinLatch> guard(latch_);
  std::lock_guard<std::mutex> trunc_guard(trunc_mu_);
  NEOSI_RETURN_IF_ERROR(CheckPoisoned());
  // LSNs stay monotonic across the reset: every segment is retired and a
  // fresh one anchors the chain at the current cursor, so the next append
  // continues above everything ever handed out.
  const Lsn next = next_lsn_.load(std::memory_order_relaxed);
  head_lsn_.store(next, std::memory_order_release);

  std::vector<std::pair<std::string, uint64_t>> victims;
  {
    std::lock_guard<std::mutex> seg_guard(seg_mu_);
    for (const auto& segment : segments_) {
      victims.emplace_back(SegmentName(segment->index), segment->index);
    }
    segments_.clear();
    active_.store(nullptr, std::memory_order_release);
    segment_count_.store(0, std::memory_order_release);
  }
  for (const auto& [name, index] : victims) {
    // Front-to-back, one dir sync per retirement (see TruncatePrefix).
    NEOSI_RETURN_IF_ERROR(RetireSegmentFile(name, index));
    NEOSI_RETURN_IF_ERROR(dir_->SyncDir());
  }
  return AddSegmentLocked(next);
}

uint64_t Wal::PhysicalBytes() const {
  std::lock_guard<std::mutex> guard(seg_mu_);
  uint64_t total = 0;
  for (const auto& segment : segments_) total += segment->file->Size();
  return total;
}

const Wal::Segment* Wal::SegmentAtLocked(Lsn lsn) const {
  const Segment* best = nullptr;
  for (const auto& segment : segments_) {
    if (segment->base <= lsn) best = segment.get();
  }
  return best != nullptr ? best
                         : (segments_.empty() ? nullptr
                                              : segments_.front().get());
}

uint64_t Wal::PhysOf(Lsn lsn) const {
  std::lock_guard<std::mutex> guard(seg_mu_);
  const Segment* segment = SegmentAtLocked(lsn);
  if (segment == nullptr) return kSegmentHeaderSize;
  return kSegmentHeaderSize + (lsn - segment->base);
}

std::string Wal::SegmentNameOf(Lsn lsn) const {
  std::lock_guard<std::mutex> guard(seg_mu_);
  const Segment* segment = SegmentAtLocked(lsn);
  return segment == nullptr ? std::string() : SegmentName(segment->index);
}

}  // namespace neosi
