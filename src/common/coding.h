// Little-endian fixed-width and varint encoding helpers for record
// serialization (store files, WAL).

#ifndef NEOSI_COMMON_CODING_H_
#define NEOSI_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace neosi {

inline void EncodeFixed16(char* dst, uint16_t v) { memcpy(dst, &v, 2); }
inline void EncodeFixed32(char* dst, uint32_t v) { memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { memcpy(dst, &v, 8); }

inline uint16_t DecodeFixed16(const char* src) {
  uint16_t v;
  memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  memcpy(&v, src, 8);
  return v;
}

void PutFixed16(std::string* dst, uint16_t v);
void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);

/// Appends a LEB128 varint (1..10 bytes for 64-bit values).
void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);
/// Appends varint length followed by the bytes.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Parses from the front of *input, advancing it. Returns false on underflow
/// or malformed varint.
bool GetFixed16(Slice* input, uint16_t* value);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

/// CRC32 (Castagnoli polynomial, software table implementation) used for WAL
/// record and store-header integrity.
uint32_t Crc32c(const char* data, size_t n);
inline uint32_t Crc32c(const Slice& s) { return Crc32c(s.data(), s.size()); }

}  // namespace neosi

#endif  // NEOSI_COMMON_CODING_H_
