// Core identifier and timestamp types shared by every neosi module.

#ifndef NEOSI_COMMON_TYPES_H_
#define NEOSI_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace neosi {

/// Node identifier; doubles as the record position in the node store file
/// (Neo4j addresses node records by id).
using NodeId = uint64_t;
/// Relationship identifier; record position in the relationship store file.
using RelId = uint64_t;
/// Property record identifier in the property store file.
using PropId = uint64_t;
/// Block identifier in the dynamic (string) store.
using DynId = uint64_t;

/// Label token id (labels are interned; never deleted, per Neo4j semantics).
using LabelId = uint32_t;
/// Property key token id.
using PropertyKeyId = uint32_t;
/// Relationship type token id.
using RelTypeId = uint32_t;

/// Commit / start timestamp. Timestamps are handed out by the
/// TimestampOracle; 0 means "uncommitted / no timestamp".
using Timestamp = uint64_t;
/// Transaction identifier (distinct space from timestamps).
using TxnId = uint64_t;
/// Log sequence number in the write-ahead log.
using Lsn = uint64_t;

inline constexpr uint64_t kInvalidId = std::numeric_limits<uint64_t>::max();
inline constexpr NodeId kInvalidNodeId = kInvalidId;
inline constexpr RelId kInvalidRelId = kInvalidId;
inline constexpr PropId kInvalidPropId = kInvalidId;
inline constexpr DynId kInvalidDynId = kInvalidId;
inline constexpr uint32_t kInvalidToken =
    std::numeric_limits<uint32_t>::max();
inline constexpr Timestamp kNoTimestamp = 0;
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();
inline constexpr TxnId kNoTxn = 0;

/// Which entity family an id refers to (used by lock keys, GC bookkeeping,
/// WAL records).
enum class EntityType : uint8_t {
  kNode = 0,
  kRelationship = 1,
};

/// Direction of relationship traversal relative to an anchor node.
enum class Direction : uint8_t {
  kOutgoing = 0,
  kIncoming = 1,
  kBoth = 2,
};

/// Isolation level for a transaction.
///
/// kReadCommitted reproduces stock Neo4j (short shared read locks + long
/// exclusive write locks, reads always see the latest committed state).
/// kSnapshotIsolation is the paper's contribution (MVCC snapshot reads, no
/// read locks, write-write conflict detection).
/// kSerializable layers SSI (Cahill-style serializable snapshot isolation,
/// as refined by PostgreSQL) on top of the SI machinery: snapshot reads
/// additionally leave SIREAD markers, rw-antidependency edges are tracked,
/// and a transaction at the centre of a dangerous structure aborts with
/// Status::SerializationFailure. Serializability is guaranteed among
/// kSerializable transactions only (the PostgreSQL stance).
enum class IsolationLevel : uint8_t {
  kReadCommitted = 0,
  kSnapshotIsolation = 1,
  kSerializable = 2,
};

/// Write-write conflict resolution policy under snapshot isolation (paper §3).
enum class ConflictPolicy : uint8_t {
  /// Abort the requester immediately if another active transaction holds the
  /// write lock (no-wait first-updater-wins).
  kFirstUpdaterWinsNoWait = 0,
  /// Wait for the holder; abort if the holder commits, proceed if it aborts
  /// (PostgreSQL-style first-updater-wins). Deadlocks broken by wait-die.
  kFirstUpdaterWinsWait = 1,
  /// Locks never conflict eagerly; validation at commit aborts any
  /// transaction whose write set intersects a concurrently committed one.
  kFirstCommitterWins = 2,
};

/// Key identifying a lockable / versionable entity.
struct EntityKey {
  EntityType type = EntityType::kNode;
  uint64_t id = kInvalidId;

  bool operator==(const EntityKey&) const = default;
  bool operator<(const EntityKey& other) const {
    if (type != other.type) return type < other.type;
    return id < other.id;
  }

  static EntityKey Node(NodeId id) { return {EntityType::kNode, id}; }
  static EntityKey Rel(RelId id) { return {EntityType::kRelationship, id}; }

  std::string ToString() const;
};

std::string_view EntityTypeToString(EntityType type);
std::string_view DirectionToString(Direction direction);
std::string_view IsolationLevelToString(IsolationLevel level);
std::string_view ConflictPolicyToString(ConflictPolicy policy);

}  // namespace neosi

namespace std {
template <>
struct hash<neosi::EntityKey> {
  size_t operator()(const neosi::EntityKey& k) const noexcept {
    // Splitmix-style finalizer over (type, id).
    uint64_t x = k.id * 0x9E3779B97F4A7C15ULL +
                 (static_cast<uint64_t>(k.type) << 62);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};
}  // namespace std

#endif  // NEOSI_COMMON_TYPES_H_
