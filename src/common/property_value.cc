#include "common/property_value.h"

#include <cmath>
#include <cstring>
#include <functional>

#include "common/coding.h"

namespace neosi {

std::string_view ValueKindToString(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kDouble:
      return "double";
    case ValueKind::kString:
      return "string";
  }
  return "unknown";
}

std::string PropertyValue::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return AsBool() ? "true" : "false";
    case ValueKind::kInt:
      return std::to_string(AsInt());
    case ValueKind::kDouble: {
      std::string s = std::to_string(AsDouble());
      return s;
    }
    case ValueKind::kString:
      return "\"" + AsString() + "\"";
  }
  return "?";
}

void PropertyValue::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(kind()));
  switch (kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kBool:
      dst->push_back(AsBool() ? 1 : 0);
      break;
    case ValueKind::kInt:
      PutFixed64(dst, static_cast<uint64_t>(AsInt()));
      break;
    case ValueKind::kDouble: {
      uint64_t bits;
      double d = AsDouble();
      memcpy(&bits, &d, sizeof(bits));
      PutFixed64(dst, bits);
      break;
    }
    case ValueKind::kString:
      PutLengthPrefixedSlice(dst, Slice(AsString()));
      break;
  }
}

Status PropertyValue::DecodeFrom(Slice* input, PropertyValue* out) {
  if (input->empty()) {
    return Status::Corruption("property value: empty input");
  }
  const auto kind = static_cast<ValueKind>((*input)[0]);
  input->remove_prefix(1);
  switch (kind) {
    case ValueKind::kNull:
      *out = PropertyValue();
      return Status::OK();
    case ValueKind::kBool: {
      if (input->empty()) return Status::Corruption("bool underflow");
      *out = PropertyValue((*input)[0] != 0);
      input->remove_prefix(1);
      return Status::OK();
    }
    case ValueKind::kInt: {
      uint64_t v;
      if (!GetFixed64(input, &v)) return Status::Corruption("int underflow");
      *out = PropertyValue(static_cast<int64_t>(v));
      return Status::OK();
    }
    case ValueKind::kDouble: {
      uint64_t bits;
      if (!GetFixed64(input, &bits)) {
        return Status::Corruption("double underflow");
      }
      double d;
      memcpy(&d, &bits, sizeof(d));
      *out = PropertyValue(d);
      return Status::OK();
    }
    case ValueKind::kString: {
      Slice s;
      if (!GetLengthPrefixedSlice(input, &s)) {
        return Status::Corruption("string underflow");
      }
      *out = PropertyValue(s.ToString());
      return Status::OK();
    }
  }
  return Status::Corruption("property value: bad kind byte");
}

int PropertyValue::Compare(const PropertyValue& other) const {
  if (kind() != other.kind()) {
    return kind() < other.kind() ? -1 : +1;
  }
  switch (kind()) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool: {
      const int a = AsBool(), b = other.AsBool();
      return a - b;
    }
    case ValueKind::kInt: {
      const int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? +1 : 0);
    }
    case ValueKind::kDouble: {
      const double a = AsDouble(), b = other.AsDouble();
      const bool na = std::isnan(a), nb = std::isnan(b);
      if (na || nb) {
        if (na && nb) return 0;
        return na ? +1 : -1;  // NaN sorts last.
      }
      return a < b ? -1 : (a > b ? +1 : 0);
    }
    case ValueKind::kString:
      return Slice(AsString()).compare(Slice(other.AsString()));
  }
  return 0;
}

size_t PropertyValue::Hash() const {
  const size_t kind_seed =
      0x9E3779B97F4A7C15ULL * (static_cast<size_t>(kind()) + 1);
  switch (kind()) {
    case ValueKind::kNull:
      return kind_seed;
    case ValueKind::kBool:
      return kind_seed ^ std::hash<bool>{}(AsBool());
    case ValueKind::kInt:
      return kind_seed ^ std::hash<int64_t>{}(AsInt());
    case ValueKind::kDouble: {
      double d = AsDouble();
      if (std::isnan(d)) return kind_seed ^ 0xDEADBEEF;
      return kind_seed ^ std::hash<double>{}(d);
    }
    case ValueKind::kString:
      return kind_seed ^ std::hash<std::string>{}(AsString());
  }
  return kind_seed;
}

size_t PropertyValue::ApproximateSize() const {
  size_t base = sizeof(PropertyValue);
  if (is_string()) base += AsString().capacity();
  return base;
}

}  // namespace neosi
