#include "common/types.h"

namespace neosi {

std::string EntityKey::ToString() const {
  std::string out(EntityTypeToString(type));
  out += "(";
  out += std::to_string(id);
  out += ")";
  return out;
}

std::string_view EntityTypeToString(EntityType type) {
  switch (type) {
    case EntityType::kNode:
      return "Node";
    case EntityType::kRelationship:
      return "Relationship";
  }
  return "Unknown";
}

std::string_view DirectionToString(Direction direction) {
  switch (direction) {
    case Direction::kOutgoing:
      return "OUTGOING";
    case Direction::kIncoming:
      return "INCOMING";
    case Direction::kBoth:
      return "BOTH";
  }
  return "Unknown";
}

std::string_view IsolationLevelToString(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kReadCommitted:
      return "ReadCommitted";
    case IsolationLevel::kSnapshotIsolation:
      return "SnapshotIsolation";
    case IsolationLevel::kSerializable:
      return "Serializable";
  }
  return "Unknown";
}

std::string_view ConflictPolicyToString(ConflictPolicy policy) {
  switch (policy) {
    case ConflictPolicy::kFirstUpdaterWinsNoWait:
      return "FirstUpdaterWinsNoWait";
    case ConflictPolicy::kFirstUpdaterWinsWait:
      return "FirstUpdaterWinsWait";
    case ConflictPolicy::kFirstCommitterWins:
      return "FirstCommitterWins";
  }
  return "Unknown";
}

}  // namespace neosi
