// Database-wide configuration.

#ifndef NEOSI_COMMON_OPTIONS_H_
#define NEOSI_COMMON_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace neosi {

/// Options controlling a GraphDatabase instance. Plain data; copyable.
struct DatabaseOptions {
  /// Directory for store files and the WAL. Ignored when in_memory is true.
  std::string path;

  /// When true, store files and WAL live in anonymous memory (no files are
  /// created). Recovery tests and benches use on-disk mode.
  bool in_memory = true;

  /// Default isolation level for BeginTransaction() without an explicit one.
  IsolationLevel default_isolation = IsolationLevel::kSnapshotIsolation;

  /// Write-write conflict resolution policy under snapshot isolation.
  ConflictPolicy conflict_policy = ConflictPolicy::kFirstUpdaterWinsWait;

  /// Page size for store files, bytes.
  size_t page_size = 8192;

  /// Soft capacity of the object cache in cached objects; clean
  /// single-version objects beyond this are evictable. 0 = unbounded.
  size_t object_cache_capacity = 1 << 20;

  /// Pass interval of the background GC daemon in milliseconds. Reclamation
  /// is fully asynchronous: no GC work ever runs on the commit path (0
  /// disables the daemon entirely; callers invoke GraphDatabase::RunGc()).
  uint64_t background_gc_interval_ms = 50;

  /// Commit publication nudges the GC daemon for an immediate pass when the
  /// GcList backlog reaches this many entries, without waiting for the
  /// interval (0 disables nudging; the daemon paces on its interval alone).
  uint64_t gc_backlog_threshold = 1024;

  /// Pass interval of the background checkpoint daemon in milliseconds.
  /// Each pass runs a FUZZY incremental checkpoint (never blocks commits)
  /// when the live WAL has outgrown checkpoint_wal_threshold, so
  /// long-running write workloads never accumulate unbounded log. 0
  /// disables the daemon (callers checkpoint manually).
  uint64_t checkpoint_interval_ms = 200;

  /// Live-WAL byte threshold that makes a checkpoint daemon pass actually
  /// checkpoint (below it the wakeup is an idle skip). Commit publication
  /// also nudges the daemon early when the live WAL crosses this many
  /// bytes. 0 checkpoints on every interval pass.
  uint64_t checkpoint_wal_threshold = 4ull << 20;  // 4 MiB

  /// Size at which the WAL rolls to a fresh segment file. Checkpoints
  /// reclaim disk by UNLINKING whole segments below the stable LSN, so this
  /// bounds both the per-file size and (together with the live bytes) the
  /// on-disk WAL footprint on every backend — no filesystem hole support
  /// needed.
  uint64_t wal_segment_size = 16ull << 20;  // 16 MiB

  /// Retired WAL segments kept in a recycle pool and reused for new
  /// segments instead of being unlinked (PostgreSQL-style xlog recycling;
  /// 0 = always unlink).
  uint64_t wal_recycle_segments = 2;

  /// fsync the WAL on every commit. Off by default: the experiments measure
  /// concurrency-control behaviour, not disk stalls.
  bool sync_commits = false;

  /// Lock wait timeout (milliseconds) for the waiting conflict policies; a
  /// wait longer than this aborts the waiter with Status::Deadlock. Backstop
  /// only: wait-die breaks cycles well before this fires.
  uint64_t lock_timeout_ms = 10000;
};

}  // namespace neosi

#endif  // NEOSI_COMMON_OPTIONS_H_
