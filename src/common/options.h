// Database-wide configuration.
//
// Documentation convention: every option states its UNITS, its DEFAULT, and
// the daemon / trigger it paces (or the code path that consumes it), so an
// operator can reason about a deployment from this file alone. The daemons:
//
//   GcDaemon          sharded version reclamation  (background_gc_interval_ms,
//                     gc_backlog_threshold, gc_shards, snapshot_max_age_ms,
//                     snapshot_expire_backlog) + epoch limbo drains
//                     (latch_free_reads, epoch_slots)
//   CheckpointDaemon  WAL bounding                 (checkpoint_interval_ms,
//                     checkpoint_wal_threshold, wal_segment_size,
//                     wal_recycle_segments)
//
// Auto-sized (0 = auto) options resolve from
// std::thread::hardware_concurrency() at Open(): gc_shards,
// txn_table_shards, epoch_slots. The Resolved*() helpers below are the
// single source of truth for the resolution rules.

#ifndef NEOSI_COMMON_OPTIONS_H_
#define NEOSI_COMMON_OPTIONS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/types.h"

namespace neosi {

class WalDir;  // storage/wal_dir.h; options only carries a handle

/// Options controlling a GraphDatabase instance. Plain data; copyable.
struct DatabaseOptions {
  // --- placement -----------------------------------------------------------

  /// Directory for store files and the WAL segments. Created at Open() when
  /// missing. Ignored when in_memory is true. No default: on-disk databases
  /// must name one (Open() fails with InvalidArgument otherwise).
  std::string path;

  /// When true (the DEFAULT), store files and WAL live in anonymous memory —
  /// no files are created and nothing survives the process. Recovery tests
  /// and the durability benches use on-disk mode.
  bool in_memory = true;

  // --- transaction semantics ----------------------------------------------

  /// Isolation level for BeginTransaction() without an explicit one.
  /// Default: kSnapshotIsolation (the paper's contribution);
  /// kReadCommitted reproduces stock Neo4j.
  IsolationLevel default_isolation = IsolationLevel::kSnapshotIsolation;

  /// Write-write conflict resolution policy under snapshot isolation
  /// (paper §3). Default: kFirstUpdaterWinsWait (PostgreSQL-style: wait for
  /// the holder, abort if it commits). Consumed on the write-lock path
  /// (Transaction::AcquireWriteLock / CheckWriteConflict) and at commit
  /// validation for kFirstCommitterWins.
  ConflictPolicy conflict_policy = ConflictPolicy::kFirstUpdaterWinsWait;

  // --- serializable mode (SSI; strictly opt-in per transaction) ------------

  /// When true (the DEFAULT), a READ-ONLY kSerializable transaction gets a
  /// SAFE SNAPSHOT when the tracker's probe proves no concurrent
  /// read-write serializable peer can still commit: (a) no read-write
  /// serializable transaction is registered and unfinished, AND (b) every
  /// finished one committed at or below the snapshot timestamp — (b)
  /// closes the ordered-publication window, where a peer has left the
  /// tracker but its commit timestamp is not yet readable, so the active
  /// count alone would miss it. A safe snapshot skips all SIREAD marking
  /// and rw-antidependency tracking and is guaranteed to commit without a
  /// SerializationFailure (the Ports/Grittner read-only optimization).
  /// Consumed once per Begin(kSerializable, {read_only}); counted in
  /// DatabaseStats::ssi_safe_snapshots. False forces every serializable
  /// transaction through full tracking (useful to exercise the tracker).
  bool ssi_safe_snapshots = true;

  /// Shard count of the SsiTracker's SIREAD-marker tables (entity, label,
  /// property-range, adjacency markers). Default: 0 = AUTO (64, mirroring
  /// the LockManager's shard fan-out). Explicit values are clamped to
  /// [1, 64]. More shards keep concurrent serializable readers and writers
  /// off each other's marker mutexes; the tables are touched only by
  /// kSerializable transactions, so the setting is irrelevant otherwise.
  size_t ssi_marker_shards = 0;

  // --- storage -------------------------------------------------------------

  /// Page size of the store files, in BYTES. Default: 8192. Fixed at
  /// creation; reopening with a different value is rejected as corruption.
  size_t page_size = 8192;

  /// Soft capacity of the object cache, in CACHED OBJECTS (nodes + rels).
  /// Default: 1'048'576 (1 << 20). 0 = unbounded. Clean single-version
  /// objects beyond this are evicted by the GC daemon's per-pass (and
  /// idle-wakeup) eviction sweep — eviction never runs on the commit path.
  size_t object_cache_capacity = 1 << 20;

  // --- GC daemon (version reclamation) -------------------------------------

  /// Pass interval of the background GC drain workers, in MILLISECONDS.
  /// Default: 50. Reclamation is fully asynchronous: no GC work ever runs
  /// on the commit path. 0 disables the daemon entirely (callers invoke
  /// GraphDatabase::RunGc() manually — and the snapshot lifecycle policy
  /// below is then NOT enforced, since the daemon runs its expiry sweep).
  uint64_t background_gc_interval_ms = 50;

  /// GC backlog (obsolete versions queued across all shards, in ENTRIES)
  /// at which commit publication nudges the GC drain workers for an
  /// immediate pass instead of waiting out the interval. Default: 1024.
  /// 0 disables nudging (interval pacing only). Also the trigger gauge for
  /// snapshot_expire_backlog below.
  uint64_t gc_backlog_threshold = 1024;

  /// Number of entity-key shards of the GC list — and of background drain
  /// worker threads (one per shard). Default: 0 = AUTO (the machine's
  /// hardware_concurrency, clamped to [1, 64]; 4 when the core count is
  /// unknown). Explicit values are clamped to [1, 64]. Each shard keeps
  /// the paper's timestamp-sorted list (near-sorted tail insert,
  /// O(#reclaimed) drain); sharding removes the single-list mutex and
  /// single drain thread as the bottleneck at high core counts. 1
  /// reproduces the pre-sharding topology.
  size_t gc_shards = 0;

  // --- read path (epoch-based reclamation) ---------------------------------

  /// When true (the DEFAULT), committed-read chain walks are LATCH-FREE:
  /// readers traverse raw atomic version links under an epoch guard
  /// (src/mvcc/epoch.h) and GC unlinks retire versions into an epoch limbo
  /// list that the GC daemon drains once no reader can reach them. False
  /// restores the fully latched read path (SpinLatch per chain walk,
  /// immediate frees) — the pre-epoch behaviour, kept as the comparison
  /// baseline for the E15 bench. Consumed once at Open() when the object
  /// cache is wired.
  bool latch_free_reads = true;

  /// Epoch slot-array size, in SLOTS — the number of readers that can be
  /// simultaneously inside a latch-free chain walk (excess readers
  /// spin-probe until a slot frees). Default: 0 = AUTO
  /// (max(64, 4 * hardware_concurrency)). Ignored when latch_free_reads is
  /// false.
  size_t epoch_slots = 0;

  /// Shard count of the active-transaction table (Begin()'s registration
  /// point, scanned by Watermark()). Default: 0 = AUTO
  /// (max(16, 2 * hardware_concurrency), clamped to 64). More shards keep
  /// concurrent Begin()s off each other's mutexes; fewer make the
  /// watermark scan cheaper.
  size_t txn_table_shards = 0;

  // --- snapshot lifecycle (snapshot-too-old policy) ------------------------

  /// Maximum age of a live snapshot, in MILLISECONDS, before the GC
  /// daemon's expiry sweep marks it expired (PostgreSQL's
  /// old_snapshot_threshold). Default: 0 = never expire (a long-lived
  /// snapshot then pins the reclamation watermark and the version backlog
  /// grows without bound). An expired snapshot-isolation transaction fails
  /// its next read or commit with Status::SnapshotTooOld and rolls back
  /// (releasing its locks); the reclamation watermark advances past it as
  /// soon as it is marked, so the backlog drains without waiting for the
  /// victim to notice. Enforced by the GC daemon: requires
  /// background_gc_interval_ms > 0.
  uint64_t snapshot_max_age_ms = 0;

  /// GC backlog (ENTRIES, same gauge as gc_backlog_threshold) beyond which
  /// the expiry sweep evicts the oldest watermark-pinning snapshot cohort
  /// EARLY — before snapshot_max_age_ms — when the backlog head is not
  /// reclaimable below the current watermark (i.e. a snapshot is actually
  /// pinning it). Default: 0 = no backlog-pressure eviction. Victims get a
  /// 10 ms grace period from Begin() so a fresh snapshot under a write
  /// burst is never evicted. Enforced by the GC daemon. The network session
  /// front-end (src/server) reads the same gauge/threshold pair as its
  /// admission signal: while the backlog sits above this value, NEW wire
  /// Begins are delayed or shed with retryable Status::Busy — established
  /// snapshots are never admission-aborted (see ServerOptions).
  uint64_t snapshot_expire_backlog = 0;

  // --- checkpoint daemon (WAL bounding) ------------------------------------

  /// Pass interval of the background checkpoint daemon, in MILLISECONDS.
  /// Default: 200. Each pass runs a FUZZY incremental checkpoint (never
  /// blocks commits) when the live WAL has outgrown
  /// checkpoint_wal_threshold or the segment chain has rolled, so
  /// long-running write workloads never accumulate unbounded log. 0
  /// disables the daemon (callers checkpoint manually).
  uint64_t checkpoint_interval_ms = 200;

  /// Live-WAL BYTES that make a checkpoint daemon pass actually checkpoint
  /// (below it the wakeup is an idle skip). Default: 4 MiB. Commit
  /// publication also nudges the daemon early when the live WAL crosses
  /// this. 0 checkpoints on every interval pass.
  uint64_t checkpoint_wal_threshold = 4ull << 20;  // 4 MiB

  /// Size, in BYTES, at which the WAL rolls to a fresh segment file.
  /// Default: 16 MiB. Checkpoints reclaim disk by UNLINKING whole segments
  /// below the stable LSN, so this bounds both the per-file size and
  /// (together with the live bytes) the on-disk WAL footprint on every
  /// backend — no filesystem hole support needed.
  uint64_t wal_segment_size = 16ull << 20;  // 16 MiB

  /// Retired WAL segments kept in a recycle pool, in FILES, and reused for
  /// new segments instead of being unlinked (PostgreSQL-style xlog
  /// recycling: reuse skips the file-creation + directory-fsync cost on
  /// the roll path). Default: 2. 0 = always unlink.
  uint64_t wal_recycle_segments = 2;

  /// Fully-checkpointed WAL segments RETAINED (not retired) beyond the live
  /// chain, in FILES, so a lagging replica can still ship them
  /// (PostgreSQL's wal_keep_size). Default: 0 = retire eagerly. A replica
  /// whose shipping cursor falls behind the oldest retained segment stops
  /// with a Corruption status naming the gap and must be re-seeded.
  /// Consumed by the checkpoint truncation path.
  uint64_t wal_keep_segments = 0;

  /// fsync the WAL on every commit (grouped: concurrent committers share
  /// one fsync per batch through the GroupCommitter). Default: false — the
  /// experiments measure concurrency-control behaviour, not disk stalls.
  bool sync_commits = false;

  /// Hand WAL fsyncs to a dedicated flusher thread: the group-commit
  /// leader enqueues a flush target and releases the leader seat, and
  /// commit acks wait on the flushed-LSN watermark — the next batch forms
  /// while the previous one's fsync runs. Default: true. False restores
  /// the leader-fsync-inline baseline (the E18 bench comparison). Only
  /// observable with sync_commits. Sync failures are STICKY either way:
  /// after any WAL fsync/dir-sync error every later commit fails with a
  /// non-retryable IOError until the store is reopened (see
  /// docs/OPERATIONS.md, durability invariants).
  bool wal_async_flush = true;

  /// Keep the next WAL segment file pre-created (recycled or
  /// fallocate-reserved) by the flusher thread so a segment roll is an
  /// atomic-rename adoption instead of a create+header+fsync on the append
  /// path. Default: true.
  bool wal_preallocate = true;

  /// Most commit records a group-commit leader folds into one batched
  /// append/fsync; later arrivals elect the next leader. Default: 0 = AUTO
  /// (max(8, 4 * hardware_concurrency), capped at 256) — enough to absorb
  /// every plausibly-runnable committer without letting a burst build a
  /// batch whose ack latency is dominated by its own tail.
  size_t group_commit_max_batch = 0;

  // --- replication (read replicas) -----------------------------------------

  /// Attach this database as a READ REPLICA of the primary whose WAL lives
  /// in this directory handle (in-process / in-memory topologies: pass the
  /// primary's own WalDir). Default: null. Mutually exclusive with
  /// replica_of_path. A replica serves snapshot-isolation reads pinned at
  /// its replay watermark; writes and serializable begins fail with
  /// Status::ReplicaReadOnly. Consumed at Open(): wires a
  /// WalDirReplicationSource into the ReplicaApplier daemon.
  std::shared_ptr<WalDir> replica_of;

  /// Attach as a read replica of the primary whose WAL segment directory is
  /// at this filesystem path (cross-process topology; the replica only ever
  /// opens existing files in it, never creates any). Default: empty.
  std::string replica_of_path;

  /// Poll interval of the replica applier daemon, in MILLISECONDS: how
  /// often the replica re-lists the primary's WAL directory and tails the
  /// newest segment when no new records arrived on the previous pass.
  /// Default: 5. Bounds steady-state replication lag from below. Ignored
  /// unless the database is a replica.
  uint64_t replica_poll_interval_ms = 5;

  /// Grace period, in MILLISECONDS, a shipped purge record waits for
  /// conflicting replica snapshots (start_ts below the purge's commit ts)
  /// to finish before the applier cancels them with SnapshotTooOld
  /// (PostgreSQL's max_standby_streaming_delay, per conflict). Default:
  /// 100. 0 cancels immediately. Ignored unless the database is a replica.
  uint64_t replica_conflict_grace_ms = 100;

  /// True when this instance was configured as a read replica.
  bool IsReplica() const {
    return replica_of != nullptr || !replica_of_path.empty();
  }

  // --- locking -------------------------------------------------------------

  /// Lock wait timeout, in MILLISECONDS, for the waiting conflict
  /// policies; a wait longer than this aborts the waiter with
  /// Status::Deadlock. Default: 10000. Backstop only: wait-die breaks
  /// cycles well before this fires.
  uint64_t lock_timeout_ms = 10000;

  // --- auto-size resolution (0 = auto options) -----------------------------

  /// gc_shards with auto resolved: hardware_concurrency clamped to
  /// [1, 64], 4 when the core count is unknown.
  size_t ResolvedGcShards() const {
    if (gc_shards != 0) return std::min<size_t>(gc_shards, 64);
    const size_t hw = std::thread::hardware_concurrency();
    return std::clamp<size_t>(hw == 0 ? 4 : hw, 1, 64);
  }

  /// txn_table_shards with auto resolved: max(16, 2 * cores), capped at 64.
  size_t ResolvedTxnTableShards() const {
    if (txn_table_shards != 0) return txn_table_shards;
    const size_t hw = std::thread::hardware_concurrency();
    return std::clamp<size_t>(2 * hw, 16, 64);
  }

  /// epoch_slots with auto resolved: max(64, 4 * cores).
  size_t ResolvedEpochSlots() const {
    if (epoch_slots != 0) return epoch_slots;
    const size_t hw = std::thread::hardware_concurrency();
    return std::max<size_t>(64, 4 * hw);
  }

  /// ssi_marker_shards with auto resolved: 64 (the LockManager fan-out),
  /// explicit values clamped to [1, 64].
  size_t ResolvedSsiMarkerShards() const {
    if (ssi_marker_shards == 0) return 64;
    return std::clamp<size_t>(ssi_marker_shards, 1, 64);
  }

  /// group_commit_max_batch with auto resolved: max(8, 4 * cores), capped
  /// at 256.
  size_t ResolvedGroupCommitBatch() const {
    if (group_commit_max_batch != 0) return group_commit_max_batch;
    const size_t hw = std::thread::hardware_concurrency();
    return std::clamp<size_t>(4 * hw, 8, 256);
  }
};

}  // namespace neosi

#endif  // NEOSI_COMMON_OPTIONS_H_
