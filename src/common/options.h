// Database-wide configuration.

#ifndef NEOSI_COMMON_OPTIONS_H_
#define NEOSI_COMMON_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace neosi {

/// Options controlling a GraphDatabase instance. Plain data; copyable.
struct DatabaseOptions {
  /// Directory for store files and the WAL. Ignored when in_memory is true.
  std::string path;

  /// When true, store files and WAL live in anonymous memory (no files are
  /// created). Recovery tests and benches use on-disk mode.
  bool in_memory = true;

  /// Default isolation level for BeginTransaction() without an explicit one.
  IsolationLevel default_isolation = IsolationLevel::kSnapshotIsolation;

  /// Write-write conflict resolution policy under snapshot isolation.
  ConflictPolicy conflict_policy = ConflictPolicy::kFirstUpdaterWinsWait;

  /// Page size for store files, bytes.
  size_t page_size = 8192;

  /// Soft capacity of the object cache in cached objects; clean
  /// single-version objects beyond this are evictable. 0 = unbounded.
  size_t object_cache_capacity = 1 << 20;

  /// Run the version garbage collector automatically every this many commits
  /// (0 disables automatic GC; callers invoke GraphDatabase::RunGc()).
  uint64_t gc_every_n_commits = 4096;

  /// Run a background GC thread with this pass interval in milliseconds
  /// (0 disables the daemon; foreground auto-GC still applies).
  uint64_t background_gc_interval_ms = 0;

  /// fsync the WAL on every commit. Off by default: the experiments measure
  /// concurrency-control behaviour, not disk stalls.
  bool sync_commits = false;

  /// Lock wait timeout (milliseconds) for the waiting conflict policies; a
  /// wait longer than this aborts the waiter with Status::Deadlock. Backstop
  /// only: wait-die breaks cycles well before this fires.
  uint64_t lock_timeout_ms = 10000;
};

}  // namespace neosi

#endif  // NEOSI_COMMON_OPTIONS_H_
