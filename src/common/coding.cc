#include "common/coding.h"

#include <array>

namespace neosi {

void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  EncodeFixed16(buf, v);
  dst->append(buf, 2);
}

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t v) {
  unsigned char buf[5];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool GetFixed16(Slice* input, uint16_t* value) {
  if (input->size() < 2) return false;
  *value = DecodeFixed16(input->data());
  input->remove_prefix(2);
  return true;
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v64;
  if (!GetVarint64(input, &v64)) return false;
  if (v64 > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v64);
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  const char* p = input->data();
  const char* limit = p + input->size();
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p);
    ++p;
    if (byte & 0x80) {
      result |= ((byte & 0x7F) << shift);
    } else {
      result |= (byte << shift);
      *value = result;
      input->remove_prefix(p - input->data());
      return true;
    }
  }
  return false;
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint64_t len;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  constexpr uint32_t kPoly = 0x82F63B78;  // CRC-32C (Castagnoli), reflected.
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(const char* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFF;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<unsigned char>(data[i])) & 0xFF];
  }
  return crc ^ 0xFFFFFFFF;
}

}  // namespace neosi
