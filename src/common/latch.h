// Lightweight synchronization primitives for internal engine state.
//
// These guard in-memory structures (cache buckets, version chains, index
// shards) and are distinct from the transactional LockManager in src/txn,
// which implements the user-visible locking protocol.

#ifndef NEOSI_COMMON_LATCH_H_
#define NEOSI_COMMON_LATCH_H_

#include <atomic>
#include <mutex>
#include <shared_mutex>

namespace neosi {

/// Test-and-set spin latch for very short critical sections.
class SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // Spin; short sections only.
    }
  }
  bool try_lock() { return !flag_.test_and_set(std::memory_order_acquire); }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// Reader-writer latch; thin alias so call sites read as intent.
using SharedLatch = std::shared_mutex;
using ReadGuard = std::shared_lock<std::shared_mutex>;
using WriteGuard = std::unique_lock<std::shared_mutex>;

}  // namespace neosi

#endif  // NEOSI_COMMON_LATCH_H_
