// Deterministic fast RNG used by tests, workload generators and benchmarks.

#ifndef NEOSI_COMMON_RANDOM_H_
#define NEOSI_COMMON_RANDOM_H_

#include <cstdint>

namespace neosi {

/// xorshift128+ generator: fast, seedable, and deterministic across
/// platforms. Not cryptographically secure (nothing here needs that).
class Random {
 public:
  explicit Random(uint64_t seed = 0x2545F4914F6CDD1DULL) {
    // SplitMix64 seeding avoids weak all-zero states.
    uint64_t z = seed;
    s_[0] = SplitMix(&z);
    s_[1] = SplitMix(&z);
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform in [0, n); n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return (Next() >> 11) * (1.0 / 9007199254740992.0);  // 2^53
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace neosi

#endif  // NEOSI_COMMON_RANDOM_H_
