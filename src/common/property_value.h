// The dynamically-typed value attached to node / relationship properties.

#ifndef NEOSI_COMMON_PROPERTY_VALUE_H_
#define NEOSI_COMMON_PROPERTY_VALUE_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace neosi {

/// Runtime type tag of a PropertyValue.
enum class ValueKind : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
};

std::string_view ValueKindToString(ValueKind kind);

/// A property value: null, bool, int64, double, or string.
///
/// Values are totally ordered (by kind first, then by value within a kind) so
/// they can key the ordered property index used for range scans.
class PropertyValue {
 public:
  /// Null value.
  PropertyValue() : value_(std::monostate{}) {}
  PropertyValue(bool b) : value_(b) {}
  PropertyValue(int64_t i) : value_(i) {}
  PropertyValue(int i) : value_(static_cast<int64_t>(i)) {}
  PropertyValue(double d) : value_(d) {}
  PropertyValue(std::string s) : value_(std::move(s)) {}
  PropertyValue(const char* s) : value_(std::string(s)) {}

  ValueKind kind() const {
    return static_cast<ValueKind>(value_.index());
  }
  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_int() const { return kind() == ValueKind::kInt; }
  bool is_double() const { return kind() == ValueKind::kDouble; }
  bool is_string() const { return kind() == ValueKind::kString; }

  /// Typed accessors; calling the wrong one is a programming error (asserts).
  bool AsBool() const { return std::get<bool>(value_); }
  int64_t AsInt() const { return std::get<int64_t>(value_); }
  double AsDouble() const { return std::get<double>(value_); }
  const std::string& AsString() const { return std::get<std::string>(value_); }

  /// Human-readable rendering ("null", "true", "42", "3.5", "\"abc\"").
  std::string ToString() const;

  /// Appends the serialized form (kind byte + payload) to *dst.
  void EncodeTo(std::string* dst) const;
  /// Parses a value from the front of *input, advancing it.
  static Status DecodeFrom(Slice* input, PropertyValue* out);

  /// Total order: kind first, then value. Doubles compare by value; NaN sorts
  /// after all other doubles.
  int Compare(const PropertyValue& other) const;

  bool operator==(const PropertyValue& o) const { return Compare(o) == 0; }
  bool operator!=(const PropertyValue& o) const { return Compare(o) != 0; }
  bool operator<(const PropertyValue& o) const { return Compare(o) < 0; }
  bool operator<=(const PropertyValue& o) const { return Compare(o) <= 0; }
  bool operator>(const PropertyValue& o) const { return Compare(o) > 0; }
  bool operator>=(const PropertyValue& o) const { return Compare(o) >= 0; }

  /// Stable hash consistent with operator==.
  size_t Hash() const;

  /// Approximate in-memory footprint in bytes (used by cache accounting and
  /// the persistence experiment E9).
  size_t ApproximateSize() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> value_;
};

/// Materialized property set of one entity, ordered by key id for
/// deterministic iteration and serialization.
using PropertyMap = std::map<PropertyKeyId, PropertyValue>;

}  // namespace neosi

namespace std {
template <>
struct hash<neosi::PropertyValue> {
  size_t operator()(const neosi::PropertyValue& v) const noexcept {
    return v.Hash();
  }
};
}  // namespace std

#endif  // NEOSI_COMMON_PROPERTY_VALUE_H_
