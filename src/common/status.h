// Status / Result error handling for the neosi public API.
//
// The public API never throws; every fallible operation returns a Status or a
// Result<T>. Modeled on the RocksDB / Arrow conventions.

#ifndef NEOSI_COMMON_STATUS_H_
#define NEOSI_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace neosi {

/// Error category carried by a Status.
enum class StatusCode : int {
  kOk = 0,
  /// The requested entity (node, relationship, token, property) is absent or
  /// not visible in the caller's snapshot.
  kNotFound = 1,
  /// Caller supplied an invalid id, name, or option.
  kInvalidArgument = 2,
  /// Transaction aborted: write-write conflict (first-updater-wins /
  /// first-committer-wins) or explicit rollback.
  kAborted = 3,
  /// Lock wait would deadlock (wait-die victim).
  kDeadlock = 4,
  /// On-disk state failed validation (bad magic, CRC mismatch, torn record).
  kCorruption = 5,
  /// Underlying file read/write failed.
  kIOError = 6,
  /// Operation illegal in the current state (e.g. write on a finished txn).
  kFailedPrecondition = 7,
  /// Unique entity already exists (token re-creation races).
  kAlreadyExists = 8,
  /// Id or offset outside the valid range.
  kOutOfRange = 9,
  /// Feature intentionally unimplemented.
  kNotSupported = 10,
  /// Invariant violation inside the engine; always a bug.
  kInternal = 11,
  /// The transaction's snapshot was expired by the snapshot lifecycle
  /// policy (snapshot_max_age_ms / GC backlog pressure): versions it could
  /// read may have been reclaimed, so the transaction must restart with a
  /// fresh snapshot (PostgreSQL's "snapshot too old").
  kSnapshotTooOld = 12,
  /// A kSerializable transaction was aborted by the SSI checker: it sat at
  /// the centre of a dangerous rw-antidependency structure (or was doomed
  /// by a committing peer). Retry the whole transaction; a fresh snapshot
  /// re-runs it against the now-committed conflicting state.
  kSerializationFailure = 13,
  /// The database was opened as a read replica: writes and serializable
  /// begins are rejected. Retryable in the sense that the same request
  /// succeeds when routed to the primary (or after the replica is promoted).
  kReplicaReadOnly = 14,
  /// The resource is transiently unavailable: the database directory is
  /// flock-held by another process, or the network front-end's admission
  /// control shed a new Begin under GC-backlog / session-count pressure.
  /// Retryable: back off and resubmit; established transactions are never
  /// aborted with this code.
  kBusy = 15,
};

/// Returns a short human-readable name ("NotFound", ...) for a code.
std::string_view StatusCodeToString(StatusCode code);

/// Cheap value type describing the outcome of an operation.
///
/// An ok Status carries no allocation; error Statuses carry a message.
class Status {
 public:
  /// Constructs an ok status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status SnapshotTooOld(std::string msg) {
    return Status(StatusCode::kSnapshotTooOld, std::move(msg));
  }
  static Status SerializationFailure(std::string msg) {
    return Status(StatusCode::kSerializationFailure, std::move(msg));
  }
  static Status ReplicaReadOnly(std::string msg) {
    return Status(StatusCode::kReplicaReadOnly, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(StatusCode::kBusy, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsDeadlock() const { return code_ == StatusCode::kDeadlock; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsSnapshotTooOld() const {
    return code_ == StatusCode::kSnapshotTooOld;
  }
  bool IsSerializationFailure() const {
    return code_ == StatusCode::kSerializationFailure;
  }
  bool IsReplicaReadOnly() const {
    return code_ == StatusCode::kReplicaReadOnly;
  }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }

  /// True for the transaction-retry outcomes (conflict abort, deadlock
  /// victim, expired snapshot, SSI dangerous-structure abort, write on a
  /// read replica, admission-control shed); callers typically retry the
  /// whole transaction — a restarted transaction gets a fresh snapshot,
  /// which clears the first four conditions, a replica-read-only rejection
  /// succeeds when the retry is routed to the primary, and a Busy shed
  /// succeeds once the pressure drains.
  bool IsRetryable() const {
    return IsAborted() || IsDeadlock() || IsSnapshotTooOld() ||
           IsSerializationFailure() || IsReplicaReadOnly() || IsBusy();
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A Status plus a value of type T on success.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return 42;`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from error status: `return Status::NotFound(...);`.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result from Status requires an error");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value access; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` if in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace neosi

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not ok.
#define NEOSI_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::neosi::Status _neosi_status = (expr);         \
    if (!_neosi_status.ok()) return _neosi_status;  \
  } while (0)

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status,
/// otherwise assigns the value to `lhs`.
#define NEOSI_ASSIGN_OR_RETURN(lhs, rexpr)        \
  NEOSI_ASSIGN_OR_RETURN_IMPL(                    \
      NEOSI_STATUS_CONCAT(_neosi_res, __LINE__), lhs, rexpr)

#define NEOSI_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define NEOSI_STATUS_CONCAT_IMPL(a, b) a##b
#define NEOSI_STATUS_CONCAT(a, b) NEOSI_STATUS_CONCAT_IMPL(a, b)

#endif  // NEOSI_COMMON_STATUS_H_
