// A non-owning byte view, RocksDB-style.

#ifndef NEOSI_COMMON_SLICE_H_
#define NEOSI_COMMON_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace neosi {

/// Non-owning pointer + length over contiguous bytes. The referenced storage
/// must outlive the Slice.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}
  Slice(const char* s) : data_(s), size_(strlen(s)) {}
  Slice(std::string_view sv) : data_(sv.data()), size_(sv.size()) {}

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  /// Drops the first n bytes.
  void remove_prefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToStringView() const {
    return std::string_view(data_, size_);
  }

  int compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) r = -1;
      else if (size_ > other.size_) r = +1;
    }
    return r;
  }

  bool operator==(const Slice& other) const { return compare(other) == 0; }
  bool operator!=(const Slice& other) const { return compare(other) != 0; }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace neosi

#endif  // NEOSI_COMMON_SLICE_H_
