#include "common/status.h"

namespace neosi {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kSnapshotTooOld:
      return "SnapshotTooOld";
    case StatusCode::kSerializationFailure:
      return "SerializationFailure";
    case StatusCode::kReplicaReadOnly:
      return "ReplicaReadOnly";
    case StatusCode::kBusy:
      return "Busy";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace neosi
