// Versioned indexes: entry lifecycle, snapshot filtering, range scans,
// compaction (paper §4 index versioning).

#include <gtest/gtest.h>

#include "index/label_index.h"
#include "index/property_index.h"

namespace neosi {
namespace {

Snapshot At(Timestamp ts, TxnId self = kNoTxn) { return {ts, self}; }

TEST(VersionedEntrySet, PendingAddVisibleOnlyToWriter) {
  VersionedEntrySet set;
  set.AddPending(7, /*txn=*/3);
  EXPECT_TRUE(set.Contains(7, At(100, 3)));
  EXPECT_FALSE(set.Contains(7, At(100, 4)));
  EXPECT_FALSE(set.Contains(7, At(kMaxTimestamp)));
}

TEST(VersionedEntrySet, CommittedAddVisibleFromItsTimestamp) {
  VersionedEntrySet set;
  set.AddPending(7, 3);
  set.CommitAdd(7, 3, 50);
  EXPECT_FALSE(set.Contains(7, At(49)));
  EXPECT_TRUE(set.Contains(7, At(50)));
  EXPECT_TRUE(set.Contains(7, At(kMaxTimestamp)));
}

TEST(VersionedEntrySet, AbortAddErasesEntry) {
  VersionedEntrySet set;
  set.AddPending(7, 3);
  set.AbortAdd(7, 3);
  EXPECT_FALSE(set.Contains(7, At(kMaxTimestamp, 3)));
  EXPECT_TRUE(set.Empty());
}

TEST(VersionedEntrySet, RemoveIntervalSemantics) {
  VersionedEntrySet set;
  set.AddPending(7, 1);
  set.CommitAdd(7, 1, 10);
  // Pending removal hides from the remover, not from others.
  set.RemovePending(7, 2);
  EXPECT_FALSE(set.Contains(7, At(100, 2)));
  EXPECT_TRUE(set.Contains(7, At(100, 3)));
  // Committed removal: visible in [10, 60), invisible at >= 60.
  set.CommitRemove(7, 2, 60);
  EXPECT_TRUE(set.Contains(7, At(59)));
  EXPECT_FALSE(set.Contains(7, At(60)));
  // The read-committed "latest" snapshot no longer sees it.
  EXPECT_FALSE(set.Contains(7, At(kMaxTimestamp)));
}

TEST(VersionedEntrySet, AbortRemoveRestoresVisibility) {
  VersionedEntrySet set;
  set.AddPending(7, 1);
  set.CommitAdd(7, 1, 10);
  set.RemovePending(7, 2);
  set.AbortRemove(7, 2);
  EXPECT_TRUE(set.Contains(7, At(100, 2)));
  EXPECT_TRUE(set.Contains(7, At(kMaxTimestamp)));
}

TEST(VersionedEntrySet, ReAddAfterRemoveCreatesSecondInterval) {
  VersionedEntrySet set;
  set.AddPending(7, 1);
  set.CommitAdd(7, 1, 10);
  set.RemovePending(7, 2);
  set.CommitRemove(7, 2, 20);
  set.AddPending(7, 3);
  set.CommitAdd(7, 3, 30);
  EXPECT_TRUE(set.Contains(7, At(15)));   // First interval.
  EXPECT_FALSE(set.Contains(7, At(25)));  // Gap.
  EXPECT_TRUE(set.Contains(7, At(35)));   // Second interval.
  EXPECT_EQ(set.SizeIncludingDead(), 2u);
}

TEST(VersionedEntrySet, CompactDropsClosedIntervalsBelowWatermark) {
  VersionedEntrySet set;
  for (uint64_t e = 0; e < 5; ++e) {
    set.AddPending(e, 1);
    set.CommitAdd(e, 1, 10);
  }
  for (uint64_t e = 0; e < 3; ++e) {
    set.RemovePending(e, 2);
    set.CommitRemove(e, 2, 20 + e);  // Removed at 20, 21, 22.
  }
  EXPECT_EQ(set.Compact(21), 2u);  // Entries removed at 20 and 21.
  EXPECT_EQ(set.SizeIncludingDead(), 3u);
  // Entry removed at 22 still present (a snapshot at 21 may need it).
  EXPECT_TRUE(set.Contains(2, At(21)));
  // Pending removals are never compacted.
  set.RemovePending(3, 5);
  EXPECT_EQ(set.Compact(kMaxTimestamp - 1), 1u);  // Only entity 2's interval.
}

TEST(LabelIndex, LookupFiltersBySnapshot) {
  LabelIndex index;
  index.AddPending(1, 100, 5);
  index.AddPending(1, 101, 5);
  index.CommitAdd(1, 100, 5, 10);
  index.CommitAdd(1, 101, 5, 20);
  EXPECT_EQ(index.Lookup(1, At(15)).size(), 1u);
  EXPECT_EQ(index.Lookup(1, At(25)).size(), 2u);
  EXPECT_TRUE(index.Lookup(2, At(25)).empty());  // Unknown label.
  EXPECT_TRUE(index.Has(1, 100, At(15)));
  EXPECT_FALSE(index.Has(1, 101, At(15)));
}

TEST(LabelIndex, StatsAndCompaction) {
  LabelIndex index;
  for (NodeId n = 0; n < 10; ++n) {
    index.AddPending(1, n, 1);
    index.CommitAdd(1, n, 1, 5);
  }
  for (NodeId n = 0; n < 4; ++n) {
    index.RemovePending(1, n, 2);
    index.CommitRemove(1, n, 2, 8);
  }
  LabelIndexStats stats = index.Stats();
  EXPECT_EQ(stats.keys, 1u);
  EXPECT_EQ(stats.entries_total, 10u);
  EXPECT_EQ(index.Compact(10), 4u);
  EXPECT_EQ(index.Stats().entries_total, 6u);
  EXPECT_EQ(index.Stats().compacted, 4u);
}

TEST(PropertyIndex, ExactLookup) {
  PropertyIndex index;
  index.AddPending(1, PropertyValue(int64_t{30}), 100, 5);
  index.CommitAdd(1, PropertyValue(int64_t{30}), 100, 5, 10);
  EXPECT_EQ(index.Lookup(1, PropertyValue(int64_t{30}), At(10)).size(), 1u);
  EXPECT_TRUE(index.Lookup(1, PropertyValue(int64_t{31}), At(10)).empty());
  // Same value under a different key id is distinct.
  EXPECT_TRUE(index.Lookup(2, PropertyValue(int64_t{30}), At(10)).empty());
}

TEST(PropertyIndex, RangeScanOrderedInclusive) {
  PropertyIndex index;
  for (int64_t v = 0; v < 10; ++v) {
    index.AddPending(1, PropertyValue(v), 100 + v, 5);
    index.CommitAdd(1, PropertyValue(v), 100 + v, 5, 10);
  }
  auto hits = index.Scan(1, PropertyValue(int64_t{3}),
                         PropertyValue(int64_t{6}), At(10));
  EXPECT_EQ(hits, (std::vector<uint64_t>{103, 104, 105, 106}));
  // Open bounds.
  EXPECT_EQ(index.Scan(1, std::nullopt, PropertyValue(int64_t{2}), At(10))
                .size(),
            3u);
  EXPECT_EQ(index.Scan(1, PropertyValue(int64_t{8}), std::nullopt, At(10))
                .size(),
            2u);
  EXPECT_EQ(index.Scan(1, std::nullopt, std::nullopt, At(10)).size(), 10u);
}

TEST(PropertyIndex, RangeScanDoesNotCrossKeys) {
  PropertyIndex index;
  index.AddPending(1, PropertyValue(int64_t{5}), 100, 9);
  index.CommitAdd(1, PropertyValue(int64_t{5}), 100, 9, 10);
  index.AddPending(2, PropertyValue(int64_t{5}), 200, 9);
  index.CommitAdd(2, PropertyValue(int64_t{5}), 200, 9, 10);
  auto hits = index.Scan(1, std::nullopt, std::nullopt, At(10));
  EXPECT_EQ(hits, (std::vector<uint64_t>{100}));
}

TEST(PropertyIndex, MixedValueKindsInOneKey) {
  PropertyIndex index;
  index.AddPending(1, PropertyValue(int64_t{5}), 1, 9);
  index.CommitAdd(1, PropertyValue(int64_t{5}), 1, 9, 10);
  index.AddPending(1, PropertyValue("text"), 2, 9);
  index.CommitAdd(1, PropertyValue("text"), 2, 9, 10);
  index.AddPending(1, PropertyValue(true), 3, 9);
  index.CommitAdd(1, PropertyValue(true), 3, 9, 10);
  // Full scan sees all three, ordered bool < int < string.
  auto hits = index.Scan(1, std::nullopt, std::nullopt, At(10));
  EXPECT_EQ(hits, (std::vector<uint64_t>{3, 1, 2}));
  // Int-only range.
  auto ints = index.Scan(1, PropertyValue(int64_t{0}),
                         PropertyValue(int64_t{100}), At(10));
  EXPECT_EQ(ints, (std::vector<uint64_t>{1}));
}

TEST(PropertyIndex, CompactAcrossKeys) {
  PropertyIndex index;
  for (int64_t v = 0; v < 4; ++v) {
    index.AddPending(1, PropertyValue(v), 100 + v, 5);
    index.CommitAdd(1, PropertyValue(v), 100 + v, 5, 10);
    index.RemovePending(1, PropertyValue(v), 100 + v, 6);
    index.CommitRemove(1, PropertyValue(v), 100 + v, 6, 20);
  }
  EXPECT_EQ(index.Stats().entries_total, 4u);
  EXPECT_EQ(index.Compact(20), 4u);
  EXPECT_EQ(index.Stats().entries_total, 0u);
}

}  // namespace
}  // namespace neosi
