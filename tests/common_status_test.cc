// Status / Result plumbing.

#include <gtest/gtest.h>

#include "common/status.h"

namespace neosi {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("node 7");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "node 7");
  EXPECT_EQ(s.ToString(), "NotFound: node 7");
}

TEST(Status, EveryConstructorMapsToItsPredicate) {
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::Aborted("").IsAborted());
  EXPECT_TRUE(Status::Deadlock("").IsDeadlock());
  EXPECT_TRUE(Status::Corruption("").IsCorruption());
  EXPECT_TRUE(Status::IOError("").IsIOError());
  EXPECT_TRUE(Status::FailedPrecondition("").IsFailedPrecondition());
  EXPECT_TRUE(Status::AlreadyExists("").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("").IsOutOfRange());
  EXPECT_TRUE(Status::NotSupported("").IsNotSupported());
  EXPECT_TRUE(Status::Internal("").IsInternal());
}

TEST(Status, RetryablePredicateCoversConflictAndDeadlock) {
  EXPECT_TRUE(Status::Aborted("").IsRetryable());
  EXPECT_TRUE(Status::Deadlock("").IsRetryable());
  EXPECT_FALSE(Status::NotFound("").IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
}

TEST(Status, CodeToString) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlock), "Deadlock");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("x"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Status Fails() { return Status::IOError("boom"); }
Status Chained() {
  NEOSI_RETURN_IF_ERROR(Fails());
  return Status::OK();
}
Result<int> Five() { return 5; }
Status UsesAssign() {
  int v = 0;
  NEOSI_ASSIGN_OR_RETURN(v, Five());
  return v == 5 ? Status::OK() : Status::Internal("wrong");
}

TEST(Result, Macros) {
  EXPECT_TRUE(Chained().IsIOError());
  EXPECT_TRUE(UsesAssign().ok());
}

}  // namespace
}  // namespace neosi
