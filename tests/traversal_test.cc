// Traversal utilities over the transactional API.

#include <gtest/gtest.h>

#include "graph/traversal.h"
#include "graph/graph_database.h"

namespace neosi {
namespace {

class TraversalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.in_memory = true;
    db_ = std::move(*GraphDatabase::Open(options));
    // Path graph 0-1-2-3-4 plus a triangle 0-5-6-0, and an isolate 7.
    auto txn = db_->Begin();
    for (int i = 0; i < 8; ++i) n_.push_back(*txn->CreateNode({"V"}));
    auto edge = [&](int a, int b) {
      ASSERT_TRUE(txn->CreateRelationship(n_[a], n_[b], "E").ok());
    };
    edge(0, 1);
    edge(1, 2);
    edge(2, 3);
    edge(3, 4);
    edge(0, 5);
    edge(5, 6);
    edge(6, 0);
    ASSERT_TRUE(txn->Commit().ok());
  }

  std::unique_ptr<GraphDatabase> db_;
  std::vector<NodeId> n_;
};

TEST_F(TraversalTest, KHopNeighborhood) {
  auto txn = db_->Begin();
  auto one_hop = traversal::KHopNeighborhood(*txn, n_[0], 1);
  ASSERT_TRUE(one_hop.ok());
  EXPECT_EQ(one_hop->size(), 3u);  // 1, 5, 6.
  auto two_hop = traversal::KHopNeighborhood(*txn, n_[0], 2);
  ASSERT_TRUE(two_hop.ok());
  EXPECT_EQ(two_hop->size(), 4u);  // + 2.
  auto all = traversal::KHopNeighborhood(*txn, n_[0], 10);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 6u);  // Everything but the isolate and self.
}

TEST_F(TraversalTest, KHopDirectional) {
  auto txn = db_->Begin();
  auto out = traversal::KHopNeighborhood(*txn, n_[0], 1,
                                         Direction::kOutgoing);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);  // 0->1, 0->5.
  auto in = traversal::KHopNeighborhood(*txn, n_[0], 1, Direction::kIncoming);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(in->size(), 1u);  // 6->0.
}

TEST_F(TraversalTest, ShortestPathFindsShortest) {
  auto txn = db_->Begin();
  auto path = traversal::ShortestPath(*txn, n_[0], n_[4]);
  ASSERT_TRUE(path.ok());
  ASSERT_TRUE(path->has_value());
  EXPECT_EQ((**path).size(), 5u);  // 0-1-2-3-4.
  EXPECT_EQ((**path).front(), n_[0]);
  EXPECT_EQ((**path).back(), n_[4]);

  auto tri = traversal::ShortestPath(*txn, n_[5], n_[6]);
  ASSERT_TRUE(tri.ok());
  EXPECT_EQ((**tri).size(), 2u);  // Direct edge.
}

TEST_F(TraversalTest, ShortestPathToSelf) {
  auto txn = db_->Begin();
  auto path = traversal::ShortestPath(*txn, n_[2], n_[2]);
  ASSERT_TRUE(path.ok());
  ASSERT_TRUE(path->has_value());
  EXPECT_EQ((**path).size(), 1u);
}

TEST_F(TraversalTest, NoPathToIsolate) {
  auto txn = db_->Begin();
  auto path = traversal::ShortestPath(*txn, n_[0], n_[7]);
  ASSERT_TRUE(path.ok());
  EXPECT_FALSE(path->has_value());
  auto exists = traversal::PathExists(*txn, n_[0], n_[7]);
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
}

TEST_F(TraversalTest, MaxDepthBoundsSearch) {
  auto txn = db_->Begin();
  auto path = traversal::ShortestPath(*txn, n_[0], n_[4], /*max_depth=*/2);
  ASSERT_TRUE(path.ok());
  EXPECT_FALSE(path->has_value());  // Needs 4 hops.
}

TEST_F(TraversalTest, ComponentSize) {
  auto txn = db_->Begin();
  auto size = traversal::ComponentSize(*txn, n_[0]);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 7u);  // All but the isolate.
  auto isolate = traversal::ComponentSize(*txn, n_[7]);
  ASSERT_TRUE(isolate.ok());
  EXPECT_EQ(*isolate, 1u);
}

TEST_F(TraversalTest, TraversalSeesOwnWrites) {
  auto txn = db_->Begin();
  // Bridge the isolate inside the transaction.
  ASSERT_TRUE(txn->CreateRelationship(n_[4], n_[7], "E").ok());
  auto exists = traversal::PathExists(*txn, n_[0], n_[7]);
  ASSERT_TRUE(exists.ok());
  EXPECT_TRUE(*exists);
  // Another transaction does not see the bridge.
  auto other = db_->Begin();
  auto other_exists = traversal::PathExists(*other, n_[0], n_[7]);
  ASSERT_TRUE(other_exists.ok());
  EXPECT_FALSE(*other_exists);
}

TEST_F(TraversalTest, SnapshotTraversalImmuneToConcurrentCut) {
  auto walker = db_->Begin(IsolationLevel::kSnapshotIsolation);
  // Force the snapshot before the cut (any read pins nothing; snapshot is
  // by timestamp).
  ASSERT_TRUE(traversal::PathExists(*walker, n_[0], n_[4]).ok());
  {
    auto vandal = db_->Begin();
    auto rels = vandal->GetRelationships(n_[2], Direction::kBoth);
    ASSERT_TRUE(rels.ok());
    for (RelId r : *rels) ASSERT_TRUE(vandal->DeleteRelationship(r).ok());
    ASSERT_TRUE(vandal->Commit().ok());
  }
  auto still = traversal::PathExists(*walker, n_[0], n_[4]);
  ASSERT_TRUE(still.ok());
  EXPECT_TRUE(*still) << "snapshot traversal must not observe the cut";
  // A new transaction observes the cut.
  auto fresh = db_->Begin();
  auto gone = traversal::PathExists(*fresh, n_[0], n_[4]);
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(*gone);
}

}  // namespace
}  // namespace neosi
