// End-to-end CRUD through the public GraphDatabase / Transaction API.

#include <gtest/gtest.h>

#include "graph/graph_database.h"

namespace neosi {
namespace {

std::unique_ptr<GraphDatabase> OpenDb() {
  DatabaseOptions options;
  options.in_memory = true;
  auto db = GraphDatabase::Open(options);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(*db);
}

TEST(GraphBasic, CreateAndReadNode) {
  auto db = OpenDb();
  auto txn = db->Begin();
  auto id = txn->CreateNode({"Person", "Admin"},
                            {{"name", PropertyValue("alice")},
                             {"age", PropertyValue(int64_t{30})}});
  ASSERT_TRUE(id.ok()) << id.status();
  ASSERT_TRUE(txn->Commit().ok());

  auto reader = db->Begin();
  auto view = reader->GetNode(*id);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ(view->id, *id);
  ASSERT_EQ(view->labels.size(), 2u);
  EXPECT_EQ(view->props.at("name").AsString(), "alice");
  EXPECT_EQ(view->props.at("age").AsInt(), 30);
}

TEST(GraphBasic, GetMissingNodeIsNotFound) {
  auto db = OpenDb();
  auto txn = db->Begin();
  EXPECT_TRUE(txn->GetNode(12345).status().IsNotFound());
}

TEST(GraphBasic, SetAndRemoveProperty) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({"Person"}, {{"name", PropertyValue("bob")}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = db->Begin();
    ASSERT_TRUE(
        txn->SetNodeProperty(id, "city", PropertyValue("madrid")).ok());
    ASSERT_TRUE(txn->RemoveNodeProperty(id, "name").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin();
  auto view = reader->GetNode(id);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->props.count("name"), 0u);
  EXPECT_EQ(view->props.at("city").AsString(), "madrid");
}

TEST(GraphBasic, AddRemoveLabel) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({"Person"});
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->AddLabel(id, "Admin").ok());
    ASSERT_TRUE(txn->RemoveLabel(id, "Person").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin();
  EXPECT_TRUE(*reader->NodeHasLabel(id, "Admin"));
  EXPECT_FALSE(*reader->NodeHasLabel(id, "Person"));
}

TEST(GraphBasic, CreateRelationshipAndTraverse) {
  auto db = OpenDb();
  NodeId a, b;
  RelId rel;
  {
    auto txn = db->Begin();
    a = *txn->CreateNode({"Person"}, {{"name", PropertyValue("a")}});
    b = *txn->CreateNode({"Person"}, {{"name", PropertyValue("b")}});
    auto r = txn->CreateRelationship(a, b, "KNOWS",
                                     {{"since", PropertyValue(int64_t{2020})}});
    ASSERT_TRUE(r.ok()) << r.status();
    rel = *r;
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin();
  auto view = reader->GetRelationship(rel);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->src, a);
  EXPECT_EQ(view->dst, b);
  EXPECT_EQ(view->type, "KNOWS");
  EXPECT_EQ(view->props.at("since").AsInt(), 2020);

  auto out = reader->GetRelationships(a, Direction::kOutgoing);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0], rel);

  auto in = reader->GetRelationships(b, Direction::kIncoming);
  ASSERT_TRUE(in.ok());
  ASSERT_EQ(in->size(), 1u);

  auto none = reader->GetRelationships(b, Direction::kOutgoing);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  auto neighbors = reader->GetNeighbors(a);
  ASSERT_TRUE(neighbors.ok());
  ASSERT_EQ(neighbors->size(), 1u);
  EXPECT_EQ((*neighbors)[0], b);
}

TEST(GraphBasic, SelfLoop) {
  auto db = OpenDb();
  auto txn = db->Begin();
  NodeId n = *txn->CreateNode({"Node"});
  auto rel = txn->CreateRelationship(n, n, "SELF");
  ASSERT_TRUE(rel.ok()) << rel.status();
  ASSERT_TRUE(txn->Commit().ok());

  auto reader = db->Begin();
  auto rels = reader->GetRelationships(n, Direction::kBoth);
  ASSERT_TRUE(rels.ok());
  EXPECT_EQ(rels->size(), 1u);  // Counted once.
  auto outgoing = reader->GetRelationships(n, Direction::kOutgoing);
  EXPECT_EQ(outgoing->size(), 1u);
  auto incoming = reader->GetRelationships(n, Direction::kIncoming);
  EXPECT_EQ(incoming->size(), 1u);
}

TEST(GraphBasic, TypeFilteredAdjacency) {
  auto db = OpenDb();
  auto txn = db->Begin();
  NodeId a = *txn->CreateNode({});
  NodeId b = *txn->CreateNode({});
  NodeId c = *txn->CreateNode({});
  ASSERT_TRUE(txn->CreateRelationship(a, b, "KNOWS").ok());
  ASSERT_TRUE(txn->CreateRelationship(a, c, "WORKS_WITH").ok());
  ASSERT_TRUE(txn->Commit().ok());

  auto reader = db->Begin();
  auto knows =
      reader->GetRelationships(a, Direction::kOutgoing, std::string("KNOWS"));
  ASSERT_TRUE(knows.ok());
  EXPECT_EQ(knows->size(), 1u);
  auto missing_type = reader->GetRelationships(a, Direction::kBoth,
                                               std::string("NO_SUCH_TYPE"));
  ASSERT_TRUE(missing_type.ok());
  EXPECT_TRUE(missing_type->empty());
}

TEST(GraphBasic, DeleteRelationship) {
  auto db = OpenDb();
  NodeId a, b;
  RelId rel;
  {
    auto txn = db->Begin();
    a = *txn->CreateNode({});
    b = *txn->CreateNode({});
    rel = *txn->CreateRelationship(a, b, "KNOWS");
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->DeleteRelationship(rel).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin();
  EXPECT_TRUE(reader->GetRelationship(rel).status().IsNotFound());
  EXPECT_TRUE(reader->GetRelationships(a)->empty());
}

TEST(GraphBasic, DeleteNodeRequiresNoRelationships) {
  auto db = OpenDb();
  NodeId a, b;
  RelId rel;
  {
    auto txn = db->Begin();
    a = *txn->CreateNode({});
    b = *txn->CreateNode({});
    rel = *txn->CreateRelationship(a, b, "KNOWS");
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = db->Begin();
    EXPECT_TRUE(txn->DeleteNode(a).IsFailedPrecondition());
    ASSERT_TRUE(txn->DeleteRelationship(rel).ok());
    EXPECT_TRUE(txn->DeleteNode(a).ok());  // Now allowed.
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin();
  EXPECT_TRUE(reader->GetNode(a).status().IsNotFound());
  EXPECT_TRUE(reader->GetNode(b).ok());
}

TEST(GraphBasic, AbortRollsBackEverything) {
  auto db = OpenDb();
  NodeId keep;
  {
    auto txn = db->Begin();
    keep = *txn->CreateNode({"Keep"}, {{"v", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = db->Begin();
    auto temp = txn->CreateNode({"Temp"});
    ASSERT_TRUE(temp.ok());
    ASSERT_TRUE(txn->SetNodeProperty(keep, "v", PropertyValue(int64_t{2})).ok());
    ASSERT_TRUE(txn->CreateRelationship(keep, *temp, "R").ok());
    ASSERT_TRUE(txn->Abort().ok());
  }
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodeProperty(keep, "v")->AsInt(), 1);
  EXPECT_TRUE(reader->GetNodesByLabel("Temp")->empty());
  EXPECT_TRUE(reader->GetRelationships(keep)->empty());
}

TEST(GraphBasic, DestructorAborts) {
  auto db = OpenDb();
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->CreateNode({"Ghost"}).ok());
    // No commit: destructor must roll back.
  }
  auto reader = db->Begin();
  EXPECT_TRUE(reader->GetNodesByLabel("Ghost")->empty());
  EXPECT_EQ(db->engine().active_txns.ActiveCount(), 1u);  // Only reader.
}

TEST(GraphBasic, OperationsOnFinishedTxnFail) {
  auto db = OpenDb();
  auto txn = db->Begin();
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_TRUE(txn->CreateNode({}).status().IsFailedPrecondition());
  EXPECT_TRUE(txn->Commit().IsFailedPrecondition());
  EXPECT_TRUE(txn->Abort().IsFailedPrecondition());
}

TEST(GraphBasic, LabelScan) {
  auto db = OpenDb();
  std::vector<NodeId> people;
  {
    auto txn = db->Begin();
    for (int i = 0; i < 10; ++i) {
      people.push_back(*txn->CreateNode({"Person"}));
    }
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(txn->CreateNode({"Robot"}).ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin();
  auto persons = reader->GetNodesByLabel("Person");
  ASSERT_TRUE(persons.ok());
  EXPECT_EQ(persons->size(), 10u);
  EXPECT_EQ(reader->GetNodesByLabel("Robot")->size(), 5u);
  EXPECT_TRUE(reader->GetNodesByLabel("Unicorn")->empty());
}

TEST(GraphBasic, PropertyLookupAndRangeScan) {
  auto db = OpenDb();
  {
    auto txn = db->Begin();
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(txn->CreateNode({"P"}, {{"age", PropertyValue(int64_t{i})}})
                      .ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin();
  EXPECT_EQ(
      reader->GetNodesByProperty("age", PropertyValue(int64_t{7}))->size(),
      1u);
  auto range = reader->GetNodesByPropertyRange(
      "age", PropertyValue(int64_t{5}), PropertyValue(int64_t{9}));
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->size(), 5u);
  auto open_low = reader->GetNodesByPropertyRange("age", std::nullopt,
                                                  PropertyValue(int64_t{3}));
  ASSERT_TRUE(open_low.ok());
  EXPECT_EQ(open_low->size(), 4u);  // 0,1,2,3
}

TEST(GraphBasic, AllNodes) {
  auto db = OpenDb();
  {
    auto txn = db->Begin();
    for (int i = 0; i < 7; ++i) ASSERT_TRUE(txn->CreateNode({}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin();
  EXPECT_EQ(reader->AllNodes()->size(), 7u);
}

TEST(GraphBasic, RelPropertyIndex) {
  auto db = OpenDb();
  {
    auto txn = db->Begin();
    NodeId a = *txn->CreateNode({});
    NodeId b = *txn->CreateNode({});
    ASSERT_TRUE(txn->CreateRelationship(
                        a, b, "EDGE", {{"weight", PropertyValue(int64_t{10})}})
                    .ok());
    ASSERT_TRUE(txn->CreateRelationship(
                        b, a, "EDGE", {{"weight", PropertyValue(int64_t{20})}})
                    .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin();
  EXPECT_EQ(
      reader->GetRelsByProperty("weight", PropertyValue(int64_t{10}))->size(),
      1u);
}

TEST(GraphBasic, CreatedAndDeletedInSameTxnLeavesNoTrace) {
  auto db = OpenDb();
  auto txn = db->Begin();
  NodeId n = *txn->CreateNode({"Fleeting"});
  ASSERT_TRUE(txn->DeleteNode(n).ok());
  ASSERT_TRUE(txn->Commit().ok());

  auto reader = db->Begin();
  EXPECT_TRUE(reader->GetNode(n).status().IsNotFound());
  EXPECT_TRUE(reader->GetNodesByLabel("Fleeting")->empty());
  // The record id was recycled: no tombstone lingers in the store.
  EXPECT_FALSE(db->engine().store.NodeInUse(n));
}

}  // namespace
}  // namespace neosi
