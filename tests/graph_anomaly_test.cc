// The anomalies that motivate the paper (§1): unrepeatable reads and
// phantom reads occur under read committed and are eliminated by snapshot
// isolation. These tests construct each anomaly deterministically.

#include <gtest/gtest.h>

#include "graph/graph_database.h"

namespace neosi {
namespace {

std::unique_ptr<GraphDatabase> OpenDb() {
  DatabaseOptions options;
  options.in_memory = true;
  auto db = GraphDatabase::Open(options);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(*db);
}

// --- Unrepeatable reads ----------------------------------------------------

TEST(Anomalies, UnrepeatableReadUnderReadCommitted) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin(IsolationLevel::kReadCommitted);
  const int64_t first = reader->GetNodeProperty(id, "v")->AsInt();
  {
    auto writer = db->Begin();
    ASSERT_TRUE(writer->SetNodeProperty(id, "v", PropertyValue(int64_t{2})).ok());
    ASSERT_TRUE(writer->Commit().ok());
  }
  const int64_t second = reader->GetNodeProperty(id, "v")->AsInt();
  EXPECT_NE(first, second) << "read committed must expose the new value";
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);
}

TEST(Anomalies, RepeatableReadUnderSnapshotIsolation) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  const int64_t first = reader->GetNodeProperty(id, "v")->AsInt();
  {
    auto writer = db->Begin();
    ASSERT_TRUE(writer->SetNodeProperty(id, "v", PropertyValue(int64_t{2})).ok());
    ASSERT_TRUE(writer->Commit().ok());
  }
  const int64_t second = reader->GetNodeProperty(id, "v")->AsInt();
  EXPECT_EQ(first, second) << "snapshot isolation must be repeatable";
}

// --- Phantom reads (label predicate) ---------------------------------------

TEST(Anomalies, PhantomInLabelScanUnderReadCommitted) {
  auto db = OpenDb();
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->CreateNode({"Person"}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin(IsolationLevel::kReadCommitted);
  const size_t first = reader->GetNodesByLabel("Person")->size();
  {
    auto writer = db->Begin();
    ASSERT_TRUE(writer->CreateNode({"Person"}).ok());
    ASSERT_TRUE(writer->Commit().ok());
  }
  const size_t second = reader->GetNodesByLabel("Person")->size();
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(second, 2u) << "phantom row must appear under read committed";
}

TEST(Anomalies, NoPhantomInLabelScanUnderSnapshotIsolation) {
  auto db = OpenDb();
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->CreateNode({"Person"}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  const size_t first = reader->GetNodesByLabel("Person")->size();
  {
    auto writer = db->Begin();
    ASSERT_TRUE(writer->CreateNode({"Person"}).ok());
    ASSERT_TRUE(writer->Commit().ok());
  }
  const size_t second = reader->GetNodesByLabel("Person")->size();
  EXPECT_EQ(first, second) << "snapshot isolation must not admit phantoms";
}

// --- Phantom reads (property range predicate) ------------------------------

TEST(Anomalies, PhantomInRangeScanUnderReadCommitted) {
  auto db = OpenDb();
  {
    auto txn = db->Begin();
    ASSERT_TRUE(
        txn->CreateNode({"P"}, {{"age", PropertyValue(int64_t{30})}}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin(IsolationLevel::kReadCommitted);
  auto scan = [&] {
    return reader
        ->GetNodesByPropertyRange("age", PropertyValue(int64_t{18}),
                                  PropertyValue(int64_t{65}))
        ->size();
  };
  const size_t first = scan();
  {
    auto writer = db->Begin();
    ASSERT_TRUE(
        writer->CreateNode({"P"}, {{"age", PropertyValue(int64_t{40})}}).ok());
    ASSERT_TRUE(writer->Commit().ok());
  }
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(scan(), 2u);
}

TEST(Anomalies, NoPhantomInRangeScanUnderSnapshotIsolation) {
  auto db = OpenDb();
  {
    auto txn = db->Begin();
    ASSERT_TRUE(
        txn->CreateNode({"P"}, {{"age", PropertyValue(int64_t{30})}}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  auto scan = [&] {
    return reader
        ->GetNodesByPropertyRange("age", PropertyValue(int64_t{18}),
                                  PropertyValue(int64_t{65}))
        ->size();
  };
  const size_t first = scan();
  {
    auto writer = db->Begin();
    ASSERT_TRUE(
        writer->CreateNode({"P"}, {{"age", PropertyValue(int64_t{40})}}).ok());
    ASSERT_TRUE(writer->Commit().ok());
  }
  EXPECT_EQ(scan(), first);
}

// --- Vanishing path (the paper's two-step traversal example, §1) -----------

TEST(Anomalies, PathVanishesMidTransactionUnderReadCommitted) {
  auto db = OpenDb();
  NodeId a, b;
  RelId edge;
  {
    auto txn = db->Begin();
    a = *txn->CreateNode({});
    b = *txn->CreateNode({});
    edge = *txn->CreateRelationship(a, b, "ROAD");
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto walker = db->Begin(IsolationLevel::kReadCommitted);
  // Step 1: the path a->b is observed.
  ASSERT_EQ(walker->GetRelationships(a, Direction::kOutgoing)->size(), 1u);
  // A concurrent transaction removes the edge.
  {
    auto vandal = db->Begin();
    ASSERT_TRUE(vandal->DeleteRelationship(edge).ok());
    ASSERT_TRUE(vandal->Commit().ok());
  }
  // Step 2: the traversed path no longer exists.
  EXPECT_TRUE(walker->GetRelationships(a, Direction::kOutgoing)->empty());
}

TEST(Anomalies, PathStableMidTransactionUnderSnapshotIsolation) {
  auto db = OpenDb();
  NodeId a, b;
  RelId edge;
  {
    auto txn = db->Begin();
    a = *txn->CreateNode({});
    b = *txn->CreateNode({});
    edge = *txn->CreateRelationship(a, b, "ROAD");
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto walker = db->Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_EQ(walker->GetRelationships(a, Direction::kOutgoing)->size(), 1u);
  {
    auto vandal = db->Begin();
    ASSERT_TRUE(vandal->DeleteRelationship(edge).ok());
    ASSERT_TRUE(vandal->Commit().ok());
  }
  // The snapshot still contains the edge (tombstone retained, §4).
  auto rels = walker->GetRelationships(a, Direction::kOutgoing);
  ASSERT_TRUE(rels.ok());
  EXPECT_EQ(rels->size(), 1u);
  EXPECT_TRUE(walker->RelExists(edge));
}

// --- Read committed blocks readers on writers; SI does not ------------------

TEST(Anomalies, SiReadsDoNotBlockOnWriteLocks) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto writer = db->Begin();
  ASSERT_TRUE(writer->SetNodeProperty(id, "v", PropertyValue(int64_t{2})).ok());
  // Writer holds the long write lock. An SI reader must not block (and must
  // see the old committed value, not the dirty one).
  auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  auto v = reader->GetNodeProperty(id, "v");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 1);
  ASSERT_TRUE(writer->Commit().ok());
}

// --- Write skew and the read-only anomaly, parameterized by level ----------
//
// The two anomalies SI admits BY DESIGN (§1 of the SSI paper) run under
// both snapshot levels: under kSnapshotIsolation the anomaly must occur
// (the engine would be over-restrictive otherwise), under kSerializable it
// must be prevented with a retryable SerializationFailure.

class SnapshotAnomalies : public ::testing::TestWithParam<IsolationLevel> {
 protected:
  static bool Serializable() {
    return GetParam() == IsolationLevel::kSerializable;
  }
};

TEST_P(SnapshotAnomalies, WriteSkew) {
  auto db = OpenDb();
  NodeId a, b;
  {
    auto txn = db->Begin();
    a = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{50})}});
    b = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{50})}});
    ASSERT_TRUE(txn->Commit().ok());
  }

  // Each transaction checks the joint constraint (a + b >= 100), then
  // withdraws from its own key — disjoint write sets, overlapping reads.
  auto t1 = db->Begin(GetParam());
  auto t2 = db->Begin(GetParam());
  ASSERT_EQ(t1->GetNodeProperty(a, "v")->AsInt() +
                t1->GetNodeProperty(b, "v")->AsInt(),
            100);
  ASSERT_EQ(t2->GetNodeProperty(a, "v")->AsInt() +
                t2->GetNodeProperty(b, "v")->AsInt(),
            100);
  ASSERT_TRUE(t1->SetNodeProperty(a, "v", PropertyValue(int64_t{-50})).ok());
  ASSERT_TRUE(t2->SetNodeProperty(b, "v", PropertyValue(int64_t{-50})).ok());

  ASSERT_TRUE(t1->Commit().ok());
  Status s2 = t2->Commit();

  auto check = db->Begin();
  const int64_t total = check->GetNodeProperty(a, "v")->AsInt() +
                        check->GetNodeProperty(b, "v")->AsInt();
  if (Serializable()) {
    // Prevented: the second committer is the doomed side of the 2-cycle.
    EXPECT_TRUE(s2.IsSerializationFailure()) << s2;
    EXPECT_TRUE(s2.IsRetryable());
    EXPECT_EQ(total, 0) << "only one withdrawal may land";
  } else {
    // SI admits it: both commit, the joint constraint is broken.
    EXPECT_TRUE(s2.ok()) << s2;
    EXPECT_EQ(total, -100);
  }
}

TEST_P(SnapshotAnomalies, ReadOnlyTransactionAnomaly) {
  auto db = OpenDb();
  NodeId x, y;
  {
    auto txn = db->Begin();
    x = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    y = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }

  // The ROAnom interleaving (serializable-parallel.spec permutation 2):
  // s2 reads both, s1 updates Y and commits, read-only s3 observes s1's Y
  // but (necessarily) not s2's later X write, s2 then writes X.
  auto s2 = db->Begin(GetParam());
  ASSERT_EQ(s2->GetNodeProperty(x, "v")->AsInt(), 0);
  ASSERT_EQ(s2->GetNodeProperty(y, "v")->AsInt(), 0);

  auto s1 = db->Begin(GetParam());
  ASSERT_EQ(s1->GetNodeProperty(y, "v")->AsInt(), 0);
  ASSERT_TRUE(s1->SetNodeProperty(y, "v", PropertyValue(int64_t{20})).ok());
  ASSERT_TRUE(s1->Commit().ok());

  auto s3 = db->Begin(GetParam());
  const int64_t s3_x = s3->GetNodeProperty(x, "v")->AsInt();
  const int64_t s3_y = s3->GetNodeProperty(y, "v")->AsInt();
  ASSERT_TRUE(s3->Commit().ok());
  EXPECT_EQ(s3_y, 20) << "s3 began after s1's commit";

  Status wx = s2->SetNodeProperty(x, "v", PropertyValue(int64_t{-11}));
  if (wx.ok()) wx = s2->Commit();

  auto check = db->Begin();
  if (Serializable()) {
    // s3's observation {x=0, y=20} pins s3 after s1 and before s2 in any
    // serial order — but s2 read y=0, so it must precede s1: a cycle.
    // Exactly s2 aborts, and x was never written.
    EXPECT_TRUE(wx.IsSerializationFailure()) << wx;
    EXPECT_EQ(check->GetNodeProperty(x, "v")->AsInt(), 0);
  } else {
    // SI admits it: all three commit even though s3's observation is
    // inconsistent with every serial order.
    EXPECT_TRUE(wx.ok()) << wx;
    EXPECT_EQ(s3_x, 0);
    EXPECT_EQ(check->GetNodeProperty(x, "v")->AsInt(), -11);
  }
  EXPECT_EQ(check->GetNodeProperty(y, "v")->AsInt(), 20);
}

INSTANTIATE_TEST_SUITE_P(
    Levels, SnapshotAnomalies,
    ::testing::Values(IsolationLevel::kSnapshotIsolation,
                      IsolationLevel::kSerializable),
    [](const ::testing::TestParamInfo<IsolationLevel>& info) {
      return info.param == IsolationLevel::kSerializable
                 ? "Serializable"
                 : "SnapshotIsolation";
    });

TEST(Anomalies, NoDirtyReadsUnderEitherIsolation) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto writer = db->Begin();
  ASSERT_TRUE(writer->SetNodeProperty(id, "v", PropertyValue(int64_t{99})).ok());
  // SI reader: sees committed value.
  auto si_reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  EXPECT_EQ(si_reader->GetNodeProperty(id, "v")->AsInt(), 1);
  ASSERT_TRUE(writer->Abort().ok());
  // After the abort, nobody ever saw 99.
  auto rc_reader = db->Begin(IsolationLevel::kReadCommitted);
  EXPECT_EQ(rc_reader->GetNodeProperty(id, "v")->AsInt(), 1);
}

}  // namespace
}  // namespace neosi
