// The anomalies that motivate the paper (§1): unrepeatable reads and
// phantom reads occur under read committed and are eliminated by snapshot
// isolation. These tests construct each anomaly deterministically.

#include <gtest/gtest.h>

#include "graph/graph_database.h"

namespace neosi {
namespace {

std::unique_ptr<GraphDatabase> OpenDb() {
  DatabaseOptions options;
  options.in_memory = true;
  auto db = GraphDatabase::Open(options);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(*db);
}

// --- Unrepeatable reads ----------------------------------------------------

TEST(Anomalies, UnrepeatableReadUnderReadCommitted) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin(IsolationLevel::kReadCommitted);
  const int64_t first = reader->GetNodeProperty(id, "v")->AsInt();
  {
    auto writer = db->Begin();
    ASSERT_TRUE(writer->SetNodeProperty(id, "v", PropertyValue(int64_t{2})).ok());
    ASSERT_TRUE(writer->Commit().ok());
  }
  const int64_t second = reader->GetNodeProperty(id, "v")->AsInt();
  EXPECT_NE(first, second) << "read committed must expose the new value";
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);
}

TEST(Anomalies, RepeatableReadUnderSnapshotIsolation) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  const int64_t first = reader->GetNodeProperty(id, "v")->AsInt();
  {
    auto writer = db->Begin();
    ASSERT_TRUE(writer->SetNodeProperty(id, "v", PropertyValue(int64_t{2})).ok());
    ASSERT_TRUE(writer->Commit().ok());
  }
  const int64_t second = reader->GetNodeProperty(id, "v")->AsInt();
  EXPECT_EQ(first, second) << "snapshot isolation must be repeatable";
}

// --- Phantom reads (label predicate) ---------------------------------------

TEST(Anomalies, PhantomInLabelScanUnderReadCommitted) {
  auto db = OpenDb();
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->CreateNode({"Person"}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin(IsolationLevel::kReadCommitted);
  const size_t first = reader->GetNodesByLabel("Person")->size();
  {
    auto writer = db->Begin();
    ASSERT_TRUE(writer->CreateNode({"Person"}).ok());
    ASSERT_TRUE(writer->Commit().ok());
  }
  const size_t second = reader->GetNodesByLabel("Person")->size();
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(second, 2u) << "phantom row must appear under read committed";
}

TEST(Anomalies, NoPhantomInLabelScanUnderSnapshotIsolation) {
  auto db = OpenDb();
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->CreateNode({"Person"}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  const size_t first = reader->GetNodesByLabel("Person")->size();
  {
    auto writer = db->Begin();
    ASSERT_TRUE(writer->CreateNode({"Person"}).ok());
    ASSERT_TRUE(writer->Commit().ok());
  }
  const size_t second = reader->GetNodesByLabel("Person")->size();
  EXPECT_EQ(first, second) << "snapshot isolation must not admit phantoms";
}

// --- Phantom reads (property range predicate) ------------------------------

TEST(Anomalies, PhantomInRangeScanUnderReadCommitted) {
  auto db = OpenDb();
  {
    auto txn = db->Begin();
    ASSERT_TRUE(
        txn->CreateNode({"P"}, {{"age", PropertyValue(int64_t{30})}}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin(IsolationLevel::kReadCommitted);
  auto scan = [&] {
    return reader
        ->GetNodesByPropertyRange("age", PropertyValue(int64_t{18}),
                                  PropertyValue(int64_t{65}))
        ->size();
  };
  const size_t first = scan();
  {
    auto writer = db->Begin();
    ASSERT_TRUE(
        writer->CreateNode({"P"}, {{"age", PropertyValue(int64_t{40})}}).ok());
    ASSERT_TRUE(writer->Commit().ok());
  }
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(scan(), 2u);
}

TEST(Anomalies, NoPhantomInRangeScanUnderSnapshotIsolation) {
  auto db = OpenDb();
  {
    auto txn = db->Begin();
    ASSERT_TRUE(
        txn->CreateNode({"P"}, {{"age", PropertyValue(int64_t{30})}}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  auto scan = [&] {
    return reader
        ->GetNodesByPropertyRange("age", PropertyValue(int64_t{18}),
                                  PropertyValue(int64_t{65}))
        ->size();
  };
  const size_t first = scan();
  {
    auto writer = db->Begin();
    ASSERT_TRUE(
        writer->CreateNode({"P"}, {{"age", PropertyValue(int64_t{40})}}).ok());
    ASSERT_TRUE(writer->Commit().ok());
  }
  EXPECT_EQ(scan(), first);
}

// --- Vanishing path (the paper's two-step traversal example, §1) -----------

TEST(Anomalies, PathVanishesMidTransactionUnderReadCommitted) {
  auto db = OpenDb();
  NodeId a, b;
  RelId edge;
  {
    auto txn = db->Begin();
    a = *txn->CreateNode({});
    b = *txn->CreateNode({});
    edge = *txn->CreateRelationship(a, b, "ROAD");
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto walker = db->Begin(IsolationLevel::kReadCommitted);
  // Step 1: the path a->b is observed.
  ASSERT_EQ(walker->GetRelationships(a, Direction::kOutgoing)->size(), 1u);
  // A concurrent transaction removes the edge.
  {
    auto vandal = db->Begin();
    ASSERT_TRUE(vandal->DeleteRelationship(edge).ok());
    ASSERT_TRUE(vandal->Commit().ok());
  }
  // Step 2: the traversed path no longer exists.
  EXPECT_TRUE(walker->GetRelationships(a, Direction::kOutgoing)->empty());
}

TEST(Anomalies, PathStableMidTransactionUnderSnapshotIsolation) {
  auto db = OpenDb();
  NodeId a, b;
  RelId edge;
  {
    auto txn = db->Begin();
    a = *txn->CreateNode({});
    b = *txn->CreateNode({});
    edge = *txn->CreateRelationship(a, b, "ROAD");
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto walker = db->Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_EQ(walker->GetRelationships(a, Direction::kOutgoing)->size(), 1u);
  {
    auto vandal = db->Begin();
    ASSERT_TRUE(vandal->DeleteRelationship(edge).ok());
    ASSERT_TRUE(vandal->Commit().ok());
  }
  // The snapshot still contains the edge (tombstone retained, §4).
  auto rels = walker->GetRelationships(a, Direction::kOutgoing);
  ASSERT_TRUE(rels.ok());
  EXPECT_EQ(rels->size(), 1u);
  EXPECT_TRUE(walker->RelExists(edge));
}

// --- Read committed blocks readers on writers; SI does not ------------------

TEST(Anomalies, SiReadsDoNotBlockOnWriteLocks) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto writer = db->Begin();
  ASSERT_TRUE(writer->SetNodeProperty(id, "v", PropertyValue(int64_t{2})).ok());
  // Writer holds the long write lock. An SI reader must not block (and must
  // see the old committed value, not the dirty one).
  auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  auto v = reader->GetNodeProperty(id, "v");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 1);
  ASSERT_TRUE(writer->Commit().ok());
}

TEST(Anomalies, NoDirtyReadsUnderEitherIsolation) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto writer = db->Begin();
  ASSERT_TRUE(writer->SetNodeProperty(id, "v", PropertyValue(int64_t{99})).ok());
  // SI reader: sees committed value.
  auto si_reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  EXPECT_EQ(si_reader->GetNodeProperty(id, "v")->AsInt(), 1);
  ASSERT_TRUE(writer->Abort().ok());
  // After the abort, nobody ever saw 99.
  auto rc_reader = db->Begin(IsolationLevel::kReadCommitted);
  EXPECT_EQ(rc_reader->GetNodeProperty(id, "v")->AsInt(), 1);
}

}  // namespace
}  // namespace neosi
