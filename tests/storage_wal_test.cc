// WAL framing, op serialization, torn-tail handling.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "storage/wal.h"

namespace neosi {
namespace {

WalRecord MakeRecord(TxnId txn, Timestamp ts) {
  WalRecord record;
  record.txn_id = txn;
  record.commit_ts = ts;
  record.ops.push_back(WalOp::CreateNode(
      1, {2, 3}, {{4, PropertyValue("value")}, {5, PropertyValue(int64_t{9})}}));
  record.ops.push_back(WalOp::SetNodeProperty(1, 4, PropertyValue(false)));
  record.ops.push_back(WalOp::AddLabel(1, 7));
  record.ops.push_back(WalOp::CreateRel(2, 1, 3, 0, {{4, PropertyValue(1.5)}}));
  record.ops.push_back(WalOp::DeleteRel(2));
  record.ops.push_back(WalOp::DeleteNode(1));
  record.ops.push_back(
      WalOp::CreateToken(TokenKind::kPropertyKey, 4, "weight"));
  record.ops.push_back(WalOp::PurgeNode(9));
  record.ops.push_back(WalOp::PurgeRel(8, 1, 3, 10, 11, 12, 13));
  record.ops.push_back(WalOp::RemoveLabel(1, 7));
  record.ops.push_back(WalOp::RemoveNodeProperty(1, 5));
  record.ops.push_back(WalOp::SetRelProperty(2, 4, PropertyValue("x")));
  record.ops.push_back(WalOp::RemoveRelProperty(2, 4));
  record.ops.push_back(WalOp::Checkpoint(123456789));
  return record;
}

TEST(WalOps, RecordRoundTrip) {
  WalRecord record = MakeRecord(42, 99);
  std::string buf;
  record.EncodeTo(&buf);
  WalRecord out;
  ASSERT_TRUE(WalRecord::DecodeFrom(Slice(buf), &out).ok());
  EXPECT_EQ(out.txn_id, 42u);
  EXPECT_EQ(out.commit_ts, 99u);
  ASSERT_EQ(out.ops.size(), record.ops.size());
  EXPECT_EQ(out.ops[0].type, WalOpType::kCreateNode);
  EXPECT_EQ(out.ops[0].labels, (std::vector<LabelId>{2, 3}));
  EXPECT_EQ(out.ops[0].props.at(4), PropertyValue("value"));
  EXPECT_EQ(out.ops[3].type, WalOpType::kCreateRel);
  EXPECT_EQ(out.ops[3].src, 1u);
  EXPECT_EQ(out.ops[3].dst, 3u);
  EXPECT_EQ(out.ops[6].name, "weight");
  EXPECT_EQ(out.ops[6].token_kind, TokenKind::kPropertyKey);
  EXPECT_EQ(out.ops[8].type, WalOpType::kPurgeRel);
  EXPECT_EQ(out.ops[8].src_prev, 10u);
  EXPECT_EQ(out.ops[8].dst_next, 13u);
  EXPECT_EQ(out.ops.back().type, WalOpType::kCheckpoint);
  EXPECT_EQ(out.ops.back().id, 123456789u);
}

TEST(WalOps, TrailingBytesRejected) {
  WalRecord record = MakeRecord(1, 2);
  std::string buf;
  record.EncodeTo(&buf);
  buf += "extra";
  WalRecord out;
  EXPECT_TRUE(WalRecord::DecodeFrom(Slice(buf), &out).IsCorruption());
}

TEST(Wal, AppendAndReadAll) {
  Wal wal(std::make_unique<InMemoryFile>());
  ASSERT_TRUE(wal.Open().ok());
  for (int i = 1; i <= 5; ++i) {
    auto lsn = wal.Append(MakeRecord(i, i * 10));
    ASSERT_TRUE(lsn.ok());
  }
  std::vector<Timestamp> seen;
  ASSERT_TRUE(wal.ReadAll([&](const WalRecord& record) {
                   seen.push_back(record.commit_ts);
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(seen, (std::vector<Timestamp>{10, 20, 30, 40, 50}));
}

TEST(Wal, LsnsAreMonotonic) {
  Wal wal(std::make_unique<InMemoryFile>());
  ASSERT_TRUE(wal.Open().ok());
  Lsn prev = 0;
  for (int i = 0; i < 3; ++i) {
    auto lsn = wal.Append(MakeRecord(1, 1));
    ASSERT_TRUE(lsn.ok());
    if (i > 0) {
      EXPECT_GT(*lsn, prev);
    }
    prev = *lsn;
  }
}

TEST(Wal, TornTailTruncated) {
  auto file = std::make_unique<InMemoryFile>();
  InMemoryFile* raw = file.get();
  Wal wal(std::move(file));
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append(MakeRecord(1, 10)).ok());
  ASSERT_TRUE(wal.Append(MakeRecord(2, 20)).ok());
  const uint64_t valid = wal.SizeBytes();
  // Simulate a torn frame: plausible header, garbage payload.
  const char torn[] = "\x40\x00\x00\x00\x99\x99\x99\x99only-half-written";
  ASSERT_TRUE(
      raw->WriteAt(wal.PhysOf(wal.NextLsn()), torn, sizeof torn).ok());

  int count = 0;
  ASSERT_TRUE(wal.ReadAll([&](const WalRecord&) {
                   ++count;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(count, 2);
  EXPECT_EQ(wal.SizeBytes(), valid);  // Tail dropped.
  // Appends continue cleanly after truncation.
  ASSERT_TRUE(wal.Append(MakeRecord(3, 30)).ok());
  count = 0;
  ASSERT_TRUE(wal.ReadAll([&](const WalRecord&) {
                   ++count;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(count, 3);
}

TEST(Wal, CorruptPayloadStopsReplay) {
  auto file = std::make_unique<InMemoryFile>();
  InMemoryFile* raw = file.get();
  Wal wal(std::move(file));
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append(MakeRecord(1, 10)).ok());
  const Lsn second = *wal.Append(MakeRecord(2, 20));
  // Flip a payload byte of the second frame: CRC must catch it.
  char byte;
  ASSERT_TRUE(raw->ReadAt(wal.PhysOf(second) + 12, 1, &byte).ok());
  byte ^= 0x40;
  ASSERT_TRUE(raw->WriteAt(wal.PhysOf(second) + 12, &byte, 1).ok());
  int count = 0;
  ASSERT_TRUE(wal.ReadAll([&](const WalRecord&) {
                   ++count;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST(Wal, ResetEmptiesLog) {
  Wal wal(std::make_unique<InMemoryFile>());
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append(MakeRecord(1, 10)).ok());
  ASSERT_TRUE(wal.Reset().ok());
  EXPECT_EQ(wal.SizeBytes(), 0u);
  int count = 0;
  ASSERT_TRUE(wal.ReadAll([&](const WalRecord&) {
                   ++count;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(count, 0);
}

TEST(Wal, OpenPositionsCursorAfterValidPrefix) {
  auto file = std::make_unique<InMemoryFile>();
  InMemoryFile* raw = file.get();
  uint64_t valid;
  std::string bytes;
  {
    Wal wal(std::move(file));
    ASSERT_TRUE(wal.Open().ok());
    ASSERT_TRUE(wal.Append(MakeRecord(1, 10)).ok());
    valid = wal.SizeBytes();
    bytes.resize(raw->Size());
    ASSERT_TRUE(raw->ReadAt(0, bytes.size(), bytes.data()).ok());
  }
  auto file2 = std::make_unique<InMemoryFile>();
  ASSERT_TRUE(file2->WriteAt(0, bytes.data(), bytes.size()).ok());
  Wal reopened(std::move(file2));
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.SizeBytes(), valid);
}

TEST(Wal, AppendBatchFramesDecodeIndividually) {
  Wal wal(std::make_unique<InMemoryFile>());
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append(MakeRecord(1, 10)).ok());

  WalRecord a = MakeRecord(2, 20);
  WalRecord b = MakeRecord(3, 30);
  WalRecord c = MakeRecord(4, 40);
  std::vector<Lsn> lsns;
  ASSERT_TRUE(wal.AppendBatch({&a, &b, &c}, &lsns).ok());
  ASSERT_EQ(lsns.size(), 3u);
  EXPECT_LT(lsns[0], lsns[1]);
  EXPECT_LT(lsns[1], lsns[2]);

  std::vector<Timestamp> seen;
  ASSERT_TRUE(wal.ReadAll([&](const WalRecord& record) {
                   seen.push_back(record.commit_ts);
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(seen, (std::vector<Timestamp>{10, 20, 30, 40}));
}

// ---------------------------------------------------------------------------
// Prefix truncation (fuzzy checkpoints)
// ---------------------------------------------------------------------------

TEST(WalTruncatePrefix, DropsOnlyThePrefix) {
  Wal wal(std::make_unique<InMemoryFile>());
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append(MakeRecord(1, 10)).ok());
  ASSERT_TRUE(wal.Append(MakeRecord(2, 20)).ok());
  const Lsn third = *wal.Append(MakeRecord(3, 30));

  ASSERT_TRUE(wal.TruncatePrefix(third).ok());
  EXPECT_EQ(wal.HeadLsn(), third);

  std::vector<Timestamp> seen;
  ASSERT_TRUE(wal.ReadAll([&](const WalRecord& record) {
                   seen.push_back(record.commit_ts);
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(seen, (std::vector<Timestamp>{30}));

  // Appends continue above the truncated prefix; lsns stay monotonic.
  const Lsn fourth = *wal.Append(MakeRecord(4, 40));
  EXPECT_GT(fourth, third);
  seen.clear();
  ASSERT_TRUE(wal.ReadAll([&](const WalRecord& record) {
                   seen.push_back(record.commit_ts);
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(seen, (std::vector<Timestamp>{30, 40}));
}

TEST(WalTruncatePrefix, AtZeroAndBelowHeadAreNoOps) {
  Wal wal(std::make_unique<InMemoryFile>());
  ASSERT_TRUE(wal.Open().ok());
  // Truncating an empty log at zero does nothing.
  ASSERT_TRUE(wal.TruncatePrefix(0).ok());
  EXPECT_EQ(wal.HeadLsn(), 0u);
  EXPECT_EQ(wal.SizeBytes(), 0u);

  ASSERT_TRUE(wal.Append(MakeRecord(1, 10)).ok());
  const Lsn second = *wal.Append(MakeRecord(2, 20));
  ASSERT_TRUE(wal.TruncatePrefix(second).ok());
  const uint64_t live = wal.SizeBytes();

  // Zero (and anything at or below the head) must not move the head back.
  ASSERT_TRUE(wal.TruncatePrefix(0).ok());
  ASSERT_TRUE(wal.TruncatePrefix(second).ok());
  EXPECT_EQ(wal.HeadLsn(), second);
  EXPECT_EQ(wal.SizeBytes(), live);
  int count = 0;
  ASSERT_TRUE(wal.ReadAll([&](const WalRecord&) {
                   ++count;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST(WalTruncatePrefix, AtEndEmptiesLogAndBeyondEndIsRejected) {
  Wal wal(std::make_unique<InMemoryFile>());
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append(MakeRecord(1, 10)).ok());
  ASSERT_TRUE(wal.Append(MakeRecord(2, 20)).ok());
  const Lsn end = wal.NextLsn();

  EXPECT_TRUE(wal.TruncatePrefix(end + 1).IsInvalidArgument());

  ASSERT_TRUE(wal.TruncatePrefix(end).ok());
  EXPECT_EQ(wal.SizeBytes(), 0u);
  int count = 0;
  ASSERT_TRUE(wal.ReadAll([&](const WalRecord&) {
                   ++count;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(count, 0);

  // The log is still appendable, with monotonically continuing lsns.
  const Lsn next = *wal.Append(MakeRecord(3, 30));
  EXPECT_GE(next, end);
  count = 0;
  ASSERT_TRUE(wal.ReadAll([&](const WalRecord&) {
                   ++count;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST(WalTruncatePrefix, HeadSurvivesReopen) {
  auto file = std::make_unique<InMemoryFile>();
  InMemoryFile* raw = file.get();
  Lsn third;
  std::string bytes;
  {
    Wal wal(std::move(file));
    ASSERT_TRUE(wal.Open().ok());
    ASSERT_TRUE(wal.Append(MakeRecord(1, 10)).ok());
    ASSERT_TRUE(wal.Append(MakeRecord(2, 20)).ok());
    third = *wal.Append(MakeRecord(3, 30));
    ASSERT_TRUE(wal.TruncatePrefix(third).ok());
    bytes.resize(raw->Size());
    ASSERT_TRUE(raw->ReadAt(0, bytes.size(), bytes.data()).ok());
  }
  auto file2 = std::make_unique<InMemoryFile>();
  ASSERT_TRUE(file2->WriteAt(0, bytes.data(), bytes.size()).ok());
  Wal reopened(std::move(file2));
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.HeadLsn(), third);
  std::vector<Timestamp> seen;
  ASSERT_TRUE(reopened.ReadAll([&](const WalRecord& record) {
                   seen.push_back(record.commit_ts);
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(seen, (std::vector<Timestamp>{30}));
}

TEST(WalTruncatePrefix, TornTailAfterTruncationStillDetected) {
  auto file = std::make_unique<InMemoryFile>();
  InMemoryFile* raw = file.get();
  Wal wal(std::move(file));
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append(MakeRecord(1, 10)).ok());
  const Lsn second = *wal.Append(MakeRecord(2, 20));
  ASSERT_TRUE(wal.TruncatePrefix(second).ok());
  ASSERT_TRUE(wal.Append(MakeRecord(3, 30)).ok());

  // Torn frame beyond the valid suffix.
  const char torn[] = "\x30\x00\x00\x00\x77\x77\x77\x77half";
  ASSERT_TRUE(
      raw->WriteAt(wal.PhysOf(wal.NextLsn()), torn, sizeof torn).ok());

  std::vector<Timestamp> seen;
  ASSERT_TRUE(wal.ReadAll([&](const WalRecord& record) {
                   seen.push_back(record.commit_ts);
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(seen, (std::vector<Timestamp>{20, 30}));  // prefix gone, tail cut
  // The torn bytes were truncated; appends continue cleanly.
  ASSERT_TRUE(wal.Append(MakeRecord(4, 40)).ok());
  seen.clear();
  ASSERT_TRUE(wal.ReadAll([&](const WalRecord& record) {
                   seen.push_back(record.commit_ts);
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(seen, (std::vector<Timestamp>{20, 30, 40}));
}

TEST(WalTruncatePrefix, TornHeaderSlotFallsBackToOlderSlot) {
  auto file = std::make_unique<InMemoryFile>();
  InMemoryFile* raw = file.get();
  Lsn third;
  std::string bytes;
  {
    Wal wal(std::move(file));
    ASSERT_TRUE(wal.Open().ok());  // Header seq 1 → slot 1.
    ASSERT_TRUE(wal.Append(MakeRecord(1, 10)).ok());
    ASSERT_TRUE(wal.Append(MakeRecord(2, 20)).ok());
    third = *wal.Append(MakeRecord(3, 30));
    ASSERT_TRUE(wal.TruncatePrefix(third).ok());  // Seq 2 → slot 0.
    bytes.resize(raw->Size());
    ASSERT_TRUE(raw->ReadAt(0, bytes.size(), bytes.data()).ok());
  }
  // Tear the newest header slot (slot 0): flip a byte of its head_lsn.
  bytes[12] ^= 0x5a;
  auto file2 = std::make_unique<InMemoryFile>();
  ASSERT_TRUE(file2->WriteAt(0, bytes.data(), bytes.size()).ok());
  Wal reopened(std::move(file2));
  ASSERT_TRUE(reopened.Open().ok());  // Falls back to slot 1 (head 0).
  EXPECT_EQ(reopened.HeadLsn(), 0u);
  std::vector<Timestamp> seen;
  ASSERT_TRUE(reopened.ReadAll([&](const WalRecord& record) {
                   seen.push_back(record.commit_ts);
                   return Status::OK();
                 })
                  .ok());
  // The older slot replays a longer, already-applied prefix — never a
  // fail-stop, never a lost suffix.
  EXPECT_EQ(seen, (std::vector<Timestamp>{10, 20, 30}));
}

TEST(Wal, HeaderlessV1LogMigratesOnOpen) {
  // Build a pre-header (v1) log by hand: raw frames from byte 0.
  auto file = std::make_unique<InMemoryFile>();
  InMemoryFile* raw = file.get();
  uint64_t offset = 0;
  for (int i = 1; i <= 3; ++i) {
    std::string payload;
    MakeRecord(i, i * 10).EncodeTo(&payload);
    char hdr[8];
    EncodeFixed32(hdr, static_cast<uint32_t>(payload.size()));
    EncodeFixed32(hdr + 4, Crc32c(payload.data(), payload.size()));
    ASSERT_TRUE(raw->WriteAt(offset, hdr, 8).ok());
    ASSERT_TRUE(raw->WriteAt(offset + 8, payload.data(), payload.size()).ok());
    offset += 8 + payload.size();
  }

  Wal wal(std::move(file));
  ASSERT_TRUE(wal.Open().ok());
  std::vector<Timestamp> seen;
  ASSERT_TRUE(wal.ReadAll([&](const WalRecord& record) {
                   seen.push_back(record.commit_ts);
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(seen, (std::vector<Timestamp>{10, 20, 30}));

  // Appends extend the migrated log; a second open sees the v2 form.
  ASSERT_TRUE(wal.Append(MakeRecord(4, 40)).ok());
  std::string bytes(raw->Size(), '\0');
  ASSERT_TRUE(raw->ReadAt(0, bytes.size(), bytes.data()).ok());
  auto file2 = std::make_unique<InMemoryFile>();
  ASSERT_TRUE(file2->WriteAt(0, bytes.data(), bytes.size()).ok());
  Wal reopened(std::move(file2));
  ASSERT_TRUE(reopened.Open().ok());
  seen.clear();
  ASSERT_TRUE(reopened.ReadAll([&](const WalRecord& record) {
                   seen.push_back(record.commit_ts);
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(seen, (std::vector<Timestamp>{10, 20, 30, 40}));
}

TEST(Wal, ResetKeepsLsnsMonotonic) {
  Wal wal(std::make_unique<InMemoryFile>());
  ASSERT_TRUE(wal.Open().ok());
  const Lsn before = *wal.Append(MakeRecord(1, 10));
  ASSERT_TRUE(wal.Reset().ok());
  EXPECT_EQ(wal.SizeBytes(), 0u);
  const Lsn after = *wal.Append(MakeRecord(2, 20));
  EXPECT_GT(after, before);
}

// ---------------------------------------------------------------------------
// LSN pins / stable LSN (the fuzzy checkpoint's truncation bound)
// ---------------------------------------------------------------------------

TEST(WalPins, StableLsnTracksOldestPin) {
  Wal wal(std::make_unique<InMemoryFile>());
  ASSERT_TRUE(wal.Open().ok());
  EXPECT_EQ(wal.StableLsn(), wal.NextLsn());

  const Lsn a = *wal.Append(MakeRecord(1, 10), /*pin=*/true);
  const Lsn b = *wal.Append(MakeRecord(2, 20), /*pin=*/true);
  ASSERT_TRUE(wal.Append(MakeRecord(3, 30)).ok());  // unpinned
  EXPECT_EQ(wal.PinnedCount(), 2u);
  EXPECT_EQ(wal.StableLsn(), a);

  wal.Unpin(a);
  EXPECT_EQ(wal.StableLsn(), b);
  wal.Unpin(b);
  EXPECT_EQ(wal.PinnedCount(), 0u);
  EXPECT_EQ(wal.StableLsn(), wal.NextLsn());
}

TEST(WalPins, GroupCommitPinsEveryPinnedParticipant) {
  Wal wal(std::make_unique<InMemoryFile>());
  ASSERT_TRUE(wal.Open().ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const WalRecord record = MakeRecord(t * kPerThread + i + 1, 1);
        auto lsn = wal.group().Commit(record, /*sync=*/true, /*pin=*/true);
        if (!lsn.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // The record must be pin-protected until we release it.
        if (wal.StableLsn() > *lsn) failures.fetch_add(1);
        wal.Unpin(*lsn);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wal.PinnedCount(), 0u);
  EXPECT_EQ(wal.StableLsn(), wal.NextLsn());
}

TEST(GroupCommitter, ConcurrentSyncCommitsAllDurableAndDecodable) {
  Wal wal(std::make_unique<InMemoryFile>());
  ASSERT_TRUE(wal.Open().ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const WalRecord record =
            MakeRecord(t * kPerThread + i + 1, (t * kPerThread + i + 1) * 10);
        auto lsn = wal.group().Commit(record, /*sync=*/true);
        if (!lsn.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wal.group().records(), uint64_t{kThreads * kPerThread});

  // Every record must decode, exactly once.
  std::vector<TxnId> seen;
  ASSERT_TRUE(wal.ReadAll([&](const WalRecord& record) {
                   seen.push_back(record.txn_id);
                   return Status::OK();
                 })
                  .ok());
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), size_t{kThreads * kPerThread});
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<TxnId>(i + 1));
  }
}

}  // namespace
}  // namespace neosi
