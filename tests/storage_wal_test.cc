// WAL framing, op serialization, torn-tail handling, segment rotation,
// recycle pool, chain validation, and legacy single-file migration.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "storage/wal.h"

namespace neosi {
namespace {

WalRecord MakeRecord(TxnId txn, Timestamp ts) {
  WalRecord record;
  record.txn_id = txn;
  record.commit_ts = ts;
  record.ops.push_back(WalOp::CreateNode(
      1, {2, 3}, {{4, PropertyValue("value")}, {5, PropertyValue(int64_t{9})}}));
  record.ops.push_back(WalOp::SetNodeProperty(1, 4, PropertyValue(false)));
  record.ops.push_back(WalOp::AddLabel(1, 7));
  record.ops.push_back(WalOp::CreateRel(2, 1, 3, 0, {{4, PropertyValue(1.5)}}));
  record.ops.push_back(WalOp::DeleteRel(2));
  record.ops.push_back(WalOp::DeleteNode(1));
  record.ops.push_back(
      WalOp::CreateToken(TokenKind::kPropertyKey, 4, "weight"));
  record.ops.push_back(WalOp::PurgeNode(9));
  record.ops.push_back(WalOp::PurgeRel(8, 1, 3, 10, 11, 12, 13));
  record.ops.push_back(WalOp::RemoveLabel(1, 7));
  record.ops.push_back(WalOp::RemoveNodeProperty(1, 5));
  record.ops.push_back(WalOp::SetRelProperty(2, 4, PropertyValue("x")));
  record.ops.push_back(WalOp::RemoveRelProperty(2, 4));
  record.ops.push_back(WalOp::Checkpoint(123456789));
  return record;
}

/// Small single-op record for segment-rotation tests (predictable frames).
WalRecord SmallRecord(TxnId txn, Timestamp ts) {
  WalRecord record;
  record.txn_id = txn;
  record.commit_ts = ts;
  record.ops.push_back(WalOp::DeleteNode(txn));
  return record;
}

std::unique_ptr<Wal> OpenWal(std::shared_ptr<InMemoryWalDir> dir,
                             WalOptions options = {}) {
  auto wal = std::make_unique<Wal>(std::move(dir), options);
  EXPECT_TRUE(wal->Open().ok());
  return wal;
}

std::vector<Timestamp> ReplayTimestamps(Wal* wal) {
  std::vector<Timestamp> seen;
  EXPECT_TRUE(wal->ReadAll([&](const WalRecord& record) {
                   seen.push_back(record.commit_ts);
                   return Status::OK();
                 })
                  .ok());
  return seen;
}

std::vector<std::string> ListNames(InMemoryWalDir* dir) {
  std::vector<std::string> names;
  EXPECT_TRUE(dir->List(&names).ok());
  std::sort(names.begin(), names.end());
  return names;
}

TEST(WalOps, RecordRoundTrip) {
  WalRecord record = MakeRecord(42, 99);
  std::string buf;
  record.EncodeTo(&buf);
  WalRecord out;
  ASSERT_TRUE(WalRecord::DecodeFrom(Slice(buf), &out).ok());
  EXPECT_EQ(out.txn_id, 42u);
  EXPECT_EQ(out.commit_ts, 99u);
  ASSERT_EQ(out.ops.size(), record.ops.size());
  EXPECT_EQ(out.ops[0].type, WalOpType::kCreateNode);
  EXPECT_EQ(out.ops[0].labels, (std::vector<LabelId>{2, 3}));
  EXPECT_EQ(out.ops[0].props.at(4), PropertyValue("value"));
  EXPECT_EQ(out.ops[3].type, WalOpType::kCreateRel);
  EXPECT_EQ(out.ops[3].src, 1u);
  EXPECT_EQ(out.ops[3].dst, 3u);
  EXPECT_EQ(out.ops[6].name, "weight");
  EXPECT_EQ(out.ops[6].token_kind, TokenKind::kPropertyKey);
  EXPECT_EQ(out.ops[8].type, WalOpType::kPurgeRel);
  EXPECT_EQ(out.ops[8].src_prev, 10u);
  EXPECT_EQ(out.ops[8].dst_next, 13u);
  EXPECT_EQ(out.ops.back().type, WalOpType::kCheckpoint);
  EXPECT_EQ(out.ops.back().id, 123456789u);
}

TEST(WalOps, TrailingBytesRejected) {
  WalRecord record = MakeRecord(1, 2);
  std::string buf;
  record.EncodeTo(&buf);
  buf += "extra";
  WalRecord out;
  EXPECT_TRUE(WalRecord::DecodeFrom(Slice(buf), &out).IsCorruption());
}

TEST(Wal, AppendAndReadAll) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir);
  for (int i = 1; i <= 5; ++i) {
    auto lsn = wal->Append(MakeRecord(i, i * 10));
    ASSERT_TRUE(lsn.ok());
  }
  EXPECT_EQ(ReplayTimestamps(wal.get()),
            (std::vector<Timestamp>{10, 20, 30, 40, 50}));
}

TEST(Wal, LsnsAreMonotonic) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir);
  Lsn prev = 0;
  for (int i = 0; i < 3; ++i) {
    auto lsn = wal->Append(MakeRecord(1, 1));
    ASSERT_TRUE(lsn.ok());
    if (i > 0) {
      EXPECT_GT(*lsn, prev);
    }
    prev = *lsn;
  }
}

TEST(Wal, TornTailTruncated) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir);
  ASSERT_TRUE(wal->Append(MakeRecord(1, 10)).ok());
  ASSERT_TRUE(wal->Append(MakeRecord(2, 20)).ok());
  const uint64_t valid = wal->SizeBytes();
  // Simulate a torn frame in the active segment: plausible header, garbage
  // payload.
  std::unique_ptr<PagedFile> raw;
  ASSERT_TRUE(dir->Open(wal->SegmentNameOf(wal->NextLsn()), &raw).ok());
  const char torn[] = "\x40\x00\x00\x00\x99\x99\x99\x99only-half-written";
  ASSERT_TRUE(raw->WriteAt(wal->PhysOf(wal->NextLsn()), torn, sizeof torn).ok());

  EXPECT_EQ(ReplayTimestamps(wal.get()).size(), 2u);
  EXPECT_EQ(wal->SizeBytes(), valid);  // Tail dropped.
  // Appends continue cleanly after truncation.
  ASSERT_TRUE(wal->Append(MakeRecord(3, 30)).ok());
  EXPECT_EQ(ReplayTimestamps(wal.get()),
            (std::vector<Timestamp>{10, 20, 30}));
}

TEST(Wal, CorruptPayloadStopsReplay) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir);
  ASSERT_TRUE(wal->Append(MakeRecord(1, 10)).ok());
  const Lsn second = *wal->Append(MakeRecord(2, 20));
  // Flip a payload byte of the second frame: CRC must catch it.
  std::unique_ptr<PagedFile> raw;
  ASSERT_TRUE(dir->Open(wal->SegmentNameOf(second), &raw).ok());
  char byte;
  ASSERT_TRUE(raw->ReadAt(wal->PhysOf(second) + 12, 1, &byte).ok());
  byte ^= 0x40;
  ASSERT_TRUE(raw->WriteAt(wal->PhysOf(second) + 12, &byte, 1).ok());
  EXPECT_EQ(ReplayTimestamps(wal.get()), (std::vector<Timestamp>{10}));
}

TEST(Wal, ResetEmptiesLog) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir);
  ASSERT_TRUE(wal->Append(MakeRecord(1, 10)).ok());
  ASSERT_TRUE(wal->Reset().ok());
  EXPECT_EQ(wal->SizeBytes(), 0u);
  EXPECT_TRUE(ReplayTimestamps(wal.get()).empty());
}

TEST(Wal, OpenPositionsCursorAfterValidPrefix) {
  auto dir = std::make_shared<InMemoryWalDir>();
  uint64_t valid;
  {
    auto wal = OpenWal(dir);
    ASSERT_TRUE(wal->Append(MakeRecord(1, 10)).ok());
    valid = wal->SizeBytes();
  }
  auto reopened = OpenWal(dir);
  EXPECT_EQ(reopened->SizeBytes(), valid);
}

TEST(Wal, AppendBatchFramesDecodeIndividually) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir);
  ASSERT_TRUE(wal->Append(MakeRecord(1, 10)).ok());

  WalRecord a = MakeRecord(2, 20);
  WalRecord b = MakeRecord(3, 30);
  WalRecord c = MakeRecord(4, 40);
  std::vector<Lsn> lsns;
  ASSERT_TRUE(wal->AppendBatch({&a, &b, &c}, &lsns).ok());
  ASSERT_EQ(lsns.size(), 3u);
  EXPECT_LT(lsns[0], lsns[1]);
  EXPECT_LT(lsns[1], lsns[2]);

  EXPECT_EQ(ReplayTimestamps(wal.get()),
            (std::vector<Timestamp>{10, 20, 30, 40}));
}

TEST(Wal, ResetKeepsLsnsMonotonic) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir);
  const Lsn before = *wal->Append(MakeRecord(1, 10));
  ASSERT_TRUE(wal->Reset().ok());
  EXPECT_EQ(wal->SizeBytes(), 0u);
  const Lsn after = *wal->Append(MakeRecord(2, 20));
  EXPECT_GT(after, before);
}

// ---------------------------------------------------------------------------
// Segment rotation
// ---------------------------------------------------------------------------

WalOptions TinySegments(uint64_t segment_size = 192,
                        uint64_t recycle_segments = 0) {
  WalOptions options;
  options.segment_size = segment_size;
  options.recycle_segments = recycle_segments;
  return options;
}

TEST(WalSegments, AppendRollsAtThreshold) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir, TinySegments());
  EXPECT_EQ(wal->SegmentCount(), 1u);

  std::vector<Timestamp> expect;
  for (int i = 1; i <= 24; ++i) {
    ASSERT_TRUE(wal->Append(SmallRecord(i, i * 10)).ok());
    expect.push_back(i * 10);
  }
  EXPECT_GT(wal->SegmentCount(), 1u);
  // Every segment file stays within the configured size.
  for (const std::string& name : ListNames(dir.get())) {
    std::unique_ptr<PagedFile> raw;
    ASSERT_TRUE(dir->Open(name, &raw).ok());
    EXPECT_LE(raw->Size(), 192u) << name;
  }
  // Replay crosses every boundary in order.
  EXPECT_EQ(ReplayTimestamps(wal.get()), expect);
}

TEST(WalSegments, LsnsStayMonotonicAndContiguousAcrossRolls) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir, TinySegments());
  Lsn prev_end = wal->NextLsn();
  for (int i = 1; i <= 40; ++i) {
    const Lsn lsn = *wal->Append(SmallRecord(i, i));
    // Contiguous lsn space: each record starts exactly where the previous
    // one ended, even when the physical write moved to a new segment.
    EXPECT_EQ(lsn, prev_end);
    prev_end = wal->NextLsn();
    EXPECT_GT(prev_end, lsn);
  }
  ASSERT_GT(wal->SegmentCount(), 2u);
  // Replayed lsns come back identical and strictly increasing.
  std::vector<Lsn> lsns;
  ASSERT_TRUE(wal->ReadFrom(0, [&](Lsn lsn, const WalRecord&) {
                   lsns.push_back(lsn);
                   return Status::OK();
                 })
                  .ok());
  ASSERT_EQ(lsns.size(), 40u);
  for (size_t i = 1; i < lsns.size(); ++i) EXPECT_GT(lsns[i], lsns[i - 1]);
}

TEST(WalSegments, BatchAppendSplitsAtSegmentBoundaries) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir, TinySegments());
  std::vector<WalRecord> records;
  std::vector<const WalRecord*> ptrs;
  for (int i = 1; i <= 16; ++i) records.push_back(SmallRecord(i, i * 10));
  for (const auto& r : records) ptrs.push_back(&r);
  std::vector<Lsn> lsns;
  ASSERT_TRUE(wal->AppendBatch(ptrs, &lsns).ok());
  EXPECT_GT(wal->SegmentCount(), 1u);
  std::vector<Timestamp> expect;
  for (int i = 1; i <= 16; ++i) expect.push_back(i * 10);
  EXPECT_EQ(ReplayTimestamps(wal.get()), expect);
}

TEST(WalSegments, OversizedRecordGetsItsOwnSegment) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir, TinySegments(128));
  ASSERT_TRUE(wal->Append(SmallRecord(1, 10)).ok());
  // MakeRecord's frame is far larger than a 128-byte segment: it must still
  // append (one segment to itself) and replay.
  ASSERT_TRUE(wal->Append(MakeRecord(2, 20)).ok());
  ASSERT_TRUE(wal->Append(SmallRecord(3, 30)).ok());
  EXPECT_EQ(ReplayTimestamps(wal.get()),
            (std::vector<Timestamp>{10, 20, 30}));
}

TEST(WalSegments, FailedWriteAfterMidBatchRollIsRolledBack) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir, TinySegments());
  ASSERT_TRUE(wal->Append(SmallRecord(1, 10)).ok());

  // A batch big enough to roll mid-way, armed to fail right after the
  // roll: the fresh (empty) segment must be un-rolled, or the cursor would
  // sit BELOW the active base and every later append would underflow its
  // physical offset.
  wal->fault_hooks.Set([calls = 0](const char* point) mutable -> Status {
    if (std::string(point) == "wal.append.fail_after_roll" && ++calls == 1) {
      return Status::IOError("injected write failure after roll");
    }
    return Status::OK();
  });
  std::vector<WalRecord> records;
  std::vector<const WalRecord*> ptrs;
  for (int i = 2; i <= 17; ++i) records.push_back(SmallRecord(i, i * 10));
  for (const auto& r : records) ptrs.push_back(&r);
  std::vector<Lsn> lsns;
  EXPECT_TRUE(wal->AppendBatch(ptrs, &lsns, nullptr).IsIOError());
  EXPECT_EQ(wal->SegmentCount(), 1u);  // The fresh segment was un-rolled.
  wal->fault_hooks.Set(nullptr);

  // The log is fully usable: appends land at the cursor (overwriting the
  // partial batch) and everything replays.
  ASSERT_TRUE(wal->AppendBatch(ptrs, &lsns).ok());
  ASSERT_TRUE(wal->Append(SmallRecord(99, 990)).ok());
  std::vector<Timestamp> expect{10};
  for (int i = 2; i <= 17; ++i) expect.push_back(i * 10);
  expect.push_back(990);
  EXPECT_EQ(ReplayTimestamps(wal.get()), expect);
  // And a reopen sees the same consistent chain.
  wal.reset();
  auto reopened = OpenWal(dir, TinySegments());
  EXPECT_EQ(ReplayTimestamps(reopened.get()), expect);
}

TEST(WalSegments, ChainSurvivesReopen) {
  auto dir = std::make_shared<InMemoryWalDir>();
  std::vector<Timestamp> expect;
  uint64_t segments;
  {
    auto wal = OpenWal(dir, TinySegments());
    for (int i = 1; i <= 24; ++i) {
      ASSERT_TRUE(wal->Append(SmallRecord(i, i * 10)).ok());
      expect.push_back(i * 10);
    }
    segments = wal->SegmentCount();
    ASSERT_GT(segments, 1u);
  }
  auto reopened = OpenWal(dir, TinySegments());
  EXPECT_EQ(reopened->SegmentCount(), segments);
  EXPECT_EQ(ReplayTimestamps(reopened.get()), expect);
  // Appends continue above everything ever written.
  const Lsn next = reopened->NextLsn();
  EXPECT_GT(*reopened->Append(SmallRecord(99, 990)), 0u);
  EXPECT_GT(reopened->NextLsn(), next);
}

// ---------------------------------------------------------------------------
// Prefix truncation = unconditional whole-segment reclamation
// ---------------------------------------------------------------------------

TEST(WalTruncatePrefix, DropsOnlyThePrefix) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir);
  ASSERT_TRUE(wal->Append(MakeRecord(1, 10)).ok());
  ASSERT_TRUE(wal->Append(MakeRecord(2, 20)).ok());
  const Lsn third = *wal->Append(MakeRecord(3, 30));

  ASSERT_TRUE(wal->TruncatePrefix(third).ok());
  EXPECT_EQ(wal->HeadLsn(), third);
  EXPECT_EQ(ReplayTimestamps(wal.get()), (std::vector<Timestamp>{30}));

  // Appends continue above the truncated prefix; lsns stay monotonic.
  const Lsn fourth = *wal->Append(MakeRecord(4, 40));
  EXPECT_GT(fourth, third);
  EXPECT_EQ(ReplayTimestamps(wal.get()), (std::vector<Timestamp>{30, 40}));
}

TEST(WalTruncatePrefix, AtZeroAndBelowHeadAreNoOps) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir);
  // Truncating an empty log at zero does nothing.
  ASSERT_TRUE(wal->TruncatePrefix(0).ok());
  EXPECT_EQ(wal->HeadLsn(), 0u);
  EXPECT_EQ(wal->SizeBytes(), 0u);

  ASSERT_TRUE(wal->Append(MakeRecord(1, 10)).ok());
  const Lsn second = *wal->Append(MakeRecord(2, 20));
  ASSERT_TRUE(wal->TruncatePrefix(second).ok());
  const uint64_t live = wal->SizeBytes();

  // Zero (and anything at or below the head) must not move the head back.
  ASSERT_TRUE(wal->TruncatePrefix(0).ok());
  ASSERT_TRUE(wal->TruncatePrefix(second).ok());
  EXPECT_EQ(wal->HeadLsn(), second);
  EXPECT_EQ(wal->SizeBytes(), live);
  EXPECT_EQ(ReplayTimestamps(wal.get()).size(), 1u);
}

TEST(WalTruncatePrefix, AtEndEmptiesLogAndBeyondEndIsRejected) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir);
  ASSERT_TRUE(wal->Append(MakeRecord(1, 10)).ok());
  ASSERT_TRUE(wal->Append(MakeRecord(2, 20)).ok());
  const Lsn end = wal->NextLsn();

  EXPECT_TRUE(wal->TruncatePrefix(end + 1).IsInvalidArgument());

  ASSERT_TRUE(wal->TruncatePrefix(end).ok());
  EXPECT_EQ(wal->SizeBytes(), 0u);
  EXPECT_TRUE(ReplayTimestamps(wal.get()).empty());

  // The log is still appendable, with monotonically continuing lsns.
  const Lsn next = *wal->Append(MakeRecord(3, 30));
  EXPECT_GE(next, end);
  EXPECT_EQ(ReplayTimestamps(wal.get()).size(), 1u);
}

TEST(WalTruncatePrefix, UnlinksWholeSegmentsOnAnyBackend) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir, TinySegments());
  for (int i = 1; i <= 24; ++i) {
    ASSERT_TRUE(wal->Append(SmallRecord(i, i * 10)).ok());
  }
  const uint64_t before_segments = wal->SegmentCount();
  const uint64_t before_phys = wal->PhysicalBytes();
  ASSERT_GT(before_segments, 2u);

  // Truncate at the append cursor: every segment below the active one is
  // physically unlinked — no hole punching, no quiescent rebase, the file
  // count and byte footprint actually shrink.
  ASSERT_TRUE(wal->TruncatePrefix(wal->NextLsn()).ok());
  EXPECT_EQ(wal->SegmentCount(), 1u);
  EXPECT_LT(wal->PhysicalBytes(), before_phys);
  EXPECT_EQ(wal->segments_deleted(), before_segments - 1);
  EXPECT_EQ(ListNames(dir.get()).size(), 1u);  // Only the active segment.
  EXPECT_TRUE(ReplayTimestamps(wal.get()).empty());

  // Appends and replay continue normally.
  ASSERT_TRUE(wal->Append(SmallRecord(99, 990)).ok());
  EXPECT_EQ(ReplayTimestamps(wal.get()), (std::vector<Timestamp>{990}));
}

TEST(WalTruncatePrefix, PartialSegmentStaysUntilWhollyDead) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir, TinySegments());
  std::vector<Lsn> lsns;
  std::vector<Timestamp> ts;
  for (int i = 1; i <= 24; ++i) {
    lsns.push_back(*wal->Append(SmallRecord(i, i * 10)));
    ts.push_back(i * 10);
  }
  ASSERT_GT(wal->SegmentCount(), 2u);
  // Truncate to a mid-chain record: segments wholly below go away, the one
  // containing the cut stays (its tail is live).
  const size_t cut = 13;
  const uint64_t before = wal->SegmentCount();
  ASSERT_TRUE(wal->TruncatePrefix(lsns[cut]).ok());
  EXPECT_LT(wal->SegmentCount(), before);
  EXPECT_GE(wal->SegmentCount(), 1u);
  EXPECT_EQ(ReplayTimestamps(wal.get()),
            std::vector<Timestamp>(ts.begin() + cut, ts.end()));
}

TEST(WalTruncatePrefix, HeadSurvivesReopenAtSegmentGranularity) {
  auto dir = std::make_shared<InMemoryWalDir>();
  std::vector<Timestamp> live;
  Lsn head_after_truncate;
  {
    auto wal = OpenWal(dir, TinySegments());
    std::vector<Lsn> lsns;
    for (int i = 1; i <= 24; ++i) {
      lsns.push_back(*wal->Append(SmallRecord(i, i * 10)));
    }
    ASSERT_GT(wal->SegmentCount(), 2u);
    ASSERT_TRUE(wal->TruncatePrefix(lsns[13]).ok());
    head_after_truncate = wal->HeadLsn();
    ASSERT_TRUE(wal->ReadAll([&](const WalRecord& record) {
                     live.push_back(record.commit_ts);
                     return Status::OK();
                   })
                    .ok());
  }
  auto reopened = OpenWal(dir, TinySegments());
  // The head is re-derived from the oldest retained segment: at or below
  // the pre-crash logical head, never above it (nothing live is lost).
  EXPECT_LE(reopened->HeadLsn(), head_after_truncate);
  std::vector<Timestamp> replayed = ReplayTimestamps(reopened.get());
  // Replay may include a few already-applied records from the partially
  // truncated segment (idempotent), but the live suffix must be intact.
  ASSERT_GE(replayed.size(), live.size());
  EXPECT_TRUE(std::equal(live.rbegin(), live.rend(), replayed.rbegin()));
}

TEST(WalTruncatePrefix, TornTailAfterTruncationStillDetected) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir);
  ASSERT_TRUE(wal->Append(MakeRecord(1, 10)).ok());
  const Lsn second = *wal->Append(MakeRecord(2, 20));
  ASSERT_TRUE(wal->TruncatePrefix(second).ok());
  ASSERT_TRUE(wal->Append(MakeRecord(3, 30)).ok());

  // Torn frame beyond the valid suffix.
  std::unique_ptr<PagedFile> raw;
  ASSERT_TRUE(dir->Open(wal->SegmentNameOf(wal->NextLsn()), &raw).ok());
  const char torn[] = "\x30\x00\x00\x00\x77\x77\x77\x77half";
  ASSERT_TRUE(raw->WriteAt(wal->PhysOf(wal->NextLsn()), torn, sizeof torn).ok());

  EXPECT_EQ(ReplayTimestamps(wal.get()),
            (std::vector<Timestamp>{20, 30}));  // prefix gone, tail cut
  // The torn bytes were truncated; appends continue cleanly.
  ASSERT_TRUE(wal->Append(MakeRecord(4, 40)).ok());
  EXPECT_EQ(ReplayTimestamps(wal.get()),
            (std::vector<Timestamp>{20, 30, 40}));
}

// ---------------------------------------------------------------------------
// Recycle pool
// ---------------------------------------------------------------------------

TEST(WalRecycle, RetiredSegmentsParkInPoolAndGetReused) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir, TinySegments(192, /*recycle_segments=*/2));
  for (int i = 1; i <= 24; ++i) {
    ASSERT_TRUE(wal->Append(SmallRecord(i, i * 10)).ok());
  }
  const uint64_t retired = wal->SegmentCount() - 1;
  ASSERT_GE(retired, 2u);
  ASSERT_TRUE(wal->TruncatePrefix(wal->NextLsn()).ok());

  // Pool capped at 2: two renamed into the pool, the rest unlinked.
  EXPECT_EQ(wal->segments_recycled(), 2u);
  EXPECT_EQ(wal->segments_deleted(), retired - 2);
  int free_files = 0;
  for (const std::string& name : ListNames(dir.get())) {
    free_files += name.rfind("wal.free.", 0) == 0 ? 1 : 0;
  }
  EXPECT_EQ(free_files, 2);

  // New rolls drain the pool before creating fresh files, then run dry.
  const uint64_t created_before = wal->segments_created();
  for (int i = 25; i <= 96; ++i) {
    ASSERT_TRUE(wal->Append(SmallRecord(i, i * 10)).ok());
  }
  EXPECT_EQ(wal->segments_reused(), 2u);
  EXPECT_GT(wal->segments_created(), created_before);  // Pool ran dry.
  // Reused segments replay like any other.
  std::vector<Timestamp> expect;
  for (int i = 25; i <= 96; ++i) expect.push_back(i * 10);
  EXPECT_EQ(ReplayTimestamps(wal.get()), expect);
}

TEST(WalRecycle, PoolSurvivesReopenAndExcessIsTrimmed) {
  auto dir = std::make_shared<InMemoryWalDir>();
  {
    auto wal = OpenWal(dir, TinySegments(192, /*recycle_segments=*/2));
    for (int i = 1; i <= 24; ++i) {
      ASSERT_TRUE(wal->Append(SmallRecord(i, i * 10)).ok());
    }
    ASSERT_TRUE(wal->TruncatePrefix(wal->NextLsn()).ok());
    ASSERT_EQ(wal->segments_recycled(), 2u);
  }
  // Reopen with a smaller pool: one free file adopted, the extra removed.
  auto reopened = OpenWal(dir, TinySegments(192, /*recycle_segments=*/1));
  int free_files = 0;
  for (const std::string& name : ListNames(dir.get())) {
    free_files += name.rfind("wal.free.", 0) == 0 ? 1 : 0;
  }
  EXPECT_EQ(free_files, 1);
  for (int i = 1; i <= 12; ++i) {
    ASSERT_TRUE(reopened->Append(SmallRecord(i, i)).ok());
  }
  EXPECT_EQ(reopened->segments_reused(), 1u);
}

// ---------------------------------------------------------------------------
// Chain validation at Open: orphans, gaps, half-created segments
// ---------------------------------------------------------------------------

TEST(WalChain, HalfCreatedNewestSegmentIsDiscarded) {
  auto dir = std::make_shared<InMemoryWalDir>();
  std::vector<Timestamp> expect;
  uint64_t last_index_plus_one;
  {
    auto wal = OpenWal(dir, TinySegments());
    for (int i = 1; i <= 24; ++i) {
      ASSERT_TRUE(wal->Append(SmallRecord(i, i * 10)).ok());
      expect.push_back(i * 10);
    }
    last_index_plus_one = wal->SegmentCount() + 1;
  }
  // Simulate a crash during segment creation: a newest segment file whose
  // header never became durable (garbage bytes).
  std::unique_ptr<PagedFile> husk;
  ASSERT_TRUE(dir->Open(Wal::SegmentName(last_index_plus_one), &husk).ok());
  ASSERT_TRUE(husk->WriteAt(0, "garbage-half-written-header", 27).ok());

  auto reopened = OpenWal(dir, TinySegments());
  EXPECT_FALSE(dir->Exists(Wal::SegmentName(last_index_plus_one)));
  EXPECT_EQ(ReplayTimestamps(reopened.get()), expect);
  // Appends continue; the discarded index is never resurrected with stale
  // content (a fresh header is written before any frame).
  ASSERT_TRUE(reopened->Append(SmallRecord(99, 990)).ok());
}

TEST(WalChain, ValidEmptyNewestSegmentIsAccepted) {
  // The state a REAL crash at the post-create point leaves behind: a fully
  // created (valid header, zero frames) segment at the end of the chain
  // that no append ever entered. Open must adopt it, not reject it.
  auto dir = std::make_shared<InMemoryWalDir>();
  std::vector<Timestamp> expect;
  uint64_t segments;
  Lsn cursor;
  {
    auto wal = OpenWal(dir, TinySegments());
    for (int i = 1; i <= 24; ++i) {
      ASSERT_TRUE(wal->Append(SmallRecord(i, i * 10)).ok());
      expect.push_back(i * 10);
    }
    segments = wal->SegmentCount();
    cursor = wal->NextLsn();
    ASSERT_GT(segments, 1u);
  }
  // Craft the half-adopted segment: valid header anchored at the cursor.
  char header[32] = {};
  EncodeFixed32(header, 0x3153574e);  // "NWS1"
  EncodeFixed32(header + 4, 1);       // version
  EncodeFixed64(header + 8, cursor);  // base
  EncodeFixed64(header + 16, 7);      // epoch
  EncodeFixed32(header + 24, Crc32c(header, 24));
  std::unique_ptr<PagedFile> crafted;
  ASSERT_TRUE(dir->Open(Wal::SegmentName(segments + 1), &crafted).ok());
  ASSERT_TRUE(crafted->WriteAt(0, header, sizeof header).ok());
  crafted.reset();

  auto reopened = OpenWal(dir, TinySegments());
  EXPECT_EQ(reopened->SegmentCount(), segments + 1);
  EXPECT_EQ(reopened->NextLsn(), cursor);
  EXPECT_EQ(ReplayTimestamps(reopened.get()), expect);
  ASSERT_TRUE(reopened->Append(SmallRecord(99, 990)).ok());
  expect.push_back(990);
  EXPECT_EQ(ReplayTimestamps(reopened.get()), expect);
}

TEST(WalChain, MissingMiddleSegmentIsCorruption) {
  auto dir = std::make_shared<InMemoryWalDir>();
  {
    auto wal = OpenWal(dir, TinySegments());
    for (int i = 1; i <= 24; ++i) {
      ASSERT_TRUE(wal->Append(SmallRecord(i, i * 10)).ok());
    }
    ASSERT_GT(wal->SegmentCount(), 2u);
  }
  // A hole in the middle of the chain is a hole in the lsn space: refuse to
  // open rather than silently replay around missing committed records.
  ASSERT_TRUE(dir->Remove(Wal::SegmentName(2)).ok());
  Wal broken(dir, TinySegments());
  EXPECT_TRUE(broken.Open().IsCorruption());
}

TEST(WalChain, BadHeaderInsideTheChainIsCorruption) {
  auto dir = std::make_shared<InMemoryWalDir>();
  {
    auto wal = OpenWal(dir, TinySegments());
    for (int i = 1; i <= 24; ++i) {
      ASSERT_TRUE(wal->Append(SmallRecord(i, i * 10)).ok());
    }
    ASSERT_GT(wal->SegmentCount(), 2u);
  }
  // Corrupt a NON-newest segment header: unlike the newest (where a torn
  // header means a crash before any frame), this is data loss — fail stop.
  std::unique_ptr<PagedFile> raw;
  ASSERT_TRUE(dir->Open(Wal::SegmentName(2), &raw).ok());
  char byte;
  ASSERT_TRUE(raw->ReadAt(9, 1, &byte).ok());
  byte ^= 0x5a;
  ASSERT_TRUE(raw->WriteAt(9, &byte, 1).ok());
  Wal broken(dir, TinySegments());
  EXPECT_TRUE(broken.Open().IsCorruption());
}

TEST(WalChain, TornFrameInsideOlderSegmentFailsReplayLoudly) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir, TinySegments());
  std::vector<Lsn> lsns;
  for (int i = 1; i <= 24; ++i) {
    lsns.push_back(*wal->Append(SmallRecord(i, i * 10)));
  }
  ASSERT_GT(wal->SegmentCount(), 2u);
  // Corrupt a frame in the FIRST segment: older segments were synced before
  // the chain rolled past them, so this is corruption of durably-acked
  // records — replay must say so, not silently truncate them away.
  std::unique_ptr<PagedFile> raw;
  ASSERT_TRUE(dir->Open(wal->SegmentNameOf(lsns[0]), &raw).ok());
  char byte;
  ASSERT_TRUE(raw->ReadAt(wal->PhysOf(lsns[0]) + 12, 1, &byte).ok());
  byte ^= 0x40;
  ASSERT_TRUE(raw->WriteAt(wal->PhysOf(lsns[0]) + 12, &byte, 1).ok());
  Status s = wal->ReadAll([](const WalRecord&) { return Status::OK(); });
  EXPECT_TRUE(s.IsCorruption()) << s;
}

// ---------------------------------------------------------------------------
// Legacy single-file → segmented migration
// ---------------------------------------------------------------------------

/// Builds a legacy v2 single-file log: dual-slot header + frames.
void WriteLegacyV2Log(InMemoryWalDir* dir, const std::vector<WalRecord>& records) {
  std::unique_ptr<PagedFile> file;
  ASSERT_TRUE(dir->Open(Wal::kLegacyName, &file).ok());
  // Slot 1 (seq 1), matching a freshly created legacy log.
  char slot[32] = {};
  EncodeFixed32(slot, 0x324c574e);       // "NWL2"
  EncodeFixed32(slot + 4, 2);            // version
  EncodeFixed64(slot + 8, 0);            // head
  EncodeFixed64(slot + 16, 0);           // base
  EncodeFixed32(slot + 24, 1);           // seq
  EncodeFixed32(slot + 28, Crc32c(slot, 28));
  ASSERT_TRUE(file->WriteAt(32, slot, 32).ok());
  uint64_t offset = 64;
  for (const WalRecord& record : records) {
    std::string payload;
    record.EncodeTo(&payload);
    char hdr[8];
    EncodeFixed32(hdr, static_cast<uint32_t>(payload.size()));
    EncodeFixed32(hdr + 4, Crc32c(payload.data(), payload.size()));
    ASSERT_TRUE(file->WriteAt(offset, hdr, 8).ok());
    ASSERT_TRUE(file->WriteAt(offset + 8, payload.data(), payload.size()).ok());
    offset += 8 + payload.size();
  }
}

TEST(WalMigration, V2SingleFileLogMigratesToSegments) {
  auto dir = std::make_shared<InMemoryWalDir>();
  WriteLegacyV2Log(dir.get(),
                   {MakeRecord(1, 10), MakeRecord(2, 20), MakeRecord(3, 30)});

  auto wal = OpenWal(dir);
  EXPECT_FALSE(dir->Exists(Wal::kLegacyName));
  EXPECT_GE(wal->SegmentCount(), 1u);
  EXPECT_EQ(ReplayTimestamps(wal.get()),
            (std::vector<Timestamp>{10, 20, 30}));

  // Appends extend the migrated log; a second open sees a pure segment
  // chain.
  ASSERT_TRUE(wal->Append(MakeRecord(4, 40)).ok());
  auto reopened = OpenWal(dir);
  EXPECT_EQ(ReplayTimestamps(reopened.get()),
            (std::vector<Timestamp>{10, 20, 30, 40}));
}

TEST(WalMigration, V2MigrationSplitsIntoSmallSegments) {
  auto dir = std::make_shared<InMemoryWalDir>();
  std::vector<WalRecord> records;
  std::vector<Timestamp> expect;
  for (int i = 1; i <= 24; ++i) {
    records.push_back(SmallRecord(i, i * 10));
    expect.push_back(i * 10);
  }
  WriteLegacyV2Log(dir.get(), records);

  auto wal = OpenWal(dir, TinySegments());
  EXPECT_GT(wal->SegmentCount(), 1u);
  EXPECT_EQ(ReplayTimestamps(wal.get()), expect);
}

TEST(WalMigration, HeaderlessV1LogMigratesOnOpen) {
  // Build a pre-header (v1) log by hand: raw frames from byte 0.
  auto dir = std::make_shared<InMemoryWalDir>();
  std::unique_ptr<PagedFile> raw;
  ASSERT_TRUE(dir->Open(Wal::kLegacyName, &raw).ok());
  uint64_t offset = 0;
  for (int i = 1; i <= 3; ++i) {
    std::string payload;
    MakeRecord(i, i * 10).EncodeTo(&payload);
    char hdr[8];
    EncodeFixed32(hdr, static_cast<uint32_t>(payload.size()));
    EncodeFixed32(hdr + 4, Crc32c(payload.data(), payload.size()));
    ASSERT_TRUE(raw->WriteAt(offset, hdr, 8).ok());
    ASSERT_TRUE(raw->WriteAt(offset + 8, payload.data(), payload.size()).ok());
    offset += 8 + payload.size();
  }
  raw.reset();

  auto wal = OpenWal(dir);
  EXPECT_FALSE(dir->Exists(Wal::kLegacyName));
  EXPECT_EQ(ReplayTimestamps(wal.get()),
            (std::vector<Timestamp>{10, 20, 30}));
  ASSERT_TRUE(wal->Append(MakeRecord(4, 40)).ok());
  auto reopened = OpenWal(dir);
  EXPECT_EQ(ReplayTimestamps(reopened.get()),
            (std::vector<Timestamp>{10, 20, 30, 40}));
}

TEST(WalMigration, CrashMidMigrationRestartsFromScratch) {
  auto dir = std::make_shared<InMemoryWalDir>();
  WriteLegacyV2Log(dir.get(), {MakeRecord(1, 10), MakeRecord(2, 20)});
  // Simulate a crash mid-migration: a partial segment exists NEXT TO the
  // legacy file (which is only removed once the copied chain is durable).
  std::unique_ptr<PagedFile> partial;
  ASSERT_TRUE(dir->Open(Wal::SegmentName(1), &partial).ok());
  ASSERT_TRUE(partial->WriteAt(0, "partial-copy", 12).ok());
  partial.reset();

  auto wal = OpenWal(dir);
  EXPECT_FALSE(dir->Exists(Wal::kLegacyName));
  EXPECT_EQ(ReplayTimestamps(wal.get()), (std::vector<Timestamp>{10, 20}));
}

// ---------------------------------------------------------------------------
// LSN pins / stable LSN (the fuzzy checkpoint's truncation bound)
// ---------------------------------------------------------------------------

TEST(WalPins, StableLsnTracksOldestPin) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir);
  EXPECT_EQ(wal->StableLsn(), wal->NextLsn());

  const Lsn a = *wal->Append(MakeRecord(1, 10), /*pin=*/true);
  const Lsn b = *wal->Append(MakeRecord(2, 20), /*pin=*/true);
  ASSERT_TRUE(wal->Append(MakeRecord(3, 30)).ok());  // unpinned
  EXPECT_EQ(wal->PinnedCount(), 2u);
  EXPECT_EQ(wal->StableLsn(), a);

  wal->Unpin(a);
  EXPECT_EQ(wal->StableLsn(), b);
  wal->Unpin(b);
  EXPECT_EQ(wal->PinnedCount(), 0u);
  EXPECT_EQ(wal->StableLsn(), wal->NextLsn());
}

TEST(WalPins, TruncationNeverPassesAPinAcrossSegments) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir, TinySegments());
  const Lsn pinned = *wal->Append(SmallRecord(1, 10), /*pin=*/true);
  for (int i = 2; i <= 24; ++i) {
    ASSERT_TRUE(wal->Append(SmallRecord(i, i * 10)).ok());
  }
  ASSERT_GT(wal->SegmentCount(), 2u);
  // The stable lsn is held at the pin, so a checkpoint-driven truncation
  // cannot retire the pin's segment even though the chain rolled past it.
  ASSERT_TRUE(wal->TruncatePrefix(wal->StableLsn()).ok());
  EXPECT_EQ(wal->HeadLsn(), pinned);
  std::vector<Timestamp> replayed = ReplayTimestamps(wal.get());
  ASSERT_EQ(replayed.size(), 24u);
  EXPECT_EQ(replayed.front(), 10u);
  wal->Unpin(pinned);
  ASSERT_TRUE(wal->TruncatePrefix(wal->StableLsn()).ok());
  EXPECT_EQ(wal->SegmentCount(), 1u);
}

TEST(WalPins, GroupCommitPinsEveryPinnedParticipant) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const WalRecord record = MakeRecord(t * kPerThread + i + 1, 1);
        auto lsn = wal->group().Commit(record, /*sync=*/true, /*pin=*/true);
        if (!lsn.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // The record must be pin-protected until we release it.
        if (wal->StableLsn() > *lsn) failures.fetch_add(1);
        wal->Unpin(*lsn);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wal->PinnedCount(), 0u);
  EXPECT_EQ(wal->StableLsn(), wal->NextLsn());
}

TEST(GroupCommitter, ConcurrentSyncCommitsAllDurableAndDecodable) {
  auto dir = std::make_shared<InMemoryWalDir>();
  // Small segments: concurrent group-commit batches roll the chain many
  // times mid-flight.
  auto wal = OpenWal(dir, TinySegments(512));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const WalRecord record =
            MakeRecord(t * kPerThread + i + 1, (t * kPerThread + i + 1) * 10);
        auto lsn = wal->group().Commit(record, /*sync=*/true);
        if (!lsn.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wal->group().records(), uint64_t{kThreads * kPerThread});
  EXPECT_GT(wal->SegmentCount(), 1u);

  // Every record must decode, exactly once.
  std::vector<TxnId> seen;
  ASSERT_TRUE(wal->ReadAll([&](const WalRecord& record) {
                   seen.push_back(record.txn_id);
                   return Status::OK();
                 })
                  .ok());
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), size_t{kThreads * kPerThread});
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<TxnId>(i + 1));
  }
}

// --- sticky poison & async commit I/O ----------------------------------------

TEST(WalPoison, SyncEioPoisonsUntilReopen) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir);  // Inline flush: the caller's thread fsyncs.
  ASSERT_TRUE(wal->Append(SmallRecord(1, 10)).ok());
  ASSERT_TRUE(wal->Sync().ok());
  ASSERT_TRUE(wal->Append(SmallRecord(2, 20)).ok());

  wal->fault_hooks.Set([](const char* point) -> Status {
    if (std::string(point) == "wal.sync.fail") {
      return Status::IOError("injected EIO");
    }
    return Status::OK();
  });
  EXPECT_TRUE(wal->Sync().IsIOError());
  EXPECT_TRUE(wal->poisoned());
  wal->fault_hooks.Set(nullptr);

  // Sticky: the fault is gone, but the log stays wedged — after a failed
  // fsync the kernel may have dropped the dirty pages, so a later clean
  // fsync acking them would be fsyncgate.
  EXPECT_TRUE(wal->Sync().IsIOError());
  EXPECT_TRUE(wal->Append(SmallRecord(3, 30)).status().IsIOError());
  WalRecord record = SmallRecord(4, 40);
  std::vector<const WalRecord*> ptrs{&record};
  std::vector<Lsn> lsns;
  EXPECT_TRUE(wal->AppendBatch(ptrs, &lsns, nullptr).IsIOError());
  EXPECT_TRUE(wal->group().Commit(SmallRecord(5, 50), true).status().IsIOError());
  EXPECT_TRUE(wal->Reset().IsIOError());
  EXPECT_TRUE(wal->PoisonedStatus().IsIOError());

  // Reopen re-reads what is really durable: the synced record survives,
  // the unsynced one was dropped with the failed write-back (the injected
  // EIO simulates exactly the kernel's behavior) — never a torn state.
  wal.reset();
  auto reopened = OpenWal(dir);
  EXPECT_FALSE(reopened->poisoned());
  EXPECT_EQ(ReplayTimestamps(reopened.get()), (std::vector<Timestamp>{10}));
  ASSERT_TRUE(reopened->Append(SmallRecord(6, 60)).ok());
  ASSERT_TRUE(reopened->Sync().ok());
}

TEST(WalPoison, ConcurrentSyncersSeeStickyFailure) {
  auto dir = std::make_shared<InMemoryWalDir>();
  auto wal = OpenWal(dir);
  // Fire on the 5th sync pass so several threads are mid-flight when the
  // EIO lands. The poisoned-flag check-then-publish is what TSan is
  // pointed at: a peer's fsync+watermark-advance must never interleave
  // with the poisoning pass in a way that acks lost bytes.
  wal->fault_hooks.Set([hits = 0](const char* point) mutable -> Status {
    if (std::string(point) == "wal.sync.fail" && ++hits == 5) {
      return Status::IOError("injected EIO");
    }
    return Status::OK();
  });

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      bool failed = false;
      for (int i = 0; i < kPerThread; ++i) {
        const TxnId txn = static_cast<TxnId>(t * kPerThread + i + 1);
        Status s = wal->Append(SmallRecord(txn, txn * 10)).status();
        if (s.ok()) s = wal->Sync();
        if (s.ok()) {
          // Per-thread monotonicity: once this thread has seen the sticky
          // failure, nothing it does may be acked again.
          EXPECT_FALSE(failed) << "ack after poison on thread " << t;
        } else {
          EXPECT_TRUE(s.IsIOError()) << s.ToString();
          failed = true;
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_TRUE(wal->poisoned());
  EXPECT_GT(failures.load(), 0);
  EXPECT_TRUE(wal->Sync().IsIOError());
}

TEST(WalAsyncFlush, WatermarkAcksExactlyTheSyncedPrefix) {
  auto dir = std::make_shared<InMemoryWalDir>();
  WalOptions options;
  options.async_flush = true;
  auto wal = OpenWal(dir, options);
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(wal->Append(SmallRecord(i, i * 10)).ok());
  }
  // Sync() hands the cursor to the flusher and blocks on the watermark.
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_EQ(wal->FlushedLsn(), wal->NextLsn());

  // Group commit through the async hand-off: the ack implies the record's
  // LSN is at or below the watermark.
  auto lsn = wal->group().Commit(SmallRecord(9, 90), /*sync=*/true);
  ASSERT_TRUE(lsn.ok());
  EXPECT_GT(wal->FlushedLsn(), *lsn);
  EXPECT_EQ(wal->FlushedLsn(), wal->NextLsn());

  wal.reset();
  auto reopened = OpenWal(dir, options);
  EXPECT_EQ(ReplayTimestamps(reopened.get()).size(), 9u);
}

TEST(WalAsyncFlush, PoisonFailsWaitersAndLaterCommits) {
  auto dir = std::make_shared<InMemoryWalDir>();
  WalOptions options;
  options.async_flush = true;
  auto wal = OpenWal(dir, options);
  ASSERT_TRUE(wal->Append(SmallRecord(1, 10)).ok());
  ASSERT_TRUE(wal->Sync().ok());

  wal->fault_hooks.Set([](const char* point) -> Status {
    if (std::string(point) == "wal.sync.fail") {
      return Status::IOError("injected EIO");
    }
    return Status::OK();
  });
  ASSERT_TRUE(wal->Append(SmallRecord(2, 20)).ok());
  // The flusher hits the EIO; the blocked waiter must be failed, not left
  // hanging, and the already-durable watermark must not retreat.
  EXPECT_TRUE(wal->Sync().IsIOError());
  EXPECT_TRUE(wal->poisoned());
  wal->fault_hooks.Set(nullptr);
  EXPECT_TRUE(wal->group().Commit(SmallRecord(3, 30), true).status().IsIOError());

  wal.reset();
  auto reopened = OpenWal(dir, options);
  EXPECT_EQ(ReplayTimestamps(reopened.get()), (std::vector<Timestamp>{10}));
}

TEST(WalPrealloc, RollsAdoptPreparedSegmentsAndReopenDiscardsPrepFiles) {
  auto dir = std::make_shared<InMemoryWalDir>();
  WalOptions options = TinySegments(192, /*recycle_segments=*/2);
  options.async_flush = true;
  options.preallocate = true;
  auto wal = OpenWal(dir, options);
  constexpr int kRecords = 120;
  for (int i = 1; i <= kRecords; ++i) {
    ASSERT_TRUE(wal->Append(SmallRecord(i, i * 10)).ok());
    // Each sync parks this thread on the watermark, which hands the core
    // to the flusher — its prep loop keeps the next segment ready, so
    // nearly every roll below is a rename adoption.
    ASSERT_TRUE(wal->Sync().ok());
  }
  EXPECT_GT(wal->SegmentCount(), 1u);
  EXPECT_GT(wal->segments_preallocated(), 0u);

  // The flusher may leave a prepared-but-unadopted wal.prep.* file behind
  // at shutdown; reopen must discard it (its header was never written, so
  // adopting it would be chain corruption) and replay everything.
  wal.reset();
  auto reopened = OpenWal(dir, options);
  for (const std::string& name : ListNames(dir.get())) {
    EXPECT_EQ(name.rfind("wal.prep.", 0), std::string::npos) << name;
  }
  EXPECT_EQ(ReplayTimestamps(reopened.get()).size(), size_t{kRecords});
  ASSERT_TRUE(reopened->Append(SmallRecord(kRecords + 1, 9990)).ok());
  ASSERT_TRUE(reopened->Sync().ok());
}

}  // namespace
}  // namespace neosi
