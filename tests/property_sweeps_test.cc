// Parameterized property sweeps: randomized operation sequences checked
// against a simple in-memory oracle model, swept over seeds, isolation
// levels and conflict policies (TEST_P / INSTANTIATE_TEST_SUITE_P).

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <set>
#include <thread>

#include "common/random.h"
#include "graph/graph_database.h"
#include "workload/driver.h"

namespace neosi {
namespace {

// --------------------------------------------------------------------------
// Sweep 1: serial equivalence. A single-threaded stream of random
// transactions (some committed, some aborted) must leave the database in
// exactly the state of an oracle model that applies only the committed ones.
// --------------------------------------------------------------------------

struct ModelNode {
  std::set<std::string> labels;
  std::map<std::string, int64_t> props;
};

class SerialEquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, ConflictPolicy>> {
};

TEST_P(SerialEquivalenceSweep, CommittedStateMatchesOracle) {
  const uint64_t seed = std::get<0>(GetParam());
  const ConflictPolicy policy = std::get<1>(GetParam());

  DatabaseOptions options;
  options.in_memory = true;
  options.conflict_policy = policy;
  options.background_gc_interval_ms = 1;  // Exercise GC during the sweep.
  options.gc_backlog_threshold = 16;
  auto db = std::move(*GraphDatabase::Open(options));

  std::map<NodeId, ModelNode> model;
  std::vector<NodeId> live;
  Random rng(seed);
  const std::vector<std::string> label_pool = {"A", "B", "C"};
  const std::vector<std::string> key_pool = {"x", "y", "z"};

  for (int round = 0; round < 200; ++round) {
    auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
    // Stage 1..3 random mutations, mirrored into a candidate model.
    std::map<NodeId, ModelNode> candidate = model;
    std::vector<NodeId> candidate_live = live;
    bool ok = true;
    const int ops = 1 + rng.Uniform(3);
    for (int op = 0; op < ops && ok; ++op) {
      const uint64_t kind = rng.Uniform(4);
      if (kind == 0 || candidate_live.empty()) {
        const std::string& label = label_pool[rng.Uniform(label_pool.size())];
        auto id = txn->CreateNode({label});
        ASSERT_TRUE(id.ok()) << id.status();
        candidate[*id].labels.insert(label);
        candidate_live.push_back(*id);
      } else if (kind == 1) {
        const NodeId id = candidate_live[rng.Uniform(candidate_live.size())];
        const std::string& key = key_pool[rng.Uniform(key_pool.size())];
        const int64_t value = static_cast<int64_t>(rng.Uniform(1000));
        ASSERT_TRUE(txn->SetNodeProperty(id, key, PropertyValue(value)).ok());
        candidate[id].props[key] = value;
      } else if (kind == 2) {
        const NodeId id = candidate_live[rng.Uniform(candidate_live.size())];
        const std::string& label = label_pool[rng.Uniform(label_pool.size())];
        ASSERT_TRUE(txn->AddLabel(id, label).ok());
        candidate[id].labels.insert(label);
      } else {
        const size_t idx = rng.Uniform(candidate_live.size());
        const NodeId id = candidate_live[idx];
        Status s = txn->DeleteNode(id);
        ASSERT_TRUE(s.ok()) << s;
        candidate.erase(id);
        candidate_live.erase(candidate_live.begin() + idx);
      }
    }
    // Commit ~70% of rounds; abort the rest.
    if (rng.Bernoulli(0.7)) {
      ASSERT_TRUE(txn->Commit().ok());
      model = std::move(candidate);
      live = std::move(candidate_live);
    } else {
      ASSERT_TRUE(txn->Abort().ok());
    }
  }

  // Final state must equal the oracle: same node set, labels, properties.
  auto reader = db->Begin();
  auto all = reader->AllNodes();
  ASSERT_TRUE(all.ok());
  std::vector<NodeId> expected_ids;
  for (const auto& [id, node] : model) expected_ids.push_back(id);
  std::sort(expected_ids.begin(), expected_ids.end());
  EXPECT_EQ(*all, expected_ids);

  for (const auto& [id, node] : model) {
    auto view = reader->GetNode(id);
    ASSERT_TRUE(view.ok()) << "node " << id << ": " << view.status();
    std::set<std::string> got_labels(view->labels.begin(),
                                     view->labels.end());
    EXPECT_EQ(got_labels, node.labels) << "node " << id;
    ASSERT_EQ(view->props.size(), node.props.size()) << "node " << id;
    for (const auto& [key, value] : node.props) {
      ASSERT_TRUE(view->props.count(key));
      EXPECT_EQ(view->props.at(key).AsInt(), value);
    }
    // Index consistency: every label lookup contains the node.
    for (const std::string& label : node.labels) {
      auto by_label = reader->GetNodesByLabel(label);
      ASSERT_TRUE(by_label.ok());
      EXPECT_TRUE(std::find(by_label->begin(), by_label->end(), id) !=
                  by_label->end())
          << "label index lost node " << id << " label " << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SerialEquivalenceSweep,
    ::testing::Combine(
        ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
        ::testing::Values(ConflictPolicy::kFirstUpdaterWinsWait,
                          ConflictPolicy::kFirstUpdaterWinsNoWait,
                          ConflictPolicy::kFirstCommitterWins)));

// --------------------------------------------------------------------------
// Sweep 2: snapshot stability under concurrent churn, parameterized by
// (seed, reader count). Every repeated read inside an SI transaction must
// be identical.
// --------------------------------------------------------------------------

class SnapshotStabilitySweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(SnapshotStabilitySweep, RepeatedReadsIdentical) {
  const uint64_t seed = std::get<0>(GetParam());
  const int readers = std::get<1>(GetParam());

  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = 1;
  options.gc_backlog_threshold = 8;
  auto db = std::move(*GraphDatabase::Open(options));
  std::vector<NodeId> nodes;
  {
    auto txn = db->Begin();
    for (int i = 0; i < 16; ++i) {
      nodes.push_back(
          *txn->CreateNode({"S"}, {{"v", PropertyValue(int64_t{0})}}));
    }
    ASSERT_TRUE(txn->Commit().ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      Random rng(seed * 100 + r);
      while (!stop.load()) {
        auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
        const NodeId id = nodes[rng.Uniform(nodes.size())];
        auto v1 = txn->GetNodeProperty(id, "v");
        auto l1 = txn->GetNodesByLabel("S");
        if (!v1.ok() || !l1.ok()) continue;
        for (int i = 0; i < 3; ++i) {
          auto v2 = txn->GetNodeProperty(id, "v");
          auto l2 = txn->GetNodesByLabel("S");
          if (!v2.ok() || v2->AsInt() != v1->AsInt()) violations.fetch_add(1);
          if (!l2.ok() || *l2 != *l1) violations.fetch_add(1);
        }
      }
    });
  }

  RunForOps(2, 200, [&](int t, uint64_t op) {
    Random rng(seed * 7919 + t * 31 + op);
    auto txn = db->Begin();
    const NodeId id = nodes[rng.Uniform(nodes.size())];
    NEOSI_RETURN_IF_ERROR(txn->SetNodeProperty(
        id, "v", PropertyValue(static_cast<int64_t>(op))));
    return txn->Commit();
  });
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotStabilitySweep,
                         ::testing::Combine(::testing::Values(11u, 22u, 33u),
                                            ::testing::Values(1, 4)));

// --------------------------------------------------------------------------
// Sweep 3: crash-recovery equivalence, parameterized by seed and crash
// point. Commits up to the crash must survive; the crashed transaction must
// be atomic (all-or-nothing).
// --------------------------------------------------------------------------

class RecoverySweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("neosi_sweep_" + std::to_string(std::get<0>(GetParam())) + "_" +
            std::to_string(std::get<1>(GetParam())));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DatabaseOptions DiskOptions() {
    DatabaseOptions options;
    options.in_memory = false;
    options.path = dir_.string();
    return options;
  }
  std::filesystem::path dir_;
};

TEST_P(RecoverySweep, CommittedSurvivesCrashedIsAtomic) {
  const uint64_t seed = std::get<0>(GetParam());
  const int crash_after_ops = std::get<1>(GetParam());

  std::map<NodeId, int64_t> committed_model;
  std::vector<NodeId> crash_txn_nodes;
  {
    auto db = std::move(*GraphDatabase::Open(DiskOptions()));
    Random rng(seed);
    for (int round = 0; round < 30; ++round) {
      auto txn = db->Begin();
      auto id = txn->CreateNode(
          {"R"}, {{"v", PropertyValue(static_cast<int64_t>(round))}});
      ASSERT_TRUE(id.ok());
      ASSERT_TRUE(txn->Commit().ok());
      committed_model[*id] = round;
    }
    // The crashing transaction writes several nodes; the store apply is cut
    // short after `crash_after_ops` record writes.
    db->engine().test_hooks.crash_after_n_store_ops.store(crash_after_ops);
    auto txn = db->Begin();
    for (int i = 0; i < 5; ++i) {
      auto id = txn->CreateNode(
          {"Crash"}, {{"v", PropertyValue(static_cast<int64_t>(100 + i))}});
      ASSERT_TRUE(id.ok());
      crash_txn_nodes.push_back(*id);
    }
    Status s = txn->Commit();
    EXPECT_TRUE(s.IsIOError()) << s;
  }

  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  auto reader = db->Begin();
  // Every pre-crash commit intact.
  for (const auto& [id, v] : committed_model) {
    auto got = reader->GetNodeProperty(id, "v");
    ASSERT_TRUE(got.ok()) << "node " << id;
    EXPECT_EQ(got->AsInt(), v);
  }
  // The crashed transaction is atomic: ALL its nodes recovered (the WAL
  // record was durable before the store apply began).
  auto crash_nodes = reader->GetNodesByLabel("Crash");
  ASSERT_TRUE(crash_nodes.ok());
  EXPECT_EQ(crash_nodes->size(), crash_txn_nodes.size());
}

INSTANTIATE_TEST_SUITE_P(Grid, RecoverySweep,
                         ::testing::Combine(::testing::Values(5u, 6u, 7u),
                                            ::testing::Values(0, 1, 3)));

// --------------------------------------------------------------------------
// Sweep 4: GC equivalence — running GC at random points must never change
// any observable state, across seeds and collector kinds.
// --------------------------------------------------------------------------

class GcEquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(GcEquivalenceSweep, GcNeverChangesObservableState) {
  const uint64_t seed = std::get<0>(GetParam());
  const bool use_vacuum = std::get<1>(GetParam());

  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = 0;  // Manual GC only.
  auto db = std::move(*GraphDatabase::Open(options));

  std::map<NodeId, int64_t> model;
  std::vector<NodeId> live;
  Random rng(seed);
  for (int round = 0; round < 150; ++round) {
    auto txn = db->Begin();
    const uint64_t kind = rng.Uniform(3);
    if (kind == 0 || live.empty()) {
      auto id = txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
      ASSERT_TRUE(id.ok());
      ASSERT_TRUE(txn->Commit().ok());
      model[*id] = 0;
      live.push_back(*id);
    } else if (kind == 1) {
      const NodeId id = live[rng.Uniform(live.size())];
      const int64_t v = static_cast<int64_t>(rng.Uniform(999));
      ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(v)).ok());
      ASSERT_TRUE(txn->Commit().ok());
      model[id] = v;
    } else {
      const size_t idx = rng.Uniform(live.size());
      ASSERT_TRUE(txn->DeleteNode(live[idx]).ok());
      ASSERT_TRUE(txn->Commit().ok());
      model.erase(live[idx]);
      live.erase(live.begin() + idx);
    }
    if (round % 10 == 9) {
      if (use_vacuum) {
        db->RunVacuum();
      } else {
        db->RunGc();
      }
      // Model check after every collection.
      auto reader = db->Begin();
      auto all = reader->AllNodes();
      ASSERT_TRUE(all.ok());
      ASSERT_EQ(all->size(), model.size()) << "round " << round;
      for (const auto& [id, v] : model) {
        auto got = reader->GetNodeProperty(id, "v");
        ASSERT_TRUE(got.ok()) << "node " << id << " round " << round;
        EXPECT_EQ(got->AsInt(), v);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, GcEquivalenceSweep,
                         ::testing::Combine(::testing::Values(42u, 43u, 44u,
                                                              45u),
                                            ::testing::Bool()));

// --------------------------------------------------------------------------
// Sweep 5: blob-leak audit. Crash recovery deliberately leaks overflow
// blobs (freeing through stale chain pointers is unsafe); the reopen-time
// audit must measure that leak, report zero on clean reopens, and the leak
// must stay FLAT across clean restarts — only crashes may grow it.
// --------------------------------------------------------------------------

TEST(BlobLeakAudit, CleanReopensAreLeakFreeAndCrashLeakStaysBounded) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "neosi_blob_audit";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  DatabaseOptions options;
  options.in_memory = false;
  options.path = dir.string();
  options.background_gc_interval_ms = 0;
  options.checkpoint_interval_ms = 0;

  // Values past the inline payload spill to the dynamic store.
  const std::string big(256, 'x');
  NodeId key;
  {
    auto db = std::move(*GraphDatabase::Open(options));
    auto txn = db->Begin();
    auto id = txn->CreateNode({}, {{"v", PropertyValue(big + "0")}});
    ASSERT_TRUE(id.ok());
    key = *id;
    ASSERT_TRUE(txn->Commit().ok());
    for (int i = 1; i <= 8; ++i) {
      auto update = db->Begin();
      ASSERT_TRUE(update
                      ->SetNodeProperty(key, "v",
                                        PropertyValue(big + std::to_string(i)))
                      .ok());
      ASSERT_TRUE(update->Commit().ok());
    }
    // Clean shutdown: checkpoint empties the replay suffix, so the reopen
    // below suppresses no frees and must find zero leaked blocks.
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  {
    auto db = std::move(*GraphDatabase::Open(options));
    EXPECT_EQ(db->Stats().store.dyn_leaked_blocks, 0u);
    // Crash scenario: more overflow updates, then die with the suffix
    // unckeckpointed — the reopen replays them with frees suppressed, and
    // the swept orphan chains' blobs become the bounded leak.
    for (int i = 9; i <= 16; ++i) {
      auto update = db->Begin();
      ASSERT_TRUE(update
                      ->SetNodeProperty(key, "v",
                                        PropertyValue(big + std::to_string(i)))
                      .ok());
      ASSERT_TRUE(update->Commit().ok());
    }
    // No checkpoint: destroy == kill.
  }
  uint64_t leaked_after_crash = 0;
  {
    auto db = std::move(*GraphDatabase::Open(options));
    leaked_after_crash = db->Stats().store.dyn_leaked_blocks;
    EXPECT_GT(leaked_after_crash, 0u)
        << "replaying overflow updates must leak the superseded blobs";
    // Bound: at most the blocks of the replayed updates' superseded blobs
    // (8 updates, each value fits a handful of 64-byte blocks).
    EXPECT_LE(leaked_after_crash, 8u * 8u);
    // The recovered value is the last acked one.
    auto reader = db->Begin();
    auto got = reader->GetNodeProperty(key, "v");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->AsString(), big + "16");
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  {
    // Clean restart after the crash: the historical leak persists (the
    // audit is a measure, not a repair) but must not GROW.
    auto db = std::move(*GraphDatabase::Open(options));
    EXPECT_EQ(db->Stats().store.dyn_leaked_blocks, leaked_after_crash);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace neosi
