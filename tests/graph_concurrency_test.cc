// Multithreaded property tests: invariants that must hold under arbitrary
// interleavings — snapshot stability, write-write exclusion, conserved
// totals, GC safety under load.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "graph/graph_database.h"
#include "workload/bank.h"
#include "workload/driver.h"

namespace neosi {
namespace {

std::unique_ptr<GraphDatabase> OpenDb(
    ConflictPolicy policy = ConflictPolicy::kFirstUpdaterWinsWait,
    uint64_t gc_interval_ms = 0, uint64_t gc_backlog_threshold = 0) {
  DatabaseOptions options;
  options.in_memory = true;
  options.conflict_policy = policy;
  options.background_gc_interval_ms = gc_interval_ms;
  options.gc_backlog_threshold = gc_backlog_threshold;
  auto db = GraphDatabase::Open(options);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(*db);
}

// Property: under SI, the total of all account balances observed by ANY
// audit equals the invariant total, no matter how many transfers race.
TEST(Concurrency, SiAuditAlwaysSeesConservedTotal) {
  auto db = OpenDb();
  auto bank = *BuildBank(*db, 32, 100);
  std::atomic<bool> stop{false};
  std::atomic<int> torn_audits{0};

  std::thread auditor([&] {
    while (!stop.load()) {
      auto total = Audit(*db, bank, IsolationLevel::kSnapshotIsolation);
      if (total.ok() && *total != bank.ExpectedTotal()) {
        torn_audits.fetch_add(1);
      }
    }
  });

  DriverResult result = RunForDuration(4, 300, [&](int t, uint64_t op) {
    Random rng(t * 7919 + op);
    return Transfer(*db, bank, rng.Uniform(32), rng.Uniform(32),
                    static_cast<int64_t>(rng.Uniform(10)),
                    IsolationLevel::kSnapshotIsolation);
  });
  stop.store(true);
  auditor.join();

  EXPECT_EQ(torn_audits.load(), 0) << "SI audit observed a torn total";
  EXPECT_GT(result.committed, 0u);
  EXPECT_EQ(result.errors, 0u);
  // Final state conserves the total.
  EXPECT_EQ(*Audit(*db, bank, IsolationLevel::kSnapshotIsolation),
            bank.ExpectedTotal());
}

// Property: two concurrent committed transactions never both updated the
// same entity (the SI write rule, §3). We count per-entity committed
// updates via a version counter and verify monotonic single-step growth.
TEST(Concurrency, WriteWriteExclusionUnderAllPolicies) {
  for (ConflictPolicy policy : {ConflictPolicy::kFirstUpdaterWinsNoWait,
                                ConflictPolicy::kFirstUpdaterWinsWait,
                                ConflictPolicy::kFirstCommitterWins}) {
    auto db = OpenDb(policy);
    NodeId id;
    {
      auto txn = db->Begin();
      id = *txn->CreateNode({}, {{"count", PropertyValue(int64_t{0})}});
      ASSERT_TRUE(txn->Commit().ok());
    }
    // Each committed transaction increments the counter read from its own
    // snapshot. Lost updates would make the final count < commits.
    DriverResult result = RunForOps(4, 50, [&](int, uint64_t) {
      auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
      auto v = txn->GetNodeProperty(id, "count");
      NEOSI_RETURN_IF_ERROR(v.status());
      NEOSI_RETURN_IF_ERROR(
          txn->SetNodeProperty(id, "count", PropertyValue(v->AsInt() + 1)));
      return txn->Commit();
    });
    auto reader = db->Begin();
    const int64_t final_count = reader->GetNodeProperty(id, "count")->AsInt();
    EXPECT_EQ(final_count, static_cast<int64_t>(result.committed))
        << "lost update detected under policy "
        << ConflictPolicyToString(policy);
    EXPECT_EQ(result.committed, 200u);  // RunForOps retries to quota.
  }
}

// Property: a snapshot reader re-reading the same scan while writers churn
// always sees the identical result set.
TEST(Concurrency, SnapshotScansAreStableUnderChurn) {
  auto db = OpenDb();
  {
    auto txn = db->Begin();
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(txn->CreateNode({"Init"}).ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> instabilities{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
        auto first = txn->GetNodesByLabel("Init");
        if (!first.ok()) continue;
        for (int i = 0; i < 5; ++i) {
          auto again = txn->GetNodesByLabel("Init");
          if (!again.ok() || *again != *first) {
            instabilities.fetch_add(1);
          }
        }
      }
    });
  }

  RunForDuration(2, 300, [&](int t, uint64_t op) {
    auto txn = db->Begin();
    Random rng(t * 31 + op);
    if (rng.Bernoulli(0.5)) {
      NEOSI_RETURN_IF_ERROR(txn->CreateNode({"Init"}).status());
    } else {
      auto nodes = txn->GetNodesByLabel("Init");
      NEOSI_RETURN_IF_ERROR(nodes.status());
      if (!nodes->empty()) {
        const NodeId victim = (*nodes)[rng.Uniform(nodes->size())];
        Status s = txn->DeleteNode(victim);
        if (!s.ok() && !s.IsRetryable() && !s.IsNotFound() &&
            !s.IsFailedPrecondition()) {
          return s;
        }
        if (s.IsRetryable()) return s;
      }
    }
    return txn->Commit();
  });
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(instabilities.load(), 0);
}

// Property: GC running concurrently with snapshot readers never removes a
// version a reader still needs (reads never fail, values never regress).
TEST(Concurrency, GcIsSafeUnderConcurrentReaders) {
  auto db = OpenDb(ConflictPolicy::kFirstUpdaterWinsWait,
                   /*gc_interval_ms=*/1, /*gc_backlog_threshold=*/16);
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> read_failures{0};
  std::atomic<int> regressions{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
        auto v1 = txn->GetNodeProperty(id, "v");
        if (!v1.ok()) {
          read_failures.fetch_add(1);
          continue;
        }
        std::this_thread::yield();
        auto v2 = txn->GetNodeProperty(id, "v");
        if (!v2.ok()) {
          read_failures.fetch_add(1);
        } else if (v2->AsInt() != v1->AsInt()) {
          regressions.fetch_add(1);
        }
      }
    });
  }

  std::thread gc_thread([&] {
    while (!stop.load()) {
      db->RunGc();
      std::this_thread::yield();
    }
  });

  RunForOps(1, 500, [&](int, uint64_t op) {
    auto txn = db->Begin();
    NEOSI_RETURN_IF_ERROR(txn->SetNodeProperty(
        id, "v", PropertyValue(static_cast<int64_t>(op))));
    return txn->Commit();
  });
  stop.store(true);
  for (auto& t : readers) t.join();
  gc_thread.join();

  EXPECT_EQ(read_failures.load(), 0);
  EXPECT_EQ(regressions.load(), 0);
}

// Property: with the snapshot-too-old policy expiring snapshots out from
// under readers as aggressively as it can, a mid-walk reader still never
// observes reclaimed memory — the epoch guard keeps retired versions alive
// until the walk exits. Logically an SI reader either sees its stable
// snapshot or fails CLEANLY with SnapshotTooOld (never a torn value, never
// a crash); an RC reader is exempt from expiry entirely and observes a
// monotone latest-committed sequence. ASan/TSan runs of this test turn any
// reclaim-under-reader into a hard failure.
TEST(Concurrency, EpochProtectedReadersNeverSeeReclaimedVersions) {
  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = 1;
  options.gc_backlog_threshold = 8;
  options.snapshot_max_age_ms = 10;
  options.snapshot_expire_backlog = 64;
  auto opened = GraphDatabase::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto db = std::move(*opened);

  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  // SI readers: read twice per snapshot. Each read either succeeds with
  // the same stable value or the snapshot has expired — any other outcome
  // (torn pair, non-SnapshotTooOld error) is a violation.
  std::vector<std::thread> si_readers;
  for (int r = 0; r < 2; ++r) {
    si_readers.emplace_back([&] {
      while (!stop.load()) {
        auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
        auto v1 = txn->GetNodeProperty(id, "v");
        if (!v1.ok()) {
          if (!v1.status().IsSnapshotTooOld()) violations.fetch_add(1);
          continue;
        }
        std::this_thread::yield();  // widen the expiry window mid-snapshot
        auto v2 = txn->GetNodeProperty(id, "v");
        if (!v2.ok()) {
          if (!v2.status().IsSnapshotTooOld()) violations.fetch_add(1);
        } else if (v2->AsInt() != v1->AsInt()) {
          violations.fetch_add(1);  // snapshot instability
        }
      }
    });
  }

  // RC readers: never expired, never SnapshotTooOld; values are the
  // latest-committed counter, so per-thread observations never decrease.
  // The short RC read lock CAN lose a wait-die conflict against the writer
  // (a clean retryable abort) — only expiry leaking into RC, or a
  // non-retryable error, is a violation.
  std::vector<std::thread> rc_readers;
  for (int r = 0; r < 2; ++r) {
    rc_readers.emplace_back([&] {
      int64_t last = -1;
      while (!stop.load()) {
        auto txn = db->Begin(IsolationLevel::kReadCommitted);
        auto v = txn->GetNodeProperty(id, "v");
        if (!v.ok()) {
          if (v.status().IsSnapshotTooOld() || !v.status().IsRetryable()) {
            violations.fetch_add(1);
          }
          continue;
        }
        if (v->AsInt() < last) violations.fetch_add(1);
        last = v->AsInt();
      }
    });
  }

  RunForOps(1, 600, [&](int, uint64_t op) {
    auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
    Status s = txn->SetNodeProperty(id, "v",
                                    PropertyValue(static_cast<int64_t>(op)));
    if (s.ok()) s = txn->Commit();
    // The writer's own snapshot can be expired under this policy; that is
    // a clean retryable outcome, not a failure of the property.
    if (!s.ok() && !s.IsRetryable()) return s;
    return Status::OK();
  });
  stop.store(true);
  for (auto& t : si_readers) t.join();
  for (auto& t : rc_readers) t.join();

  EXPECT_EQ(violations.load(), 0);
  // The epoch machinery actually exercised: pruning a superseded version
  // retires it through limbo. Under extreme load every churn commit above
  // can expire before committing (a clean retryable abort each time),
  // leaving nothing to reclaim — so guarantee a superseded version exists
  // by writing until one has been retired (two committed writes suffice
  // once the readers are gone and the watermark can advance).
  for (int i = 0; db->Stats().epoch_retired == 0 && i < 1000; ++i) {
    auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
    Status s = txn->SetNodeProperty(id, "v", PropertyValue(int64_t{i}));
    if (s.ok()) s = txn->Commit();
    ASSERT_TRUE(s.ok() || s.IsRetryable()) << s;
    db->RunGc();
  }
  EXPECT_GT(db->Stats().epoch_retired, 0u);
}

// Structural churn: concurrent edge creation/deletion with traversals and
// GC; the graph must stay structurally consistent (no corruption statuses).
TEST(Concurrency, StructuralChurnStaysConsistent) {
  auto db = OpenDb(ConflictPolicy::kFirstUpdaterWinsWait,
                   /*gc_interval_ms=*/1, /*gc_backlog_threshold=*/32);
  std::vector<NodeId> nodes;
  {
    auto txn = db->Begin();
    for (int i = 0; i < 20; ++i) nodes.push_back(*txn->CreateNode({"Hub"}));
    ASSERT_TRUE(txn->Commit().ok());
  }
  std::atomic<int> corruption{0};

  DriverResult result = RunForDuration(4, 400, [&](int t, uint64_t op) {
    Random rng(t * 104729 + op);
    auto txn = db->Begin();
    const NodeId a = nodes[rng.Uniform(nodes.size())];
    const NodeId b = nodes[rng.Uniform(nodes.size())];
    if (rng.Bernoulli(0.6)) {
      auto rel = txn->CreateRelationship(a, b, "LINK");
      if (!rel.ok()) return rel.status();
    } else {
      auto rels = txn->GetRelationships(a);
      if (!rels.ok()) return rels.status();
      if (!rels->empty()) {
        Status s = txn->DeleteRelationship((*rels)[rng.Uniform(rels->size())]);
        if (s.IsCorruption() || s.IsInternal()) corruption.fetch_add(1);
        if (!s.ok() && !s.IsNotFound()) return s;
      }
    }
    Status s = txn->Commit();
    if (s.IsCorruption() || s.IsInternal()) corruption.fetch_add(1);
    return s;
  });

  EXPECT_EQ(corruption.load(), 0);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.committed, 0u);

  // Post-churn: quiesce, GC everything, and verify chain integrity by
  // walking every node's chain.
  db->RunGc();
  auto txn = db->Begin();
  for (NodeId n : nodes) {
    auto rels = txn->GetRelationships(n);
    ASSERT_TRUE(rels.ok()) << rels.status();
    for (RelId r : *rels) {
      auto view = txn->GetRelationship(r);
      ASSERT_TRUE(view.ok()) << view.status();
      EXPECT_TRUE(view->src == n || view->dst == n);
    }
  }
}

// Deadlock handling: opposite-order lock acquisition must resolve via
// wait-die (one side gets a retryable status), never hang.
TEST(Concurrency, OppositeOrderWritesNeverHang) {
  auto db = OpenDb(ConflictPolicy::kFirstUpdaterWinsWait);
  NodeId a, b;
  {
    auto txn = db->Begin();
    a = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    b = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  DriverResult result = RunForOps(2, 100, [&](int t, uint64_t) {
    auto txn = db->Begin();
    const NodeId first = t == 0 ? a : b;
    const NodeId second = t == 0 ? b : a;
    NEOSI_RETURN_IF_ERROR(
        txn->SetNodeProperty(first, "v", PropertyValue(int64_t{1})));
    NEOSI_RETURN_IF_ERROR(
        txn->SetNodeProperty(second, "v", PropertyValue(int64_t{1})));
    return txn->Commit();
  });
  EXPECT_EQ(result.committed, 200u);
  EXPECT_EQ(result.errors, 0u);
}

}  // namespace
}  // namespace neosi
