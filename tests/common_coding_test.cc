// Encoding primitives: fixed/varint round-trips, CRC32C vectors.

#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/random.h"

namespace neosi {
namespace {

TEST(Coding, Fixed64RoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{255}, uint64_t{65536}, UINT64_MAX}) {
    std::string buf;
    PutFixed64(&buf, v);
    ASSERT_EQ(buf.size(), 8u);
    Slice input(buf);
    uint64_t out;
    ASSERT_TRUE(GetFixed64(&input, &out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(input.empty());
  }
}

TEST(Coding, Fixed32And16RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed16(&buf, 0xCAFE);
  Slice input(buf);
  uint32_t v32;
  uint16_t v16;
  ASSERT_TRUE(GetFixed32(&input, &v32));
  ASSERT_TRUE(GetFixed16(&input, &v16));
  EXPECT_EQ(v32, 0xDEADBEEFu);
  EXPECT_EQ(v16, 0xCAFEu);
}

TEST(Coding, VarintRoundTripBoundaries) {
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384};
  for (int shift = 0; shift < 64; shift += 7) {
    values.push_back(1ULL << shift);
    values.push_back((1ULL << shift) - 1);
  }
  values.push_back(UINT64_MAX);
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice input(buf);
  for (uint64_t v : values) {
    uint64_t out;
    ASSERT_TRUE(GetVarint64(&input, &out));
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(input.empty());
}

TEST(Coding, VarintRandomRoundTrip) {
  Random rng(7);
  std::vector<uint64_t> values;
  std::string buf;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Next() >> (rng.Uniform(64));
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  Slice input(buf);
  for (uint64_t v : values) {
    uint64_t out;
    ASSERT_TRUE(GetVarint64(&input, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(Coding, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 33);
  Slice input(buf);
  uint32_t out;
  EXPECT_FALSE(GetVarint32(&input, &out));
}

TEST(Coding, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 300);  // Two bytes.
  Slice input(buf.data(), 1);
  uint64_t out;
  EXPECT_FALSE(GetVarint64(&input, &out));

  Slice short_fixed("abc", 3);
  uint32_t v32;
  EXPECT_FALSE(GetFixed32(&short_fixed, &v32));
}

TEST(Coding, LengthPrefixedSlice) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, Slice("hello"));
  PutLengthPrefixedSlice(&buf, Slice(""));
  PutLengthPrefixedSlice(&buf, Slice(std::string(1000, 'x')));
  Slice input(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &b));
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 1000u);
}

TEST(Coding, Crc32cKnownVectors) {
  // Standard CRC-32C test vector: "123456789" -> 0xE3069283.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  // Empty input.
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Coding, Crc32cDetectsCorruption) {
  std::string data = "the quick brown fox";
  const uint32_t crc = Crc32c(data.data(), data.size());
  data[3] ^= 0x01;
  EXPECT_NE(Crc32c(data.data(), data.size()), crc);
}

TEST(Slice, CompareAndPrefix) {
  Slice a("abc"), b("abd"), c("ab");
  EXPECT_LT(a.compare(b), 0);
  EXPECT_GT(b.compare(a), 0);
  EXPECT_GT(a.compare(c), 0);
  EXPECT_EQ(a.compare(Slice("abc")), 0);
  Slice d("hello world");
  d.remove_prefix(6);
  EXPECT_EQ(d.ToString(), "world");
}

}  // namespace
}  // namespace neosi
