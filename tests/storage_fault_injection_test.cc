// Deterministic crash-point fault injection over the segmented WAL /
// checkpoint / recovery stack (see tests/fault_injection.h for the
// harness): kill the store at every named crash point in a loop, recover,
// and assert the recovered state equals the shadow model of acked commits.
// Also proves the tentpole property of segment rotation — the on-disk WAL
// footprint under sustained write load stays bounded by whole-segment
// unlinking alone, with no reliance on filesystem hole punching.

#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "fault_injection.h"
#include "graph/graph_database.h"

namespace neosi {
namespace {

std::filesystem::path TempDir(const std::string& tag) {
  return std::filesystem::temp_directory_path() /
         ("neosi_fault_" + tag + "_" + std::to_string(::getpid()));
}

// --- one kill-and-recover loop per named crash point -----------------------

TEST(FaultInjection, CrashAtMidAppendRecovers) {
  fault::CrashLoopHarness harness(TempDir("mid_append"));
  harness.Run("wal.append.mid_frame");
}

TEST(FaultInjection, CrashAfterSegmentCreateRecovers) {
  // Smaller segments than the default harness config: the workload must
  // actually reach the roll path several times per round.
  fault::CrashLoopHarness::Options options;
  options.wal_segment_size = 512;
  options.txns_per_round = 60;
  fault::CrashLoopHarness harness(TempDir("segment_create"), options);
  harness.Run("wal.segment.post_create");
}

TEST(FaultInjection, CrashOnWriteFailureAfterRollRecovers) {
  fault::CrashLoopHarness::Options options;
  options.wal_segment_size = 512;
  options.txns_per_round = 60;
  fault::CrashLoopHarness harness(TempDir("fail_after_roll"), options);
  harness.Run("wal.append.fail_after_roll");
}

TEST(FaultInjection, CrashBeforeSegmentUnlinkRecovers) {
  fault::CrashLoopHarness harness(TempDir("pre_unlink"));
  harness.Run("wal.truncate.pre_unlink");
}

TEST(FaultInjection, CrashBeforeCheckpointMarkerRecovers) {
  fault::CrashLoopHarness harness(TempDir("pre_marker"));
  harness.Run("checkpoint.pre_marker");
}

TEST(FaultInjection, CrashAfterCheckpointMarkerRecovers) {
  fault::CrashLoopHarness harness(TempDir("post_marker"));
  harness.Run("checkpoint.post_marker");
}

TEST(FaultInjection, EveryNamedCrashPointIsReachable) {
  // Guard against the harness silently testing nothing: each named point
  // must actually fire at least once under its tuned workload.
  for (const std::string& point : fault::AllCrashPoints()) {
    fault::CrashLoopHarness::Options options;
    options.rounds = 2;
    options.txns_per_round = 60;
    options.wal_segment_size = 512;
    fault::CrashLoopHarness harness(TempDir("reach_" + point), options);
    auto opened = GraphDatabase::Open(harness.DbOptions());
    ASSERT_TRUE(opened.ok());
    auto db = std::move(*opened);
    harness.SeedIfNeeded(db.get());
    fault::CrashPoint crash(db.get(), point);
    for (int i = 0; i < 200 && !crash.fired(); ++i) {
      auto txn = db->Begin();
      ASSERT_TRUE(txn->SetNodeProperty(harness.keys()[0], "v",
                                       PropertyValue(int64_t{i}))
                      .ok());
      (void)txn->Commit();
      if ((i + 1) % 5 == 0) (void)db->Checkpoint();
    }
    EXPECT_TRUE(crash.fired()) << "crash point never reached: " << point;
  }
}

// --- the tentpole acceptance: bounded disk footprint, no hole punching -----

// Sustained multi-writer load with the checkpoint daemon enabled and tiny
// segments: the physical WAL footprint (sum of wal.* file sizes — the thing
// PUNCH_HOLE used to be needed for on hole-less backends) must stay bounded
// by ~(live bytes + 2 * wal_segment_size) the whole time, because dead
// whole segments are unlinked outright. The shadow model then proves no
// acked commit was traded away for the bound.
TEST(FaultInjection, SustainedWriteDiskFootprintStaysBounded) {
  constexpr uint64_t kSegmentSize = 4096;
  constexpr int kWriters = 3;
  constexpr int kCommitsPerWriter = 1500;

  fault::CrashLoopHarness::Options harness_options;
  harness_options.keys = kWriters;
  harness_options.wal_segment_size = kSegmentSize;
  harness_options.wal_recycle_segments = 0;  // Strict delete-only mode.
  harness_options.sync_commits = false;
  fault::CrashLoopHarness harness(TempDir("footprint"), harness_options);

  std::array<std::atomic<int64_t>, kWriters> acked{};
  uint64_t disk_high_water = 0;
  int64_t dead_high_water = 0;
  uint64_t segments_deleted = 0;
  {
    DatabaseOptions options = harness.DbOptions();
    options.checkpoint_interval_ms = 1;  // Daemon paces the reclamation.
    options.checkpoint_wal_threshold = kSegmentSize / 2;
    auto db = std::move(*GraphDatabase::Open(options));
    harness.SeedIfNeeded(db.get());

    std::atomic<bool> stop{false};
    std::thread sampler([&] {
      while (!stop.load(std::memory_order_acquire)) {
        // Bracketed read: the directory scan races appends (which grow
        // both live and disk) and truncations (which shrink both), so
        // subtract the LARGER of the live gauges taken around it — appends
        // landing mid-scan cancel out instead of counting as dead bytes.
        const uint64_t live_before = db->engine().store.wal().SizeBytes();
        const uint64_t disk = harness.WalDiskBytes();
        const uint64_t live_after = db->engine().store.wal().SizeBytes();
        const uint64_t live = std::max(live_before, live_after);
        disk_high_water = std::max(disk_high_water, disk);
        dead_high_water =
            std::max(dead_high_water,
                     static_cast<int64_t>(disk) - static_cast<int64_t>(live));
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        const NodeId key = harness.keys()[w];
        for (int i = 1; i <= kCommitsPerWriter; ++i) {
          auto txn = db->Begin();
          ASSERT_TRUE(
              txn->SetNodeProperty(key, "v", PropertyValue(int64_t{i})).ok());
          ASSERT_TRUE(txn->Commit().ok());
          acked[w].store(i, std::memory_order_release);
        }
      });
    }
    for (auto& t : writers) t.join();
    stop.store(true, std::memory_order_release);
    sampler.join();
    disk_high_water = std::max(disk_high_water, harness.WalDiskBytes());

    const DatabaseStats stats = db->Stats();
    segments_deleted = stats.store.wal_segments_deleted;
    // Reclamation really was whole-segment unlinks, at volume: the workload
    // wrote far more log than the bound, so dozens of segments came and
    // went.
    EXPECT_GT(segments_deleted, 10u);
    EXPECT_EQ(stats.store.wal_segments_recycled, 0u);  // Delete-only mode.

    // Quiesced, one checkpoint empties the live log; the footprint
    // collapses to the single active segment.
    ASSERT_TRUE(db->Checkpoint().ok());
    EXPECT_EQ(db->engine().store.wal().SizeBytes(), 0u);
    EXPECT_EQ(db->engine().store.wal().SegmentCount(), 1u);
    EXPECT_LE(harness.WalDiskBytes(), kSegmentSize);
  }

  // The acceptance bound: on-disk footprint <= live bytes + ~2 segments.
  // Dead bytes beyond the live log are exactly the already-checkpointed
  // prefix of the oldest retained segment (a whole dead segment is
  // unlinked the moment truncation sees it) plus per-segment headers — a
  // CONSTANT, independent of how much log the workload ever wrote
  // (~hundreds of KiB in this run) and of how far the daemon lags on the
  // live side. The pre-rotation WAL's extent grew with total volume on any
  // backend without PUNCH_HOLE; this is the gap rotation closes.
  EXPECT_LE(dead_high_water, static_cast<int64_t>(2 * kSegmentSize))
      << "dead WAL bytes grew past the rotation bound";
  EXPECT_GT(disk_high_water, 0u);

  // And none of it cost an acked commit: reopen and check the shadow.
  for (int w = 0; w < kWriters; ++w) {
    harness.RecordAck(harness.keys()[w], acked[w].load());
  }
  auto db = std::move(*GraphDatabase::Open(harness.DbOptions()));
  harness.VerifyRecovered(db.get(), /*round=*/0);
}

}  // namespace
}  // namespace neosi
