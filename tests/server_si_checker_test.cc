// Wire-level SI/SSI conformance: the black-box history checkers from
// si_checker.h, driven ENTIRELY through concurrent socket clients — every
// begin, read, write, and commit crosses the wire protocol, so session
// multiplexing, worker-pool handoff, and reply framing are all inside the
// checked loop. Timestamps come from the Begin/Commit replies (the server
// passes txn id, start_ts, and commit_ts through), which is exactly what a
// remote checker could observe.
//
// Mixed-isolation DSG soundness note: the engine guarantees
// serializability among kSerializable transactions ONLY (the PostgreSQL
// stance) — an SI transaction writing a serializable reader's key can
// legally create a DSG cycle through the SI writer. The full-history DSG
// acyclicity test therefore splits the key space: serializable clients
// share one key set (their component is acyclic by SSI), SI clients do
// single-key read-modify-writes on a disjoint set (a committed single-key
// RMW under SI has no outgoing rw edge: first-updater-wins means nobody
// overwrote its snapshot read... its own write follows it, and A3 forbids a
// concurrent committed writer in between — so that component is a chain).
// No key is shared across the sets, so the combined DSG is acyclic iff the
// engine keeps both contracts. Shared-key mixed histories are checked
// against the SI axioms, which both isolation levels must satisfy.

#include <gtest/gtest.h>

#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "graph/graph_database.h"
#include "server/client.h"
#include "server/server.h"
#include "si_checker.h"

namespace neosi {
namespace {

using sichecker::DsgChecker;
using sichecker::MakeValue;
using sichecker::SiHistoryChecker;
using sichecker::TxnRecord;

class WireSiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("neosi_wire_si_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DatabaseOptions DiskOptions() {
    DatabaseOptions options;
    options.in_memory = false;
    options.path = dir_.string();
    options.background_gc_interval_ms = 1;  // GC races the workload.
    options.gc_backlog_threshold = 8;
    return options;
  }

  static ServerOptions WireOptions() {
    ServerOptions options;
    options.workers = 3;
    return options;
  }

  /// Seeds `count` counter nodes over the wire; the seed transaction joins
  /// the history so initial reads attribute.
  static std::pair<std::vector<NodeId>, TxnRecord> SeedOverWire(
      uint16_t port, int count) {
    Client client;
    EXPECT_TRUE(client.Connect("127.0.0.1", port).ok());
    auto begin = client.Begin();
    EXPECT_TRUE(begin.ok()) << begin.status();
    TxnRecord rec;
    rec.id = begin->txn_id;
    rec.snapshot_ts = begin->start_ts;
    std::vector<NodeId> keys;
    for (int i = 0; i < count; ++i) {
      auto id = client.CreateNode({"Counter"},
                                  {{"v", PropertyValue(int64_t{0})}});
      EXPECT_TRUE(id.ok()) << id.status();
      rec.writes[*id] = 0;
      keys.push_back(*id);
    }
    auto committed = client.Commit();
    EXPECT_TRUE(committed.ok()) << committed.status();
    rec.committed = true;
    rec.commit_ts = *committed;
    return {keys, rec};
  }

  std::filesystem::path dir_;
};

/// One socket client running `txns` read-then-write transactions over
/// `keys` at `isolation`, reconnecting whenever the connection drops (a
/// server restart mid-history surfaces as IOError). Transactions cut down
/// by a restart before their Commit reply are recorded as aborted — which
/// is exactly what the engine guarantees for them.
void WireWorker(uint16_t port, const std::vector<NodeId>& keys,
                IsolationLevel isolation, int thread_tag, int txns,
                std::vector<TxnRecord>* out, std::mutex* out_mu) {
  Random rng(thread_tag * 7919 + 3);
  Client client;
  std::vector<TxnRecord> local;
  for (int i = 0; i < txns; ++i) {
    if (!client.connected()) {
      // (Re)connect with retries: the server may be mid-restart.
      bool up = false;
      for (int attempt = 0; attempt < 200 && !up; ++attempt) {
        up = client.Connect("127.0.0.1", port).ok();
        if (!up) std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (!up) break;  // Server never came back; partial history is fine.
    }
    auto begin = client.Begin(isolation);
    if (!begin.ok()) continue;  // Dropped or shed; nothing recorded yet.
    TxnRecord rec;
    rec.id = begin->txn_id;
    rec.snapshot_ts = begin->start_ts;

    bool failed = false;
    const int reads = 1 + static_cast<int>(rng.Uniform(2));
    for (int r = 0; r < reads && !failed; ++r) {
      const NodeId key = keys[rng.Uniform(keys.size())];
      if (rec.reads.count(key)) continue;
      auto value = client.GetNodeProperty(key, "v");
      if (!value.ok()) {
        failed = true;
        break;
      }
      rec.reads[key] = value->AsInt();
    }
    if (!failed) {
      const NodeId key = keys[rng.Uniform(keys.size())];
      const int64_t value = MakeValue(thread_tag, i);
      if (client.SetNodeProperty(key, "v", PropertyValue(value)).ok()) {
        rec.writes[key] = value;
      } else {
        failed = true;
      }
    }

    if (failed) {
      rec.committed = false;
      // Roll back if the session survived; a dropped session was already
      // aborted server-side.
      if (client.connected()) (void)client.Rollback();
    } else if (rng.Uniform(10) == 0) {
      rec.committed = false;
      (void)client.Rollback();
    } else {
      auto committed = client.Commit();
      rec.committed = committed.ok();
      if (committed.ok()) rec.commit_ts = *committed;
    }
    local.push_back(std::move(rec));
  }
  std::lock_guard<std::mutex> lock(*out_mu);
  for (auto& rec : local) out->push_back(std::move(rec));
}

// Four concurrent SI socket clients on shared keys: the wire history must
// satisfy every SI axiom.
TEST_F(WireSiTest, ConcurrentSocketClientsProduceSiHistory) {
  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  auto server = std::move(*Server::Start(db.get(), WireOptions()));
  auto [keys, seed] = SeedOverWire(server->port(), 6);

  std::vector<TxnRecord> history{seed};
  std::mutex mu;
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back(WireWorker, server->port(), keys,
                         IsolationLevel::kSnapshotIsolation, t, 120,
                         &history, &mu);
  }
  for (auto& c : clients) c.join();

  size_t committed = 0;
  for (const auto& rec : history) committed += rec.committed ? 1 : 0;
  ASSERT_GT(committed, 60u) << "workload too contended to be meaningful";

  SiHistoryChecker checker(std::move(history));
  for (const auto& v : checker.Check()) ADD_FAILURE() << v;
  server->Stop();
}

// Mixed SI + Serializable clients on SHARED keys: both isolation levels
// must uphold the SI axioms (serializability across the mix is not
// promised — see the header comment — but snapshot reads, committed reads,
// lost-update freedom, and commit ordering are).
TEST_F(WireSiTest, MixedIsolationSharedKeysSatisfySiAxioms) {
  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  auto server = std::move(*Server::Start(db.get(), WireOptions()));
  auto [keys, seed] = SeedOverWire(server->port(), 6);

  std::vector<TxnRecord> history{seed};
  std::mutex mu;
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    const IsolationLevel isolation = (t % 2 == 0)
                                         ? IsolationLevel::kSnapshotIsolation
                                         : IsolationLevel::kSerializable;
    clients.emplace_back(WireWorker, server->port(), keys, isolation, t, 100,
                         &history, &mu);
  }
  for (auto& c : clients) c.join();

  SiHistoryChecker checker(std::move(history));
  for (const auto& v : checker.Check()) ADD_FAILURE() << v;

  // The serializable half really engaged the SSI tracker.
  EXPECT_GT(db->Stats().ssi_tracked_txns, 0u);
  server->Stop();
}

/// SI client doing single-key read-modify-writes on its own key set: under
/// SI these transactions have no outgoing rw edges (see header comment),
/// so their DSG component is acyclic by construction of the engine's
/// first-updater-wins rule.
void SingleKeyRmwWorker(uint16_t port, const std::vector<NodeId>& keys,
                        int thread_tag, int txns,
                        std::vector<TxnRecord>* out, std::mutex* out_mu) {
  Random rng(thread_tag * 104729 + 11);
  Client client;
  std::vector<TxnRecord> local;
  for (int i = 0; i < txns; ++i) {
    if (!client.connected()) {
      bool up = false;
      for (int attempt = 0; attempt < 200 && !up; ++attempt) {
        up = client.Connect("127.0.0.1", port).ok();
        if (!up) std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (!up) break;
    }
    auto begin = client.Begin(IsolationLevel::kSnapshotIsolation);
    if (!begin.ok()) continue;
    TxnRecord rec;
    rec.id = begin->txn_id;
    rec.snapshot_ts = begin->start_ts;
    const NodeId key = keys[rng.Uniform(keys.size())];
    auto value = client.GetNodeProperty(key, "v");
    bool failed = !value.ok();
    if (!failed) {
      rec.reads[key] = value->AsInt();
      const int64_t next = MakeValue(thread_tag, i);
      if (client.SetNodeProperty(key, "v", PropertyValue(next)).ok()) {
        rec.writes[key] = next;
      } else {
        failed = true;
      }
    }
    if (failed) {
      rec.committed = false;
      if (client.connected()) (void)client.Rollback();
    } else {
      auto committed = client.Commit();
      rec.committed = committed.ok();
      if (committed.ok()) rec.commit_ts = *committed;
    }
    local.push_back(std::move(rec));
  }
  std::lock_guard<std::mutex> lock(*out_mu);
  for (auto& rec : local) out->push_back(std::move(rec));
}

// THE acceptance-criterion history: >= 4 concurrent socket clients, mixed
// SI + Serializable, one full server restart mid-history, on an on-disk
// database — and the combined DSG must be acyclic (key sets disjoint per
// isolation level; see header comment for why that makes acyclicity the
// engine's obligation rather than an SI accident).
TEST_F(WireSiTest, MixedHistoryWithServerRestartIsDsgAcyclic) {
  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  auto server = std::move(*Server::Start(db.get(), WireOptions()));
  const uint16_t port = server->port();

  auto [serializable_keys, seed1] = SeedOverWire(port, 4);
  auto [si_keys, seed2] = SeedOverWire(port, 4);

  std::vector<TxnRecord> history{seed1, seed2};
  std::mutex mu;
  std::vector<std::thread> clients;
  // Three serializable clients on the shared serializable key set...
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back(WireWorker, port, serializable_keys,
                         IsolationLevel::kSerializable, t, 150, &history,
                         &mu);
  }
  // ...and three SI clients doing single-key RMWs on the disjoint set.
  for (int t = 3; t < 6; ++t) {
    clients.emplace_back(SingleKeyRmwWorker, port, si_keys, t, 150, &history,
                         &mu);
  }

  // Mid-history: full server restart on the SAME database + port. In-flight
  // sessions are cut (their transactions aborted server-side); clients
  // reconnect and continue, so the history spans both incarnations.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  server->Stop();
  server.reset();
  ServerOptions restart_options = WireOptions();
  restart_options.port = port;
  // The port is in TIME_WAIT-free (SO_REUSEADDR) but give it a beat.
  Result<std::unique_ptr<Server>> restarted =
      Server::Start(db.get(), restart_options);
  for (int attempt = 0; attempt < 100 && !restarted.ok(); ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    restarted = Server::Start(db.get(), restart_options);
  }
  ASSERT_TRUE(restarted.ok()) << restarted.status();
  server = std::move(*restarted);

  for (auto& c : clients) c.join();

  size_t committed = 0;
  for (const auto& rec : history) committed += rec.committed ? 1 : 0;
  ASSERT_GT(committed, 100u) << "history too thin to be meaningful";

  // Every SI axiom over the full mixed history...
  SiHistoryChecker si_checker(history);
  for (const auto& v : si_checker.Check()) ADD_FAILURE() << v;

  // ...and full DSG acyclicity.
  DsgChecker dsg(std::move(history));
  const auto cycle = dsg.FindCycle();
  EXPECT_FALSE(cycle.has_value()) << *cycle;

  // No established snapshot was ever aborted by admission during any of
  // this (restart aborts are session teardown, not admission).
  const DatabaseStats stats = db->Stats();
  EXPECT_EQ(stats.admission_shed_backlog + stats.admission_shed_sessions,
            0u);
  server->Stop();
}

}  // namespace
}  // namespace neosi
