// Garbage collection (paper §3/§4): the timestamp-threaded list reclaims
// exactly the versions below the watermark; tombstoned entities are
// physically purged; active snapshots are never robbed of their versions.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "graph/graph_database.h"

namespace neosi {
namespace {

std::unique_ptr<GraphDatabase> OpenDb() {
  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = 0;  // Manual GC only.
  auto db = GraphDatabase::Open(options);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(*db);
}

TEST(Gc, SupersededVersionsAreReclaimed) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  for (int i = 1; i <= 5; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto node = db->engine().cache->PeekNode(id);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->chain.Length(), 6u);
  EXPECT_EQ(db->engine().gc_list.size(), 5u);

  GcStats stats = db->RunGc();
  EXPECT_EQ(stats.versions_pruned, 5u);
  EXPECT_EQ(stats.tombstones_purged, 0u);
  EXPECT_EQ(node->chain.Length(), 1u);
  EXPECT_EQ(db->engine().gc_list.size(), 0u);

  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 5);
}

TEST(Gc, ActiveSnapshotPinsVersions) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto old_reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_EQ(old_reader->GetNodeProperty(id, "v")->AsInt(), 1);

  {
    auto writer = db->Begin();
    ASSERT_TRUE(writer->SetNodeProperty(id, "v", PropertyValue(int64_t{2})).ok());
    ASSERT_TRUE(writer->Commit().ok());
  }

  // The old reader's snapshot pins version 1: GC must reclaim nothing.
  GcStats stats = db->RunGc();
  EXPECT_EQ(stats.versions_pruned, 0u);
  EXPECT_EQ(db->engine().gc_list.size(), 1u);
  EXPECT_EQ(old_reader->GetNodeProperty(id, "v")->AsInt(), 1);

  ASSERT_TRUE(old_reader->Commit().ok());
  stats = db->RunGc();
  EXPECT_EQ(stats.versions_pruned, 1u);
}

TEST(Gc, PaperWatermarkExample) {
  // §3: data item versions at commit timestamps {40, 56, 90}; the oldest
  // active transaction has start timestamp 100 -> versions 40 and 56 can
  // never be read again and are reclaimed; 90 stays (it IS the snapshot
  // state at 100). We reproduce the shape with real commits.
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{40})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  for (int64_t v : {56, 90}) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(v)).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto active = db->Begin(IsolationLevel::kSnapshotIsolation);  // "ts 100"
  ASSERT_EQ(active->GetNodeProperty(id, "v")->AsInt(), 90);

  GcStats stats = db->RunGc();
  EXPECT_EQ(stats.versions_pruned, 2u);  // The "40" and "56" versions.
  auto node = db->engine().cache->PeekNode(id);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->chain.Length(), 1u);
  EXPECT_EQ(active->GetNodeProperty(id, "v")->AsInt(), 90);
}

TEST(Gc, TombstonePurgeRemovesEntityPhysically) {
  auto db = OpenDb();
  NodeId a, b;
  RelId rel;
  {
    auto txn = db->Begin();
    a = *txn->CreateNode({"Person"}, {{"k", PropertyValue(int64_t{1})}});
    b = *txn->CreateNode({"Person"});
    rel = *txn->CreateRelationship(a, b, "KNOWS");
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->DeleteRelationship(rel).ok());
    ASSERT_TRUE(txn->DeleteNode(a).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  // Tombstones still physically present until GC.
  EXPECT_TRUE(db->engine().store.NodeInUse(a));
  EXPECT_TRUE(db->engine().store.RelInUse(rel));

  GcStats stats = db->RunGc();
  EXPECT_EQ(stats.tombstones_purged, 2u);
  EXPECT_FALSE(db->engine().store.NodeInUse(a));
  EXPECT_FALSE(db->engine().store.RelInUse(rel));
  EXPECT_EQ(db->engine().cache->PeekNode(a), nullptr);

  // b's chain is clean and b remains.
  auto reader = db->Begin();
  EXPECT_TRUE(reader->GetNode(b).ok());
  EXPECT_TRUE(reader->GetRelationships(b)->empty());
}

TEST(Gc, TombstonePinnedByOldSnapshot) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{7})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto old_reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  {
    auto deleter = db->Begin();
    ASSERT_TRUE(deleter->DeleteNode(id).ok());
    ASSERT_TRUE(deleter->Commit().ok());
  }
  GcStats stats = db->RunGc();
  EXPECT_EQ(stats.tombstones_purged, 0u);  // Pinned by old_reader.
  EXPECT_EQ(old_reader->GetNodeProperty(id, "v")->AsInt(), 7);

  ASSERT_TRUE(old_reader->Commit().ok());
  stats = db->RunGc();
  EXPECT_EQ(stats.tombstones_purged, 1u);
  EXPECT_EQ(stats.versions_pruned, 1u);  // The pre-delete version.
  EXPECT_FALSE(db->engine().store.NodeInUse(id));
}

TEST(Gc, GcCostProportionalToGarbageNotStoreSize) {
  // The paper's central GC claim (§4): a pass over a huge store with little
  // garbage touches only the garbage. We verify by operation counts, not
  // wall time: the GC list is empty after one pass and a second pass does
  // zero work even though the store holds thousands of entities.
  auto db = OpenDb();
  {
    auto txn = db->Begin();
    for (int i = 0; i < 2000; ++i) ASSERT_TRUE(txn->CreateNode({}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  NodeId hot;
  {
    auto txn = db->Begin();
    hot = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  for (int i = 0; i < 3; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(hot, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  GcStats stats = db->RunGc();
  EXPECT_EQ(stats.versions_pruned, 3u);
  GcStats idle = db->RunGc();
  EXPECT_EQ(idle.versions_pruned, 0u);
  EXPECT_EQ(idle.tombstones_purged, 0u);

  // Vacuum, by contrast, scans everything even when there is no garbage.
  VacuumStats vacuum = db->RunVacuum();
  EXPECT_GE(vacuum.records_scanned, 2000u);
  EXPECT_EQ(vacuum.versions_pruned, 0u);
}

TEST(Gc, VacuumCollectsSameGarbage) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  for (int i = 1; i <= 4; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  VacuumStats stats = db->RunVacuum();
  EXPECT_EQ(stats.versions_pruned, 4u);
  auto node = db->engine().cache->PeekNode(id);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->chain.Length(), 1u);
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 4);
}

TEST(Gc, IndexEntriesCompacted) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({"L"}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  for (int i = 1; i <= 5; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  // 6 value intervals exist (0..5), 5 of them closed.
  EXPECT_EQ(db->engine().node_prop_index.Stats().entries_total, 6u);
  GcStats stats = db->RunGc();
  EXPECT_EQ(stats.index_entries_dropped, 5u);
  EXPECT_EQ(db->engine().node_prop_index.Stats().entries_total, 1u);
}

TEST(Gc, IdsAreRecycledAfterPurge) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({});
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->DeleteNode(id).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  db->RunGc();
  ASSERT_FALSE(db->engine().store.NodeInUse(id));
  // The freed record id is recycled by a later creation.
  auto txn = db->Begin();
  NodeId fresh = *txn->CreateNode({});
  EXPECT_EQ(fresh, id);
  ASSERT_TRUE(txn->Commit().ok());
}

TEST(Gc, BacklogNudgeBoundsChainLengthWithoutForegroundGc) {
  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = 60000;  // Interval effectively off:
  options.gc_backlog_threshold = 8;           // only nudges can reclaim.
  auto db = std::move(*GraphDatabase::Open(options));
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  for (int i = 0; i < 40; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  // Backlog-threshold nudges (the only automatic trigger here) must have
  // bounded the backlog: the daemon runs as soon as 8 versions queue up.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (db->engine().gc_list.backlog() >= 8 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_LT(db->engine().gc_list.backlog(), 8u);
  EXPECT_GE(db->gc_daemon()->nudge_passes(), 1u);
  auto node = db->engine().cache->PeekNode(id);
  ASSERT_NE(node, nullptr);
  EXPECT_LT(node->chain.Length(), 41u);
}

}  // namespace
}  // namespace neosi
