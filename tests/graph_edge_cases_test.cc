// Edge cases and odd corners of the public API.

#include <gtest/gtest.h>

#include "graph/graph_database.h"
#include "graph/traversal.h"

namespace neosi {
namespace {

std::unique_ptr<GraphDatabase> OpenDb() {
  DatabaseOptions options;
  options.in_memory = true;
  return std::move(*GraphDatabase::Open(options));
}

TEST(EdgeCases, EmptyDatabaseScans) {
  auto db = OpenDb();
  auto txn = db->Begin();
  EXPECT_TRUE(txn->AllNodes()->empty());
  EXPECT_TRUE(txn->GetNodesByLabel("Anything")->empty());
  EXPECT_TRUE(
      txn->GetNodesByProperty("k", PropertyValue(int64_t{1}))->empty());
  EXPECT_TRUE(txn->GetRelationships(0).status().IsNotFound());
  GcStats gc = db->RunGc();
  EXPECT_EQ(gc.versions_pruned, 0u);
  VacuumStats vac = db->RunVacuum();
  EXPECT_EQ(vac.records_scanned, 0u);
}

TEST(EdgeCases, NodeWithNoLabelsAndNoProps) {
  auto db = OpenDb();
  auto txn = db->Begin();
  NodeId id = *txn->CreateNode({});
  ASSERT_TRUE(txn->Commit().ok());
  auto view = db->Begin()->GetNode(id);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->labels.empty());
  EXPECT_TRUE(view->props.empty());
}

TEST(EdgeCases, ManyLabelsSpillToOverflow) {
  auto db = OpenDb();
  auto txn = db->Begin();
  std::vector<std::string> labels;
  for (int i = 0; i < 30; ++i) labels.push_back("Label" + std::to_string(i));
  NodeId id = *txn->CreateNode(labels);
  ASSERT_TRUE(txn->Commit().ok());
  auto view = db->Begin()->GetNode(id);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->labels.size(), 30u);
  // Every label's index finds the node.
  auto reader = db->Begin();
  for (const auto& label : labels) {
    EXPECT_EQ(reader->GetNodesByLabel(label)->size(), 1u) << label;
  }
}

TEST(EdgeCases, DuplicateLabelsCollapse) {
  auto db = OpenDb();
  auto txn = db->Begin();
  NodeId id = *txn->CreateNode({"Dup", "Dup", "Dup"});
  ASSERT_TRUE(txn->Commit().ok());
  auto view = db->Begin()->GetNode(id);
  EXPECT_EQ(view->labels.size(), 1u);
  EXPECT_EQ(db->Begin()->GetNodesByLabel("Dup")->size(), 1u);
}

TEST(EdgeCases, HugePropertyValues) {
  auto db = OpenDb();
  const std::string huge(100000, 'q');
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"blob", PropertyValue(huge)}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto got = db->Begin()->GetNodeProperty(id, "blob");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->AsString(), huge);
}

TEST(EdgeCases, AllValueKindsRoundTripThroughEngine) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"null", PropertyValue()},
                               {"bool", PropertyValue(true)},
                               {"int", PropertyValue(int64_t{-42})},
                               {"double", PropertyValue(2.5)},
                               {"string", PropertyValue("text")}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto view = db->Begin()->GetNode(id);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->props.at("null").is_null());
  EXPECT_EQ(view->props.at("bool").AsBool(), true);
  EXPECT_EQ(view->props.at("int").AsInt(), -42);
  EXPECT_DOUBLE_EQ(view->props.at("double").AsDouble(), 2.5);
  EXPECT_EQ(view->props.at("string").AsString(), "text");
}

TEST(EdgeCases, ParallelEdgesBetweenSamePair) {
  auto db = OpenDb();
  NodeId a, b;
  {
    auto txn = db->Begin();
    a = *txn->CreateNode({});
    b = *txn->CreateNode({});
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(txn->CreateRelationship(a, b, "E").ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetRelationships(a, Direction::kOutgoing)->size(), 5u);
  EXPECT_EQ(reader->GetNeighbors(a)->size(), 5u);  // Duplicates allowed.
  EXPECT_EQ(*reader->Degree(a), 5u);
}

TEST(EdgeCases, SelfLoopWithParallelNormalEdges) {
  auto db = OpenDb();
  NodeId a, b;
  {
    auto txn = db->Begin();
    a = *txn->CreateNode({});
    b = *txn->CreateNode({});
    ASSERT_TRUE(txn->CreateRelationship(a, a, "SELF").ok());
    ASSERT_TRUE(txn->CreateRelationship(a, b, "OUT").ok());
    ASSERT_TRUE(txn->CreateRelationship(b, a, "IN").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetRelationships(a, Direction::kBoth)->size(), 3u);
  EXPECT_EQ(reader->GetRelationships(a, Direction::kOutgoing)->size(), 2u);
  EXPECT_EQ(reader->GetRelationships(a, Direction::kIncoming)->size(), 2u);
}

TEST(EdgeCases, RelationshipToSelfCreatedNodeInSameTxn) {
  auto db = OpenDb();
  auto txn = db->Begin();
  NodeId a = *txn->CreateNode({});
  NodeId b = *txn->CreateNode({});
  auto rel = txn->CreateRelationship(a, b, "E");
  ASSERT_TRUE(rel.ok()) << rel.status();
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(db->Begin()->GetRelationships(a)->size(), 1u);
}

TEST(EdgeCases, CreateRelationshipToMissingNodeFails) {
  auto db = OpenDb();
  auto txn = db->Begin();
  NodeId a = *txn->CreateNode({});
  EXPECT_TRUE(txn->CreateRelationship(a, 999, "E").status().IsNotFound());
  EXPECT_TRUE(txn->CreateRelationship(998, a, "E").status().IsNotFound());
}

TEST(EdgeCases, RemoveMissingPropertyAndLabelAreNoOps) {
  auto db = OpenDb();
  auto txn = db->Begin();
  NodeId id = *txn->CreateNode({});
  EXPECT_TRUE(txn->RemoveNodeProperty(id, "missing").ok());
  EXPECT_TRUE(txn->RemoveLabel(id, "Missing").ok());
  EXPECT_TRUE(txn->Commit().ok());
}

TEST(EdgeCases, SetSamePropertyValueIsNoOpWrite) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{5})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto txn = db->Begin();
  // First set creates the pending version...
  ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(int64_t{5})).ok());
  ASSERT_TRUE(txn->Commit().ok());
  // ...but the value is unchanged and the index holds a single entry.
  EXPECT_EQ(db->engine().node_prop_index.Stats().entries_total, 1u);
}

TEST(EdgeCases, PropertyUpdateMovesIndexEntry) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(int64_t{2})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin();
  EXPECT_TRUE(reader->GetNodesByProperty("v", PropertyValue(int64_t{1}))
                  ->empty());
  EXPECT_EQ(
      reader->GetNodesByProperty("v", PropertyValue(int64_t{2}))->size(), 1u);
}

TEST(EdgeCases, PropertyValueKindChangeIsIndexedCorrectly) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue("one")).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin();
  EXPECT_TRUE(
      reader->GetNodesByProperty("v", PropertyValue(int64_t{1}))->empty());
  EXPECT_EQ(reader->GetNodesByProperty("v", PropertyValue("one"))->size(),
            1u);
}

TEST(EdgeCases, AbortedTokenRemainsUsable) {
  // Tokens are never rolled back (Neo4j semantics): a label created by an
  // aborted transaction still exists and is usable later.
  auto db = OpenDb();
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->CreateNode({"Phoenix"}).ok());
    ASSERT_TRUE(txn->Abort().ok());
  }
  EXPECT_TRUE(db->engine().store.labels().Lookup("Phoenix").ok());
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->CreateNode({"Phoenix"}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_EQ(db->Begin()->GetNodesByLabel("Phoenix")->size(), 1u);
}

TEST(EdgeCases, DeleteNodeThenRecreateRecyclesId) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({"Old"}, {{"gen", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->DeleteNode(id).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  db->RunGc();
  NodeId recycled;
  {
    auto txn = db->Begin();
    recycled = *txn->CreateNode({"New"}, {{"gen", PropertyValue(int64_t{2})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_EQ(recycled, id);
  auto view = db->Begin()->GetNode(recycled);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->labels, (std::vector<std::string>{"New"}));
  EXPECT_EQ(view->props.at("gen").AsInt(), 2);
  // No leakage from the previous occupant.
  EXPECT_TRUE(db->Begin()->GetNodesByLabel("Old")->empty());
}

TEST(EdgeCases, LargeTransaction) {
  auto db = OpenDb();
  auto txn = db->Begin();
  NodeId prev = *txn->CreateNode({"Chain"});
  for (int i = 1; i < 3000; ++i) {
    NodeId next = *txn->CreateNode({"Chain"});
    ASSERT_TRUE(txn->CreateRelationship(prev, next, "NEXT").ok());
    prev = next;
  }
  ASSERT_TRUE(txn->Commit().ok());
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodesByLabel("Chain")->size(), 3000u);
  // The chain is fully traversable.
  auto chain_nodes = reader->GetNodesByLabel("Chain");
  auto size = traversal::ComponentSize(*reader, (*chain_nodes)[0]);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 3000u);
}

TEST(EdgeCases, EmptyStringAndUnicodePropertyValues) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"empty", PropertyValue("")},
                               {"utf8", PropertyValue("héllo wörld ✓")}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto view = db->Begin()->GetNode(id);
  EXPECT_EQ(view->props.at("empty").AsString(), "");
  EXPECT_EQ(view->props.at("utf8").AsString(), "héllo wörld ✓");
}

TEST(EdgeCases, DegreeByDirection) {
  auto db = OpenDb();
  NodeId hub;
  {
    auto txn = db->Begin();
    hub = *txn->CreateNode({});
    for (int i = 0; i < 3; ++i) {
      NodeId n = *txn->CreateNode({});
      ASSERT_TRUE(txn->CreateRelationship(hub, n, "OUT").ok());
    }
    for (int i = 0; i < 2; ++i) {
      NodeId n = *txn->CreateNode({});
      ASSERT_TRUE(txn->CreateRelationship(n, hub, "IN").ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin();
  EXPECT_EQ(*reader->Degree(hub, Direction::kOutgoing), 3u);
  EXPECT_EQ(*reader->Degree(hub, Direction::kIncoming), 2u);
  EXPECT_EQ(*reader->Degree(hub, Direction::kBoth), 5u);
}

}  // namespace
}  // namespace neosi
